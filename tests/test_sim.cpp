// Unit tests for the discrete-event simulator kernel.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/barrier.h"
#include "sim/noise.h"
#include "sim/noise_process.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_queue.h"

namespace mes::sim {
namespace {

using mes::Duration;
using mes::TimePoint;

Proc record_at(Simulator& sim, Duration delay, std::vector<int>& log, int id)
{
  co_await sim.delay(delay);
  log.push_back(id);
}

TEST(Simulator, EventsFireInTimeOrder)
{
  Simulator sim;
  std::vector<int> log;
  sim.spawn(record_at(sim, Duration::us(30), log, 3));
  sim.spawn(record_at(sim, Duration::us(10), log, 1));
  sim.spawn(record_at(sim, Duration::us(20), log, 2));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.end_time.count_ns(), Duration::us(30).count_ns());
}

TEST(Simulator, SimultaneousEventsFireInInsertionOrder)
{
  Simulator sim;
  std::vector<int> log;
  for (int i = 0; i < 8; ++i) {
    sim.spawn(record_at(sim, Duration::us(5), log, i));
  }
  sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(log[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NowAdvancesMonotonically)
{
  Simulator sim;
  std::vector<TimePoint> stamps;
  sim.call_after(Duration::us(5), [&] { stamps.push_back(sim.now()); });
  sim.call_after(Duration::us(5), [&] { stamps.push_back(sim.now()); });
  sim.call_after(Duration::us(1), [&] { stamps.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_LE(stamps[0], stamps[1]);
  EXPECT_LE(stamps[1], stamps[2]);
}

TEST(Simulator, RejectsSchedulingInThePast)
{
  Simulator sim;
  EXPECT_THROW(sim.call_after(Duration::us(-1), [] {}), std::logic_error);
}

Proc thrower(Simulator& sim)
{
  co_await sim.delay(Duration::us(1));
  throw std::runtime_error{"boom"};
}

TEST(Simulator, RootExceptionPropagatesFromRun)
{
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Proc child_task(Simulator& sim, std::vector<int>& log)
{
  log.push_back(1);
  co_await sim.delay(Duration::us(10));
  log.push_back(2);
}

Proc parent_task(Simulator& sim, std::vector<int>& log)
{
  log.push_back(0);
  co_await child_task(sim, log);
  log.push_back(3);
}

TEST(Task, NestedAwaitRunsChildToCompletion)
{
  Simulator sim;
  std::vector<int> log;
  sim.spawn(parent_task(sim, log));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

Task<int> answer(Simulator& sim)
{
  co_await sim.delay(Duration::us(1));
  co_return 42;
}

Proc consume_answer(Simulator& sim, int& out)
{
  out = co_await answer(sim);
}

TEST(Task, ValueReturningTask)
{
  Simulator sim;
  int out = 0;
  sim.spawn(consume_answer(sim, out));
  sim.run();
  EXPECT_EQ(out, 42);
}

Task<int> throwing_child(Simulator& sim)
{
  co_await sim.delay(Duration::us(1));
  throw std::logic_error{"child failed"};
}

Proc catching_parent(Simulator& sim, bool& caught)
{
  try {
    (void)co_await throwing_child(sim);
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(Task, ChildExceptionCatchableInParent)
{
  Simulator sim;
  bool caught = false;
  sim.spawn(catching_parent(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

Proc waiter(Simulator& sim, WaitQueue& q, std::vector<int>& log, int id,
            Duration timeout)
{
  const WaitOutcome outcome = co_await q.wait(sim, timeout);
  log.push_back(outcome == WaitOutcome::signaled ? id : -id);
}

Proc notifier(Simulator& sim, WaitQueue& q, Duration delay, int count)
{
  co_await sim.delay(delay);
  for (int i = 0; i < count; ++i) q.notify_one(sim);
}

TEST(WaitQueue, FifoWakesLongestWaiterFirst)
{
  Simulator sim;
  WaitQueue q{WakeOrder::fifo};
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 1, Duration::max()));
  sim.spawn(waiter(sim, q, log, 2, Duration::max()));
  sim.spawn(waiter(sim, q, log, 3, Duration::max()));
  sim.spawn(notifier(sim, q, Duration::us(10), 3));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(WaitQueue, LifoWakesMostRecentWaiterFirst)
{
  Simulator sim;
  WaitQueue q{WakeOrder::lifo};
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 1, Duration::max()));
  sim.spawn(waiter(sim, q, log, 2, Duration::max()));
  sim.spawn(waiter(sim, q, log, 3, Duration::max()));
  sim.spawn(notifier(sim, q, Duration::us(10), 3));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
}

TEST(WaitQueue, TimeoutFiresWhenNeverNotified)
{
  Simulator sim;
  WaitQueue q;
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 7, Duration::us(50)));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log, (std::vector<int>{-7}));
  EXPECT_EQ(r.end_time.count_ns(), Duration::us(50).count_ns());
}

TEST(WaitQueue, NotifySkipsTimedOutWaiters)
{
  Simulator sim;
  WaitQueue q;
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 1, Duration::us(5)));   // times out first
  sim.spawn(waiter(sim, q, log, 2, Duration::max()));
  sim.spawn(notifier(sim, q, Duration::us(10), 1));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log, (std::vector<int>{-1, 2}));
}

TEST(WaitQueue, NotifyOnEmptyQueueReturnsFalse)
{
  Simulator sim;
  WaitQueue q;
  EXPECT_FALSE(q.notify_one(sim));
  EXPECT_EQ(q.notify_all(sim), 0u);
}

TEST(WaitQueue, NotifyLatencyDelaysResumption)
{
  Simulator sim;
  WaitQueue q;
  TimePoint woken_at;
  struct Helper {
    static Proc run(Simulator& sim, WaitQueue& q, TimePoint& woken_at)
    {
      co_await q.wait(sim);
      woken_at = sim.now();
    }
    static Proc kick(Simulator& sim, WaitQueue& q)
    {
      co_await sim.delay(Duration::us(10));
      q.notify_one(sim, Duration::us(7));
    }
  };
  sim.spawn(Helper::run(sim, q, woken_at));
  sim.spawn(Helper::kick(sim, q));
  sim.run();
  EXPECT_EQ(woken_at.count_ns(), Duration::us(17).count_ns());
}

Proc barrier_party(Simulator& sim, Barrier& b, Duration arrive_after,
                   std::vector<std::pair<int, TimePoint>>& log, int id)
{
  co_await sim.delay(arrive_after);
  co_await b.arrive(sim);
  log.push_back({id, sim.now()});
}

TEST(Barrier, ReleasesAllPartiesTogether)
{
  Simulator sim;
  Barrier b{2};
  std::vector<std::pair<int, TimePoint>> log;
  sim.spawn(barrier_party(sim, b, Duration::us(5), log, 1));
  sim.spawn(barrier_party(sim, b, Duration::us(20), log, 2));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  ASSERT_EQ(log.size(), 2u);
  // Both released at the late arriver's time.
  EXPECT_EQ(log[0].second.count_ns(), Duration::us(20).count_ns());
  EXPECT_EQ(log[1].second.count_ns(), Duration::us(20).count_ns());
}

Proc barrier_loop(Simulator& sim, Barrier& b, Duration step, int cycles,
                  int& completed)
{
  for (int i = 0; i < cycles; ++i) {
    co_await sim.delay(step);
    co_await b.arrive(sim);
    ++completed;
  }
}

TEST(Barrier, IsReusableAcrossCycles)
{
  Simulator sim;
  Barrier b{2};
  int done_a = 0;
  int done_b = 0;
  sim.spawn(barrier_loop(sim, b, Duration::us(3), 5, done_a));
  sim.spawn(barrier_loop(sim, b, Duration::us(9), 5, done_b));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(done_a, 5);
  EXPECT_EQ(done_b, 5);
}

TEST(Noise, SleepRespectsFloor)
{
  NoiseParams p;
  p.sleep_floor = Duration::us(58);
  p.sleep_overshoot_median = Duration::us(2);
  p.sleep_overshoot_sigma = 0.2;
  p.block_rate_hz = 0.0;
  StationaryNoise model{p};
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    const Duration d = model.sleep_time(rng, TimePoint::origin(), Duration::us(10));
    EXPECT_GE(d, Duration::us(58));
  }
}

TEST(Noise, InterferenceScalesWithWindow)
{
  NoiseParams p;
  p.block_rate_hz = 20000.0;  // high rate so the sample is dense
  StationaryNoise model{p};
  Rng rng{11};
  double short_total = 0.0;
  double long_total = 0.0;
  for (int i = 0; i < 400; ++i) {
    short_total += model.interference_over(rng, TimePoint::origin(), Duration::us(50)).to_us();
    long_total += model.interference_over(rng, TimePoint::origin(), Duration::us(500)).to_us();
  }
  EXPECT_GT(long_total, short_total * 4);
}

TEST(Noise, PostWaitPenaltyZeroBelowKnee)
{
  NoiseParams p;
  p.penalty_knee = Duration::us(200);
  StationaryNoise model{p};
  Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(model.post_wait_penalty(rng, TimePoint::origin(), Duration::us(150)).count_ns(), 0);
  }
}

TEST(Noise, PostWaitPenaltyAppearsAboveKnee)
{
  NoiseParams p;
  p.penalty_knee = Duration::us(200);
  p.penalty_ramp_per_us = 1.0;  // always fires above the knee
  StationaryNoise model{p};
  Rng rng{3};
  const Duration penalty = model.post_wait_penalty(rng, TimePoint::origin(), Duration::us(400));
  EXPECT_GT(penalty, Duration::zero());
}

TEST(Noise, OpCostNeverBelowQuarterBase)
{
  NoiseParams p;
  p.op_cost_base = Duration::us(10);
  p.op_cost_jitter = Duration::us(50);  // absurd jitter to stress the floor
  p.block_rate_hz = 0.0;
  StationaryNoise model{p};
  Rng rng{5};
  for (int i = 0; i < 500; ++i) {
    EXPECT_GE(model.op_cost(rng, TimePoint::origin()), Duration::us(2.5));
  }
}

// --- non-stationary noise processes ------------------------------------

NoiseSpec phased_spec()
{
  NoiseSpec spec;
  spec.regime = NoiseSpec::Regime::phased;
  spec.busy_load = 4.0;
  spec.quiet_len = Duration::us(50'000);
  spec.busy_len = Duration::us(25'000);
  return spec;
}

TEST(NoiseProcess, TimelineIsDeterministicAndQueryOrderIndependent)
{
  const NoiseParams base;
  const auto a = make_noise_model(phased_spec(), base, 42);
  const auto b = make_noise_model(phased_spec(), base, 42);

  // b queried forward, a queried in a scattered order: phase ids and
  // parameter sets must agree at every instant regardless.
  std::vector<double> ts = {400'000, 10, 90'000, 250'000, 1'000, 175'000};
  for (const double t : ts) {
    const TimePoint at = TimePoint::origin() + Duration::us(t);
    (void)a->phase_at(at);
  }
  for (double t = 0; t < 500'000; t += 7'000) {
    const TimePoint at = TimePoint::origin() + Duration::us(t);
    EXPECT_EQ(a->phase_at(at), b->phase_at(at)) << t;
    EXPECT_EQ(a->params_at(at).block_rate_hz, b->params_at(at).block_rate_hz)
        << t;
  }
}

TEST(NoiseProcess, DifferentSeedsRotateThePhase)
{
  const NoiseParams base;
  const auto a = make_noise_model(phased_spec(), base, 1);
  const auto b = make_noise_model(phased_spec(), base, 2);
  std::size_t differs = 0;
  for (double t = 0; t < 300'000; t += 5'000) {
    const TimePoint at = TimePoint::origin() + Duration::us(t);
    if (a->phase_at(at) != b->phase_at(at)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(NoiseProcess, PhasedAlternatesAndElevatesLoad)
{
  const NoiseParams base;
  const auto model = make_noise_model(phased_spec(), base, 9);
  bool saw_quiet = false;
  bool saw_busy = false;
  for (double t = 0; t < 300'000; t += 1'000) {
    const TimePoint at = TimePoint::origin() + Duration::us(t);
    const std::size_t phase = model->phase_at(at);
    if (phase == 0) {
      saw_quiet = true;
      EXPECT_EQ(model->params_at(at).block_rate_hz, base.block_rate_hz);
    } else {
      saw_busy = true;
      EXPECT_GT(model->params_at(at).block_rate_hz, base.block_rate_hz);
    }
  }
  EXPECT_TRUE(saw_quiet);
  EXPECT_TRUE(saw_busy);
}

TEST(NoiseProcess, ShiftFlipsExactlyOnceAtTheConfiguredInstant)
{
  NoiseSpec spec;
  spec.regime = NoiseSpec::Regime::shift;
  spec.busy_load = 2.0;
  spec.quiet_len = Duration::us(100'000);
  const NoiseParams base;
  const auto model = make_noise_model(spec, base, 5);
  EXPECT_EQ(model->phase_at(TimePoint::origin() + Duration::us(99'999)), 0u);
  EXPECT_EQ(model->phase_at(TimePoint::origin() + Duration::us(100'001)), 1u);
  // And it never goes back.
  EXPECT_EQ(model->phase_at(TimePoint::origin() + Duration::us(5e9)), 1u);
}

TEST(NoiseProcess, MarkovDwellsThenHops)
{
  NoiseSpec spec;
  spec.regime = NoiseSpec::Regime::markov;
  spec.busy_load = 3.0;
  spec.quiet_len = Duration::us(20'000);
  spec.busy_len = Duration::us(10'000);
  const NoiseParams base;
  const auto model = make_noise_model(spec, base, 77);
  std::set<std::size_t> seen;
  std::size_t transitions = 0;
  std::size_t last = model->phase_at(TimePoint::origin());
  for (double t = 0; t < 500'000; t += 500) {
    const std::size_t phase =
        model->phase_at(TimePoint::origin() + Duration::us(t));
    seen.insert(phase);
    if (phase != last) ++transitions;
    last = phase;
  }
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_GT(transitions, 3u);
}

TEST(NoiseProcess, ScaleLoadIsMonotoneInTheLoadFactor)
{
  const NoiseParams base;
  const NoiseParams busy = scale_load(base, 4.0);
  EXPECT_GT(busy.block_rate_hz, base.block_rate_hz);
  EXPECT_GT(busy.op_cost_base, base.op_cost_base);
  EXPECT_GT(busy.corruption_rate, base.corruption_rate);
  EXPECT_EQ(scale_load(base, 1.0).block_rate_hz, base.block_rate_hz);
}

TEST(NoiseProcess, ShiftPathsMovesMediansNotTails)
{
  const NoiseParams base;
  const NoiseParams shifted = shift_paths(base, 2.0);
  EXPECT_GT(shifted.wake_latency_median, base.wake_latency_median);
  EXPECT_GT(shifted.notify_path_base, base.notify_path_base);
  EXPECT_DOUBLE_EQ(shifted.wake_latency_sigma, base.wake_latency_sigma);
  EXPECT_DOUBLE_EQ(shifted.corruption_rate, base.corruption_rate);
}

Proc notify_all_at(Simulator& sim, WaitQueue& q, Duration delay)
{
  co_await sim.delay(delay);
  q.notify_all(sim);
}

Proc mark_at(Simulator& sim, Duration delay, std::vector<int>& log, int id)
{
  co_await sim.delay(delay);
  log.push_back(id);
}

// notify_all coalesces N wakes into one event; the wake order must stay
// the queue's discipline, exactly as N single notify_one calls.
TEST(WaitQueue, NotifyAllWakesFifoOrder)
{
  Simulator sim;
  WaitQueue q{WakeOrder::fifo};
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 1, Duration::max()));
  sim.spawn(waiter(sim, q, log, 2, Duration::max()));
  sim.spawn(waiter(sim, q, log, 3, Duration::max()));
  sim.spawn(notify_all_at(sim, q, Duration::us(10)));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(WaitQueue, NotifyAllWakesLifoOrder)
{
  Simulator sim;
  WaitQueue q{WakeOrder::lifo};
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 1, Duration::max()));
  sim.spawn(waiter(sim, q, log, 2, Duration::max()));
  sim.spawn(waiter(sim, q, log, 3, Duration::max()));
  sim.spawn(notify_all_at(sim, q, Duration::us(10)));
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
}

// The batch event takes its sequence slot when notify_all runs, so an
// unrelated event already scheduled for the same instant (the marker's
// delay, pushed at t=0) still fires first — identical to what N
// individual wake events would have produced.
TEST(WaitQueue, NotifyAllKeepsEqualTimeInsertionOrder)
{
  Simulator sim;
  WaitQueue q{WakeOrder::fifo};
  std::vector<int> log;
  sim.spawn(waiter(sim, q, log, 1, Duration::max()));
  sim.spawn(waiter(sim, q, log, 2, Duration::max()));
  sim.spawn(notify_all_at(sim, q, Duration::us(10)));
  sim.spawn(mark_at(sim, Duration::us(10), log, 99));
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log, (std::vector<int>{99, 1, 2}));
  EXPECT_EQ(r.end_time.count_ns(), Duration::us(10).count_ns());
}

Proc timed_churn(Simulator& sim, WaitQueue& q, int rounds,
                 std::size_t& max_in_use)
{
  for (int i = 0; i < rounds; ++i) {
    const WaitOutcome outcome = co_await q.wait(sim, Duration::us(1));
    EXPECT_EQ(outcome, WaitOutcome::timed_out);
    max_in_use = std::max(max_in_use, sim.wait_nodes_in_use());
  }
}

// Regression for the parking-lot leak class: a long-lived queue that
// sees thousands of expired timed waits must keep its size() and the
// simulator's node pool at O(live waiters), not O(waits ever made).
TEST(WaitQueue, TimedWaitChurnKeepsPoolAtLiveSize)
{
  Simulator sim;
  WaitQueue q;
  std::size_t max_in_use = 0;
  for (int p = 0; p < 4; ++p) {
    sim.spawn(timed_churn(sim, q, 1000, max_in_use));
  }
  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(sim.wait_nodes_in_use(), 0u);
  EXPECT_LE(max_in_use, 4u);
}

// The past/negative-delay guards must name the entry point that was
// actually called (a "call_after" message out of schedule_resume sent
// more than one debugging session to the wrong call site).
TEST(Simulator, ErrorMessagesNameTheEntryPoint)
{
  Simulator sim;
  try {
    sim.call_at(TimePoint::origin() - Duration::us(1), [] {});
    FAIL() << "call_at in the past must throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "Simulator::call_at: time in the past");
  }
  try {
    sim.call_after(Duration::us(-1), [] {});
    FAIL() << "negative call_after must throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "Simulator::call_after: negative delay");
  }
  try {
    sim.schedule_resume(std::noop_coroutine(), Duration::us(-1));
    FAIL() << "negative schedule_resume must throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "Simulator::schedule_resume: negative delay");
  }
}

// --- timer-wheel order oracle -----------------------------------------
//
// The wheel (simulator.h) replaced a (time, seq) binary heap and claims
// bit-identical dispatch order. These tests hold it to that: a fuzzed
// schedule runs through the simulator and through a test-local reference
// heap — the exact comparator the old queue used — and the two firing
// orders must match element for element.

std::uint64_t fuzz_mix(std::uint64_t x)
{
  // splitmix64 finalizer: cheap stateless hash for per-event decisions,
  // so the schedule is a pure function of (seed, event id) and both
  // engines derive it independently.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Delay menu spanning every wheel level: same-tick ties, L0 single
// ticks, the 6-bit cascade levels, the 2^38 ns horizon edge, and the
// far-future overflow heap (> ~4.6 min).
std::int64_t fuzz_delay_ns(std::uint64_t h)
{
  switch (h % 8) {
    case 0: return static_cast<std::int64_t>(h >> 8) % 16;  // dense ties
    case 1: return static_cast<std::int64_t>((h >> 8) % 16384);     // L0
    case 2: return static_cast<std::int64_t>((h >> 8) % (1 << 20));  // L1
    case 3: return static_cast<std::int64_t>((h >> 8) % (1 << 26));  // L2/L3
    case 4: return 1000 * static_cast<std::int64_t>((h >> 8) % 3 + 1);
    case 5:  // horizon edge: straddle the 2^38 ns wheel/overflow split
      return (1LL << 38) + static_cast<std::int64_t>((h >> 8) % (1 << 20)) -
             (1 << 19);
    case 6:  // deep overflow (~4.6 min .. ~23 min)
      return (1LL << 38) + static_cast<std::int64_t>((h >> 8) % (1LL << 40));
    default: return static_cast<std::int64_t>((h >> 8) % 1000000);
  }
}

TEST(Simulator, WheelMatchesReferenceHeapOnFuzzedSchedules)
{
  struct RefEvent {
    std::int64_t at;
    std::uint64_t seq;
    int id;
  };
  struct RefLater {
    bool operator()(const RefEvent& a, const RefEvent& b) const
    {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  constexpr int kRoots = 256;
  // Events with id below this spawn two children when the hash says so,
  // which bounds the program (children of children stop at the cap).
  constexpr int kSpawnCap = 600;

  for (const std::uint64_t seed : {1ULL, 42ULL, 0xD1CEULL}) {
    // Children's ids are allocated in fire order, so both engines name
    // events identically as long as their orders agree — and when the
    // orders disagree, the recorded sequences differ, which is the
    // failure we are looking for.
    const auto children_of = [&](int id, std::int64_t now,
                                 std::vector<std::pair<int, std::int64_t>>&
                                     out,
                                 int& next_id) {
      if (id >= kSpawnCap) return;
      const std::uint64_t h = fuzz_mix(seed ^ static_cast<std::uint64_t>(id));
      if (h % 3 != 0) return;
      // First child often lands on the parent's own tick (a same-time
      // push from inside dispatch must fire later in the same tick).
      const std::int64_t off0 =
          (h % 6 == 0) ? 0 : fuzz_delay_ns(fuzz_mix(h ^ 1));
      out.push_back({next_id++, now + off0});
      out.push_back({next_id++, now + fuzz_delay_ns(fuzz_mix(h ^ 2))});
    };

    // Engine 1: the simulator (timer wheel).
    std::vector<int> wheel_order;
    {
      Simulator sim;
      int next_id = kRoots;
      std::function<void(int)> fire = [&](int id) {
        wheel_order.push_back(id);
        std::vector<std::pair<int, std::int64_t>> kids;
        children_of(id, sim.now().count_ns(), kids, next_id);
        for (const auto& [kid, at] : kids) {
          sim.call_at(TimePoint::origin() + Duration::ns(at),
                      [&fire, kid] { fire(kid); });
        }
      };
      for (int id = 0; id < kRoots; ++id) {
        const std::int64_t at =
            fuzz_delay_ns(fuzz_mix(seed ^ (0xA000ULL + id)));
        sim.call_at(TimePoint::origin() + Duration::ns(at),
                    [&fire, id] { fire(id); });
      }
      const RunResult r = sim.run();
      EXPECT_EQ(r.blocked_roots, 0u);
    }

    // Engine 2: the reference heap with the old queue's comparator.
    std::vector<int> heap_order;
    {
      std::priority_queue<RefEvent, std::vector<RefEvent>, RefLater> heap;
      std::uint64_t next_seq = 0;
      int next_id = kRoots;
      for (int id = 0; id < kRoots; ++id) {
        const std::int64_t at =
            fuzz_delay_ns(fuzz_mix(seed ^ (0xA000ULL + id)));
        heap.push({at, next_seq++, id});
      }
      while (!heap.empty()) {
        const RefEvent ev = heap.top();
        heap.pop();
        heap_order.push_back(ev.id);
        std::vector<std::pair<int, std::int64_t>> kids;
        children_of(ev.id, ev.at, kids, next_id);
        for (const auto& [kid, at] : kids) heap.push({at, next_seq++, kid});
      }
    }

    ASSERT_EQ(wheel_order.size(), heap_order.size()) << "seed " << seed;
    EXPECT_EQ(wheel_order, heap_order) << "seed " << seed;
  }
}

// Stale timeouts in the overflow region: a timed wait whose timeout
// lives beyond the wheel horizon parks an event in the overflow heap;
// notifying the waiter first frees and recycles its pool slot. The
// stale event must detect the generation bump when it finally migrates
// through the wheel and fires — and must not perturb the order of
// anything scheduled around it.
TEST(WaitQueue, StaleOverflowTimeoutsAreGenerationCheckedNoOps)
{
  Simulator sim;
  WaitQueue q;
  std::vector<int> log;
  constexpr int kWaiters = 16;
  const Duration timeout = Duration::ns((1LL << 38) + 1'000'000);  // ~4.6 min
  for (int i = 1; i <= kWaiters; ++i) {
    sim.spawn(waiter(sim, q, log, i, timeout));
  }
  // Wake everyone long before the timeouts, then churn fresh timed
  // waits so the freed slots are recycled under live generations.
  sim.spawn(notifier(sim, q, Duration::us(10), kWaiters));
  std::size_t max_in_use = 0;
  sim.spawn(timed_churn(sim, q, 64, max_in_use));
  // A marker event after the stale timeouts' nominal time: the run must
  // reach it with every earlier stale event a no-op.
  bool marker_fired = false;
  sim.call_after(timeout + Duration::us(1), [&] { marker_fired = true; });

  const RunResult r = sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_TRUE(marker_fired);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(sim.wait_nodes_in_use(), 0u);
  // All waiters woke (positive ids) in FIFO order; none timed out.
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 1; i <= kWaiters; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i - 1)], i);
  }
}

TEST(Simulator, DeterministicAcrossRuns)
{
  auto run_once = [] {
    Simulator sim{1234};
    StationaryNoise model{NoiseParams{}};
    std::vector<std::int64_t> samples;
    for (int i = 0; i < 16; ++i) {
      samples.push_back(model.op_cost(sim.rng(), TimePoint::origin()).count_ns());
    }
    return samples;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mes::sim
