// Scenario-profile tests: noise regimes and visibility topologies.
#include <gtest/gtest.h>

#include "core/config.h"
#include "scenario/profile.h"

namespace mes {
namespace {

TEST(Profile, LocalSharesEverything)
{
  const ScenarioProfile p = make_profile(Scenario::local, OsFlavor::windows);
  EXPECT_EQ(p.scenario, Scenario::local);
  EXPECT_TRUE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
  EXPECT_EQ(p.topology.trojan_ns, p.topology.spy_ns);
}

TEST(Profile, SandboxSeparatesNamespaceIdsButSharesResources)
{
  const ScenarioProfile p =
      make_profile(Scenario::cross_sandbox, OsFlavor::windows);
  EXPECT_NE(p.topology.trojan_ns, p.topology.spy_ns);
  EXPECT_TRUE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
}

TEST(Profile, Type1VmSharesVolumeNotNamespaces)
{
  const ScenarioProfile p = make_profile(Scenario::cross_vm,
                                         OsFlavor::windows,
                                         HypervisorType::type1);
  EXPECT_FALSE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
  EXPECT_NE(p.topology.trojan_ns, p.topology.spy_ns);
}

TEST(Profile, Type2VmSharesNothing)
{
  const ScenarioProfile p = make_profile(Scenario::cross_vm,
                                         OsFlavor::windows,
                                         HypervisorType::type2);
  EXPECT_FALSE(p.topology.shared_object_namespace);
  EXPECT_FALSE(p.topology.shared_file_volume);
}

TEST(Profile, VmDefaultsToType1)
{
  const ScenarioProfile p = make_profile(Scenario::cross_vm,
                                         OsFlavor::windows);
  EXPECT_EQ(p.hypervisor, HypervisorType::type1);
}

TEST(Profile, IsolationLayersRaiseCosts)
{
  const auto local = make_profile(Scenario::local, OsFlavor::windows);
  const auto sandbox = make_profile(Scenario::cross_sandbox,
                                    OsFlavor::windows);
  const auto vm = make_profile(Scenario::cross_vm, OsFlavor::windows);
  EXPECT_LT(local.noise.op_cost_base, sandbox.noise.op_cost_base);
  EXPECT_LT(sandbox.noise.op_cost_base, vm.noise.op_cost_base);
  EXPECT_LT(local.noise.notify_path_base, sandbox.noise.notify_path_base);
  EXPECT_LT(sandbox.noise.notify_path_base, vm.noise.notify_path_base);
  EXPECT_LT(local.noise.block_rate_hz, vm.noise.block_rate_hz);
}

TEST(Profile, LinuxFlavorPinsSleepFloor)
{
  const auto lin = make_profile(Scenario::local, OsFlavor::linux_like);
  const auto win = make_profile(Scenario::local, OsFlavor::windows);
  EXPECT_DOUBLE_EQ(lin.noise.sleep_floor.to_us(), 58.0);
  EXPECT_TRUE(win.noise.sleep_floor.is_zero());
}

TEST(Profile, NamesRender)
{
  EXPECT_STREQ(to_string(Scenario::local), "local");
  EXPECT_STREQ(to_string(Scenario::cross_sandbox), "cross-sandbox");
  EXPECT_STREQ(to_string(Scenario::cross_vm), "cross-VM");
  EXPECT_STREQ(to_string(HypervisorType::type1), "type-1");
  EXPECT_STREQ(to_string(HypervisorType::none), "none");
}

TEST(Mechanism, NamesMatchThePaper)
{
  EXPECT_STREQ(to_string(Mechanism::flock), "flock");
  EXPECT_STREQ(to_string(Mechanism::file_lock_ex), "FileLockEX");
  EXPECT_STREQ(to_string(Mechanism::mutex), "Mutex");
  EXPECT_STREQ(to_string(Mechanism::semaphore), "Semaphore");
  EXPECT_STREQ(to_string(Mechanism::event), "Event");
  EXPECT_STREQ(to_string(Mechanism::waitable_timer), "Timer");
  EXPECT_STREQ(to_string(ChannelClass::contention), "contention");
  EXPECT_STREQ(to_string(ChannelClass::cooperation), "cooperation");
}

}  // namespace
}  // namespace mes
