// Scenario-profile tests: noise regimes, visibility topologies, and the
// string-keyed registry of composable scenarios.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/config.h"
#include "scenario/profile.h"
#include "scenario/registry.h"
#include "sim/noise_process.h"

namespace mes {
namespace {

TEST(Profile, LocalSharesEverything)
{
  const ScenarioProfile p = make_profile(Scenario::local, OsFlavor::windows);
  EXPECT_EQ(p.scenario, Scenario::local);
  EXPECT_TRUE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
  EXPECT_EQ(p.topology.trojan_ns, p.topology.spy_ns);
}

TEST(Profile, SandboxSeparatesNamespaceIdsButSharesResources)
{
  const ScenarioProfile p =
      make_profile(Scenario::cross_sandbox, OsFlavor::windows);
  EXPECT_NE(p.topology.trojan_ns, p.topology.spy_ns);
  EXPECT_TRUE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
}

TEST(Profile, Type1VmSharesVolumeNotNamespaces)
{
  const ScenarioProfile p = make_profile(Scenario::cross_vm,
                                         OsFlavor::windows,
                                         HypervisorType::type1);
  EXPECT_FALSE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
  EXPECT_NE(p.topology.trojan_ns, p.topology.spy_ns);
}

TEST(Profile, Type2VmSharesNothing)
{
  const ScenarioProfile p = make_profile(Scenario::cross_vm,
                                         OsFlavor::windows,
                                         HypervisorType::type2);
  EXPECT_FALSE(p.topology.shared_object_namespace);
  EXPECT_FALSE(p.topology.shared_file_volume);
}

TEST(Profile, VmDefaultsToType1)
{
  const ScenarioProfile p = make_profile(Scenario::cross_vm,
                                         OsFlavor::windows);
  EXPECT_EQ(p.hypervisor, HypervisorType::type1);
}

TEST(Profile, IsolationLayersRaiseCosts)
{
  const auto local = make_profile(Scenario::local, OsFlavor::windows);
  const auto sandbox = make_profile(Scenario::cross_sandbox,
                                    OsFlavor::windows);
  const auto vm = make_profile(Scenario::cross_vm, OsFlavor::windows);
  EXPECT_LT(local.noise.op_cost_base, sandbox.noise.op_cost_base);
  EXPECT_LT(sandbox.noise.op_cost_base, vm.noise.op_cost_base);
  EXPECT_LT(local.noise.notify_path_base, sandbox.noise.notify_path_base);
  EXPECT_LT(sandbox.noise.notify_path_base, vm.noise.notify_path_base);
  EXPECT_LT(local.noise.block_rate_hz, vm.noise.block_rate_hz);
}

TEST(Profile, LinuxFlavorPinsSleepFloor)
{
  const auto lin = make_profile(Scenario::local, OsFlavor::linux_like);
  const auto win = make_profile(Scenario::local, OsFlavor::windows);
  EXPECT_DOUBLE_EQ(lin.noise.sleep_floor.to_us(), 58.0);
  EXPECT_TRUE(win.noise.sleep_floor.is_zero());
}

TEST(Profile, NamesRender)
{
  EXPECT_STREQ(to_string(Scenario::local), "local");
  EXPECT_STREQ(to_string(Scenario::cross_sandbox), "cross-sandbox");
  EXPECT_STREQ(to_string(Scenario::cross_vm), "cross-VM");
  EXPECT_STREQ(to_string(HypervisorType::type1), "type-1");
  EXPECT_STREQ(to_string(HypervisorType::none), "none");
}

// --- the registry -----------------------------------------------------

TEST(Registry, LibraryIsBigEnoughAndNamesAreUnique)
{
  const auto& lib = scenario::library();
  EXPECT_GE(lib.size(), 8u);
  std::size_t non_stationary = 0;
  std::set<std::string> names;
  for (const auto& def : lib) {
    names.insert(def.name);
    if (def.non_stationary) ++non_stationary;
    // Every entry builds a working profile whose name matches its key.
    const ScenarioProfile p = def.build(OsFlavor::windows,
                                        HypervisorType::none);
    EXPECT_EQ(p.name, def.name);
    EXPECT_FALSE(p.layers.empty()) << def.name;
  }
  EXPECT_EQ(names.size(), lib.size());
  EXPECT_GE(non_stationary, 3u);
}

TEST(Registry, UnknownNamesFailLoudly)
{
  EXPECT_EQ(scenario::find_scenario("no-such-scenario"), nullptr);
  try {
    scenario::scenario_or_throw("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message lists the known names so the CLI error is actionable.
    EXPECT_NE(std::string{e.what()}.find("local"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("no-such-scenario"),
              std::string::npos);
  }
}

TEST(Registry, LegacyNamesAndAliasesResolveToCanonicalEntries)
{
  // The enum strings are canonical keys.
  for (const Scenario s : {Scenario::local, Scenario::cross_sandbox,
                           Scenario::cross_vm}) {
    const scenario::ScenarioDef* def = scenario::find_scenario(to_string(s));
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(def->legacy, s);
  }
  // Historical CLI spellings stay valid as aliases.
  EXPECT_EQ(scenario::find_scenario("sandbox")->name, "cross-sandbox");
  EXPECT_EQ(scenario::find_scenario("vm")->name, "cross-VM");
  EXPECT_EQ(scenario::find_scenario("cross_vm")->name, "cross-VM");
  EXPECT_EQ(scenario::find_scenario("noisy")->name, "noisy-local");
}

TEST(Registry, LegacyProfilesAreIdenticalThroughTheRegistry)
{
  // make_profile delegates to the registry; the constants must be the
  // calibrated ones (regression-locked end-to-end by the golden
  // campaign test in test_exec).
  const ScenarioProfile direct = make_profile(Scenario::cross_sandbox,
                                              OsFlavor::windows);
  const ScenarioProfile named =
      scenario::scenario_or_throw("cross-sandbox")
          .build(OsFlavor::windows, HypervisorType::none);
  EXPECT_EQ(direct.noise.op_cost_base.count_ns(),
            named.noise.op_cost_base.count_ns());
  EXPECT_EQ(direct.noise.block_rate_hz, named.noise.block_rate_hz);
  EXPECT_EQ(direct.topology.trojan_ns, named.topology.trojan_ns);
  EXPECT_DOUBLE_EQ(named.noise.op_cost_base.to_us(), 4.0);
  EXPECT_DOUBLE_EQ(named.noise.notify_path_base.to_us(), 4.0);
}

TEST(Registry, LayersComposeAdditively)
{
  // A sandbox nested inside a VM pays both boundaries on top of the
  // same base — strictly more than either alone.
  const ScenarioProfile vm = make_profile(Scenario::cross_vm,
                                          OsFlavor::windows);
  const ScenarioProfile nested =
      scenario::scenario_or_throw("container-in-vm")
          .build(OsFlavor::windows, HypervisorType::none);
  EXPECT_GT(nested.noise.op_cost_base, vm.noise.op_cost_base);
  EXPECT_GT(nested.noise.notify_path_base, vm.noise.notify_path_base);
  EXPECT_GT(nested.noise.block_rate_hz, vm.noise.block_rate_hz);
  // Both boundaries show in the topology: split object namespaces from
  // the VM, and the Trojan renamed again by the sandbox.
  EXPECT_FALSE(nested.topology.shared_object_namespace);
  EXPECT_NE(nested.topology.trojan_ns, vm.topology.trojan_ns);
  ASSERT_EQ(nested.layers.size(), 2u);
  EXPECT_EQ(nested.layers[0], "vm(type-1)");
  EXPECT_EQ(nested.layers[1], "sandbox");
}

TEST(Registry, SharedVolumeOpensOnlyTheFileChannel)
{
  const ScenarioProfile p = scenario::scenario_or_throw("shared-volume")
                                .build(OsFlavor::windows,
                                       HypervisorType::none);
  EXPECT_FALSE(p.topology.shared_object_namespace);
  EXPECT_TRUE(p.topology.shared_file_volume);
  EXPECT_EQ(p.hypervisor, HypervisorType::type2);
}

TEST(Registry, NoiseModelsMatchTheDeclaredRegime)
{
  const auto stationary = make_profile(Scenario::local, OsFlavor::windows)
                              .make_noise(1);
  EXPECT_TRUE(stationary->stationary());
  const auto phased = scenario::scenario_or_throw("noisy-local")
                          .build(OsFlavor::windows, HypervisorType::none)
                          .make_noise(1);
  EXPECT_FALSE(phased->stationary());
}

TEST(Mechanism, NamesMatchThePaper)
{
  EXPECT_STREQ(to_string(Mechanism::flock), "flock");
  EXPECT_STREQ(to_string(Mechanism::file_lock_ex), "FileLockEX");
  EXPECT_STREQ(to_string(Mechanism::mutex), "Mutex");
  EXPECT_STREQ(to_string(Mechanism::semaphore), "Semaphore");
  EXPECT_STREQ(to_string(Mechanism::event), "Event");
  EXPECT_STREQ(to_string(Mechanism::waitable_timer), "Timer");
  EXPECT_STREQ(to_string(ChannelClass::contention), "contention");
  EXPECT_STREQ(to_string(ChannelClass::cooperation), "cooperation");
}

}  // namespace
}  // namespace mes
