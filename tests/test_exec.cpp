// Tests for the exec layer: campaign engine, seed mixer, thread pool,
// ExperimentEnv reuse, CSV/JSON emission round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <fstream>

#include "analysis/sweep.h"
#include "exec/campaign.h"
#include "exec/env.h"
#include "exec/seed.h"
#include "exec/stream.h"
#include "exec/thread_pool.h"
#include "scenario/registry.h"

namespace mes {
namespace {

exec::ExperimentPlan small_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock,
                     Mechanism::semaphore};
  plan.scenarios = {{Scenario::local, HypervisorType::none, {}},
                    {Scenario::cross_sandbox, HypervisorType::none, {}}};
  plan.repeats = 2;
  plan.seed_base = 0xCA4FA16;
  plan.payload_bits = 512;
  return plan;
}

// The acceptance property: a parallel campaign is bit-identical to the
// same plan run serially. Every cell owns its whole simulator stack and
// a fixed result slot, so worker interleaving must not be observable.
TEST(Campaign, ParallelRunBitIdenticalToSerial)
{
  const exec::ExperimentPlan plan = small_plan();
  const exec::CampaignResult serial = exec::CampaignRunner{1}.run(plan);
  const exec::CampaignResult parallel = exec::CampaignRunner{4}.run(plan);

  ASSERT_EQ(serial.cells.size(), plan.cell_count());
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const ChannelReport& a = serial.cells[i].report;
    const ChannelReport& b = parallel.cells[i].report;
    EXPECT_EQ(serial.cells[i].cell.label, parallel.cells[i].cell.label);
    EXPECT_EQ(serial.cells[i].cell.config.seed,
              parallel.cells[i].cell.config.seed);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.sync_ok, b.sync_ok);
    EXPECT_EQ(a.failure_reason, b.failure_reason);
    EXPECT_DOUBLE_EQ(a.ber, b.ber);
    EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
    EXPECT_EQ(a.sent_payload.to_string(), b.sent_payload.to_string());
    EXPECT_EQ(a.received_payload.to_string(), b.received_payload.to_string());
    ASSERT_EQ(a.rx_latencies.size(), b.rx_latencies.size());
    for (std::size_t k = 0; k < a.rx_latencies.size(); ++k) {
      EXPECT_EQ(a.rx_latencies[k].count_ns(), b.rx_latencies[k].count_ns());
    }
  }
}

TEST(Campaign, CellSeedsUniqueOverDenseGrid)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                     Mechanism::mutex, Mechanism::semaphore,
                     Mechanism::event, Mechanism::waitable_timer};
  plan.scenarios = {{Scenario::local, HypervisorType::none, {}},
                    {Scenario::cross_sandbox, HypervisorType::none, {}},
                    {Scenario::cross_vm, HypervisorType::type1, {}}};
  plan.timings.clear();
  for (int t = 0; t < 8; ++t) plan.timings.push_back({std::to_string(t), {}});
  plan.repeats = 16;

  const std::vector<exec::CampaignCell> cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 6u * 3u * 8u * 16u);
  std::set<std::uint64_t> seeds;
  for (const exec::CampaignCell& cell : cells) seeds.insert(cell.config.seed);
  EXPECT_EQ(seeds.size(), cells.size());
}

// The sweep-style mixer over real-valued coordinates: the arithmetic it
// replaced collided for nearby (x, series) pairs; the splitmix64 fold
// must keep a dense grid collision-free.
TEST(Campaign, SweepSeedMixerHasNoCollisionsOnDenseGrid)
{
  std::set<std::uint64_t> seeds;
  std::size_t n = 0;
  for (double s = 0.0; s < 10.0; s += 1.0) {
    for (double x = 100.0; x < 300.0; x += 0.5) {
      seeds.insert(
          exec::mix_seed(7, {exec::coord_bits(x), exec::coord_bits(s)}));
      ++n;
    }
  }
  EXPECT_EQ(seeds.size(), n);
}

TEST(Campaign, ExpandResolvesPaperTimesetPerCell)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {{Scenario::local, HypervisorType::none, {}}};
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 2u);
  const TimingConfig event_t = paper_timeset(Mechanism::event, Scenario::local);
  const TimingConfig flock_t = paper_timeset(Mechanism::flock, Scenario::local);
  EXPECT_EQ(cells[0].config.timing.interval.count_ns(),
            event_t.interval.count_ns());
  EXPECT_EQ(cells[1].config.timing.t1.count_ns(), flock_t.t1.count_ns());
}

TEST(Campaign, RunCellMatchesDirectTransmission)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.payload_bits = 256;
  plan.seed_base = 42;
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 1u);

  const ChannelReport via_campaign = exec::run_cell(cells[0]);
  const ChannelReport direct =
      run_transmission(cells[0].config, exec::cell_payload(cells[0]));
  ASSERT_TRUE(via_campaign.ok);
  EXPECT_DOUBLE_EQ(via_campaign.ber, direct.ber);
  EXPECT_DOUBLE_EQ(via_campaign.throughput_bps, direct.throughput_bps);
  EXPECT_EQ(via_campaign.received_payload.to_string(),
            direct.received_payload.to_string());
}

TEST(Campaign, AggregatesPointAndMarginalStats)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {{Scenario::local, HypervisorType::none, {}}};
  plan.repeats = 2;
  plan.payload_bits = 256;
  const exec::CampaignResult result = exec::CampaignRunner{1}.run(plan);

  ASSERT_EQ(result.points.size(), 2u);  // one per mechanism, reps folded
  for (const exec::GroupStats& g : result.points) {
    EXPECT_EQ(g.cells, 2u);
    EXPECT_EQ(g.ok, 2u);
    EXPECT_GE(g.max_ber, g.mean_ber);
    EXPECT_GT(g.mean_throughput_bps, 0.0);
  }
  ASSERT_EQ(result.by_scenario.size(), 1u);
  EXPECT_EQ(result.by_scenario[0].cells, 4u);
}

TEST(ExperimentEnv, HostsMultiplePairsInOneSimulation)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 77;

  exec::ExperimentEnv env{cfg};
  auto& a = env.add_pair();
  auto& b = env.add_pair();
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_TRUE(b.error.empty()) << b.error;
  // Distinct tags keep the pairs' kernel objects private to each pair.
  EXPECT_NE(a.ctx->tag, b.ctx->tag);
  EXPECT_NE(a.ctx->trojan.pid(), b.ctx->trojan.pid());
}

TEST(ExperimentEnv, ReportsTopologyFailureAtSetup)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;  // named object: invisible cross-VM
  cfg.scenario = Scenario::cross_vm;
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::cross_vm);

  exec::ExperimentEnv env{cfg};
  auto& ep = env.add_pair();
  EXPECT_FALSE(ep.error.empty());
}

// Regression: sweep cells build their CellCoord field-wise; a past
// positional init silently shifted when the protocol axis was added,
// reading series[flat] out of bounds.
TEST(Campaign, SweepGridMapsCoordinatesBackToAxisValues)
{
  const std::vector<double> xs = {140.0, 155.0, 170.0};
  const std::vector<double> series = {60.0, 80.0};
  const auto points = analysis::sweep_grid(
      xs, series, 128, 9, [](double x, double s) {
        ExperimentConfig cfg;
        cfg.mechanism = Mechanism::flock;
        cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
        cfg.timing.t1 = Duration::us(x);
        cfg.timing.t0 = Duration::us(s);
        return cfg;
      });
  ASSERT_EQ(points.size(), xs.size() * series.size());
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (std::size_t xi = 0; xi < xs.size(); ++xi) {
      const analysis::SweepPoint& p = points[si * xs.size() + xi];
      EXPECT_DOUBLE_EQ(p.x, xs[xi]);
      EXPECT_DOUBLE_EQ(p.series, series[si]);
    }
  }
}

TEST(Campaign, ProtocolAxisExpandsAndLabels)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.protocols = {{"fixed", ProtocolMode::fixed},
                    {"arq", ProtocolMode::arq}};
  plan.payload_bits = 256;
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].config.protocol, ProtocolMode::fixed);
  EXPECT_EQ(cells[1].config.protocol, ProtocolMode::arq);
  EXPECT_NE(cells[0].config.seed, cells[1].config.seed);
  EXPECT_NE(cells[0].label.find("/fixed"), std::string::npos);
  EXPECT_NE(cells[1].label.find("/arq"), std::string::npos);

  // The ARQ cell runs through the protocol layer and delivers exactly.
  const ChannelReport rep = exec::run_cell(cells[1]);
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->mode, ProtocolMode::arq);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
}

// --- the scenario registry as a campaign axis --------------------------

TEST(Campaign, UnknownScenarioNameFailsAtExpansion)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.scenarios = {exec::named_scenario("no-such-scenario")};
  EXPECT_THROW(exec::expand(plan), std::invalid_argument);
}

TEST(Campaign, AliasedScenarioNamesCanonicalizeInLabelsAndConfigs)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  // "noisy" is an alias; cells must report the canonical key.
  plan.scenarios = {exec::named_scenario("noisy")};
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.scenario_name, "noisy-local");
  EXPECT_EQ(cells[0].config.scenario, Scenario::local);  // anchor class
  EXPECT_NE(cells[0].label.find("noisy-local"), std::string::npos);
}

// The regression lock for the refactor: the three legacy scenarios,
// addressed through the registry by name, must reproduce the CSV/JSON
// a pre-registry build emitted for the identical plan — byte for byte
// (fixtures generated at the last enum-based commit; see tests/golden).
exec::ExperimentPlan golden_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                     Mechanism::mutex, Mechanism::semaphore,
                     Mechanism::event, Mechanism::waitable_timer};
  plan.scenarios = {exec::named_scenario("local"),
                    exec::named_scenario("cross-sandbox"),
                    exec::named_scenario("cross-VM", HypervisorType::type1)};
  plan.repeats = 2;
  plan.seed_base = 0x1E6AC7;
  plan.payload_bits = 512;
  return plan;
}

std::string read_golden(const char* name)
{
  std::ifstream in{std::string{MES_GOLDEN_DIR} + "/" + name,
                   std::ios::binary};
  EXPECT_TRUE(in.good()) << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Campaign, LegacyScenariosThroughRegistryMatchGoldenBytes)
{
  const exec::CampaignResult result =
      exec::CampaignRunner{1}.run(golden_plan());
  std::ostringstream csv, json;
  exec::write_csv(csv, result);
  exec::write_json(json, result);
  EXPECT_EQ(csv.str(), read_golden("legacy_campaign.csv"));
  EXPECT_EQ(json.str(), read_golden("legacy_campaign.json"));
}

// Determinism under *non-stationary* noise: the regime timeline derives
// from the cell seed alone, so worker interleaving must stay invisible
// even when the noise itself is a stochastic process.
TEST(Emission, CsvIsByteIdenticalAcrossJobCountsUnderNonStationaryNoise)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {exec::named_scenario("noisy-local"),
                    exec::named_scenario("bursty-sandbox")};
  plan.repeats = 2;
  plan.seed_base = 0x405E5;
  plan.payload_bits = 256;

  const exec::CampaignResult serial = exec::CampaignRunner{1}.run(plan);
  const exec::CampaignResult parallel = exec::CampaignRunner{4}.run(plan);
  std::ostringstream serial_csv, parallel_csv, serial_json, parallel_json;
  exec::write_csv(serial_csv, serial);
  exec::write_csv(parallel_csv, parallel);
  exec::write_json(serial_json, serial);
  exec::write_json(parallel_json, parallel);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

std::vector<std::string> split_csv_row(const std::string& line,
                                       std::size_t fields);

// Calibration reuse across workers: leader/follower election is by plan
// order, not arrival order, so a warm plan behind the shared cache must
// stay byte-identical between `--jobs 1` and `--jobs 4` — with exactly
// one full (leader) calibration per link and warm followers behind it,
// every payload still delivered bit-exactly.
TEST(Emission, WarmCalibrationIsByteIdenticalAcrossJobCounts)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::flock, Mechanism::event};
  plan.scenarios = {exec::named_scenario("local")};
  plan.protocols = {{"adaptive", ProtocolMode::adaptive}};
  plan.repeats = 3;
  plan.seed_base = 0xCA11B;
  plan.payload_bits = 256;
  plan.base.calibration = CalibrationPolicy::warm;

  const exec::CampaignResult serial = exec::CampaignRunner{1}.run(plan);
  const exec::CampaignResult parallel = exec::CampaignRunner{4}.run(plan);
  std::ostringstream serial_csv, parallel_csv, serial_json, parallel_json;
  exec::write_csv(serial_csv, serial);
  exec::write_csv(parallel_csv, parallel);
  exec::write_json(serial_json, serial);
  exec::write_json(parallel_json, parallel);
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
  EXPECT_EQ(serial_json.str(), parallel_json.str());

  std::size_t full_cells = 0, warm_cells = 0;
  for (const exec::CellResult& cell : serial.cells) {
    ASSERT_TRUE(cell.report.ok)
        << cell.cell.label << ": " << cell.report.failure_reason;
    EXPECT_TRUE(cell.report.sync_ok) << cell.cell.label;
    EXPECT_EQ(cell.report.ber, 0.0) << cell.cell.label;
    ASSERT_TRUE(cell.report.proto.has_value());
    switch (cell.report.proto->calibration_source) {
      case CalibrationSource::full: ++full_cells; break;
      case CalibrationSource::warm: ++warm_cells; break;
      case CalibrationSource::fallback: break;
    }
  }
  // The first cell of each (mechanism, scenario) link leads; the seed
  // replicates behind it warm-start (a stray fallback is legal, but a
  // clear majority must confirm).
  EXPECT_EQ(full_cells, 2u);
  EXPECT_GE(warm_cells, 2u);
}

TEST(Emission, CsvCarriesScenarioNamesAndRoundTrips)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.scenarios = {exec::named_scenario("quiet-local"),
                    exec::named_scenario("noisy-local")};
  plan.payload_bits = 256;
  const exec::CampaignResult result = exec::CampaignRunner{1}.run(plan);

  std::ostringstream out;
  exec::write_csv(out, result);
  std::istringstream in{out.str()};
  std::string header, line;
  ASSERT_TRUE(std::getline(in, header));
  std::size_t row = 0;
  while (std::getline(in, line)) {
    const auto fields = split_csv_row(line, 25);
    ASSERT_EQ(fields.size(), 25u);
    EXPECT_EQ(fields[2], result.cells[row].cell.config.scenario_name);
    ++row;
  }
  EXPECT_EQ(row, 2u);
  // The scenario marginals group by registry name.
  ASSERT_EQ(result.by_scenario.size(), 2u);
  EXPECT_EQ(result.by_scenario[0].key, "quiet-local");
  EXPECT_EQ(result.by_scenario[1].key, "noisy-local");

  std::ostringstream json;
  exec::write_json(json, result);
  EXPECT_NE(json.str().find("\"scenario\":\"quiet-local\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"scenario\":\"noisy-local\""),
            std::string::npos);
}

// --- emission round-trips ---------------------------------------------

exec::ExperimentPlan emission_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {{Scenario::local, HypervisorType::none, {}}};
  plan.protocols = {{"fixed", ProtocolMode::fixed},
                    {"arq", ProtocolMode::arq}};
  plan.repeats = 2;
  plan.seed_base = 0xE21;
  plan.payload_bits = 256;
  return plan;
}

std::vector<std::string> split_csv_row(const std::string& line,
                                       std::size_t fields)
{
  // The last field (failure) is quoted and may contain commas; split the
  // first `fields - 1` on commas and keep the remainder whole.
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (std::size_t f = 0; f + 1 < fields; ++f) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) return out;
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  out.push_back(line.substr(pos));
  return out;
}

void expect_near_rel(double got, double want, const std::string& what)
{
  // CSV/JSON print with default stream precision (6 significant
  // digits); parse-back must match to that resolution.
  const double tol = std::max(1e-9, std::abs(want) * 1e-5);
  EXPECT_NEAR(got, want, tol) << what;
}

TEST(Emission, CsvRoundTripsAgainstInMemoryReports)
{
  const exec::CampaignResult result =
      exec::CampaignRunner{1}.run(emission_plan());
  std::ostringstream out;
  exec::write_csv(out, result);

  std::istringstream in{out.str()};
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const std::size_t n_fields = 25;
  ASSERT_EQ(std::count(header.begin(), header.end(), ',') + 1u, n_fields);

  std::size_t row_index = 0;
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_LT(row_index, result.cells.size());
    const exec::CellResult& cell = result.cells[row_index];
    const ChannelReport& rep = cell.report;
    const auto fields = split_csv_row(line, n_fields);
    ASSERT_EQ(fields.size(), n_fields) << line;

    EXPECT_EQ(fields[0], cell.cell.label);
    EXPECT_EQ(fields[1], to_string(cell.cell.config.mechanism));
    EXPECT_EQ(fields[2], to_string(cell.cell.config.scenario));
    EXPECT_EQ(fields[4], to_string(cell.cell.config.protocol));
    // Timing columns carry what the cell actually ran at (rep.timing) —
    // for adaptive cells that is the calibrated rate, not the anchor.
    const TimingConfig& t =
        rep.ok ? rep.timing : cell.cell.config.timing;
    expect_near_rel(std::strtod(fields[5].c_str(), nullptr), t.t1.to_us(),
                    "t1");
    expect_near_rel(std::strtod(fields[6].c_str(), nullptr), t.t0.to_us(),
                    "t0");
    expect_near_rel(std::strtod(fields[7].c_str(), nullptr),
                    t.interval.to_us(), "interval");
    EXPECT_EQ(std::strtoull(fields[10].c_str(), nullptr, 10),
              cell.cell.config.seed);
    EXPECT_EQ(std::strtoul(fields[11].c_str(), nullptr, 10),
              cell.cell.payload_bits);
    EXPECT_EQ(fields[12], rep.ok ? "1" : "0");
    EXPECT_EQ(fields[13], rep.sync_ok ? "1" : "0");
    expect_near_rel(std::strtod(fields[14].c_str(), nullptr), rep.ber,
                    "ber");
    expect_near_rel(std::strtod(fields[15].c_str(), nullptr),
                    rep.throughput_bps, "throughput");
    expect_near_rel(std::strtod(fields[16].c_str(), nullptr),
                    rep.elapsed.to_us(), "elapsed");
    EXPECT_EQ(std::strtoul(fields[17].c_str(), nullptr, 10),
              rep.proto ? rep.proto->frames : 0u);
    EXPECT_EQ(std::strtoul(fields[18].c_str(), nullptr, 10),
              rep.proto ? rep.proto->retransmits : 0u);
    EXPECT_EQ(std::strtoul(fields[19].c_str(), nullptr, 10),
              rep.proto ? rep.proto->pairs : 1u);
    expect_near_rel(std::strtod(fields[20].c_str(), nullptr),
                    rep.throughput_bps, "aggregate_goodput");
    EXPECT_EQ(std::strtoul(fields[21].c_str(), nullptr, 10),
              rep.proto ? rep.proto->rebalances : 0u);
    // Calibration columns: source is empty unless the cell actually
    // probed (fixed/arq cells never do), probes echoes the count.
    const std::size_t probes =
        rep.proto ? rep.proto->calibration_probes : 0u;
    EXPECT_EQ(fields[22],
              probes > 0 ? to_string(rep.proto->calibration_source) : "");
    EXPECT_EQ(std::strtoul(fields[23].c_str(), nullptr, 10), probes);
    EXPECT_EQ(fields[24], "\"" + rep.failure_reason + "\"");
    ++row_index;
  }
  EXPECT_EQ(row_index, result.cells.size());
}

// Minimal JSON field extraction for the round-trip check (the emitter
// writes a fixed shape; this is a test reader, not a JSON library).
double json_num(const std::string& obj, const std::string& key)
{
  const std::size_t at = obj.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key;
  return std::strtod(obj.c_str() + at + key.size() + 3, nullptr);
}

std::uint64_t json_u64(const std::string& obj, const std::string& key)
{
  const std::size_t at = obj.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key;
  return std::strtoull(obj.c_str() + at + key.size() + 3, nullptr, 10);
}

std::string json_str(const std::string& obj, const std::string& key)
{
  const std::size_t at = obj.find("\"" + key + "\":\"");
  EXPECT_NE(at, std::string::npos) << key;
  const std::size_t start = at + key.size() + 4;
  return obj.substr(start, obj.find('"', start) - start);
}

TEST(Emission, JsonRoundTripsAgainstInMemoryReports)
{
  const exec::CampaignResult result =
      exec::CampaignRunner{1}.run(emission_plan());
  std::ostringstream out;
  exec::write_json(out, result);
  const std::string json = out.str();

  // Walk the "cells" array object by object (brace matching).
  const std::size_t cells_at = json.find("\"cells\":[");
  ASSERT_NE(cells_at, std::string::npos);
  std::size_t pos = cells_at + 9;
  std::size_t cell_index = 0;
  while (json[pos] == '{') {
    int depth = 0;
    std::size_t end = pos;
    do {
      if (json[end] == '{') ++depth;
      if (json[end] == '}') --depth;
      ++end;
    } while (depth > 0);
    const std::string obj = json.substr(pos, end - pos);

    ASSERT_LT(cell_index, result.cells.size());
    const exec::CellResult& cell = result.cells[cell_index];
    const ChannelReport& rep = cell.report;
    EXPECT_EQ(json_str(obj, "label"), cell.cell.label);
    EXPECT_EQ(json_str(obj, "mechanism"),
              to_string(cell.cell.config.mechanism));
    EXPECT_EQ(json_str(obj, "protocol"),
              to_string(cell.cell.config.protocol));
    EXPECT_EQ(json_u64(obj, "seed"), cell.cell.config.seed);
    expect_near_rel(json_num(obj, "ber"), rep.ber, "ber");
    expect_near_rel(json_num(obj, "throughput_bps"), rep.throughput_bps,
                    "throughput");
    EXPECT_EQ(obj.find("\"ok\":true") != std::string::npos, rep.ok);
    if (rep.proto) {
      EXPECT_EQ(static_cast<std::size_t>(json_num(obj, "frames")),
                rep.proto->frames);
      EXPECT_EQ(static_cast<std::size_t>(json_num(obj, "retransmits")),
                rep.proto->retransmits);
    } else {
      EXPECT_EQ(obj.find("\"proto\""), std::string::npos);
    }

    ++cell_index;
    pos = end;
    if (json[pos] == ',') ++pos;
  }
  EXPECT_EQ(cell_index, result.cells.size());

  // The stats groups made it out too, one entry per in-memory group.
  for (const char* key : {"points", "by_mechanism", "by_scenario"}) {
    EXPECT_NE(json.find(std::string{"\""} + key + "\":["),
              std::string::npos);
  }
}

// --- strict JSON validation -------------------------------------------

// A strict (RFC 8259) JSON parser, just enough to *reject* what real
// parsers reject — bare nan/inf literals above all. Returns the index
// past the parsed value, or npos on any violation.
std::size_t strict_json_value(const std::string& s, std::size_t at);

std::size_t strict_json_ws(const std::string& s, std::size_t at)
{
  while (at < s.size() && (s[at] == ' ' || s[at] == '\t' || s[at] == '\n' ||
                           s[at] == '\r')) {
    ++at;
  }
  return at;
}

std::size_t strict_json_string(const std::string& s, std::size_t at)
{
  if (at >= s.size() || s[at] != '"') return std::string::npos;
  ++at;
  while (at < s.size() && s[at] != '"') {
    if (s[at] == '\\') {
      ++at;
      if (at >= s.size()) return std::string::npos;
      if (std::string{"\"\\/bfnrtu"}.find(s[at]) == std::string::npos) {
        return std::string::npos;
      }
      if (s[at] == 'u') {
        if (at + 4 >= s.size()) return std::string::npos;
        for (int i = 1; i <= 4; ++i) {
          if (!std::isxdigit(static_cast<unsigned char>(s[at + i]))) {
            return std::string::npos;
          }
        }
        at += 4;
      }
    } else if (static_cast<unsigned char>(s[at]) < 0x20) {
      return std::string::npos;
    }
    ++at;
  }
  return at < s.size() ? at + 1 : std::string::npos;
}

std::size_t strict_json_number(const std::string& s, std::size_t at)
{
  const std::size_t start = at;
  if (at < s.size() && s[at] == '-') ++at;
  if (at >= s.size() || !std::isdigit(static_cast<unsigned char>(s[at]))) {
    return std::string::npos;  // catches nan, inf, -inf
  }
  while (at < s.size() && std::isdigit(static_cast<unsigned char>(s[at]))) {
    ++at;
  }
  if (at < s.size() && s[at] == '.') {
    ++at;
    if (at >= s.size() || !std::isdigit(static_cast<unsigned char>(s[at]))) {
      return std::string::npos;
    }
    while (at < s.size() && std::isdigit(static_cast<unsigned char>(s[at]))) {
      ++at;
    }
  }
  if (at < s.size() && (s[at] == 'e' || s[at] == 'E')) {
    ++at;
    if (at < s.size() && (s[at] == '+' || s[at] == '-')) ++at;
    if (at >= s.size() || !std::isdigit(static_cast<unsigned char>(s[at]))) {
      return std::string::npos;
    }
    while (at < s.size() && std::isdigit(static_cast<unsigned char>(s[at]))) {
      ++at;
    }
  }
  return at > start ? at : std::string::npos;
}

std::size_t strict_json_value(const std::string& s, std::size_t at)
{
  at = strict_json_ws(s, at);
  if (at >= s.size()) return std::string::npos;
  if (s[at] == '"') return strict_json_string(s, at);
  if (s[at] == '{') {
    at = strict_json_ws(s, at + 1);
    if (at < s.size() && s[at] == '}') return at + 1;
    while (true) {
      at = strict_json_string(s, strict_json_ws(s, at));
      if (at == std::string::npos) return std::string::npos;
      at = strict_json_ws(s, at);
      if (at >= s.size() || s[at] != ':') return std::string::npos;
      at = strict_json_value(s, at + 1);
      if (at == std::string::npos) return std::string::npos;
      at = strict_json_ws(s, at);
      if (at < s.size() && s[at] == ',') {
        ++at;
        continue;
      }
      return at < s.size() && s[at] == '}' ? at + 1 : std::string::npos;
    }
  }
  if (s[at] == '[') {
    at = strict_json_ws(s, at + 1);
    if (at < s.size() && s[at] == ']') return at + 1;
    while (true) {
      at = strict_json_value(s, at);
      if (at == std::string::npos) return std::string::npos;
      at = strict_json_ws(s, at);
      if (at < s.size() && s[at] == ',') {
        ++at;
        continue;
      }
      return at < s.size() && s[at] == ']' ? at + 1 : std::string::npos;
    }
  }
  if (s.compare(at, 4, "true") == 0) return at + 4;
  if (s.compare(at, 5, "false") == 0) return at + 5;
  if (s.compare(at, 4, "null") == 0) return at + 4;
  return strict_json_number(s, at);
}

bool strict_json_parses(const std::string& s)
{
  const std::size_t end = strict_json_value(s, 0);
  return end != std::string::npos && strict_json_ws(s, end) == s.size();
}

// A campaign result with every double metric forced non-finite: the
// zero-elapsed-cell shape that used to emit the literal `nan` (invalid
// JSON — it broke every downstream parser) into cells AND summaries.
exec::CampaignResult non_finite_result()
{
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();

  exec::CampaignResult result;
  exec::CellResult cell;
  cell.cell.label = "forced/zero-elapsed";
  cell.report.ok = true;
  cell.report.sync_ok = true;
  cell.report.ber = nan;
  cell.report.throughput_bps = inf;
  cell.report.proto = ChannelReport::ProtocolStats{};
  cell.report.proto->calibration_margin = -inf;
  result.cells.push_back(std::move(cell));

  exec::GroupStats g;
  g.key = "forced/zero-elapsed";
  g.cells = 1;
  g.ok = 1;
  g.mean_ber = nan;
  g.max_ber = nan;
  g.mean_throughput_bps = inf;
  result.points.push_back(g);
  return result;
}

TEST(Emission, JsonStaysStrictlyParseableWithNonFiniteMetrics)
{
  std::ostringstream out;
  exec::write_json(out, non_finite_result());
  const std::string json = out.str();

  EXPECT_TRUE(strict_json_parses(json)) << json;
  // The non-finite metrics must surface as null, not vanish.
  EXPECT_NE(json.find("\"ber\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"throughput_bps\":null"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ber\":null"), std::string::npos);
  EXPECT_NE(json.find("\"calibration_margin\":null"), std::string::npos);
}

TEST(Emission, ReportJsonStaysStrictWithNonFiniteMetrics)
{
  ChannelReport rep;
  rep.ok = true;
  rep.ber = std::nan("");
  rep.throughput_bps = std::numeric_limits<double>::infinity();
  const std::string json = exec::report_json(rep, 128);
  EXPECT_TRUE(strict_json_parses(json)) << json;
  EXPECT_NE(json.find("\"ber\":null"), std::string::npos);
}

// The fixture sanity check: the validator itself must reject what this
// suite exists to keep out.
TEST(Emission, StrictJsonValidatorRejectsBareNanAndInf)
{
  EXPECT_TRUE(strict_json_parses("{\"a\":[1,2.5e-3,null,\"x\"]}"));
  EXPECT_FALSE(strict_json_parses("{\"a\":nan}"));
  EXPECT_FALSE(strict_json_parses("{\"a\":inf}"));
  EXPECT_FALSE(strict_json_parses("{\"a\":-inf}"));
  EXPECT_FALSE(strict_json_parses("{\"a\":1.}"));
}

// --- CSV quoting -------------------------------------------------------

// RFC-4180 reader for one line: splits on commas outside quotes and
// un-doubles embedded quotes.
std::vector<std::string> csv_parse_row(const std::string& line)
{
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

TEST(Emission, CsvRoundTripsLabelsWithQuotesAndCommas)
{
  // A label containing `", "` — the shape that used to split the row
  // (unquoted label) and truncate the failure field (unescaped quote).
  const std::string evil_label = "mech\", \"evil/local";
  const std::string evil_failure = "failed, \"badly\"";

  exec::CampaignResult result;
  exec::CellResult cell;
  cell.cell.label = evil_label;
  cell.report.ok = false;
  cell.report.failure_reason = evil_failure;
  result.cells.push_back(std::move(cell));

  std::ostringstream out;
  exec::write_csv(out, result);
  std::istringstream in{out.str()};
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));

  const std::size_t n_fields =
      static_cast<std::size_t>(
          std::count(header.begin(), header.end(), ',')) + 1;
  const std::vector<std::string> fields = csv_parse_row(row);
  ASSERT_EQ(fields.size(), n_fields) << row;
  EXPECT_EQ(fields.front(), evil_label);
  EXPECT_EQ(fields.back(), evil_failure);
}

// --- bonded pairs axis -------------------------------------------------

TEST(Campaign, PairsAxisExpandsLabelsAndSeeds)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.pairs = {1, 4};
  plan.payload_bits = 512;
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].bond_pairs, 1u);
  EXPECT_EQ(cells[1].bond_pairs, 4u);
  EXPECT_NE(cells[0].label.find("/x1"), std::string::npos);
  EXPECT_NE(cells[1].label.find("/x4"), std::string::npos);
  EXPECT_NE(cells[0].config.seed, cells[1].config.seed);
  // A bonded cell runs the bonded adaptive stack; the config says so.
  EXPECT_EQ(cells[0].config.protocol, ProtocolMode::fixed);
  EXPECT_EQ(cells[1].config.protocol, ProtocolMode::adaptive);
}

TEST(Campaign, BondedCellDeliversThroughRunCell)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.pairs = {2};
  plan.payload_bits = 512;
  plan.seed_base = 0xB0DDCE11;
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].bond_pairs, 2u);

  const ChannelReport rep = exec::run_cell(cells[0]);
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->pairs, 2u);
  EXPECT_EQ(rep.proto->pairs_requested, 2u);
}

// The emission determinism contract: --jobs 1 and --jobs N campaigns
// emit byte-identical CSV (and JSON), not merely equivalent reports.
TEST(Emission, CsvIsByteIdenticalAcrossJobCounts)
{
  const exec::ExperimentPlan plan = emission_plan();
  std::ostringstream serial_csv, parallel_csv, serial_json, parallel_json;
  exec::write_csv(serial_csv, exec::CampaignRunner{1}.run(plan));
  exec::write_csv(parallel_csv, exec::CampaignRunner{4}.run(plan));
  exec::write_json(serial_json, exec::CampaignRunner{1}.run(plan));
  exec::write_json(parallel_json, exec::CampaignRunner{4}.run(plan));
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

// --- streaming / sharded / resumable execution -------------------------

// A multi-axis plan exercising proto stats (arq cells) next to raw
// fixed-rate cells, sized to split unevenly across 3 shards.
exec::ExperimentPlan stream_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {exec::named_scenario("local"),
                    exec::named_scenario("noisy-local")};
  plan.protocols = {{"fixed", ProtocolMode::fixed},
                    {"arq", ProtocolMode::arq}};
  plan.repeats = 2;
  plan.seed_base = 0xB0A710AD;
  plan.payload_bits = 256;
  return plan;
}

std::string emit_csv(const exec::CampaignResult& result)
{
  std::ostringstream out;
  exec::write_csv(out, result);
  return out.str();
}

std::string emit_json(const exec::CampaignResult& result)
{
  std::ostringstream out;
  exec::write_json(out, result);
  return out.str();
}

TEST(Stream, RunStreamMatchesRunCellOrderAndAggregates)
{
  const exec::ExperimentPlan plan = stream_plan();
  const exec::CampaignResult reference = exec::CampaignRunner{1}.run(plan);

  std::vector<std::string> labels;
  std::ostringstream csv;
  exec::write_csv_header(csv);
  const exec::CampaignSummary summary = exec::CampaignRunner{4}.run_stream(
      exec::expand(plan), [&](const exec::CellResult& c) {
        labels.push_back(c.cell.label);
        exec::write_csv_row(csv, c);
      });

  // The sink sees cells in plan order regardless of worker interleaving.
  ASSERT_EQ(labels.size(), reference.cells.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], reference.cells[i].cell.label);
  }
  EXPECT_EQ(csv.str(), emit_csv(reference));

  // Group families match the in-memory aggregation bit for bit.
  ASSERT_EQ(summary.points.size(), reference.points.size());
  for (std::size_t i = 0; i < summary.points.size(); ++i) {
    EXPECT_EQ(summary.points[i].key, reference.points[i].key);
    EXPECT_EQ(summary.points[i].cells, reference.points[i].cells);
    EXPECT_EQ(summary.points[i].mean_ber, reference.points[i].mean_ber);
    EXPECT_EQ(summary.points[i].mean_throughput_bps,
              reference.points[i].mean_throughput_bps);
  }
  EXPECT_EQ(summary.cells(), reference.cells.size());
}

TEST(Stream, ShardMergeByteIdenticalToSingleRun)
{
  const exec::ExperimentPlan plan = stream_plan();
  const exec::CampaignResult reference = exec::CampaignRunner{1}.run(plan);

  // Run each shard independently (parallel workers), collecting only the
  // record stream each would write to disk.
  const std::size_t kShards = 3;
  std::ostringstream records;
  std::size_t shard_cell_total = 0;
  for (std::size_t i = 0; i < kShards; ++i) {
    const exec::ShardSpec shard{i, kShards};
    std::vector<exec::CampaignCell> cells =
        exec::shard_cells(exec::expand(plan), shard);
    shard_cell_total += cells.size();
    exec::CampaignRunner{4}.run_stream(
        std::move(cells), [&](const exec::CellResult& c) {
          records << exec::cell_record_line(c) << '\n';
        });
  }
  EXPECT_EQ(shard_cell_total, plan.cell_count());

  // Merge: replay the combined records through the standard emitters.
  std::istringstream in{records.str()};
  std::ostringstream csv, json;
  exec::write_csv_header(csv);
  exec::write_json_open(json);
  std::size_t index = 0;
  const exec::CampaignSummary merged = exec::replay_records(
      plan, exec::ShardSpec{}, exec::read_records(in),
      [&](const exec::CellResult& c) {
        exec::write_csv_row(csv, c);
        exec::write_json_cell(json, c, index);
        ++index;
      });
  exec::write_json_close(json, merged.points, merged.by_mechanism,
                         merged.by_scenario);

  EXPECT_EQ(csv.str(), emit_csv(reference));
  EXPECT_EQ(json.str(), emit_json(reference));
}

TEST(Stream, CheckpointResumeByteIdenticalToUninterruptedRun)
{
  const exec::ExperimentPlan plan = stream_plan();
  const exec::CampaignResult reference = exec::CampaignRunner{1}.run(plan);

  // Phase 1 "crashed" after 5 cells: only their records survive.
  std::ostringstream checkpoint;
  std::size_t finished = 0;
  {
    std::vector<exec::CampaignCell> cells = exec::expand(plan);
    cells.resize(5);
    exec::CampaignRunner{2}.run_stream(
        std::move(cells), [&](const exec::CellResult& c) {
          checkpoint << exec::cell_record_line(c) << '\n';
          ++finished;
        });
  }
  ASSERT_EQ(finished, 5u);

  // Resume: skip recorded cells, run the rest, append their records.
  std::istringstream done_in{checkpoint.str()};
  const std::map<std::size_t, ChannelReport> done =
      exec::read_records(done_in);
  std::vector<exec::CampaignCell> remaining =
      exec::skip_completed(exec::expand(plan), done);
  EXPECT_EQ(remaining.size(), plan.cell_count() - 5);
  exec::CampaignRunner{2}.run_stream(
      std::move(remaining), [&](const exec::CellResult& c) {
        checkpoint << exec::cell_record_line(c) << '\n';
      });

  // Emission replays the full record set in flat order.
  std::istringstream in{checkpoint.str()};
  std::ostringstream csv;
  exec::write_csv_header(csv);
  exec::replay_records(plan, exec::ShardSpec{}, exec::read_records(in),
                       [&](const exec::CellResult& c) {
                         exec::write_csv_row(csv, c);
                       });
  EXPECT_EQ(csv.str(), emit_csv(reference));
}

TEST(Stream, RecordRoundTripPreservesNonFiniteAndProtoStats)
{
  exec::CellResult cell;
  cell.cell.coord.flat = 42;
  ChannelReport& rep = cell.report;
  rep.ok = true;
  rep.sync_ok = true;
  rep.ber = std::numeric_limits<double>::quiet_NaN();
  rep.throughput_bps = std::numeric_limits<double>::infinity();
  rep.elapsed = Duration::ns(123456789);
  rep.timing.t1 = Duration::us(180);
  rep.timing.t0 = Duration::us(60);
  rep.timing.interval = Duration::us(250);
  rep.timing.symbol_bits = 2;
  rep.failure_reason = "quoted \"reason\", with commas\n";
  rep.proto.emplace();
  rep.proto->mode = ProtocolMode::adaptive;
  rep.proto->frames = 7;
  rep.proto->retransmits = 3;
  rep.proto->calibration_margin = 1.25;
  rep.proto->calibration_time = Duration::us(900);
  rep.proto->phases.push_back({2, 5, 1, Duration::us(30), 1234.5});

  const exec::CellRecord parsed =
      exec::parse_cell_record(exec::cell_record_line(cell));
  EXPECT_EQ(parsed.flat, 42u);
  EXPECT_TRUE(parsed.report.ok);
  EXPECT_TRUE(std::isnan(parsed.report.ber));
  EXPECT_TRUE(std::isinf(parsed.report.throughput_bps));
  EXPECT_EQ(parsed.report.elapsed.count_ns(), 123456789);
  EXPECT_EQ(parsed.report.timing.t1.count_ns(), rep.timing.t1.count_ns());
  EXPECT_EQ(parsed.report.timing.symbol_bits, 2u);
  EXPECT_EQ(parsed.report.failure_reason, rep.failure_reason);
  ASSERT_TRUE(parsed.report.proto.has_value());
  EXPECT_EQ(parsed.report.proto->mode, ProtocolMode::adaptive);
  EXPECT_EQ(parsed.report.proto->frames, 7u);
  EXPECT_DOUBLE_EQ(parsed.report.proto->calibration_margin, 1.25);
  ASSERT_EQ(parsed.report.proto->phases.size(), 1u);
  EXPECT_EQ(parsed.report.proto->phases[0].phase, 2u);
  EXPECT_DOUBLE_EQ(parsed.report.proto->phases[0].goodput_bps, 1234.5);
}

TEST(Stream, ReadRecordsToleratesTornTailButNotCorruption)
{
  exec::CellResult cell;
  cell.cell.coord.flat = 7;
  cell.report.ok = true;
  const std::string line = exec::cell_record_line(cell);

  // A torn final write (killed mid-append) is dropped silently.
  {
    std::istringstream in{line + "\n" + line.substr(0, line.size() / 2)};
    const auto records = exec::read_records(in);
    EXPECT_EQ(records.size(), 1u);
    EXPECT_TRUE(records.contains(7u));
  }
  // The same damage mid-file is corruption, not a torn tail.
  {
    std::istringstream in{line.substr(0, line.size() / 2) + "\n" + line};
    EXPECT_THROW(exec::read_records(in), std::invalid_argument);
  }
  // A missing record for an owned cell fails the replay loudly.
  {
    exec::ExperimentPlan plan = stream_plan();
    std::istringstream in{line + "\n"};
    EXPECT_THROW(exec::replay_records(plan, exec::ShardSpec{},
                                      exec::read_records(in), nullptr),
                 std::invalid_argument);
  }
}

TEST(Stream, ReadRecordsCorruptLineBeforeBlankLinesIsNotATornTail)
{
  // Regression: a corrupt line followed only by blank lines was
  // silently swallowed as a torn tail. A torn write never has a
  // newline after it, so *any* further line — blank included — proves
  // the damage is mid-file corruption.
  exec::CellResult cell;
  cell.cell.coord.flat = 7;
  cell.report.ok = true;
  const std::string line = exec::cell_record_line(cell);

  {
    std::istringstream in{line + "\n" + line.substr(0, line.size() / 2) +
                          "\n\n"};
    EXPECT_THROW(exec::read_records(in), std::invalid_argument);
  }
  // Without the trailing newline the same bytes are a genuine torn tail.
  {
    std::istringstream in{line + "\n" + line.substr(0, line.size() / 2)};
    EXPECT_EQ(exec::read_records(in).size(), 1u);
  }
}

TEST(Stream, ReadRecordsLastRecordWinsForRepeatedFlatIds)
{
  // Regression: resume appends a fresh record for a cell whose earlier
  // record may already be in the checkpoint; the reader kept the first
  // (stalest) one.
  exec::CellResult stale;
  stale.cell.coord.flat = 7;
  stale.report.ok = false;
  stale.report.failure_reason = "stale";
  exec::CellResult fresh = stale;
  fresh.report.ok = true;
  fresh.report.failure_reason.clear();

  std::istringstream in{exec::cell_record_line(stale) + "\n" +
                        exec::cell_record_line(fresh) + "\n"};
  const std::map<std::size_t, ChannelReport> records = exec::read_records(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records.at(7u).ok);
  EXPECT_EQ(records.at(7u).failure_reason, "");
}

TEST(Stream, ShardSpecValidatesAndPartitions)
{
  EXPECT_EQ(exec::ShardSpec{}.validate(), "");
  EXPECT_NE((exec::ShardSpec{0, 0}).validate(), "");
  EXPECT_NE((exec::ShardSpec{4, 4}).validate(), "");
  EXPECT_FALSE(exec::ShardSpec{}.active());
  const exec::ShardSpec shard{1, 3};
  EXPECT_TRUE(shard.active());
  EXPECT_TRUE(shard.owns(1));
  EXPECT_TRUE(shard.owns(4));
  EXPECT_FALSE(shard.owns(0));
  EXPECT_FALSE(shard.owns(3));
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
  std::vector<std::atomic<int>> hits(1000);
  exec::parallel_for(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
  EXPECT_THROW(
      exec::parallel_for(16, 4,
                         [](std::size_t i) {
                           if (i == 7) throw std::runtime_error{"boom"};
                         }),
      std::runtime_error);
}

TEST(ThreadPool, SerialFallbackRunsInline)
{
  std::vector<std::size_t> order;
  exec::parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace mes
