// Tests for the exec layer: campaign engine, seed mixer, thread pool,
// ExperimentEnv reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "exec/campaign.h"
#include "exec/env.h"
#include "exec/seed.h"
#include "exec/thread_pool.h"

namespace mes {
namespace {

exec::ExperimentPlan small_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock,
                     Mechanism::semaphore};
  plan.scenarios = {{Scenario::local, HypervisorType::none},
                    {Scenario::cross_sandbox, HypervisorType::none}};
  plan.repeats = 2;
  plan.seed_base = 0xCA4FA16;
  plan.payload_bits = 512;
  return plan;
}

// The acceptance property: a parallel campaign is bit-identical to the
// same plan run serially. Every cell owns its whole simulator stack and
// a fixed result slot, so worker interleaving must not be observable.
TEST(Campaign, ParallelRunBitIdenticalToSerial)
{
  const exec::ExperimentPlan plan = small_plan();
  const exec::CampaignResult serial = exec::CampaignRunner{1}.run(plan);
  const exec::CampaignResult parallel = exec::CampaignRunner{4}.run(plan);

  ASSERT_EQ(serial.cells.size(), plan.cell_count());
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const ChannelReport& a = serial.cells[i].report;
    const ChannelReport& b = parallel.cells[i].report;
    EXPECT_EQ(serial.cells[i].cell.label, parallel.cells[i].cell.label);
    EXPECT_EQ(serial.cells[i].cell.config.seed,
              parallel.cells[i].cell.config.seed);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.sync_ok, b.sync_ok);
    EXPECT_EQ(a.failure_reason, b.failure_reason);
    EXPECT_DOUBLE_EQ(a.ber, b.ber);
    EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
    EXPECT_EQ(a.sent_payload.to_string(), b.sent_payload.to_string());
    EXPECT_EQ(a.received_payload.to_string(), b.received_payload.to_string());
    ASSERT_EQ(a.rx_latencies.size(), b.rx_latencies.size());
    for (std::size_t k = 0; k < a.rx_latencies.size(); ++k) {
      EXPECT_EQ(a.rx_latencies[k].count_ns(), b.rx_latencies[k].count_ns());
    }
  }
}

TEST(Campaign, CellSeedsUniqueOverDenseGrid)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                     Mechanism::mutex, Mechanism::semaphore,
                     Mechanism::event, Mechanism::waitable_timer};
  plan.scenarios = {{Scenario::local, HypervisorType::none},
                    {Scenario::cross_sandbox, HypervisorType::none},
                    {Scenario::cross_vm, HypervisorType::type1}};
  plan.timings.clear();
  for (int t = 0; t < 8; ++t) plan.timings.push_back({std::to_string(t), {}});
  plan.repeats = 16;

  const std::vector<exec::CampaignCell> cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 6u * 3u * 8u * 16u);
  std::set<std::uint64_t> seeds;
  for (const exec::CampaignCell& cell : cells) seeds.insert(cell.config.seed);
  EXPECT_EQ(seeds.size(), cells.size());
}

// The sweep-style mixer over real-valued coordinates: the arithmetic it
// replaced collided for nearby (x, series) pairs; the splitmix64 fold
// must keep a dense grid collision-free.
TEST(Campaign, SweepSeedMixerHasNoCollisionsOnDenseGrid)
{
  std::set<std::uint64_t> seeds;
  std::size_t n = 0;
  for (double s = 0.0; s < 10.0; s += 1.0) {
    for (double x = 100.0; x < 300.0; x += 0.5) {
      seeds.insert(
          exec::mix_seed(7, {exec::coord_bits(x), exec::coord_bits(s)}));
      ++n;
    }
  }
  EXPECT_EQ(seeds.size(), n);
}

TEST(Campaign, ExpandResolvesPaperTimesetPerCell)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {{Scenario::local, HypervisorType::none}};
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 2u);
  const TimingConfig event_t = paper_timeset(Mechanism::event, Scenario::local);
  const TimingConfig flock_t = paper_timeset(Mechanism::flock, Scenario::local);
  EXPECT_EQ(cells[0].config.timing.interval.count_ns(),
            event_t.interval.count_ns());
  EXPECT_EQ(cells[1].config.timing.t1.count_ns(), flock_t.t1.count_ns());
}

TEST(Campaign, RunCellMatchesDirectTransmission)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event};
  plan.payload_bits = 256;
  plan.seed_base = 42;
  const auto cells = exec::expand(plan);
  ASSERT_EQ(cells.size(), 1u);

  const ChannelReport via_campaign = exec::run_cell(cells[0]);
  const ChannelReport direct =
      run_transmission(cells[0].config, exec::cell_payload(cells[0]));
  ASSERT_TRUE(via_campaign.ok);
  EXPECT_DOUBLE_EQ(via_campaign.ber, direct.ber);
  EXPECT_DOUBLE_EQ(via_campaign.throughput_bps, direct.throughput_bps);
  EXPECT_EQ(via_campaign.received_payload.to_string(),
            direct.received_payload.to_string());
}

TEST(Campaign, AggregatesPointAndMarginalStats)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {{Scenario::local, HypervisorType::none}};
  plan.repeats = 2;
  plan.payload_bits = 256;
  const exec::CampaignResult result = exec::CampaignRunner{1}.run(plan);

  ASSERT_EQ(result.points.size(), 2u);  // one per mechanism, reps folded
  for (const exec::GroupStats& g : result.points) {
    EXPECT_EQ(g.cells, 2u);
    EXPECT_EQ(g.ok, 2u);
    EXPECT_GE(g.max_ber, g.mean_ber);
    EXPECT_GT(g.mean_throughput_bps, 0.0);
  }
  ASSERT_EQ(result.by_scenario.size(), 1u);
  EXPECT_EQ(result.by_scenario[0].cells, 4u);
}

TEST(ExperimentEnv, HostsMultiplePairsInOneSimulation)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 77;

  exec::ExperimentEnv env{cfg};
  auto& a = env.add_pair();
  auto& b = env.add_pair();
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_TRUE(b.error.empty()) << b.error;
  // Distinct tags keep the pairs' kernel objects private to each pair.
  EXPECT_NE(a.ctx->tag, b.ctx->tag);
  EXPECT_NE(a.ctx->trojan.pid(), b.ctx->trojan.pid());
}

TEST(ExperimentEnv, ReportsTopologyFailureAtSetup)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;  // named object: invisible cross-VM
  cfg.scenario = Scenario::cross_vm;
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::cross_vm);

  exec::ExperimentEnv env{cfg};
  auto& ep = env.add_pair();
  EXPECT_FALSE(ep.error.empty());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
  std::vector<std::atomic<int>> hits(1000);
  exec::parallel_for(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
  EXPECT_THROW(
      exec::parallel_for(16, 4,
                         [](std::size_t i) {
                           if (i == 7) throw std::runtime_error{"boom"};
                         }),
      std::runtime_error);
}

TEST(ThreadPool, SerialFallbackRunsInline)
{
  std::vector<std::size_t> order;
  exec::parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace mes
