// Tests for the protocol layer: ARQ framing + session logic over
// controlled transports, calibration convergence on seeded noise, and
// the reverse-direction link plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "codec/fec.h"
#include "exec/env.h"
#include "proto/adaptive.h"
#include "proto/arq.h"
#include "proto/bond.h"
#include "proto/calibrate.h"
#include "proto/link.h"
#include "util/rng.h"

namespace mes {
namespace {

// A seeded binary-symmetric channel: flips each wire bit independently
// with probability `p`, both directions.
proto::Transport bsc(Rng& rng, double p)
{
  return [&rng, p](const BitVec& wire, bool) -> std::optional<BitVec> {
    BitVec out;
    for (std::size_t i = 0; i < wire.size(); ++i) {
      out.push_back(rng.bernoulli(p) ? 1 - wire[i] : wire[i]);
    }
    return out;
  };
}

proto::Transport identity()
{
  return [](const BitVec& wire, bool) -> std::optional<BitVec> {
    return wire;
  };
}

TEST(ArqFrame, EncodeDecodeRoundTrip)
{
  const proto::ArqOptions opt;
  Rng rng{5};
  const BitVec chunk = BitVec::random(rng, opt.chunk_bits);
  const BitVec wire = proto::encode_frame(42, false, chunk, opt);
  EXPECT_EQ(wire.size(), proto::frame_wire_bits(opt));

  const proto::DecodedFrame dec = proto::decode_frame(wire, opt);
  ASSERT_TRUE(dec.crc_ok);
  EXPECT_EQ(dec.seq, 42u);
  EXPECT_FALSE(dec.last);
  EXPECT_EQ(dec.chunk, chunk);
}

TEST(ArqFrame, ShortLastFrameKeepsItsLength)
{
  const proto::ArqOptions opt;
  const BitVec chunk = BitVec::from_string("1011");
  const proto::DecodedFrame dec = proto::decode_frame(
      proto::encode_frame(7, true, chunk, opt), opt);
  ASSERT_TRUE(dec.crc_ok);
  EXPECT_TRUE(dec.last);
  EXPECT_EQ(dec.chunk.to_string(), "1011");
}

TEST(ArqFrame, FecRepairsScatteredFlipsCrcCatchesBursts)
{
  const proto::ArqOptions opt;
  Rng rng{6};
  const BitVec chunk = BitVec::random(rng, opt.chunk_bits);
  const BitVec wire = proto::encode_frame(3, false, chunk, opt);

  // A handful of well-separated single flips: FEC repairs them all.
  {
    std::vector<int> bits = wire.bits();
    for (const std::size_t i : {3u, 40u, 77u, 114u}) bits[i] ^= 1;
    const auto dec = proto::decode_frame(BitVec{bits}, opt);
    ASSERT_TRUE(dec.crc_ok);
    EXPECT_EQ(dec.chunk, chunk);
  }
  // A dense burst overwhelms the interleaver: the CRC must refuse.
  {
    std::vector<int> bits = wire.bits();
    for (std::size_t i = 10; i < 90; ++i) bits[i] ^= 1;
    EXPECT_FALSE(proto::decode_frame(BitVec{bits}, opt).crc_ok);
  }
}

TEST(ArqFrame, RoundTripsAtEveryFecDepth)
{
  // The wire size must account for the interleaver's own padding —
  // depths that don't divide the codeword stream used to crash decode.
  Rng rng{8};
  for (const std::size_t depth : {0u, 1u, 2u, 3u, 5u, 7u, 11u}) {
    proto::ArqOptions opt;
    opt.fec_depth = depth;
    const BitVec chunk = BitVec::random(rng, opt.chunk_bits);
    const BitVec wire = proto::encode_frame(1, true, chunk, opt);
    EXPECT_EQ(wire.size(), proto::frame_wire_bits(opt)) << depth;
    const proto::DecodedFrame dec = proto::decode_frame(wire, opt);
    ASSERT_TRUE(dec.crc_ok) << depth;
    EXPECT_EQ(dec.chunk, chunk) << depth;
    const proto::DecodedAck ack =
        proto::decode_ack(proto::encode_ack(9, opt), opt);
    ASSERT_TRUE(ack.crc_ok) << depth;
    EXPECT_EQ(ack.next_seq, 9u) << depth;
  }
}

TEST(ArqSack, RoundTripAndCorruptionDetection)
{
  const proto::ArqOptions opt;
  const std::vector<int> ok_slots = {1, 0, 1, 1};
  const BitVec wire = proto::encode_sack(37, ok_slots, opt);
  EXPECT_EQ(wire.size(), proto::sack_wire_bits(ok_slots.size(), opt));

  const proto::DecodedSack sack =
      proto::decode_sack(wire, ok_slots.size(), opt);
  ASSERT_TRUE(sack.crc_ok);
  EXPECT_EQ(sack.wave, 37u);
  EXPECT_EQ(sack.ok, ok_slots);

  std::vector<int> bits = wire.bits();
  for (std::size_t i = 0; i < 20; ++i) bits[i] ^= 1;
  EXPECT_FALSE(
      proto::decode_sack(BitVec{bits}, ok_slots.size(), opt).crc_ok);
}

TEST(ArqAck, RoundTripAndCorruptionDetection)
{
  const proto::ArqOptions opt;
  const BitVec wire = proto::encode_ack(200, opt);
  EXPECT_EQ(wire.size(), proto::ack_wire_bits(opt));
  const proto::DecodedAck ack = proto::decode_ack(wire, opt);
  ASSERT_TRUE(ack.crc_ok);
  EXPECT_EQ(ack.next_seq, 200u);

  std::vector<int> bits = wire.bits();
  for (std::size_t i = 0; i < 20; ++i) bits[i] ^= 1;
  EXPECT_FALSE(proto::decode_ack(BitVec{bits}, opt).crc_ok);
}

// The reassembly property: any payload length in [0, 4096] splits into
// frames and reassembles bit-exactly through the session logic.
TEST(ArqSession, ReassemblesEveryPayloadLength)
{
  const proto::ArqOptions opt;
  Rng len_rng{77};
  std::vector<std::size_t> lengths = {0, 1, 2, opt.chunk_bits - 1,
                                      opt.chunk_bits, opt.chunk_bits + 1,
                                      4096};
  for (int i = 0; i < 40; ++i) {
    lengths.push_back(static_cast<std::size_t>(len_rng.next_below(4097)));
  }
  for (const std::size_t n : lengths) {
    Rng rng{0xF00D + n};
    const BitVec payload = BitVec::random(rng, n);
    proto::ArqStats stats;
    const auto delivered =
        proto::arq_deliver(payload, identity(), opt, &stats);
    ASSERT_TRUE(delivered.has_value()) << n;
    EXPECT_EQ(*delivered, payload) << n;
    EXPECT_EQ(stats.frames, proto::frame_count(n, opt)) << n;
    EXPECT_EQ(stats.retransmits, 0u) << n;
  }
}

TEST(ArqSession, SurvivesLossyChannelBitExact)
{
  proto::ArqOptions opt;
  opt.chunk_bits = 32;
  opt.max_rounds_per_frame = 50;
  Rng noise{0xBAD};
  Rng rng{0x5EC};
  const BitVec payload = BitVec::random(rng, 256);
  proto::ArqStats stats;
  const auto delivered =
      proto::arq_deliver(payload, bsc(noise, 0.02), opt, &stats);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, payload);
  EXPECT_GT(stats.frame_sends, stats.frames);  // the channel did bite
}

// The headline claim: at 3x the bit error rate where plain FEC starts
// leaking residual errors into the recovered secret, ARQ still delivers
// bit-exactly — retransmission recovers what correction cannot.
TEST(ArqSession, DeliversBitExactAtTripleTheBerWherePlainFecFails)
{
  const double fec_fail_ber = 0.015;

  // Plain FEC at fec_fail_ber: residual errors survive into the output.
  {
    Rng rng{0xFEC1};
    const BitVec secret = BitVec::random(rng, 4096);
    const BitVec coded = codec::fec_protect(secret, 7);
    Rng noise{0xFEC2};
    std::vector<int> bits = coded.bits();
    for (auto& b : bits) {
      if (noise.bernoulli(fec_fail_ber)) b ^= 1;
    }
    const auto recovered = codec::fec_recover(BitVec{bits}, 7);
    const std::size_t residual =
        secret.hamming_distance(recovered.data.slice(0, secret.size()));
    ASSERT_GT(residual, 0u);  // the premise: plain FEC fails here
  }

  // ARQ at 3x that rate: bit-exact.
  {
    proto::ArqOptions opt;
    opt.chunk_bits = 32;  // short frames keep survival > 0 at this BER
    opt.max_rounds_per_frame = 64;
    Rng rng{0xFEC3};
    const BitVec payload = BitVec::random(rng, 512);
    Rng noise{0xFEC4};
    const auto delivered =
        proto::arq_deliver(payload, bsc(noise, 3.0 * fec_fail_ber), opt,
                           nullptr);
    ASSERT_TRUE(delivered.has_value());
    EXPECT_EQ(*delivered, payload);
  }
}

TEST(ArqSession, GivesUpWhenTheChannelIsNoise)
{
  proto::ArqOptions opt;
  opt.max_rounds_per_frame = 4;
  Rng noise{0xDEAD};
  Rng rng{0xBEEF};
  const BitVec payload = BitVec::random(rng, 128);
  const auto delivered =
      proto::arq_deliver(payload, bsc(noise, 0.5), opt, nullptr);
  EXPECT_FALSE(delivered.has_value());
}

TEST(ArqSession, AbortsOnStructuralTransportFailure)
{
  const proto::ArqOptions opt;
  const auto dead = [](const BitVec&, bool) -> std::optional<BitVec> {
    return std::nullopt;
  };
  Rng rng{1};
  EXPECT_FALSE(
      proto::arq_deliver(BitVec::random(rng, 64), dead, opt).has_value());
}

// --- reverse link plumbing --------------------------------------------

TEST(ReverseLink, SwapsRolesAndIsolatesResources)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 21;

  exec::ExperimentEnv env{cfg};
  auto& fwd = env.add_pair();
  ASSERT_TRUE(fwd.error.empty()) << fwd.error;
  auto& rev = env.add_reverse_pair(fwd);
  ASSERT_TRUE(rev.error.empty()) << rev.error;

  EXPECT_EQ(&rev.ctx->trojan, &fwd.ctx->spy);
  EXPECT_EQ(&rev.ctx->spy, &fwd.ctx->trojan);
  EXPECT_NE(rev.ctx->tag, fwd.ctx->tag);
}

TEST(ReverseLink, CarriesBitsBothWays)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 22;

  exec::ExperimentEnv env{cfg};
  proto::Link link{cfg, cfg.timing, env.initial_classifier(), 8};
  ASSERT_TRUE(link.error().empty()) << link.error();

  Rng rng{23};
  const BitVec fwd_bits = BitVec::random(rng, 64);
  const BitVec rev_bits = BitVec::random(rng, 64);
  const auto fwd_rx = link.transfer(fwd_bits, false);
  const auto rev_rx = link.transfer(rev_bits, true);
  ASSERT_TRUE(fwd_rx.has_value());
  ASSERT_TRUE(rev_rx.has_value());
  // The local Event link is near-clean: allow a stray flip, not a swap.
  EXPECT_LE(fwd_bits.hamming_distance(*fwd_rx), 2u);
  EXPECT_LE(rev_bits.hamming_distance(*rev_rx), 2u);
}

// --- end-to-end protocol modes ----------------------------------------

TEST(AdaptiveRun, ArqModeDeliversExactlyOverSimulatedChannel)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 31;

  Rng rng{32};
  const BitVec payload = BitVec::random(rng, 512);
  const ChannelReport rep = proto::run_arq_transmission(cfg, payload);
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_EQ(rep.received_payload, payload);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->mode, ProtocolMode::arq);
  EXPECT_GE(rep.proto->frame_sends, rep.proto->frames);
  EXPECT_GT(rep.throughput_bps, 0.0);
}

TEST(AdaptiveRun, ReportsTopologyFailureLikeTheFixedPath)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;  // named object: invisible cross-VM
  cfg.scenario = Scenario::cross_vm;
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::cross_vm);

  Rng rng{33};
  const ChannelReport rep =
      proto::run_adaptive_transmission(cfg, BitVec::random(rng, 64));
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.failure_reason.empty());
}

TEST(AdaptiveRun, RunWithProtocolDispatchesOnTheConfig)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 34;
  Rng rng{35};
  const BitVec payload = BitVec::random(rng, 256);

  cfg.protocol = ProtocolMode::fixed;
  EXPECT_FALSE(proto::run_with_protocol(cfg, payload).proto.has_value());
  cfg.protocol = ProtocolMode::arq;
  const ChannelReport arq = proto::run_with_protocol(cfg, payload);
  ASSERT_TRUE(arq.proto.has_value());
  EXPECT_EQ(arq.proto->mode, ProtocolMode::arq);
}

// --- calibration -------------------------------------------------------

// The convergence property: on seeded noise the calibrated rate lands
// within one grid step of the sweep-optimal rate, where "optimal" is
// the grid cell with the best realized ARQ goodput — exactly the grid
// search the calibration replaces.
TEST(Calibration, ConvergesWithinOneGridStepOfSweepOptimal)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 41;

  const proto::CalibrationOptions opt;
  Rng rng{42};
  const BitVec payload = BitVec::random(rng, 1024);

  std::size_t best_index = 0;
  double best_goodput = -1.0;
  for (std::size_t gi = 0; gi < opt.scales.size(); ++gi) {
    ExperimentConfig cell = cfg;
    cell.timing = scale_timing(cfg.timing, opt.scales[gi]);
    const ChannelReport rep = proto::run_arq_transmission(cell, payload);
    const double goodput =
        rep.ok && rep.sync_ok ? rep.throughput_bps : 0.0;
    if (goodput > best_goodput) {
      best_goodput = goodput;
      best_index = gi;
    }
  }
  ASSERT_GT(best_goodput, 0.0);

  const proto::Calibration cal = proto::calibrate_link(cfg, opt);
  ASSERT_TRUE(cal.ok) << cal.failure;
  const std::size_t distance = cal.grid_index > best_index
                                   ? cal.grid_index - best_index
                                   : best_index - cal.grid_index;
  EXPECT_LE(distance, 1u) << "picked scale x" << cal.scale
                          << ", sweep-optimal x"
                          << opt.scales[best_index];
}

TEST(Calibration, MeasuredThresholdTracksTheNoiseRegime)
{
  // The calibrated threshold must sit between the two measured levels,
  // strictly inside the a-priori estimate's error — and the margins
  // must shrink when the noise regime worsens (local -> cross-VM).
  ExperimentConfig local;
  local.mechanism = Mechanism::flock;
  local.scenario = Scenario::local;
  local.timing = paper_timeset(Mechanism::flock, Scenario::local);
  local.seed = 43;
  proto::CalibrationOptions only_paper;
  only_paper.scales = {1.0};
  only_paper.refine_candidates = 0;
  const proto::Calibration cal_local =
      proto::calibrate_link(local, only_paper);
  ASSERT_TRUE(cal_local.ok) << cal_local.failure;
  const double threshold = cal_local.classifier.threshold(0).to_us();
  EXPECT_GT(threshold, 10.0);                       // above the '0' level
  EXPECT_LT(threshold, local.timing.t1.to_us());    // below the '1' hold

  ExperimentConfig vm = local;
  vm.scenario = Scenario::cross_vm;
  vm.hypervisor = HypervisorType::type1;
  vm.timing = paper_timeset(Mechanism::flock, Scenario::cross_vm);
  const proto::Calibration cal_vm = proto::calibrate_link(vm, only_paper);
  ASSERT_TRUE(cal_vm.ok) << cal_vm.failure;
  EXPECT_GT(cal_vm.jitter_us, 0.0);
  EXPECT_GT(cal_local.margin, 0.0);
}

TEST(Calibration, FailsCleanlyWhenNoTopologyWorks)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::cross_vm;  // Table VI: ✗
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::cross_vm);
  const proto::Calibration cal = proto::calibrate_link(cfg);
  EXPECT_FALSE(cal.ok);
  EXPECT_FALSE(cal.failure.empty());
}

// --- warm-start calibration (proto/cal_cache) -------------------------

// The campaign's reuse scheme in miniature, across the mechanism ×
// scenario matrix: a follower warm-starting from a leader's published
// pick must produce a complete calibration verdict, stay within one
// grid step of the leader when the confirm probe agrees, spend fewer
// probes than a full sweep, and deliver the payload bit-exactly.
TEST(Calibration, WarmAgreesWithFullAcrossMechanismsAndScenarios)
{
  const struct {
    Mechanism m;
    Scenario s;
  } matrix[] = {
      {Mechanism::flock, Scenario::local},
      {Mechanism::flock, Scenario::cross_sandbox},
      {Mechanism::semaphore, Scenario::local},
      {Mechanism::semaphore, Scenario::cross_sandbox},
      {Mechanism::event, Scenario::local},
      {Mechanism::event, Scenario::cross_sandbox},
  };
  int confirmed = 0;
  for (const auto& [m, s] : matrix) {
    ExperimentConfig leader;
    leader.mechanism = m;
    leader.scenario = s;
    leader.timing = paper_timeset(m, s);
    leader.seed = 41;
    const proto::Calibration full = proto::calibrate_link(leader);
    ASSERT_TRUE(full.ok) << to_string(m) << "/" << to_string(s) << ": "
                         << full.failure;
    EXPECT_EQ(full.source, CalibrationSource::full);

    // The follower is a different cell of the same link: same anchor,
    // fresh noise stream.
    ExperimentConfig follower = leader;
    follower.seed = 0xF0110A;
    const proto::CalibrationPick pick{full.grid_index, full.margin,
                                      full.symbol_error};
    const proto::Calibration warm =
        proto::calibrate_link_warm(follower, {}, {}, pick);
    ASSERT_TRUE(warm.ok) << to_string(m) << "/" << to_string(s) << ": "
                         << warm.failure;
    if (warm.source == CalibrationSource::warm) {
      ++confirmed;
      // Warm picks come from the hinted index or a neighbor only.
      const std::size_t distance = warm.grid_index > full.grid_index
                                       ? warm.grid_index - full.grid_index
                                       : full.grid_index - warm.grid_index;
      EXPECT_LE(distance, 1u) << to_string(m) << "/" << to_string(s);
      EXPECT_LT(warm.probes_sent, full.probes_sent)
          << to_string(m) << "/" << to_string(s);
    } else {
      // A fallback completes the sweep — never more probes than cold.
      EXPECT_EQ(warm.source, CalibrationSource::fallback);
      EXPECT_LE(warm.probes_sent, full.probes_sent);
    }

    // End to end: the warm driver must still deliver bit-exactly.
    Rng rng{follower.seed ^ 0xFEED};
    const BitVec payload = BitVec::random(rng, 512);
    const ChannelReport rep = proto::run_adaptive_transmission_warm(
        follower, payload, {}, pick);
    ASSERT_TRUE(rep.ok) << rep.failure_reason;
    EXPECT_TRUE(rep.sync_ok);
    EXPECT_EQ(rep.ber, 0.0);
    ASSERT_EQ(rep.received_payload.size(), payload.size());
    EXPECT_TRUE(rep.received_payload == payload);
  }
  // The screen tolerance is sized so same-link followers confirm in the
  // common case; demand a clear majority across the matrix.
  EXPECT_GE(confirmed, 4) << "only " << confirmed
                          << "/6 warm starts confirmed";
}

// A hint no probe can confirm (out-of-range index: nothing to probe at
// the hint or its neighbors) must degrade to the complete sweep — and
// because probe/trial seeds are keyed by the absolute grid index, that
// fallback sweep is bit-identical to a cold calibration.
TEST(Calibration, WarmFallsBackToTheFullSweepOnABogusHint)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 41;

  const proto::Calibration full = proto::calibrate_link(cfg);
  ASSERT_TRUE(full.ok) << full.failure;

  const proto::CalibrationPick bogus{100, 1.0, 0.0};
  const proto::Calibration warm =
      proto::calibrate_link_warm(cfg, {}, {}, bogus);
  ASSERT_TRUE(warm.ok) << warm.failure;
  EXPECT_EQ(warm.source, CalibrationSource::fallback);
  EXPECT_EQ(warm.grid_index, full.grid_index);
  EXPECT_EQ(warm.scale, full.scale);
  EXPECT_EQ(warm.probes_sent, full.probes_sent);
  EXPECT_EQ(warm.symbol_error, full.symbol_error);
  EXPECT_EQ(warm.margin, full.margin);
}

// --- bonded link (proto/bond) -----------------------------------------

ExperimentConfig bond_base(std::uint64_t seed)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = seed;
  return cfg;
}

// Short single-scale calibration so the bond tests spend their time in
// the striping logic, not the rate search it already has tests for.
proto::BondOptions cheap_bond_options()
{
  proto::BondOptions opt;
  opt.calibration.scales = {1.0};
  opt.calibration.probe_symbols = 64;
  opt.calibration.refine_candidates = 0;
  return opt;
}

// The tentpole property: any payload length in [0, 4096] stripes over
// N sub-channels and reassembles bit-exactly from the per-stripe
// sequence numbers, chunk-boundary cases included.
TEST(BondSession, ReassemblesEveryPayloadLengthBitExact)
{
  const proto::BondOptions opt = cheap_bond_options();
  const std::size_t chunk = opt.arq.chunk_bits;
  const std::vector<std::size_t> lengths = {
      0, 1, 2, chunk - 1, chunk, chunk + 1, 1000, 2048, 4096};
  for (const std::size_t n : lengths) {
    Rng rng{0xB0DD + n};
    const BitVec payload = BitVec::random(rng, n);
    const proto::BondReport bond =
        proto::bond_deliver(bond_base(0x51 + n), payload, 4, opt);
    ASSERT_TRUE(bond.ok) << n << ": " << bond.failure;
    ASSERT_TRUE(bond.delivered) << n << ": " << bond.failure;
    EXPECT_EQ(bond.received, payload) << n;
    EXPECT_EQ(bond.pairs_live, 4u) << n;
    EXPECT_EQ(bond.stripes, proto::frame_count(n, opt.arq)) << n;
  }
}

// Per-stripe sequence numbers survive wrap-around: more stripes than
// the seq space (2^seq_bits) forces the sender's window discipline and
// the receiver's residue resolution to agree across the wrap.
TEST(BondSession, ReassemblesThroughSequenceNumberWrap)
{
  proto::BondOptions opt = cheap_bond_options();
  opt.arq.chunk_bits = 16;
  opt.max_waves = 2000;
  Rng rng{0x33AA};
  const BitVec payload = BitVec::random(rng, 6000);  // 375 stripes > 256
  const proto::BondReport bond =
      proto::bond_deliver(bond_base(0x77), payload, 2, opt);
  ASSERT_TRUE(bond.delivered) << bond.failure;
  EXPECT_EQ(bond.received, payload);
  EXPECT_GT(bond.stripes, std::size_t{1} << opt.arq.seq_bits);
}

// Degraded mode: a sub-channel noise-killed mid-transfer is drained
// after `degrade_after` dead waves, its stripes re-queue on the
// survivors, and the payload still arrives bit-exactly.
TEST(BondSession, DrainsNoiseKilledSubChannelAndStillDelivers)
{
  proto::BondOptions opt = cheap_bond_options();
  opt.fault = [](std::size_t channel, std::size_t wave) {
    return channel == 0 && wave >= 1;
  };
  Rng rng{0xDEAD1};
  const BitVec payload = BitVec::random(rng, 2048);
  const proto::BondReport bond =
      proto::bond_deliver(bond_base(0x91), payload, 4, opt);
  ASSERT_TRUE(bond.delivered) << bond.failure;
  EXPECT_EQ(bond.received, payload);
  ASSERT_EQ(bond.channels.size(), 4u);
  EXPECT_TRUE(bond.channels[0].degraded);
  EXPECT_GE(bond.rebalances, 1u);
  EXPECT_GT(bond.retransmits, 0u);
  // The survivors carried the re-queued stripes.
  EXPECT_FALSE(bond.channels[1].degraded);
}

// Mixed mechanisms bond inside ONE simulation: cooperation (event) and
// contention (flock) sub-channels stripe the same payload.
TEST(BondSession, MixesMechanismsInOneSimulation)
{
  const std::vector<proto::BondChannelSpec> specs = {
      {Mechanism::event, {}}, {Mechanism::event, {}},
      {Mechanism::flock, {}}};
  Rng rng{0x3117};
  const BitVec payload = BitVec::random(rng, 1024);
  const proto::BondReport bond =
      proto::bond_deliver(bond_base(0xA3), payload, specs,
                          cheap_bond_options());
  ASSERT_TRUE(bond.delivered) << bond.failure;
  EXPECT_EQ(bond.received, payload);
  EXPECT_EQ(bond.pairs_live, 3u);
  ASSERT_EQ(bond.channels.size(), 3u);
  EXPECT_EQ(bond.channels[2].mechanism, Mechanism::flock);
  EXPECT_TRUE(bond.channels[2].calibrated);
  EXPECT_GT(bond.channels[2].stripes_delivered, 0u);
}

// A sub-channel whose topology cannot work (event cross-VM, Table VI ✗)
// never joins the bond; the survivors deliver and the report carries
// the live count — the denominator bug run_multi_pair had.
TEST(BondSession, ReportsLivePairsWhenASpecCannotWork)
{
  ExperimentConfig base = bond_base(0xC5);
  base.scenario = Scenario::cross_vm;
  base.hypervisor = HypervisorType::type1;
  base.mechanism = Mechanism::flock;
  base.timing = paper_timeset(Mechanism::flock, Scenario::cross_vm);

  proto::BondOptions opt = cheap_bond_options();
  opt.calibration.probe_symbols = 128;
  const std::vector<proto::BondChannelSpec> specs = {
      {Mechanism::flock, {}}, {Mechanism::event, {}}};
  Rng rng{0x2217};
  const BitVec payload = BitVec::random(rng, 512);
  const proto::BondReport bond =
      proto::bond_deliver(base, payload, specs, opt);
  ASSERT_TRUE(bond.ok) << bond.failure;
  EXPECT_EQ(bond.pairs_requested, 2u);
  EXPECT_EQ(bond.pairs_live, 1u);
  EXPECT_FALSE(bond.channels[1].calibrated);
  EXPECT_FALSE(bond.channels[1].error.empty());
  ASSERT_TRUE(bond.delivered) << bond.failure;
  EXPECT_EQ(bond.received, payload);
}

TEST(BondSession, AdapterReportsAggregateGoodputAndPairs)
{
  Rng rng{0x8181};
  const BitVec payload = BitVec::random(rng, 1024);
  proto::BondReport bond;
  const ChannelReport rep = proto::run_bonded_transmission(
      bond_base(0xD7), payload, 3, cheap_bond_options(), &bond);
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_EQ(rep.received_payload, payload);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->pairs, 3u);
  EXPECT_EQ(rep.proto->pairs_requested, 3u);
  EXPECT_DOUBLE_EQ(rep.throughput_bps, bond.aggregate_goodput_bps);
  EXPECT_GT(rep.throughput_bps, 0.0);
}

// --- drift detection + online recalibration ----------------------------

TEST(Drift, OnRoundHookSeesEveryRoundWithItsOutcome)
{
  Rng rng{99};
  proto::ArqOptions opt;
  opt.chunk_bits = 64;
  std::size_t calls = 0;
  std::size_t advanced = 0;
  opt.on_round = [&](std::size_t, std::size_t round, bool ok) {
    ++calls;
    if (ok) ++advanced;
    EXPECT_LT(round, opt.max_rounds_per_frame);
  };
  Rng payload_rng{7};
  const BitVec payload = BitVec::random(payload_rng, 256);
  proto::ArqStats stats;
  const auto got = proto::arq_deliver(payload, bsc(rng, 0.01), opt, &stats);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(calls, stats.frame_sends);
  EXPECT_EQ(advanced, stats.frames);
}

// The drift case end-to-end on the regime-shift scenario: the quiet
// host turns hostile at t=350ms, the calibrated multi-level classifier
// goes stale, and only the drift-aware session survives. Mirrors
// bench/ablation_scenarios at one seed so the property is gated in
// tier 1, not just the bench.
ExperimentConfig regime_shift_config()
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario_name = "regime-shift";
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.timing.symbol_bits = 2;
  cfg.sync_bits = 16;
  cfg.seed = 0x5CE7A210 + 0x3000;  // a bench seed whose stale link dies
  return cfg;
}

TEST(Drift, AdaptiveSessionSurvivesARegimeShiftOnlyWithRecalibration)
{
  Rng payload_rng{0x5CE7A210 ^ 0xD21FULL};
  const BitVec payload = BitVec::random(payload_rng, 4096);

  proto::AdaptiveOptions with_drift;
  const ChannelReport alive = proto::run_adaptive_transmission(
      regime_shift_config(), payload, with_drift);
  ASSERT_TRUE(alive.ok) << alive.failure_reason;
  EXPECT_TRUE(alive.sync_ok);
  EXPECT_DOUBLE_EQ(alive.ber, 0.0);
  ASSERT_TRUE(alive.proto.has_value());
  EXPECT_GE(alive.proto->drift_events, 1u);
  EXPECT_GE(alive.proto->recalibrations, 1u);
  EXPECT_GT(alive.proto->recovered_goodput_bps, 0.0);
  // Both noise phases were observed and accounted.
  ASSERT_GE(alive.proto->phases.size(), 2u);

  proto::AdaptiveOptions frozen;
  frozen.drift.enabled = false;
  const ChannelReport dead = proto::run_adaptive_transmission(
      regime_shift_config(), payload, frozen);
  ASSERT_TRUE(dead.ok);
  EXPECT_FALSE(dead.sync_ok);
  EXPECT_EQ(dead.failure_reason, "ARQ: retransmit bound exhausted");
  EXPECT_EQ(dead.proto->recalibrations, 0u);
}

TEST(Drift, MonitorStaysQuietUnderStationaryNoise)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 0xCA1F;
  Rng payload_rng{3};
  const BitVec payload = BitVec::random(payload_rng, 1024);
  const ChannelReport rep =
      proto::run_adaptive_transmission(cfg, payload, {});
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->drift_events, 0u);
  EXPECT_EQ(rep.proto->recalibrations, 0u);
}

TEST(Drift, LinkRetuneAndProbeOperateOnTheLiveStack)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 0x11;

  proto::Link link{cfg, cfg.timing,
                   exec::initial_classifier_for(cfg), 8};
  ASSERT_TRUE(link.error().empty()) << link.error();

  Rng rng{5};
  const BitVec pattern = BitVec::random(rng, 64);
  const proto::Link::ProbeResult first = link.probe(pattern);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.tx_symbols.size(), first.latencies.size());
  EXPECT_GT(first.elapsed, Duration::zero());

  const proto::ProbeFit fit = proto::fit_probe(
      first.tx_symbols, first.latencies, 2, first.elapsed);
  ASSERT_TRUE(fit.usable);
  EXPECT_GT(fit.margin, 0.0);

  // Retune to half rate: a second probe runs measurably faster wire
  // symbols at the new timing.
  const TimingConfig slower = scale_timing(cfg.timing, 2.0);
  link.retune(slower, fit.classifier);
  EXPECT_EQ(link.timing().t1.count_ns(), slower.t1.count_ns());
  const proto::Link::ProbeResult second = link.probe(pattern);
  ASSERT_TRUE(second.ok);
  EXPECT_GT(second.elapsed, first.elapsed);
}

}  // namespace
}  // namespace mes
