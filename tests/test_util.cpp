// Unit tests for the utility layer: time, rng, bitvec, stats, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "util/bitvec.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time.h"

namespace mes {
namespace {

using namespace mes::literals;

// --- Duration / TimePoint ----------------------------------------------------

TEST(Duration, ConstructionAndConversion)
{
  EXPECT_EQ(Duration::us(1.0).count_ns(), 1000);
  EXPECT_EQ(Duration::ms(1.0).count_ns(), 1'000'000);
  EXPECT_EQ(Duration::sec(1.0).count_ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::us(12.5).to_us(), 12.5);
  EXPECT_DOUBLE_EQ(Duration::sec(2.0).to_sec(), 2.0);
}

TEST(Duration, Arithmetic)
{
  const Duration a = Duration::us(10);
  const Duration b = Duration::us(4);
  EXPECT_EQ((a + b).to_us(), 14.0);
  EXPECT_EQ((a - b).to_us(), 6.0);
  EXPECT_EQ((a * 2.0).to_us(), 20.0);
  EXPECT_EQ((a / 2.0).to_us(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((-b).to_us(), -4.0);
}

TEST(Duration, ComparisonAndFlags)
{
  EXPECT_LT(Duration::us(1), Duration::us(2));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::us(1) - Duration::us(5)).is_negative());
  EXPECT_FALSE(Duration::us(5).is_negative());
}

TEST(Duration, CompoundAssignment)
{
  Duration d = Duration::us(5);
  d += Duration::us(3);
  EXPECT_EQ(d.to_us(), 8.0);
  d -= Duration::us(8);
  EXPECT_TRUE(d.is_zero());
}

TEST(Duration, Literals)
{
  EXPECT_EQ((15_us).count_ns(), 15'000);
  EXPECT_EQ((2_ms).count_ns(), 2'000'000);
  EXPECT_EQ((1_sec).count_ns(), 1'000'000'000);
  EXPECT_EQ((100_ns).count_ns(), 100);
}

TEST(TimePoint, ArithmeticWithDurations)
{
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::us(50);
  EXPECT_EQ((t1 - t0).to_us(), 50.0);
  EXPECT_EQ((t1 - Duration::us(20)).count_ns(), Duration::us(30).count_ns());
  EXPECT_LT(t0, t1);
}

TEST(TimeFormatting, HumanReadable)
{
  EXPECT_EQ(to_string(Duration::ns(500)), "500ns");
  EXPECT_EQ(to_string(Duration::us(1.5)), "1.500us");
  EXPECT_EQ(to_string(Duration::ms(2.25)), "2.250ms");
  EXPECT_EQ(to_string(Duration::sec(3)), "3.000s");
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval)
{
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound)
{
  Rng rng{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformRange)
{
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, BernoulliFrequency)
{
  Rng rng{13};
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, ExponentialMean)
{
  Rng rng{17};
  double sum = 0.0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) sum += rng.exponential(25.0);
  EXPECT_NEAR(sum / kTrials, 25.0, 0.5);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, NormalMoments)
{
  Rng rng{19};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
  Rng rng{23};
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(rng.lognormal_median(12.0, 0.5));
  EXPECT_NEAR(percentile(xs, 50.0), 12.0, 0.3);
  EXPECT_EQ(rng.lognormal_median(0.0, 0.5), 0.0);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
  Rng rng{29};
  double sum_small = 0.0;
  double sum_large = 0.0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    sum_small += static_cast<double>(rng.poisson(3.0));
    sum_large += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(sum_small / kTrials, 3.0, 0.1);
  EXPECT_NEAR(sum_large / kTrials, 100.0, 1.0);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, DurationHelpersNeverNegative)
{
  Rng rng{31};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.normal_dur(Duration::us(1), Duration::us(50)).count_ns(), 0);
    EXPECT_GE(rng.exponential_dur(Duration::us(10)).count_ns(), 0);
    EXPECT_GE(rng.lognormal_dur(Duration::us(10), 1.0).count_ns(), 0);
  }
}

TEST(Rng, ForkDecorrelates)
{
  Rng parent{37};
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// --- BitVec --------------------------------------------------------------------

TEST(BitVec, FromStringRoundTrip)
{
  const BitVec v = BitVec::from_string("10110001");
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.to_string(), "10110001");
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[7], 1);
  EXPECT_EQ(v[1], 0);
}

TEST(BitVec, FromStringRejectsGarbage)
{
  EXPECT_THROW(BitVec::from_string("10a1"), std::invalid_argument);
}

TEST(BitVec, VectorConstructorValidates)
{
  EXPECT_THROW(BitVec(std::vector<int>{0, 1, 2}), std::invalid_argument);
  EXPECT_NO_THROW(BitVec(std::vector<int>{0, 1, 1, 0}));
}

TEST(BitVec, TextRoundTrip)
{
  const std::string text = "MES-Attacks!";
  const BitVec v = BitVec::from_text(text);
  EXPECT_EQ(v.size(), text.size() * 8);
  EXPECT_EQ(v.to_text(), text);
}

TEST(BitVec, BytesBigEndianBitOrder)
{
  const BitVec v = BitVec::from_bytes({0x80, 0x01});
  EXPECT_EQ(v.to_string(), "1000000000000001");
  EXPECT_EQ(v.to_bytes(), (std::vector<std::uint8_t>{0x80, 0x01}));
}

TEST(BitVec, ToBytesRequiresMultipleOf8)
{
  EXPECT_THROW(BitVec::from_string("101").to_bytes(), std::invalid_argument);
}

TEST(BitVec, AlternatingPreamble)
{
  EXPECT_EQ(BitVec::alternating(6).to_string(), "101010");
  EXPECT_EQ(BitVec::alternating(0).size(), 0u);
  EXPECT_EQ(BitVec::alternating(1).to_string(), "1");
}

TEST(BitVec, CountsAndHamming)
{
  const BitVec a = BitVec::from_string("110010");
  EXPECT_EQ(a.count_ones(), 3u);
  EXPECT_EQ(a.count_zeros(), 3u);
  const BitVec b = BitVec::from_string("110011");
  EXPECT_EQ(a.hamming_distance(b), 1u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVec, HammingCountsLengthMismatchAsErrors)
{
  const BitVec a = BitVec::from_string("1111");
  const BitVec b = BitVec::from_string("11");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(b.hamming_distance(a), 2u);
}

TEST(BitVec, SliceAndAppend)
{
  BitVec v = BitVec::from_string("10101100");
  EXPECT_EQ(v.slice(2, 4).to_string(), "1011");
  EXPECT_EQ(v.slice(6, 100).to_string(), "00");  // clamps
  EXPECT_THROW(v.slice(9, 1), std::out_of_range);
  v.append(BitVec::from_string("11"));
  EXPECT_EQ(v.to_string(), "1010110011");
}

TEST(BitVec, RandomHasRoughlyHalfOnes)
{
  Rng rng{41};
  const BitVec v = BitVec::random(rng, 10000);
  EXPECT_NEAR(static_cast<double>(v.count_ones()) / 10000.0, 0.5, 0.03);
}

// --- Stats ----------------------------------------------------------------------

TEST(RunningStats, BasicMoments)
{
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle)
{
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesBetweenRanks)
{
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);
  h.add(9.9);
  h.add(-100.0);  // clamps to bin 0
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

// Regression: add() used to scale-and-cast to ptrdiff_t *before*
// clamping — UB for NaN and for samples whose scaled index overflows
// the integer. Non-finite and huge samples must be handled pre-cast.
TEST(Histogram, GuardsNonFiniteAndOverflowingSamples)
{
  Histogram h{0.0, 10.0, 4};
  h.add(std::numeric_limits<double>::quiet_NaN());  // dropped, counted
  h.add(std::numeric_limits<double>::infinity());   // top edge bin
  h.add(-std::numeric_limits<double>::infinity());  // bottom edge bin
  h.add(1e300);   // scaled index overflows any integer: top edge bin
  h.add(-1e300);  // bottom edge bin
  h.add(5.0);     // ordinary in-range sample still bins normally
  EXPECT_EQ(h.dropped(), 1u);
  EXPECT_EQ(h.total(), 5u);  // everything but the NaN
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);
}

TEST(Histogram, ModeBin)
{
  Histogram h{0.0, 3.0, 3};
  h.add(0.1);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bin(), 1u);
  EXPECT_THROW(Histogram(0.0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ConfusionMatrix, CountsAndErrorRate)
{
  ConfusionMatrix m{2};
  m.add(0, 0);
  m.add(0, 0);
  m.add(1, 1);
  m.add(1, 0);  // one error
  EXPECT_EQ(m.total(), 4u);
  EXPECT_EQ(m.errors(), 1u);
  EXPECT_DOUBLE_EQ(m.error_rate(), 0.25);
  EXPECT_EQ(m.at(1, 0), 1u);
  EXPECT_THROW(m.add(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(TwoMeans, SeparatesBimodalData)
{
  std::vector<double> xs;
  Rng rng{43};
  for (int i = 0; i < 300; ++i) {
    xs.push_back(rng.normal(20.0, 1.0));
    xs.push_back(rng.normal(100.0, 2.0));
  }
  const TwoMeans tm = two_means_cluster(xs);
  EXPECT_NEAR(tm.low, 20.0, 1.0);
  EXPECT_NEAR(tm.high, 100.0, 1.0);
  EXPECT_GT(tm.separation, 0.6);
  EXPECT_LT(tm.low_cv, 0.1);
  EXPECT_LT(tm.high_cv, 0.1);
}

TEST(TwoMeans, UnimodalDataShowsLowSeparation)
{
  std::vector<double> xs;
  Rng rng{47};
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(50.0, 5.0));
  const TwoMeans tm = two_means_cluster(xs);
  EXPECT_LT(tm.separation, 0.25);
}

TEST(TwoMeans, DegenerateInputs)
{
  EXPECT_EQ(two_means_cluster({}).separation, 0.0);
  EXPECT_EQ(two_means_cluster({5.0}).separation, 0.0);
  const TwoMeans same = two_means_cluster({3.0, 3.0, 3.0});
  EXPECT_EQ(same.separation, 0.0);
  EXPECT_EQ(same.low, 3.0);
}

// --- TextTable -------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns)
{
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, RejectsBadShapes)
{
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumberFormatters)
{
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::percent(0.01234, 2), "1.23%");
  EXPECT_EQ(TextTable::kbps(13105.0, 3), "13.105 kb/s");
}

TEST(RenderSeries, FormatsAndValidates)
{
  const std::string out = render_series("t", {1.0, 2.0}, {3.0, 4.0}, 1);
  EXPECT_NE(out.find("t\n"), std::string::npos);
  EXPECT_THROW(render_series("t", {1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mes
