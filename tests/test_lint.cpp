// mes_lint rule-engine tests: every rule is demonstrated live on a
// minimal violating fixture (tests/lint_fixtures/) and its clean
// counterpart. Fixtures carry `// LINT-EXPECT: <rule>` markers on the
// lines where a finding must fire; the test compares the marker set
// against the linter's output, so each rule's precision (fires exactly
// where expected, nowhere else) is pinned — deterministic, tier-1.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace {

using mes::lint::Finding;
using mes::lint::Options;
using mes::lint::Rule;

std::string read_fixture(const std::string& name)
{
  const std::string path = std::string{MES_LINT_FIXTURE_DIR} + "/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using LineRule = std::pair<std::size_t, std::string>;

// The `// LINT-EXPECT: rule [rule...]` markers in a fixture.
std::set<LineRule> expected_markers(const std::string& text)
{
  std::set<LineRule> out;
  std::istringstream in{text};
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ++n;
    const std::size_t pos = line.find("LINT-EXPECT:");
    if (pos == std::string::npos) continue;
    std::istringstream rules{line.substr(pos + 12)};
    std::string rule;
    while (rules >> rule) out.insert({n, rule});
  }
  return out;
}

std::set<LineRule> finding_set(const std::vector<Finding>& findings)
{
  std::set<LineRule> out;
  for (const auto& f : findings) {
    out.insert({f.line, std::string{mes::lint::rule_name(f.rule)}});
  }
  return out;
}

// Lints `fixture` as if it lived at `virtual_path` and checks the
// findings against the fixture's own markers.
void expect_markers(const std::string& fixture, const std::string& virtual_path)
{
  const std::string text = read_fixture(fixture);
  const auto findings = mes::lint::lint_source(virtual_path, text);
  EXPECT_EQ(finding_set(findings), expected_markers(text))
      << fixture << " scanned as " << virtual_path;
}

// --- rule 1: no-wallclock --------------------------------------------------

TEST(NoWallclock, FiresOnHostClocksAndEntropy)
{
  expect_markers("wallclock_bad.cpp", "src/proto/wallclock_bad.cpp");
}

TEST(NoWallclock, CleanOnSimulatedClockAndRng)
{
  expect_markers("wallclock_clean.cpp", "src/proto/wallclock_clean.cpp");
}

TEST(NoWallclock, NativeTreeIsExempt)
{
  // The identical violations under src/native/ are the native tier's
  // whole purpose — the default options allow them by path.
  const std::string text = read_fixture("wallclock_bad.cpp");
  const auto findings =
      mes::lint::lint_source("src/native/wallclock_bad.cpp", text);
  EXPECT_TRUE(findings.empty());
}

TEST(NoWallclock, PathAllowlistIsPerRule)
{
  // An allowlist entry for a different rule does not leak.
  Options opts;
  opts.allow_paths.push_back({Rule::checked_errors, "src/proto/"});
  const std::string text = read_fixture("wallclock_bad.cpp");
  const auto findings =
      mes::lint::lint_source("src/proto/wallclock_bad.cpp", text, opts);
  EXPECT_FALSE(findings.empty());
}

// --- rule 2: no-unordered-iteration ----------------------------------------

TEST(NoUnorderedIteration, FiresOnEmissionPaths)
{
  expect_markers("unordered_bad.cpp", "src/exec/unordered_bad.cpp");
}

TEST(NoUnorderedIteration, CleanOnOrderedContainers)
{
  expect_markers("unordered_clean.cpp", "src/exec/unordered_clean.cpp");
}

TEST(NoUnorderedIteration, OnlyGuardsEmissionPaths)
{
  // The same iteration outside the emission set (e.g. src/detect/) is
  // not result-affecting and stays unflagged.
  const std::string text = read_fixture("unordered_bad.cpp");
  const auto findings =
      mes::lint::lint_source("src/detect/unordered_bad.cpp", text);
  EXPECT_TRUE(findings.empty());
}

// --- rule 3: coro-lifetime -------------------------------------------------

TEST(CoroLifetime, FiresOnDanglingProneSignaturesAndRawResumes)
{
  expect_markers("coro_bad.cpp", "src/channels/coro_bad.cpp");
}

TEST(CoroLifetime, CleanOnValueParamsAndScheduledResumes)
{
  expect_markers("coro_clean.cpp", "src/channels/coro_clean.cpp");
}

TEST(CoroLifetime, SimulatorInternalsMayResume)
{
  // Raw resume() is the simulator's own dispatch mechanism; only the
  // resume finding is path-exempt, the signature rules still apply.
  const std::string text = read_fixture("coro_bad.cpp");
  const auto findings = mes::lint::lint_source("src/sim/coro_bad.cpp", text);
  for (const auto& f : findings) {
    EXPECT_EQ(mes::lint::rule_name(f.rule), "coro-lifetime");
    EXPECT_TRUE(f.message.find("raw coroutine resume") == std::string::npos)
        << f.message;
  }
  EXPECT_EQ(findings.size(), expected_markers(text).size() - 1);
}

// --- rule 4: hot-path-pod --------------------------------------------------

TEST(HotPathPod, FiresInsideMarkedStructsOnly)
{
  expect_markers("hotpod_bad.cpp", "src/sim/hotpod_bad.h");
}

TEST(HotPathPod, CleanOnActualPod)
{
  expect_markers("hotpod_clean.cpp", "src/sim/hotpod_clean.h");
}

// --- rule 5: checked-errors ------------------------------------------------

TEST(CheckedErrors, FiresOnDiscardedErrorResults)
{
  expect_markers("checked_bad.cpp", "src/channels/checked_bad.cpp");
}

TEST(CheckedErrors, CleanWhenResultsAreConsumed)
{
  expect_markers("checked_clean.cpp", "src/channels/checked_clean.cpp");
}

TEST(CheckedErrors, FiresOnFabricPrimitivesInDmeSources)
{
  expect_markers("dme_checked_bad.cpp", "src/dme/dme_checked_bad.cpp");
  expect_markers("dme_checked_bad.cpp", "src/net/dme_checked_bad.cpp");
  expect_markers("dme_checked_bad.cpp", "src/channels/dme_checked_bad.cpp");
}

TEST(CheckedErrors, CleanWhenFabricOutcomesAreConsumed)
{
  expect_markers("dme_checked_clean.cpp", "src/dme/dme_checked_clean.cpp");
}

TEST(CheckedErrors, FabricNamesStayUnflaggedOutsideDmeSources)
{
  // The single-host contention channels legitimately run void
  // acquire()/release() Procs; the fabric name set must not leak onto
  // them — same text, non-dme path, zero findings.
  const std::string text = read_fixture("dme_checked_bad.cpp");
  const auto findings =
      mes::lint::lint_source("src/channels/contention_base.cpp", text);
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected findings";
}

// --- suppressions ----------------------------------------------------------

TEST(Suppression, InlineAllowWithJustificationSilences)
{
  const std::string text = read_fixture("suppress_ok.cpp");
  const auto findings =
      mes::lint::lint_source("src/proto/suppress_ok.cpp", text);
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected findings";
}

TEST(Suppression, MissingJustificationOrUnknownRuleIsItsOwnFinding)
{
  const std::string text = read_fixture("suppress_bad.cpp");
  const auto findings =
      mes::lint::lint_source("src/proto/suppress_bad.cpp", text);
  const std::set<LineRule> expected{
      {10, "bad-allow"},       // allow(no-wallclock) with no justification
      {11, "no-wallclock"},    // ...so the violation stays reported
      {17, "bad-allow"},       // allow(not-a-real-rule)
      {18, "checked-errors"},  // ...and this one stays reported too
  };
  EXPECT_EQ(finding_set(findings), expected);
}

// --- plumbing --------------------------------------------------------------

TEST(Plumbing, RuleNamesRoundTrip)
{
  for (std::size_t i = 0; i < mes::lint::kRuleCount; ++i) {
    const auto r = static_cast<Rule>(i);
    const auto back = mes::lint::rule_from_name(mes::lint::rule_name(r));
    ASSERT_TRUE(back.has_value()) << mes::lint::rule_name(r);
    EXPECT_EQ(*back, r);
  }
  EXPECT_FALSE(mes::lint::rule_from_name("nope").has_value());
}

TEST(Plumbing, CppSourceFilter)
{
  EXPECT_TRUE(mes::lint::is_cpp_source("src/sim/simulator.cpp"));
  EXPECT_TRUE(mes::lint::is_cpp_source("src/sim/simulator.h"));
  EXPECT_FALSE(mes::lint::is_cpp_source("README.md"));
  EXPECT_FALSE(mes::lint::is_cpp_source("plans/smoke.json"));
}

TEST(Plumbing, FindingsAreLineOrdered)
{
  const std::string text = read_fixture("checked_bad.cpp");
  const auto findings =
      mes::lint::lint_source("src/channels/checked_bad.cpp", text);
  ASSERT_FALSE(findings.empty());
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].line, findings[i].line);
  }
}

}  // namespace
