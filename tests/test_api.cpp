// Tests for the public façade (mes::api): the JSON document model, the
// layered spec round-trips (every field, defaults, invalid-value
// rejection), the legacy ExperimentConfig adapter, the Session duplex
// byte-stream over every protocol mode, and the golden-equivalence
// lock: Session over the adapter reproduces the legacy campaign
// emissions byte for byte.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/json.h"
#include "api/session.h"
#include "api/spec.h"
#include "exec/campaign.h"
#include "exec/seed.h"
#include "proto/adaptive.h"
#include "util/rng.h"

namespace mes {
namespace {

// --- the JSON document model ------------------------------------------

TEST(Json, ParsesAndDumpsRoundTrip)
{
  const std::string text =
      R"({"a":1,"b":-2.5,"c":"x\"y","d":[true,false,null],"e":{}})";
  const api::Json doc = api::Json::parse(text);
  EXPECT_EQ(doc.dump(), text);
  EXPECT_EQ(doc.find("a")->as_u64(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("b")->as_double(), -2.5);
  EXPECT_EQ(doc.find("c")->as_string(), "x\"y");
  EXPECT_EQ(doc.find("d")->items().size(), 3u);
  EXPECT_TRUE(doc.find("d")->items()[2].is_null());
}

TEST(Json, U64SeedsSurviveExactly)
{
  // 15877410703883005819 > 2^63: a double round-trip would shave bits.
  const api::Json doc = api::Json::parse("{\"seed\":15877410703883005819}");
  EXPECT_EQ(doc.find("seed")->as_u64(), 15877410703883005819ULL);
  EXPECT_EQ(doc.dump(), "{\"seed\":15877410703883005819}");
}

TEST(Json, DoublesUseShortestRoundTrip)
{
  const api::Json v = api::Json::number(0.1);
  EXPECT_EQ(v.dump(), "0.1");
  EXPECT_DOUBLE_EQ(api::Json::parse(v.dump()).as_double(), 0.1);
}

TEST(Json, RejectsMalformedDocuments)
{
  for (const char* bad :
       {"{\"a\":nan}", "{\"a\":inf}", "{\"a\":1,}", "[1 2]", "{'a':1}",
        "{\"a\":1}x", "{\"a\":1,\"a\":2}", "\"unterminated", "{\"a\":01e}",
        "{\"seed\":0123}", "{\"a\":-01}", "tru"}) {
    EXPECT_THROW((void)api::Json::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, SurrogatePairsDecodeToUtf8AndLoneSurrogatesAreRejected)
{
  // \ud83d\ude00 is U+1F600 — one 4-byte UTF-8 sequence, not CESU-8.
  const api::Json doc = api::Json::parse("{\"tag\":\"\\ud83d\\ude00\"}");
  EXPECT_EQ(doc.find("tag")->as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW((void)api::Json::parse("\"\\ud83d\""), std::invalid_argument);
  EXPECT_THROW((void)api::Json::parse("\"\\ude00\""), std::invalid_argument);
  EXPECT_THROW((void)api::Json::parse("\"\\ud83dx\""), std::invalid_argument);
}

TEST(Json, DeeplyNestedDocumentsAreAParseErrorNotAStackOverflow)
{
  std::string deep;
  for (int i = 0; i < 200000; ++i) deep += '[';
  EXPECT_THROW((void)api::Json::parse(deep), std::invalid_argument);
}

TEST(Json, ExactIntegerReadsRejectFractionsAndNegatives)
{
  EXPECT_THROW((void)api::Json::parse("1.5").as_u64(), std::invalid_argument);
  EXPECT_THROW((void)api::Json::parse("-3").as_u64(), std::invalid_argument);
  EXPECT_EQ(api::Json::parse("-3").as_i64(), -3);
  EXPECT_THROW((void)api::Json::parse("\"3\"").as_u64(),
               std::invalid_argument);
}

// --- spec JSON round-trips --------------------------------------------

TEST(Spec, DefaultSessionSpecRoundTripsThroughJson)
{
  const api::SessionSpec spec;
  const api::SessionSpec back = api::SessionSpec::parse(spec.to_json_text());
  EXPECT_EQ(back, spec);
  EXPECT_EQ(spec.validate(), "");
}

// Every field pushed off its default, including sub-microsecond timing
// (299 ns would not survive a microsecond double).
api::SessionSpec exhaustive_spec()
{
  api::SessionSpec spec;
  spec.stack.mechanism = Mechanism::flock_shared;
  spec.stack.scenario = "noisy-local";
  spec.stack.hypervisor = HypervisorType::type2;
  spec.stack.seed = 15877410703883005819ULL;
  spec.stack.fairness = os::LockFairness::unfair;
  spec.stack.semaphore_initial = 3;
  spec.stack.mitigation_fuzz = Duration::ns(1234);
  spec.stack.loop_cost = Duration::ns(299);
  spec.stack.fine_grained_sync = false;
  spec.stack.recalibrate_from_preamble = false;
  spec.stack.trace = true;
  spec.stack.tag = "t\"ag,1";
  spec.stack.max_events = 12345678901ULL;
  TimingConfig timing;
  timing.t1 = Duration::ns(42500);
  timing.t0 = Duration::ns(299);
  timing.interval = Duration::ns(65001);
  spec.link.timing = timing;
  spec.link.symbol_bits = 2;
  spec.link.sync_bits = 16;
  spec.link.probe_symbols = 128;
  spec.link.min_margin = 1.75;
  spec.link.drift = false;
  spec.link.drift_trigger_rounds = 5;
  spec.link.drift_max_recalibrations = 2;
  spec.link.pairs = 4;
  spec.protocol = ProtocolMode::adaptive;
  spec.chunk_bits = 128;
  spec.fec_depth = 0;
  spec.max_rounds_per_frame = 7;
  spec.max_rounds = 3;
  return spec;
}

TEST(Spec, EveryFieldRoundTripsThroughJson)
{
  const api::SessionSpec spec = exhaustive_spec();
  EXPECT_EQ(spec.validate(), "");
  const api::SessionSpec back = api::SessionSpec::parse(spec.to_json_text());
  EXPECT_EQ(back, spec);
  // And compactly, through the document model.
  const api::SessionSpec again =
      api::SessionSpec::from_json(api::Json::parse(spec.to_json().dump()));
  EXPECT_EQ(again, spec);
}

TEST(Spec, AbsentFieldsKeepDefaults)
{
  const api::SessionSpec spec =
      api::SessionSpec::parse("{\"stack\":{\"mechanism\":\"flock\"}}");
  EXPECT_EQ(spec.stack.mechanism, Mechanism::flock);
  EXPECT_EQ(spec.stack.scenario, "local");
  EXPECT_EQ(spec.link.pairs, 1u);
  EXPECT_EQ(spec.protocol, ProtocolMode::fixed);
}

TEST(Spec, ParseRejectsUnknownEnumStringsAndKeys)
{
  for (const char* bad : {
           "{\"stack\":{\"mechanism\":\"mootex\"}}",
           "{\"stack\":{\"hypervisor\":\"type-9\"}}",
           "{\"stack\":{\"fairness\":\"rigged\"}}",
           "{\"protocol\":\"telepathy\"}",
           "{\"stack\":{\"seed\":-1}}",
           "{\"stack\":{\"seed\":1.5}}",
           "{\"link\":{\"timing\":\"fast\"}}",
           "{\"link\":{\"timing\":{\"t1_us\":100}}}",  // _ns, not _us
           "{\"link\":{\"paris\":2}}",                 // typo'd key
           "{\"chunk_bits\":\"many\"}",
       }) {
    EXPECT_THROW((void)api::SessionSpec::parse(bad), std::invalid_argument)
        << bad;
  }
}

TEST(Spec, ValidateRejectsOutOfRangeValues)
{
  const auto invalid = [](auto mutate) {
    api::SessionSpec spec;
    mutate(spec);
    return spec.validate();
  };
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.stack.scenario = "mars"; }),
            "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.link.symbol_bits = 0; }), "");
  // > 8 would abort inside the codec's SymbolSchedule; validate()
  // promises a clean error instead.
  EXPECT_NE(invalid([](api::SessionSpec& s) {
              s.link.symbol_bits = 9;
              s.link.sync_bits = 9;
            }),
            "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.link.sync_bits = 0; }), "");
  EXPECT_NE(invalid([](api::SessionSpec& s) {
              s.link.symbol_bits = 3;
              s.link.sync_bits = 8;  // not a multiple of the width
            }),
            "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.link.pairs = 0; }), "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.link.pairs = 5000; }), "");
  // Bonded links run the per-pair adaptive stack; a fixed/arq protocol
  // over pairs > 1 would be silently ignored, so it is invalid.
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.link.pairs = 4; }), "");
  EXPECT_EQ(invalid([](api::SessionSpec& s) {
              s.link.pairs = 4;
              s.protocol = ProtocolMode::adaptive;
            }),
            "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.chunk_bits = 0; }), "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.max_rounds = 0; }), "");
  EXPECT_NE(invalid([](api::SessionSpec& s) { s.max_rounds_per_frame = 0; }),
            "");
  EXPECT_NE(invalid([](api::SessionSpec& s) {
              s.stack.mitigation_fuzz = Duration::ns(-1);
            }),
            "");
}

// --- the legacy adapter ------------------------------------------------

ExperimentConfig exhaustive_config()
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::semaphore;
  cfg.scenario = Scenario::cross_sandbox;
  cfg.scenario_name = "cross-sandbox";
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(Mechanism::semaphore, Scenario::cross_sandbox);
  cfg.timing.t1 = Duration::ns(123456);
  cfg.sync_bits = 24;
  cfg.seed = 0xFEEDFACECAFEBEEFULL;
  cfg.fairness = os::LockFairness::unfair;
  cfg.protocol = ProtocolMode::arq;
  cfg.loop_cost = Duration::us(7.5);
  cfg.recalibrate_from_preamble = false;
  cfg.fine_grained_sync = false;
  cfg.semaphore_initial = 2;
  cfg.mitigation_fuzz = Duration::us(3.0);
  cfg.enable_trace = true;
  cfg.tag = "42";
  cfg.max_events = 777777;
  return cfg;
}

TEST(Adapter, FromSpecsInvertsToSpecsFieldByField)
{
  const ExperimentConfig cfg = exhaustive_config();
  const api::SessionSpec spec = api::to_specs(cfg);
  const ExperimentConfig back = api::from_specs(spec);

  EXPECT_EQ(back.mechanism, cfg.mechanism);
  EXPECT_EQ(back.scenario, cfg.scenario);
  EXPECT_EQ(back.scenario_name, cfg.scenario_name);
  EXPECT_EQ(back.hypervisor, cfg.hypervisor);
  EXPECT_EQ(back.timing, cfg.timing);
  EXPECT_EQ(back.sync_bits, cfg.sync_bits);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.fairness, cfg.fairness);
  EXPECT_EQ(back.protocol, cfg.protocol);
  EXPECT_EQ(back.loop_cost.count_ns(), cfg.loop_cost.count_ns());
  EXPECT_EQ(back.recalibrate_from_preamble, cfg.recalibrate_from_preamble);
  EXPECT_EQ(back.fine_grained_sync, cfg.fine_grained_sync);
  EXPECT_EQ(back.semaphore_initial, cfg.semaphore_initial);
  EXPECT_EQ(back.mitigation_fuzz.count_ns(), cfg.mitigation_fuzz.count_ns());
  EXPECT_EQ(back.enable_trace, cfg.enable_trace);
  EXPECT_EQ(back.tag, cfg.tag);
  EXPECT_EQ(back.max_events, cfg.max_events);

  // The adapter survives the JSON wire too.
  const ExperimentConfig wired = api::from_specs(
      api::SessionSpec::parse(spec.to_json_text()));
  EXPECT_EQ(wired.timing, cfg.timing);
  EXPECT_EQ(wired.seed, cfg.seed);

  // Lifting with a bonded pair count canonicalizes the protocol to
  // adaptive — expand() forces exactly that for bonded cells, and the
  // spec layer validates it instead of implying it.
  const api::SessionSpec bonded = api::to_specs(cfg, 3);
  EXPECT_EQ(bonded.link.pairs, 3u);
  EXPECT_EQ(bonded.protocol, ProtocolMode::adaptive);
  EXPECT_EQ(bonded.validate(), "");
}

TEST(Adapter, LiftedSpecsSurviveTheJsonWireEvenWithWideSymbols)
{
  // The timing object on the wire carries only t1/t0/interval;
  // link.symbol_bits is the authoritative width. A config with a wide
  // alphabet must still round-trip to an *equal* spec.
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.timing.symbol_bits = 2;
  cfg.sync_bits = 16;
  const api::SessionSpec spec = api::to_specs(cfg);
  EXPECT_EQ(spec.link.symbol_bits, 2u);
  EXPECT_EQ(api::SessionSpec::parse(spec.to_json_text()), spec);
  EXPECT_EQ(api::from_specs(spec).timing, cfg.timing);
}

TEST(Adapter, ScenarioAliasesCanonicalizeThroughFromSpecs)
{
  api::SessionSpec spec;
  spec.stack.scenario = "noisy";  // alias of noisy-local
  const ExperimentConfig cfg = api::from_specs(spec);
  EXPECT_EQ(cfg.scenario_name, "noisy-local");
  EXPECT_EQ(cfg.scenario, Scenario::local);  // anchor class
}

// --- the Session façade ------------------------------------------------

api::SessionSpec local_event_spec(std::uint64_t seed)
{
  api::SessionSpec spec;
  spec.stack.mechanism = Mechanism::event;
  spec.stack.scenario = "local";
  spec.stack.seed = seed;
  return spec;
}

TEST(Session, FixedTransferMatchesDirectRunnerBitForBit)
{
  const api::SessionSpec spec = local_event_spec(0xA11CE);
  api::Session session = api::Session::open(spec);
  ASSERT_TRUE(session.is_open()) << session.error();

  Rng rng{1};
  const BitVec payload = BitVec::random(rng, 512);
  const ChannelReport via_facade = session.transfer(payload);
  const ChannelReport direct =
      run_transmission(api::from_specs(spec), payload);
  ASSERT_TRUE(via_facade.ok) << via_facade.failure_reason;
  EXPECT_DOUBLE_EQ(via_facade.ber, direct.ber);
  EXPECT_DOUBLE_EQ(via_facade.throughput_bps, direct.throughput_bps);
  EXPECT_EQ(via_facade.received_payload, direct.received_payload);
  EXPECT_EQ(via_facade.elapsed.count_ns(), direct.elapsed.count_ns());
}

TEST(Session, ArqModeDeliversExactlyThroughTheFacade)
{
  api::SessionSpec spec = local_event_spec(0xA2);
  spec.protocol = ProtocolMode::arq;
  api::Session session = api::Session::open(spec);
  Rng rng{2};
  const ChannelReport rep = session.transfer(BitVec::random(rng, 512));
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->mode, ProtocolMode::arq);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  EXPECT_EQ(session.stats().frames, rep.proto->frames);
}

TEST(Session, LinkSyncBitsDriveTheArqPreamble)
{
  // The spec's preamble knob must reach the ARQ link: a longer
  // preamble spends more wire time per round, deterministically.
  Rng rng{9};
  const BitVec payload = BitVec::random(rng, 256);
  api::SessionSpec short_sync = local_event_spec(0x51);
  short_sync.protocol = ProtocolMode::arq;
  api::SessionSpec long_sync = short_sync;
  long_sync.link.sync_bits = 24;
  const ChannelReport a =
      api::Session::open(short_sync).transfer(payload);
  const ChannelReport b = api::Session::open(long_sync).transfer(payload);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_NE(a.elapsed.count_ns(), b.elapsed.count_ns());
}

TEST(Session, AdaptiveModeCalibratesAndExposesTheVerdict)
{
  api::SessionSpec spec = local_event_spec(0xA3);
  spec.protocol = ProtocolMode::adaptive;
  api::Session session = api::Session::open(spec);
  Rng rng{3};
  const ChannelReport rep = session.transfer(BitVec::random(rng, 512));
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->mode, ProtocolMode::adaptive);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  ASSERT_TRUE(session.calibration().has_value());
  EXPECT_TRUE(session.calibration()->ok);
  EXPECT_GT(session.calibration()->margin, 0.0);
}

TEST(Session, BondedModeStripesAcrossPairs)
{
  api::SessionSpec spec = local_event_spec(0xB0DDCE11);
  spec.link.pairs = 2;
  spec.protocol = ProtocolMode::adaptive;  // bonded implies adaptive
  api::Session session = api::Session::open(spec);
  Rng rng{4};
  const ChannelReport rep = session.transfer(BitVec::random(rng, 512));
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_EQ(rep.proto->pairs, 2u);
  ASSERT_TRUE(session.bond().has_value());
  EXPECT_EQ(session.bond()->pairs_live, 2u);
}

// The drift-aware path through the same interface: the regime-shift
// scenario turns hostile mid-transfer and the session recalibrates
// online (mirrors test_proto's direct-driver test at the same seed).
TEST(Session, DriftAwareAdaptiveSurvivesARegimeShift)
{
  api::SessionSpec spec;
  spec.stack.mechanism = Mechanism::event;
  spec.stack.scenario = "regime-shift";
  spec.stack.seed = 0x5CE7A210 + 0x3000;
  spec.link.symbol_bits = 2;
  spec.link.sync_bits = 16;
  spec.protocol = ProtocolMode::adaptive;
  api::Session session = api::Session::open(spec);
  ASSERT_TRUE(session.is_open()) << session.error();

  Rng payload_rng{0x5CE7A210 ^ 0xD21FULL};
  const ChannelReport rep =
      session.transfer(BitVec::random(payload_rng, 4096));
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_DOUBLE_EQ(rep.ber, 0.0);
  ASSERT_TRUE(rep.proto.has_value());
  EXPECT_GE(rep.proto->drift_events, 1u);
  EXPECT_GE(rep.proto->recalibrations, 1u);
  EXPECT_GE(session.stats().drift_events, 1u);
  EXPECT_GE(session.stats().recalibrations, 1u);
}

TEST(Session, ByteStreamSendRecvRoundTripsText)
{
  // ARQ mode: the byte stream is reliable, so repeated sends must
  // round-trip bit-exactly regardless of the noise realization each
  // salted transfer happens to draw.
  api::SessionSpec spec = local_event_spec(2027);
  spec.protocol = ProtocolMode::arq;
  api::Session session = api::Session::open(spec);
  ASSERT_TRUE(session.send_text("MES!"));
  EXPECT_EQ(session.recv_text(), "MES!");
  EXPECT_EQ(session.recv_text(), "");  // drained

  ASSERT_TRUE(session.send_text("more"));
  EXPECT_EQ(session.recv_text(), "more");
  EXPECT_EQ(session.stats().transfers, 2u);
  EXPECT_EQ(session.stats().bytes_sent, 8u);
  EXPECT_EQ(session.stats().bytes_received, 8u);
}

TEST(Session, FixedModeByteStreamDeliversWhatTheSpyMeasured)
{
  // Fixed mode is a raw round: recv() hands over exactly what arrived,
  // bit errors included — the report says whether it was clean.
  api::Session session = api::Session::open(local_event_spec(2027));
  ASSERT_TRUE(session.send_text("MES!"));
  const std::vector<std::uint8_t> got = session.recv();
  EXPECT_EQ(got,
            session.last_report().received_payload.slice(0, 32).to_bytes());
}

TEST(Session, SaltedTransfersDifferFromAReplay)
{
  api::Session session = api::Session::open(local_event_spec(99));
  Rng rng{5};
  const BitVec payload = BitVec::random(rng, 256);
  const ChannelReport first = session.transfer(payload);
  const ChannelReport second = session.transfer(payload);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  // Same payload, same spec — different noise realization.
  EXPECT_NE(first.rx_latencies, second.rx_latencies);

  // And the salt schedule is deterministic: a fresh session replays it.
  api::Session replay = api::Session::open(local_event_spec(99));
  const ChannelReport r1 = replay.transfer(payload);
  const ChannelReport r2 = replay.transfer(payload);
  EXPECT_DOUBLE_EQ(r1.ber, first.ber);
  EXPECT_DOUBLE_EQ(r2.ber, second.ber);
  EXPECT_EQ(r2.received_payload, second.received_payload);
}

TEST(Session, TransferSaltsLiveInTheirOwnDomainAwayFromRetryRounds)
{
  // run_with_retries salts retry round k as mix_seed(S, {k}); transfer
  // k must NOT land on the same stream, or transfer 0's retry round k
  // would replay transfer k's noise realization.
  const std::uint64_t seed = 0xD07A11;
  api::Session session = api::Session::open(local_event_spec(seed));
  Rng rng{8};
  const BitVec payload = BitVec::random(rng, 256);
  (void)session.transfer(payload);  // transfer 0: the spec seed itself
  const ChannelReport transfer1 = session.transfer(payload);

  ExperimentConfig retry_cfg = api::from_specs(local_event_spec(seed));
  retry_cfg.seed = exec::mix_seed(seed, {1});  // retry round 1's seed
  const ChannelReport retry1 = run_transmission(retry_cfg, payload);
  ASSERT_TRUE(transfer1.ok);
  ASSERT_TRUE(retry1.ok);
  EXPECT_NE(transfer1.rx_latencies, retry1.rx_latencies);
}

TEST(Session, WiderAlphabetsPadBytePayloadsToWholeSymbols)
{
  api::SessionSpec spec = local_event_spec(7);
  spec.link.symbol_bits = 3;
  spec.link.sync_bits = 24;
  api::Session session = api::Session::open(spec);
  ASSERT_TRUE(session.is_open()) << session.error();
  ASSERT_TRUE(session.send_text("Z"));  // 8 bits -> padded to 9
  EXPECT_EQ(session.recv_text(), "Z");
}

TEST(Session, InvalidSpecFailsAtOpenNotAtTransfer)
{
  api::SessionSpec spec;
  spec.stack.mechanism = Mechanism::flock;
  spec.stack.scenario = "cross-sandbox";
  spec.link.symbol_bits = 0;
  api::Session session = api::Session::open(spec);
  EXPECT_FALSE(session.is_open());
  EXPECT_NE(session.error(), "");
  const ChannelReport rep = session.transfer(BitVec::from_text("x"));
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure_reason, session.error());
  // The failure report carries the spec's real identity, like the
  // legacy runner's failure path stamped its cfg.
  EXPECT_EQ(rep.mechanism, Mechanism::flock);
  EXPECT_EQ(rep.scenario_name, "cross-sandbox");
}

TEST(Session, TopologyVerdictsSurfacePerTransferLikeTheLegacyDrivers)
{
  // Event never resolves across a VM boundary (Table VI); the spec is
  // structurally fine, the transfer reports the verdict.
  api::SessionSpec spec;
  spec.stack.mechanism = Mechanism::event;
  spec.stack.scenario = "cross-VM";
  spec.stack.hypervisor = HypervisorType::type1;
  api::Session session = api::Session::open(spec);
  ASSERT_TRUE(session.is_open()) << session.error();
  const ChannelReport rep = session.transfer(BitVec::from_text("x"));
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason, "");
}

TEST(Session, StackTraceKnobSurfacesTheKernelOpTrace)
{
  api::SessionSpec spec = local_event_spec(0x7ACE);
  spec.stack.trace = true;
  api::Session session = api::Session::open(spec);
  EXPECT_TRUE(session.trace().empty());
  Rng rng{10};
  ASSERT_TRUE(session.transfer(BitVec::random(rng, 128)).ok);
  EXPECT_FALSE(session.trace().empty());  // the detector's input
}

TEST(Session, CloseStopsTransfersButKeepsTheBuffer)
{
  api::Session session = api::Session::open(local_event_spec(11));
  ASSERT_TRUE(session.send_text("hi"));
  session.close();
  EXPECT_FALSE(session.is_open());
  EXPECT_FALSE(session.send_text("more"));
  EXPECT_EQ(session.recv_text(), "hi");
}

// --- retry-round seed salting (run_with_retries) -----------------------

TEST(Retries, FirstRoundRunsOnTheConfiguredSeedExactly)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 1234;
  Rng rng{6};
  const BitVec payload = BitVec::random(rng, 128);
  const RoundedReport rounded = run_with_retries(cfg, payload, 4);
  ASSERT_TRUE(rounded.report.ok);
  if (rounded.rounds_attempted == 1) {
    const ChannelReport direct = run_transmission(cfg, payload);
    EXPECT_EQ(rounded.report.received_payload, direct.received_payload);
    EXPECT_DOUBLE_EQ(rounded.report.ber, direct.ber);
  }
}

// --- golden equivalence: Session over the adapter ----------------------

std::string read_golden(const char* name)
{
  std::ifstream in{std::string{MES_GOLDEN_DIR} + "/" + name,
                   std::ios::binary};
  EXPECT_TRUE(in.good()) << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// The legacy golden plan (tests/test_exec.cpp), run cell by cell
// through api::Session over the to_specs adapter instead of the
// campaign runner: the emissions must still match the pre-façade
// fixtures byte for byte.
TEST(Golden, SessionOverAdapterReproducesLegacyCampaignBytes)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::flock, Mechanism::file_lock_ex,
                     Mechanism::mutex, Mechanism::semaphore,
                     Mechanism::event, Mechanism::waitable_timer};
  plan.scenarios = {exec::named_scenario("local"),
                    exec::named_scenario("cross-sandbox"),
                    exec::named_scenario("cross-VM", HypervisorType::type1)};
  plan.repeats = 2;
  plan.seed_base = 0x1E6AC7;
  plan.payload_bits = 512;

  std::vector<exec::CellResult> results;
  for (const exec::CampaignCell& cell : exec::expand(plan)) {
    api::Session session =
        api::Session::open(api::to_specs(cell.config, cell.bond_pairs));
    exec::CellResult result;
    result.report = session.transfer(exec::cell_payload(cell));
    result.cell = cell;
    results.push_back(std::move(result));
  }
  const exec::CampaignResult result =
      exec::aggregate_cells(std::move(results));

  std::ostringstream csv, json;
  exec::write_csv(csv, result);
  exec::write_json(json, result);
  EXPECT_EQ(csv.str(), read_golden("legacy_campaign.csv"));
  EXPECT_EQ(json.str(), read_golden("legacy_campaign.json"));
}

// --- campaigns as data (PlanSpec) --------------------------------------

TEST(Plan, DefaultPlanRoundTripsThroughJson)
{
  const api::PlanSpec plan;
  EXPECT_EQ(plan.validate(), "");
  EXPECT_EQ(api::PlanSpec::parse(plan.to_json_text()), plan);
}

TEST(Plan, EveryAxisRoundTripsThroughJson)
{
  api::PlanSpec plan;
  plan.mechanisms = {Mechanism::flock, Mechanism::event};
  plan.scenarios = {{"local", HypervisorType::none},
                    {"cross-VM", HypervisorType::type2}};
  TimingConfig fast;
  fast.t0 = Duration::us(10);
  fast.interval = Duration::us(40);
  plan.timings = {{"paper", {}}, {"fast", fast}};
  plan.protocols = {ProtocolMode::fixed, ProtocolMode::adaptive};
  plan.pairs = {1, 4};
  plan.repeats = 3;
  plan.seed_base = 0xC0FFEE;
  plan.payload_bits = 1024;
  plan.session = exhaustive_spec();
  plan.session.stack.scenario = "local";  // axes own the scenario
  EXPECT_EQ(api::PlanSpec::parse(plan.to_json_text()), plan);
}

TEST(Plan, ToPlanExpandsLikeTheCampaignEngine)
{
  api::PlanSpec plan;
  plan.mechanisms = {Mechanism::event, Mechanism::flock};
  plan.scenarios = {{"local", HypervisorType::none},
                    {"cross-VM", HypervisorType::none}};
  plan.protocols = {ProtocolMode::fixed, ProtocolMode::arq};
  plan.repeats = 2;
  plan.seed_base = 0xCA4FA16;
  plan.payload_bits = 256;

  const exec::ExperimentPlan lowered = plan.to_plan();
  const auto cells = exec::expand(lowered);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);
  // Hypervisor-sensitive scenarios default to type-1, like the CLI.
  EXPECT_EQ(cells[4].config.scenario_name, "cross-VM");
  EXPECT_EQ(cells[4].config.hypervisor, HypervisorType::type1);
  // Seeds are the campaign engine's own schedule (same as a hand-built
  // ExperimentPlan with these axes).
  exec::ExperimentPlan manual;
  manual.mechanisms = plan.mechanisms;
  manual.scenarios = {exec::named_scenario("local"),
                      exec::named_scenario("cross-VM", HypervisorType::type1)};
  manual.protocols = {{"fixed", ProtocolMode::fixed},
                      {"arq", ProtocolMode::arq}};
  manual.repeats = 2;
  manual.seed_base = 0xCA4FA16;
  manual.payload_bits = 256;
  const auto manual_cells = exec::expand(manual);
  ASSERT_EQ(manual_cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].config.seed, manual_cells[i].config.seed);
    EXPECT_EQ(cells[i].label, manual_cells[i].label);
  }
}

TEST(Plan, SymbolWidthSurvivesPaperTimesetResolution)
{
  api::PlanSpec plan;
  plan.session.link.symbol_bits = 2;
  plan.session.link.sync_bits = 16;
  const auto cells = exec::expand(plan.to_plan());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].config.timing.symbol_bits, 2u);
  EXPECT_EQ(cells[0].config.sync_bits, 16u);
}

TEST(Plan, ValidateRejectsAxisOwnedBaseSessionFields)
{
  const auto invalid = [](auto mutate) {
    api::PlanSpec plan;
    mutate(plan);
    return plan.validate();
  };
  EXPECT_NE(invalid([](api::PlanSpec& p) {
              p.session.link.timing = TimingConfig{};
            }),
            "");
  EXPECT_NE(invalid([](api::PlanSpec& p) {
              p.session.link.pairs = 4;
              p.session.protocol = ProtocolMode::adaptive;
            }),
            "");
  EXPECT_NE(invalid([](api::PlanSpec& p) {
              p.session.stack.hypervisor = HypervisorType::type1;
            }),
            "");
  EXPECT_NE(invalid([](api::PlanSpec& p) {
              p.session.stack.scenario = "noisy-local";
            }),
            "");
  EXPECT_NE(invalid([](api::PlanSpec& p) {
              p.session.protocol = ProtocolMode::arq;
            }),
            "");
  EXPECT_NE(invalid([](api::PlanSpec& p) { p.session.stack.seed = 7; }),
            "");
}

TEST(Plan, ValidateRejectsBrokenShardSpecs)
{
  // shard_count == 0 would divide the grid by zero; an out-of-range
  // shard_index would silently run zero cells and "merge" clean.
  api::PlanSpec plan;
  plan.shard_count = 0;
  EXPECT_EQ(plan.validate(), "plan.shard_count must be >= 1");

  plan.shard_count = 4;
  plan.shard_index = 4;
  EXPECT_EQ(plan.validate(), "plan.shard_index must be 0..3");

  plan.shard_index = 3;
  EXPECT_EQ(plan.validate(), "");
}

TEST(Json, OverflowingDoublesAreAParseError)
{
  EXPECT_THROW((void)api::Json::parse("{\"m\":1e999}"),
               std::invalid_argument);
  EXPECT_THROW((void)api::Json::parse("{\"m\":-1e999}"),
               std::invalid_argument);
  // Underflow collapses to 0.0 and stays accepted.
  EXPECT_DOUBLE_EQ(api::Json::parse("1e-999").as_double(), 0.0);
}

TEST(Plan, ValidateAndToPlanRejectUnknownScenarios)
{
  api::PlanSpec plan;
  plan.scenarios = {{"atlantis", HypervisorType::none}};
  EXPECT_NE(plan.validate(), "");
  EXPECT_THROW((void)plan.to_plan(), std::invalid_argument);
}

// The checked-in CI smoke plan stays parseable, valid, and small.
TEST(Plan, CheckedInSmokePlanParsesAndExpands)
{
  std::ifstream in{std::string{MES_PLANS_DIR} + "/smoke.json",
                   std::ios::binary};
  ASSERT_TRUE(in.good()) << "plans/smoke.json missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  const api::PlanSpec plan = api::PlanSpec::parse(buf.str());
  EXPECT_EQ(plan.validate(), "");
  const auto cells = exec::expand(plan.to_plan());
  EXPECT_GE(cells.size(), 2u);
  EXPECT_LE(cells.size(), 64u);  // a smoke, not a campaign
}

}  // namespace
}  // namespace mes
