// Channel-level tests: every mechanism x scenario combination, framing,
// determinism, multi-bit alphabets and the documented failure modes.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runner.h"
#include "util/rng.h"

namespace mes {
namespace {

ChannelReport transmit_random(ExperimentConfig cfg, std::size_t bits)
{
  Rng rng{cfg.seed ^ 0xFEEDFACEULL};
  const std::size_t width = cfg.timing.symbol_bits;
  const BitVec payload = BitVec::random(rng, bits - bits % width);
  return run_transmission(cfg, payload);
}

ExperimentConfig base_config(Mechanism m, Scenario s)
{
  ExperimentConfig cfg;
  cfg.mechanism = m;
  cfg.scenario = s;
  cfg.timing = paper_timeset(m, s);
  cfg.seed = 0xC0FFEE;
  return cfg;
}

// --- the full mechanism x scenario matrix --------------------------------------

using MatrixParam = std::tuple<Mechanism, Scenario>;

class ChannelMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ChannelMatrix, TransmitsWithLowBer)
{
  const auto [mechanism, scenario] = GetParam();
  ExperimentConfig cfg = base_config(mechanism, scenario);
  const ChannelReport rep = transmit_random(cfg, 2048);
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_LT(rep.ber, 0.03) << "BER " << rep.ber_percent() << "%";
  EXPECT_GT(rep.throughput_bps, 1000.0);
  EXPECT_EQ(rep.rx_latencies.size(), 2048u + cfg.sync_bits);
}

TEST_P(ChannelMatrix, DeterministicForSeed)
{
  const auto [mechanism, scenario] = GetParam();
  const ExperimentConfig cfg = base_config(mechanism, scenario);
  const ChannelReport a = transmit_random(cfg, 256);
  const ChannelReport b = transmit_random(cfg, 256);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.received_payload, b.received_payload);
  EXPECT_EQ(a.elapsed.count_ns(), b.elapsed.count_ns());
  EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info)
{
  const auto [mechanism, scenario] = info.param;
  std::string name = std::string{to_string(mechanism)} + "_" +
                     to_string(scenario);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    LocalAndSandbox, ChannelMatrix,
    ::testing::Combine(::testing::Values(Mechanism::flock,
                                         Mechanism::file_lock_ex,
                                         Mechanism::mutex,
                                         Mechanism::semaphore,
                                         Mechanism::event,
                                         Mechanism::waitable_timer),
                       ::testing::Values(Scenario::local,
                                         Scenario::cross_sandbox)),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    CrossVmFileBacked, ChannelMatrix,
    ::testing::Combine(::testing::Values(Mechanism::flock,
                                         Mechanism::file_lock_ex),
                       ::testing::Values(Scenario::cross_vm)),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    SignalExtensionLocal, ChannelMatrix,
    ::testing::Combine(::testing::Values(Mechanism::posix_signal),
                       ::testing::Values(Scenario::local)),
    matrix_name);

INSTANTIATE_TEST_SUITE_P(
    ReadLockExtension, ChannelMatrix,
    ::testing::Combine(::testing::Values(Mechanism::flock_shared),
                       ::testing::Values(Scenario::local,
                                         Scenario::cross_sandbox,
                                         Scenario::cross_vm)),
    matrix_name);

// --- cross-boundary failure modes (Table VI) --------------------------------------

class NamedObjectVm : public ::testing::TestWithParam<Mechanism> {};

TEST_P(NamedObjectVm, FailsAcrossVmBoundary)
{
  ExperimentConfig cfg = base_config(GetParam(), Scenario::cross_vm);
  const ChannelReport rep = transmit_random(cfg, 64);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("not visible"), std::string::npos)
      << rep.failure_reason;
}

INSTANTIATE_TEST_SUITE_P(AllNamedMechanisms, NamedObjectVm,
                         ::testing::Values(Mechanism::mutex,
                                           Mechanism::semaphore,
                                           Mechanism::event,
                                           Mechanism::waitable_timer),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return n;
                         });

TEST(CrossVm, Type2HypervisorBreaksFileChannelsToo)
{
  ExperimentConfig cfg = base_config(Mechanism::file_lock_ex,
                                     Scenario::cross_vm);
  cfg.hypervisor = HypervisorType::type2;
  const ChannelReport rep = transmit_random(cfg, 64);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("volume"), std::string::npos);
}

TEST(SignalChannel, CrossNamespaceSetupFails)
{
  ExperimentConfig cfg = base_config(Mechanism::posix_signal,
                                     Scenario::cross_sandbox);
  const ChannelReport rep = transmit_random(cfg, 64);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("PID namespace"), std::string::npos);
}

// --- multi-bit alphabets (§VI) -------------------------------------------------------

class MultibitWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultibitWidth, EventChannelCarriesWiderAlphabets)
{
  const std::size_t width = GetParam();
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::local);
  cfg.timing.symbol_bits = width;
  cfg.timing.interval = Duration::us(50);
  cfg.sync_bits = width * 8;
  Rng rng{cfg.seed};
  const BitVec payload = BitVec::random(rng, 1024 - 1024 % width);
  // Symbol errors can land in the preamble; the §V.B round protocol
  // retries such rounds, so assert through it.
  const RoundedReport rounded = run_with_retries(cfg, payload, 6);
  const ChannelReport& rep = rounded.report;
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_LT(rep.ber, 0.05);
  ASSERT_TRUE(rep.confusion.has_value());
  EXPECT_EQ(rep.confusion->symbols(), std::size_t{1} << width);
}

INSTANTIATE_TEST_SUITE_P(Widths, MultibitWidth,
                         ::testing::Values(1u, 2u, 3u));

TEST(Multibit, TwoBitBeatsOneBitThroughput)
{
  ExperimentConfig one = base_config(Mechanism::event, Scenario::local);
  ExperimentConfig two = one;
  two.timing.symbol_bits = 2;
  two.timing.interval = Duration::us(50);
  two.sync_bits = 16;
  const ChannelReport r1 = transmit_random(one, 4096);
  const ChannelReport r2 = transmit_random(two, 4096);
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_GT(r2.throughput_bps, r1.throughput_bps);
}

TEST(Multibit, ContentionChannelsRejectWideSymbols)
{
  ExperimentConfig cfg = base_config(Mechanism::flock, Scenario::local);
  cfg.timing.symbol_bits = 2;
  const ChannelReport rep = transmit_random(cfg, 64);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("cooperation"), std::string::npos);
}

// --- config validation ------------------------------------------------------------------

TEST(Config, RejectsMisalignedFrameSections)
{
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::local);
  cfg.timing.symbol_bits = 2;
  cfg.sync_bits = 7;  // not a multiple of the width
  const ChannelReport rep = transmit_random(cfg, 64);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("multiple"), std::string::npos);
}

TEST(Config, RejectsZeroWidth)
{
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::local);
  cfg.timing.symbol_bits = 0;
  const ChannelReport rep = run_transmission(cfg, BitVec::from_string("10"));
  ASSERT_FALSE(rep.ok);
}

TEST(Config, TaxonomyMatchesTableOne)
{
  EXPECT_EQ(class_of(Mechanism::flock), ChannelClass::contention);
  EXPECT_EQ(class_of(Mechanism::file_lock_ex), ChannelClass::contention);
  EXPECT_EQ(class_of(Mechanism::mutex), ChannelClass::contention);
  EXPECT_EQ(class_of(Mechanism::semaphore), ChannelClass::contention);
  EXPECT_EQ(class_of(Mechanism::event), ChannelClass::cooperation);
  EXPECT_EQ(class_of(Mechanism::waitable_timer), ChannelClass::cooperation);
  EXPECT_EQ(class_of(Mechanism::posix_signal), ChannelClass::cooperation);
  EXPECT_EQ(class_of(Mechanism::flock_shared), ChannelClass::contention);
}

TEST(Config, OsFlavorAssignsSleepFloor)
{
  EXPECT_EQ(flavor_of(Mechanism::flock), OsFlavor::linux_like);
  EXPECT_EQ(flavor_of(Mechanism::event), OsFlavor::windows);
  const auto linux_profile = make_profile(Scenario::local,
                                          OsFlavor::linux_like);
  EXPECT_DOUBLE_EQ(linux_profile.noise.sleep_floor.to_us(), 58.0);
  const auto windows_profile = make_profile(Scenario::local,
                                            OsFlavor::windows);
  EXPECT_TRUE(windows_profile.noise.sleep_floor.is_zero());
}

TEST(Config, PaperTimesetsMatchTables)
{
  const TimingConfig flock_local =
      paper_timeset(Mechanism::flock, Scenario::local);
  EXPECT_DOUBLE_EQ(flock_local.t1.to_us(), 160.0);
  EXPECT_DOUBLE_EQ(flock_local.t0.to_us(), 60.0);
  const TimingConfig event_local =
      paper_timeset(Mechanism::event, Scenario::local);
  EXPECT_DOUBLE_EQ(event_local.t0.to_us(), 15.0);
  EXPECT_DOUBLE_EQ(event_local.interval.to_us(), 65.0);
  const TimingConfig sem_sandbox =
      paper_timeset(Mechanism::semaphore, Scenario::cross_sandbox);
  EXPECT_DOUBLE_EQ(sem_sandbox.t1.to_us(), 240.0);
  const TimingConfig flock_vm =
      paper_timeset(Mechanism::flock, Scenario::cross_vm);
  EXPECT_DOUBLE_EQ(flock_vm.t1.to_us(), 200.0);
}

// --- §V.B requirements ---------------------------------------------------------------

TEST(FineGrainedSync, DisablingItAccumulatesErrors)
{
  ExperimentConfig cfg = base_config(Mechanism::flock, Scenario::local);
  cfg.fine_grained_sync = false;
  cfg.max_events = 80'000'000;
  const ChannelReport rep = transmit_random(cfg, 4096);
  ASSERT_TRUE(rep.ok) << rep.failure_reason;
  // Drift slips misalign the stream; errors accumulate toward 50%.
  EXPECT_GT(rep.ber, 0.10);
}

TEST(Semaphore, ZeroInitialResourcesStalls)
{
  ExperimentConfig cfg = base_config(Mechanism::semaphore, Scenario::local);
  cfg.semaphore_initial = 0;
  cfg.max_events = 5'000'000;
  const ChannelReport rep = transmit_random(cfg, 64);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("deadlock"), std::string::npos);
}

TEST(Semaphore, OverseedingBreaksMutualExclusion)
{
  ExperimentConfig cfg = base_config(Mechanism::semaphore, Scenario::local);
  cfg.semaphore_initial = 3;
  const ChannelReport rep = transmit_random(cfg, 512);
  ASSERT_TRUE(rep.ok);
  EXPECT_GT(rep.ber, 0.20);  // every '1' reads as '0'
}

// --- round protocol ------------------------------------------------------------------

TEST(Rounds, RetriesUntilPreambleVerifies)
{
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::local);
  Rng rng{1};
  const BitVec payload = BitVec::random(rng, 128);
  const RoundedReport rounded = run_with_retries(cfg, payload, 4);
  ASSERT_TRUE(rounded.report.ok);
  EXPECT_TRUE(rounded.report.sync_ok);
  EXPECT_GE(rounded.rounds_attempted, 1u);
  EXPECT_LE(rounded.rounds_attempted, 4u);
}

TEST(Rounds, StructuralFailureStopsRetrying)
{
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::cross_vm);
  Rng rng{1};
  const RoundedReport rounded =
      run_with_retries(cfg, BitVec::random(rng, 32), 5);
  EXPECT_FALSE(rounded.report.ok);
  EXPECT_EQ(rounded.rounds_attempted, 1u);  // retries are futile
}

// --- report integrity -------------------------------------------------------------------

TEST(Report, CarriesSymbolTracesAndConfusion)
{
  ExperimentConfig cfg = base_config(Mechanism::mutex, Scenario::local);
  const ChannelReport rep = transmit_random(cfg, 256);
  ASSERT_TRUE(rep.ok);
  EXPECT_EQ(rep.tx_symbols.size(), 256u + cfg.sync_bits);
  EXPECT_EQ(rep.rx_symbols.size(), rep.tx_symbols.size());
  ASSERT_TRUE(rep.confusion.has_value());
  EXPECT_EQ(rep.confusion->total(), 256u);
  EXPECT_GT(rep.elapsed.to_sec(), 0.0);
  EXPECT_NEAR(rep.throughput_bps,
              static_cast<double>(rep.tx_symbols.size()) /
                  rep.elapsed.to_sec(),
              1.0);
}

TEST(Report, TextPayloadSurvivesTransmission)
{
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::local);
  const BitVec payload = BitVec::from_text("key=0xDEADBEEF");
  const RoundedReport rounded = run_with_retries(cfg, payload, 8);
  ASSERT_TRUE(rounded.report.ok);
  ASSERT_TRUE(rounded.report.sync_ok);
  if (rounded.report.ber == 0.0) {
    EXPECT_EQ(rounded.report.received_payload.to_text(), "key=0xDEADBEEF");
  }
}

// --- ordering properties across mechanisms (Table IV shape) ------------------------------

TEST(Shape, CooperationBeatsContentionThroughput)
{
  const ChannelReport event_rep =
      transmit_random(base_config(Mechanism::event, Scenario::local), 2048);
  const ChannelReport flock_rep =
      transmit_random(base_config(Mechanism::flock, Scenario::local), 2048);
  const ChannelReport sem_rep = transmit_random(
      base_config(Mechanism::semaphore, Scenario::local), 2048);
  ASSERT_TRUE(event_rep.ok);
  ASSERT_TRUE(flock_rep.ok);
  ASSERT_TRUE(sem_rep.ok);
  EXPECT_GT(event_rep.throughput_bps, flock_rep.throughput_bps);
  EXPECT_GT(flock_rep.throughput_bps, sem_rep.throughput_bps);
}

TEST(Shape, SandboxSlowerThanLocal)
{
  const ChannelReport local_rep =
      transmit_random(base_config(Mechanism::event, Scenario::local), 2048);
  const ChannelReport sandbox_rep = transmit_random(
      base_config(Mechanism::event, Scenario::cross_sandbox), 2048);
  ASSERT_TRUE(local_rep.ok);
  ASSERT_TRUE(sandbox_rep.ok);
  EXPECT_GT(local_rep.throughput_bps, sandbox_rep.throughput_bps);
}

TEST(Shape, VmSlowerThanSandbox)
{
  const ChannelReport sandbox_rep = transmit_random(
      base_config(Mechanism::flock, Scenario::cross_sandbox), 2048);
  const ChannelReport vm_rep =
      transmit_random(base_config(Mechanism::flock, Scenario::cross_vm), 2048);
  ASSERT_TRUE(sandbox_rep.ok);
  ASSERT_TRUE(vm_rep.ok);
  EXPECT_GT(sandbox_rep.throughput_bps, vm_rep.throughput_bps);
}

// --- timing-parameter properties (Figs. 9 & 10 shape) --------------------------------------

class EventInterval : public ::testing::TestWithParam<double> {};

TEST_P(EventInterval, BerStaysUnderTwoPercentAboveFifty)
{
  ExperimentConfig cfg = base_config(Mechanism::event, Scenario::local);
  cfg.timing.interval = Duration::us(GetParam());
  const ChannelReport rep = transmit_random(cfg, 4096);
  ASSERT_TRUE(rep.ok);
  EXPECT_LT(rep.ber, 0.02) << "ti=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SafeIntervals, EventInterval,
                         ::testing::Values(50.0, 70.0, 90.0, 110.0, 130.0));

TEST(Shape, TinyIntervalRaisesEventBer)
{
  ExperimentConfig narrow = base_config(Mechanism::event, Scenario::local);
  narrow.timing.interval = Duration::us(30);
  ExperimentConfig wide = base_config(Mechanism::event, Scenario::local);
  wide.timing.interval = Duration::us(90);
  const ChannelReport n = transmit_random(narrow, 8192);
  const ChannelReport w = transmit_random(wide, 8192);
  ASSERT_TRUE(n.ok);
  ASSERT_TRUE(w.ok);
  EXPECT_GT(n.ber, w.ber);
}

TEST(Shape, SubGranularitySleepRaisesEventBer)
{
  ExperimentConfig tiny = base_config(Mechanism::event, Scenario::local);
  tiny.timing.t0 = Duration::us(5);
  const ChannelReport t = transmit_random(tiny, 4096);
  const ChannelReport ok_rep =
      transmit_random(base_config(Mechanism::event, Scenario::local), 4096);
  ASSERT_TRUE(t.ok);
  ASSERT_TRUE(ok_rep.ok);
  EXPECT_GT(t.ber, ok_rep.ber * 2);
}

class FlockHold : public ::testing::TestWithParam<double> {};

TEST_P(FlockHold, ThroughputTracksInverseHoldTime)
{
  ExperimentConfig cfg = base_config(Mechanism::flock, Scenario::local);
  cfg.timing.t1 = Duration::us(GetParam());
  const ChannelReport rep = transmit_random(cfg, 1024);
  ASSERT_TRUE(rep.ok);
  // Mean bit time is ~(t1 + t0)/2 plus ~45us overhead; allow wide slack.
  const double expected_bps =
      1e6 / ((GetParam() + 60.0) / 2.0 + 45.0);
  EXPECT_NEAR(rep.throughput_bps, expected_bps, expected_bps * 0.25);
}

INSTANTIATE_TEST_SUITE_P(HoldTimes, FlockHold,
                         ::testing::Values(140.0, 180.0, 220.0, 280.0));

TEST(Shape, FlockBerConcaveInHoldTime)
{
  auto ber_at = [&](double t1_us) {
    ExperimentConfig cfg = base_config(Mechanism::flock, Scenario::local);
    cfg.timing.t1 = Duration::us(t1_us);
    const ChannelReport rep = transmit_random(cfg, 16384);
    EXPECT_TRUE(rep.ok);
    return rep.ber;
  };
  const double left = ber_at(110);
  const double mid = ber_at(185);
  const double right = ber_at(320);
  EXPECT_GT(left, mid * 1.5);
  EXPECT_GT(right, mid * 1.5);
}

}  // namespace
}  // namespace mes
