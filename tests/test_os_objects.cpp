// Unit tests for the NT-style object manager (Fig. 4 substrate):
// handle tables, named directory, Event/Mutex/Semaphore/Timer semantics
// and WaitForSingleObject.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "os/kernel.h"
#include "os/win_objects.h"
#include "scenario/profile.h"
#include "sim/simulator.h"

namespace mes::os {
namespace {

// Quiet noise so semantics tests assert exact behaviour, not timing.
sim::NoiseParams quiet_noise()
{
  sim::NoiseParams p;
  p.op_cost_base = Duration::us(1);
  p.op_cost_jitter = Duration::zero();
  p.wake_latency_median = Duration::us(1);
  p.wake_latency_sigma = 0.0;
  p.sleep_overshoot_median = Duration::us(0.1);
  p.sleep_overshoot_sigma = 0.0;
  p.block_rate_hz = 0.0;
  p.penalty_ramp_per_us = 0.0;
  p.corruption_rate = 0.0;
  p.notify_path_base = Duration::zero();
  p.notify_path_jitter = Duration::zero();
  return p;
}

struct World {
  sim::Simulator sim{1};
  Kernel kernel{sim, quiet_noise()};
};

// --- handle / fd tables ---------------------------------------------------------

TEST(Process, HandleValuesAreMultiplesOfFour)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h1 = w.kernel.objects().create_event(p, "", ResetMode::auto_reset,
                                                    false);
  const Handle h2 = w.kernel.objects().create_event(p, "", ResetMode::auto_reset,
                                                    false);
  EXPECT_EQ(h1, 4);
  EXPECT_EQ(h2, 8);
}

TEST(Process, SameObjectDifferentHandleValuesAcrossProcesses)
{
  // Fig. 4: handles to one kernel object generally differ per process.
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  w.kernel.objects().create_event(b, "warmup", ResetMode::auto_reset, false);
  const Handle ha = w.kernel.objects().create_event(a, "X",
                                                    ResetMode::auto_reset, false);
  const Handle hb = w.kernel.objects().open_event(b, "X");
  EXPECT_NE(ha, hb);
  EXPECT_EQ(a.lookup_object(ha).get(), b.lookup_object(hb).get());
}

TEST(Process, CloseHandleRemovesEntry)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_event(p, "", ResetMode::auto_reset,
                                                   false);
  EXPECT_TRUE(w.kernel.objects().close_handle(p, h));
  EXPECT_EQ(p.lookup_object(h), nullptr);
  EXPECT_FALSE(w.kernel.objects().close_handle(p, h));
}

TEST(Process, FdTableReusesLowestFreeDescriptor)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Fd a = p.insert_fd(100);
  const Fd b = p.insert_fd(101);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  p.remove_fd(a);
  EXPECT_EQ(p.insert_fd(102), 0);  // POSIX lowest-free rule
}

TEST(ObjectManager, NamedObjectsPruneAfterAllHandlesClose)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_event(p, "gone",
                                                   ResetMode::auto_reset, false);
  EXPECT_NE(w.kernel.objects().find_named(0, "gone"), nullptr);
  w.kernel.objects().close_handle(p, h);
  EXPECT_EQ(w.kernel.objects().find_named(0, "gone"), nullptr);
}

TEST(ObjectManager, CreateExistingNameReturnsSameObject)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h1 = w.kernel.objects().create_event(p, "dup",
                                                    ResetMode::auto_reset, false);
  const Handle h2 = w.kernel.objects().create_event(p, "dup",
                                                    ResetMode::manual_reset, true);
  EXPECT_EQ(p.lookup_object(h1).get(), p.lookup_object(h2).get());
  // The original reset mode wins (CreateEvent ignores new parameters).
  const auto ev = std::static_pointer_cast<EventObject>(p.lookup_object(h2));
  EXPECT_EQ(ev->mode(), ResetMode::auto_reset);
}

TEST(ObjectManager, TypeMismatchOnOpenFails)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  w.kernel.objects().create_event(p, "typed", ResetMode::auto_reset, false);
  EXPECT_EQ(w.kernel.objects().open_mutex(p, "typed"), kInvalidHandle);
  EXPECT_EQ(w.kernel.objects().open_semaphore(p, "typed"), kInvalidHandle);
}

TEST(ObjectManager, NamespaceIsolationBlocksCrossVmOpen)
{
  World w;
  w.kernel.objects().set_namespace_sharing(false);
  Process& vm1 = w.kernel.create_process("vm1", 1);
  Process& vm2 = w.kernel.create_process("vm2", 2);
  w.kernel.objects().create_event(vm1, "secret", ResetMode::auto_reset, false);
  EXPECT_EQ(w.kernel.objects().open_event(vm2, "secret"), kInvalidHandle);
  // Same namespace still resolves.
  Process& vm1b = w.kernel.create_process("vm1b", 1);
  EXPECT_NE(w.kernel.objects().open_event(vm1b, "secret"), kInvalidHandle);
}

// --- Event ----------------------------------------------------------------------

struct EventWorld : World {
  Process& creator = kernel.create_process("creator", 0);
  Process& other = kernel.create_process("other", 0);
};

sim::Proc wait_and_log(Kernel& k, Process& p, Handle h,
                       std::vector<WaitStatus>& log,
                       Duration timeout = Duration::max())
{
  const WaitStatus status =
      co_await k.objects().wait_for_single_object(p, h, timeout);
  log.push_back(status);
}

sim::Proc set_after(Kernel& k, Process& p, Handle h, Duration delay)
{
  co_await k.sleep(p, delay);
  co_await k.objects().set_event(p, h);
}

TEST(Event, SignaledStateSatisfiesWaitImmediately)
{
  EventWorld w;
  const Handle h = w.kernel.objects().create_event(
      w.creator, "e", ResetMode::auto_reset, /*initially_signaled=*/true);
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, w.creator, h, log));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::object_0);
}

TEST(Event, AutoResetConsumesSignal)
{
  EventWorld w;
  const Handle h = w.kernel.objects().create_event(
      w.creator, "e", ResetMode::auto_reset, true);
  const Handle h_other = w.kernel.objects().open_event(w.other, "e");
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, w.creator, h, log));
  w.sim.spawn(wait_and_log(w.kernel, w.other, h_other, log,
                           Duration::us(500)));  // should time out
  w.sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], WaitStatus::object_0);
  EXPECT_EQ(log[1], WaitStatus::timed_out);
}

TEST(Event, ManualResetWakesAllWaiters)
{
  EventWorld w;
  const Handle h = w.kernel.objects().create_event(
      w.creator, "e", ResetMode::manual_reset, false);
  const Handle h2 = w.kernel.objects().open_event(w.other, "e");
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, w.creator, h, log));
  w.sim.spawn(wait_and_log(w.kernel, w.other, h2, log));
  Process& setter = w.kernel.create_process("setter", 0);
  const Handle hs = w.kernel.objects().open_event(setter, "e");
  w.sim.spawn(set_after(w.kernel, setter, hs, Duration::us(100)));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(log.size(), 2u);
  // Manual-reset events stay signaled after waking everyone.
  const auto ev =
      std::static_pointer_cast<EventObject>(w.creator.lookup_object(h));
  EXPECT_TRUE(ev->signaled());
}

TEST(Event, AutoResetSetWakesExactlyOne)
{
  EventWorld w;
  const Handle h = w.kernel.objects().create_event(
      w.creator, "e", ResetMode::auto_reset, false);
  const Handle h2 = w.kernel.objects().open_event(w.other, "e");
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, w.creator, h, log, Duration::ms(1)));
  w.sim.spawn(wait_and_log(w.kernel, w.other, h2, log, Duration::ms(1)));
  Process& setter = w.kernel.create_process("setter", 0);
  const Handle hs = w.kernel.objects().open_event(setter, "e");
  w.sim.spawn(set_after(w.kernel, setter, hs, Duration::us(50)));
  w.sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], WaitStatus::object_0);   // FIFO: first waiter wakes
  EXPECT_EQ(log[1], WaitStatus::timed_out);  // second times out
}

TEST(Event, ResetClearsSignal)
{
  EventWorld w;
  const Handle h = w.kernel.objects().create_event(
      w.creator, "e", ResetMode::manual_reset, true);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h,
                         std::vector<WaitStatus>& log)
    {
      co_await k.objects().reset_event(p, h);
      const WaitStatus s = co_await k.objects().wait_for_single_object(
          p, h, Duration::us(200));
      log.push_back(s);
    }
  };
  std::vector<WaitStatus> log;
  w.sim.spawn(Runner::run(w.kernel, w.creator, h, log));
  w.sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::timed_out);
}

TEST(Event, SetWhileNobodyWaitsLatches)
{
  EventWorld w;
  const Handle h = w.kernel.objects().create_event(
      w.creator, "e", ResetMode::auto_reset, false);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h,
                         std::vector<WaitStatus>& log)
    {
      co_await k.objects().set_event(p, h);
      // The signal is remembered for the next wait.
      const WaitStatus s = co_await k.objects().wait_for_single_object(p, h);
      log.push_back(s);
    }
  };
  std::vector<WaitStatus> log;
  w.sim.spawn(Runner::run(w.kernel, w.creator, h, log));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::object_0);
}

// --- Mutex ----------------------------------------------------------------------

sim::Proc hold_mutex(Kernel& k, Process& p, Handle h, Duration hold,
                     std::vector<int>& order, int id)
{
  co_await k.objects().wait_for_single_object(p, h);
  order.push_back(id);
  co_await k.sleep(p, hold);
  co_await k.objects().release_mutex(p, h);
}

TEST(Mutex, ProvidesMutualExclusionInFifoOrder)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  Process& c = w.kernel.create_process("c", 0);
  const Handle ha = w.kernel.objects().create_mutex(a, "m", false);
  const Handle hb = w.kernel.objects().open_mutex(b, "m");
  const Handle hc = w.kernel.objects().open_mutex(c, "m");
  std::vector<int> order;
  w.sim.spawn(hold_mutex(w.kernel, a, ha, Duration::us(100), order, 1));
  w.sim.spawn(hold_mutex(w.kernel, b, hb, Duration::us(100), order, 2));
  w.sim.spawn(hold_mutex(w.kernel, c, hc, Duration::us(100), order, 3));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Mutex, RecursiveAcquisitionBySameOwner)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_mutex(p, "m", false);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h, bool& done)
    {
      co_await k.objects().wait_for_single_object(p, h);
      co_await k.objects().wait_for_single_object(p, h);  // recursion
      co_await k.objects().release_mutex(p, h);
      co_await k.objects().release_mutex(p, h);
      done = true;
    }
  };
  bool done = false;
  w.sim.spawn(Runner::run(w.kernel, p, h, done));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_TRUE(done);
}

TEST(Mutex, ReleaseByNonOwnerThrows)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  w.kernel.objects().create_mutex(a, "m", /*initially_owned=*/true);
  const Handle hb = w.kernel.objects().open_mutex(b, "m");
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h)
    {
      co_await k.objects().release_mutex(p, h);
    }
  };
  w.sim.spawn(Runner::run(w.kernel, b, hb));
  EXPECT_THROW(w.sim.run(), std::logic_error);
}

TEST(Mutex, InitiallyOwnedBlocksOthers)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  const Handle ha = w.kernel.objects().create_mutex(a, "m", true);
  const Handle hb = w.kernel.objects().open_mutex(b, "m");
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, b, hb, log, Duration::us(100)));
  struct Releaser {
    static sim::Proc run(Kernel& k, Process& p, Handle h)
    {
      co_await k.sleep(p, Duration::us(300));
      co_await k.objects().release_mutex(p, h);
    }
  };
  w.sim.spawn(Releaser::run(w.kernel, a, ha));
  w.sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::timed_out);
}

TEST(Mutex, AbandonedMutexReportsToNextAcquirer)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  w.kernel.objects().create_mutex(a, "m", true);
  const Handle hb = w.kernel.objects().open_mutex(b, "m");
  w.kernel.terminate_process(a);
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, b, hb, log));
  w.sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::abandoned);
}

// --- Semaphore ---------------------------------------------------------------------

TEST(Semaphore, CreationValidatesCounts)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_EQ(w.kernel.objects().create_semaphore(p, "s", -1, 5), kInvalidHandle);
  EXPECT_EQ(w.kernel.objects().create_semaphore(p, "s", 3, 0), kInvalidHandle);
  EXPECT_EQ(w.kernel.objects().create_semaphore(p, "s", 6, 5), kInvalidHandle);
  EXPECT_NE(w.kernel.objects().create_semaphore(p, "s", 2, 5), kInvalidHandle);
}

sim::Proc take_n(Kernel& k, Process& p, Handle h, int n,
                 std::vector<WaitStatus>& log, Duration timeout)
{
  for (int i = 0; i < n; ++i) {
    const WaitStatus s =
        co_await k.objects().wait_for_single_object(p, h, timeout);
    log.push_back(s);
  }
}

TEST(Semaphore, CountLimitsConcurrentHolders)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_semaphore(p, "s", 2, 10);
  std::vector<WaitStatus> log;
  w.sim.spawn(take_n(w.kernel, p, h, 3, log, Duration::us(200)));
  w.sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], WaitStatus::object_0);
  EXPECT_EQ(log[1], WaitStatus::object_0);
  EXPECT_EQ(log[2], WaitStatus::timed_out);  // count exhausted
}

TEST(Semaphore, ReleaseFailsBeyondMaximum)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_semaphore(p, "s", 2, 2);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h, std::vector<bool>& ok)
    {
      const bool over = co_await k.objects().release_semaphore(p, h, 1);
      ok.push_back(over);
      const WaitStatus s = co_await k.objects().wait_for_single_object(p, h);
      (void)s;
      const bool fits = co_await k.objects().release_semaphore(p, h, 1);
      ok.push_back(fits);
      const bool zero = co_await k.objects().release_semaphore(p, h, 0);
      ok.push_back(zero);
    }
  };
  std::vector<bool> ok;
  w.sim.spawn(Runner::run(w.kernel, p, h, ok));
  w.sim.run();
  ASSERT_EQ(ok.size(), 3u);
  EXPECT_FALSE(ok[0]);  // 2 + 1 > max 2
  EXPECT_TRUE(ok[1]);   // back to 2 after one take
  EXPECT_FALSE(ok[2]);  // zero-count release is invalid
}

TEST(Semaphore, ReleaseWakesBlockedWaiterDirectly)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  const Handle ha = w.kernel.objects().create_semaphore(a, "s", 0, 10);
  const Handle hb = w.kernel.objects().open_semaphore(b, "s");
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, b, hb, log));
  struct Producer {
    static sim::Proc run(Kernel& k, Process& p, Handle h)
    {
      co_await k.sleep(p, Duration::us(100));
      const bool ok = co_await k.objects().release_semaphore(p, h, 1);
      if (!ok) throw std::runtime_error{"release failed"};
    }
  };
  w.sim.spawn(Producer::run(w.kernel, a, ha));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::object_0);
  // Direct grant never inflates the count.
  const auto sem =
      std::static_pointer_cast<SemaphoreObject>(a.lookup_object(ha));
  EXPECT_EQ(sem->count(), 0);
}

// --- WaitableTimer ---------------------------------------------------------------

TEST(Timer, FiresAtDueTime)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h =
      w.kernel.objects().create_waitable_timer(p, "t", ResetMode::auto_reset);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h, TimePoint& woke)
    {
      co_await k.objects().set_waitable_timer(p, h, Duration::us(500));
      co_await k.objects().wait_for_single_object(p, h);
      woke = k.sim().now();
    }
  };
  TimePoint woke;
  w.sim.spawn(Runner::run(w.kernel, p, h, woke));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_GE(woke.to_us(), 500.0);
  EXPECT_LT(woke.to_us(), 520.0);
}

TEST(Timer, CancelPreventsFiring)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h =
      w.kernel.objects().create_waitable_timer(p, "t", ResetMode::auto_reset);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h,
                         std::vector<WaitStatus>& log)
    {
      co_await k.objects().set_waitable_timer(p, h, Duration::us(500));
      co_await k.objects().cancel_waitable_timer(p, h);
      const WaitStatus s = co_await k.objects().wait_for_single_object(
          p, h, Duration::ms(2));
      log.push_back(s);
    }
  };
  std::vector<WaitStatus> log;
  w.sim.spawn(Runner::run(w.kernel, p, h, log));
  w.sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::timed_out);
}

TEST(Timer, PeriodicTimerFiresRepeatedly)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h =
      w.kernel.objects().create_waitable_timer(p, "t", ResetMode::auto_reset);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h,
                         std::vector<double>& wakes)
    {
      co_await k.objects().set_waitable_timer(p, h, Duration::us(100),
                                              Duration::us(100));
      for (int i = 0; i < 3; ++i) {
        co_await k.objects().wait_for_single_object(p, h);
        wakes.push_back(k.sim().now().to_us());
      }
      co_await k.objects().cancel_waitable_timer(p, h);
    }
  };
  std::vector<double> wakes;
  w.sim.spawn(Runner::run(w.kernel, p, h, wakes));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  ASSERT_EQ(wakes.size(), 3u);
  EXPECT_NEAR(wakes[1] - wakes[0], 100.0, 20.0);
  EXPECT_NEAR(wakes[2] - wakes[1], 100.0, 20.0);
}

TEST(Timer, RearmInvalidatesOldExpiration)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h =
      w.kernel.objects().create_waitable_timer(p, "t", ResetMode::auto_reset);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h, TimePoint& woke)
    {
      co_await k.objects().set_waitable_timer(p, h, Duration::us(100));
      // Re-arm further out before the first due time arrives.
      co_await k.objects().set_waitable_timer(p, h, Duration::us(800));
      co_await k.objects().wait_for_single_object(p, h);
      woke = k.sim().now();
    }
  };
  TimePoint woke;
  w.sim.spawn(Runner::run(w.kernel, p, h, woke));
  w.sim.run();
  EXPECT_GE(woke.to_us(), 800.0);
}

TEST(Timer, NegativeDueTimeThrows)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  const Handle h =
      w.kernel.objects().create_waitable_timer(p, "t", ResetMode::auto_reset);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h)
    {
      co_await k.objects().set_waitable_timer(p, h, Duration::us(-5));
    }
  };
  w.sim.spawn(Runner::run(w.kernel, p, h));
  EXPECT_THROW(w.sim.run(), std::logic_error);
}

// --- WFSO generic / signals ---------------------------------------------------------

TEST(WaitForSingleObject, BadHandleFails)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  std::vector<WaitStatus> log;
  w.sim.spawn(wait_and_log(w.kernel, p, 1234, log));
  w.sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], WaitStatus::failed);
}

TEST(Signals, PendingSignalSatisfiesImmediately)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  struct Runner {
    static sim::Proc sender(Kernel& k, Process& s, Process& t)
    {
      co_await k.kill(s, t);
    }
    static sim::Proc receiver(Kernel& k, Process& p, bool& got)
    {
      co_await k.sleep(p, Duration::us(200));  // signal arrives first
      const auto outcome = co_await k.sigwait(p);
      got = outcome == sim::WaitOutcome::signaled;
    }
  };
  bool got = false;
  w.sim.spawn(Runner::sender(w.kernel, a, b));
  w.sim.spawn(Runner::receiver(w.kernel, b, got));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_TRUE(got);
}

TEST(Signals, SigwaitBlocksUntilKill)
{
  World w;
  Process& a = w.kernel.create_process("a", 0);
  Process& b = w.kernel.create_process("b", 0);
  struct Runner {
    static sim::Proc sender(Kernel& k, Process& s, Process& t)
    {
      co_await k.sleep(s, Duration::us(300));
      co_await k.kill(s, t);
    }
    static sim::Proc receiver(Kernel& k, Process& p, TimePoint& woke)
    {
      co_await k.sigwait(p);
      woke = k.sim().now();
    }
  };
  TimePoint woke;
  w.sim.spawn(Runner::sender(w.kernel, a, b));
  w.sim.spawn(Runner::receiver(w.kernel, b, woke));
  w.sim.run();
  EXPECT_GE(woke.to_us(), 300.0);
}

// --- mitigation fuzz hook -------------------------------------------------------------

TEST(Kernel, OpFuzzInflatesOperationTime)
{
  World w;
  w.kernel.set_op_fuzz(Duration::us(100));
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_event(p, "", ResetMode::auto_reset,
                                                   true);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h, Duration& took)
    {
      const TimePoint start = k.sim().now();
      for (int i = 0; i < 50; ++i) {
        co_await k.objects().set_event(p, h);
      }
      took = k.sim().now() - start;
    }
  };
  Duration took;
  w.sim.spawn(Runner::run(w.kernel, p, h, took));
  w.sim.run();
  // 50 ops with uniform(0,100us) fuzz should cost far more than the
  // 50us of bare (1us) op costs.
  EXPECT_GT(took.to_us(), 1000.0);
}

TEST(Kernel, TraceRecordsOps)
{
  World w;
  w.kernel.enable_trace(true);
  Process& p = w.kernel.create_process("p", 0);
  const Handle h = w.kernel.objects().create_event(p, "", ResetMode::auto_reset,
                                                   true);
  struct Runner {
    static sim::Proc run(Kernel& k, Process& p, Handle h)
    {
      co_await k.objects().set_event(p, h);
      co_await k.objects().wait_for_single_object(p, h);
    }
  };
  w.sim.spawn(Runner::run(w.kernel, p, h));
  w.sim.run();
  ASSERT_EQ(w.kernel.trace().size(), 2u);
  EXPECT_EQ(w.kernel.trace()[0].kind, OpKind::set_event);
  EXPECT_EQ(w.kernel.trace()[1].kind, OpKind::wait);
  EXPECT_EQ(w.kernel.trace()[0].pid, p.pid());
}

}  // namespace
}  // namespace mes::os
