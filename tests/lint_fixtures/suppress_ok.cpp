// Fixture: valid suppressions — both placements (trailing on the
// violating line, and a comment-only line directly above) silence the
// named rule. Zero findings expected.
#include <chrono>

namespace mes::proto {

double bench_wall()
{
  const auto t0 = std::chrono::steady_clock::now();  // mes-lint: allow(no-wallclock) measures real engine throughput, not a simulated result
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

sim::Proc broadcast(core::RunContext& ctx)
{
  // mes-lint: allow(checked-errors) broadcast wake grants nothing; waiters re-compete
  ctx.kernel.wake(ctx.trojan, parker_);
  co_return;
}

}  // namespace mes::proto
