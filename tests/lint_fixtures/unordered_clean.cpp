// Fixture: ordered-container counterpart of unordered_bad.cpp. Zero
// findings expected, on any path.
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mes::exec {

std::vector<std::string> emit_rows(const std::map<std::string, double>& by_label)
{
  std::vector<std::string> rows;
  for (const auto& [label, value] : by_label) {
    rows.push_back(label + "," + std::to_string(value));
  }
  return rows;
}

std::size_t walk_cells(const std::set<int>& cells)
{
  std::size_t n = 0;
  for (auto it = cells.begin(); it != cells.end(); ++it) ++n;
  return n;
}

}  // namespace mes::exec
