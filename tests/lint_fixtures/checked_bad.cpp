// Fixture: checked-errors violations — discarded error/outcome results
// from the Vfs/Kernel call surface. After the mandatory-lock change,
// kErrWouldBlock is a routine result; dropping it is a latent bug.
#include <cstdint>

namespace mes::channels {

sim::Proc trojan_hold(core::RunContext& ctx, os::Fd fd)
{
  os::Vfs& vfs = ctx.kernel.vfs();
  co_await vfs.flock(ctx.trojan, fd, os::FlockOp::exclusive);  // LINT-EXPECT: checked-errors
  co_await vfs.write(ctx.trojan, fd, 0, 4096);  // LINT-EXPECT: checked-errors
  co_await vfs.fsync(ctx.trojan, fd);  // LINT-EXPECT: checked-errors
  co_await ctx.kernel.park(ctx.trojan, parker_, Duration::us(5.0));  // LINT-EXPECT: checked-errors

  // Consumed results are clean in every shape.
  const int rc = co_await vfs.flock(ctx.trojan, fd, os::FlockOp::unlock);
  if (rc != os::kOk) ctx.fail(rc);
  if (co_await vfs.fsync(ctx.trojan, fd) != os::kOk) ctx.fail(-1);
  co_return;
}

std::string setup(core::RunContext& ctx)
{
  ctx.kernel.vfs().create_file(ctx.trojan.namespace_id(), "/shared/f");  // LINT-EXPECT: checked-errors
  ctx.kernel.wake(ctx.trojan, parker_);  // LINT-EXPECT: checked-errors

  // Consumed / explicitly discarded: clean.
  const int created = ctx.kernel.vfs().create_file(ctx.spy.namespace_id(), "/shared/g");
  if (created < 0) return "setup failed";
  (void)ctx.kernel.wake(ctx.spy, parker_);
  return {};
}

}  // namespace mes::channels
