// Fixture: a marked hot-pod struct that actually is POD — bare handle,
// integers, an enum. Zero findings expected.
#include <coroutine>
#include <cstdint>

namespace mes::sim {

// mes-lint: hot-pod
struct Event {
  enum class Kind : std::uint8_t { resume, callback };
  std::uint64_t at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> resume;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  Kind kind = Kind::resume;
};

}  // namespace mes::sim
