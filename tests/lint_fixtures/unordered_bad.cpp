// Fixture: no-unordered-iteration violations. Scanned under the
// virtual path src/exec/unordered_bad.cpp (an emission path): the
// iteration order of an unordered container leaks pointer values into
// whatever is emitted from the loop.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mes::exec {

struct CellIndex {
  std::unordered_map<std::string, double> goodput_by_label;
  std::unordered_set<int> seen_cells;
};

std::vector<std::string> emit_rows(const CellIndex& index)
{
  std::unordered_map<std::string, double> goodput_by_label =
      index.goodput_by_label;
  std::vector<std::string> rows;
  for (const auto& [label, value] : goodput_by_label) {  // LINT-EXPECT: no-unordered-iteration
    rows.push_back(label + "," + std::to_string(value));
  }
  return rows;
}

std::size_t walk_cells(CellIndex& index)
{
  std::unordered_set<int> seen_cells = index.seen_cells;
  std::size_t n = 0;
  for (auto it = seen_cells.begin(); it != seen_cells.end(); ++it) {  // LINT-EXPECT: no-unordered-iteration
    ++n;
  }
  return n;
}

// Ordered containers iterate deterministically: must stay clean.
double sum_ordered(const std::map<std::string, double>& by_label)
{
  double total = 0.0;
  for (const auto& [label, value] : by_label) total += value;
  return total;
}

// Membership tests without iteration are fine.
bool has_cell(const CellIndex& index, int cell)
{
  return index.seen_cells.count(cell) > 0;
}

}  // namespace mes::exec
