// Fixture: malformed suppressions. An allow() without a justification
// (or naming an unknown rule) is itself a finding — and the underlying
// violation stays reported, because the suppression never attaches.
#include <chrono>

namespace mes::proto {

double bench_wall()
{
  // mes-lint: allow(no-wallclock)
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: no-wallclock
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

sim::Proc broadcast(core::RunContext& ctx)
{
  // mes-lint: allow(not-a-real-rule) waking is harmless here
  ctx.kernel.wake(ctx.trojan, parker_);  // LINT-EXPECT: checked-errors
  co_return;
}

}  // namespace mes::proto
