// Fixture: coro-lifetime violations. Scanned under the virtual path
// src/channels/coro_bad.cpp (src/sim/ is the only resume-exempt tree).
#include <coroutine>
#include <string>
#include <vector>

namespace mes::channels {

// A temporary bound to a const-ref parameter dies at the caller's first
// suspension point; the coroutine frame keeps a dangling reference.
sim::Task<int> send_label(core::RunContext& ctx, const std::string& label);  // LINT-EXPECT: coro-lifetime

// Same bug, rvalue-reference flavour.
sim::Proc drain_symbols(std::vector<std::size_t>&& symbols);  // LINT-EXPECT: coro-lifetime

// Mutable lvalue refs cannot bind temporaries — the house idiom for
// kernel-owned objects stays clean.
sim::Task<int> probe(os::Process& proc, int rounds);

sim::Proc spawn_all(Simulator& sim, int n)
{
  int live = n;
  // The closure object usually dies before the frame's first resume.
  auto worker = [&live](Simulator& s) -> sim::Task<void> {  // LINT-EXPECT: coro-lifetime
    co_await s.delay(Duration::us(1.0));
    --live;
  };
  spawn(worker);
  // By-value captures live in the coroutine frame: clean.
  auto counter = [n](Simulator& s) -> sim::Task<void> {
    co_await s.delay(Duration::us(1.0));
  };
  spawn(counter);
  // Plain by-ref lambdas that are NOT coroutines are fine too.
  auto tally = [&live] { return live * 2; };
  tally();
}

void kick(std::coroutine_handle<> h)
{
  h.resume();  // LINT-EXPECT: coro-lifetime
}

}  // namespace mes::channels
