// Fixture: hot-path-pod violations — a struct opted in with the
// hot-pod marker must stay POD (the event hot path dispatches millions
// of these per second; one allocating member reintroduces a malloc per
// event).
#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mes::sim {

// mes-lint: hot-pod
struct Event {
  std::uint64_t at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> resume;
  std::function<void()> payload;  // LINT-EXPECT: hot-path-pod
  std::vector<int> extras;  // LINT-EXPECT: hot-path-pod
  std::string label;  // LINT-EXPECT: hot-path-pod
  virtual void fire();  // LINT-EXPECT: hot-path-pod
};

// No marker: an ordinary struct may hold whatever it wants.
struct ColdReport {
  std::string label;
  std::vector<double> samples;
  std::function<void()> on_flush;
};

}  // namespace mes::sim
