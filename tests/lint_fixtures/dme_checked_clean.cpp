// Fixture: clean counterpart of dme_checked_bad.cpp — every fabric/DME
// outcome is consumed (or visibly discarded through (void)).
#include <cstdint>

namespace mes::dme {

sim::Proc pump(net::Fabric& fabric, net::Endpoint& endpoint)
{
  const std::optional<net::Message> msg =
      co_await endpoint.recv(Duration::ms(5));
  if (!msg) co_return;
  const bool sent = fabric.send(*msg);
  if (!sent) co_return;
  // Best-effort duplicate copy: the visible discard form is accepted.
  (void)fabric.send(*msg);
}

sim::Proc symbol(LockAgent& lock, os::Process& proc)
{
  const bool held = co_await lock.acquire(proc);
  if (!held) co_return;
  if (co_await lock.release(proc)) co_return;
}

}  // namespace mes::dme
