// Fixture: checked-errors clean counterpart — every error result is
// consumed, and void-returning simulator calls may be awaited bare.
#include <cstdint>

namespace mes::channels {

sim::Proc trojan_hold(core::RunContext& ctx, os::Fd fd)
{
  os::Vfs& vfs = ctx.kernel.vfs();
  // charge_op / sleep / delay return Proc (void): bare awaits are fine.
  co_await ctx.kernel.charge_op(ctx.trojan, os::OpKind::flock_ex);
  co_await ctx.kernel.sleep(ctx.trojan, Duration::us(10.0));
  co_await ctx.kernel.sim().delay(Duration::us(1.0));

  const int rc = co_await vfs.flock(ctx.trojan, fd, os::FlockOp::exclusive);
  if (rc != os::kOk) ctx.fail(rc);
  const long wrote = co_await vfs.write(ctx.trojan, fd, 0, 4096);
  if (wrote < 0) ctx.fail(static_cast<int>(wrote));
  if (co_await vfs.fsync(ctx.trojan, fd) != os::kOk) ctx.fail(-1);
  const auto outcome =
      co_await ctx.kernel.park(ctx.trojan, parker_, Duration::us(5.0));
  if (outcome == sim::WaitOutcome::timed_out) ctx.fail(-2);
  co_return;
}

}  // namespace mes::channels
