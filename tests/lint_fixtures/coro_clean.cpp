// Fixture: coro-lifetime clean counterpart — by-value parameters,
// by-value captures, resumes routed through the simulator.
#include <coroutine>
#include <string>
#include <vector>

namespace mes::channels {

sim::Task<int> send_label(core::RunContext& ctx, std::string label);

sim::Proc drain_symbols(std::vector<std::size_t> symbols);

sim::Task<int> probe(os::Process& proc, int rounds);

sim::Proc spawn_all(Simulator& sim, int n)
{
  auto worker = [n](Simulator& s) -> sim::Task<void> {
    co_await s.delay(Duration::us(static_cast<double>(n)));
  };
  spawn(worker);
}

void kick(Simulator& sim, std::coroutine_handle<> h)
{
  sim.schedule_resume(h, Duration::zero());
}

// Non-coroutine functions may take const-refs freely.
int classify(const std::vector<double>& latencies);

}  // namespace mes::channels
