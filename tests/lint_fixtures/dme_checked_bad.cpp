// Fixture: checked-errors violations on the fabric/DME call surface.
// send() reports a loss-model drop, recv() a timeout, acquire() and
// release() a spent retransmission budget — all real outcomes on a
// lossy fabric, none safe to discard. Only fires when scanned under
// src/net/, src/dme/ or src/channels/dme*.
#include <cstdint>

namespace mes::dme {

sim::Proc pump(net::Fabric& fabric, net::Endpoint& endpoint)
{
  co_await endpoint.recv(Duration::ms(5));  // LINT-EXPECT: checked-errors
  fabric.send(net::Message{});  // LINT-EXPECT: checked-errors

  // Consumed results are clean in every shape.
  const std::optional<net::Message> msg = co_await endpoint.recv();
  if (!msg) co_return;
  const bool sent = fabric.send(*msg);
  if (!sent) co_return;
}

sim::Proc symbol(LockAgent& lock, os::Process& proc)
{
  co_await lock.acquire(proc);  // LINT-EXPECT: checked-errors
  co_await lock.release(proc);  // LINT-EXPECT: checked-errors

  const bool held = co_await lock.acquire(proc);
  if (held) {
    const bool released = co_await lock.release(proc);
    if (!released) co_return;
  }
}

}  // namespace mes::dme
