// Fixture: no-wallclock violations. Never compiled — scanned by
// test_lint under the virtual path src/proto/wallclock_bad.cpp.
// LINT-EXPECT markers name the finding expected on that line; lines
// without a marker must stay clean.
#include <chrono>
#include <cstdlib>
#include <random>

namespace mes::proto {

double probe_now()
{
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT: no-wallclock
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

std::uint64_t host_entropy_seed()
{
  std::random_device rd;  // LINT-EXPECT: no-wallclock
  return rd();
}

long wall_stamp()
{
  return std::time(nullptr);  // LINT-EXPECT: no-wallclock
}

int legacy_jitter()
{
  return rand() % 100;  // LINT-EXPECT: no-wallclock
}

// Member calls named like the banned short functions are NOT host
// clocks: this is the simulated clock and must stay clean.
template <typename Sim>
double simulated_now(Sim& sim)
{
  return sim.time();
}

}  // namespace mes::proto
