// Fixture: the deterministic counterparts of wallclock_bad.cpp — the
// simulated clock and the seeded Rng. Must produce zero findings.
#include <cstdint>

namespace mes::proto {

template <typename Sim>
double probe_now(Sim& sim)
{
  return sim.now().to_us();
}

template <typename Rng>
std::uint64_t stream_seed(Rng& rng)
{
  return rng.next_u64();
}

template <typename Rng>
int jitter(Rng& rng)
{
  return static_cast<int>(rng.next_below(100));
}

}  // namespace mes::proto
