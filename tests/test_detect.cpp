// Detector tests: the covert-channel signature versus benign traffic.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "detect/detector.h"
#include "util/rng.h"

namespace mes::detect {
namespace {

using os::Kernel;
using os::OpKind;

// Builds a synthetic op trace: `pids` hitting one object with the given
// inter-op interval generator.
template <typename NextInterval>
std::vector<Kernel::OpRecord> synth_trace(std::vector<os::Pid> pids,
                                          std::size_t ops,
                                          NextInterval next_interval)
{
  std::vector<Kernel::OpRecord> trace;
  TimePoint t = TimePoint::origin();
  for (std::size_t i = 0; i < ops; ++i) {
    t = t + Duration::us(next_interval());
    trace.push_back(Kernel::OpRecord{t, pids[i % pids.size()],
                                     OpKind::set_event, 7});
  }
  return trace;
}

TEST(Detector, FlagsBimodalTwoPartyTraffic)
{
  // The sender (pid 100) signals one object with bimodal gaps; the
  // receiver (pid 101) touches it shortly after each signal.
  Rng rng{3};
  std::vector<os::Kernel::OpRecord> trace;
  TimePoint t = TimePoint::origin();
  int bit = 0;
  for (int i = 0; i < 400; ++i) {
    bit ^= 1;
    t = t + Duration::us(bit ? rng.normal(77.0, 3.0) : rng.normal(142.0, 4.0));
    trace.push_back({t, 100, os::OpKind::set_event, 7});
    trace.push_back({t + Duration::us(6), 101, os::OpKind::wait, 7});
  }
  Detector detector;
  EXPECT_TRUE(detector.channel_detected(trace));
  const auto findings = detector.analyze(trace);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].object, 7u);
  EXPECT_GT(findings[0].bimodality, 0.2);
  EXPECT_LT(findings[0].mode_cv, 0.25);
  EXPECT_DOUBLE_EQ(findings[0].dominance, 1.0);
}

TEST(Detector, IgnoresWideSpreadThinkTimes)
{
  Rng rng{5};
  const auto trace = synth_trace({100, 101}, 600, [&] {
    return rng.uniform(20.0, 900.0);  // benign jittery lock usage
  });
  Detector detector;
  EXPECT_FALSE(detector.channel_detected(trace));
}

TEST(Detector, IgnoresManyPartyTraffic)
{
  Rng rng{7};
  int bit = 0;
  // Six processes sharing the object: dominance of the top two is low.
  const auto trace = synth_trace({1, 2, 3, 4, 5, 6}, 600, [&] {
    bit ^= 1;
    return bit ? rng.normal(77.0, 3.0) : rng.normal(142.0, 4.0);
  });
  Detector detector;
  EXPECT_FALSE(detector.channel_detected(trace));
  const auto findings = detector.analyze(trace);
  ASSERT_FALSE(findings.empty());
  EXPECT_LT(findings[0].dominance, 0.9);
}

TEST(Detector, MinOpsGateSkipsIdleObjects)
{
  std::vector<os::Kernel::OpRecord> trace;
  TimePoint t = TimePoint::origin();
  int bit = 0;
  for (int i = 0; i < 16; ++i) {
    bit ^= 1;
    t = t + Duration::us(bit ? 77.0 : 142.0);
    trace.push_back({t, 100, os::OpKind::set_event, 7});
    trace.push_back({t + Duration::us(6), 101, os::OpKind::wait, 7});
  }
  Detector detector;  // default min_ops = 64
  EXPECT_TRUE(detector.analyze(trace).empty());
  DetectorConfig relaxed;
  relaxed.min_ops = 16;
  EXPECT_FALSE(Detector{relaxed}.analyze(trace).empty());
}

TEST(Detector, FlagsRealSimulatedChannelTrace)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 77;
  TraceOut trace;
  Rng rng{1};
  const ChannelReport rep =
      run_transmission(cfg, BitVec::random(rng, 2048), &trace);
  ASSERT_TRUE(rep.ok);
  ASSERT_FALSE(trace.ops.empty());
  Detector detector;
  EXPECT_TRUE(detector.channel_detected(trace.ops));
}

TEST(Detector, FlagsContentionChannelTraceToo)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::mutex;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::mutex, Scenario::local);
  cfg.seed = 78;
  TraceOut trace;
  Rng rng{2};
  const ChannelReport rep =
      run_transmission(cfg, BitVec::random(rng, 2048), &trace);
  ASSERT_TRUE(rep.ok);
  Detector detector;
  const auto findings = detector.analyze(trace.ops);
  ASSERT_FALSE(findings.empty());
  EXPECT_TRUE(findings[0].flagged);
}

TEST(Detector, EmptyTraceYieldsNothing)
{
  Detector detector;
  EXPECT_TRUE(detector.analyze({}).empty());
  EXPECT_FALSE(detector.channel_detected({}));
}

TEST(Detector, FindingToStringMentionsKeyFields)
{
  Finding f;
  f.object = 42;
  f.pid_a = 1;
  f.pid_b = 2;
  f.ops = 100;
  f.flagged = true;
  const std::string s = to_string(f);
  EXPECT_NE(s.find("object 42"), std::string::npos);
  EXPECT_NE(s.find("FLAGGED"), std::string::npos);
}

TEST(Mitigation, FuzzRaisesChannelBer)
{
  auto ber_with_fuzz = [](double fuzz_us) {
    ExperimentConfig cfg;
    cfg.mechanism = Mechanism::event;
    cfg.scenario = Scenario::local;
    cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
    cfg.mitigation_fuzz = Duration::us(fuzz_us);
    cfg.seed = 5;
    Rng rng{5};
    const ChannelReport rep = run_transmission(cfg, BitVec::random(rng, 4096));
    EXPECT_TRUE(rep.ok);
    return rep.ber;
  };
  const double clean = ber_with_fuzz(0.0);
  const double fuzzed = ber_with_fuzz(120.0);
  EXPECT_LT(clean, 0.02);
  EXPECT_GT(fuzzed, 0.10);
}

}  // namespace
}  // namespace mes::detect
