// Unit tests for the VFS (Fig. 5 substrate): fd tables, open-file
// descriptions, i-node lock state, flock(2) and LockFileEx semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "os/kernel.h"
#include "os/vfs.h"
#include "sim/simulator.h"

namespace mes::os {
namespace {

sim::NoiseParams quiet_noise()
{
  sim::NoiseParams p;
  p.op_cost_base = Duration::us(1);
  p.op_cost_jitter = Duration::zero();
  p.wake_latency_median = Duration::us(1);
  p.wake_latency_sigma = 0.0;
  p.sleep_overshoot_median = Duration::us(0.1);
  p.sleep_overshoot_sigma = 0.0;
  p.sleep_floor = Duration::zero();
  p.block_rate_hz = 0.0;
  p.penalty_ramp_per_us = 0.0;
  p.corruption_rate = 0.0;
  p.notify_path_base = Duration::zero();
  p.notify_path_jitter = Duration::zero();
  return p;
}

struct World {
  sim::Simulator sim{1};
  Kernel kernel{sim, quiet_noise()};
  Vfs& vfs = kernel.vfs();
};

// --- path / fd plumbing ----------------------------------------------------------

TEST(Vfs, CreateAndOpen)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  EXPECT_EQ(w.vfs.create_file(0, "/f"), kErrExists);
  const Fd fd = w.vfs.open(p, "/f");
  EXPECT_GE(fd, 0);
  EXPECT_EQ(w.vfs.open(p, "/missing"), kErrNoEntry);
}

TEST(Vfs, ReadOnlyFileRefusesWriteOpen)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/ro", /*read_only=*/true), 0);
  EXPECT_EQ(w.vfs.open(p, "/ro", OpenMode::read_write), kErrAccess);
  EXPECT_GE(w.vfs.open(p, "/ro", OpenMode::read_only), 0);
}

TEST(Vfs, EachOpenCreatesDistinctDescription)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  const Fd a = w.vfs.open(p, "/f");
  const Fd b = w.vfs.open(p, "/f");
  EXPECT_NE(p.lookup_fd(a), p.lookup_fd(b));
  EXPECT_EQ(w.vfs.open_file_count(), 2u);
}

TEST(Vfs, DupSharesDescription)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  const Fd a = w.vfs.open(p, "/f");
  const Fd b = w.vfs.dup(p, a);
  EXPECT_GE(b, 0);
  EXPECT_EQ(p.lookup_fd(a), p.lookup_fd(b));
  EXPECT_EQ(w.vfs.open_file_count(), 1u);
  EXPECT_EQ(w.vfs.close(p, a), kOk);
  EXPECT_EQ(w.vfs.open_file_count(), 1u);  // refcount keeps it alive
  EXPECT_EQ(w.vfs.close(p, b), kOk);
  EXPECT_EQ(w.vfs.open_file_count(), 0u);
  EXPECT_EQ(w.vfs.close(p, b), kErrBadFd);
}

TEST(Vfs, SharedVolumeControlsCrossNamespaceVisibility)
{
  World w;
  w.kernel.create_process("vm1", 1);
  Process& vm2 = w.kernel.create_process("vm2", 2);
  // Shared volume: both namespaces resolve the same path.
  EXPECT_GT(w.vfs.create_file(1, "/shared/x"), 0);
  EXPECT_GE(w.vfs.open(vm2, "/shared/x"), 0);

  // Private volumes: the path no longer resolves across.
  World w2;
  w2.vfs.set_shared_volume(false);
  Process& a = w2.kernel.create_process("a", 1);
  Process& b = w2.kernel.create_process("b", 2);
  EXPECT_GT(w2.vfs.create_file(1, "/shared/x"), 0);
  EXPECT_GE(w2.vfs.open(a, "/shared/x"), 0);
  EXPECT_EQ(w2.vfs.open(b, "/shared/x"), kErrNoEntry);
}

// --- flock ------------------------------------------------------------------------

struct FlockWorld : World {
  Process& a = kernel.create_process("a", 0);
  Process& b = kernel.create_process("b", 0);
  Fd fa = -1;
  Fd fb = -1;
  FlockWorld()
  {
    EXPECT_GT(vfs.create_file(0, "/lockfile", true, true), 0);
    fa = vfs.open(a, "/lockfile");
    fb = vfs.open(b, "/lockfile");
  }
};

sim::Proc flock_once(Vfs& vfs, Process& p, Fd fd, FlockOp op, bool nb,
                     std::vector<int>& results)
{
  const int rc = co_await vfs.flock(p, fd, op, nb);
  results.push_back(rc);
}

TEST(Flock, ExclusiveConflictsAcrossDescriptions)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<int>& results)
    {
      int rc = co_await vfs.flock(a, fa, FlockOp::exclusive);
      results.push_back(rc);
      rc = co_await vfs.flock(b, fb, FlockOp::exclusive, /*nonblocking=*/true);
      results.push_back(rc);  // EWOULDBLOCK
      rc = co_await vfs.flock(a, fa, FlockOp::unlock);
      results.push_back(rc);
      rc = co_await vfs.flock(b, fb, FlockOp::exclusive, true);
      results.push_back(rc);  // now free
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kErrWouldBlock, kOk, kOk}));
}

TEST(Flock, SharedLocksCoexistButExcludeWriters)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<int>& results)
    {
      int rc = co_await vfs.flock(a, fa, FlockOp::shared);
      results.push_back(rc);
      rc = co_await vfs.flock(b, fb, FlockOp::shared, true);
      results.push_back(rc);  // shared + shared: ok
      rc = co_await vfs.flock(b, fb, FlockOp::exclusive, true);
      results.push_back(rc);  // upgrade blocked by a's shared lock
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kOk, kErrWouldBlock}));
}

TEST(Flock, BlockingWaiterWakesOnUnlock)
{
  FlockWorld w;
  std::vector<double> acquired_at;
  struct Holder {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k)
    {
      int rc = co_await vfs.flock(p, fd, FlockOp::exclusive);
      (void)rc;
      co_await k.sleep(p, Duration::us(400));
      rc = co_await vfs.flock(p, fd, FlockOp::unlock);
      (void)rc;
    }
  };
  struct Waiter {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k,
                         std::vector<double>& at)
    {
      co_await k.sleep(p, Duration::us(50));  // let the holder lock first
      const int rc = co_await vfs.flock(p, fd, FlockOp::exclusive);
      EXPECT_EQ(rc, kOk);
      at.push_back(k.sim().now().to_us());
    }
  };
  w.sim.spawn(Holder::run(w.vfs, w.a, w.fa, w.kernel));
  w.sim.spawn(Waiter::run(w.vfs, w.b, w.fb, w.kernel, acquired_at));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  ASSERT_EQ(acquired_at.size(), 1u);
  EXPECT_GE(acquired_at[0], 400.0);
}

TEST(Flock, DupFdSharesLockOwnership)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, std::vector<int>& results)
    {
      const Fd dup_fd = vfs.dup(a, fa);
      int rc = co_await vfs.flock(a, fa, FlockOp::exclusive);
      results.push_back(rc);
      // Same description: never self-conflicts.
      rc = co_await vfs.flock(a, dup_fd, FlockOp::exclusive, true);
      results.push_back(rc);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kOk}));
}

TEST(Flock, CloseReleasesLocksAndWakesWaiters)
{
  FlockWorld w;
  bool b_acquired = false;
  struct Holder {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k)
    {
      int rc = co_await vfs.flock(p, fd, FlockOp::exclusive);
      (void)rc;
      co_await k.sleep(p, Duration::us(200));
      (void)vfs.close(p, fd);  // close without unlock
    }
  };
  struct Waiter {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k, bool& got)
    {
      co_await k.sleep(p, Duration::us(50));
      const int rc = co_await vfs.flock(p, fd, FlockOp::exclusive);
      got = rc == kOk;
    }
  };
  w.sim.spawn(Holder::run(w.vfs, w.a, w.fa, w.kernel));
  w.sim.spawn(Waiter::run(w.vfs, w.b, w.fb, w.kernel, b_acquired));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_TRUE(b_acquired);
}

TEST(Flock, UnlockWithoutLockIsHarmless)
{
  FlockWorld w;
  std::vector<int> results;
  w.sim.spawn(flock_once(w.vfs, w.a, w.fa, FlockOp::unlock, false, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk}));
}

TEST(Flock, BadFdReported)
{
  FlockWorld w;
  std::vector<int> results;
  w.sim.spawn(flock_once(w.vfs, w.a, 999, FlockOp::exclusive, false, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kErrBadFd}));
}

TEST(Flock, FifoFairnessAmongWaiters)
{
  World w;
  EXPECT_GT(w.vfs.create_file(0, "/q"), 0);
  Process& holder = w.kernel.create_process("holder", 0);
  const Fd fh = w.vfs.open(holder, "/q");
  std::vector<int> order;
  struct Holder {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k)
    {
      int rc = co_await vfs.flock(p, fd, FlockOp::exclusive);
      (void)rc;
      co_await k.sleep(p, Duration::us(500));
      rc = co_await vfs.flock(p, fd, FlockOp::unlock);
      (void)rc;
    }
  };
  struct Waiter {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k, int id,
                         Duration arrive, std::vector<int>& order)
    {
      co_await k.sleep(p, arrive);
      int rc = co_await vfs.flock(p, fd, FlockOp::exclusive);
      (void)rc;
      order.push_back(id);
      rc = co_await vfs.flock(p, fd, FlockOp::unlock);
      (void)rc;
    }
  };
  w.sim.spawn(Holder::run(w.vfs, holder, fh, w.kernel));
  for (int i = 1; i <= 3; ++i) {
    Process& p = w.kernel.create_process("w" + std::to_string(i), 0);
    const Fd fd = w.vfs.open(p, "/q");
    w.sim.spawn(Waiter::run(w.vfs, p, fd, w.kernel, i,
                            Duration::us(50.0 * i), order));
  }
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// --- LockFileEx range locks -----------------------------------------------------------

TEST(RangeLocks, OverlapConflictsDisjointCoexists)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<int>& results)
    {
      int rc = co_await vfs.lock_file_ex(a, fa, 0, 100, LockMode::exclusive);
      results.push_back(rc);
      // Overlapping exclusive from another description: blocked.
      rc = co_await vfs.lock_file_ex(b, fb, 50, 100, LockMode::exclusive,
                                     /*fail_immediately=*/true);
      results.push_back(rc);
      // Disjoint region: fine.
      rc = co_await vfs.lock_file_ex(b, fb, 100, 50, LockMode::exclusive, true);
      results.push_back(rc);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kErrWouldBlock, kOk}));
}

TEST(RangeLocks, SharedRangesCoexist)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<int>& results)
    {
      int rc = co_await vfs.lock_file_ex(a, fa, 0, 100, LockMode::shared);
      results.push_back(rc);
      rc = co_await vfs.lock_file_ex(b, fb, 0, 100, LockMode::shared, true);
      results.push_back(rc);
      rc = co_await vfs.lock_file_ex(b, fb, 0, 100, LockMode::exclusive, true);
      results.push_back(rc);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kOk, kErrWouldBlock}));
}

TEST(RangeLocks, UnlockRequiresExactRegion)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, std::vector<int>& results)
    {
      int rc = co_await vfs.lock_file_ex(a, fa, 10, 20, LockMode::exclusive);
      results.push_back(rc);
      rc = co_await vfs.unlock_file_ex(a, fa, 10, 19);  // wrong length
      results.push_back(rc);
      rc = co_await vfs.unlock_file_ex(a, fa, 10, 20);  // exact
      results.push_back(rc);
      rc = co_await vfs.unlock_file_ex(a, fa, 10, 20);  // already gone
      results.push_back(rc);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, results));
  w.sim.run();
  EXPECT_EQ(results,
            (std::vector<int>{kOk, kErrInvalid, kOk, kErrInvalid}));
}

TEST(RangeLocks, SameDescriptionLocksStack)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, std::vector<int>& results)
    {
      int rc = co_await vfs.lock_file_ex(a, fa, 0, 50, LockMode::exclusive);
      results.push_back(rc);
      rc = co_await vfs.lock_file_ex(a, fa, 0, 50, LockMode::exclusive, true);
      results.push_back(rc);  // Windows: same handle may stack locks
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kOk}));
}

TEST(RangeLocks, ZeroLengthInvalid)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, std::vector<int>& results)
    {
      const int rc =
          co_await vfs.lock_file_ex(a, fa, 0, 0, LockMode::exclusive, true);
      results.push_back(rc);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kErrInvalid}));
}

TEST(RangeLocks, WaiterWakesOnExactUnlock)
{
  FlockWorld w;
  bool acquired = false;
  struct Holder {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k)
    {
      int rc = co_await vfs.lock_file_ex(p, fd, 0, 100, LockMode::exclusive);
      (void)rc;
      co_await k.sleep(p, Duration::us(300));
      rc = co_await vfs.unlock_file_ex(p, fd, 0, 100);
      (void)rc;
    }
  };
  struct Waiter {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, Kernel& k, bool& got)
    {
      co_await k.sleep(p, Duration::us(50));
      const int rc = co_await vfs.lock_file_ex(p, fd, 0, 100,
                                               LockMode::exclusive);
      got = rc == kOk;
    }
  };
  w.sim.spawn(Holder::run(w.vfs, w.a, w.fa, w.kernel));
  w.sim.spawn(Waiter::run(w.vfs, w.b, w.fb, w.kernel, acquired));
  const auto r = w.sim.run();
  EXPECT_EQ(r.blocked_roots, 0u);
  EXPECT_TRUE(acquired);
}

// --- IO & the threat model --------------------------------------------------------------

TEST(Io, WritingSharedReadOnlyFileFails)
{
  // §III: the covert channel exists precisely because the shared file
  // cannot carry data directly.
  FlockWorld w;
  std::vector<long> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, std::vector<long>& rs)
    {
      const long wr = co_await vfs.write(a, fa, 0, 16);
      rs.push_back(wr);
      const long rd = co_await vfs.read(a, fa, 0, 16);
      rs.push_back(rd);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<long>{kErrAccess, 16}));
}

TEST(Io, MandatoryLockBlocksForeignReaders)
{
  FlockWorld w;  // /lockfile has mandatory locking
  std::vector<long> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<long>& rs)
    {
      int rc = co_await vfs.flock(a, fa, FlockOp::exclusive);
      (void)rc;
      const long foreign = co_await vfs.read(b, fb, 0, 8);
      rs.push_back(foreign);  // blocked by the mandatory lock
      const long own = co_await vfs.read(a, fa, 0, 8);
      rs.push_back(own);  // owner still reads
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<long>{kErrWouldBlock, 8}));
}

TEST(Io, WritableFileAcceptsWrites)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/rw", /*read_only=*/false), 0);
  const Fd fd = w.vfs.open(p, "/rw", OpenMode::read_write);
  std::vector<long> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd, std::vector<long>& rs)
    {
      const long wr = co_await vfs.write(p, fd, 0, 32);
      rs.push_back(wr);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, p, fd, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<long>{32}));
}

TEST(Inode, IntrospectionReflectsLockState)
{
  FlockWorld w;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa)
    {
      const int rc = co_await vfs.flock(a, fa, FlockOp::exclusive);
      EXPECT_EQ(rc, kOk);
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa));
  w.sim.run();
  Inode* node = w.vfs.inode_by_path(0, "/lockfile");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->flock_held_exclusively());
  EXPECT_EQ(node->flock_holder_count(), 1u);
  EXPECT_TRUE(node->read_only());
  EXPECT_TRUE(node->mandatory_locking());
  EXPECT_EQ(w.vfs.inode_of(w.a, w.fa), node);
}

// A writable file with mandatory locking: the write-path enforcement
// fixture (the shared channel files stay read-only; this one exists to
// prove writes honor foreign locks).
struct WritableLockWorld : World {
  Process& a = kernel.create_process("a", 0);
  Process& b = kernel.create_process("b", 0);
  Fd fa = -1;
  Fd fb = -1;
  WritableLockWorld()
  {
    EXPECT_GT(vfs.create_file(0, "/wlock", /*read_only=*/false,
                        /*mandatory_locking=*/true),
              0);
    fa = vfs.open(a, "/wlock", OpenMode::read_write);
    fb = vfs.open(b, "/wlock", OpenMode::read_write);
  }
};

TEST(Io, MandatoryLockBlocksForeignWriters)
{
  // Regression: write() used to ignore mandatory exclusive locks
  // entirely — only read() checked them.
  WritableLockWorld w;
  std::vector<long> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<long>& rs)
    {
      int rc = co_await vfs.flock(a, fa, FlockOp::exclusive);
      (void)rc;
      const long foreign = co_await vfs.write(b, fb, 0, 8);
      rs.push_back(foreign);  // blocked by the mandatory lock
      const long own = co_await vfs.write(a, fa, 0, 8);
      rs.push_back(own);  // owner still writes
      rc = co_await vfs.flock(a, fa, FlockOp::unlock);
      (void)rc;
      const long after = co_await vfs.write(b, fb, 0, 8);
      rs.push_back(after);  // unblocked once the lock drops
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<long>{kErrWouldBlock, 8, 8}));
}

TEST(Io, MandatoryRangeLockBlocksOverlappingForeignWrites)
{
  WritableLockWorld w;
  std::vector<long> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<long>& rs)
    {
      const int rc =
          co_await vfs.lock_file_ex(a, fa, 100, 50, LockMode::exclusive);
      (void)rc;
      rs.push_back(co_await vfs.write(b, fb, 120, 8));  // inside the range
      rs.push_back(co_await vfs.write(b, fb, 0, 8));    // outside: fine
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<long>{kErrWouldBlock, 8}));
}

// --- full-range locks and the overlap overflow --------------------------------

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(RangeLocks, FullRangeLockConflictsWithEveryRange)
{
  // Regression: overlaps() computed off + len, which wraps for a
  // full-range lock (off=0, len=UINT64_MAX) and made it conflict with
  // nothing.
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, Process& b, Fd fb,
                         std::vector<int>& rs)
    {
      rs.push_back(
          co_await vfs.lock_file_ex(a, fa, 0, kMax, LockMode::exclusive));
      // Any foreign range — tiny, huge, or far out — must conflict.
      rs.push_back(co_await vfs.lock_file_ex(b, fb, 0, 1,
                                             LockMode::exclusive, true));
      rs.push_back(co_await vfs.lock_file_ex(b, fb, kMax - 1, 1,
                                             LockMode::exclusive, true));
      rs.push_back(co_await vfs.lock_file_ex(b, fb, 1u << 20, kMax >> 1,
                                             LockMode::exclusive, true));
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, w.b, w.fb, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kOk, kErrWouldBlock, kErrWouldBlock,
                                       kErrWouldBlock}));
}

TEST(RangeLocks, OverflowingRangeIsInvalid)
{
  FlockWorld w;
  std::vector<int> results;
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& a, Fd fa, std::vector<int>& rs)
    {
      // off + len would pass 2^64: rejected outright.
      rs.push_back(
          co_await vfs.lock_file_ex(a, fa, 1, kMax, LockMode::exclusive));
      rs.push_back(
          co_await vfs.lock_file_ex(a, fa, kMax, 2, LockMode::exclusive));
      // The boundary case off + len == 2^64 - 1 stays valid.
      rs.push_back(
          co_await vfs.lock_file_ex(a, fa, 1, kMax - 1, LockMode::exclusive));
    }
  };
  w.sim.spawn(Runner::run(w.vfs, w.a, w.fa, results));
  w.sim.run();
  EXPECT_EQ(results, (std::vector<int>{kErrInvalid, kErrInvalid, kOk}));
}

}  // namespace
}  // namespace mes::os
