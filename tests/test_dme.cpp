// Tests for the multi-node fabric (src/net) and the distributed
// mutual-exclusion channel family (src/dme, channels/dme_*): per-link
// RNG stream independence, Maekawa quorum properties, end-to-end
// delivery on cluster scenarios, and the campaign determinism contract
// (--jobs 1 vs --jobs N byte-identity, shard+merge byte-identity) over
// DME cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "channels/dme_base.h"
#include "dme/agent.h"
#include "exec/campaign.h"
#include "exec/env.h"
#include "exec/stream.h"
#include "net/fabric.h"
#include "scenario/registry.h"
#include "sim/simulator.h"

namespace mes {
namespace {

// --- fabric ------------------------------------------------------------

net::ClusterParams lossy_params()
{
  net::ClusterParams p;
  p.size = 3;
  p.link_base = Duration::us(200);
  p.link_jitter_sigma = 0.3;
  p.loss = 0.2;
  p.reorder = 0.1;
  p.reorder_extra = Duration::us(500);
  return p;
}

// Collects every arrival at (node, port 1) with its delivery time.
using Arrival = std::pair<std::uint64_t, std::int64_t>;  // (payload, ns)

sim::Proc collect(net::Fabric& fabric, net::NodeId node,
                  std::vector<Arrival>& out)
{
  net::Endpoint& ep = fabric.endpoint(node, 1);
  while (true) {
    const std::optional<net::Message> msg = co_await ep.recv();
    if (!msg) co_return;
    out.push_back({msg->a, (fabric.sim().now() - TimePoint::origin())
                               .count_ns()});
  }
}

// The determinism anchor: each ordered link owns an RNG stream forked
// at construction, so a link's loss/latency draws depend only on that
// link's own traffic order — not on when other links transmit.
TEST(Fabric, LinkStreamsAreQueryOrderIndependent)
{
  const net::ClusterParams params = lossy_params();
  const std::uint64_t kSeed = 0xD15C0;
  const std::size_t kMsgs = 64;

  // Fabric A: all of link 0->1, then all of link 2->1.
  // Fabric B: the same per-link sequences, interleaved.
  std::vector<Arrival> a_arrivals, b_arrivals;
  {
    sim::Simulator sim{1};
    net::Fabric fabric{sim, params, kSeed};
    sim.spawn_daemon(collect(fabric, 1, a_arrivals), "collect");
    std::uint64_t delivered = 0;
    for (std::uint64_t i = 0; i < kMsgs; ++i) {
      const bool sent = fabric.send({0, 1, 1, 0, i});
      if (sent) ++delivered;
    }
    for (std::uint64_t i = 0; i < kMsgs; ++i) {
      const bool sent = fabric.send({2, 1, 1, 0, 1000 + i});
      if (sent) ++delivered;
    }
    (void)sim.run();
    EXPECT_EQ(a_arrivals.size(), delivered);
    EXPECT_GT(fabric.messages_dropped(), 0u);  // the loss model is live
  }
  {
    sim::Simulator sim{1};
    net::Fabric fabric{sim, params, kSeed};
    sim.spawn_daemon(collect(fabric, 1, b_arrivals), "collect");
    for (std::uint64_t i = 0; i < kMsgs; ++i) {
      const bool s0 = fabric.send({0, 1, 1, 0, i});
      const bool s2 = fabric.send({2, 1, 1, 0, 1000 + i});
      (void)s0;
      (void)s2;
    }
    (void)sim.run();
  }
  // Same survivors, same delivery instants, same arrival order.
  EXPECT_EQ(a_arrivals, b_arrivals);
}

TEST(Fabric, RejectsDegenerateClustersAndBadNodeIds)
{
  sim::Simulator sim{1};
  net::ClusterParams tiny;
  tiny.size = 1;
  EXPECT_THROW((net::Fabric{sim, tiny, 1}), std::invalid_argument);

  net::ClusterParams ok;
  ok.size = 3;
  net::Fabric fabric{sim, ok, 1};
  EXPECT_THROW((void)fabric.send({0, 7, 1, 0}), std::out_of_range);
}

TEST(Fabric, SlowMemberStretchesItsLinksAfterOnset)
{
  net::ClusterParams params;
  params.size = 3;
  params.link_base = Duration::us(100);
  params.link_jitter_sigma = 0.0;  // deterministic latency
  params.slow_node = 2;
  params.slow_factor = 10.0;
  params.slow_from = Duration::ms(1);

  sim::Simulator sim{1};
  net::Fabric fabric{sim, params, 9};
  std::vector<Arrival> fast, slow;
  sim.spawn_daemon(collect(fabric, 1, fast), "fast");
  sim.spawn_daemon(collect(fabric, 2, slow), "slow");
  // Before onset both links run at base; after onset only the slow
  // node's links stretch.
  const bool s1 = fabric.send({0, 2, 1, 0, 1});
  ASSERT_TRUE(s1);
  sim.call_after(Duration::ms(2), [&fabric] {
    const bool s2 = fabric.send({0, 2, 1, 0, 2});
    const bool s3 = fabric.send({0, 1, 1, 0, 3});
    ASSERT_TRUE(s2);
    ASSERT_TRUE(s3);
  });
  (void)sim.run();
  ASSERT_EQ(slow.size(), 2u);
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(slow[0].second, Duration::us(100).count_ns());
  EXPECT_EQ(slow[1].second,
            (Duration::ms(2) + Duration::ms(1)).count_ns());
  EXPECT_EQ(fast[0].second,
            (Duration::ms(2) + Duration::us(100)).count_ns());
}

// --- Maekawa quorums ---------------------------------------------------

TEST(Maekawa, QuorumsContainSelfAndPairwiseIntersect)
{
  for (std::size_t n = 2; n <= 16; ++n) {
    std::vector<std::set<net::NodeId>> quorums;
    for (net::NodeId id = 0; id < n; ++id) {
      const std::vector<net::NodeId> q = dme::maekawa_quorum(n, id);
      const std::set<net::NodeId> qs{q.begin(), q.end()};
      EXPECT_EQ(qs.size(), q.size()) << "duplicates, n=" << n;
      EXPECT_TRUE(qs.contains(id)) << "self missing, n=" << n;
      for (const net::NodeId m : qs) EXPECT_LT(m, n);
      quorums.push_back(qs);
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        bool intersects = false;
        for (const net::NodeId m : quorums[i]) {
          if (quorums[j].contains(m)) {
            intersects = true;
            break;
          }
        }
        EXPECT_TRUE(intersects) << "disjoint quorums " << i << "," << j
                                << " at n=" << n;
      }
    }
  }
}

TEST(Maekawa, GridQuorumsStaySublinearOnPerfectSquares)
{
  // 9 nodes -> 3x3 grid: row + column = 5 members (including self),
  // against 9 for broadcast-style protocols.
  const std::vector<net::NodeId> q = dme::maekawa_quorum(9, 4);
  EXPECT_EQ(q.size(), 5u);
}

// --- end-to-end channels on cluster scenarios --------------------------

exec::ExperimentPlan dme_plan(Mechanism m, const char* scenario,
                              std::size_t payload_bits, std::uint64_t seed)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {m};
  plan.scenarios = {exec::named_scenario(scenario)};
  plan.payload_bits = payload_bits;
  plan.seed_base = seed;
  return plan;
}

TEST(DmeChannel, AllProtocolsDeliverOnARackCluster)
{
  for (const Mechanism m : {Mechanism::dme_broadcast, Mechanism::dme_ricart,
                            Mechanism::dme_maekawa}) {
    const auto cells = exec::expand(dme_plan(m, "dme-rack-3", 256, 0xDE7));
    ASSERT_EQ(cells.size(), 1u);
    const ChannelReport rep = exec::run_cell(cells[0]);
    ASSERT_TRUE(rep.ok) << to_string(m) << ": " << rep.failure_reason;
    EXPECT_TRUE(rep.sync_ok) << to_string(m);
    // Fixed-rate mode carries the raw symbol channel: residual errors
    // come only from probe-corruption noise, never from lost exclusion.
    EXPECT_LT(rep.ber, 0.03) << to_string(m);
  }
}

// The acceptance property: every protocol delivers a payload bit-exactly
// under ARQ on the lossy 5-node WAN cell (2% loss, reordering).
TEST(DmeChannel, ArqDeliversBitExactlyOverLossyWan)
{
  for (const Mechanism m : {Mechanism::dme_broadcast, Mechanism::dme_ricart,
                            Mechanism::dme_maekawa}) {
    exec::ExperimentPlan plan = dme_plan(m, "dme-lossy-wan-5", 96, 0x10E55);
    plan.protocols = {{"arq", ProtocolMode::arq}};
    const auto cells = exec::expand(plan);
    ASSERT_EQ(cells.size(), 1u);
    const ChannelReport rep = exec::run_cell(cells[0]);
    ASSERT_TRUE(rep.ok) << to_string(m) << ": " << rep.failure_reason;
    ASSERT_TRUE(rep.proto.has_value());
    EXPECT_EQ(rep.ber, 0.0) << to_string(m);
    EXPECT_EQ(rep.sent_payload.to_string(),
              rep.received_payload.to_string())
        << to_string(m);
  }
}

TEST(DmeChannel, SingleHostMechanismsCannotCrossTheFabric)
{
  const auto cells =
      exec::expand(dme_plan(Mechanism::event, "dme-rack-3", 64, 1));
  ASSERT_EQ(cells.size(), 1u);
  const ChannelReport rep = exec::run_cell(cells[0]);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("fabric"), std::string::npos)
      << rep.failure_reason;
}

TEST(DmeChannel, DmeMechanismsNeedAClusterScenario)
{
  const auto cells =
      exec::expand(dme_plan(Mechanism::dme_maekawa, "local", 64, 1));
  ASSERT_EQ(cells.size(), 1u);
  const ChannelReport rep = exec::run_cell(cells[0]);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.failure_reason.find("cluster"), std::string::npos)
      << rep.failure_reason;
}

// --- campaign determinism over DME cells -------------------------------

std::string emit_csv(const exec::CampaignResult& result)
{
  std::ostringstream out;
  exec::write_csv(out, result);
  return out.str();
}

std::string emit_json(const exec::CampaignResult& result)
{
  std::ostringstream out;
  exec::write_json(out, result);
  return out.str();
}

// A lossy Maekawa WAN cell next to rack cells of the other protocols:
// the fabric's RNG streams and the extra node kernels all derive from
// the cell seed, so worker interleaving must stay invisible.
exec::ExperimentPlan dme_campaign_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::dme_broadcast, Mechanism::dme_ricart,
                     Mechanism::dme_maekawa};
  plan.scenarios = {exec::named_scenario("dme-rack-3"),
                    exec::named_scenario("dme-lossy-wan-5")};
  plan.repeats = 2;
  plan.seed_base = 0xFAB;
  plan.payload_bits = 64;
  return plan;
}

TEST(DmeCampaign, CsvAndJsonByteIdenticalAcrossJobCounts)
{
  const exec::ExperimentPlan plan = dme_campaign_plan();
  const exec::CampaignResult serial = exec::CampaignRunner{1}.run(plan);
  const exec::CampaignResult parallel = exec::CampaignRunner{4}.run(plan);
  EXPECT_EQ(emit_csv(serial), emit_csv(parallel));
  EXPECT_EQ(emit_json(serial), emit_json(parallel));
  // And the cells actually carried payload (not a vacuous pass).
  std::size_t delivered = 0;
  for (const exec::CellResult& cell : serial.cells) {
    if (cell.report.ok && cell.report.ber == 0.0) ++delivered;
  }
  EXPECT_GE(delivered, serial.cells.size() / 2);
}

TEST(DmeCampaign, ShardMergeByteIdenticalIncludingDmeCells)
{
  // DME cells mixed with single-host cells (which fail cleanly on
  // cluster scenarios and succeed on local): the record stream must
  // reassemble byte-identically from independent shards.
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::event, Mechanism::dme_ricart};
  plan.scenarios = {exec::named_scenario("local"),
                    exec::named_scenario("dme-rack-3")};
  plan.repeats = 2;
  plan.seed_base = 0x5AD;
  plan.payload_bits = 64;

  const exec::CampaignResult reference = exec::CampaignRunner{1}.run(plan);

  const std::size_t kShards = 2;
  std::ostringstream records;
  for (std::size_t i = 0; i < kShards; ++i) {
    std::vector<exec::CampaignCell> cells =
        exec::shard_cells(exec::expand(plan), exec::ShardSpec{i, kShards});
    exec::CampaignRunner{2}.run_stream(
        std::move(cells), [&](const exec::CellResult& c) {
          records << exec::cell_record_line(c) << '\n';
        });
  }

  std::istringstream in{records.str()};
  std::ostringstream csv, json;
  exec::write_csv_header(csv);
  exec::write_json_open(json);
  std::size_t index = 0;
  const exec::CampaignSummary merged = exec::replay_records(
      plan, exec::ShardSpec{}, exec::read_records(in),
      [&](const exec::CellResult& c) {
        exec::write_csv_row(csv, c);
        exec::write_json_cell(json, c, index);
        ++index;
      });
  exec::write_json_close(json, merged.points, merged.by_mechanism,
                         merged.by_scenario);

  EXPECT_EQ(csv.str(), emit_csv(reference));
  EXPECT_EQ(json.str(), emit_json(reference));
}

}  // namespace
}  // namespace mes
