// Native backend tests: the same protocols against real Linux
// primitives. Timings are millisecond-scale and assertions lenient —
// these run inside noisy CI containers, and their job is to prove the
// end-to-end mechanics, not to benchmark.
#include <gtest/gtest.h>

#include "native/flock_channel.h"
#include "native/native_common.h"
#include "util/rng.h"

namespace mes::native {
namespace {

NativeTiming lenient_timing()
{
  return NativeTiming{};  // the defaults are already container-lenient
}

// Best of three: scheduler hiccups in a container are real; what the
// suite proves is that the channel works, not that it never retries
// (the paper's round protocol retries too, §V.B).
NativeReport transmit_with_retry(NativeChannel& channel, const BitVec& payload,
                                 const NativeTiming& timing)
{
  NativeReport best;
  for (int attempt = 0; attempt < 3; ++attempt) {
    NativeReport rep = channel.transmit(payload, timing, 8);
    if (rep.ok && rep.sync_ok && rep.ber <= 0.10) return rep;
    if (!best.ok || (rep.ok && rep.ber < best.ber)) best = rep;
  }
  return best;
}

TEST(NativeEventFd, TransmitsShortPayload)
{
  const auto channel = make_native_eventfd();
  Rng rng{1};
  const BitVec payload = BitVec::random(rng, 32);
  const NativeReport rep = transmit_with_retry(*channel, payload,
                                               lenient_timing());
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_LE(rep.ber, 0.15);
  EXPECT_EQ(rep.latencies_us.size(), payload.size() + 8);
  EXPECT_GT(rep.throughput_bps, 0.0);
}

TEST(NativeEventFd, DistinguishableLatencyLevels)
{
  const auto channel = make_native_eventfd();
  const BitVec payload = BitVec::from_string("11110000");
  const NativeReport rep = transmit_with_retry(*channel, payload,
                                               lenient_timing());
  ASSERT_TRUE(rep.ok) << rep.error;
  if (rep.ber == 0.0) {
    // '1' latencies (t0+interval ~ 14ms) clearly exceed '0' (~6ms).
    const auto& lat = rep.latencies_us;
    const std::size_t n = lat.size();
    EXPECT_GT(lat[n - 8], lat[n - 1] * 1.5);
  }
}

TEST(NativeSemaphore, TransmitsAsLock)
{
  const auto channel = make_native_semaphore();
  Rng rng{2};
  const BitVec payload = BitVec::random(rng, 32);
  const NativeReport rep = transmit_with_retry(*channel, payload,
                                               lenient_timing());
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.sync_ok);
  // POSIX semaphores hand off unfairly (§V.B's fair-pattern caveat made
  // real); the sender's yield gap mitigates but cannot eliminate probe
  // losses, so the bar is looser than flock's FIFO-queued channel.
  EXPECT_LE(rep.ber, 0.25);
}

TEST(NativeFlock, TransmitsBetweenTwoDescriptions)
{
  const auto channel = make_native_flock("/tmp");
  Rng rng{3};
  const BitVec payload = BitVec::random(rng, 24);
  const NativeReport rep = transmit_with_retry(*channel, payload,
                                               lenient_timing());
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_LE(rep.ber, 0.20);
}

TEST(NativeFlock, SenderFailsOnMissingFile)
{
  const std::string err = flock_send("/nonexistent/dir/x.lock",
                                     BitVec::from_string("1"),
                                     lenient_timing());
  EXPECT_FALSE(err.empty());
}

TEST(NativeFlock, ReceiverFailsOnMissingFile)
{
  std::string err;
  const auto lat = flock_receive("/nonexistent/dir/x.lock", 4,
                                 lenient_timing(), 1000.0, &err);
  EXPECT_FALSE(lat.has_value());
  EXPECT_FALSE(err.empty());
}

TEST(ScoreReception, DecodesFromLatencies)
{
  // Preamble 1,0,1,0,1,0,1,0 then payload 1,1,0.
  const std::vector<double> lats = {60, 10, 58, 11, 61, 12, 59, 10,
                                    62, 60, 9};
  const NativeReport rep = score_reception(BitVec::from_string("110"), 8, lats,
                                           35.0, std::chrono::milliseconds{5});
  ASSERT_TRUE(rep.ok);
  EXPECT_TRUE(rep.sync_ok);
  EXPECT_EQ(rep.ber, 0.0);
  EXPECT_EQ(rep.received_payload.to_string(), "110");
  EXPECT_GT(rep.throughput_bps, 0.0);
}

TEST(ScoreReception, ReportsSyncFailureOnCorruptPreamble)
{
  const std::vector<double> lats = {10, 10, 58, 11, 61, 12, 59, 10, 62};
  const NativeReport rep = score_reception(BitVec::from_string("1"), 8, lats,
                                           35.0, std::chrono::milliseconds{5});
  ASSERT_TRUE(rep.ok);
  EXPECT_FALSE(rep.sync_ok);
}

}  // namespace
}  // namespace mes::native
