// Integration tests: end-to-end attack flows across module boundaries —
// the scenarios the examples/ directory demonstrates, held to assertions.
#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "codec/frame.h"
#include "core/runner.h"
#include "detect/detector.h"
#include "util/rng.h"

namespace mes {
namespace {

TEST(EndToEnd, KeyExfiltrationOverEveryLocalMechanism)
{
  // A 128-bit key leaves the restricted environment over each channel.
  Rng key_rng{0x5EC4E7};
  const BitVec key = BitVec::random(key_rng, 128);
  for (const Mechanism m :
       {Mechanism::flock, Mechanism::file_lock_ex, Mechanism::mutex,
        Mechanism::semaphore, Mechanism::event, Mechanism::waitable_timer,
        Mechanism::posix_signal}) {
    ExperimentConfig cfg;
    cfg.mechanism = m;
    cfg.scenario = Scenario::local;
    cfg.timing = paper_timeset(m, Scenario::local);
    cfg.seed = 0xE2E;
    const RoundedReport rounded = run_with_retries(cfg, key, 8);
    ASSERT_TRUE(rounded.report.ok) << to_string(m) << ": "
                                   << rounded.report.failure_reason;
    EXPECT_TRUE(rounded.report.sync_ok) << to_string(m);
    EXPECT_LE(key.hamming_distance(rounded.report.received_payload), 3u)
        << to_string(m);
  }
}

TEST(EndToEnd, SandboxEscapeCarriesText)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::cross_sandbox;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::cross_sandbox);
  cfg.seed = 0x5B0;
  const BitVec secret = BitVec::from_text("TOKEN:a1b2c3");
  const RoundedReport rounded = run_with_retries(cfg, secret, 8);
  ASSERT_TRUE(rounded.report.ok);
  ASSERT_TRUE(rounded.report.sync_ok);
  EXPECT_LE(secret.hamming_distance(rounded.report.received_payload), 2u);
}

TEST(EndToEnd, CrossVmOnlyFileBackedMechanismsSurvive)
{
  Rng rng{0xCC};
  const BitVec payload = BitVec::random(rng, 512);
  std::size_t working = 0;
  std::size_t failing = 0;
  for (const Mechanism m :
       {Mechanism::flock, Mechanism::file_lock_ex, Mechanism::mutex,
        Mechanism::semaphore, Mechanism::event, Mechanism::waitable_timer}) {
    ExperimentConfig cfg;
    cfg.mechanism = m;
    cfg.scenario = Scenario::cross_vm;
    cfg.timing = paper_timeset(m, Scenario::cross_vm);
    const ChannelReport rep = run_transmission(cfg, payload);
    if (rep.ok) {
      ++working;
      EXPECT_TRUE(m == Mechanism::flock || m == Mechanism::file_lock_ex);
      EXPECT_LT(rep.ber, 0.03);
    } else {
      ++failing;
    }
  }
  EXPECT_EQ(working, 2u);
  EXPECT_EQ(failing, 4u);
}

TEST(EndToEnd, AttackerCalibratesFromPreambleWithoutPriorKnowledge)
{
  // Deliberately disable the a-priori threshold refinement and rely on
  // preamble calibration alone with a skewed initial estimate.
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.sync_bits = 16;  // longer calibration preamble
  cfg.seed = 0xCA1;
  Rng rng{0xCA1};
  const BitVec payload = BitVec::random(rng, 1024);
  const ChannelReport with = run_transmission(cfg, payload);
  cfg.recalibrate_from_preamble = false;
  const ChannelReport without = run_transmission(cfg, payload);
  ASSERT_TRUE(with.ok);
  ASSERT_TRUE(without.ok);
  // Both decode here (the estimate happens to be good), but calibration
  // must never be worse.
  EXPECT_LE(with.ber, without.ber + 1e-9);
}

TEST(EndToEnd, DetectorSeesTheAttackItsTraceProves)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 0xDE7;
  TraceOut trace;
  Rng rng{0xDE7};
  const ChannelReport rep =
      run_transmission(cfg, BitVec::random(rng, 1024), &trace);
  ASSERT_TRUE(rep.ok);
  EXPECT_LT(rep.ber, 0.02);
  detect::Detector detector;
  EXPECT_TRUE(detector.channel_detected(trace.ops));
}

TEST(EndToEnd, MitigationKillsChannelButDetectorStillHelps)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.mitigation_fuzz = Duration::us(200);
  cfg.seed = 0x311;
  Rng rng{0x311};
  const ChannelReport rep = run_transmission(cfg, BitVec::random(rng, 2048));
  ASSERT_TRUE(rep.ok);
  EXPECT_GT(rep.ber, 0.2);  // channel effectively dead
}

TEST(Sweeps, GridRunsEveryPointDeterministically)
{
  const auto make = [](double x, double s) {
    ExperimentConfig cfg;
    cfg.mechanism = Mechanism::event;
    cfg.scenario = Scenario::local;
    cfg.timing.t0 = Duration::us(x);
    cfg.timing.interval = Duration::us(s);
    return cfg;
  };
  const auto a = analysis::sweep_grid({15, 25}, {65, 90}, 512, 7, make);
  const auto b = analysis::sweep_grid({15, 25}, {65, 90}, 512, 7, make);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].ok);
    EXPECT_DOUBLE_EQ(a[i].ber, b[i].ber);
    EXPECT_DOUBLE_EQ(a[i].throughput_bps, b[i].throughput_bps);
  }
}

TEST(Sweeps, MultiPairAggregatesNearLinearly)
{
  ExperimentConfig base;
  base.mechanism = Mechanism::event;
  base.scenario = Scenario::local;
  base.timing = paper_timeset(Mechanism::event, Scenario::local);
  base.seed = 0x3117;
  const auto one = analysis::run_multi_pair(base, 1, 1024);
  const auto eight = analysis::run_multi_pair(base, 8, 1024);
  ASSERT_GT(one.aggregate_bps, 0.0);
  EXPECT_NEAR(eight.aggregate_bps / one.aggregate_bps, 8.0, 1.0);
  EXPECT_LT(eight.mean_ber, 0.03);
}

TEST(Trace, StreamContainsBothEndpoints)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::semaphore;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::semaphore, Scenario::local);
  TraceOut trace;
  Rng rng{0x7124};
  const ChannelReport rep =
      run_transmission(cfg, BitVec::random(rng, 128), &trace);
  ASSERT_TRUE(rep.ok);
  std::set<os::Pid> pids;
  for (const auto& op : trace.ops) pids.insert(op.pid);
  EXPECT_EQ(pids.size(), 2u);
  // Time stamps are monotone.
  for (std::size_t i = 1; i < trace.ops.size(); ++i) {
    EXPECT_LE(trace.ops[i - 1].at, trace.ops[i].at);
  }
}

TEST(Framing, SyncSequenceSurvivesFullStack)
{
  // The received frame's preamble section, reclassified post hoc, always
  // matches the alternating pattern when sync_ok is reported.
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.seed = 0xF1A;
  Rng rng{0xF1A};
  const ChannelReport rep = run_transmission(cfg, BitVec::random(rng, 256));
  ASSERT_TRUE(rep.ok);
  if (rep.sync_ok) {
    for (std::size_t i = 0; i < cfg.sync_bits; ++i) {
      EXPECT_EQ(rep.rx_symbols[i], static_cast<std::size_t>(i % 2 == 0));
    }
  }
}

}  // namespace
}  // namespace mes
