// Unit tests for the codec: symbol schedules, latency classification,
// preamble calibration and framing.
#include <gtest/gtest.h>

#include <stdexcept>

#include "codec/frame.h"
#include "codec/symbols.h"
#include "util/rng.h"

namespace mes::codec {
namespace {

// --- SymbolSchedule ---------------------------------------------------------------

TEST(SymbolSchedule, HoldTimesAreEvenlySpaced)
{
  const SymbolSchedule s{2, Duration::us(15), Duration::us(50)};
  EXPECT_EQ(s.alphabet_size(), 4u);
  EXPECT_DOUBLE_EQ(s.hold_time(0).to_us(), 15.0);
  EXPECT_DOUBLE_EQ(s.hold_time(1).to_us(), 65.0);
  EXPECT_DOUBLE_EQ(s.hold_time(2).to_us(), 115.0);
  EXPECT_DOUBLE_EQ(s.hold_time(3).to_us(), 165.0);
  EXPECT_THROW(s.hold_time(4), std::out_of_range);
}

TEST(SymbolSchedule, ValidatesConstruction)
{
  EXPECT_THROW(SymbolSchedule(0, Duration::us(1), Duration::us(1)),
               std::invalid_argument);
  EXPECT_THROW(SymbolSchedule(9, Duration::us(1), Duration::us(1)),
               std::invalid_argument);
  EXPECT_THROW(SymbolSchedule(1, Duration::us(1), Duration::zero()),
               std::invalid_argument);
}

TEST(SymbolSchedule, EncodeMsbFirst)
{
  const SymbolSchedule s{2, Duration::us(15), Duration::us(50)};
  const auto symbols = s.encode(BitVec::from_string("00011011"));
  EXPECT_EQ(symbols, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(SymbolSchedule, EncodeRejectsMisalignedBits)
{
  const SymbolSchedule s{2, Duration::us(15), Duration::us(50)};
  EXPECT_THROW(s.encode(BitVec::from_string("101")), std::invalid_argument);
}

TEST(SymbolSchedule, EncodeDecodeRoundTrip)
{
  Rng rng{5};
  for (std::size_t width = 1; width <= 4; ++width) {
    const SymbolSchedule s{width, Duration::us(10), Duration::us(40)};
    const BitVec bits = BitVec::random(rng, width * 64);
    EXPECT_EQ(s.decode(s.encode(bits)), bits) << "width " << width;
  }
}

TEST(SymbolSchedule, BinaryEncodeIsIdentity)
{
  const SymbolSchedule s{1, Duration::us(15), Duration::us(65)};
  const auto symbols = s.encode(BitVec::from_string("1011"));
  EXPECT_EQ(symbols, (std::vector<std::size_t>{1, 0, 1, 1}));
}

// --- LatencyClassifier --------------------------------------------------------------

TEST(LatencyClassifier, BinaryThreshold)
{
  const auto c = LatencyClassifier::binary(Duration::us(90));
  EXPECT_EQ(c.classify(Duration::us(20)), 0u);
  EXPECT_EQ(c.classify(Duration::us(90)), 0u);   // boundary maps low
  EXPECT_EQ(c.classify(Duration::us(91)), 1u);
  EXPECT_EQ(c.classify(Duration::us(5000)), 1u);
  EXPECT_EQ(c.alphabet_size(), 2u);
}

TEST(LatencyClassifier, MultiLevelMidpoints)
{
  // Levels at 40, 90, 140, 190 -> thresholds 65, 115, 165.
  const LatencyClassifier c{4, Duration::us(40), Duration::us(50)};
  EXPECT_EQ(c.classify(Duration::us(10)), 0u);
  EXPECT_EQ(c.classify(Duration::us(64)), 0u);
  EXPECT_EQ(c.classify(Duration::us(66)), 1u);
  EXPECT_EQ(c.classify(Duration::us(114)), 1u);
  EXPECT_EQ(c.classify(Duration::us(116)), 2u);
  EXPECT_EQ(c.classify(Duration::us(166)), 3u);
  EXPECT_EQ(c.classify(Duration::us(10000)), 3u);
  EXPECT_DOUBLE_EQ(c.threshold(0).to_us(), 65.0);
  EXPECT_DOUBLE_EQ(c.threshold(2).to_us(), 165.0);
}

TEST(LatencyClassifier, RejectsDegenerateAlphabet)
{
  EXPECT_THROW(LatencyClassifier(1, Duration::us(10), Duration::us(10)),
               std::invalid_argument);
}

TEST(CalibrateBinary, MidpointOfAlternatingPreamble)
{
  // Preamble 1,0,1,0: highs ~200, lows ~40 -> threshold ~120.
  const std::vector<Duration> lats = {
      Duration::us(205), Duration::us(38), Duration::us(195),
      Duration::us(42)};
  const auto c = calibrate_binary(lats, Duration::us(999));
  EXPECT_EQ(c.classify(Duration::us(110)), 0u);
  EXPECT_EQ(c.classify(Duration::us(130)), 1u);
}

TEST(CalibrateBinary, FallsBackOnShortOrDegeneratePreamble)
{
  const auto short_preamble = calibrate_binary(
      {Duration::us(10), Duration::us(20)}, Duration::us(77));
  EXPECT_EQ(short_preamble.classify(Duration::us(76)), 0u);
  EXPECT_EQ(short_preamble.classify(Duration::us(78)), 1u);

  // Inverted levels (highs not higher): fallback too.
  const std::vector<Duration> inverted = {
      Duration::us(10), Duration::us(200), Duration::us(12),
      Duration::us(190)};
  const auto c = calibrate_binary(inverted, Duration::us(55));
  EXPECT_EQ(c.classify(Duration::us(54)), 0u);
  EXPECT_EQ(c.classify(Duration::us(56)), 1u);
}

// --- framing ---------------------------------------------------------------------------

TEST(Frame, PrependsAlternatingPreamble)
{
  const Frame f = make_frame(BitVec::from_string("1100"), 6);
  EXPECT_EQ(f.bits.to_string(), "1010101100");
  EXPECT_EQ(f.sync_bits, 6u);
}

TEST(Frame, CheckAndStripAcceptsExactPreamble)
{
  const auto payload = check_and_strip(BitVec::from_string("1010101100"), 6);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->to_string(), "1100");
}

TEST(Frame, CheckAndStripRejectsCorruptPreamble)
{
  EXPECT_FALSE(check_and_strip(BitVec::from_string("1110101100"), 6));
  EXPECT_FALSE(check_and_strip(BitVec::from_string("10101"), 6));  // short
}

TEST(Frame, ZeroSyncBitsPassthrough)
{
  const Frame f = make_frame(BitVec::from_string("101"), 0);
  EXPECT_EQ(f.bits.to_string(), "101");
  const auto payload = check_and_strip(f.bits, 0);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->to_string(), "101");
}

TEST(Frame, RoundTripThroughCodec)
{
  Rng rng{9};
  const BitVec payload = BitVec::random(rng, 64);
  const Frame f = make_frame(payload, 8);
  const SymbolSchedule s{1, Duration::us(15), Duration::us(65)};
  const auto symbols = s.encode(f.bits);
  const BitVec decoded_bits = s.decode(symbols);
  const auto recovered = check_and_strip(decoded_bits, 8);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, payload);
}

TEST(Crc, MatchesCcittFalseCheckValue)
{
  // The CRC-16/CCITT-FALSE check string "123456789" -> 0x29B1.
  const BitVec bits = BitVec::from_bytes(
      {'1', '2', '3', '4', '5', '6', '7', '8', '9'});
  EXPECT_EQ(crc16(bits), 0x29B1);
}

TEST(Crc, AppendCheckRoundTrip)
{
  Rng rng{11};
  for (const std::size_t n : {0u, 1u, 7u, 64u, 333u}) {
    const BitVec body = BitVec::random(rng, n);
    const BitVec framed = append_crc(body);
    ASSERT_EQ(framed.size(), n + kCrcBits);
    const auto checked = check_and_strip_crc(framed);
    ASSERT_TRUE(checked.has_value()) << n;
    EXPECT_EQ(*checked, body);
  }
}

TEST(Crc, DetectsEverySingleBitFlip)
{
  Rng rng{12};
  const BitVec body = BitVec::random(rng, 96);
  const BitVec framed = append_crc(body);
  for (std::size_t i = 0; i < framed.size(); ++i) {
    std::vector<int> bits = framed.bits();
    bits[i] ^= 1;
    EXPECT_FALSE(check_and_strip_crc(BitVec{bits}).has_value()) << i;
  }
}

TEST(Crc, RejectsShortInput)
{
  EXPECT_FALSE(check_and_strip_crc(BitVec::from_string("1010")).has_value());
}

}  // namespace
}  // namespace mes::codec
