// Tests for the FEC layer (Hamming(7,4) + interleaving) and the
// capacity analysis.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/capacity.h"
#include "codec/fec.h"
#include "core/runner.h"
#include "util/rng.h"

namespace mes::codec {
namespace {

TEST(Hamming74, RoundTripCleanChannel)
{
  Rng rng{3};
  const BitVec data = BitVec::random(rng, 64);
  const BitVec coded = Hamming74::encode(data);
  EXPECT_EQ(coded.size(), 64u / 4u * 7u);
  const auto decoded = Hamming74::decode(coded);
  EXPECT_EQ(decoded.data, data);
  EXPECT_EQ(decoded.corrected, 0u);
}

TEST(Hamming74, CorrectsAnySingleBitErrorPerBlock)
{
  Rng rng{5};
  const BitVec data = BitVec::random(rng, 4);
  const BitVec coded = Hamming74::encode(data);
  for (std::size_t flip = 0; flip < 7; ++flip) {
    std::vector<int> corrupted = coded.bits();
    corrupted[flip] ^= 1;
    const auto decoded = Hamming74::decode(BitVec{corrupted});
    EXPECT_EQ(decoded.data, data) << "flipped bit " << flip;
    EXPECT_EQ(decoded.corrected, 1u);
  }
}

TEST(Hamming74, DoubleErrorEscapesCorrection)
{
  const BitVec data = BitVec::from_string("1010");
  const BitVec coded = Hamming74::encode(data);
  std::vector<int> corrupted = coded.bits();
  corrupted[0] ^= 1;
  corrupted[3] ^= 1;
  const auto decoded = Hamming74::decode(BitVec{corrupted});
  EXPECT_NE(decoded.data, data);  // miscorrects, as Hamming must
}

TEST(Hamming74, ValidatesBlockSizes)
{
  EXPECT_THROW(Hamming74::encode(BitVec::from_string("101")),
               std::invalid_argument);
  EXPECT_THROW(Hamming74::decode(BitVec::from_string("101010")),
               std::invalid_argument);
}

TEST(Interleaver, RoundTripIsIdentity)
{
  Rng rng{7};
  for (const std::size_t depth : {1u, 2u, 7u, 8u}) {
    const BitVec bits = BitVec::random(rng, 56);
    EXPECT_EQ(deinterleave(interleave(bits, depth), depth), bits)
        << "depth " << depth;
  }
}

TEST(Interleaver, SpreadsBursts)
{
  // A burst of `depth` consecutive errors lands in distinct codewords
  // after deinterleaving.
  const std::size_t depth = 7;
  BitVec zeros{std::vector<int>(56, 0)};
  BitVec coded = interleave(zeros, depth);
  std::vector<int> hit = coded.bits();
  for (std::size_t i = 20; i < 20 + depth; ++i) hit[i] = 1;  // the burst
  const BitVec spread = deinterleave(BitVec{hit}, depth);
  // Count errors per 7-bit codeword: none may exceed 1.
  for (std::size_t block = 0; block < spread.size() / 7; ++block) {
    int errors = 0;
    for (std::size_t k = 0; k < 7; ++k) errors += spread[block * 7 + k];
    EXPECT_LE(errors, 1) << "block " << block;
  }
}

TEST(FecPipeline, ProtectRecoverRoundTrip)
{
  Rng rng{11};
  const BitVec data = BitVec::random(rng, 128);
  const BitVec coded = fec_protect(data, 7);
  const auto recovered = fec_recover(coded, 7);
  EXPECT_EQ(recovered.data.slice(0, data.size()), data);
}

TEST(FecPipeline, ReducesResidualErrorsAtChannelBer)
{
  // At the channel's working BER (~0.6%), Hamming(7,4) cuts the residual
  // error rate by roughly two orders of magnitude. Aggregate over many
  // payloads: double-flips inside one block are rare but not impossible,
  // so the property is statistical, not per-run.
  Rng rng{13};
  std::size_t raw_flips = 0;
  std::size_t residual = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const BitVec data = BitVec::random(rng, 512);
    const BitVec coded = fec_protect(data, 7);
    std::vector<int> noisy = coded.bits();
    for (auto& b : noisy) {
      if (rng.bernoulli(0.006)) {
        b ^= 1;
        ++raw_flips;
      }
    }
    const auto recovered = fec_recover(BitVec{noisy}, 7);
    residual += data.hamming_distance(recovered.data.slice(0, data.size()));
  }
  EXPECT_GT(raw_flips, 50u);          // the channel really was noisy
  EXPECT_LT(residual * 10, raw_flips);  // >90% of damage repaired
}

TEST(FecPipeline, EndToEndOverSimulatedChannel)
{
  Rng rng{17};
  const BitVec key = BitVec::random(rng, 128);
  const BitVec protected_payload = fec_protect(key, 7);

  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.seed = 0xFEC;
  const ChannelReport rep = run_transmission(cfg, protected_payload);
  ASSERT_TRUE(rep.ok);
  const auto recovered = fec_recover(rep.received_payload, 7);
  EXPECT_EQ(recovered.data.slice(0, key.size()), key);
}

}  // namespace
}  // namespace mes::codec

namespace mes::analysis {
namespace {

TEST(Capacity, BinaryEntropyShape)
{
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_NEAR(binary_entropy(0.11), 0.4999, 0.001);
}

TEST(Capacity, BscCapacity)
{
  EXPECT_DOUBLE_EQ(bsc_capacity(0.0), 1.0);
  EXPECT_DOUBLE_EQ(bsc_capacity(0.5), 0.0);
  EXPECT_NEAR(bsc_capacity(0.006), 0.947, 0.002);  // the channels' regime
  // Symmetric: p > 0.5 clamps (a channel that inverts is still a channel).
  EXPECT_DOUBLE_EQ(bsc_capacity(0.7), 0.0);
}

TEST(Capacity, EffectiveRate)
{
  EXPECT_NEAR(effective_capacity_bps(13105.0, 0.00554), 12466.0, 50.0);
  EXPECT_DOUBLE_EQ(effective_capacity_bps(1000.0, 0.0), 1000.0);
}

TEST(Capacity, HammingBlockFailure)
{
  EXPECT_DOUBLE_EQ(hamming74_block_failure(0.0), 0.0);
  // At p = 0.6%: P(fail) ~ C(7,2) p^2 = 21 * 3.6e-5 ~ 7.4e-4.
  EXPECT_NEAR(hamming74_block_failure(0.006), 7.4e-4, 1e-4);
  EXPECT_GT(hamming74_block_failure(0.05), hamming74_block_failure(0.006));
}

}  // namespace
}  // namespace mes::analysis
