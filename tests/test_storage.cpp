// Tests for the storage-sync substrate: page cache dirty tracking,
// writeback daemon lifecycle, fsync flush-queue contention, and the
// determinism contract of the storage channel family under the
// disk-pressure / journal-contention / writeback-storm scenarios.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exec/campaign.h"
#include "os/kernel.h"
#include "os/page_cache.h"
#include "os/vfs.h"
#include "sim/simulator.h"

namespace mes::os {
namespace {

sim::NoiseParams quiet_noise()
{
  sim::NoiseParams p;
  p.op_cost_base = Duration::us(1);
  p.op_cost_jitter = Duration::zero();
  p.wake_latency_median = Duration::us(1);
  p.wake_latency_sigma = 0.0;
  p.sleep_overshoot_median = Duration::us(0.1);
  p.sleep_overshoot_sigma = 0.0;
  p.sleep_floor = Duration::zero();
  p.block_rate_hz = 0.0;
  p.penalty_ramp_per_us = 0.0;
  p.corruption_rate = 0.0;
  p.notify_path_base = Duration::zero();
  p.notify_path_jitter = Duration::zero();
  return p;
}

// Deterministic device: no per-page jitter, so latencies are exact.
StorageParams exact_storage()
{
  StorageParams p;
  p.page_service_jitter = Duration::zero();
  return p;
}

struct World {
  sim::Simulator sim{1};
  Kernel kernel{sim, quiet_noise()};
  Vfs& vfs = kernel.vfs();
  PageCache& cache = vfs.page_cache();

  World() { cache.configure(exact_storage()); }
};

// --- dirty-page tracking ---------------------------------------------------

TEST(PageCache, MarkDirtySpansAndCoalescesPages)
{
  World w;
  // One byte dirties one page; a straddling span dirties both sides.
  w.cache.mark_dirty(7, 0, 1);
  EXPECT_EQ(w.cache.dirty_pages(7), 1u);
  w.cache.mark_dirty(7, PageCache::kPageSize - 2, 4);
  EXPECT_EQ(w.cache.dirty_pages(7), 2u);
  // Rewriting an already-dirty page coalesces instead of accumulating.
  w.cache.mark_dirty(7, 100, 200);
  EXPECT_EQ(w.cache.dirty_pages(7), 2u);
  // A zero-length write dirties nothing.
  w.cache.mark_dirty(7, 0, 0);
  EXPECT_EQ(w.cache.dirty_pages(7), 2u);
  // Other inodes are tracked independently.
  w.cache.mark_dirty(8, 5 * PageCache::kPageSize, 1);
  EXPECT_EQ(w.cache.dirty_pages(8), 1u);
  EXPECT_EQ(w.cache.total_dirty_pages(), 3u);
}

TEST(PageCache, VfsWriteDirtiesPagesThroughTheCache)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  const Fd fd = w.vfs.open(p, "/f", OpenMode::read_write);
  ASSERT_GE(fd, 0);
  struct Runner {
    static sim::Proc run(Vfs& vfs, Process& p, Fd fd)
    {
      long n = co_await vfs.write(p, fd, 0, PageCache::kPageSize + 1);
      EXPECT_EQ(n, static_cast<long>(PageCache::kPageSize + 1));
    }
  };
  w.sim.spawn(Runner::run(w.vfs, p, fd));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
  // Two pages hit the device: the daemon flushed both dirtied pages
  // before the event queue drained.
  EXPECT_EQ(w.cache.total_dirty_pages(), 0u);
  EXPECT_EQ(w.cache.pages_flushed(), 2u);
  EXPECT_GE(w.cache.writeback_passes(), 1u);
}

// --- fsync semantics -------------------------------------------------------

TEST(PageCache, FsyncFlushesDirtyPagesPlusCommitRecord)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  const Fd fd = w.vfs.open(p, "/f", OpenMode::read_write);
  ASSERT_GE(fd, 0);
  struct Runner {
    static sim::Proc run(World& w, Process& p, Fd fd)
    {
      co_await w.vfs.write(p, fd, 0, 3 * PageCache::kPageSize);
      EXPECT_EQ(co_await w.vfs.fsync(p, fd), kOk);
      // Checked inside the coroutine: the writeback daemon has not had
      // a chance to run yet, so the flush is attributable to fsync.
      EXPECT_EQ(w.cache.total_dirty_pages(), 0u);
      EXPECT_EQ(w.cache.flushes(), 1u);
      // 3 dirty pages + the journal commit record.
      EXPECT_EQ(w.cache.pages_flushed(),
                3u + w.cache.params().commit_pages);
    }
  };
  w.sim.spawn(Runner::run(w, p, fd));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
}

TEST(PageCache, JournalCouplingFlushesForeignDirtyPages)
{
  // ext4 data=ordered: fsync of a *clean* file still pays for every
  // dirty page in the system. This is the Write+Sync receive path.
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/a"), 0);
  EXPECT_GT(w.vfs.create_file(0, "/b"), 0);
  const Fd fa = w.vfs.open(p, "/a", OpenMode::read_write);
  const Fd fb = w.vfs.open(p, "/b", OpenMode::read_write);
  ASSERT_GE(fa, 0);
  ASSERT_GE(fb, 0);
  struct Runner {
    static sim::Proc run(World& w, Process& p, Fd fa, Fd fb)
    {
      co_await w.vfs.write(p, fa, 0, 4 * PageCache::kPageSize);
      EXPECT_EQ(co_await w.vfs.fsync(p, fb), kOk);
      EXPECT_EQ(w.cache.total_dirty_pages(), 0u);
      EXPECT_EQ(w.cache.pages_flushed(),
                4u + w.cache.params().commit_pages);
    }
  };
  w.sim.spawn(Runner::run(w, p, fa, fb));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
}

TEST(PageCache, NoJournalCouplingLeavesForeignPagesToWriteback)
{
  World w;
  StorageParams params = exact_storage();
  params.journal_coupling = false;
  w.cache.configure(params);
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/a"), 0);
  EXPECT_GT(w.vfs.create_file(0, "/b"), 0);
  const Fd fa = w.vfs.open(p, "/a", OpenMode::read_write);
  const Fd fb = w.vfs.open(p, "/b", OpenMode::read_write);
  struct Runner {
    static sim::Proc run(World& w, Process& p, Fd fa, Fd fb)
    {
      co_await w.vfs.write(p, fa, 0, 4 * PageCache::kPageSize);
      EXPECT_EQ(co_await w.vfs.fsync(p, fb), kOk);
      // Only the commit record was flushed; /a's pages stay dirty until
      // the writeback daemon's next pass.
      EXPECT_EQ(w.cache.total_dirty_pages(), 4u);
      EXPECT_EQ(w.cache.pages_flushed(), w.cache.params().commit_pages);
    }
  };
  w.sim.spawn(Runner::run(w, p, fa, fb));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
  // ... and the daemon does clean them before the queue drains.
  EXPECT_EQ(w.cache.total_dirty_pages(), 0u);
}

// --- flush-queue contention (the covert-channel observable) ----------------

TEST(PageCache, QueuedFsyncInflatesSecondCallersLatency)
{
  // The Sync+Sync decision primitive: a spy fsync issued while the
  // trojan's flush occupies the device takes visibly longer than the
  // same fsync on an idle device.
  auto spy_fsync_latency = [](std::size_t trojan_pages) {
    World w;
    Process& trojan = w.kernel.create_process("trojan", 0);
    Process& spy = w.kernel.create_process("spy", 0);
    EXPECT_GT(w.vfs.create_file(0, "/t"), 0);
    EXPECT_GT(w.vfs.create_file(0, "/s"), 0);
    const Fd ft = w.vfs.open(trojan, "/t", OpenMode::read_write);
    const Fd fs = w.vfs.open(spy, "/s", OpenMode::read_write);
    Duration latency = Duration::zero();
    struct Trojan {
      static sim::Proc run(World& w, Process& p, Fd fd, std::size_t pages)
      {
        if (pages == 0) co_return;
        co_await w.vfs.write(p, fd, 0, pages * PageCache::kPageSize);
        co_await w.vfs.fsync(p, fd);
      }
    };
    struct Spy {
      static sim::Proc run(World& w, Process& p, Fd fd, Duration& latency)
      {
        // Arrive just after the trojan's fsync has reserved the device.
        co_await w.kernel.sleep(p, Duration::us(5));
        co_await w.vfs.write(p, fd, 0, 1);
        const TimePoint before = w.sim.now();
        co_await w.vfs.fsync(p, fd);
        latency = w.sim.now() - before;
      }
    };
    w.sim.spawn(Trojan::run(w, trojan, ft, trojan_pages));
    w.sim.spawn(Spy::run(w, spy, fs, latency));
    EXPECT_EQ(w.sim.run().blocked_roots, 0u);
    return latency;
  };

  const Duration idle = spy_fsync_latency(0);
  const Duration contended = spy_fsync_latency(30);
  // The trojan holds the device for ~30 service periods; the spy's
  // fsync must absorb most of that queueing delay.
  EXPECT_GT(contended, idle + Duration::us(100));
}

TEST(PageCache, DeviceTimelineIsFifo)
{
  // Back-to-back reservations serialize: the device frees strictly
  // later after each flush, and never runs backwards.
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  const Fd fd = w.vfs.open(p, "/f", OpenMode::read_write);
  struct Runner {
    static sim::Proc run(World& w, Process& p, Fd fd)
    {
      TimePoint prev = w.cache.device_free_at();
      for (int i = 0; i < 3; ++i) {
        co_await w.vfs.write(p, fd, 0, 2 * PageCache::kPageSize);
        EXPECT_EQ(co_await w.vfs.fsync(p, fd), kOk);
        EXPECT_GT(w.cache.device_free_at() - prev, Duration::zero());
        EXPECT_GE(w.cache.device_free_at() - w.sim.now(),
                  -Duration::us(0.001));
        prev = w.cache.device_free_at();
      }
    }
  };
  w.sim.spawn(Runner::run(w, p, fd));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
  EXPECT_EQ(w.cache.flushes(), 3u);
}

// --- writeback daemon lifecycle --------------------------------------------

TEST(PageCache, WritebackDaemonExitsWhenCleanAndRespawns)
{
  World w;
  Process& p = w.kernel.create_process("p", 0);
  EXPECT_GT(w.vfs.create_file(0, "/f"), 0);
  const Fd fd = w.vfs.open(p, "/f", OpenMode::read_write);
  struct Runner {
    static sim::Proc run(World& w, Process& p, Fd fd)
    {
      co_await w.vfs.write(p, fd, 0, 1);
      EXPECT_TRUE(w.cache.writeback_running());
    }
  };
  // First generation: the dirtying write arms the daemon; the run only
  // drains because the daemon exits once the cache is clean.
  w.sim.spawn(Runner::run(w, p, fd));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
  EXPECT_FALSE(w.cache.writeback_running());
  EXPECT_EQ(w.cache.total_dirty_pages(), 0u);
  const std::uint64_t first_passes = w.cache.writeback_passes();
  EXPECT_GE(first_passes, 1u);

  // Second generation: a later write respawns it.
  w.sim.spawn(Runner::run(w, p, fd));
  EXPECT_EQ(w.sim.run().blocked_roots, 0u);
  EXPECT_FALSE(w.cache.writeback_running());
  EXPECT_GT(w.cache.writeback_passes(), first_passes);
}

}  // namespace
}  // namespace mes::os

// --- storage-channel campaign determinism ----------------------------------

namespace mes {
namespace {

// Both storage mechanisms crossed with every storage scenario layer.
exec::ExperimentPlan storage_plan()
{
  exec::ExperimentPlan plan;
  plan.mechanisms = {Mechanism::sync_contention, Mechanism::write_sync};
  plan.scenarios = {exec::named_scenario("disk-pressure"),
                    exec::named_scenario("journal-contention"),
                    exec::named_scenario("writeback-storm")};
  plan.repeats = 2;
  plan.seed_base = 0x57042A6E;
  plan.payload_bits = 128;
  return plan;
}

TEST(StorageCampaign, ByteIdenticalAcrossJobCounts)
{
  // The determinism contract extends to the storage channels: the
  // device RNG and writeback timing must be independent of worker
  // interleaving, so --jobs 1 and --jobs 4 emit identical bytes.
  const exec::ExperimentPlan plan = storage_plan();
  std::ostringstream serial_csv, parallel_csv, serial_json, parallel_json;
  exec::write_csv(serial_csv, exec::CampaignRunner{1}.run(plan));
  exec::write_csv(parallel_csv, exec::CampaignRunner{4}.run(plan));
  exec::write_json(serial_json, exec::CampaignRunner{1}.run(plan));
  exec::write_json(parallel_json, exec::CampaignRunner{4}.run(plan));
  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

TEST(StorageCampaign, ChannelsDeliverOnStorageScenarios)
{
  // Every (mechanism, storage scenario) cell must come up and decode
  // with a usable error rate — no silent setup failures.
  const exec::CampaignResult result =
      exec::CampaignRunner{4}.run(storage_plan());
  ASSERT_FALSE(result.cells.empty());
  for (const exec::CellResult& c : result.cells) {
    EXPECT_TRUE(c.report.ok) << c.cell.label << ": "
                             << c.report.failure_reason;
    EXPECT_LT(c.report.ber, 0.2) << c.cell.label;
  }
}

}  // namespace
}  // namespace mes
