// Cross-sandbox exfiltration (§V.C.2).
//
// The Trojan runs inside a sandbox (Firejail / Sandboxie) whose policy
// blocks it from writing anywhere the outside can read — but the MESM
// kernel objects still span the boundary. This example surveys every
// mechanism in the cross-sandbox scenario through the public façade
// (one SessionSpec per mechanism, same code path), picks the fastest
// one that clears 1% BER, and exfiltrates an access token through a
// byte-stream Session with the §V.B retry protocol.
#include <cstdio>
#include <vector>

#include "api/session.h"
#include "util/rng.h"
#include "util/table.h"

int main()
{
  using namespace mes;

  const std::string token = "AKIA-MES-5EC2ET";

  const std::vector<Mechanism> mechanisms = {
      Mechanism::flock,     Mechanism::file_lock_ex, Mechanism::mutex,
      Mechanism::semaphore, Mechanism::event,        Mechanism::waitable_timer,
      Mechanism::posix_signal,
  };

  std::printf("Surveying mechanisms across the sandbox boundary "
              "(2048-bit probe each):\n\n");
  TextTable table({"mechanism", "class", "BER(%)", "TR(kb/s)", "status"});
  Mechanism best = Mechanism::event;
  double best_tr = 0.0;
  bool have_best = false;
  for (const Mechanism m : mechanisms) {
    api::SessionSpec spec;
    spec.stack.mechanism = m;
    spec.stack.scenario = "cross-sandbox";
    spec.stack.seed = 0x5b0c;
    api::Session session = api::Session::open(spec);
    Rng rng{spec.stack.seed};
    const ChannelReport rep = session.transfer(BitVec::random(rng, 2048));
    if (!rep.ok) {
      table.add_row({to_string(m), to_string(class_of(m)), "-", "-",
                     rep.failure_reason});
      continue;
    }
    table.add_row({to_string(m), to_string(class_of(m)),
                   TextTable::num(rep.ber_percent(), 3),
                   TextTable::num(rep.throughput_kbps(), 3),
                   rep.ber < 0.01 ? "usable" : "too noisy"});
    if (rep.ber < 0.01 && rep.throughput_bps > best_tr) {
      best = m;
      best_tr = rep.throughput_bps;
      have_best = true;
    }
  }
  table.print();
  if (!have_best) {
    std::printf("\nno usable channel found\n");
    return 1;
  }

  std::printf("\nSelected %s; exfiltrating %zu-bit token...\n",
              to_string(best), token.size() * 8);
  api::SessionSpec spec;
  spec.stack.mechanism = best;
  spec.stack.scenario = "cross-sandbox";
  spec.stack.seed = 0x70c3;
  spec.max_rounds = 8;  // §V.B: retry until the preamble verifies
  api::Session session = api::Session::open(spec);
  if (!session.send_text(token)) {
    std::printf("exfiltration failed\n");
    return 1;
  }
  const ChannelReport& rep = session.last_report();
  std::printf("received outside the sandbox: \"%s\"  (BER %.3f%%, %zu "
              "round%s)\n",
              rep.ber == 0.0 ? session.recv_text().c_str() : "<bit errors>",
              rep.ber_percent(), session.stats().rounds,
              session.stats().rounds == 1 ? "" : "s");
  return 0;
}
