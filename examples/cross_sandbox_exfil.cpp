// Cross-sandbox exfiltration (§V.C.2).
//
// The Trojan runs inside a sandbox (Firejail / Sandboxie) whose policy
// blocks it from writing anywhere the outside can read — but the MESM
// kernel objects still span the boundary. This example surveys every
// mechanism in the cross-sandbox scenario, picks the fastest one that
// clears 1% BER, and exfiltrates an access token through it.
#include <cstdio>
#include <vector>

#include "core/runner.h"
#include "util/rng.h"
#include "util/table.h"

int main()
{
  using namespace mes;

  const std::string token = "AKIA-MES-5EC2ET";
  const BitVec payload = BitVec::from_text(token);

  const std::vector<Mechanism> mechanisms = {
      Mechanism::flock,     Mechanism::file_lock_ex, Mechanism::mutex,
      Mechanism::semaphore, Mechanism::event,        Mechanism::waitable_timer,
      Mechanism::posix_signal,
  };

  std::printf("Surveying mechanisms across the sandbox boundary "
              "(2048-bit probe each):\n\n");
  TextTable table({"mechanism", "class", "BER(%)", "TR(kb/s)", "status"});
  Mechanism best = Mechanism::event;
  double best_tr = 0.0;
  bool have_best = false;
  for (const Mechanism m : mechanisms) {
    ExperimentConfig cfg;
    cfg.mechanism = m;
    cfg.scenario = Scenario::cross_sandbox;
    cfg.timing = paper_timeset(m, Scenario::cross_sandbox);
    cfg.seed = 0x5b0c;
    Rng rng{cfg.seed};
    const ChannelReport rep = run_transmission(cfg, BitVec::random(rng, 2048));
    if (!rep.ok) {
      table.add_row({to_string(m), to_string(class_of(m)), "-", "-",
                     rep.failure_reason});
      continue;
    }
    table.add_row({to_string(m), to_string(class_of(m)),
                   TextTable::num(rep.ber_percent(), 3),
                   TextTable::num(rep.throughput_kbps(), 3),
                   rep.ber < 0.01 ? "usable" : "too noisy"});
    if (rep.ber < 0.01 && rep.throughput_bps > best_tr) {
      best = m;
      best_tr = rep.throughput_bps;
      have_best = true;
    }
  }
  table.print();
  if (!have_best) {
    std::printf("\nno usable channel found\n");
    return 1;
  }

  std::printf("\nSelected %s; exfiltrating %zu-bit token...\n",
              to_string(best), payload.size());
  ExperimentConfig cfg;
  cfg.mechanism = best;
  cfg.scenario = Scenario::cross_sandbox;
  cfg.timing = paper_timeset(best, Scenario::cross_sandbox);
  cfg.seed = 0x70c3;
  const RoundedReport rounded = run_with_retries(cfg, payload);
  if (!rounded.report.ok || !rounded.report.sync_ok) {
    std::printf("exfiltration failed\n");
    return 1;
  }
  std::printf("received outside the sandbox: \"%s\"  (BER %.3f%%, %zu "
              "round%s)\n",
              rounded.report.ber == 0.0
                  ? rounded.report.received_payload.to_text().c_str()
                  : "<bit errors>",
              rounded.report.ber_percent(), rounded.rounds_attempted,
              rounded.rounds_attempted == 1 ? "" : "s");
  return 0;
}
