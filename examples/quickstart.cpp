// Quickstart: leak a short message through two MES covert channels.
//
// Demonstrates the public API (mes::api): describe the channel as a
// layered SessionSpec, open a Session, and move bytes with send()/
// recv() — the same interface whether the spec selects a raw
// fixed-rate round, ARQ, the adaptive stack or a bonded multi-pair
// link.
#include <cstdio>
#include <string>

#include "api/session.h"

int main()
{
  using namespace mes;

  const std::string secret = "MES!";

  // Cooperation channel: Event, the paper's fastest (Table IV).
  api::SessionSpec event_spec;
  event_spec.stack.mechanism = Mechanism::event;
  event_spec.stack.scenario = "local";
  event_spec.stack.seed = 2027;

  api::Session event_session = api::Session::open(event_spec);
  const bool event_ok = event_session.send_text(secret);
  const ChannelReport& event_rep = event_session.last_report();
  std::printf("Event channel   : ok=%d sync=%d  BER=%.3f%%  TR=%.3f kb/s\n",
              event_rep.ok, event_rep.sync_ok, event_rep.ber_percent(),
              event_rep.throughput_kbps());
  std::printf("  sent    : \"%s\"\n", secret.c_str());
  // A raw fixed-mode round delivers whatever the Spy measured — decode
  // text only when it arrived clean (the ARQ stream below never needs
  // this guard).
  std::printf("  received: \"%s\"\n",
              event_rep.ber == 0.0 ? event_session.recv_text().c_str()
                                   : "<bit errors>");

  // Contention channel: flock, the Linux mechanism (Protocol 1) — same
  // API, different spec.
  api::SessionSpec flock_spec;
  flock_spec.stack.mechanism = Mechanism::flock;
  flock_spec.stack.scenario = "local";
  flock_spec.stack.seed = 2028;

  api::Session flock_session = api::Session::open(flock_spec);
  const bool flock_ok = flock_session.send_text(secret);
  const ChannelReport& flock_rep = flock_session.last_report();
  std::printf("flock channel   : ok=%d sync=%d  BER=%.3f%%  TR=%.3f kb/s\n",
              flock_rep.ok, flock_rep.sync_ok, flock_rep.ber_percent(),
              flock_rep.throughput_kbps());
  std::printf("  sent    : \"%s\"\n", secret.c_str());
  std::printf("  received: \"%s\"\n",
              flock_rep.ber == 0.0 ? flock_session.recv_text().c_str()
                                   : "<bit errors>");

  // The byte stream composes: further sends ride the same session on
  // fresh, collision-free noise realizations, and switching the spec
  // to ARQ makes the stream reliable — every send reassembles
  // bit-exactly at the Spy, whatever the noise draws.
  api::SessionSpec arq_spec = event_spec;
  arq_spec.protocol = ProtocolMode::arq;
  api::Session arq_session = api::Session::open(arq_spec);
  bool arq_ok = arq_session.send_text("MES! ");
  arq_ok = arq_session.send_text("and more") && arq_ok;
  const std::string stream = arq_session.recv_text();
  arq_ok = arq_ok && stream == "MES! and more";
  std::printf("ARQ stream over the same Event stack: \"%s\" "
              "(%zu/%zu transfers delivered, %.3f kb/s goodput)\n",
              stream.c_str(), arq_session.stats().delivered,
              arq_session.stats().transfers,
              arq_session.stats().goodput_bps / 1000.0);

  return (event_ok && flock_ok && arq_ok) ? 0 : 1;
}
