// Quickstart: leak a short message through two MES covert channels.
//
// Demonstrates the one-call API: pick a mechanism, a scenario and the
// paper's time parameters, hand the runner a payload, read back BER/TR.
#include <cstdio>
#include <string>

#include "core/runner.h"

int main()
{
  using namespace mes;

  const std::string secret = "MES!";
  const BitVec payload = BitVec::from_text(secret);

  // Cooperation channel: Event, the paper's fastest (Table IV).
  ExperimentConfig event_cfg;
  event_cfg.mechanism = Mechanism::event;
  event_cfg.scenario = Scenario::local;
  event_cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  event_cfg.seed = 2027;

  const ChannelReport event_rep = run_transmission(event_cfg, payload);
  std::printf("Event channel   : ok=%d sync=%d  BER=%.3f%%  TR=%.3f kb/s\n",
              event_rep.ok, event_rep.sync_ok, event_rep.ber_percent(),
              event_rep.throughput_kbps());
  std::printf("  sent    : %s\n", payload.to_string().c_str());
  std::printf("  received: %s\n",
              event_rep.received_payload.to_string().c_str());
  if (event_rep.sync_ok && event_rep.ber == 0.0) {
    std::printf("  decoded : \"%s\"\n",
                event_rep.received_payload.to_text().c_str());
  }

  // Contention channel: flock, the Linux mechanism (Protocol 1).
  ExperimentConfig flock_cfg;
  flock_cfg.mechanism = Mechanism::flock;
  flock_cfg.scenario = Scenario::local;
  flock_cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  flock_cfg.seed = 2028;

  const ChannelReport flock_rep = run_transmission(flock_cfg, payload);
  std::printf("flock channel   : ok=%d sync=%d  BER=%.3f%%  TR=%.3f kb/s\n",
              flock_rep.ok, flock_rep.sync_ok, flock_rep.ber_percent(),
              flock_rep.throughput_kbps());
  std::printf("  sent    : %s\n", payload.to_string().c_str());
  std::printf("  received: %s\n",
              flock_rep.received_payload.to_string().c_str());
  if (flock_rep.sync_ok && flock_rep.ber == 0.0) {
    std::printf("  decoded : \"%s\"\n",
                flock_rep.received_payload.to_text().c_str());
  }
  return (event_rep.ok && flock_rep.ok) ? 0 : 1;
}
