// Cross-VM exfiltration (§V.C.3 / Table VI).
//
// Two guests on one hypervisor. Named kernel objects are session-private
// and never resolve across the boundary — only a lock on a file both
// guests can see survives, and only when the hypervisor (type-1, like
// Hyper-V or KVM with a shared mount) actually shares a volume. This
// example demonstrates the visibility rules through the public façade —
// the same Session interface either works or reports the topology
// verdict — and then leaks a message through FileLockEX on the shared
// read-only volume.
#include <cstdio>
#include <vector>

#include "api/session.h"
#include "util/rng.h"

namespace {

void survey(mes::HypervisorType hypervisor)
{
  using namespace mes;
  std::printf("\n-- hypervisor: %s --\n", to_string(hypervisor));
  for (const Mechanism m :
       {Mechanism::event, Mechanism::mutex, Mechanism::semaphore,
        Mechanism::waitable_timer, Mechanism::flock,
        Mechanism::file_lock_ex}) {
    api::SessionSpec spec;
    spec.stack.mechanism = m;
    spec.stack.scenario = "cross-VM";
    spec.stack.hypervisor = hypervisor;
    spec.stack.seed = 0xcc77;
    api::Session session = api::Session::open(spec);
    Rng rng{1};
    const ChannelReport rep = session.transfer(BitVec::random(rng, 64));
    std::printf("  %-11s : %s\n", to_string(m),
                rep.ok ? "WORKS" : rep.failure_reason.c_str());
  }
}

}  // namespace

int main()
{
  using namespace mes;

  std::printf("Mechanism visibility across the VM boundary:\n");
  survey(HypervisorType::type1);
  survey(HypervisorType::type2);

  const std::string secret = "vm-escape:ok";
  std::printf("\nLeaking \"%s\" from guest 1 to guest 2 over FileLockEX "
              "(type-1 hypervisor)...\n",
              secret.c_str());

  api::SessionSpec spec;
  spec.stack.mechanism = Mechanism::file_lock_ex;
  spec.stack.scenario = "cross-VM";
  spec.stack.hypervisor = HypervisorType::type1;
  spec.stack.seed = 0x5ed1;
  spec.max_rounds = 8;  // §V.B retry protocol
  api::Session session = api::Session::open(spec);
  session.send_text(secret);
  const ChannelReport& rep = session.last_report();
  if (!rep.ok) {
    std::printf("failed: %s\n", rep.failure_reason.c_str());
    return 1;
  }
  std::printf("guest 2 received: \"%s\"  BER=%.3f%%  TR=%.3f kb/s "
              "(paper: 0.713%%, 6.552 kb/s)\n",
              rep.ber == 0.0 ? session.recv_text().c_str() : "<bit errors>",
              rep.ber_percent(), rep.throughput_kbps());
  return 0;
}
