// Cross-VM exfiltration (§V.C.3 / Table VI).
//
// Two guests on one hypervisor. Named kernel objects are session-private
// and never resolve across the boundary — only a lock on a file both
// guests can see survives, and only when the hypervisor (type-1, like
// Hyper-V or KVM with a shared mount) actually shares a volume. This
// example demonstrates the visibility rules and then leaks a message
// through FileLockEX on the shared read-only volume.
#include <cstdio>
#include <vector>

#include "core/runner.h"
#include "util/rng.h"

namespace {

void survey(mes::HypervisorType hypervisor)
{
  using namespace mes;
  std::printf("\n-- hypervisor: %s --\n", to_string(hypervisor));
  for (const Mechanism m :
       {Mechanism::event, Mechanism::mutex, Mechanism::semaphore,
        Mechanism::waitable_timer, Mechanism::flock,
        Mechanism::file_lock_ex}) {
    ExperimentConfig cfg;
    cfg.mechanism = m;
    cfg.scenario = Scenario::cross_vm;
    cfg.hypervisor = hypervisor;
    cfg.timing = paper_timeset(m, Scenario::cross_vm);
    cfg.seed = 0xcc77;
    Rng rng{1};
    const ChannelReport rep = run_transmission(cfg, BitVec::random(rng, 64));
    std::printf("  %-11s : %s\n", to_string(m),
                rep.ok ? "WORKS" : rep.failure_reason.c_str());
  }
}

}  // namespace

int main()
{
  using namespace mes;

  std::printf("Mechanism visibility across the VM boundary:\n");
  survey(HypervisorType::type1);
  survey(HypervisorType::type2);

  const std::string secret = "vm-escape:ok";
  const BitVec payload = BitVec::from_text(secret);
  std::printf("\nLeaking \"%s\" from guest 1 to guest 2 over FileLockEX "
              "(type-1 hypervisor)...\n",
              secret.c_str());

  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::file_lock_ex;
  cfg.scenario = Scenario::cross_vm;
  cfg.hypervisor = HypervisorType::type1;
  cfg.timing = paper_timeset(Mechanism::file_lock_ex, Scenario::cross_vm);
  cfg.seed = 0x5ed1;
  const RoundedReport rounded = run_with_retries(cfg, payload);
  if (!rounded.report.ok) {
    std::printf("failed: %s\n", rounded.report.failure_reason.c_str());
    return 1;
  }
  std::printf("guest 2 received: \"%s\"  BER=%.3f%%  TR=%.3f kb/s "
              "(paper: 0.713%%, 6.552 kb/s)\n",
              rounded.report.ber == 0.0
                  ? rounded.report.received_payload.to_text().c_str()
                  : "<bit errors>",
              rounded.report.ber_percent(),
              rounded.report.throughput_kbps());
  return 0;
}
