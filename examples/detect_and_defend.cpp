// The defender's workflow (§VIII): detect a running MES channel from
// kernel traces, then neutralize it with MESM timing fuzz — and see what
// that fuzz would cost legitimate lock users. The neutralization
// verdict comes from the attacker's own calibration (proto/calibrate):
// a channel is dead when no rate on the grid yields separable levels,
// not when some hand-picked BER cutoff trips — because the modern
// attacker is adaptive and will retreat down the rate grid first.
#include <cstdio>

#include "core/runner.h"
#include "detect/detector.h"
#include "proto/adaptive.h"
#include "proto/calibrate.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

mes::ChannelReport run_channel(mes::Duration fuzz, mes::TraceOut* trace)
{
  using namespace mes;
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::event;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
  cfg.mitigation_fuzz = fuzz;
  cfg.enable_trace = trace != nullptr;
  cfg.seed = 0xdef;
  Rng rng{0xdef};
  return run_transmission(cfg, BitVec::random(rng, 4096), trace);
}

}  // namespace

int main()
{
  using namespace mes;

  // Step 1: something is beaconing; the host records MESM ops.
  TraceOut trace;
  const ChannelReport before = run_channel(Duration::zero(), &trace);
  std::printf("suspicious workload: BER=%.3f%%, TR=%.3f kb/s (a healthy "
              "covert channel)\n",
              before.ber_percent(), before.throughput_kbps());

  // Step 2: the detector scores per-object op streams.
  const detect::Detector detector;
  const auto findings = detector.analyze(trace.ops);
  std::printf("\ndetector findings over %zu kernel ops:\n", trace.ops.size());
  for (const auto& finding : findings) {
    std::printf("  %s\n", detect::to_string(finding).c_str());
  }
  if (!detector.channel_detected(trace.ops)) {
    std::printf("  (nothing flagged — unexpected)\n");
    return 1;
  }

  // Step 3: respond with MESM timing fuzz. The verdict per amplitude is
  // what the *adaptive* attacker can still do: calibrate the link under
  // the fuzz and deliver via ARQ, retreating down the rate grid until
  // no rate has separable levels.
  std::printf("\napplying per-op timing fuzz:\n");
  TextTable table({"fuzz (us)", "fixed BER(%)", "fixed TR(kb/s)",
                   "adapt rate", "adapt TR(kb/s)", "verdict"});
  Rng payload_rng{0xDEF2};
  const BitVec payload = BitVec::random(payload_rng, 1024);
  for (const double fuzz : {0.0, 40.0, 120.0, 250.0}) {
    const ChannelReport rep = run_channel(Duration::us(fuzz), nullptr);

    ExperimentConfig cfg;
    cfg.mechanism = Mechanism::event;
    cfg.scenario = Scenario::local;
    cfg.timing = paper_timeset(Mechanism::event, Scenario::local);
    cfg.mitigation_fuzz = Duration::us(fuzz);
    cfg.seed = 0xDEF3;
    proto::Calibration cal;
    const ChannelReport adapted =
        proto::run_adaptive_transmission(cfg, payload, {}, &cal);
    const bool survives = adapted.ok && adapted.sync_ok;

    table.add_row({TextTable::num(fuzz, 0),
                   TextTable::num(rep.ber_percent(), 2),
                   TextTable::num(rep.throughput_kbps(), 2),
                   survives ? "x" + TextTable::num(cal.scale, 2) : "-",
                   survives ? TextTable::num(adapted.throughput_kbps(), 2)
                            : "-",
                   !survives          ? "channel neutralized"
                   : cal.scale > 1.0  ? "slowed, still delivering"
                                      : "alive"});
  }
  table.print();

  std::printf("\ncost to a legitimate lock user: each MESM call gains up "
              "to the fuzz\namplitude in latency — ~125 us mean at 250 us "
              "fuzz — which is why the\npaper calls the closed-resource "
              "channels \"difficult to isolate\" (§VIII). And an adaptive\n"
              "sender keeps delivering (slower) until the fuzz exhausts "
              "the whole rate\ngrid, so the defender pays that latency on "
              "every lock in the system.\n");
  return 0;
}
