// Local key exfiltration — the paper's headline threat (§III).
//
// A Trojan process has collected a 128-bit key inside a restricted
// environment and cannot write to any shared resource. It leaks the key
// through the flock channel: read-only shared file, mutual exclusion
// timing, round protocol with a synchronization preamble. The defender's
// view (the kernel op trace and the detector verdict) prints last.
#include <cstdio>
#include <string>

#include "core/runner.h"
#include "detect/detector.h"
#include "util/rng.h"

namespace {

std::string hex_of(const mes::BitVec& bits)
{
  std::string out;
  const auto bytes = bits.to_bytes();
  for (const auto byte : bytes) {
    char buf[4];
    std::snprintf(buf, sizeof buf, "%02x", byte);
    out += buf;
  }
  return out;
}

}  // namespace

int main()
{
  using namespace mes;

  Rng key_rng{0x5ec2e7};
  const BitVec key = BitVec::random(key_rng, 128);
  std::printf("Trojan-side secret key : %s\n", hex_of(key).c_str());

  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::flock;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::flock, Scenario::local);
  cfg.enable_trace = true;
  cfg.seed = 0x1eaf;

  TraceOut trace;
  // One framed round; §V.B's retry loop kicks in if the preamble fails,
  // salting retry seeds through the splitmix64 mixer. The trace carries
  // the defender's view of the round that delivered.
  const RoundedReport rounded = run_with_retries(cfg, key, 8, &trace);
  const ChannelReport& rep = rounded.report;
  if (!rep.ok) {
    std::printf("transmission failed: %s\n", rep.failure_reason.c_str());
    return 1;
  }

  std::printf("Spy-side received key  : %s\n",
              hex_of(rep.received_payload).c_str());
  std::printf("rounds=%zu  preamble=%s  BER=%.3f%%  TR=%.3f kb/s  "
              "elapsed=%s\n",
              rounded.rounds_attempted, rep.sync_ok ? "verified" : "FAILED",
              rep.ber_percent(), rep.throughput_kbps(),
              to_string(rep.elapsed).c_str());
  std::printf("key recovered %s\n",
              key == rep.received_payload ? "EXACTLY" : "with errors");

  // The defender's view of the same run.
  const detect::Detector detector;
  const auto findings = detector.analyze(trace.ops);
  std::printf("\nDefender's kernel-trace analysis (%zu ops recorded):\n",
              trace.ops.size());
  for (const auto& finding : findings) {
    std::printf("  %s\n", detect::to_string(finding).c_str());
  }
  return 0;
}
