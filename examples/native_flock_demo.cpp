// Real covert channel between two *forked processes* over flock(2).
//
// Everything else in examples/ runs on the simulator; this one performs
// the attack on the host: the parent forks a Spy process, both open the
// same world-readable lock file, and a short message crosses the process
// boundary purely through lock-acquisition timing. No pipe, no socket,
// no shared writable memory — the file is opened read-only by both.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "codec/frame.h"
#include "native/flock_channel.h"
#include "native/native_common.h"

int main()
{
  using namespace mes;
  using namespace mes::native;

  const std::string message = "MES";
  const BitVec payload = BitVec::from_text(message);
  const std::size_t sync_bits = 8;
  const codec::Frame frame = codec::make_frame(payload, sync_bits);
  const NativeTiming timing;  // container-lenient defaults

  const std::string path = "/tmp/mes_demo_" + std::to_string(::getpid()) +
                           ".lock";
  const int create_fd = ::open(path.c_str(), O_CREAT | O_RDONLY, 0444);
  if (create_fd < 0) {
    std::perror("create lock file");
    return 1;
  }
  ::close(create_fd);

  std::printf("parent (Trojan) pid %d: sending \"%s\" (%zu bits + %zu sync) "
              "over %s\n",
              ::getpid(), message.c_str(), payload.size(), sync_bits,
              path.c_str());

  int status_pipe[2];  // result travels back only for printing
  if (::pipe(status_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }

  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }

  if (child == 0) {
    // --- Spy process -----------------------------------------------------
    ::close(status_pipe[0]);
    std::string error;
    const double threshold_us =
        std::chrono::duration<double, std::micro>(timing.t0 + timing.t1)
            .count() /
        2.0;
    const auto latencies = flock_receive(path, frame.bits.size(), timing,
                                         threshold_us, &error);
    std::string line;
    if (!latencies) {
      line = "ERROR " + error;
    } else {
      const NativeReport rep =
          score_reception(payload, sync_bits, *latencies, threshold_us,
                          std::chrono::seconds{1});
      line = "OK sync=" + std::to_string(rep.sync_ok) +
             " ber=" + std::to_string(rep.ber) + " text=" +
             (rep.ber == 0.0 ? rep.received_payload.to_text() : "<errors>");
    }
    const ssize_t written =
        ::write(status_pipe[1], line.c_str(), line.size());
    (void)written;
    ::close(status_pipe[1]);
    ::_exit(0);
  }

  // --- Trojan process ----------------------------------------------------
  ::close(status_pipe[1]);
  ::usleep(50'000);  // let the Spy arm its first probe
  const std::string tx_error = flock_send(path, frame.bits, timing);
  if (!tx_error.empty()) {
    std::printf("send failed: %s\n", tx_error.c_str());
  }

  char buffer[256] = {};
  const ssize_t n = ::read(status_pipe[0], buffer, sizeof buffer - 1);
  ::close(status_pipe[0]);
  int wstatus = 0;
  ::waitpid(child, &wstatus, 0);
  ::unlink(path.c_str());

  std::printf("spy (child) reported: %s\n",
              n > 0 ? buffer : "<no report>");
  const bool ok = n > 0 && std::strstr(buffer, "OK") != nullptr &&
                  std::strstr(buffer, message.c_str()) != nullptr;
  std::printf("cross-process covert transfer %s\n",
              ok ? "SUCCEEDED" : "had errors (scheduler noise; rerun)");
  return ok ? 0 : 1;
}
