// Channel-capacity tuning with multi-bit symbols (§VI).
//
// An attacker tuning for throughput sweeps the symbol width and level
// spacing, watching the BER/TR trade-off: wider alphabets pack more bits
// per rendezvous but squeeze the decision margins and stretch the high
// symbols. The paper's finding — 2-bit symbols beat 1-bit, 3-bit stops
// paying — emerges from the sweep.
#include <cstdio>

#include "api/session.h"
#include "util/rng.h"
#include "util/table.h"

int main()
{
  using namespace mes;

  std::printf("Event channel, local scenario, tw0 = 15 us, 20k-bit "
              "payloads.\n\n");
  TextTable table({"width", "interval(us)", "levels(us)", "BER(%)",
                   "TR(kb/s)", "effective kb/s (x(1-BER))"});

  double best_goodput = 0.0;
  std::size_t best_width = 1;
  double best_interval = 0.0;

  for (const std::size_t width : {1u, 2u, 3u}) {
    for (const double interval : {40.0, 50.0, 65.0}) {
      api::SessionSpec spec;
      spec.stack.mechanism = Mechanism::event;
      spec.stack.scenario = "local";
      spec.stack.seed =
          0x7u + width * 131 + static_cast<std::uint64_t>(interval);
      TimingConfig timing;
      timing.t0 = Duration::us(15);
      timing.interval = Duration::us(interval);
      spec.link.timing = timing;
      spec.link.symbol_bits = width;
      spec.link.sync_bits = width * 8;
      api::Session session = api::Session::open(spec);
      Rng rng{spec.stack.seed};
      const std::size_t bits = 20000 - 20000 % width;
      const ChannelReport rep =
          session.transfer(BitVec::random(rng, bits));
      if (!rep.ok) continue;

      char levels[64];
      const std::size_t alphabet = std::size_t{1} << width;
      std::snprintf(levels, sizeof levels, "15..%.0f (%zu)",
                    15.0 + interval * static_cast<double>(alphabet - 1),
                    alphabet);
      const double goodput = rep.throughput_bps * (1.0 - rep.ber);
      table.add_row({std::to_string(width) + "-bit",
                     TextTable::num(interval, 0), levels,
                     TextTable::num(rep.ber_percent(), 3),
                     TextTable::num(rep.throughput_kbps(), 3),
                     TextTable::num(goodput / 1000.0, 3)});
      if (rep.ber < 0.02 && goodput > best_goodput) {
        best_goodput = goodput;
        best_width = width;
        best_interval = interval;
      }
    }
  }
  table.print();
  std::printf("\nBest sub-2%%-BER configuration: %zu-bit symbols at "
              "interval %.0f us -> %.3f kb/s goodput.\n",
              best_width, best_interval, best_goodput / 1000.0);
  std::printf("Paper: 2-bit at 50 us spacing peaks (~15.1 kb/s vs 13.1); "
              "3-bit adds nothing (§VI).\n");
  return 0;
}
