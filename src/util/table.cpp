#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mes {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header))
{
  if (header_.empty()) throw std::invalid_argument{"TextTable: empty header"};
}

void TextTable::add_row(std::vector<std::string> row)
{
  if (row.size() != header_.size()) {
    throw std::invalid_argument{"TextTable: row width mismatch"};
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const
{
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_line(header_) + sep;
  for (const auto& row : rows_) out += render_line(row);
  out += sep;
  return out;
}

void TextTable::print(std::FILE* out) const
{
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string TextTable::num(double v, int decimals)
{
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::percent(double fraction, int decimals)
{
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TextTable::kbps(double bits_per_sec, int decimals)
{
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f kb/s", decimals, bits_per_sec / 1000.0);
  return buf;
}

std::string render_series(const std::string& title, const std::vector<double>& xs,
                          const std::vector<double>& ys, int decimals)
{
  if (xs.size() != ys.size()) {
    throw std::invalid_argument{"render_series: size mismatch"};
  }
  std::string out = title + "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "  %10.3f -> %.*f\n", xs[i], decimals, ys[i]);
    out += buf;
  }
  return out;
}

}  // namespace mes
