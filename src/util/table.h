// ASCII table renderer for the benchmark harness.
//
// Every bench binary prints its reproduction of a paper table/figure as a
// plain text table so that `for b in build/bench/*; do $b; done` yields a
// readable transcript that can be diffed against EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mes {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string render() const;
  void print(std::FILE* out = stdout) const;

  // Formatting helpers used throughout bench/ so numbers align with the
  // precision the paper reports.
  static std::string num(double v, int decimals = 3);
  static std::string percent(double fraction, int decimals = 3);
  static std::string kbps(double bits_per_sec, int decimals = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a single series as a compact "x -> y" listing (figures).
std::string render_series(const std::string& title,
                          const std::vector<double>& xs,
                          const std::vector<double>& ys, int decimals = 3);

}  // namespace mes
