// Small statistics toolkit used by metrics, the detector and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace mes {

// Single-pass accumulator (Welford) for mean/variance plus extremes.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile over a stored sample (linear interpolation between ranks).
double percentile(std::vector<double> values, double p);

// Fixed-width histogram over [lo, hi); out-of-range values (infinities
// included) clamp to the edge bins so nothing is silently lost, and NaN
// samples are dropped but counted in dropped().
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  // NaN samples rejected by add() (they have no orderable bin).
  std::size_t dropped() const { return dropped_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  // Index of the most populated bin.
  std::size_t mode_bin() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

// Symbol-level confusion matrix: counts[sent][decoded].
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t symbols);
  void add(std::size_t sent, std::size_t decoded);
  std::size_t at(std::size_t sent, std::size_t decoded) const;
  std::size_t symbols() const { return symbols_; }
  std::size_t total() const { return total_; }
  std::size_t errors() const;
  double error_rate() const;

 private:
  std::size_t symbols_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// 1-D two-means clustering (k=2), returned as (low-center, high-center,
// separation score in [0,1]). The detector uses the separation score to
// spot the bimodal inter-release intervals a covert channel produces.
struct TwoMeans {
  double low = 0.0;
  double high = 0.0;
  double separation = 0.0;  // (high-low) / (high+low+eps), 0 when degenerate
  std::size_t low_count = 0;
  std::size_t high_count = 0;
  // Coefficient of variation inside each cluster. A covert channel's
  // inter-release intervals form two *tight* modes (one per symbol);
  // benign lock traffic with think-time jitter spreads much wider.
  double low_cv = 0.0;
  double high_cv = 0.0;
};
TwoMeans two_means_cluster(const std::vector<double>& values,
                           int max_iters = 32);

}  // namespace mes
