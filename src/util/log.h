// Minimal leveled logger.
//
// The library is silent by default (level = warn); experiments and
// examples raise the level for narrative output. No global mutable state
// beyond one atomic level, so it is safe from any simulated "process".
#pragma once

#include <cstdarg>
#include <string>

namespace mes {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define MES_LOG_DEBUG(...) ::mes::log_message(::mes::LogLevel::debug, __VA_ARGS__)
#define MES_LOG_INFO(...) ::mes::log_message(::mes::LogLevel::info, __VA_ARGS__)
#define MES_LOG_WARN(...) ::mes::log_message(::mes::LogLevel::warn, __VA_ARGS__)
#define MES_LOG_ERROR(...) ::mes::log_message(::mes::LogLevel::error, __VA_ARGS__)

}  // namespace mes
