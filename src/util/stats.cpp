#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mes {

void RunningStats::add(double x)
{
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const
{
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p)
{
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0)
{
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument{"Histogram: need bins > 0 and hi > lo"};
  }
}

void Histogram::add(double x)
{
  // Guard before the float->integer cast: for NaN, or for values whose
  // scaled bin index exceeds the integer's range, that cast is
  // undefined behavior — NaN samples are dropped (and counted), and
  // out-of-range values (inf included) route to the edge bins.
  if (std::isnan(x)) {
    ++dropped_;
    return;
  }
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++counts_.back();
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  // x just below hi_ can still round up to counts_.size().
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_low(std::size_t i) const
{
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::size_t Histogram::mode_bin() const
{
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

ConfusionMatrix::ConfusionMatrix(std::size_t symbols)
    : symbols_{symbols}, counts_(symbols * symbols, 0)
{
  if (symbols == 0) throw std::invalid_argument{"ConfusionMatrix: symbols == 0"};
}

void ConfusionMatrix::add(std::size_t sent, std::size_t decoded)
{
  if (sent >= symbols_ || decoded >= symbols_) {
    throw std::out_of_range{"ConfusionMatrix::add"};
  }
  ++counts_[sent * symbols_ + decoded];
  ++total_;
}

std::size_t ConfusionMatrix::at(std::size_t sent, std::size_t decoded) const
{
  if (sent >= symbols_ || decoded >= symbols_) {
    throw std::out_of_range{"ConfusionMatrix::at"};
  }
  return counts_[sent * symbols_ + decoded];
}

std::size_t ConfusionMatrix::errors() const
{
  std::size_t diag = 0;
  for (std::size_t i = 0; i < symbols_; ++i) diag += at(i, i);
  return total_ - diag;
}

double ConfusionMatrix::error_rate() const
{
  return total_ ? static_cast<double>(errors()) / static_cast<double>(total_)
                : 0.0;
}

TwoMeans two_means_cluster(const std::vector<double>& values, int max_iters)
{
  TwoMeans result;
  if (values.size() < 2) return result;
  auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  double lo = *mn;
  double hi = *mx;
  if (lo == hi) {
    result.low = result.high = lo;
    result.low_count = values.size();
    return result;
  }
  for (int iter = 0; iter < max_iters; ++iter) {
    const double mid = (lo + hi) / 2.0;
    double sum_lo = 0.0;
    double sum_hi = 0.0;
    std::size_t n_lo = 0;
    std::size_t n_hi = 0;
    for (double v : values) {
      if (v <= mid) {
        sum_lo += v;
        ++n_lo;
      } else {
        sum_hi += v;
        ++n_hi;
      }
    }
    if (n_lo == 0 || n_hi == 0) break;
    const double new_lo = sum_lo / static_cast<double>(n_lo);
    const double new_hi = sum_hi / static_cast<double>(n_hi);
    const bool converged = new_lo == lo && new_hi == hi;
    lo = new_lo;
    hi = new_hi;
    result.low_count = n_lo;
    result.high_count = n_hi;
    if (converged) break;
  }
  result.low = lo;
  result.high = hi;
  const double denom = std::abs(hi) + std::abs(lo) + 1e-12;
  result.separation = (hi - lo) / denom;

  // Within-cluster dispersion around the converged centers.
  const double mid = (lo + hi) / 2.0;
  RunningStats low_stats;
  RunningStats high_stats;
  for (double v : values) {
    (v <= mid ? low_stats : high_stats).add(v);
  }
  if (low_stats.count() > 1 && std::abs(low_stats.mean()) > 1e-12) {
    result.low_cv = low_stats.stddev() / std::abs(low_stats.mean());
  }
  if (high_stats.count() > 1 && std::abs(high_stats.mean()) > 1e-12) {
    result.high_cv = high_stats.stddev() / std::abs(high_stats.mean());
  }
  return result;
}

}  // namespace mes
