#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace mes {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_name(LogLevel level)
{
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const char* fmt, ...)
{
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[mes %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mes
