// Deterministic pseudo-random generation for simulation noise.
//
// The standard library distributions are implementation-defined, which
// would make the reproduced tables differ across toolchains. Every
// distribution used by the noise model is therefore implemented here on
// top of xoshiro256++, giving bit-identical experiment outputs for a
// given seed on any conforming platform.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.h"

namespace mes {

// xoshiro256++ by Blackman & Vigna; seeded through splitmix64 so that
// consecutive integer seeds yield well-decorrelated streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1) with 53-bit resolution.
  double next_double();

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  bool bernoulli(double p);

  // Exponential with the given mean (mean <= 0 returns 0).
  double exponential(double mean);

  // Standard normal via Box-Muller (cached second variate).
  double normal(double mean, double stddev);

  // Log-normal parameterized by the *target* median and a shape sigma
  // (sigma is the stddev of the underlying normal).
  double lognormal_median(double median, double sigma);

  // Poisson counting variable; exact (Knuth) for small means, normal
  // approximation above 64 to stay O(1).
  std::uint64_t poisson(double mean);

  // Convenience wrappers producing Durations (never negative).
  Duration exponential_dur(Duration mean);
  Duration normal_dur(Duration mean, Duration stddev);
  Duration lognormal_dur(Duration median, double sigma);

  // An independent child stream; deterministic function of this stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Fills `n` random bits (used for payload generation in experiments).
std::vector<int> random_bits(Rng& rng, std::size_t n);

}  // namespace mes
