#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace mes {

namespace {

std::uint64_t splitmix64(std::uint64_t& state)
{
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k)
{
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64()
{
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double()
{
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound)
{
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean)
{
  if (mean <= 0.0) return 0.0;
  // 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

double Rng::normal(double mean, double stddev)
{
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal_median(double median, double sigma)
{
  if (median <= 0.0) return 0.0;
  return median * std::exp(normal(0.0, sigma));
}

std::uint64_t Rng::poisson(double mean)
{
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until the product drops below exp(-mean).
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }
  const double approx = normal(mean, std::sqrt(mean));
  return approx <= 0.0 ? 0 : static_cast<std::uint64_t>(approx + 0.5);
}

Duration Rng::exponential_dur(Duration mean)
{
  const double ns = exponential(static_cast<double>(mean.count_ns()));
  return Duration::ns(ns < 0.0 ? 0 : static_cast<std::int64_t>(ns));
}

Duration Rng::normal_dur(Duration mean, Duration stddev)
{
  const double ns = normal(static_cast<double>(mean.count_ns()),
                           static_cast<double>(stddev.count_ns()));
  return Duration::ns(ns < 0.0 ? 0 : static_cast<std::int64_t>(ns));
}

Duration Rng::lognormal_dur(Duration median, double sigma)
{
  const double ns =
      lognormal_median(static_cast<double>(median.count_ns()), sigma);
  return Duration::ns(ns < 0.0 ? 0 : static_cast<std::int64_t>(ns));
}

Rng Rng::fork() { return Rng{next_u64()}; }

std::vector<int> random_bits(Rng& rng, std::size_t n)
{
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return bits;
}

}  // namespace mes
