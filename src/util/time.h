// Strongly typed simulation time.
//
// All simulated clocks in mes run on integer nanoseconds. The paper's
// channels are tuned in microseconds (tens to hundreds), so nanosecond
// resolution leaves three decimal digits of headroom for the noise model
// without ever hitting floating-point comparison artefacts inside the
// event queue.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace mes {

// A span of simulated time. Negative durations are representable (they
// appear transiently in noise arithmetic) but never enter the event queue.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(double v)
  {
    return Duration{static_cast<std::int64_t>(v * 1e3)};
  }
  static constexpr Duration ms(double v)
  {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr Duration sec(double v)
  {
    return Duration{static_cast<std::int64_t>(v * 1e9)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max()
  {
    return Duration{INT64_MAX};
  }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(double k) const
  {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(double k) const
  {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }
  constexpr double operator/(Duration o) const
  {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr Duration& operator+=(Duration o)
  {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o)
  {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

// An instant on the simulated clock, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t v) { return TimePoint{v}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const
  {
    return TimePoint{ns_ + d.count_ns()};
  }
  constexpr TimePoint operator-(Duration d) const
  {
    return TimePoint{ns_ - d.count_ns()};
  }
  constexpr Duration operator-(TimePoint o) const
  {
    return Duration::ns(ns_ - o.ns_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(std::int64_t v) : ns_{v} {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v)
{
  return Duration::ns(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v)
{
  return Duration::us(static_cast<double>(v));
}
constexpr Duration operator""_us(long double v)
{
  return Duration::us(static_cast<double>(v));
}
constexpr Duration operator""_ms(unsigned long long v)
{
  return Duration::ms(static_cast<double>(v));
}
constexpr Duration operator""_sec(unsigned long long v)
{
  return Duration::sec(static_cast<double>(v));
}
}  // namespace literals

// "123.4us" style rendering for logs and reports.
std::string to_string(Duration d);
std::string to_string(TimePoint t);

}  // namespace mes
