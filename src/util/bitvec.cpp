#include "util/bitvec.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace mes {

BitVec::BitVec(std::vector<int> bits) : bits_(std::move(bits))
{
  for (auto& b : bits_) {
    if (b != 0 && b != 1) throw std::invalid_argument{"BitVec: bits must be 0/1"};
  }
}

BitVec BitVec::from_string(const std::string& s)
{
  BitVec v;
  v.bits_.reserve(s.size());
  for (char c : s) {
    if (c == '0') {
      v.bits_.push_back(0);
    } else if (c == '1') {
      v.bits_.push_back(1);
    } else {
      throw std::invalid_argument{"BitVec::from_string: expected only 0/1"};
    }
  }
  return v;
}

BitVec BitVec::from_bytes(const std::vector<std::uint8_t>& bytes)
{
  BitVec v;
  v.bits_.reserve(bytes.size() * 8);
  for (auto byte : bytes) {
    for (int i = 7; i >= 0; --i) v.bits_.push_back((byte >> i) & 1);
  }
  return v;
}

BitVec BitVec::from_text(const std::string& text)
{
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  return from_bytes(bytes);
}

BitVec BitVec::random(Rng& rng, std::size_t n)
{
  return BitVec{random_bits(rng, n)};
}

BitVec BitVec::alternating(std::size_t n)
{
  BitVec v;
  v.bits_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.bits_.push_back(i % 2 == 0 ? 1 : 0);
  return v;
}

void BitVec::append(const BitVec& other)
{
  bits_.insert(bits_.end(), other.bits_.begin(), other.bits_.end());
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const
{
  if (pos > bits_.size()) throw std::out_of_range{"BitVec::slice"};
  const std::size_t end = std::min(bits_.size(), pos + len);
  BitVec v;
  v.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(pos),
                 bits_.begin() + static_cast<std::ptrdiff_t>(end));
  return v;
}

std::size_t BitVec::count_ones() const
{
  return static_cast<std::size_t>(std::count(bits_.begin(), bits_.end(), 1));
}

std::size_t BitVec::hamming_distance(const BitVec& other) const
{
  const std::size_t common = std::min(size(), other.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < common; ++i) {
    if (bits_[i] != other.bits_[i]) ++d;
  }
  d += std::max(size(), other.size()) - common;
  return d;
}

std::string BitVec::to_string() const
{
  std::string s;
  s.reserve(bits_.size());
  for (int b : bits_) s.push_back(b ? '1' : '0');
  return s;
}

std::vector<std::uint8_t> BitVec::to_bytes() const
{
  if (bits_.size() % 8 != 0) {
    throw std::invalid_argument{"BitVec::to_bytes: size must be multiple of 8"};
  }
  std::vector<std::uint8_t> bytes(bits_.size() / 8, 0);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    bytes[i / 8] = static_cast<std::uint8_t>((bytes[i / 8] << 1) | bits_[i]);
  }
  return bytes;
}

std::string BitVec::to_text() const
{
  const auto bytes = to_bytes();
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace mes
