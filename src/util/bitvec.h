// Bit-sequence utilities shared by the codec, channels and experiments.
//
// Payloads travel through every layer of the library as BitVec: the codec
// frames them, channels transmit them, metrics compare sent vs. received.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mes {

class Rng;

// An ordered sequence of bits with value semantics. Bits are stored one
// per element for simplicity; channel payloads are small (<= a few
// hundred kilobits) so the density loss is irrelevant next to clarity.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::vector<int> bits);

  // Parses "1010...". Throws std::invalid_argument on anything else.
  static BitVec from_string(const std::string& s);
  // Big-endian bit expansion of each byte in order.
  static BitVec from_bytes(const std::vector<std::uint8_t>& bytes);
  static BitVec from_text(const std::string& text);
  static BitVec random(Rng& rng, std::size_t n);
  // The alternating "1010..." preamble used as a synchronization sequence.
  static BitVec alternating(std::size_t n);

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }
  int operator[](std::size_t i) const { return bits_[i]; }
  void push_back(int bit) { bits_.push_back(bit ? 1 : 0); }
  void append(const BitVec& other);

  BitVec slice(std::size_t pos, std::size_t len) const;

  std::size_t count_ones() const;
  std::size_t count_zeros() const { return size() - count_ones(); }

  // Number of differing positions against `other`; positions beyond the
  // shorter sequence count as errors (a dropped bit is an error).
  std::size_t hamming_distance(const BitVec& other) const;

  std::string to_string() const;
  // Collapses back to bytes (size must be a multiple of 8).
  std::vector<std::uint8_t> to_bytes() const;
  std::string to_text() const;

  const std::vector<int>& bits() const { return bits_; }

  bool operator==(const BitVec&) const = default;

 private:
  std::vector<int> bits_;
};

}  // namespace mes
