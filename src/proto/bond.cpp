#include "proto/bond.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "exec/env.h"
#include "exec/seed.h"
#include "proto/link.h"
#include "util/rng.h"

namespace mes::proto {

namespace {

// Resolved per-sub-channel config: the base with this channel's
// mechanism + timing anchor swapped in.
ExperimentConfig channel_config(const ExperimentConfig& base,
                                const BondChannelSpec& spec, std::size_t index)
{
  ExperimentConfig cfg = base;
  cfg.mechanism = spec.mechanism;
  cfg.timing = spec.timing ? *spec.timing
                           : paper_timeset(spec.mechanism, base.scenario);
  // Multi-bit symbols only survive on cooperation channels; a mixed
  // bond keeps the base width there and falls back to binary symbols
  // on contention sub-channels.
  cfg.timing.symbol_bits = link_symbol_width(spec.mechanism, base.timing);
  cfg.protocol = ProtocolMode::fixed;
  // Decorrelated calibration stacks per sub-channel.
  cfg.seed = exec::mix_seed(base.seed, {0xB0DDULL, index});
  return cfg;
}

// Flips the round into seeded noise: what a collapsed margin looks like
// to the decoder, without reaching into the noise model mid-run.
BitVec garble(const BitVec& wire, Rng& rng)
{
  BitVec out;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    out.push_back(static_cast<int>(rng.next_below(2)));
  }
  return out;
}

struct SubChannel {
  BondChannelReport report;
  Calibration cal;
  std::unique_ptr<Link> link;
  bool live = false;
  std::size_t burst = 1;
  std::vector<std::size_t> inflight;  // global stripe indices this wave
  std::size_t dead_waves = 0;
  std::size_t requeued_this_wave = 0;
};

}  // namespace

BondReport bond_deliver(const ExperimentConfig& base, const BitVec& payload,
                        const std::vector<BondChannelSpec>& specs,
                        const BondOptions& opt)
{
  BondReport bond;
  bond.pairs_requested = specs.size();
  if (specs.empty()) {
    bond.failure = "bond: no sub-channels requested";
    return bond;
  }

  // --- phase 1: calibrate every sub-channel independently -------------
  std::vector<SubChannel> channels(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SubChannel& ch = channels[i];
    ch.report.mechanism = specs[i].mechanism;
    const ExperimentConfig cfg = channel_config(base, specs[i], i);
    if (std::string err = exec::validate_config(cfg); !err.empty()) {
      ch.report.error = err;
      continue;
    }
    CalibrationOptions tuned = opt.calibration;
    const std::size_t width = link_symbol_width(cfg.mechanism, cfg.timing);
    tuned.frame_symbols =
        (frame_wire_bits(opt.arq) + opt.arq.sync_bits + width - 1) / width;
    tuned.fec_single_correcting = opt.arq.fec_depth > 0;
    ch.cal = calibrate_link(cfg, tuned, opt.arq);
    bond.calibration_time += ch.cal.elapsed;
    if (!ch.cal.ok) {
      ch.report.error = ch.cal.failure;
      continue;
    }
    ch.report.calibrated = true;
    ch.report.timing = ch.cal.timing;
    ch.report.margin = ch.cal.margin;
    ch.report.weight_bps = ch.cal.trial_goodput_bps;
    ch.live = true;
  }

  // --- phase 2: bond the survivors onto ONE simulation ----------------
  exec::ExperimentEnv env{base};
  for (std::size_t i = 0; i < channels.size(); ++i) {
    SubChannel& ch = channels[i];
    if (!ch.live) continue;
    const ExperimentConfig cfg = channel_config(base, specs[i], i);
    ch.link = std::make_unique<Link>(
        env, exec::PairSpec{cfg.mechanism, cfg.timing}, ch.cal.timing,
        ch.cal.classifier, opt.arq.sync_bits);
    if (!ch.link->error().empty()) {
      ch.report.error = ch.link->error();
      ch.report.calibrated = false;
      ch.live = false;
    }
  }
  const auto live_count = [&channels] {
    std::size_t n = 0;
    for (const SubChannel& ch : channels) n += ch.live ? 1 : 0;
    return n;
  };
  bond.pairs_live = live_count();
  if (bond.pairs_live == 0) {
    for (const SubChannel& ch : channels) {
      if (!ch.report.error.empty()) {
        bond.failure = ch.report.error;
        break;
      }
    }
    if (bond.failure.empty()) bond.failure = "bond: no sub-channel came up";
    for (SubChannel& ch : channels) bond.channels.push_back(ch.report);
    return bond;
  }

  // --- striping scheduler: weight bursts by calibrated goodput --------
  // The fastest sub-channel carries max_burst stripes per wave; slower
  // ones get proportionally fewer, so every sub-channel's burst takes
  // about the same wire time and no one stalls the lockstep wave.
  double w_max = 0.0;
  for (const SubChannel& ch : channels) {
    if (ch.live) w_max = std::max(w_max, ch.report.weight_bps);
  }
  const std::size_t burst_cap = std::max<std::size_t>(opt.max_burst, 1);
  for (SubChannel& ch : channels) {
    if (!ch.live) continue;
    const std::size_t burst =
        w_max > 0.0 && ch.report.weight_bps > 0.0
            ? static_cast<std::size_t>(std::lround(
                  static_cast<double>(burst_cap) * ch.report.weight_bps /
                  w_max))
            : 1;
    ch.burst = std::clamp<std::size_t>(burst, 1, burst_cap);
    ch.report.burst = ch.burst;
  }

  // --- phase 3: the wave loop -----------------------------------------
  const std::size_t n_stripes = frame_count(payload.size(), opt.arq);
  const std::size_t seq_mod = std::size_t{1} << opt.arq.seq_bits;
  const std::size_t window = std::max<std::size_t>(seq_mod / 2, 1);
  bond.stripes = n_stripes;

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < n_stripes; ++i) pending.push_back(i);
  std::vector<char> delivered(n_stripes, 0);
  std::size_t confirmed_floor = 0;  // sender: first undelivered stripe
  std::size_t delivered_count = 0;

  std::vector<std::optional<BitVec>> received(n_stripes);
  std::size_t lowest_unfilled = 0;  // receiver: reassembly frontier

  Rng fault_rng{base.seed ^ 0xFA017B0DDULL};
  bond.ok = true;

  const auto stripe_chunk = [&](std::size_t index) {
    const std::size_t offset = index * opt.arq.chunk_bits;
    return payload.slice(
        offset, std::min(opt.arq.chunk_bits, payload.size() - offset));
  };

  for (std::size_t wave = 0; delivered_count < n_stripes; ++wave) {
    if (wave >= opt.max_waves) {
      bond.failure = "bond: wave bound exhausted";
      break;
    }
    ++bond.waves;

    // Forward half: deal pending stripes round-robin across the live
    // sub-channels (one per turn, up to each channel's burst) so a
    // short wave spreads over every pair instead of filling the first.
    for (SubChannel& ch : channels) {
      ch.inflight.clear();
      ch.requeued_this_wave = 0;
    }
    bool dealt = true;
    while (dealt && !pending.empty() &&
           pending.front() < confirmed_floor + window) {
      dealt = false;
      for (SubChannel& ch : channels) {
        if (!ch.live || ch.inflight.size() >= ch.burst) continue;
        if (pending.empty() ||
            pending.front() >= confirmed_floor + window) {
          break;
        }
        ch.inflight.push_back(pending.front());
        pending.pop_front();
        dealt = true;
      }
    }
    bool posted_any = false;
    for (SubChannel& ch : channels) {
      if (!ch.live || ch.inflight.empty()) continue;
      BitVec wire;
      for (const std::size_t stripe : ch.inflight) {
        wire.append(encode_frame(stripe % seq_mod, stripe + 1 == n_stripes,
                                 stripe_chunk(stripe), opt.arq));
      }
      posted_any = ch.link->post(wire, /*reverse=*/false) || posted_any;
      ch.report.stripe_sends += ch.inflight.size();
      bond.stripe_sends += ch.inflight.size();
    }
    if (!posted_any) {
      bond.failure = "bond: scheduler stalled (window closed)";
      break;
    }
    sim::RunResult run = env.run();
    if (run.hit_event_limit || run.blocked_roots > 0) {
      bond.failure = run.hit_event_limit ? "simulation event limit reached"
                                         : "bond wave deadlocked";
      bond.ok = false;
      break;
    }

    // Receiver half: decode each slot, fill the reassembly buffer,
    // answer with a selective ack over the reverse direction.
    const std::size_t frame_bits = frame_wire_bits(opt.arq);
    for (SubChannel& ch : channels) {
      if (!ch.live || ch.inflight.empty()) continue;
      const std::size_t index =
          static_cast<std::size_t>(&ch - channels.data());
      auto rx = ch.link->collect();
      if (!rx) {
        ch.report.error = ch.link->error();
        continue;
      }
      if (opt.fault && opt.fault(index, wave)) *rx = garble(*rx, fault_rng);

      std::vector<int> ok_slots(ch.inflight.size(), 0);
      for (std::size_t s = 0; s < ch.inflight.size(); ++s) {
        if ((s + 1) * frame_bits > rx->size()) break;
        const DecodedFrame frame =
            decode_frame(rx->slice(s * frame_bits, frame_bits), opt.arq);
        if (!frame.crc_ok) continue;
        ok_slots[s] = 1;
        // Map the wire sequence number back to a global stripe index:
        // the first unfilled in-window index with a matching residue.
        // No match = a duplicate of an already-filled stripe (a lost
        // sack made the sender resend) — still acked positively.
        const std::size_t hi =
            std::min(n_stripes, lowest_unfilled + window);
        for (std::size_t g = lowest_unfilled; g < hi; ++g) {
          if (!received[g] && g % seq_mod == frame.seq) {
            received[g] = frame.chunk;
            break;
          }
        }
      }
      while (lowest_unfilled < n_stripes && received[lowest_unfilled]) {
        ++lowest_unfilled;
      }
      ch.link->post(encode_sack(wave, ok_slots, opt.arq),
                    /*reverse=*/true);
    }
    run = env.run();
    if (run.hit_event_limit || run.blocked_roots > 0) {
      bond.failure = run.hit_event_limit ? "simulation event limit reached"
                                         : "bond ack wave deadlocked";
      bond.ok = false;
      break;
    }

    // Sender half: score the sack, advance or re-queue each stripe.
    std::vector<std::size_t> requeue;
    for (SubChannel& ch : channels) {
      if (!ch.live || ch.inflight.empty()) continue;
      const std::size_t index =
          static_cast<std::size_t>(&ch - channels.data());
      auto ack_rx = ch.link->collect();
      if (ack_rx && opt.fault && opt.fault(index, wave)) {
        *ack_rx = garble(*ack_rx, fault_rng);
      }
      DecodedSack sack;
      if (ack_rx) {
        sack = decode_sack(*ack_rx, ch.inflight.size(), opt.arq);
      }
      const bool sack_valid = sack.crc_ok && sack.wave == (wave & 0xff);
      std::size_t advanced = 0;
      for (std::size_t s = 0; s < ch.inflight.size(); ++s) {
        const std::size_t stripe = ch.inflight[s];
        if (sack_valid && sack.ok[s]) {
          if (!delivered[stripe]) {
            delivered[stripe] = 1;
            ++delivered_count;
          }
          ++ch.report.stripes_delivered;
          ++advanced;
        } else {
          requeue.push_back(stripe);
          ++ch.requeued_this_wave;
          ++bond.retransmits;
        }
      }
      ch.dead_waves = advanced > 0 ? 0 : ch.dead_waves + 1;
    }
    while (confirmed_floor < n_stripes && delivered[confirmed_floor]) {
      ++confirmed_floor;
    }
    std::sort(requeue.begin(), requeue.end());
    pending.insert(pending.begin(), requeue.begin(), requeue.end());

    // Degraded mode: drain collapsed sub-channels onto the survivors.
    for (SubChannel& ch : channels) {
      if (!ch.live || ch.dead_waves < opt.degrade_after) continue;
      if (live_count() <= 1) continue;  // nothing to drain onto
      ch.live = false;
      ch.report.degraded = true;
      bond.rebalances += ch.requeued_this_wave;
    }
  }

  if (delivered_count == n_stripes) {
    BitVec assembled;
    for (std::size_t i = 0; i < n_stripes; ++i) {
      assembled.append(*received[i]);
    }
    bond.received = std::move(assembled);
    bond.delivered = true;
  }
  bond.elapsed = env.simulator().now() - TimePoint::origin();
  if (bond.delivered && bond.elapsed > Duration::zero()) {
    bond.aggregate_goodput_bps =
        static_cast<double>(payload.size()) / bond.elapsed.to_sec();
  }
  for (SubChannel& ch : channels) bond.channels.push_back(ch.report);
  return bond;
}

BondReport bond_deliver(const ExperimentConfig& base, const BitVec& payload,
                        std::size_t pairs, const BondOptions& opt)
{
  std::vector<BondChannelSpec> specs(
      pairs, BondChannelSpec{base.mechanism, base.timing});
  return bond_deliver(base, payload, specs, opt);
}

ChannelReport run_bonded_transmission(const ExperimentConfig& base,
                                      const BitVec& payload,
                                      std::size_t pairs,
                                      const BondOptions& opt, BondReport* out)
{
  const BondReport bond = bond_deliver(base, payload, pairs, opt);

  ChannelReport rep;
  rep.mechanism = base.mechanism;
  rep.scenario = base.scenario;
  rep.scenario_name = base.scenario_name;
  rep.timing = base.timing;
  rep.sent_payload = payload;
  rep.ok = bond.ok;
  if (!bond.ok) {
    rep.failure_reason = bond.failure;
    if (out != nullptr) *out = bond;
    return rep;
  }

  // Conservative margin (the weakest live sub-channel) and the first
  // live sub-channel's calibrated rate for the timing columns.
  double min_margin = 0.0;
  bool margin_set = false;
  bool timing_set = false;
  for (const BondChannelReport& ch : bond.channels) {
    if (!ch.calibrated) continue;
    min_margin = margin_set ? std::min(min_margin, ch.margin) : ch.margin;
    margin_set = true;
    if (!timing_set) {
      rep.timing = ch.timing;
      timing_set = true;
    }
  }
  rep.elapsed = bond.elapsed;
  rep.proto = ChannelReport::ProtocolStats{};
  rep.proto->mode = ProtocolMode::adaptive;
  rep.proto->frames = bond.stripes;
  rep.proto->frame_sends = bond.stripe_sends;
  rep.proto->retransmits = bond.retransmits;
  rep.proto->calibration_margin = min_margin;
  rep.proto->calibration_time = bond.calibration_time;
  rep.proto->pairs = bond.pairs_live;
  rep.proto->pairs_requested = bond.pairs_requested;
  rep.proto->rebalances = bond.rebalances;

  if (bond.delivered) {
    rep.sync_ok = true;
    rep.received_payload = bond.received;
    rep.ber = payload.empty()
                  ? 0.0
                  : static_cast<double>(
                        payload.hamming_distance(bond.received)) /
                        static_cast<double>(payload.size());
    rep.throughput_bps = bond.aggregate_goodput_bps;
  } else {
    rep.sync_ok = false;
    rep.ber = 1.0;
    rep.failure_reason = bond.failure.empty()
                             ? "bond: transfer did not complete"
                             : bond.failure;
  }
  if (out != nullptr) *out = bond;
  return rep;
}

}  // namespace mes::proto
