#include "proto/drift.h"

#include <algorithm>
#include <cmath>

#include "os/kernel.h"

namespace mes::proto {

DriftMonitor::DriftMonitor(Link& link, const ExperimentConfig& base,
                           const TimingConfig& anchor,
                           std::size_t payload_bits, const DriftOptions& opt,
                           const CalibrationOptions& cal,
                           const ArqOptions& arq)
    : link_{link},
      base_{base},
      anchor_{anchor},
      opt_{opt},
      cal_{cal},
      chunk_bits_{arq.chunk_bits},
      payload_bits_{payload_bits},
      width_{link_symbol_width(base.mechanism, anchor)},
      probe_rng_{base.seed ^ 0xD21F7A11DEADULL}
{
}

ChannelReport::ProtocolStats::PhaseStats& DriftMonitor::phase_entry(
    std::size_t phase)
{
  for (std::size_t i = 0; i < stats_.phases.size(); ++i) {
    if (stats_.phases[i].phase == phase) return stats_.phases[i];
  }
  stats_.phases.push_back({});
  stats_.phases.back().phase = phase;
  phase_bits_.push_back(0);
  return stats_.phases.back();
}

ChannelReport::ProtocolStats::PhaseStats& DriftMonitor::attribute_elapsed()
{
  // Attribute the link time since the last observation to the phase in
  // effect now (rounds are short relative to phases; the approximation
  // only blurs the one round that straddles a boundary).
  const Duration elapsed = link_.elapsed();
  const std::size_t phase =
      link_.env().kernel().noise().phase_at(link_.env().simulator().now());
  auto& entry = phase_entry(phase);
  entry.elapsed += elapsed - accounted_;
  accounted_ = elapsed;
  return entry;
}

void DriftMonitor::account_round(bool advanced)
{
  auto& entry = attribute_elapsed();
  if (advanced) {
    const std::size_t offset = frames_delivered_ * chunk_bits_;
    const std::size_t bits =
        std::min(chunk_bits_, payload_bits_ - std::min(offset, payload_bits_));
    ++frames_delivered_;
    delivered_bits_ += bits;
    ++entry.frames;
    const std::size_t index =
        static_cast<std::size_t>(&entry - stats_.phases.data());
    phase_bits_[index] += bits;
  } else {
    ++entry.retransmits;
  }
}

void DriftMonitor::on_round(std::size_t, std::size_t, bool advanced)
{
  account_round(advanced);
  if (advanced) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  if (!opt_.enabled) return;
  if (consecutive_failures_ < opt_.trigger_rounds) return;
  if (stats_.recalibrations >= opt_.max_recalibrations) return;
  ++stats_.drift_events;
  recalibrate();
  consecutive_failures_ = 0;
}

void DriftMonitor::recalibrate()
{
  const std::size_t alphabet = std::size_t{1} << width_;
  const TimingConfig previous_timing = link_.timing();
  const codec::LatencyClassifier previous_classifier = link_.classifier();
  const Duration started = link_.elapsed();

  // Fresh known pattern per recalibration, deterministic per cell.
  const BitVec pattern =
      BitVec::random(probe_rng_, opt_.probe_symbols * width_);

  // Probe a window around the current rate, not the whole grid: the
  // optimum rarely moves more than a couple of grid steps per regime
  // change, and every probe bleeds session time. One step faster, three
  // slower (drift that *fires* usually means the regime got worse).
  std::size_t current = 0;
  double best_dist = 1e300;
  for (std::size_t i = 0; i < opt_.scales.size(); ++i) {
    const Duration scaled = scale_timing(anchor_, opt_.scales[i]).t1 +
                            scale_timing(anchor_, opt_.scales[i]).interval;
    const Duration now_t = previous_timing.t1 + previous_timing.interval;
    const double dist = std::abs(scaled.to_us() - now_t.to_us());
    if (dist < best_dist) {
      best_dist = dist;
      current = i;
    }
  }
  const std::size_t lo = current > 0 ? current - 1 : 0;
  const std::size_t hi = std::min(current + 3, opt_.scales.size() - 1);

  bool have_best = false;
  double best_score = 0.0;
  TimingConfig best_timing;
  codec::LatencyClassifier best_classifier = previous_classifier;

  for (std::size_t gi = lo; gi <= hi; ++gi) {
    const double scale = opt_.scales[gi];
    const TimingConfig timing = scale_timing(anchor_, scale);
    // The probe fit classifies from the known pattern; the classifier
    // in force during the probe is irrelevant.
    link_.retune(timing, previous_classifier);
    const Link::ProbeResult pr = link_.probe(pattern);
    if (!pr.ok) return;  // structural failure: the session will abort
    const ProbeFit fit =
        fit_probe(pr.tx_symbols, pr.latencies, alphabet, pr.elapsed);
    attribute_elapsed();  // probes consume phase time, not retransmits
    if (!fit.usable || fit.margin < opt_.min_margin) continue;
    const double sigma =
        std::sqrt(fit.symbol_error * (1.0 - fit.symbol_error) /
                  static_cast<double>(opt_.probe_symbols));
    const double p_ucb = fit.symbol_error + opt_.error_ucb_sigma * sigma;
    const double score =
        predicted_frame_rate(p_ucb, fit.us_per_symbol, cal_);
    if (!have_best || score > best_score) {
      have_best = true;
      best_score = score;
      best_timing = timing;
      best_classifier = fit.classifier;
    }
  }

  if (have_best) {
    link_.retune(best_timing, best_classifier);
    ++stats_.recalibrations;
    last_recal_at_ = link_.elapsed();
    bits_at_recal_ = delivered_bits_;
  } else {
    // No rate separated: restore the previous tuning and let the ARQ
    // bound decide (a later trigger may find a usable regime).
    link_.retune(previous_timing, previous_classifier);
  }
  stats_.recovery_spent += link_.elapsed() - started;
}

void DriftMonitor::finish()
{
  // Close the open phase interval and derive per-phase goodput.
  if (!stats_.phases.empty()) attribute_elapsed();
  for (std::size_t i = 0; i < stats_.phases.size(); ++i) {
    auto& entry = stats_.phases[i];
    if (entry.elapsed > Duration::zero()) {
      entry.goodput_bps =
          static_cast<double>(phase_bits_[i]) / entry.elapsed.to_sec();
    }
  }
  if (stats_.recalibrations > 0) {
    const Duration since = link_.elapsed() - last_recal_at_;
    if (since > Duration::zero()) {
      stats_.recovered_goodput_bps =
          static_cast<double>(delivered_bits_ - bits_at_recal_) /
          since.to_sec();
    }
  }
}

}  // namespace mes::proto
