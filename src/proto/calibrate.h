// Link calibration: pick the symbol duration and classifier from the
// live noise regime instead of the hand-tuned Timeset tables.
//
// The paper fixes one symbol duration per (mechanism, scenario) cell by
// grid search. A real attacker cannot: the noise regime on the victim
// box is unknown until measured. This phase sends short probe rounds of
// a known pattern across a geometric grid of rate scales (fractions of
// the configured Timeset) and, at each rate, measures three things
// through the live channel: the latency-level separation vs jitter, the
// actual symbol error rate of the derived classifier, and the wire time
// per symbol. The pick maximizes *predicted ARQ goodput* — frames
// survive per second, given the frame geometry — which is what a
// Gaussian margin alone gets wrong: the noise model's corruption events
// and scheduler penalties give the latency distribution heavy tails, so
// two rates with comparable margins can differ several-fold in burst
// rate. The classifier thresholds come from the *measured* level means,
// not the a-priori operation-cost estimates in exec::ExperimentEnv.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "codec/symbols.h"
#include "core/runner.h"
#include "proto/arq.h"
#include "proto/cal_cache.h"

namespace mes::proto {

struct CalibrationOptions {
  // Rate grid, as multiples of the configured symbol durations, fastest
  // first. The grid is geometric (~1.4x steps): BER walls are sharp in
  // duration, so finer steps buy little.
  std::vector<double> scales = {0.25, 0.35, 0.5, 0.7, 1.0, 1.4, 2.0};
  // Known-pattern symbols per candidate rate. Sized so that the error
  // rates that matter for frame survival (fractions of a percent to a
  // few percent) are measurable, not just the level means: at 256
  // probes a 3% symbol error rate shows ~8 events.
  std::size_t probe_symbols = 256;
  // Rates whose worst adjacent-level margin (separation over summed
  // sigma) falls below this are excluded outright — their levels
  // overlap and the error estimate is meaningless.
  double min_margin = 1.0;
  // The ARQ frame geometry the rate pick optimizes for: symbols per
  // data frame on the wire, and whether FEC repairs single flips per
  // codeword before the CRC judges the frame.
  std::size_t frame_symbols = 534;
  bool fec_single_correcting = true;
  // The analytic screen scores an upper confidence bound on the
  // measured error rate (p + z * binomial sigma), not the point
  // estimate: the probe is short, and overestimating the channel costs
  // retransmission storms while underestimating costs a grid step.
  double error_ucb_sigma = 1.0;

  // Refinement: the top candidates by analytic score then carry real
  // ARQ trial frames — the analytic model is deliberately conservative
  // (per-round recalibration and error clustering make fast rates
  // survive better than symbol-independence predicts), so the final
  // pick is the best *realized* trial goodput, which is exactly the
  // quantity a session optimizes. 0 candidates disables refinement.
  std::size_t refine_candidates = 3;
  std::size_t trial_payload_bits = 2048;  // ~8 frames through the real ARQ
};

struct Calibration {
  bool ok = false;
  std::string failure;       // why not, when !ok (topology, deadlock)

  std::size_t grid_index = 0;      // index into CalibrationOptions::scales
  double scale = 1.0;
  TimingConfig timing;             // the chosen durations
  codec::LatencyClassifier classifier =
      codec::LatencyClassifier::binary(Duration::zero());

  double separation_us = 0.0;  // adjacent-level mean gap at the pick
  double jitter_us = 0.0;      // summed adjacent-level stddev
  double margin = 0.0;         // separation / jitter
  double symbol_error = 0.0;   // measured probe error rate at the pick
  // Realized ARQ trial rate at the pick; 0 on a confirmed warm start
  // (the follower skips the rehearsal — its delivery is the trial).
  double trial_goodput_bps = 0.0;
  std::size_t probes_sent = 0;
  Duration elapsed = Duration::zero();  // simulated time spent probing
  // full sweep / confirmed warm start / warm start that fell back.
  CalibrationSource source = CalibrationSource::full;
};

// Probes the configured link across the rate grid. `base.timing` is the
// anchor the scales multiply; everything else in `base` (mechanism,
// scenario, noise, seed) describes the link being calibrated. `arq`
// shapes the refinement trials (frame geometry, FEC depth).
Calibration calibrate_link(const ExperimentConfig& base,
                           const CalibrationOptions& opt = {},
                           const ArqOptions& arq = {});

// Warm-start calibration from a published pick (proto/cal_cache.h):
// probe ONLY the hinted grid index and screen the measured margin and
// error rate against the leader's — the common case costs one probe
// round instead of the full sweep, with no rehearsal trial (the
// delivery that follows is itself an ARQ run). On disagreement the
// neighboring grid indices (hint ± 1) are probed next and the best is
// confirmed with one trial; if none delivers, the remaining grid
// completes the full sweep (source = fallback). Probe/trial seeds mix
// the *absolute* grid index, so every round a warm run shares with a
// full sweep is bit-identical to it.
Calibration calibrate_link_warm(const ExperimentConfig& base,
                                const CalibrationOptions& opt,
                                const ArqOptions& arq,
                                const CalibrationPick& hint);

// The rate pick's figure of merit: predicted frames delivered per
// second, from a measured symbol error rate and per-symbol wire time.
// Exposed so tests and benches can audit the decision.
double predicted_frame_rate(double symbol_error, double us_per_symbol,
                            const CalibrationOptions& opt);

// Refit from one known-pattern round measured through a live link (the
// online-recalibration path, proto/drift): level means -> classifier,
// margin and in-sample error, exactly as the offline calibration fits
// its probes.
struct ProbeFit {
  bool usable = false;
  double margin = 0.0;
  double symbol_error = 0.0;
  double us_per_symbol = 0.0;
  codec::LatencyClassifier classifier =
      codec::LatencyClassifier::binary(Duration::zero());
};
ProbeFit fit_probe(const std::vector<std::size_t>& tx_symbols,
                   const std::vector<Duration>& latencies,
                   std::size_t alphabet, Duration elapsed);

}  // namespace mes::proto
