#include "proto/link.h"

#include <algorithm>

#include "codec/frame.h"

namespace mes::proto {

std::size_t link_symbol_width(Mechanism m, const TimingConfig& timing)
{
  return class_of(m) == ChannelClass::cooperation
             ? std::max<std::size_t>(timing.symbol_bits, 1)
             : 1;
}

Link::Link(const ExperimentConfig& cfg, const TimingConfig& timing,
           const codec::LatencyClassifier& classifier, std::size_t sync_bits)
    : owned_env_{std::make_unique<exec::ExperimentEnv>(cfg)},
      env_{owned_env_.get()},
      width_{link_symbol_width(cfg.mechanism, timing)},
      sync_bits_{(sync_bits + width_ - 1) / width_ * width_}
{
  forward_ = &env_->add_pair();
  if (!forward_->error.empty()) {
    error_ = forward_->error;
    return;
  }
  reverse_ = &env_->add_reverse_pair(*forward_);
  if (!reverse_->error.empty()) {
    error_ = reverse_->error;
    return;
  }
  env_->set_link_tuning(*forward_, timing, classifier);
  env_->set_link_tuning(*reverse_, timing, classifier);
}

Link::Link(exec::ExperimentEnv& env, const exec::PairSpec& spec,
           const TimingConfig& timing,
           const codec::LatencyClassifier& classifier, std::size_t sync_bits)
    : env_{&env},
      width_{link_symbol_width(spec.mechanism.value_or(env.config().mechanism),
                               timing)},
      sync_bits_{(sync_bits + width_ - 1) / width_ * width_}
{
  forward_ = &env_->add_pair(spec);
  if (!forward_->error.empty()) {
    error_ = forward_->error;
    return;
  }
  reverse_ = &env_->add_reverse_pair(*forward_);
  if (!reverse_->error.empty()) {
    error_ = reverse_->error;
    return;
  }
  env_->set_link_tuning(*forward_, timing, classifier);
  env_->set_link_tuning(*reverse_, timing, classifier);
}

Duration Link::elapsed()
{
  return env_->simulator().now() - TimePoint::origin();
}

const TimingConfig& Link::timing() const
{
  return forward_->ctx->timing;
}

const codec::LatencyClassifier& Link::classifier() const
{
  return forward_->ctx->classifier;
}

void Link::retune(const TimingConfig& timing,
                  const codec::LatencyClassifier& classifier)
{
  if (!error_.empty()) return;
  env_->set_link_tuning(*forward_, timing, classifier);
  env_->set_link_tuning(*reverse_, timing, classifier);
}

Link::ProbeResult Link::probe(const BitVec& pattern)
{
  ProbeResult result;
  if (!error_.empty() || pending_) return result;

  BitVec padded = pattern;
  while (padded.size() % width_ != 0) padded.push_back(0);
  const codec::Frame frame = codec::make_frame(padded, sync_bits_);
  const std::vector<std::size_t> symbols =
      forward_->ctx->schedule.encode(frame.bits);

  const TimePoint started = env_->simulator().now();
  forward_->rx = core::RxResult{};
  env_->spawn_transmission(*forward_, symbols);
  const sim::RunResult run = env_->run();
  if (run.hit_event_limit) {
    error_ = "simulation event limit reached";
    return result;
  }
  if (run.blocked_roots > 0) {
    error_ = "probe round deadlocked";
    return result;
  }
  result.ok = true;
  result.tx_symbols = symbols;
  result.latencies = forward_->rx.latencies;
  result.elapsed = env_->simulator().now() - started;
  return result;
}

bool Link::post(const BitVec& wire, bool reverse)
{
  if (!error_.empty() || pending_) return false;
  exec::ExperimentEnv::Endpoint& ep = reverse ? *reverse_ : *forward_;

  BitVec padded = wire;
  while (padded.size() % width_ != 0) padded.push_back(0);
  const codec::Frame frame = codec::make_frame(padded, sync_bits_);
  const std::vector<std::size_t> symbols = ep.ctx->schedule.encode(frame.bits);

  ep.rx = core::RxResult{};
  env_->spawn_transmission(ep, symbols);
  pending_ = true;
  pending_reverse_ = reverse;
  pending_bits_ = wire.size();
  return true;
}

std::optional<BitVec> Link::collect()
{
  if (!error_.empty() || !pending_) return std::nullopt;
  pending_ = false;
  exec::ExperimentEnv::Endpoint& ep =
      pending_reverse_ ? *reverse_ : *forward_;

  // Per-round recalibration from the known preamble keeps the link
  // honest under slow drift; the calibrated classifier is the anchor.
  const std::vector<Duration>& lat = ep.rx.latencies;
  const std::size_t sync_symbols = sync_bits_ / width_;
  codec::LatencyClassifier cls = ep.ctx->classifier;
  if (width_ == 1 && sync_symbols >= 2 && lat.size() >= sync_symbols) {
    cls = codec::calibrate_binary(
        std::vector<Duration>(
            lat.begin(), lat.begin() + static_cast<long>(sync_symbols)),
        ep.ctx->classifier.threshold(0));
  }
  std::vector<std::size_t> rx_symbols;
  rx_symbols.reserve(lat.size());
  for (const Duration l : lat) rx_symbols.push_back(cls.classify(l));

  const BitVec rx_bits = ep.ctx->schedule.decode(rx_symbols);
  if (rx_bits.size() < sync_bits_ + pending_bits_) {
    // Short reads cannot happen structurally (the Spy measures a fixed
    // count); treat defensively as a garbled round.
    return BitVec{};
  }
  return rx_bits.slice(sync_bits_, pending_bits_);
}

std::optional<BitVec> Link::transfer(const BitVec& wire, bool reverse)
{
  if (!post(wire, reverse)) return std::nullopt;
  const sim::RunResult run = env_->run();
  if (run.hit_event_limit) {
    error_ = "simulation event limit reached";
    return std::nullopt;
  }
  if (run.blocked_roots > 0) {
    error_ = "protocol round deadlocked";
    return std::nullopt;
  }
  return collect();
}

Transport Link::transport()
{
  return [this](const BitVec& wire, bool reverse) {
    return transfer(wire, reverse);
  };
}

}  // namespace mes::proto
