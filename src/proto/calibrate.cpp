#include "proto/calibrate.h"

#include <algorithm>
#include <cmath>

#include "proto/link.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mes::proto {

namespace {

// One candidate's measured statistics.
struct LevelFit {
  bool usable = false;
  double separation_us = 0.0;
  double jitter_us = 0.0;
  double margin = 0.0;
  double symbol_error = 0.0;   // in-sample, with the derived classifier
  double us_per_symbol = 0.0;
  std::vector<double> level_mean_us;  // indexed by symbol value
};

codec::LatencyClassifier classifier_from(const LevelFit& fit,
                                         std::size_t alphabet)
{
  if (alphabet == 2) {
    return codec::LatencyClassifier::binary(
        Duration::us((fit.level_mean_us[0] + fit.level_mean_us[1]) / 2.0));
  }
  // Wider alphabets: anchor at the measured level 0 and space by the
  // measured mean slope (the per-level means are near-affine in the
  // symbol value by construction of the schedule).
  const double slope =
      (fit.level_mean_us[alphabet - 1] - fit.level_mean_us[0]) /
      static_cast<double>(alphabet - 1);
  return codec::LatencyClassifier{alphabet, Duration::us(fit.level_mean_us[0]),
                                  Duration::us(slope)};
}

LevelFit fit_levels(const std::vector<std::size_t>& tx_symbols,
                    const std::vector<Duration>& latencies,
                    std::size_t alphabet, Duration elapsed)
{
  LevelFit fit;
  const std::size_t n = std::min(tx_symbols.size(), latencies.size());
  std::vector<RunningStats> per_level(alphabet);
  for (std::size_t i = 0; i < n; ++i) {
    if (tx_symbols[i] >= alphabet) continue;
    per_level[tx_symbols[i]].add(latencies[i].to_us());
  }
  // Every level must have been probed a few times, or the fit says
  // nothing about the alphabet's separability.
  fit.level_mean_us.resize(alphabet, 0.0);
  double worst_margin = 1e300;
  double min_sep = 1e300;
  double max_jitter = 0.0;
  for (std::size_t k = 0; k < alphabet; ++k) {
    if (per_level[k].count() < 3) return fit;
    fit.level_mean_us[k] = per_level[k].mean();
    if (k == 0) continue;
    const double sep = per_level[k].mean() - per_level[k - 1].mean();
    const double jitter =
        per_level[k].stddev() + per_level[k - 1].stddev() + 1e-3;
    if (sep <= 0.0) return fit;  // levels out of order: rate too fast
    worst_margin = std::min(worst_margin, sep / jitter);
    min_sep = std::min(min_sep, sep);
    max_jitter = std::max(max_jitter, jitter);
  }

  // The error rate that matters is the one the derived thresholds
  // actually produce on the probe — the latency tails are heavy
  // (corruption events, post-park penalties), so this routinely exceeds
  // what a Gaussian margin would predict.
  const codec::LatencyClassifier cls = classifier_from(fit, alphabet);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cls.classify(latencies[i]) != tx_symbols[i]) ++errors;
  }
  // Zero observed errors on n probes still only bounds the rate: use
  // the ~half-event prior so short probes don't claim perfection.
  fit.symbol_error = std::max(static_cast<double>(errors),
                              0.5) /
                     static_cast<double>(n);
  fit.us_per_symbol = elapsed.to_us() / static_cast<double>(n);
  fit.usable = true;
  fit.separation_us = min_sep;
  fit.jitter_us = max_jitter;
  fit.margin = worst_margin;
  return fit;
}

}  // namespace

ProbeFit fit_probe(const std::vector<std::size_t>& tx_symbols,
                   const std::vector<Duration>& latencies,
                   std::size_t alphabet, Duration elapsed)
{
  ProbeFit out;
  const LevelFit fit = fit_levels(tx_symbols, latencies, alphabet, elapsed);
  if (!fit.usable) return out;
  out.usable = true;
  out.margin = fit.margin;
  out.symbol_error = fit.symbol_error;
  out.us_per_symbol = fit.us_per_symbol;
  out.classifier = classifier_from(fit, alphabet);
  return out;
}

double predicted_frame_rate(double symbol_error, double us_per_symbol,
                            const CalibrationOptions& opt)
{
  const double p = std::clamp(symbol_error, 0.0, 0.5);
  double frame_survival;
  if (opt.fec_single_correcting) {
    // Hamming(7,4): a codeword dies on >= 2 flipped symbols.
    const double q = 1.0 - p;
    const double cw_ok = std::pow(q, 7) + 7.0 * p * std::pow(q, 6);
    frame_survival = std::pow(
        cw_ok, static_cast<double>(opt.frame_symbols) / 7.0);
  } else {
    frame_survival = std::pow(1.0 - p,
                              static_cast<double>(opt.frame_symbols));
  }
  // A degenerate all-fast probe can measure zero wire time per symbol
  // (every latency below clock resolution); the rate is then undefined,
  // not infinite — report 0 so the candidate can never win on a
  // division artifact. calibrate_link additionally excludes such
  // candidates with a named failure.
  const double frame_time_us =
      static_cast<double>(opt.frame_symbols) * us_per_symbol;
  if (!(frame_time_us > 0.0)) return 0.0;
  return frame_survival / frame_time_us;
}

namespace {

// Realized goodput of a short ARQ trial at one candidate rate: payload
// bits over simulated link time, 0 when the trial failed to deliver.
double trial_goodput(const ExperimentConfig& base, const TimingConfig& timing,
                     const codec::LatencyClassifier& classifier,
                     const ArqOptions& arq, const CalibrationOptions& opt,
                     std::size_t grid_index, Duration* spent)
{
  ExperimentConfig cfg = base;
  cfg.protocol = ProtocolMode::fixed;
  cfg.timing = timing;
  cfg.seed = base.seed ^ (0x7B1A1ULL + grid_index * 0x9e3779b97f4a7c15ULL);

  Rng trial_rng{cfg.seed ^ 0x7B1A1DA7AULL};
  const BitVec trial_payload =
      BitVec::random(trial_rng, opt.trial_payload_bits);

  Link link{cfg, timing, classifier, arq.sync_bits};
  if (!link.error().empty()) return 0.0;

  ArqOptions trial_arq = arq;
  // A marginal rate should fail fast here, not grind through a long
  // retransmit budget — that is the signal the pick needs.
  trial_arq.max_rounds_per_frame =
      std::min<std::size_t>(arq.max_rounds_per_frame, 4);
  const auto delivered =
      arq_deliver(trial_payload, link.transport(), trial_arq, nullptr);
  const Duration elapsed = link.elapsed();
  if (spent != nullptr) *spent += elapsed;
  if (!delivered || *delivered != trial_payload ||
      elapsed <= Duration::zero()) {
    return 0.0;
  }
  return static_cast<double>(trial_payload.size()) / elapsed.to_sec();
}

// One candidate rate's probe round (shared by the full sweep and the
// warm start, so the two are bit-identical wherever they overlap). The
// seed mixes the *absolute* grid index `gi`.
struct ProbeOutcome {
  bool ran = false;      // the probe round itself succeeded
  std::string failure;   // why not, when !ran
  LevelFit fit;
};

ProbeOutcome run_probe(const ExperimentConfig& base,
                       const CalibrationOptions& opt,
                       const BitVec& probe_bits, std::size_t alphabet,
                       std::size_t gi, Calibration& cal)
{
  ExperimentConfig cfg = base;
  cfg.protocol = ProtocolMode::fixed;
  cfg.timing = scale_timing(base.timing, opt.scales[gi]);
  cfg.seed = base.seed ^ (0x5CA1EULL + gi * 0x9e3779b97f4a7c15ULL);
  // The fit classifies from the known pattern itself; the in-band
  // preamble recalibration would only add noise.
  cfg.recalibrate_from_preamble = false;

  ProbeOutcome out;
  const ChannelReport rep = run_transmission(cfg, probe_bits);
  if (!rep.ok) {
    out.failure = rep.failure_reason;
    return out;
  }
  out.ran = true;
  cal.probes_sent += rep.tx_symbols.size();
  cal.elapsed += rep.elapsed;
  out.fit = fit_levels(rep.tx_symbols, rep.rx_latencies, alphabet,
                       rep.elapsed);
  return out;
}

double ucb_score(const LevelFit& fit, const CalibrationOptions& opt)
{
  const double sigma = std::sqrt(
      fit.symbol_error * (1.0 - fit.symbol_error) /
      static_cast<double>(opt.probe_symbols));
  const double p_ucb = fit.symbol_error + opt.error_ucb_sigma * sigma;
  return predicted_frame_rate(p_ucb, fit.us_per_symbol, opt);
}

constexpr const char* kZeroWireFailure =
    "calibration: probe measured zero wire time (us_per_symbol == 0)";

struct Candidate {
  std::size_t index;
  LevelFit fit;
  double score;
};

// Pre-negotiated probe pattern (like the preamble): both ends derive it
// from the session seed, so the fit can pair every measured latency
// with the symbol that produced it.
BitVec make_probe_bits(const ExperimentConfig& base,
                       const CalibrationOptions& opt, std::size_t width)
{
  Rng probe_rng{base.seed ^ 0xCA11B7A7E5EEDULL};
  return BitVec::random(probe_rng, opt.probe_symbols * width);
}

void fill_from_candidate(Calibration& cal, const Candidate& pick,
                         const ExperimentConfig& base,
                         const CalibrationOptions& opt, std::size_t alphabet,
                         double trial_goodput_bps)
{
  cal.ok = true;
  cal.grid_index = pick.index;
  cal.scale = opt.scales[pick.index];
  cal.timing = scale_timing(base.timing, cal.scale);
  cal.classifier = classifier_from(pick.fit, alphabet);
  cal.separation_us = pick.fit.separation_us;
  cal.jitter_us = pick.fit.jitter_us;
  cal.margin = pick.fit.margin;
  cal.symbol_error = pick.fit.symbol_error;
  cal.trial_goodput_bps = trial_goodput_bps;
}

}  // namespace

Calibration calibrate_link(const ExperimentConfig& base,
                           const CalibrationOptions& opt,
                           const ArqOptions& arq)
{
  Calibration cal;
  const std::size_t width = std::max<std::size_t>(base.timing.symbol_bits, 1);
  const std::size_t alphabet = std::size_t{1} << width;
  const BitVec probe_bits = make_probe_bits(base, opt, width);

  bool saw_structural_failure = false;
  bool saw_zero_wire_time = false;
  std::string first_failure;

  std::vector<Candidate> usable;

  for (std::size_t gi = 0; gi < opt.scales.size(); ++gi) {
    const ProbeOutcome out =
        run_probe(base, opt, probe_bits, alphabet, gi, cal);
    if (!out.ran) {
      saw_structural_failure = true;
      if (first_failure.empty()) first_failure = out.failure;
      continue;
    }
    const LevelFit& fit = out.fit;
    if (!fit.usable || fit.margin < opt.min_margin) continue;
    if (!(fit.us_per_symbol > 0.0)) {
      // Degenerate all-fast round: the frame-rate figure of merit is
      // undefined (division by zero wire time), so the rate is
      // excluded rather than letting inf win the pick.
      saw_zero_wire_time = true;
      continue;
    }
    usable.push_back({gi, fit, ucb_score(fit, opt)});
  }

  if (usable.empty()) {
    cal.failure = saw_structural_failure ? first_failure
                  : saw_zero_wire_time
                      ? kZeroWireFailure
                      : "calibration: no rate produced separable levels";
    return cal;
  }

  // Shortlist by analytic score, then let realized ARQ trials decide.
  std::sort(usable.begin(), usable.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  const std::size_t shortlist =
      opt.refine_candidates == 0
          ? 1
          : std::min(opt.refine_candidates, usable.size());

  const Candidate* pick = &usable.front();
  double pick_goodput = 0.0;
  if (opt.refine_candidates > 0) {
    for (std::size_t i = 0; i < shortlist; ++i) {
      const Candidate& c = usable[i];
      const TimingConfig timing =
          scale_timing(base.timing, opt.scales[c.index]);
      const double goodput =
          trial_goodput(base, timing, classifier_from(c.fit, alphabet), arq,
                        opt, c.index, &cal.elapsed);
      if (goodput > pick_goodput) {
        pick_goodput = goodput;
        pick = &c;
      }
    }
  }

  fill_from_candidate(cal, *pick, base, opt, alphabet, pick_goodput);
  return cal;
}

Calibration calibrate_link_warm(const ExperimentConfig& base,
                                const CalibrationOptions& opt,
                                const ArqOptions& arq,
                                const CalibrationPick& hint)
{
  Calibration cal;
  const std::size_t width = std::max<std::size_t>(base.timing.symbol_bits, 1);
  const std::size_t alphabet = std::size_t{1} << width;
  const BitVec probe_bits = make_probe_bits(base, opt, width);

  bool saw_structural_failure = false;
  bool saw_zero_wire_time = false;
  std::string first_failure;
  std::vector<bool> probed(opt.scales.size(), false);
  std::vector<Candidate> usable;

  // Probes one grid index, screening exactly as the full sweep does;
  // usable candidates accumulate so a later fallback never re-probes.
  auto probe_at = [&](std::size_t gi) -> const Candidate* {
    probed[gi] = true;
    const ProbeOutcome out =
        run_probe(base, opt, probe_bits, alphabet, gi, cal);
    if (!out.ran) {
      saw_structural_failure = true;
      if (first_failure.empty()) first_failure = out.failure;
      return nullptr;
    }
    const LevelFit& fit = out.fit;
    if (!fit.usable || fit.margin < opt.min_margin) return nullptr;
    if (!(fit.us_per_symbol > 0.0)) {
      saw_zero_wire_time = true;
      return nullptr;
    }
    usable.push_back({gi, fit, ucb_score(fit, opt)});
    return &usable.back();
  };

  // One confirming ARQ trial; on delivery the candidate becomes the
  // pick and the sweep is skipped.
  auto confirm_trial = [&](const Candidate& c) {
    const TimingConfig timing = scale_timing(base.timing, opt.scales[c.index]);
    const double goodput =
        trial_goodput(base, timing, classifier_from(c.fit, alphabet), arq,
                      opt, c.index, &cal.elapsed);
    if (goodput <= 0.0) return false;
    fill_from_candidate(cal, c, base, opt, alphabet, goodput);
    return true;
  };

  // 1. Confirm probe at the published index. The screen accepts when
  // the follower's measured error rate sits within binomial noise of
  // the leader's (3 sigma at the probe length, floored at 5 points —
  // seed replicates of one link legitimately wander that much, and a
  // follower bounced to the neighbor path mostly re-picks a near-tied
  // neighbor, paying three probe rounds plus a trial for nothing) and
  // the margin still clears the configured floor. No ARQ trial on
  // this path: the pick is the leader's, the probe re-validated it on
  // this cell's noise, and the delivery that follows *is* an ARQ run —
  // a rehearsal would spend most of what the warm start saves.
  if (hint.grid_index < opt.scales.size()) {
    if (const Candidate* c = probe_at(hint.grid_index)) {
      const double p_bar =
          0.5 * (hint.symbol_error + c->fit.symbol_error);
      const double tol = std::max(
          3.0 * std::sqrt(p_bar * (1.0 - p_bar) /
                          static_cast<double>(opt.probe_symbols)),
          0.05);
      if (std::abs(c->fit.symbol_error - hint.symbol_error) <= tol) {
        fill_from_candidate(cal, *c, base, opt, alphabet, 0.0);
        cal.source = CalibrationSource::warm;
        return cal;
      }
    }
  }

  // 2. Disagreement: probe the neighboring rates and trial the best
  // usable candidate seen so far.
  for (const std::size_t gi : {hint.grid_index - 1, hint.grid_index + 1}) {
    if (gi < opt.scales.size() && !probed[gi]) probe_at(gi);
  }
  if (!usable.empty()) {
    const Candidate best = *std::max_element(
        usable.begin(), usable.end(),
        [](const Candidate& a, const Candidate& b) {
          return a.score < b.score;
        });
    if (confirm_trial(best)) {
      cal.source = CalibrationSource::warm;
      return cal;
    }
  }

  // 3. Full fallback: complete the sweep over the remaining grid and
  // decide exactly as calibrate_link does (shortlist by analytic score,
  // realized trials pick). Already-probed rounds are not repeated —
  // their candidates are in `usable` with identical fits, since the
  // probe seeds mix the absolute grid index.
  cal.source = CalibrationSource::fallback;
  for (std::size_t gi = 0; gi < opt.scales.size(); ++gi) {
    if (!probed[gi]) probe_at(gi);
  }
  if (usable.empty()) {
    cal.failure = saw_structural_failure ? first_failure
                  : saw_zero_wire_time
                      ? kZeroWireFailure
                      : "calibration: no rate produced separable levels";
    return cal;
  }
  std::sort(usable.begin(), usable.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  const std::size_t shortlist =
      opt.refine_candidates == 0
          ? 1
          : std::min(opt.refine_candidates, usable.size());
  const Candidate* pick = &usable.front();
  double pick_goodput = 0.0;
  if (opt.refine_candidates > 0) {
    for (std::size_t i = 0; i < shortlist; ++i) {
      const Candidate& c = usable[i];
      const TimingConfig timing =
          scale_timing(base.timing, opt.scales[c.index]);
      const double goodput =
          trial_goodput(base, timing, classifier_from(c.fit, alphabet), arq,
                        opt, c.index, &cal.elapsed);
      if (goodput > pick_goodput) {
        pick_goodput = goodput;
        pick = &c;
      }
    }
  }
  fill_from_candidate(cal, *pick, base, opt, alphabet, pick_goodput);
  return cal;
}

}  // namespace mes::proto
