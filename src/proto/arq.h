// ARQ framing: reliable delivery over a lossy MES channel.
//
// FEC (codec/fec) fixes isolated symbol flips, but a noise burst — a
// descheduled Spy, a merged hold, a fuzz spike — corrupts more bits per
// codeword than Hamming can correct, and the round protocol's only
// answer is to discard the whole round. This layer adds the classic
// missing piece: the payload is cut into sequence-numbered frames, each
// carrying a CRC-16 (codec/frame), and every frame is acknowledged over
// the *reverse direction of the same mechanism* (the Spy holds the lock
// / signals the event back). A frame that arrives corrupt is simply sent
// again, bounded by `max_rounds_per_frame`.
//
// The protocol logic is transport-agnostic: a Transport callback carries
// wire bits one way and returns what the far side measured. Tests drive
// it over a seeded binary-symmetric channel; proto/adaptive binds it to
// a live ExperimentEnv with a forward and a reverse endpoint.
//
// Frame layout (before FEC):
//   [ seq | last(1) | len | chunk (zero-padded) | crc16 ]
// Ack layout (before FEC):   [ next_expected_seq | crc16 ]
// Both are Hamming(7,4)-protected and interleaved when fec_depth > 0,
// so the CRC only has to catch what FEC could not repair.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "util/bitvec.h"

namespace mes::proto {

struct ArqOptions {
  // Payload bits per frame. Large frames amortize the header + ack
  // overhead (the wire efficiency is chunk / (frame + ack)); what caps
  // them is the survival curve — P(frame delivered) decays in frame
  // length times symbol error rate, and the calibration picks the rate
  // where that product still clears ~90%.
  std::size_t chunk_bits = 256;
  std::size_t seq_bits = 8;      // stop-and-wait: 2^8 frames per session
  std::size_t len_bits = 12;     // carries the last frame's short length
  std::size_t sync_bits = 8;     // per-round preamble (used by the link)
  std::size_t fec_depth = 7;     // interleave depth; 0 disables FEC
  std::size_t max_rounds_per_frame = 12;

  // Observer called after every data-frame round: (seq, round,
  // advanced). The drift-aware layer (proto/drift) watches failure runs
  // through it and recalibrates the link between rounds; empty = no-op.
  std::function<void(std::size_t seq, std::size_t round, bool advanced)>
      on_round;
};

// --- frame codec ------------------------------------------------------

// On-the-wire sizes (after FEC when enabled). Every data frame is the
// same size — the receiver knows how many symbols to expect a priori.
std::size_t frame_wire_bits(const ArqOptions& opt);
std::size_t ack_wire_bits(const ArqOptions& opt);

// Number of data frames a payload splits into (>= 1; an empty payload
// still sends one empty `last` frame so the receiver sees the end).
std::size_t frame_count(std::size_t payload_bits, const ArqOptions& opt);

BitVec encode_frame(std::size_t seq, bool last, const BitVec& chunk,
                    const ArqOptions& opt);

struct DecodedFrame {
  bool crc_ok = false;
  std::size_t seq = 0;
  bool last = false;
  BitVec chunk;  // truncated to the transmitted length
};
DecodedFrame decode_frame(const BitVec& wire, const ArqOptions& opt);

BitVec encode_ack(std::size_t next_seq, const ArqOptions& opt);

struct DecodedAck {
  bool crc_ok = false;
  std::size_t next_seq = 0;
};
DecodedAck decode_ack(const BitVec& wire, const ArqOptions& opt);

// Selective ack for burst waves (proto/bond): one reverse round per
// wave acknowledges every frame slot of that wave's burst at once.
// Layout (before FEC): [ wave mod 2^8 | ok bitmap (`slots` bits) | crc16 ].
// The wave echo lets the sender discard a stale or misaligned sack; a
// garbled sack (CRC fail) simply retransmits the whole burst.
std::size_t sack_wire_bits(std::size_t slots, const ArqOptions& opt);

BitVec encode_sack(std::size_t wave, const std::vector<int>& ok_slots,
                   const ArqOptions& opt);

struct DecodedSack {
  bool crc_ok = false;
  std::size_t wave = 0;
  std::vector<int> ok;  // one flag per slot
};
DecodedSack decode_sack(const BitVec& wire, std::size_t slots,
                        const ArqOptions& opt);

// --- session ----------------------------------------------------------

// Carries `wire` bits across the channel (reverse = the ack direction)
// and returns what the far side received, bit-for-bit as measured.
// std::nullopt = structural failure (setup/deadlock), aborts the session.
using Transport =
    std::function<std::optional<BitVec>(const BitVec& wire, bool reverse)>;

struct ArqStats {
  std::size_t frames = 0;       // distinct frames delivered
  std::size_t frame_sends = 0;  // forward transmissions incl. retransmits
  std::size_t retransmits = 0;
  std::size_t ack_sends = 0;
};

// Runs the stop-and-wait session: every chunk is (re)sent until the
// receiver's cumulative ack covers it. Returns the reassembled payload
// (bit-exact unless a CRC collision slipped through), or std::nullopt
// when a frame exhausted max_rounds_per_frame or the transport failed.
std::optional<BitVec> arq_deliver(const BitVec& payload,
                                  const Transport& transport,
                                  const ArqOptions& opt,
                                  ArqStats* stats = nullptr);

}  // namespace mes::proto
