// Bonded multi-pair link: MIMO striping of one payload across N
// Trojan/Spy sub-channels inside a single simulation.
//
// MES-Attacks §V.C.1 argues an attacker controlling many pairs scales
// transfer rate roughly linearly; analysis::run_multi_pair measures
// that for N *independent* raw rounds, but no layer delivered one
// payload faster. This one does. The bond:
//
//  * calibrates every sub-channel independently (proto/calibrate): own
//    rate, own classifier, own goodput estimate — sub-channels may mix
//    mechanisms (e.g. 4x event + 2x flock in one simulation);
//  * attaches each calibrated sub-channel as a forward + reverse
//    endpoint pair on ONE exec::ExperimentEnv, so all stripes share a
//    simulated clock and noise regime and genuinely overlap in time;
//  * cuts the payload into sequence-numbered stripes (ARQ frames,
//    proto/arq) and schedules them in lockstep *waves*: each wave every
//    live sub-channel carries a burst of stripes sized by its
//    calibrated-goodput weight, so slow links don't stall fast ones;
//  * acknowledges each wave with a per-slot selective ack (sack) over
//    the sub-channel's reverse direction; unacked stripes re-queue;
//  * drains a sub-channel whose delivery collapses mid-transfer
//    (`degrade_after` consecutive dead waves) and re-queues its stripes
//    on the survivors — the transfer completes at reduced goodput
//    instead of stalling behind a dead link.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/runner.h"
#include "proto/arq.h"
#include "proto/calibrate.h"

namespace mes::proto {

// One sub-channel of the bond. Unset fields fall back to the base
// config's mechanism / the paper Timeset for (mechanism, scenario).
struct BondChannelSpec {
  Mechanism mechanism = Mechanism::event;
  std::optional<TimingConfig> timing;
};

struct BondOptions {
  ArqOptions arq;                  // stripe geometry, shared by all
  CalibrationOptions calibration;  // per-sub-channel rate search
  // Stripes per sub-channel per wave: burst_i = clamp(round(w_i/w_min),
  // 1, max_burst), w from calibrated goodput — the striping scheduler's
  // weight. 1 disables bursting (pure one-stripe-per-wave lockstep).
  std::size_t max_burst = 4;
  // Consecutive waves with zero delivered stripes before a sub-channel
  // is declared degraded and drained (its pending stripes re-queue on
  // the survivors). Never drains the last live sub-channel.
  std::size_t degrade_after = 3;
  // Global wave bound; exhausting it aborts the transfer (the bonded
  // analogue of ArqOptions::max_rounds_per_frame).
  std::size_t max_waves = 96;
  // Fault injection for tests and the degraded-mode bench: when set and
  // true for (channel, wave), that sub-channel's received bits (both
  // directions) are replaced by seeded noise from that wave on — the
  // observable signature of a calibration margin collapsing mid-run.
  std::function<bool(std::size_t channel, std::size_t wave)> fault;
};

struct BondChannelReport {
  Mechanism mechanism = Mechanism::event;
  bool calibrated = false;
  std::string error;              // setup/calibration failure, when any
  TimingConfig timing;            // the calibrated rate it ran at
  double margin = 0.0;            // calibrated level margin
  double weight_bps = 0.0;        // scheduler weight (calibrated goodput)
  std::size_t burst = 0;          // stripes per wave the scheduler grants
  std::size_t stripes_delivered = 0;
  std::size_t stripe_sends = 0;   // forward slots incl. retransmits
  bool degraded = false;          // drained mid-transfer
};

struct BondReport {
  bool ok = false;         // >= 1 sub-channel came up and the bond ran
  bool delivered = false;  // payload reassembled bit-exactly at the Spy
  std::string failure;

  BitVec received;
  std::size_t pairs_requested = 0;
  std::size_t pairs_live = 0;  // calibrated + set up, entered the bond

  std::size_t stripes = 0;       // frame_count(payload)
  std::size_t stripe_sends = 0;  // forward slots incl. retransmits
  std::size_t retransmits = 0;
  std::size_t rebalances = 0;    // stripes re-queued off drained channels
  std::size_t waves = 0;

  Duration elapsed = Duration::zero();           // transfer only
  Duration calibration_time = Duration::zero();  // summed over channels
  double aggregate_goodput_bps = 0.0;  // payload bits / elapsed

  std::vector<BondChannelReport> channels;  // spec order
};

// Runs the bonded transfer: calibrate every spec, bond the survivors,
// stripe `payload` across them. `base` carries the shared scenario,
// noise regime, seed and ARQ-independent knobs.
BondReport bond_deliver(const ExperimentConfig& base, const BitVec& payload,
                        const std::vector<BondChannelSpec>& specs,
                        const BondOptions& opt = {});

// N homogeneous sub-channels of base.mechanism at the base timing.
BondReport bond_deliver(const ExperimentConfig& base, const BitVec& payload,
                        std::size_t pairs, const BondOptions& opt = {});

// ChannelReport adapter used by exec::run_cell and the CLI: goodput
// semantics match run_adaptive_transmission (throughput_bps is the
// aggregate goodput, calibration time reported separately in proto->).
// `out`, when non-null, receives the full bond verdict.
ChannelReport run_bonded_transmission(const ExperimentConfig& base,
                                      const BitVec& payload,
                                      std::size_t pairs,
                                      const BondOptions& opt = {},
                                      BondReport* out = nullptr);

}  // namespace mes::proto
