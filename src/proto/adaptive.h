// The adaptive transmission drivers: codec -> proto -> channel.
//
// run_arq_transmission runs the ARQ session (proto/arq) over one live
// ExperimentEnv at the configured fixed timing: a forward endpoint for
// data frames and a reverse endpoint — same two processes, roles
// swapped — for the acks. run_adaptive_transmission calibrates first
// (proto/calibrate) and runs the same session at the chosen rate with
// the measured classifier.
//
// Both return a ChannelReport so campaign cells, the CLI and the
// benches aggregate protocol runs exactly like raw rounds. Applications
// reach these drivers through the public façade (api/session.h), whose
// Session::transfer is the one dispatch point over fixed / ARQ /
// adaptive / bonded modes. Semantics that differ from run_transmission:
//  * received_payload is the reassembled (post-ARQ) payload, so ber is
//    the *residual* error rate — 0 on any delivered session;
//  * throughput_bps is goodput: payload bits over the full session
//    (frames, retransmits and acks included; calibration excluded and
//    reported separately in report.proto->calibration_time);
//  * sync_ok means the session delivered within its retransmit bounds.
#pragma once

#include "core/runner.h"
#include "proto/arq.h"
#include "proto/calibrate.h"
#include "proto/drift.h"

namespace mes::proto {

struct AdaptiveOptions {
  CalibrationOptions calibration;
  ArqOptions arq;
  // Mid-transfer drift detection + online recalibration (proto/drift).
  // On by default: under stationary noise it never triggers, under a
  // regime change it is what keeps the session alive.
  DriftOptions drift;
};

// ARQ at the configured (fixed) timing; cfg.timing is used as-is.
ChannelReport run_arq_transmission(const ExperimentConfig& cfg,
                                   const BitVec& payload,
                                   const ArqOptions& opt = {});

// Calibrate, then ARQ at the calibrated rate. The returned
// report.timing is the chosen TimingConfig. `cal_out`, when non-null,
// receives the full calibration verdict.
ChannelReport run_adaptive_transmission(const ExperimentConfig& cfg,
                                        const BitVec& payload,
                                        const AdaptiveOptions& opt = {},
                                        Calibration* cal_out = nullptr);

// Adaptive transfer that warm-starts calibration from a published pick
// (proto/cal_cache.h) instead of the full grid sweep; everything after
// calibration is identical to run_adaptive_transmission. Falls back to
// the full sweep internally when the confirm probe disagrees, so the
// result is always a complete calibration verdict.
ChannelReport run_adaptive_transmission_warm(const ExperimentConfig& cfg,
                                             const BitVec& payload,
                                             const AdaptiveOptions& opt,
                                             const CalibrationPick& hint,
                                             Calibration* cal_out = nullptr);

// Protocol-mode dispatch at the proto layer: fixed -> run_transmission,
// arq/adaptive -> the drivers above, framing ARQ rounds with the
// config's sync_bits (the same preamble policy as the façade).
// Production callers go through api::Session::transfer, which adds the
// full spec-driven option derivation on top; this stays as the
// proto-local building block.
ChannelReport run_with_protocol(const ExperimentConfig& cfg,
                                const BitVec& payload);

}  // namespace mes::proto
