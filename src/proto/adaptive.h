// The adaptive transmission drivers: codec -> proto -> channel.
//
// run_arq_transmission runs the ARQ session (proto/arq) over one live
// ExperimentEnv at the configured fixed timing: a forward endpoint for
// data frames and a reverse endpoint — same two processes, roles
// swapped — for the acks. run_adaptive_transmission calibrates first
// (proto/calibrate) and runs the same session at the chosen rate with
// the measured classifier.
//
// Both return a ChannelReport so campaign cells, the CLI and the
// benches aggregate protocol runs exactly like raw rounds. Semantics
// that differ from run_transmission:
//  * received_payload is the reassembled (post-ARQ) payload, so ber is
//    the *residual* error rate — 0 on any delivered session;
//  * throughput_bps is goodput: payload bits over the full session
//    (frames, retransmits and acks included; calibration excluded and
//    reported separately in report.proto->calibration_time);
//  * sync_ok means the session delivered within its retransmit bounds.
#pragma once

#include "core/runner.h"
#include "proto/arq.h"
#include "proto/calibrate.h"
#include "proto/drift.h"

namespace mes::proto {

struct AdaptiveOptions {
  CalibrationOptions calibration;
  ArqOptions arq;
  // Mid-transfer drift detection + online recalibration (proto/drift).
  // On by default: under stationary noise it never triggers, under a
  // regime change it is what keeps the session alive.
  DriftOptions drift;
};

// ARQ at the configured (fixed) timing; cfg.timing is used as-is.
ChannelReport run_arq_transmission(const ExperimentConfig& cfg,
                                   const BitVec& payload,
                                   const ArqOptions& opt = {});

// Calibrate, then ARQ at the calibrated rate. The returned
// report.timing is the chosen TimingConfig. `cal_out`, when non-null,
// receives the full calibration verdict.
ChannelReport run_adaptive_transmission(const ExperimentConfig& cfg,
                                        const BitVec& payload,
                                        const AdaptiveOptions& opt = {},
                                        Calibration* cal_out = nullptr);

// Protocol-mode dispatch used by exec::run_cell and the CLI: fixed ->
// run_transmission, arq/adaptive -> the drivers above.
ChannelReport run_with_protocol(const ExperimentConfig& cfg,
                                const BitVec& payload);

}  // namespace mes::proto
