#include "proto/adaptive.h"

#include <algorithm>
#include <memory>

#include "exec/env.h"
#include "proto/drift.h"
#include "proto/link.h"

namespace mes::proto {

namespace {

// `drift` non-null = the adaptive path: the session carries a
// DriftMonitor that watches for calibration-stale failure runs and
// recalibrates the live link online. `cal` shapes the re-probe scoring
// (frame geometry); both are ignored for plain ARQ.
ChannelReport run_session(const ExperimentConfig& cfg, const BitVec& payload,
                          const TimingConfig& timing,
                          const codec::LatencyClassifier& classifier,
                          const ArqOptions& opt, ProtocolMode mode,
                          const DriftOptions* drift = nullptr,
                          const CalibrationOptions* cal = nullptr)
{
  ChannelReport rep;
  rep.mechanism = cfg.mechanism;
  rep.scenario = cfg.scenario;
  rep.scenario_name = cfg.scenario_name;
  rep.timing = timing;
  rep.sent_payload = payload;

  if (std::string err = exec::validate_config(cfg); !err.empty()) {
    rep.failure_reason = err;
    return rep;
  }

  ExperimentConfig link_cfg = cfg;
  link_cfg.timing = timing;
  Link link{link_cfg, timing, classifier, opt.sync_bits};
  if (!link.error().empty()) {
    rep.failure_reason = link.error();
    return rep;
  }

  // The drift monitor rides the session through the on_round hook;
  // cfg.timing is the Timeset anchor its re-probe scales multiply.
  std::unique_ptr<DriftMonitor> monitor;
  ArqOptions arq = opt;
  if (drift != nullptr) {
    monitor = std::make_unique<DriftMonitor>(
        link, cfg, cfg.timing, payload.size(), *drift,
        cal != nullptr ? *cal : CalibrationOptions{}, opt);
    arq.on_round = [&monitor](std::size_t seq, std::size_t round,
                              bool advanced) {
      monitor->on_round(seq, round, advanced);
    };
  }

  ArqStats stats;
  const auto delivered =
      arq_deliver(payload, link.transport(), arq, &stats);
  if (monitor) monitor->finish();

  if (!link.error().empty()) {
    rep.failure_reason = link.error();
    return rep;
  }

  rep.ok = true;
  rep.proto = ChannelReport::ProtocolStats{};
  rep.proto->mode = mode;
  rep.proto->frames = stats.frames;
  rep.proto->frame_sends = stats.frame_sends;
  rep.proto->retransmits = stats.retransmits;
  if (monitor) {
    rep.proto->drift_events = monitor->stats().drift_events;
    rep.proto->recalibrations = monitor->stats().recalibrations;
    rep.proto->recovered_goodput_bps = monitor->stats().recovered_goodput_bps;
    rep.proto->recovery_spent = monitor->stats().recovery_spent;
    rep.proto->phases = monitor->stats().phases;
    // What the link runs at *now* — after any online recalibration —
    // is the session's effective rate.
    rep.timing = link.timing();
  }

  rep.elapsed = link.elapsed();
  if (delivered) {
    rep.sync_ok = true;
    rep.received_payload = *delivered;
    rep.ber = payload.empty()
                  ? 0.0
                  : static_cast<double>(
                        payload.hamming_distance(*delivered)) /
                        static_cast<double>(payload.size());
    if (rep.elapsed > Duration::zero()) {
      rep.throughput_bps =
          static_cast<double>(payload.size()) / rep.elapsed.to_sec();
    }
  } else {
    // Retransmit bound exhausted: the session aborted undelivered.
    rep.sync_ok = false;
    rep.ber = 1.0;
    rep.failure_reason = "ARQ: retransmit bound exhausted";
  }
  return rep;
}

// Shared body of the adaptive drivers; `hint` non-null selects the
// warm-start calibration (proto/cal_cache.h).
ChannelReport run_adaptive_impl(const ExperimentConfig& cfg,
                                const BitVec& payload,
                                const AdaptiveOptions& opt,
                                Calibration* cal_out,
                                const CalibrationPick* hint)
{
  // The rate pick optimizes delivered frames/sec for the actual frame
  // geometry this session will use.
  AdaptiveOptions tuned = opt;
  const std::size_t width = link_symbol_width(cfg.mechanism, cfg.timing);
  tuned.calibration.frame_symbols =
      (frame_wire_bits(opt.arq) + opt.arq.sync_bits + width - 1) / width;
  tuned.calibration.fec_single_correcting = opt.arq.fec_depth > 0;

  const Calibration cal =
      hint != nullptr
          ? calibrate_link_warm(cfg, tuned.calibration, opt.arq, *hint)
          : calibrate_link(cfg, tuned.calibration, opt.arq);
  if (cal_out != nullptr) *cal_out = cal;
  if (!cal.ok) {
    ChannelReport rep;
    rep.mechanism = cfg.mechanism;
    rep.scenario = cfg.scenario;
    rep.scenario_name = cfg.scenario_name;
    rep.timing = cfg.timing;
    rep.sent_payload = payload;
    rep.failure_reason = cal.failure;
    return rep;
  }
  ChannelReport rep =
      run_session(cfg, payload, cal.timing, cal.classifier, opt.arq,
                  ProtocolMode::adaptive, &tuned.drift, &tuned.calibration);
  if (rep.proto) {
    rep.proto->calibration_margin = cal.margin;
    rep.proto->calibration_time = cal.elapsed;
    rep.proto->calibration_probes = cal.probes_sent;
    rep.proto->calibration_source = cal.source;
  }
  return rep;
}

}  // namespace

ChannelReport run_arq_transmission(const ExperimentConfig& cfg,
                                   const BitVec& payload,
                                   const ArqOptions& opt)
{
  // The a-priori classifier, like a Spy that skipped calibration.
  return run_session(cfg, payload, cfg.timing,
                     exec::initial_classifier_for(cfg), opt,
                     ProtocolMode::arq);
}

ChannelReport run_adaptive_transmission(const ExperimentConfig& cfg,
                                        const BitVec& payload,
                                        const AdaptiveOptions& opt,
                                        Calibration* cal_out)
{
  return run_adaptive_impl(cfg, payload, opt, cal_out, nullptr);
}

ChannelReport run_adaptive_transmission_warm(const ExperimentConfig& cfg,
                                             const BitVec& payload,
                                             const AdaptiveOptions& opt,
                                             const CalibrationPick& hint,
                                             Calibration* cal_out)
{
  return run_adaptive_impl(cfg, payload, opt, cal_out, &hint);
}

ChannelReport run_with_protocol(const ExperimentConfig& cfg,
                                const BitVec& payload)
{
  // Same preamble policy as the façade (api::Session::transfer): the
  // ARQ rounds frame with the config's sync_bits, not the ArqOptions
  // default — the two dispatch points must not diverge.
  ArqOptions arq;
  arq.sync_bits = cfg.sync_bits;
  switch (cfg.protocol) {
    case ProtocolMode::fixed: return run_transmission(cfg, payload);
    case ProtocolMode::arq: return run_arq_transmission(cfg, payload, arq);
    case ProtocolMode::adaptive: {
      AdaptiveOptions opt;
      opt.arq = arq;
      return run_adaptive_transmission(cfg, payload, opt);
    }
  }
  return run_transmission(cfg, payload);
}

}  // namespace mes::proto
