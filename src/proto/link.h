// One live, bidirectional, framed link over a single simulator stack.
//
// Binds the ARQ Transport (proto/arq) to an exec::ExperimentEnv: a
// forward endpoint for data frames and a reverse endpoint — the same
// two processes with the protocol roles swapped — for the acks. Every
// transfer is one framed round (preamble + wire bits) run to
// quiescence, so a session is a strict alternation of forward and
// reverse phases on one simulated clock, through one persistent noise
// regime. Used by proto/adaptive for payload sessions and by
// proto/calibrate for trial frames during rate refinement.
#pragma once

#include <optional>
#include <string>

#include "codec/symbols.h"
#include "core/runner.h"
#include "exec/env.h"
#include "proto/arq.h"

namespace mes::proto {

class Link {
 public:
  // `timing` + `classifier` override the config's own (they carry the
  // calibration outcome); `sync_bits` is rounded up to a symbol-width
  // multiple.
  Link(const ExperimentConfig& cfg, const TimingConfig& timing,
       const codec::LatencyClassifier& classifier, std::size_t sync_bits);

  // Non-empty when endpoint setup failed (topology verdicts) or a
  // transfer died structurally; the session must abort.
  const std::string& error() const { return error_; }

  // Total simulated time this link's stack has consumed.
  Duration elapsed();

  // Carries `wire` bits one way and returns what the far side decoded
  // (preamble stripped, truncated to the sent size). std::nullopt =
  // structural failure; garbled rounds still return bits — the caller's
  // CRC judges them.
  std::optional<BitVec> transfer(const BitVec& wire, bool reverse);

  // The same, as an ARQ Transport.
  Transport transport();

 private:
  exec::ExperimentEnv env_;
  std::size_t width_;
  std::size_t sync_bits_;
  exec::ExperimentEnv::Endpoint& forward_;
  exec::ExperimentEnv::Endpoint* reverse_ = nullptr;
  std::string error_;
};

}  // namespace mes::proto
