// One live, bidirectional, framed link over a simulator stack.
//
// Binds the ARQ Transport (proto/arq) to an exec::ExperimentEnv: a
// forward endpoint for data frames and a reverse endpoint — the same
// two processes with the protocol roles swapped — for the acks. Every
// transfer is one framed round (preamble + wire bits) run to
// quiescence, so a session is a strict alternation of forward and
// reverse phases on one simulated clock, through one persistent noise
// regime. Used by proto/adaptive for payload sessions and by
// proto/calibrate for trial frames during rate refinement.
//
// A Link either owns its whole env (the single-pair session mode) or
// attaches a new endpoint pair to an env it shares with other links
// (the bonded mode, proto/bond): many links post rounds, the owner
// drains the simulator once, and each link collects what its Spy
// measured — so N sub-channels genuinely overlap on one clock.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "codec/symbols.h"
#include "core/runner.h"
#include "exec/env.h"
#include "proto/arq.h"

namespace mes::proto {

// Wire symbol width of a (mechanism, timing) pair: cooperation
// channels carry timing.symbol_bits-wide symbols, contention channels
// are always binary. The one width rule every proto layer shares.
std::size_t link_symbol_width(Mechanism m, const TimingConfig& timing);

class Link {
 public:
  // Owns a fresh env built from `cfg`. `timing` + `classifier` override
  // the config's own (they carry the calibration outcome); `sync_bits`
  // is rounded up to a symbol-width multiple.
  Link(const ExperimentConfig& cfg, const TimingConfig& timing,
       const codec::LatencyClassifier& classifier, std::size_t sync_bits);

  // Attaches to `env` as one more pair (plus its reverse pair), with a
  // per-pair mechanism/timing override. The caller keeps driving the
  // simulator: post(), then env.run(), then collect().
  Link(exec::ExperimentEnv& env, const exec::PairSpec& spec,
       const TimingConfig& timing, const codec::LatencyClassifier& classifier,
       std::size_t sync_bits);

  // Non-empty when endpoint setup failed (topology verdicts) or a
  // transfer died structurally; the session must abort.
  const std::string& error() const { return error_; }

  // Total simulated time this link's stack has consumed.
  Duration elapsed();

  // The stack under the link (noise regime introspection, phase ids).
  exec::ExperimentEnv& env() { return *env_; }

  // The timing / classifier the endpoints currently run at.
  const TimingConfig& timing() const;
  const codec::LatencyClassifier& classifier() const;

  // Re-points both endpoints at a new timing + classifier without
  // rebuilding the stack — the online-recalibration hook (proto/drift).
  // The symbol width must not change (scale_timing never does).
  void retune(const TimingConfig& timing,
              const codec::LatencyClassifier& classifier);

  // One known-pattern round through the live link at the current
  // tuning, returning the raw Spy measurements for an online refit.
  // Owning mode only, like transfer().
  struct ProbeResult {
    bool ok = false;
    std::vector<std::size_t> tx_symbols;  // preamble included
    std::vector<Duration> latencies;
    Duration elapsed = Duration::zero();  // sim time the probe consumed
  };
  ProbeResult probe(const BitVec& pattern);

  // Carries `wire` bits one way and returns what the far side decoded
  // (preamble stripped, truncated to the sent size). std::nullopt =
  // structural failure; garbled rounds still return bits — the caller's
  // CRC judges them. Equivalent to post + env.run + collect; only valid
  // on an owning link (a shared env must be drained by its owner).
  std::optional<BitVec> transfer(const BitVec& wire, bool reverse);

  // Bonded-mode half-round: encodes + spawns one direction's round on
  // the (shared) simulator without running it. Returns false when the
  // link is already dead or a round is still pending collection.
  bool post(const BitVec& wire, bool reverse);

  // Decodes the posted round after the caller drained the simulator.
  // std::nullopt = nothing pending / link dead.
  std::optional<BitVec> collect();

  // The same, as an ARQ Transport (owning mode only).
  Transport transport();

 private:
  std::unique_ptr<exec::ExperimentEnv> owned_env_;
  exec::ExperimentEnv* env_;
  std::size_t width_;
  std::size_t sync_bits_;
  exec::ExperimentEnv::Endpoint* forward_ = nullptr;
  exec::ExperimentEnv::Endpoint* reverse_ = nullptr;
  std::string error_;

  // The round in flight between post() and collect().
  bool pending_ = false;
  bool pending_reverse_ = false;
  std::size_t pending_bits_ = 0;
};

}  // namespace mes::proto
