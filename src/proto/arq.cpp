#include "proto/arq.h"

#include <algorithm>

#include "codec/fec.h"
#include "codec/frame.h"

namespace mes::proto {

namespace {

std::size_t body_bits(const ArqOptions& opt)
{
  return opt.seq_bits + 1 + opt.len_bits + opt.chunk_bits + codec::kCrcBits;
}

std::size_t ack_body_bits(const ArqOptions& opt)
{
  return opt.seq_bits + codec::kCrcBits;
}

// fec_protect pads its input to a nibble boundary, encodes 7 wire bits
// per nibble, then pads the coded stream up to an interleaver-depth
// multiple — the wire size must match that exactly or the recovery
// side's deinterleave rejects the slice.
std::size_t fec_wire_bits(std::size_t raw, const ArqOptions& opt)
{
  if (opt.fec_depth == 0) return raw;
  std::size_t coded = (raw + 3) / 4 * codec::Hamming74::code_bits_per_block;
  if (opt.fec_depth > 1 && coded % opt.fec_depth != 0) {
    coded += opt.fec_depth - coded % opt.fec_depth;
  }
  return coded;
}

void append_field(BitVec& out, std::size_t value, std::size_t bits)
{
  for (std::size_t i = 0; i < bits; ++i) {
    out.push_back((value >> (bits - 1 - i)) & 1);
  }
}

std::size_t read_field(const BitVec& bits, std::size_t pos, std::size_t n)
{
  std::size_t value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    value = (value << 1) | static_cast<std::size_t>(bits[pos + i]);
  }
  return value;
}

BitVec protect(const BitVec& body, const ArqOptions& opt)
{
  if (opt.fec_depth == 0) return body;
  return codec::fec_protect(body, opt.fec_depth);
}

// Recovers the pre-FEC body; nullopt when the wire size cannot carry it.
std::optional<BitVec> recover(const BitVec& wire, std::size_t raw_bits,
                              const ArqOptions& opt)
{
  if (opt.fec_depth == 0) {
    if (wire.size() < raw_bits) return std::nullopt;
    return wire.slice(0, raw_bits);
  }
  if (wire.size() < fec_wire_bits(raw_bits, opt)) return std::nullopt;
  const BitVec coded = wire.slice(0, fec_wire_bits(raw_bits, opt));
  return codec::fec_recover(coded, opt.fec_depth).data.slice(0, raw_bits);
}

}  // namespace

std::size_t frame_wire_bits(const ArqOptions& opt)
{
  return fec_wire_bits(body_bits(opt), opt);
}

std::size_t ack_wire_bits(const ArqOptions& opt)
{
  return fec_wire_bits(ack_body_bits(opt), opt);
}

std::size_t frame_count(std::size_t payload_bits, const ArqOptions& opt)
{
  if (payload_bits == 0) return 1;
  return (payload_bits + opt.chunk_bits - 1) / opt.chunk_bits;
}

BitVec encode_frame(std::size_t seq, bool last, const BitVec& chunk,
                    const ArqOptions& opt)
{
  BitVec body;
  append_field(body, seq, opt.seq_bits);
  body.push_back(last ? 1 : 0);
  append_field(body, chunk.size(), opt.len_bits);
  body.append(chunk);
  for (std::size_t i = chunk.size(); i < opt.chunk_bits; ++i) {
    body.push_back(0);
  }
  return protect(codec::append_crc(body), opt);
}

DecodedFrame decode_frame(const BitVec& wire, const ArqOptions& opt)
{
  DecodedFrame out;
  const auto body = recover(wire, body_bits(opt), opt);
  if (!body) return out;
  const auto checked = codec::check_and_strip_crc(*body);
  if (!checked) return out;
  out.seq = read_field(*checked, 0, opt.seq_bits);
  out.last = (*checked)[opt.seq_bits] != 0;
  const std::size_t len = read_field(*checked, opt.seq_bits + 1, opt.len_bits);
  if (len > opt.chunk_bits) return out;  // CRC collision on a bad length
  out.chunk = checked->slice(opt.seq_bits + 1 + opt.len_bits, len);
  out.crc_ok = true;
  return out;
}

BitVec encode_ack(std::size_t next_seq, const ArqOptions& opt)
{
  BitVec body;
  append_field(body, next_seq, opt.seq_bits);
  return protect(codec::append_crc(body), opt);
}

DecodedAck decode_ack(const BitVec& wire, const ArqOptions& opt)
{
  DecodedAck out;
  const auto body = recover(wire, ack_body_bits(opt), opt);
  if (!body) return out;
  const auto checked = codec::check_and_strip_crc(*body);
  if (!checked) return out;
  out.next_seq = read_field(*checked, 0, opt.seq_bits);
  out.crc_ok = true;
  return out;
}

namespace {

constexpr std::size_t kWaveBits = 8;

std::size_t sack_body_bits(std::size_t slots)
{
  return kWaveBits + slots + codec::kCrcBits;
}

}  // namespace

std::size_t sack_wire_bits(std::size_t slots, const ArqOptions& opt)
{
  return fec_wire_bits(sack_body_bits(slots), opt);
}

BitVec encode_sack(std::size_t wave, const std::vector<int>& ok_slots,
                   const ArqOptions& opt)
{
  BitVec body;
  append_field(body, wave & ((std::size_t{1} << kWaveBits) - 1), kWaveBits);
  for (const int ok : ok_slots) body.push_back(ok ? 1 : 0);
  return protect(codec::append_crc(body), opt);
}

DecodedSack decode_sack(const BitVec& wire, std::size_t slots,
                        const ArqOptions& opt)
{
  DecodedSack out;
  const auto body = recover(wire, sack_body_bits(slots), opt);
  if (!body) return out;
  const auto checked = codec::check_and_strip_crc(*body);
  if (!checked) return out;
  out.wave = read_field(*checked, 0, kWaveBits);
  out.ok.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    out.ok.push_back((*checked)[kWaveBits + i]);
  }
  out.crc_ok = true;
  return out;
}

std::optional<BitVec> arq_deliver(const BitVec& payload,
                                  const Transport& transport,
                                  const ArqOptions& opt, ArqStats* stats)
{
  const std::size_t seq_mod = std::size_t{1} << opt.seq_bits;
  const std::size_t n_frames = frame_count(payload.size(), opt);

  ArqStats local;
  ArqStats& st = stats != nullptr ? *stats : local;
  st = ArqStats{};

  BitVec assembled;              // the receiver's reassembly buffer
  std::size_t rx_expected = 0;   // receiver: next in-order seq (mod)

  for (std::size_t i = 0; i < n_frames; ++i) {
    const std::size_t seq = i % seq_mod;
    const bool last = i + 1 == n_frames;
    const std::size_t offset = i * opt.chunk_bits;
    const BitVec chunk = payload.slice(
        offset, std::min(opt.chunk_bits, payload.size() - offset));
    const BitVec wire = encode_frame(seq, last, chunk, opt);

    bool advanced = false;
    for (std::size_t round = 0; round < opt.max_rounds_per_frame; ++round) {
      ++st.frame_sends;
      if (round > 0) ++st.retransmits;
      const auto rx = transport(wire, /*reverse=*/false);
      if (!rx) return std::nullopt;

      // Receiver side: deliver in-order CRC-clean frames, re-ack
      // duplicates (a lost ack makes the sender resend a frame the
      // receiver already holds), drop everything else.
      const DecodedFrame frame = decode_frame(*rx, opt);
      if (frame.crc_ok && frame.seq == rx_expected) {
        assembled.append(frame.chunk);
        rx_expected = (rx_expected + 1) % seq_mod;
      }

      ++st.ack_sends;
      const auto ack_rx = transport(encode_ack(rx_expected, opt),
                                    /*reverse=*/true);
      if (!ack_rx) return std::nullopt;

      // Sender side: a cumulative ack covering this frame advances the
      // window; anything else (garbled ack, stale ack) retransmits.
      const DecodedAck ack = decode_ack(*ack_rx, opt);
      const bool round_ok =
          ack.crc_ok && ack.next_seq == (seq + 1) % seq_mod;
      if (opt.on_round) opt.on_round(seq, round, round_ok);
      if (round_ok) {
        advanced = true;
        break;
      }
    }
    if (!advanced) return std::nullopt;
    ++st.frames;
  }
  return assembled;
}

}  // namespace mes::proto
