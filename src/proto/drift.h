// Calibration-drift detection and online recalibration.
//
// calibrate_link measures the noise regime once, up front. On a
// non-stationary host (sim/noise_process) that calibration goes stale
// the moment the regime shifts: the chosen rate starts shedding frames
// and the session would grind through its retransmit budget and abort.
// This layer watches the ARQ session for exactly that signature — a run
// of consecutive failed rounds on one frame, where the calibrated rate
// predicted ~90% frame survival — and, when it fires, re-probes the
// *live* link across the rate grid (Link::probe, no stack rebuild, the
// same simulated clock and noise timeline) and re-tunes the endpoints
// to the best surviving rate. Transfers ride through a regime change
// instead of dying with their stale Timeset.
//
// It also keeps per-noise-phase accounting (frames, retransmits,
// goodput per NoiseModel phase id), which is how the scenario ablation
// bench shows the recovery quantitatively.
#pragma once

#include <cstddef>
#include <vector>

#include "core/metrics.h"
#include "proto/calibrate.h"
#include "proto/link.h"

namespace mes::proto {

struct DriftOptions {
  bool enabled = true;
  // A frame failing this many *consecutive* rounds flags drift. The
  // calibrated pick targets high frame survival, so three straight
  // losses is ~10^-3 under the measured regime — but routine after a
  // shift.
  std::size_t trigger_rounds = 3;
  // Online re-probe: symbols per candidate rate. Shorter than the
  // offline calibration (the session is bleeding time while stale).
  std::size_t probe_symbols = 192;
  std::size_t max_recalibrations = 8;
  double min_margin = 1.0;
  double error_ucb_sigma = 0.5;
  // The online grid reaches past the offline one (2.8x / 4x): a hostile
  // regime can demand rates slower than any the first calibration
  // considered.
  std::vector<double> scales = {0.25, 0.35, 0.5, 0.7,
                                1.0,  1.4,  2.0, 2.8, 4.0};
};

struct DriftStats {
  std::size_t drift_events = 0;     // failure runs that flagged drift
  std::size_t recalibrations = 0;   // re-probes that changed the tuning
  std::vector<ChannelReport::ProtocolStats::PhaseStats> phases;
  // Steady-state rate after the *last* recalibration (payload bits
  // delivered after it, over the time since it). 0 when the session
  // never recalibrated. Separates "what the link recovered to" from
  // the detection/re-probe transient that phase goodput averages in.
  double recovered_goodput_bps = 0.0;
  Duration recovery_spent = Duration::zero();  // stale rounds + probes
};

// Watches one ARQ session over `link`. Wire `on_round` into the
// session's ArqOptions, call finish() when the session ends, then read
// stats(). `anchor` is the Timeset the rate scales multiply; `cal` the
// frame geometry the rate pick optimizes (frame_symbols, FEC).
class DriftMonitor {
 public:
  DriftMonitor(Link& link, const ExperimentConfig& base,
               const TimingConfig& anchor, std::size_t payload_bits,
               const DriftOptions& opt, const CalibrationOptions& cal,
               const ArqOptions& arq);

  // The ArqOptions::on_round callback body.
  void on_round(std::size_t seq, std::size_t round, bool advanced);

  // Closes the open phase accounting (call once, after delivery).
  void finish();

  const DriftStats& stats() const { return stats_; }

 private:
  void account_round(bool advanced);
  void recalibrate();
  ChannelReport::ProtocolStats::PhaseStats& phase_entry(std::size_t phase);
  ChannelReport::ProtocolStats::PhaseStats& attribute_elapsed();

  Link& link_;
  const ExperimentConfig base_;
  const TimingConfig anchor_;
  DriftOptions opt_;
  CalibrationOptions cal_;
  std::size_t chunk_bits_;
  std::size_t payload_bits_;
  std::size_t width_;

  Rng probe_rng_;
  std::size_t consecutive_failures_ = 0;
  std::size_t frames_delivered_ = 0;
  std::size_t delivered_bits_ = 0;
  Duration accounted_ = Duration::zero();  // link time already attributed
  std::vector<std::size_t> phase_bits_;    // delivered bits per entry
  Duration last_recal_at_ = Duration::zero();
  std::size_t bits_at_recal_ = 0;
  DriftStats stats_;
};

}  // namespace mes::proto
