// Cross-cell calibration reuse (ISSUE 9 tentpole a).
//
// Campaign cells that share a link — same mechanism, scenario profile,
// timing anchor and noise-relevant knobs — converge on the same grid
// pick; only the seed differs. The cache lets the *leader* cell of each
// key (first in plan order) publish its full-sweep pick so follower
// cells can warm-start: probe the published grid index, confirm, and
// skip the rest of the sweep (proto/calibrate.h).
//
// Determinism: the leader is chosen by plan order, not arrival order
// (exec::assign_calibration_leaders), so `--jobs 1` and `--jobs N`
// produce byte-identical emissions. Followers block in wait() until the
// leader publishes; exec::parallel_for claims cells in strictly
// increasing plan order, so a key's leader is always claimed before any
// of its followers and never blocks on the cache itself — a waiting
// follower's leader is always running or done, hence no deadlock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mes {
struct ExperimentConfig;
}

namespace mes::proto {

// The published result of a leader's full sweep: just enough for a
// follower to re-derive everything else locally (timing/classifier come
// from the follower's own confirm probe, so they track its seed).
struct CalibrationPick {
  std::size_t grid_index = 0;
  double margin = 0.0;
  double symbol_error = 0.0;
};

// Shared, thread-safe pick store. Keys are opaque strings built by
// key_for() from every config field that shapes the calibration
// decision (and none that don't — seed, tag and trace knobs are
// excluded, that's the whole point of reuse).
class CalibrationCache {
 public:
  // Canonical cache key for a config at the given probe options.
  static std::string key_for(const ExperimentConfig& config,
                             std::size_t probe_symbols, double min_margin);

  // First claimant becomes the key's leader (returns true) and MUST
  // later publish() or publish_failure(); later claimants are followers.
  bool claim(const std::string& key);
  void publish(const std::string& key, const CalibrationPick& pick);
  void publish_failure(const std::string& key);

  // Blocks until the key's leader published; nullopt = leader's sweep
  // failed (follower should run its own full sweep). Must not be called
  // by the leader itself.
  std::optional<CalibrationPick> wait(const std::string& key);

  // Non-blocking lookup: a pick if one is published, nullopt otherwise.
  std::optional<CalibrationPick> try_get(const std::string& key) const;

  std::size_t size() const;

 private:
  struct Entry {
    bool claimed = false;
    bool ready = false;
    bool failed = false;
    CalibrationPick pick;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Looked up by key only — never iterated, so map order can't leak
  // into results.
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace mes::proto
