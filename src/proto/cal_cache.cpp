#include "proto/cal_cache.h"

#include <sstream>

#include "core/runner.h"

namespace mes::proto {

std::string CalibrationCache::key_for(const ExperimentConfig& config,
                                      std::size_t probe_symbols,
                                      double min_margin)
{
  // Everything that shapes the sweep's decision surface, nothing that
  // only perturbs one cell's realization. seed, tag, enable_trace and
  // max_events are deliberately absent; protocol is implied (only
  // adaptive cells calibrate).
  std::ostringstream key;
  key << static_cast<int>(config.mechanism) << '|'
      << static_cast<int>(config.scenario) << '|'
      << config.scenario_name << '|'
      << static_cast<int>(config.hypervisor) << '|'
      << static_cast<int>(config.fairness) << '|'
      << config.semaphore_initial << '|'
      << config.mitigation_fuzz.count_ns() << '|'
      << config.loop_cost.count_ns() << '|'
      << (config.fine_grained_sync ? 1 : 0) << '|'
      << config.timing.t1.count_ns() << '|'
      << config.timing.t0.count_ns() << '|'
      << config.timing.interval.count_ns() << '|'
      << config.timing.symbol_bits << '|'
      << config.sync_bits << '|'
      << probe_symbols << '|'
      << min_margin;
  return key.str();
}

bool CalibrationCache::claim(const std::string& key)
{
  std::lock_guard lock{mu_};
  Entry& e = map_[key];
  if (e.claimed) return false;
  e.claimed = true;
  return true;
}

void CalibrationCache::publish(const std::string& key,
                               const CalibrationPick& pick)
{
  {
    std::lock_guard lock{mu_};
    Entry& e = map_[key];
    e.claimed = true;
    e.ready = true;
    e.failed = false;
    e.pick = pick;
  }
  cv_.notify_all();
}

void CalibrationCache::publish_failure(const std::string& key)
{
  {
    std::lock_guard lock{mu_};
    Entry& e = map_[key];
    if (e.ready) return;  // a real pick already landed; keep it
    e.claimed = true;
    e.ready = true;
    e.failed = true;
  }
  cv_.notify_all();
}

std::optional<CalibrationPick> CalibrationCache::wait(const std::string& key)
{
  std::unique_lock lock{mu_};
  const Entry* e = nullptr;
  cv_.wait(lock, [&] {
    auto it = map_.find(key);
    if (it == map_.end() || !it->second.ready) return false;
    e = &it->second;
    return true;
  });
  if (e->failed) return std::nullopt;
  return e->pick;
}

std::optional<CalibrationPick> CalibrationCache::try_get(
    const std::string& key) const
{
  std::lock_guard lock{mu_};
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.ready || it->second.failed)
    return std::nullopt;
  return it->second.pick;
}

std::size_t CalibrationCache::size() const
{
  std::lock_guard lock{mu_};
  return map_.size();
}

}  // namespace mes::proto
