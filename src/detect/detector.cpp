#include "detect/detector.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/stats.h"

namespace mes::detect {

namespace {

bool is_mesm_op(os::OpKind kind)
{
  switch (kind) {
    case os::OpKind::sleep:
    case os::OpKind::file_read:
    case os::OpKind::file_write:
      return false;
    default:
      return true;
  }
}

// Interval analysis keys on the *acquire-side* ops: one per symbol per
// endpoint (a SetEvent per symbol for a cooperation Trojan; one probe
// wait per bit for a contention Spy). Release-side ops would interleave
// hold times into the gaps and smear the modes.
bool is_acquire_op(os::OpKind kind)
{
  switch (kind) {
    case os::OpKind::wait:
    case os::OpKind::flock_ex:
    case os::OpKind::flock_sh:
    case os::OpKind::lock_file_ex:
    case os::OpKind::set_event:
    case os::OpKind::set_timer:
    case os::OpKind::signal_send:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<Finding> Detector::analyze(
    const std::vector<os::Kernel::OpRecord>& trace) const
{
  struct PerObject {
    std::vector<const os::Kernel::OpRecord*> ops;
    std::map<os::Pid, std::size_t> by_pid;
  };
  std::map<os::ObjectId, PerObject> objects;
  for (const auto& rec : trace) {
    if (!is_mesm_op(rec.kind) || rec.object == 0) continue;
    auto& po = objects[rec.object];
    po.ops.push_back(&rec);
    ++po.by_pid[rec.pid];
  }

  std::vector<Finding> findings;
  for (auto& [object, po] : objects) {
    if (po.ops.size() < config_.min_ops) continue;

    Finding f;
    f.object = object;
    f.ops = po.ops.size();

    // Top two processes and their dominance of this object's traffic.
    std::vector<std::pair<os::Pid, std::size_t>> by_count(po.by_pid.begin(),
                                                          po.by_pid.end());
    std::sort(by_count.begin(), by_count.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    f.pid_a = by_count[0].first;
    std::size_t top2 = by_count[0].second;
    if (by_count.size() > 1) {
      f.pid_b = by_count[1].first;
      top2 += by_count[1].second;
    }
    f.dominance = static_cast<double>(top2) / static_cast<double>(f.ops);

    const Duration span = po.ops.back()->at - po.ops.front()->at;
    f.ops_per_sec = span > Duration::zero()
                        ? static_cast<double>(f.ops) / span.to_sec()
                        : 0.0;

    // Inter-op intervals per endpoint. The Trojan of a cooperation
    // channel touches the object once per symbol (bimodal gaps); the Spy
    // of a contention channel probes with a tight acquire/release pair
    // every bit. Analyze both endpoints and keep the stronger signature.
    f.bimodality = 0.0;
    f.mode_cv = 1e9;
    for (const os::Pid pid : {f.pid_a, f.pid_b}) {
      if (pid < 0) continue;
      std::vector<double> intervals;
      TimePoint prev;
      bool have_prev = false;
      for (const auto* rec : po.ops) {
        if (rec->pid != pid || !is_acquire_op(rec->kind)) continue;
        if (have_prev) intervals.push_back((rec->at - prev).to_us());
        prev = rec->at;
        have_prev = true;
      }
      const TwoMeans modes = two_means_cluster(intervals);
      // The low mode is the discriminator: a channel's fast mode (probe
      // pair or short symbol) is tight; benign think times spread. The
      // high mode may legitimately mix several symbol periods.
      if (modes.separation >= f.bimodality &&
          modes.low_cv < f.mode_cv) {
        f.bimodality = modes.separation;
        f.mode_cv = modes.low_cv;
      }
    }
    if (f.mode_cv > 1e8) f.mode_cv = 0.0;

    // Combined score: dominance and bimodality saturate at their
    // thresholds; a tight fast mode is what separates a channel from
    // benign two-party lock traffic with jittery think times.
    const double b = std::min(1.0, f.bimodality / config_.separation_threshold);
    const double d = std::min(1.0, f.dominance / config_.pair_dominance);
    const double tight =
        f.mode_cv <= 0.0
            ? 0.0
            : std::min(1.0, config_.mode_tightness / f.mode_cv);
    f.score = 0.4 * b + 0.3 * d + 0.3 * tight;
    f.flagged = f.score >= config_.flag_threshold &&
                f.bimodality >= config_.separation_threshold &&
                f.dominance >= config_.pair_dominance &&
                f.mode_cv <= config_.mode_tightness;
    findings.push_back(f);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.score > b.score; });
  return findings;
}

bool Detector::channel_detected(
    const std::vector<os::Kernel::OpRecord>& trace) const
{
  const auto findings = analyze(trace);
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.flagged; });
}

std::string to_string(const Finding& f)
{
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "object %llu: pids (%d,%d) ops=%zu rate=%.0f/s "
                "bimodality=%.2f mode_cv=%.2f dominance=%.2f score=%.2f%s",
                static_cast<unsigned long long>(f.object), f.pid_a, f.pid_b,
                f.ops, f.ops_per_sec, f.bimodality, f.mode_cv, f.dominance,
                f.score, f.flagged ? " [FLAGGED]" : "");
  return buf;
}

}  // namespace mes::detect
