// MES-Attack detector (the defensive counterpart, §VIII).
//
// A covert channel leaves a distinctive footprint in the kernel's MESM
// op stream: exactly two processes hammer one object at a high, steady
// rate, and the intervals between the sender's constraint-state releases
// are *bimodal* (one mode per symbol level). The detector scores both
// properties per (object, process-pair) and flags scores above a
// threshold. The timing-fuzz mitigation it suggests is implemented as
// Kernel::set_op_fuzz and evaluated in bench/ablation_mitigation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "os/types.h"

namespace mes::detect {

struct DetectorConfig {
  // Minimum ops on one object before it is considered at all.
  std::size_t min_ops = 64;
  // Bimodality separation (TwoMeans.separation) above which the interval
  // pattern looks like symbol modulation.
  double separation_threshold = 0.22;
  // Maximum within-mode coefficient of variation: a channel's symbol
  // levels are tight (jitter is a few percent of the level), while
  // benign lock traffic with think times spreads wide.
  double mode_tightness = 0.25;
  // Minimum fraction of the object's traffic produced by the busiest
  // two processes ("closed share" signature).
  double pair_dominance = 0.9;
  // Overall score needed to flag.
  double flag_threshold = 0.6;
};

struct Finding {
  os::ObjectId object = 0;
  os::Pid pid_a = -1;
  os::Pid pid_b = -1;
  std::size_t ops = 0;
  double ops_per_sec = 0.0;
  double bimodality = 0.0;   // TwoMeans separation of inter-op intervals
  double mode_cv = 0.0;      // fast-mode coefficient of variation
  double dominance = 0.0;    // fraction of traffic from the top two pids
  double score = 0.0;        // combined, 0..1
  bool flagged = false;
};

class Detector {
 public:
  explicit Detector(DetectorConfig config = {}) : config_{config} {}

  // Analyzes a kernel op trace and returns one finding per object that
  // met the minimum traffic bar, sorted by descending score.
  std::vector<Finding> analyze(
      const std::vector<os::Kernel::OpRecord>& trace) const;

  // True when any finding is flagged.
  bool channel_detected(
      const std::vector<os::Kernel::OpRecord>& trace) const;

 private:
  DetectorConfig config_;
};

std::string to_string(const Finding& f);

}  // namespace mes::detect
