#include "sim/simulator.h"

#include <bit>
#include <cstdio>
#include <array>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "sim/wait_queue.h"
#include "util/log.h"

namespace mes::sim {

namespace {
thread_local Simulator* t_current_sim = nullptr;
}  // namespace

Simulator* Simulator::current() { return t_current_sim; }

void enqueue_resume(std::coroutine_handle<> h)
{
  Simulator* sim = Simulator::current();
  if (sim == nullptr) {
    // Completion outside any run loop (e.g. a task driven manually in a
    // test): resuming inline is safe there because no parent actor can
    // be pending on this thread's stack below us.
    h.resume();
    return;
  }
  sim->schedule_resume(h, Duration::zero());
}

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

Simulator::~Simulator()
{
  // Destroy any still-suspended root frames (a drained-but-deadlocked
  // experiment); coroutine frames suspended at a co_await are safely
  // destroyable and release their locals.
  for (auto& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

void Simulator::push_event(Event ev, const char* what)
{
  if (ev.at < now_) {
    throw std::logic_error{std::string{what} + ": time in the past"};
  }
  ev.seq = next_seq_++;
  ++pending_;
  place_event(ev);
}

// --- timer wheel --------------------------------------------------------

std::uint32_t Simulator::alloc_wheel_node(const Event& ev)
{
  std::uint32_t idx;
  if (free_wheel_node_ != kNil) {
    idx = free_wheel_node_;
    free_wheel_node_ = wheel_nodes_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(wheel_nodes_.size());
    wheel_nodes_.push_back(WheelNode{});
  }
  wheel_nodes_[idx].ev = ev;
  wheel_nodes_[idx].next = kNil;
  return idx;
}

void Simulator::place_event(const Event& ev)
{
  // Beyond the wheel horizon the event stays in the overflow heap; it
  // migrates into the wheel when the cursor's horizon window opens
  // (advance_wheel), which is the only way the prefix can change.
  if ((ev.at.count_ns() >> kHorizonBits) != (cur_tick_ >> kHorizonBits)) {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), EventLater{});
    return;
  }
  place_node(alloc_wheel_node(ev));
}

void Simulator::place_node(std::uint32_t idx)
{
  WheelNode& node = wheel_nodes_[idx];
  node.next = kNil;
  const std::int64_t t = node.ev.at.count_ns();
  const std::int64_t c = cur_tick_;
  const std::uint64_t diff = static_cast<std::uint64_t>(t ^ c);
  if (diff == 0) {  // the tick being dispatched: straight to the ready list
    if (ready_tail_ == kNil) {
      ready_head_ = idx;
    } else {
      wheel_nodes_[ready_tail_].next = idx;
    }
    ready_tail_ = idx;
    return;
  }
  // The level is the highest bit-group where t diverges from the
  // cursor: bits [0,kL0Bits) -> L0, then one 6-bit group per level
  // (L1..L4). Anything past the L4 prefix was parked in overflow_
  // before allocating a node.
  const int high_bit = 63 - std::countl_zero(diff);
  Bucket* bucket;
  if (high_bit < kL0Bits) {
    const unsigned slot = static_cast<unsigned>(t & (kL0Slots - 1));
    bucket = &l0_[slot];
    l0_bits_[slot >> 6] |= 1ull << (slot & 63);
    l0_words_[slot >> 12] |= 1ull << ((slot >> 6) & 63);
  } else {
    const int lv = (high_bit - kL0Bits) / 6;
    const unsigned slot =
        static_cast<unsigned>((t >> (kL0Bits + 6 * lv)) & 63);
    bucket = &lv_[lv][slot];
    lv_bits_[lv] |= 1ull << slot;
  }
  if (bucket->tail == kNil) {
    bucket->head = idx;
  } else {
    wheel_nodes_[bucket->tail].next = idx;
  }
  bucket->tail = idx;
}

void Simulator::advance_wheel()
{
  for (;;) {
    // A cascade (or overflow migration) below may have re-placed
    // events landing exactly on the new cursor tick onto the ready
    // list — that tick is the next one, so we are done.
    if (ready_head_ != kNil) return;
    // L0 first: its residents precede everything in L1+, and bits at
    // or below the cursor's slot are never set, so the lowest set bit
    // is the globally next tick. l0_words_ summarises which of the 64
    // bitmap words are non-empty, so the lookup is two countr_zero
    // steps, never a word-by-word scan.
    bool l0_found = false;
    for (int g = 0; g < (kL0Words + 63) / 64; ++g) {
      if (l0_words_[g] == 0) continue;
      const int w = g * 64 + std::countr_zero(l0_words_[g]);
      const int slot = w * 64 + std::countr_zero(l0_bits_[w]);
      cur_tick_ = (cur_tick_ & ~std::int64_t{kL0Slots - 1}) | slot;
      Bucket& b = l0_[slot];
      ready_head_ = b.head;  // one tick per L0 bucket, already seq-ordered
      ready_tail_ = b.tail;
      b = Bucket{};
      l0_bits_[w] &= l0_bits_[w] - 1;
      if (l0_bits_[w] == 0) l0_words_[g] &= ~(1ull << (w & 63));
      l0_found = true;
      break;
    }
    if (l0_found) return;
    bool cascaded = false;
    for (int lv = 0; lv < 4; ++lv) {
      if (lv_bits_[lv] == 0) continue;
      const int slot = std::countr_zero(lv_bits_[lv]);
      // Sparse fast path: a lone node in the lowest occupied bucket is
      // the global minimum (everything below is empty, everything else
      // at this level or above is later), so it can skip the cascade
      // and jump straight to the ready list.
      if (wheel_nodes_[lv_[lv][slot].head].next == kNil) {
        const std::uint32_t n = lv_[lv][slot].head;
        cur_tick_ = wheel_nodes_[n].ev.at.count_ns();
        ready_head_ = ready_tail_ = n;
        lv_[lv][slot] = Bucket{};
        lv_bits_[lv] &= lv_bits_[lv] - 1;
        return;
      }
      const int shift = kL0Bits + 6 * lv;
      // Jump the cursor to the start of that slot's window, then
      // re-place the chain in order: same-tick runs stay contiguous,
      // so per-tick seq order survives every cascade.
      const std::int64_t window = (std::int64_t{1} << (shift + 6)) - 1;
      cur_tick_ =
          (cur_tick_ & ~window) | (static_cast<std::int64_t>(slot) << shift);
      std::uint32_t n = lv_[lv][slot].head;
      lv_[lv][slot] = Bucket{};
      lv_bits_[lv] &= lv_bits_[lv] - 1;
      if (lv == 0) {
        // L1 buckets span exactly one L0 window, so every node lands in
        // L0 (or on the ready list if it is the window-start tick) —
        // skip the generic level search on this, the hottest cascade.
        while (n != kNil) {
          WheelNode& node = wheel_nodes_[n];
          const std::uint32_t next = node.next;
          node.next = kNil;
          const std::int64_t t = node.ev.at.count_ns();
          if (t == cur_tick_) {
            if (ready_tail_ == kNil) {
              ready_head_ = n;
            } else {
              wheel_nodes_[ready_tail_].next = n;
            }
            ready_tail_ = n;
          } else {
            const unsigned s = static_cast<unsigned>(t & (kL0Slots - 1));
            Bucket& b = l0_[s];
            if (b.tail == kNil) {
              b.head = n;
            } else {
              wheel_nodes_[b.tail].next = n;
            }
            b.tail = n;
            l0_bits_[s >> 6] |= 1ull << (s & 63);
            l0_words_[s >> 12] |= 1ull << ((s >> 6) & 63);
          }
          n = next;
        }
      } else {
        while (n != kNil) {
          const std::uint32_t next = wheel_nodes_[n].next;
          place_node(n);
          n = next;
        }
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Wheel empty: open the overflow window holding the next event.
    // The heap pops in (time, seq) order, so same-tick entries reach
    // the ready list in seq order, and nothing already in the wheel
    // can be undercut (every overflow entry is strictly later).
    const std::int64_t prefix =
        overflow_.front().at.count_ns() >> kHorizonBits;
    cur_tick_ = overflow_.front().at.count_ns();
    while (!overflow_.empty() &&
           (overflow_.front().at.count_ns() >> kHorizonBits) == prefix) {
      std::pop_heap(overflow_.begin(), overflow_.end(), EventLater{});
      const Event ev = overflow_.back();
      overflow_.pop_back();
      place_node(alloc_wheel_node(ev));
    }
  }
}

std::uint32_t Simulator::take_fn_slot(std::function<void()> fn)
{
  if (free_fn_slot_ != kNil) {
    const std::uint32_t slot = free_fn_slot_;
    free_fn_slot_ = fn_slots_[slot].next_free;
    fn_slots_[slot].fn = std::move(fn);
    return slot;
  }
  fn_slots_.push_back(FnSlot{std::move(fn), kNil});
  return static_cast<std::uint32_t>(fn_slots_.size() - 1);
}

void Simulator::call_at(TimePoint t, std::function<void()> fn)
{
  push_event(Event{t, 0, nullptr, take_fn_slot(std::move(fn)), 0,
                   EventKind::callback},
             "Simulator::call_at");
}

Simulator::Event Simulator::pop_next_event()
{
  if (ready_head_ == kNil) advance_wheel();
  const std::uint32_t idx = ready_head_;
  WheelNode& node = wheel_nodes_[idx];
  const Event ev = node.ev;
  ready_head_ = node.next;
  if (ready_head_ == kNil) ready_tail_ = kNil;
  node.next = free_wheel_node_;
  free_wheel_node_ = idx;
  --pending_;
  return ev;
}

void Simulator::call_after(Duration after, std::function<void()> fn)
{
  if (after.is_negative()) {
    throw std::logic_error{"Simulator::call_after: negative delay"};
  }
  call_at(now_ + after, std::move(fn));
}

void Simulator::schedule_resume(std::coroutine_handle<> h, Duration after)
{
  if (after.is_negative()) {
    throw std::logic_error{"Simulator::schedule_resume: negative delay"};
  }
  static const bool check = std::getenv("MES_CHECK_FRAMES") != nullptr;
  if (check) {
    std::array<std::uint64_t, 8> snap;
    std::memcpy(snap.data(), h.address(), sizeof snap);
    call_after(after, [h, snap] {
      std::array<std::uint64_t, 8> now_hdr;
      std::memcpy(now_hdr.data(), h.address(), sizeof now_hdr);
      if (now_hdr != snap) {
        std::fprintf(stderr, "FRAME CHANGED h=%p\n", h.address());
        for (int i = 0; i < 8; ++i) {
          std::fprintf(stderr, "  [%d] %016llx -> %016llx%s\n", i,
                       (unsigned long long)snap[i],
                       (unsigned long long)now_hdr[i],
                       snap[i] != now_hdr[i] ? "  *" : "");
        }
      }
      h.resume();
    });
    return;
  }
  push_event(Event{now_ + after, 0, h, kNil, 0, EventKind::resume},
             "Simulator::schedule_resume");
}

void Simulator::spawn(Proc proc, std::string name)
{
  auto handle = proc.release();  // the simulator now owns the frame
  roots_.push_back(Root{handle, std::move(name)});
  push_event(Event{now_, 0, handle, kNil, 0, EventKind::resume},
             "Simulator::spawn");
}

void Simulator::spawn_daemon(Proc proc, std::string name)
{
  auto handle = proc.release();  // the simulator now owns the frame
  roots_.push_back(Root{handle, std::move(name), /*daemon=*/true});
  push_event(Event{now_, 0, handle, kNil, 0, EventKind::resume},
             "Simulator::spawn_daemon");
}

// --- wait-node pool ----------------------------------------------------

std::uint32_t Simulator::alloc_wait_node(std::coroutine_handle<> h,
                                         WaitQueue* owner)
{
  std::uint32_t idx;
  if (free_wait_node_ != kNil) {
    idx = free_wait_node_;
    free_wait_node_ = wait_nodes_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(wait_nodes_.size());
    wait_nodes_.push_back(WaitNode{});
  }
  WaitNode& node = wait_nodes_[idx];
  node.handle = h;
  node.owner = owner;
  node.prev = kNil;
  node.next = kNil;
  node.state = WaitNode::State::parked;
  ++wait_nodes_in_use_;
  return idx;
}

void Simulator::free_wait_node(std::uint32_t idx)
{
  WaitNode& node = wait_nodes_[idx];
  node.handle = nullptr;
  node.owner = nullptr;
  node.prev = kNil;
  ++node.gen;  // invalidates any timeout event still in flight
  node.state = WaitNode::State::free_slot;
  node.next = free_wait_node_;
  free_wait_node_ = idx;
  --wait_nodes_in_use_;
}

void Simulator::schedule_wait_timeout(std::uint32_t idx, Duration timeout)
{
  if (timeout.is_negative()) {
    throw std::logic_error{"WaitQueue::wait: negative timeout"};
  }
  push_event(Event{now_ + timeout, 0, nullptr, idx, wait_nodes_[idx].gen,
                   EventKind::wait_timeout},
             "WaitQueue::wait");
}

void Simulator::dispatch_wait_timeout(const Event& ev)
{
  WaitNode& node = wait_nodes_[ev.slot];
  if (node.gen != ev.gen || node.state != WaitNode::State::parked) {
    return;  // the wait already resolved (or the slot was recycled)
  }
  if (node.owner != nullptr) node.owner->unlink(*this, ev.slot);
  node.state = WaitNode::State::timed_out;
  const std::coroutine_handle<> h = node.handle;
  // No pool access past this point: the resumed waiter may start new
  // waits and grow (reallocate) the pool under us.
  h.resume();
}

// --- coalesced wakeups --------------------------------------------------

std::uint32_t Simulator::acquire_wake_batch()
{
  if (free_batch_slot_ != kNil) {
    const std::uint32_t slot = free_batch_slot_;
    free_batch_slot_ = batch_slots_[slot].next_free;
    return slot;
  }
  batch_slots_.push_back(BatchSlot{});
  return static_cast<std::uint32_t>(batch_slots_.size() - 1);
}

void Simulator::commit_wake_batch(std::uint32_t slot, Duration latency)
{
  if (latency.is_negative()) {
    throw std::logic_error{"WaitQueue::notify_all: negative latency"};
  }
  push_event(Event{now_ + latency, 0, nullptr, slot, 0,
                   EventKind::wake_batch},
             "WaitQueue::notify_all");
}

RunResult Simulator::run(std::uint64_t max_events)
{
  // Scoped "current simulator" for task-completion scheduling; restored
  // on exit so nested or sequential runs on one thread stay correct.
  Simulator* const previous = t_current_sim;
  t_current_sim = this;
  struct Restore {
    Simulator*& slot;
    Simulator* value;
    ~Restore() { slot = value; }
  } restore{t_current_sim, previous};

  const bool trace_events = std::getenv("MES_TRACE_EVENTS") != nullptr;
  RunResult result;
  while (pending_ != 0) {
    if (result.events_processed >= max_events) {
      result.hit_event_limit = true;
      MES_LOG_WARN("simulator stopped at event limit (%llu)",
                   static_cast<unsigned long long>(max_events));
      break;
    }
    const Event ev = pop_next_event();
    now_ = ev.at;
    if (trace_events) {
      std::fprintf(stderr, "  [ev seq=%llu t=%.3fus]\n",
                   (unsigned long long)ev.seq, ev.at.to_us());
    }
    switch (ev.kind) {
      case EventKind::resume:
        ev.resume.resume();
        break;
      case EventKind::callback: {
        // Move the payload out and release the slot first: the callback
        // may schedule new callbacks and reuse it.
        std::function<void()> fn = std::move(fn_slots_[ev.slot].fn);
        fn_slots_[ev.slot].fn = nullptr;
        fn_slots_[ev.slot].next_free = free_fn_slot_;
        free_fn_slot_ = ev.slot;
        fn();
        break;
      }
      case EventKind::wake_batch: {
        // The batch vector is detached before resuming: a resumed
        // waiter may trigger a fresh notify_all, which must not reuse
        // or reallocate this slot mid-iteration.
        std::vector<std::coroutine_handle<>> handles =
            std::move(batch_slots_[ev.slot].handles);
        for (const std::coroutine_handle<> h : handles) {
          h.resume();
        }
        // Each resumed waiter counts as one delivered event, exactly as
        // the unbatched path did; the loop adds the first below.
        result.events_processed += handles.size() - 1;
        handles.clear();
        batch_slots_[ev.slot].handles = std::move(handles);  // keep capacity
        batch_slots_[ev.slot].next_free = free_batch_slot_;
        free_batch_slot_ = ev.slot;
        break;
      }
      case EventKind::wait_timeout:
        dispatch_wait_timeout(ev);
        break;
    }
    ++result.events_processed;
  }
  result.end_time = now_;
  rethrow_root_exception();
  for (const auto& root : roots_) {
    if (root.daemon) continue;  // parked daemons are not deadlocks
    if (root.handle && !root.handle.done()) ++result.blocked_roots;
  }
  return result;
}

void Simulator::rethrow_root_exception()
{
  for (const auto& root : roots_) {
    if (!root.handle) continue;
    if (root.handle.done() && root.handle.promise().exception) {
      std::rethrow_exception(root.handle.promise().exception);
    }
  }
}

}  // namespace mes::sim
