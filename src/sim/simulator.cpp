#include "sim/simulator.h"

#include <cstdio>
#include <array>
#include <cstring>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "sim/wait_queue.h"
#include "util/log.h"

namespace mes::sim {

namespace {
thread_local Simulator* t_current_sim = nullptr;
}  // namespace

Simulator* Simulator::current() { return t_current_sim; }

void enqueue_resume(std::coroutine_handle<> h)
{
  Simulator* sim = Simulator::current();
  if (sim == nullptr) {
    // Completion outside any run loop (e.g. a task driven manually in a
    // test): resuming inline is safe there because no parent actor can
    // be pending on this thread's stack below us.
    h.resume();
    return;
  }
  sim->schedule_resume(h, Duration::zero());
}

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

Simulator::~Simulator()
{
  // Destroy any still-suspended root frames (a drained-but-deadlocked
  // experiment); coroutine frames suspended at a co_await are safely
  // destroyable and release their locals.
  for (auto& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

void Simulator::push_event(Event ev, const char* what)
{
  if (ev.at < now_) {
    throw std::logic_error{std::string{what} + ": time in the past"};
  }
  ev.seq = next_seq_++;
  queue_.push_back(ev);
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

std::uint32_t Simulator::take_fn_slot(std::function<void()> fn)
{
  if (free_fn_slot_ != kNil) {
    const std::uint32_t slot = free_fn_slot_;
    free_fn_slot_ = fn_slots_[slot].next_free;
    fn_slots_[slot].fn = std::move(fn);
    return slot;
  }
  fn_slots_.push_back(FnSlot{std::move(fn), kNil});
  return static_cast<std::uint32_t>(fn_slots_.size() - 1);
}

void Simulator::call_at(TimePoint t, std::function<void()> fn)
{
  push_event(Event{t, 0, nullptr, take_fn_slot(std::move(fn)), 0,
                   EventKind::callback},
             "Simulator::call_at");
}

Simulator::Event Simulator::pop_next_event()
{
  std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
  const Event ev = queue_.back();
  queue_.pop_back();
  return ev;
}

void Simulator::call_after(Duration after, std::function<void()> fn)
{
  if (after.is_negative()) {
    throw std::logic_error{"Simulator::call_after: negative delay"};
  }
  call_at(now_ + after, std::move(fn));
}

void Simulator::schedule_resume(std::coroutine_handle<> h, Duration after)
{
  if (after.is_negative()) {
    throw std::logic_error{"Simulator::schedule_resume: negative delay"};
  }
  static const bool check = std::getenv("MES_CHECK_FRAMES") != nullptr;
  if (check) {
    std::array<std::uint64_t, 8> snap;
    std::memcpy(snap.data(), h.address(), sizeof snap);
    call_after(after, [h, snap] {
      std::array<std::uint64_t, 8> now_hdr;
      std::memcpy(now_hdr.data(), h.address(), sizeof now_hdr);
      if (now_hdr != snap) {
        std::fprintf(stderr, "FRAME CHANGED h=%p\n", h.address());
        for (int i = 0; i < 8; ++i) {
          std::fprintf(stderr, "  [%d] %016llx -> %016llx%s\n", i,
                       (unsigned long long)snap[i],
                       (unsigned long long)now_hdr[i],
                       snap[i] != now_hdr[i] ? "  *" : "");
        }
      }
      h.resume();
    });
    return;
  }
  push_event(Event{now_ + after, 0, h, kNil, 0, EventKind::resume},
             "Simulator::schedule_resume");
}

void Simulator::spawn(Proc proc, std::string name)
{
  auto handle = proc.release();  // the simulator now owns the frame
  roots_.push_back(Root{handle, std::move(name)});
  push_event(Event{now_, 0, handle, kNil, 0, EventKind::resume},
             "Simulator::spawn");
}

// --- wait-node pool ----------------------------------------------------

std::uint32_t Simulator::alloc_wait_node(std::coroutine_handle<> h,
                                         WaitQueue* owner)
{
  std::uint32_t idx;
  if (free_wait_node_ != kNil) {
    idx = free_wait_node_;
    free_wait_node_ = wait_nodes_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(wait_nodes_.size());
    wait_nodes_.push_back(WaitNode{});
  }
  WaitNode& node = wait_nodes_[idx];
  node.handle = h;
  node.owner = owner;
  node.prev = kNil;
  node.next = kNil;
  node.state = WaitNode::State::parked;
  ++wait_nodes_in_use_;
  return idx;
}

void Simulator::free_wait_node(std::uint32_t idx)
{
  WaitNode& node = wait_nodes_[idx];
  node.handle = nullptr;
  node.owner = nullptr;
  node.prev = kNil;
  ++node.gen;  // invalidates any timeout event still in flight
  node.state = WaitNode::State::free_slot;
  node.next = free_wait_node_;
  free_wait_node_ = idx;
  --wait_nodes_in_use_;
}

void Simulator::schedule_wait_timeout(std::uint32_t idx, Duration timeout)
{
  if (timeout.is_negative()) {
    throw std::logic_error{"WaitQueue::wait: negative timeout"};
  }
  push_event(Event{now_ + timeout, 0, nullptr, idx, wait_nodes_[idx].gen,
                   EventKind::wait_timeout},
             "WaitQueue::wait");
}

void Simulator::dispatch_wait_timeout(const Event& ev)
{
  WaitNode& node = wait_nodes_[ev.slot];
  if (node.gen != ev.gen || node.state != WaitNode::State::parked) {
    return;  // the wait already resolved (or the slot was recycled)
  }
  if (node.owner != nullptr) node.owner->unlink(*this, ev.slot);
  node.state = WaitNode::State::timed_out;
  const std::coroutine_handle<> h = node.handle;
  // No pool access past this point: the resumed waiter may start new
  // waits and grow (reallocate) the pool under us.
  h.resume();
}

// --- coalesced wakeups --------------------------------------------------

std::uint32_t Simulator::acquire_wake_batch()
{
  if (free_batch_slot_ != kNil) {
    const std::uint32_t slot = free_batch_slot_;
    free_batch_slot_ = batch_slots_[slot].next_free;
    return slot;
  }
  batch_slots_.push_back(BatchSlot{});
  return static_cast<std::uint32_t>(batch_slots_.size() - 1);
}

void Simulator::commit_wake_batch(std::uint32_t slot, Duration latency)
{
  if (latency.is_negative()) {
    throw std::logic_error{"WaitQueue::notify_all: negative latency"};
  }
  push_event(Event{now_ + latency, 0, nullptr, slot, 0,
                   EventKind::wake_batch},
             "WaitQueue::notify_all");
}

RunResult Simulator::run(std::uint64_t max_events)
{
  // Scoped "current simulator" for task-completion scheduling; restored
  // on exit so nested or sequential runs on one thread stay correct.
  Simulator* const previous = t_current_sim;
  t_current_sim = this;
  struct Restore {
    Simulator*& slot;
    Simulator* value;
    ~Restore() { slot = value; }
  } restore{t_current_sim, previous};

  const bool trace_events = std::getenv("MES_TRACE_EVENTS") != nullptr;
  RunResult result;
  while (!queue_.empty()) {
    if (result.events_processed >= max_events) {
      result.hit_event_limit = true;
      MES_LOG_WARN("simulator stopped at event limit (%llu)",
                   static_cast<unsigned long long>(max_events));
      break;
    }
    const Event ev = pop_next_event();
    now_ = ev.at;
    if (trace_events) {
      std::fprintf(stderr, "  [ev seq=%llu t=%.3fus]\n",
                   (unsigned long long)ev.seq, ev.at.to_us());
    }
    switch (ev.kind) {
      case EventKind::resume:
        ev.resume.resume();
        break;
      case EventKind::callback: {
        // Move the payload out and release the slot first: the callback
        // may schedule new callbacks and reuse it.
        std::function<void()> fn = std::move(fn_slots_[ev.slot].fn);
        fn_slots_[ev.slot].fn = nullptr;
        fn_slots_[ev.slot].next_free = free_fn_slot_;
        free_fn_slot_ = ev.slot;
        fn();
        break;
      }
      case EventKind::wake_batch: {
        // The batch vector is detached before resuming: a resumed
        // waiter may trigger a fresh notify_all, which must not reuse
        // or reallocate this slot mid-iteration.
        std::vector<std::coroutine_handle<>> handles =
            std::move(batch_slots_[ev.slot].handles);
        for (const std::coroutine_handle<> h : handles) {
          h.resume();
        }
        // Each resumed waiter counts as one delivered event, exactly as
        // the unbatched path did; the loop adds the first below.
        result.events_processed += handles.size() - 1;
        handles.clear();
        batch_slots_[ev.slot].handles = std::move(handles);  // keep capacity
        batch_slots_[ev.slot].next_free = free_batch_slot_;
        free_batch_slot_ = ev.slot;
        break;
      }
      case EventKind::wait_timeout:
        dispatch_wait_timeout(ev);
        break;
    }
    ++result.events_processed;
  }
  result.end_time = now_;
  rethrow_root_exception();
  for (const auto& root : roots_) {
    if (root.handle && !root.handle.done()) ++result.blocked_roots;
  }
  return result;
}

void Simulator::rethrow_root_exception()
{
  for (const auto& root : roots_) {
    if (!root.handle) continue;
    if (root.handle.done() && root.handle.promise().exception) {
      std::rethrow_exception(root.handle.promise().exception);
    }
  }
}

}  // namespace mes::sim
