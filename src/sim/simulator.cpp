#include "sim/simulator.h"

#include <cstdio>
#include <array>
#include <cstring>
#include <cstdlib>
#include <stdexcept>

#include "util/log.h"

namespace mes::sim {

namespace {
thread_local Simulator* t_current_sim = nullptr;
}  // namespace

Simulator* Simulator::current() { return t_current_sim; }

void enqueue_resume(std::coroutine_handle<> h)
{
  Simulator* sim = Simulator::current();
  if (sim == nullptr) {
    // Completion outside any run loop (e.g. a task driven manually in a
    // test): resuming inline is safe there because no parent actor can
    // be pending on this thread's stack below us.
    h.resume();
    return;
  }
  sim->schedule_resume(h, Duration::zero());
}

Simulator::Simulator(std::uint64_t seed) : rng_{seed} {}

Simulator::~Simulator()
{
  // Destroy any still-suspended root frames (a drained-but-deadlocked
  // experiment); coroutine frames suspended at a co_await are safely
  // destroyable and release their locals.
  for (auto& root : roots_) {
    if (root.handle) root.handle.destroy();
  }
}

void Simulator::push_event(Event ev)
{
  if (ev.at < now_) {
    throw std::logic_error{"Simulator::call_at: time in the past"};
  }
  ev.seq = next_seq_++;
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void Simulator::call_at(TimePoint t, std::function<void()> fn)
{
  push_event(Event{t, 0, nullptr, std::move(fn)});
}

Simulator::Event Simulator::pop_next_event()
{
  std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

void Simulator::call_after(Duration after, std::function<void()> fn)
{
  if (after.is_negative()) {
    throw std::logic_error{"Simulator::call_after: negative delay"};
  }
  call_at(now_ + after, std::move(fn));
}

void Simulator::schedule_resume(std::coroutine_handle<> h, Duration after)
{
  static const bool check = std::getenv("MES_CHECK_FRAMES") != nullptr;
  if (check) {
    std::array<std::uint64_t, 8> snap;
    std::memcpy(snap.data(), h.address(), sizeof snap);
    call_after(after, [h, snap] {
      std::array<std::uint64_t, 8> now_hdr;
      std::memcpy(now_hdr.data(), h.address(), sizeof now_hdr);
      if (now_hdr != snap) {
        std::fprintf(stderr, "FRAME CHANGED h=%p\n", h.address());
        for (int i = 0; i < 8; ++i) {
          std::fprintf(stderr, "  [%d] %016llx -> %016llx%s\n", i,
                       (unsigned long long)snap[i],
                       (unsigned long long)now_hdr[i],
                       snap[i] != now_hdr[i] ? "  *" : "");
        }
      }
      h.resume();
    });
    return;
  }
  if (after.is_negative()) {
    throw std::logic_error{"Simulator::call_after: negative delay"};
  }
  push_event(Event{now_ + after, 0, h, nullptr});
}

void Simulator::spawn(Proc proc, std::string name)
{
  auto handle = proc.release();  // the simulator now owns the frame
  roots_.push_back(Root{handle, std::move(name)});
  push_event(Event{now_, 0, handle, nullptr});
}

RunResult Simulator::run(std::uint64_t max_events)
{
  // Scoped "current simulator" for task-completion scheduling; restored
  // on exit so nested or sequential runs on one thread stay correct.
  Simulator* const previous = t_current_sim;
  t_current_sim = this;
  struct Restore {
    Simulator*& slot;
    Simulator* value;
    ~Restore() { slot = value; }
  } restore{t_current_sim, previous};

  const bool trace_events = std::getenv("MES_TRACE_EVENTS") != nullptr;
  RunResult result;
  while (!queue_.empty()) {
    if (result.events_processed >= max_events) {
      result.hit_event_limit = true;
      MES_LOG_WARN("simulator stopped at event limit (%llu)",
                   static_cast<unsigned long long>(max_events));
      break;
    }
    Event ev = pop_next_event();
    now_ = ev.at;
    if (trace_events) {
      std::fprintf(stderr, "  [ev seq=%llu t=%.3fus]\n",
                   (unsigned long long)ev.seq, ev.at.to_us());
    }
    if (ev.resume) {
      ev.resume.resume();
    } else {
      ev.fn();
    }
    ++result.events_processed;
  }
  result.end_time = now_;
  rethrow_root_exception();
  for (const auto& root : roots_) {
    if (root.handle && !root.handle.done()) ++result.blocked_roots;
  }
  return result;
}

void Simulator::rethrow_root_exception()
{
  for (const auto& root : roots_) {
    if (!root.handle) continue;
    if (root.handle.done() && root.handle.promise().exception) {
      std::rethrow_exception(root.handle.promise().exception);
    }
  }
}

}  // namespace mes::sim
