// Parking lot for blocked simulated processes.
//
// Kernel objects (events, mutexes, semaphores, file locks) block their
// callers here. The wake order is a policy: the paper's attacks require
// *fair* (FIFO) competition — §V.B shows that unfair hand-off lets the Spy
// monopolize the resource and destroys the channel — so both policies are
// implemented and the ablation bench exercises the unfair one.
//
// The queue itself is just an intrusive index list into the simulator's
// wait-node pool: parking, waking and timing out never allocate, nodes
// are unlinked eagerly the moment they stop waiting (size() is O(1) over
// live waiters, never over corpses), and notify_all coalesces the whole
// wake into a single simulator event.
#pragma once

#include <coroutine>
#include <cstdint>
#include <utility>

#include "sim/simulator.h"
#include "util/time.h"

namespace mes::sim {

enum class WakeOrder {
  fifo,  // fair: longest waiter first
  lifo,  // unfair: most recent requester first
};

enum class WaitOutcome { signaled, timed_out };

// mes-lint: hot-pod
class WaitQueue {
 public:
  explicit WaitQueue(WakeOrder order = WakeOrder::fifo) : order_{order} {}

  // The intrusive links point back at this queue; moving or copying it
  // would strand them.
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Orphans any still-parked waiter: it keeps its pool slot (freed when
  // its coroutine eventually resumes and reads the outcome) but loses the
  // back-pointer, so a pending timeout can still fire for it safely.
  ~WaitQueue();

  WakeOrder order() const { return order_; }
  void set_order(WakeOrder order) { order_ = order; }

  // Number of live (not yet woken / timed out) waiters.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  // Awaitable: park the calling coroutine until notify; resumes after
  // `timeout` with WaitOutcome::timed_out if nothing woke it first.
  // An infinite wait passes Duration::max().
  auto wait(Simulator& sim, Duration timeout = Duration::max())
  {
    struct Awaiter {
      WaitQueue& q;
      Simulator& sim;
      Duration timeout;
      std::uint32_t idx = Simulator::kNil;

      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h)
      {
        idx = sim.alloc_wait_node(h, &q);
        q.link_back(sim, idx);
        if (timeout != Duration::max()) {
          sim.schedule_wait_timeout(idx, timeout);
        }
      }
      WaitOutcome await_resume()
      {
        const auto state = sim.wait_node(idx).state;
        sim.free_wait_node(idx);
        return state == Simulator::WaitNode::State::timed_out
                   ? WaitOutcome::timed_out
                   : WaitOutcome::signaled;
      }
    };
    return Awaiter{*this, sim, timeout};
  }

  // Wakes one parked process after `latency`; returns false if none was
  // waiting (the notification is *not* remembered — persistence is the
  // kernel object's business, e.g. an Event's signaled flag).
  bool notify_one(Simulator& sim, Duration latency = Duration::zero());

  // Wakes every parked process (all after the same latency) with one
  // coalesced simulator event; returns the number woken.
  std::size_t notify_all(Simulator& sim, Duration latency = Duration::zero());

 private:
  friend class Simulator;  // timeout dispatch unlinks through the owner

  void link_back(Simulator& sim, std::uint32_t idx);
  void unlink(Simulator& sim, std::uint32_t idx);
  // Detaches the next waiter per the wake order; kNil when empty.
  std::uint32_t pop(Simulator& sim);

  WakeOrder order_;
  Simulator* sim_ = nullptr;  // set on first park; one sim per queue
  std::uint32_t head_ = Simulator::kNil;
  std::uint32_t tail_ = Simulator::kNil;
  std::size_t live_ = 0;
};

}  // namespace mes::sim
