// Parking lot for blocked simulated processes.
//
// Kernel objects (events, mutexes, semaphores, file locks) block their
// callers here. The wake order is a policy: the paper's attacks require
// *fair* (FIFO) competition — §V.B shows that unfair hand-off lets the Spy
// monopolize the resource and destroys the channel — so both policies are
// implemented and the ablation bench exercises the unfair one.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>

#include "sim/simulator.h"
#include "util/time.h"

namespace mes::sim {

enum class WakeOrder {
  fifo,  // fair: longest waiter first
  lifo,  // unfair: most recent requester first
};

enum class WaitOutcome { signaled, timed_out };

class WaitQueue {
 public:
  explicit WaitQueue(WakeOrder order = WakeOrder::fifo) : order_{order} {}

  WakeOrder order() const { return order_; }
  void set_order(WakeOrder order) { order_ = order; }

  // Number of live (not yet woken / timed out) waiters.
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  // Awaitable: park the calling coroutine until notify; resumes after
  // `timeout` with WaitOutcome::timed_out if nothing woke it first.
  // An infinite wait passes Duration::max().
  auto wait(Simulator& sim, Duration timeout = Duration::max())
  {
    struct Awaiter {
      WaitQueue& q;
      Simulator& sim;
      Duration timeout;
      std::shared_ptr<Node> node;

      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h)
      {
        node = std::make_shared<Node>();
        node->handle = h;
        q.push(node);
        if (timeout != Duration::max()) {
          auto n = node;
          sim.call_after(timeout, [n] {
            if (n->woken || n->timed_out) return;
            n->timed_out = true;
            n->handle.resume();
          });
        }
      }
      WaitOutcome await_resume() const
      {
        return node->timed_out ? WaitOutcome::timed_out
                               : WaitOutcome::signaled;
      }
    };
    return Awaiter{*this, sim, timeout, nullptr};
  }

  // Wakes one parked process after `latency`; returns false if none was
  // waiting (the notification is *not* remembered — persistence is the
  // kernel object's business, e.g. an Event's signaled flag).
  bool notify_one(Simulator& sim, Duration latency = Duration::zero());

  // Wakes every parked process (all after the same latency); returns the
  // number woken.
  std::size_t notify_all(Simulator& sim, Duration latency = Duration::zero());

 private:
  struct Node {
    std::coroutine_handle<> handle;
    bool woken = false;
    bool timed_out = false;
  };

  void push(std::shared_ptr<Node> node);
  std::shared_ptr<Node> pop_live();

  WakeOrder order_;
  std::deque<std::shared_ptr<Node>> nodes_;
};

}  // namespace mes::sim
