// Cyclic rendezvous for the fine-grained inter-bit synchronization.
//
// §V.B of the paper argues contention channels need a per-bit rendezvous
// between Trojan and Spy: it restores the required execution order and
// stops the Spy from re-capturing the critical resource. This barrier is
// that rendezvous. It is reusable (generation counted) so one instance
// serves the whole transmission.
#pragma once

#include <cstddef>
#include <utility>

#include "sim/simulator.h"
#include "sim/wait_queue.h"

namespace mes::sim {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_{parties} {}

  std::size_t parties() const { return parties_; }

  // Awaitable: parks until all parties arrive. The last arriver releases
  // the others (each with `release_latency`) and continues immediately.
  auto arrive(Simulator& sim, Duration release_latency = Duration::zero())
  {
    struct Awaiter {
      Barrier& b;
      Simulator& sim;
      Duration latency;
      // The wait awaiter owns a pool slot once parked; holding it here
      // (instead of a fire-and-forget await_suspend) lets await_resume
      // release that slot.
      decltype(std::declval<WaitQueue&>().wait(
          std::declval<Simulator&>())) inner;
      bool parked = false;

      bool await_ready()
      {
        if (b.arrived_ + 1 == b.parties_) {
          // Completing the cycle: wake everyone else, do not park.
          b.arrived_ = 0;
          b.queue_.notify_all(sim, latency);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h)
      {
        ++b.arrived_;
        parked = true;
        inner.await_suspend(h);
      }
      void await_resume()
      {
        if (parked) (void)inner.await_resume();
      }
    };
    return Awaiter{*this, sim, release_latency, queue_.wait(sim)};
  }

 private:
  std::size_t parties_;
  std::size_t arrived_ = 0;
  WaitQueue queue_;
};

}  // namespace mes::sim
