// Non-stationary noise: the host's background load as a stochastic
// process over simulated time.
//
// The paper evaluates stationary hosts, but both follow-up channels we
// track (Sync+Sync's fsync channel, MeMoir's memory-usage channel)
// report channel quality swinging with background load phases. These
// models make that first-class: the parameter set handed to the
// samplers is a piecewise-constant function of simulated time, with
// the piece boundaries drawn *once, up front, from a dedicated RNG
// stream derived from the experiment seed*. Queries never consume
// randomness, so two processes interleaving their reads — or the same
// experiment re-run under a different thread schedule — see the exact
// same regime timeline. That is what keeps campaigns over
// non-stationary scenarios byte-identical across --jobs counts.
#pragma once

#include <memory>
#include <vector>

#include "sim/noise.h"

namespace mes::sim {

// One piece of the regime timeline.
struct NoisePhase {
  Duration start = Duration::zero();  // measured from the sim origin
  Duration length = Duration::zero();
  std::size_t phase_id = 0;  // stable label (e.g. Markov state index)
  NoiseParams params;
};

// Piecewise-constant noise regime. Subclasses generate the timeline
// lazily (transfers can run for simulated minutes); generation order is
// fixed by the dedicated RNG stream, never by query order.
class PiecewiseNoise : public NoiseModel {
 public:
  const NoiseParams& params_at(TimePoint now) const override;
  std::size_t phase_at(TimePoint now) const override;
  bool stationary() const override { return false; }

  // The timeline generated so far (tests / introspection).
  const std::vector<NoisePhase>& phases() const { return phases_; }

 protected:
  explicit PiecewiseNoise(std::uint64_t seed);

  // Appends the phase starting at `start`; must return positive length.
  virtual NoisePhase next_phase(Rng& rng, Duration start) = 0;

 private:
  const NoisePhase& phase_covering(TimePoint now) const;
  mutable std::vector<NoisePhase> phases_;
  mutable Duration horizon_ = Duration::zero();
  mutable Rng rng_;
};

// --- the three processes ----------------------------------------------

// Markov-modulated load: the host hops between discrete load states
// (e.g. quiet / busy / thrashing), dwelling an exponential time in
// each, then moving to a uniformly chosen *other* state.
struct MarkovSpec {
  std::vector<NoiseParams> states;   // >= 2; index is the phase id
  std::vector<Duration> mean_dwell;  // one per state
};

class MarkovNoise final : public PiecewiseNoise {
 public:
  MarkovNoise(MarkovSpec spec, std::uint64_t seed);
  std::string describe() const override;

 protected:
  NoisePhase next_phase(Rng& rng, Duration start) override;

 private:
  MarkovSpec spec_;
  std::size_t state_ = 0;
};

// Phased noisy neighbor: a co-tenant with a periodic duty cycle
// (cron-like batch work). Deterministic period; the seed only rotates
// the initial phase offset so replicate cells do not all start aligned.
struct PhasedSpec {
  NoiseParams quiet;
  NoiseParams busy;
  Duration quiet_len = Duration::us(200'000);
  Duration busy_len = Duration::us(100'000);
  bool randomize_offset = true;
};

class PhasedNoise final : public PiecewiseNoise {
 public:
  PhasedNoise(PhasedSpec spec, std::uint64_t seed);
  std::string describe() const override;

 protected:
  NoisePhase next_phase(Rng& rng, Duration start) override;

 private:
  PhasedSpec spec_;
  bool busy_next_ = false;
  bool emitted_first_ = false;
};

// Migration / snapshot stalls: rare, long whole-host pauses (live
// migration pre-copy, snapshot quiesce) where every operation crawls.
// Exponential gaps between stalls, uniform stall lengths.
struct StallSpec {
  NoiseParams base;
  Duration mean_gap = Duration::us(400'000);
  Duration stall_min = Duration::us(8'000);
  Duration stall_max = Duration::us(40'000);
  double stall_load = 12.0;  // scale_load factor during the stall
};

class StallNoise final : public PiecewiseNoise {
 public:
  StallNoise(StallSpec spec, std::uint64_t seed);
  std::string describe() const override;

 protected:
  NoisePhase next_phase(Rng& rng, Duration start) override;

 private:
  StallSpec spec_;
  NoiseParams stalled_;  // precomputed scale_load(base, stall_load)
  bool stall_next_ = false;
};

// One-shot regime shift: quiet until `shift_at`, then a heavier regime
// forever. The sharpest drift case — what the drift-aware link must
// survive (bench/ablation_scenarios).
struct ShiftSpec {
  NoiseParams before;
  NoiseParams after;
  Duration shift_at = Duration::us(350'000);
};

class ShiftNoise final : public PiecewiseNoise {
 public:
  ShiftNoise(ShiftSpec spec, std::uint64_t seed);
  std::string describe() const override;

 protected:
  NoisePhase next_phase(Rng& rng, Duration start) override;

 private:
  ShiftSpec spec_;
  bool shifted_ = false;
};

// --- declarative regime spec (what a scenario carries) -----------------

// A buildable description of the regime: the scenario library stores
// one of these; the experiment env instantiates it with the cell seed.
struct NoiseSpec {
  enum class Regime { stationary, markov, phased, stalls, shift };
  Regime regime = Regime::stationary;

  // Load factor of the elevated state relative to the scenario's base
  // params (scale_load); ignored for stationary.
  double busy_load = 4.0;
  // Markov: mean dwell per state (quiet, busy). Phased: the duty cycle.
  // Stalls: quiet_len = mean gap, busy_len = max stall. Shift: quiet_len
  // = the shift instant.
  Duration quiet_len = Duration::us(200'000);
  Duration busy_len = Duration::us(100'000);
};

const char* to_string(NoiseSpec::Regime r);

// Instantiates the regime over `base` with a dedicated RNG stream
// derived from `seed` (decorrelated from every process stream).
std::shared_ptr<const NoiseModel> make_noise_model(const NoiseSpec& spec,
                                                   const NoiseParams& base,
                                                   std::uint64_t seed);

}  // namespace mes::sim
