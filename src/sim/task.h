// Coroutine task type for simulated processes.
//
// Simulated process bodies are C++20 coroutines returning Task<T>. A task
// starts suspended; either the Simulator spawns it as a root process or a
// parent coroutine `co_await`s it (symmetric transfer, so arbitrarily deep
// protocol helpers cost nothing at runtime). Exceptions thrown inside a
// task propagate to the awaiter, or — for root tasks — out of
// Simulator::run(), so test failures surface as ordinary gtest failures.
//
// HOUSE RULE (compiler workaround): never embed `co_await` inside a
// larger expression — always hoist into its own statement, e.g.
//     const bool ok = co_await foo();
//     if (!ok) ...
// GCC 12.2 mis-lays out coroutine frames for some forms like
// `if (!co_await task)` (the ramp stores the resume index where the
// actor does not read it; the resumed body then silently never runs).
// bench/ and tests/ are built with the same compiler, so the pattern is
// banned tree-wide rather than detected case by case.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mes::sim {

template <typename T>
class Task;

// Enqueues `h` for resumption at the current simulated instant on the
// simulator whose run loop is active on this thread (simulator.cpp).
void enqueue_resume(std::coroutine_handle<> h);

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
};

// At final suspend, hand the continuation to the *event queue* rather
// than resuming it inline; root tasks have no continuation and control
// returns to the simulator loop.
//
// The indirection is load-bearing. Resuming the parent from inside this
// actor — whether by symmetric transfer or a direct resume() — lets the
// parent run, finish its co_await full-expression and destroy THIS
// coroutine's frame while this actor invocation is still on the native
// stack; GCC's generated actor then touches the freed frame on the way
// out (observed as state-dispatch traps and silently lost continuations
// at both -O0 and -O2). Going through the queue guarantees the child's
// actor has fully returned before the parent can run. Simulated time is
// unaffected: the resume is scheduled at the current instant and ties
// break in insertion order.
template <typename Promise>
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Promise> h) const noexcept
  {
    if (auto continuation = h.promise().continuation) {
      enqueue_resume(continuation);
    }
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object()
    {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    detail::FinalAwaiter<promise_type> final_suspend() const noexcept
    {
      return {};
    }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { this->exception = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : h_{std::exchange(other.h_, nullptr)} {}
  Task(const Task&) = delete;
  Task& operator=(Task&& other) noexcept
  {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task& operator=(const Task&) = delete;
  ~Task()
  {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> awaiting)
  {
    h_.promise().continuation = awaiting;
    h_.resume();  // start the child; it suspends at its first wait
  }
  T await_resume()
  {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

  handle_type handle() const { return h_; }
  handle_type release() { return std::exchange(h_, nullptr); }

 private:
  explicit Task(handle_type h) : h_{h} {}
  handle_type h_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object()
    {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    detail::FinalAwaiter<promise_type> final_suspend() const noexcept
    {
      return {};
    }
    void return_void() const noexcept {}
    void unhandled_exception() { this->exception = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : h_{std::exchange(other.h_, nullptr)} {}
  Task(const Task&) = delete;
  Task& operator=(Task&& other) noexcept
  {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task& operator=(const Task&) = delete;
  ~Task()
  {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> awaiting)
  {
    h_.promise().continuation = awaiting;
    h_.resume();  // start the child; it suspends at its first wait
  }
  void await_resume()
  {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

  handle_type handle() const { return h_; }
  handle_type release() { return std::exchange(h_, nullptr); }

 private:
  explicit Task(handle_type h) : h_{h} {}
  handle_type h_ = nullptr;
};

// Shorthand used by process bodies and protocol helpers.
using Proc = Task<void>;

}  // namespace mes::sim
