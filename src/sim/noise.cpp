#include "sim/noise.h"

#include <algorithm>
#include <cmath>

namespace mes::sim {

NoiseParams scale_load(const NoiseParams& p, double factor)
{
  if (factor == 1.0) return p;
  NoiseParams out = p;
  // Contention for the cores shows up first as more frequent, longer
  // system blocks; then as jitter on every operation and a slower,
  // noisier signal path. Medians scale sub-linearly (the scheduler
  // still round-robins), tails and rates scale linearly.
  const double sub = std::sqrt(factor);
  out.op_cost_base = p.op_cost_base * sub;
  out.op_cost_jitter = p.op_cost_jitter * factor;
  out.wake_latency_median = p.wake_latency_median * sub;
  out.wake_latency_sigma = std::min(1.2, p.wake_latency_sigma * sub);
  out.sleep_overshoot_median = p.sleep_overshoot_median * sub;
  out.block_rate_hz = p.block_rate_hz * factor;
  out.block_duration_median = p.block_duration_median * sub;
  out.notify_path_base = p.notify_path_base * sub;
  out.notify_path_jitter = p.notify_path_jitter * factor;
  out.rx_dispatch_median = p.rx_dispatch_median * sub;
  out.corruption_rate = std::min(0.25, p.corruption_rate * factor);
  return out;
}

NoiseParams shift_paths(const NoiseParams& p, double load)
{
  NoiseParams out = p;
  out.op_cost_base += Duration::us(1.0 * load);
  out.wake_latency_median += Duration::us(4.0 * load);
  out.notify_path_base += Duration::us(3.0 * load);
  out.sleep_overshoot_median += Duration::us(2.0 * load);
  out.rx_dispatch_median += Duration::us(2.0 * load);
  // The runqueue depth also shows up as somewhat more background
  // blocking, but the tails (sigmas, corruption) stay put.
  out.block_rate_hz *= 1.0 + load / 4.0;
  return out;
}

Duration NoiseModel::op_cost(Rng& rng, TimePoint now) const
{
  const NoiseParams& p = params_at(now);
  Duration cost = rng.normal_dur(p.op_cost_base, p.op_cost_jitter);
  // Never cheaper than a quarter of the base: a syscall has a hard floor.
  cost = std::max(cost, p.op_cost_base / 4.0);
  return cost + sample_interference(p, rng, cost);
}

Duration NoiseModel::wake_latency(Rng& rng, TimePoint now) const
{
  const NoiseParams& p = params_at(now);
  return rng.lognormal_dur(p.wake_latency_median, p.wake_latency_sigma);
}

Duration NoiseModel::notify_path(Rng& rng, TimePoint now) const
{
  const NoiseParams& p = params_at(now);
  return rng.normal_dur(p.notify_path_base, p.notify_path_jitter);
}

Duration NoiseModel::sleep_time(Rng& rng, TimePoint now,
                                Duration requested) const
{
  const NoiseParams& p = params_at(now);
  const Duration effective = std::max(requested, p.sleep_floor);
  Duration overshoot_median = p.sleep_overshoot_median;
  double overshoot_sigma = p.sleep_overshoot_sigma;
  if (p.sleep_floor.is_zero() && effective < p.short_sleep_knee &&
      p.short_sleep_knee > Duration::zero()) {
    // Sub-granularity sleep: timer resolution dominates the request.
    const double req_us = std::max(1.0, effective.to_us());
    const double scale = std::sqrt(p.short_sleep_knee.to_us() / req_us);
    overshoot_median = overshoot_median * scale;
    overshoot_sigma *= p.short_sleep_sigma_factor;
  }
  const Duration overshoot = rng.lognormal_dur(overshoot_median,
                                               overshoot_sigma);
  return effective + overshoot + sample_interference(p, rng, effective);
}

Duration NoiseModel::sample_interference(const NoiseParams& p, Rng& rng,
                                         Duration window)
{
  if (p.block_rate_hz <= 0.0 || !(window > Duration::zero())) {
    return Duration::zero();
  }
  const double expected = p.block_rate_hz * window.to_sec();
  const std::uint64_t hits = rng.poisson(expected);
  Duration total = Duration::zero();
  for (std::uint64_t i = 0; i < hits; ++i) {
    total += rng.lognormal_dur(p.block_duration_median,
                               p.block_duration_sigma);
  }
  return total;
}

Duration NoiseModel::interference_over(Rng& rng, TimePoint now,
                                       Duration window) const
{
  return sample_interference(params_at(now), rng, window);
}

Duration NoiseModel::dispatch_latency(Rng& rng, TimePoint now) const
{
  const NoiseParams& p = params_at(now);
  return rng.lognormal_dur(p.dispatch_median, p.dispatch_sigma);
}

Duration NoiseModel::rx_dispatch_latency(Rng& rng, TimePoint now) const
{
  const NoiseParams& p = params_at(now);
  return rng.lognormal_dur(p.rx_dispatch_median, p.rx_dispatch_sigma);
}

Duration NoiseModel::apply_corruption(Rng& rng, TimePoint now,
                                      Duration measured) const
{
  const NoiseParams& p = params_at(now);
  if (!rng.bernoulli(p.corruption_rate)) return measured;
  if (rng.bernoulli(0.5)) {
    return measured + rng.lognormal_dur(p.corruption_extra_median,
                                        p.corruption_extra_sigma);
  }
  return measured * rng.uniform(0.03, 0.35);
}

Duration NoiseModel::post_wait_penalty(Rng& rng, TimePoint now,
                                       Duration waited) const
{
  const NoiseParams& p = params_at(now);
  if (waited <= p.penalty_knee) return Duration::zero();
  const Duration excess = waited - p.penalty_knee;
  const double probability =
      std::min(1.0, p.penalty_ramp_per_us * excess.to_us());
  if (!rng.bernoulli(probability)) return Duration::zero();
  const Duration penalty =
      rng.lognormal_dur(p.penalty_extra_median, p.penalty_extra_sigma) +
      excess * p.penalty_scale;
  return std::min(penalty, p.penalty_cap);
}

}  // namespace mes::sim
