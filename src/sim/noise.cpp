#include "sim/noise.h"

#include <algorithm>
#include <cmath>

namespace mes::sim {

Duration NoiseModel::op_cost(Rng& rng) const
{
  Duration cost = rng.normal_dur(p_.op_cost_base, p_.op_cost_jitter);
  // Never cheaper than a quarter of the base: a syscall has a hard floor.
  cost = std::max(cost, p_.op_cost_base / 4.0);
  return cost + interference_over(rng, cost);
}

Duration NoiseModel::wake_latency(Rng& rng) const
{
  return rng.lognormal_dur(p_.wake_latency_median, p_.wake_latency_sigma);
}

Duration NoiseModel::notify_path(Rng& rng) const
{
  return rng.normal_dur(p_.notify_path_base, p_.notify_path_jitter);
}

Duration NoiseModel::sleep_time(Rng& rng, Duration requested) const
{
  const Duration effective = std::max(requested, p_.sleep_floor);
  Duration overshoot_median = p_.sleep_overshoot_median;
  double overshoot_sigma = p_.sleep_overshoot_sigma;
  if (p_.sleep_floor.is_zero() && effective < p_.short_sleep_knee &&
      p_.short_sleep_knee > Duration::zero()) {
    // Sub-granularity sleep: timer resolution dominates the request.
    const double req_us = std::max(1.0, effective.to_us());
    const double scale = std::sqrt(p_.short_sleep_knee.to_us() / req_us);
    overshoot_median = overshoot_median * scale;
    overshoot_sigma *= p_.short_sleep_sigma_factor;
  }
  const Duration overshoot = rng.lognormal_dur(overshoot_median,
                                               overshoot_sigma);
  return effective + overshoot + interference_over(rng, effective);
}

Duration NoiseModel::interference_over(Rng& rng, Duration window) const
{
  if (p_.block_rate_hz <= 0.0 || !(window > Duration::zero())) {
    return Duration::zero();
  }
  const double expected = p_.block_rate_hz * window.to_sec();
  const std::uint64_t hits = rng.poisson(expected);
  Duration total = Duration::zero();
  for (std::uint64_t i = 0; i < hits; ++i) {
    total += rng.lognormal_dur(p_.block_duration_median,
                               p_.block_duration_sigma);
  }
  return total;
}

Duration NoiseModel::dispatch_latency(Rng& rng) const
{
  return rng.lognormal_dur(p_.dispatch_median, p_.dispatch_sigma);
}

Duration NoiseModel::rx_dispatch_latency(Rng& rng) const
{
  return rng.lognormal_dur(p_.rx_dispatch_median, p_.rx_dispatch_sigma);
}

Duration NoiseModel::apply_corruption(Rng& rng, Duration measured) const
{
  if (!rng.bernoulli(p_.corruption_rate)) return measured;
  if (rng.bernoulli(0.5)) {
    return measured + rng.lognormal_dur(p_.corruption_extra_median,
                                        p_.corruption_extra_sigma);
  }
  return measured * rng.uniform(0.03, 0.35);
}

Duration NoiseModel::post_wait_penalty(Rng& rng, Duration waited) const
{
  if (waited <= p_.penalty_knee) return Duration::zero();
  const Duration excess = waited - p_.penalty_knee;
  const double probability =
      std::min(1.0, p_.penalty_ramp_per_us * excess.to_us());
  if (!rng.bernoulli(probability)) return Duration::zero();
  const Duration penalty =
      rng.lognormal_dur(p_.penalty_extra_median, p_.penalty_extra_sigma) +
      excess * p_.penalty_scale;
  return std::min(penalty, p_.penalty_cap);
}

}  // namespace mes::sim
