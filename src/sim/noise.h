// Timing-noise model — the physics of the covert channel.
//
// The paper's BER/TR curves are statistical consequences of OS timing
// noise versus the attacker's chosen time parameters. This model captures
// the four noise sources the paper identifies:
//
//  * per-operation cost of MESM calls plus the sleep overshoot that
//    dominates the Table IV per-bit overhead arithmetic (~29 us/bit);
//  * scheduler wake-up latency when a blocked process is released, plus
//    the Linux-specific 58 us sleep wake-up floor (§V.C.1);
//  * Poisson "system block" interference — interrupt handling and
//    resource scheduling delays that lengthen an occupancy window
//    (§V.C.1 explains Fig. 9(a)'s ti=30 divergence with exactly this);
//  * a post-wait penalty: a process that stayed blocked or asleep far
//    beyond a scheduler quantum accumulates displaced work and may be
//    re-scheduled late. This is the "the number of times that the system
//    is blocked will increase" effect the paper gives for the BER rise at
//    tt1 >= 220 us in Fig. 10.
//
// The paper measures stationary hosts; real ones are not. NoiseModel is
// therefore an interface over *time-varying* parameter sets: every
// sampler resolves the parameters in effect at the simulated instant
// `now` and draws from the caller's RNG stream. The stationary
// implementation lives here; the non-stationary processes (Markov load
// bursts, phased noisy neighbors, migration stalls) in sim/noise_process.
#pragma once

#include <cstddef>
#include <string>

#include "util/rng.h"
#include "util/time.h"

namespace mes::sim {

struct NoiseParams {
  // MESM operation cost (one lock/unlock/set/wait call).
  Duration op_cost_base = Duration::us(3.0);
  Duration op_cost_jitter = Duration::us(0.5);  // normal stddev

  // Wake-up of a blocked process after signal/release.
  Duration wake_latency_median = Duration::us(6.0);
  double wake_latency_sigma = 0.35;  // lognormal shape

  // sleep() behaviour. The floor models Linux's minimum effective sleep
  // (~58 us, §V.C.1); Windows profiles set it to zero.
  Duration sleep_floor = Duration::zero();
  Duration sleep_overshoot_median = Duration::us(12.0);
  double sleep_overshoot_sigma = 0.35;
  // Below this request, sub-granularity sleeps become erratic (the
  // Fig. 9(a) wall at tw0 = 15 us: "it is difficult for the Spy to
  // capture the '0' due to the small tw0"). Overshoot median and shape
  // inflate as the request shrinks under the knee.
  Duration short_sleep_knee = Duration::us(15.0);
  double short_sleep_sigma_factor = 1.8;

  // Poisson background interference over occupied windows.
  double block_rate_hz = 2500.0;
  Duration block_duration_median = Duration::us(10.0);
  double block_duration_sigma = 0.45;

  // Post-wait penalty (displaced-work model).
  Duration penalty_knee = Duration::us(210.0);
  double penalty_ramp_per_us = 2.2e-4;  // probability per us beyond knee
  Duration penalty_extra_median = Duration::us(60.0);
  double penalty_extra_sigma = 0.50;
  double penalty_scale = 1.0;  // plus this fraction of the excess wait
  // Displaced work is bounded: a scheduler never withholds a runnable
  // process for more than a few quanta, no matter how long it slept.
  Duration penalty_cap = Duration::us(400.0);

  // Signal propagation path (notify -> waiter). Grows across isolation
  // boundaries: sandbox IPC shims, virtualized interrupt delivery.
  Duration notify_path_base = Duration::us(1.5);
  Duration notify_path_jitter = Duration::us(0.3);

  // Dispatch latency after the inter-bit rendezvous: the scheduler
  // re-runs both endpoints with a skewed delay.
  Duration dispatch_median = Duration::us(3.0);
  double dispatch_sigma = 0.70;

  // Receiver-side re-dispatch after the rendezvous. The Spy blocks twice
  // per bit (once on the critical resource, once at the rendezvous), so
  // its re-dispatch is slower and heavier-tailed than the Trojan's; the
  // tail truncates measured holds and is the Spy-resolution limit behind
  // Fig. 10's BER rise at small tt1.
  Duration rx_dispatch_median = Duration::us(22.0);
  double rx_dispatch_sigma = 0.58;

  // Rare measurement corruptions: SMIs, timer coalescing, core
  // migrations — events the per-op model does not resolve. They set the
  // BER floor every channel shows at its optimal time parameters
  // (Table IV residuals of 0.55-0.76%); the time-parameter-dependent
  // error structure comes from the mechanistic terms above. Calibrated,
  // not derived — see DESIGN.md §5.
  double corruption_rate = 0.006;
  Duration corruption_extra_median = Duration::us(120.0);
  double corruption_extra_sigma = 0.6;
};

// Scales `p` by a background-load factor > 1 (a noisy co-tenant): more
// frequent and longer system blocks, heavier jitter and corruption, a
// slower signal path. factor == 1 returns `p` unchanged. Used by the
// non-stationary processes and the scenario layers.
NoiseParams scale_load(const NoiseParams& p, double factor);

// Lengthens the scheduling and signal *paths* by near-constant offsets
// (a co-tenant pinning the remaining cores: runqueues deepen, wakeups
// and signal delivery queue behind it) while leaving the distribution
// shapes mostly alone. This is the regime change that silently breaks a
// calibrated latency classifier — every level mean moves — without
// making the channel physically slower to operate once re-anchored.
NoiseParams shift_paths(const NoiseParams& p, double load);

// Interface: the parameter set may vary with simulated time, but every
// sampler draws from the *caller's* RNG stream, so per-process
// determinism is preserved regardless of event interleaving.
class NoiseModel {
 public:
  virtual ~NoiseModel() = default;

  // The parameter set in effect at simulated instant `now`.
  virtual const NoiseParams& params_at(TimePoint now) const = 0;

  // Stable phase id at `now` (0 for stationary models). Lets the
  // protocol layer bucket per-phase metrics and detect regime changes.
  virtual std::size_t phase_at(TimePoint /*now*/) const { return 0; }

  virtual bool stationary() const { return true; }

  // Human-readable regime description ("stationary", "markov[...]", ...).
  virtual std::string describe() const { return "stationary"; }

  // --- samplers (parameters resolved at `now`) --------------------------

  // Cost of one MESM operation, including any background block that
  // lands inside it.
  Duration op_cost(Rng& rng, TimePoint now) const;

  // Latency between a release/signal and the waiter actually running.
  Duration wake_latency(Rng& rng, TimePoint now) const;

  // Signal path cost paid by the *notifier* (grows across VM boundaries).
  Duration notify_path(Rng& rng, TimePoint now) const;

  // Actual duration of a requested sleep.
  Duration sleep_time(Rng& rng, TimePoint now, Duration requested) const;

  // Total background-interference delay accumulated over `window`.
  Duration interference_over(Rng& rng, TimePoint now, Duration window) const;

  // Extra scheduling delay suffered after having been parked for
  // `waited`; zero below the knee.
  Duration post_wait_penalty(Rng& rng, TimePoint now, Duration waited) const;

  // Re-dispatch latency after a rendezvous (heavy-tailed).
  Duration dispatch_latency(Rng& rng, TimePoint now) const;
  Duration rx_dispatch_latency(Rng& rng, TimePoint now) const;

  // Applies a rare measurement corruption to a Spy's measured latency:
  // with probability corruption_rate the reading is either inflated by
  // a large delay or truncated to a fraction of itself.
  Duration apply_corruption(Rng& rng, TimePoint now, Duration measured) const;

 protected:
  // Shared sampler bodies over an explicit parameter set.
  static Duration sample_interference(const NoiseParams& p, Rng& rng,
                                      Duration window);
};

// The paper's model: one parameter set for the whole experiment.
// Byte-compatible with the historical (pre-interface) NoiseModel.
class StationaryNoise final : public NoiseModel {
 public:
  explicit StationaryNoise(NoiseParams params) : p_{params} {}

  const NoiseParams& params() const { return p_; }
  const NoiseParams& params_at(TimePoint) const override { return p_; }

 private:
  NoiseParams p_;
};

}  // namespace mes::sim
