#include "sim/wait_queue.h"

namespace mes::sim {

std::size_t WaitQueue::size() const
{
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (!node->woken && !node->timed_out) ++n;
  }
  return n;
}

void WaitQueue::push(std::shared_ptr<Node> node)
{
  nodes_.push_back(std::move(node));
}

std::shared_ptr<WaitQueue::Node> WaitQueue::pop_live()
{
  while (!nodes_.empty()) {
    std::shared_ptr<Node> node;
    if (order_ == WakeOrder::fifo) {
      node = nodes_.front();
      nodes_.pop_front();
    } else {
      node = nodes_.back();
      nodes_.pop_back();
    }
    if (!node->woken && !node->timed_out) return node;
    // Timed-out nodes are removed lazily here.
  }
  return nullptr;
}

bool WaitQueue::notify_one(Simulator& sim, Duration latency)
{
  auto node = pop_live();
  if (!node) return false;
  node->woken = true;
  sim.call_after(latency, [node] { node->handle.resume(); });
  return true;
}

std::size_t WaitQueue::notify_all(Simulator& sim, Duration latency)
{
  std::size_t n = 0;
  while (notify_one(sim, latency)) ++n;
  return n;
}

}  // namespace mes::sim
