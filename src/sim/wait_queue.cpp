#include "sim/wait_queue.h"

namespace mes::sim {

WaitQueue::~WaitQueue()
{
  std::uint32_t idx = head_;
  while (idx != Simulator::kNil) {
    Simulator::WaitNode& node = sim_->wait_node(idx);
    const std::uint32_t next = node.next;
    node.owner = nullptr;  // orphaned: still parked, queue is gone
    node.prev = Simulator::kNil;
    node.next = Simulator::kNil;
    idx = next;
  }
}

void WaitQueue::link_back(Simulator& sim, std::uint32_t idx)
{
  sim_ = &sim;
  Simulator::WaitNode& node = sim.wait_node(idx);
  node.prev = tail_;
  node.next = Simulator::kNil;
  if (tail_ != Simulator::kNil) {
    sim.wait_node(tail_).next = idx;
  } else {
    head_ = idx;
  }
  tail_ = idx;
  ++live_;
}

void WaitQueue::unlink(Simulator& sim, std::uint32_t idx)
{
  Simulator::WaitNode& node = sim.wait_node(idx);
  if (node.prev != Simulator::kNil) {
    sim.wait_node(node.prev).next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != Simulator::kNil) {
    sim.wait_node(node.next).prev = node.prev;
  } else {
    tail_ = node.prev;
  }
  node.prev = Simulator::kNil;
  node.next = Simulator::kNil;
  node.owner = nullptr;
  --live_;
}

std::uint32_t WaitQueue::pop(Simulator& sim)
{
  const std::uint32_t idx = (order_ == WakeOrder::fifo) ? head_ : tail_;
  if (idx != Simulator::kNil) unlink(sim, idx);
  return idx;
}

bool WaitQueue::notify_one(Simulator& sim, Duration latency)
{
  const std::uint32_t idx = pop(sim);
  if (idx == Simulator::kNil) return false;
  Simulator::WaitNode& node = sim.wait_node(idx);
  node.state = Simulator::WaitNode::State::woken;
  sim.schedule_resume(node.handle, latency);
  return true;
}

std::size_t WaitQueue::notify_all(Simulator& sim, Duration latency)
{
  if (live_ == 0) return 0;
  if (live_ == 1) {
    notify_one(sim, latency);
    return 1;
  }
  // One coalesced wake event carries every handle; dispatch resumes them
  // back to back in wake order, which matches what N single events with
  // consecutive sequence numbers would have produced.
  const std::uint32_t slot = sim.acquire_wake_batch();
  auto& handles = sim.wake_batch_handles(slot);
  std::size_t n = 0;
  for (std::uint32_t idx = pop(sim); idx != Simulator::kNil; idx = pop(sim)) {
    Simulator::WaitNode& node = sim.wait_node(idx);
    node.state = Simulator::WaitNode::State::woken;
    handles.push_back(node.handle);
    ++n;
  }
  sim.commit_wake_batch(slot, latency);
  return n;
}

}  // namespace mes::sim
