// Deterministic discrete-event simulator.
//
// The simulator owns a time-ordered queue of callbacks. Root processes are
// coroutines (Task<void>) spawned onto it; awaiting `delay()` parks the
// coroutine and schedules its resumption. Equal-time events fire in
// insertion order, so every experiment is exactly reproducible for a given
// seed — which is what lets the paper's statistical tables be regression
// tested.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <algorithm>
#include <string>
#include <vector>

#include "sim/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace mes::sim {

class WaitQueue;

struct RunResult {
  std::uint64_t events_processed = 0;
  // Roots still suspended when the queue drained (deadlocked/starved).
  std::size_t blocked_roots = 0;
  bool hit_event_limit = false;
  TimePoint end_time;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules an arbitrary callback. `after` must be non-negative.
  void call_at(TimePoint t, std::function<void()> fn);
  void call_after(Duration after, std::function<void()> fn);
  void schedule_resume(std::coroutine_handle<> h, Duration after);

  // Registers a root process; it starts when run() reaches the current
  // time (spawn order is preserved for simultaneous starts).
  void spawn(Proc proc, std::string name = {});
  // Same, but the root is a daemon: it may still be parked when the
  // queue drains without counting as a blocked (deadlocked) root.
  void spawn_daemon(Proc proc, std::string name = {});

  // Awaitable: suspend the calling coroutine for `d` of simulated time.
  auto delay(Duration d)
  {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const
      {
        sim.schedule_resume(h, d);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // Runs until the queue drains (or a safety limit trips). Rethrows the
  // first exception that escaped any root process.
  RunResult run(std::uint64_t max_events = kDefaultMaxEvents);

  // The simulator whose run loop is active on this thread (null outside
  // run()). Task completion hops schedule through it; see task.h.
  static Simulator* current();

  static constexpr std::uint64_t kDefaultMaxEvents = 500'000'000ULL;

  // --- wait-node pool (the WaitQueue parking lot) -----------------------
  //
  // Every blocked simulated process is a pool slot here rather than a
  // heap node: WaitQueues hold intrusive index lists into this pool, so
  // parking and waking never allocate on the steady state. Slots are
  // recycled through a free list; `gen` is bumped on every release so a
  // stale timeout event (pushed when the wait began, outliving the wake
  // — and possibly the queue itself) detects the slot was reused and
  // does nothing. A WaitQueue must always park on the same simulator,
  // and that simulator must be declared before (destroyed after) the
  // queue — true for every stack in the tree (ExperimentEnv tears the
  // kernel down first; frames parked at simulator teardown release
  // their queues while the pool is still alive).

  static constexpr std::uint32_t kNil = 0xffffffffu;

  // mes-lint: hot-pod
  struct WaitNode {
    std::coroutine_handle<> handle;
    WaitQueue* owner = nullptr;  // null once unlinked (woken/orphaned)
    std::uint32_t prev = kNil;   // intrusive links within the owner queue
    std::uint32_t next = kNil;
    std::uint32_t gen = 0;
    enum class State : std::uint8_t { free_slot, parked, woken, timed_out };
    State state = State::free_slot;
  };

  std::uint32_t alloc_wait_node(std::coroutine_handle<> h, WaitQueue* owner);
  WaitNode& wait_node(std::uint32_t idx) { return wait_nodes_[idx]; }
  void free_wait_node(std::uint32_t idx);
  // Pushes the timeout event for a freshly parked node (captures the
  // node's current generation; fires as a no-op if the wait already
  // resolved). `timeout` must be non-negative.
  void schedule_wait_timeout(std::uint32_t idx, Duration timeout);
  // Live slots currently allocated (parked or wake-in-flight); tests use
  // this to pin the O(live) guarantee.
  std::size_t wait_nodes_in_use() const { return wait_nodes_in_use_; }

  // --- coalesced wakeups ------------------------------------------------
  //
  // notify_all on N waiters pushes ONE event whose payload is the wake
  // order; dispatch resumes the handles back to back. Equal-time
  // ordering is exactly what N consecutive single-resume pushes would
  // have produced: the batch occupies the first sequence slot, and
  // anything a resumed waiter schedules lands after it. Batch payloads
  // are pooled vectors, so a storm allocates only until the pool warms.
  std::uint32_t acquire_wake_batch();
  std::vector<std::coroutine_handle<>>& wake_batch_handles(std::uint32_t slot)
  {
    return batch_slots_[slot].handles;
  }
  // Pushes the batch event (non-negative latency); the slot returns to
  // the pool after it fires.
  void commit_wake_batch(std::uint32_t slot, Duration latency);

 private:
  // Coroutine resumes are the hot path — virtually every simulated
  // event is one. The event is a POD: resumes carry the bare handle,
  // and the cold std::function payload of call_at/call_after lives in a
  // pooled side table indexed by `slot`, so pushing/popping never
  // constructs, moves or destroys a callable wrapper.
  enum class EventKind : std::uint8_t {
    resume,        // `resume` handle (fast path)
    callback,      // fn_slots_[slot]
    wake_batch,    // batch_slots_[slot]
    wait_timeout,  // wait_nodes_[slot], valid while gen matches
  };
  // mes-lint: hot-pod
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::coroutine_handle<> resume;
    std::uint32_t slot;
    std::uint32_t gen;
    EventKind kind;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const
    {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  // A pending event parked in the timer wheel: the Event plus one
  // intrusive link. Nodes live in an arena (wheel_nodes_) and recycle
  // through a free list, like the fn-slot/wait-node pools.
  // mes-lint: hot-pod
  struct WheelNode {
    Event ev;
    std::uint32_t next;
  };
  // Singly linked bucket with O(1) append; kNil-terminated.
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };
  struct Root {
    Proc::handle_type handle;
    std::string name;
    // Daemon roots (server/agent loops that park forever by design, e.g.
    // the DME message pumps) are excluded from the blocked_roots count —
    // a drained queue with only daemons parked is a clean finish, not a
    // deadlock. Exceptions they raise still rethrow.
    bool daemon = false;
  };
  struct FnSlot {
    std::function<void()> fn;
    std::uint32_t next_free = kNil;
  };
  struct BatchSlot {
    std::vector<std::coroutine_handle<>> handles;
    std::uint32_t next_free = kNil;
  };

  void rethrow_root_exception();
  // `what` names the public entry point for the time-in-the-past error.
  void push_event(Event ev, const char* what);
  Event pop_next_event();
  std::uint32_t take_fn_slot(std::function<void()> fn);
  void dispatch_wait_timeout(const Event& ev);

  // --- timer wheel ------------------------------------------------------
  //
  // The pending-event set is a bucketed hierarchical timer wheel over
  // integer-nanosecond ticks, replacing the old binary heap: push and
  // pop are O(1) appends/unlinks, and each event cascades through at
  // most four levels on its way to the ready list. Placement is
  // *prefix-matched*: an event at tick t lands at the level determined
  // by the highest bit-group in which t differs from the wheel cursor,
  // so two events for the same tick always share a bucket (appended in
  // seq order) no matter when they were pushed — which is what keeps
  // the dispatch order bit-identical to the (time, seq) heap. Level
  // geometry, with c = cur_tick_:
  //
  //   ready  t == c                             the current tick, in seq order
  //   L0     t>>14 == c>>14  16384 x 1-tick     slot = t & 16383
  //   L1     t>>20 == c>>20     64 x 16384-tick slot = (t >> 14) & 63
  //   L2     t>>26 == c>>26     64 x 2^20       slot = (t >> 20) & 63
  //   L3     t>>32 == c>>32     64 x 2^26       slot = (t >> 26) & 63
  //   L4     t>>38 == c>>38     64 x 2^32       slot = (t >> 32) & 63
  //   overflow: beyond the 2^38 ns (~4.6 min) horizon — writeback
  //   intervals and ARQ/park timeouts — a (time, seq) min-heap whose
  //   entries migrate into the wheel one horizon window at a time.
  //
  // Invariant: no bucket at or below the cursor's slot is ever occupied
  // (past events are rejected; a same-slot tick would share the
  // cursor's prefix one level down), so advance() just scans each
  // level's occupancy bitmap bottom-up for the first set bit.
  void place_event(const Event& ev);
  void place_node(std::uint32_t idx);
  std::uint32_t alloc_wheel_node(const Event& ev);
  // Moves the wheel forward to the next occupied tick and fills the
  // ready list with it. Pre: ready list empty, pending_ > 0.
  void advance_wheel();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::vector<Root> roots_;

  // Wheel geometry. L0 resolves single ticks over a 2^kL0Bits window —
  // wide enough that the microsecond-scale delays of the paper's
  // channels land there directly (a 16 us window keeps the 1-13 us
  // delays of channel rounds out of the cascade path); four 6-bit
  // levels above it push the horizon to 2^(kL0Bits+24) ns before the
  // overflow heap takes over.
  static constexpr int kL0Bits = 14;
  static constexpr int kL0Slots = 1 << kL0Bits;
  static constexpr int kL0Words = kL0Slots / 64;
  static constexpr int kHorizonBits = kL0Bits + 24;

  std::vector<WheelNode> wheel_nodes_;
  std::uint32_t free_wheel_node_ = kNil;
  std::uint32_t ready_head_ = kNil;
  std::uint32_t ready_tail_ = kNil;
  std::int64_t cur_tick_ = 0;
  Bucket l0_[kL0Slots];
  std::uint64_t l0_bits_[kL0Words] = {};
  // Summary bitmap: bit w set iff l0_bits_[w] != 0.
  std::uint64_t l0_words_[(kL0Words + 63) / 64] = {};
  Bucket lv_[4][64];
  std::uint64_t lv_bits_[4] = {};
  // Far-future overflow, min-heap on (time, seq) via EventLater.
  std::vector<Event> overflow_;
  std::uint64_t pending_ = 0;

  std::vector<FnSlot> fn_slots_;
  std::uint32_t free_fn_slot_ = kNil;
  std::vector<WaitNode> wait_nodes_;
  std::uint32_t free_wait_node_ = kNil;
  std::size_t wait_nodes_in_use_ = 0;
  std::vector<BatchSlot> batch_slots_;
  std::uint32_t free_batch_slot_ = kNil;

  Rng rng_;
};

}  // namespace mes::sim
