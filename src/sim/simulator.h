// Deterministic discrete-event simulator.
//
// The simulator owns a time-ordered queue of callbacks. Root processes are
// coroutines (Task<void>) spawned onto it; awaiting `delay()` parks the
// coroutine and schedules its resumption. Equal-time events fire in
// insertion order, so every experiment is exactly reproducible for a given
// seed — which is what lets the paper's statistical tables be regression
// tested.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "sim/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace mes::sim {

class WaitQueue;

struct RunResult {
  std::uint64_t events_processed = 0;
  // Roots still suspended when the queue drained (deadlocked/starved).
  std::size_t blocked_roots = 0;
  bool hit_event_limit = false;
  TimePoint end_time;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules an arbitrary callback. `after` must be non-negative.
  void call_at(TimePoint t, std::function<void()> fn);
  void call_after(Duration after, std::function<void()> fn);
  void schedule_resume(std::coroutine_handle<> h, Duration after);

  // Registers a root process; it starts when run() reaches the current
  // time (spawn order is preserved for simultaneous starts).
  void spawn(Proc proc, std::string name = {});

  // Awaitable: suspend the calling coroutine for `d` of simulated time.
  auto delay(Duration d)
  {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const
      {
        sim.schedule_resume(h, d);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // Runs until the queue drains (or a safety limit trips). Rethrows the
  // first exception that escaped any root process.
  RunResult run(std::uint64_t max_events = kDefaultMaxEvents);

  // The simulator whose run loop is active on this thread (null outside
  // run()). Task completion hops schedule through it; see task.h.
  static Simulator* current();

  static constexpr std::uint64_t kDefaultMaxEvents = 500'000'000ULL;

  // --- wait-node pool (the WaitQueue parking lot) -----------------------
  //
  // Every blocked simulated process is a pool slot here rather than a
  // heap node: WaitQueues hold intrusive index lists into this pool, so
  // parking and waking never allocate on the steady state. Slots are
  // recycled through a free list; `gen` is bumped on every release so a
  // stale timeout event (pushed when the wait began, outliving the wake
  // — and possibly the queue itself) detects the slot was reused and
  // does nothing. A WaitQueue must always park on the same simulator,
  // and that simulator must be declared before (destroyed after) the
  // queue — true for every stack in the tree (ExperimentEnv tears the
  // kernel down first; frames parked at simulator teardown release
  // their queues while the pool is still alive).

  static constexpr std::uint32_t kNil = 0xffffffffu;

  // mes-lint: hot-pod
  struct WaitNode {
    std::coroutine_handle<> handle;
    WaitQueue* owner = nullptr;  // null once unlinked (woken/orphaned)
    std::uint32_t prev = kNil;   // intrusive links within the owner queue
    std::uint32_t next = kNil;
    std::uint32_t gen = 0;
    enum class State : std::uint8_t { free_slot, parked, woken, timed_out };
    State state = State::free_slot;
  };

  std::uint32_t alloc_wait_node(std::coroutine_handle<> h, WaitQueue* owner);
  WaitNode& wait_node(std::uint32_t idx) { return wait_nodes_[idx]; }
  void free_wait_node(std::uint32_t idx);
  // Pushes the timeout event for a freshly parked node (captures the
  // node's current generation; fires as a no-op if the wait already
  // resolved). `timeout` must be non-negative.
  void schedule_wait_timeout(std::uint32_t idx, Duration timeout);
  // Live slots currently allocated (parked or wake-in-flight); tests use
  // this to pin the O(live) guarantee.
  std::size_t wait_nodes_in_use() const { return wait_nodes_in_use_; }

  // --- coalesced wakeups ------------------------------------------------
  //
  // notify_all on N waiters pushes ONE event whose payload is the wake
  // order; dispatch resumes the handles back to back. Equal-time
  // ordering is exactly what N consecutive single-resume pushes would
  // have produced: the batch occupies the first sequence slot, and
  // anything a resumed waiter schedules lands after it. Batch payloads
  // are pooled vectors, so a storm allocates only until the pool warms.
  std::uint32_t acquire_wake_batch();
  std::vector<std::coroutine_handle<>>& wake_batch_handles(std::uint32_t slot)
  {
    return batch_slots_[slot].handles;
  }
  // Pushes the batch event (non-negative latency); the slot returns to
  // the pool after it fires.
  void commit_wake_batch(std::uint32_t slot, Duration latency);

 private:
  // Coroutine resumes are the hot path — virtually every simulated
  // event is one. The event is a POD: resumes carry the bare handle,
  // and the cold std::function payload of call_at/call_after lives in a
  // pooled side table indexed by `slot`, so pushing/popping never
  // constructs, moves or destroys a callable wrapper.
  enum class EventKind : std::uint8_t {
    resume,        // `resume` handle (fast path)
    callback,      // fn_slots_[slot]
    wake_batch,    // batch_slots_[slot]
    wait_timeout,  // wait_nodes_[slot], valid while gen matches
  };
  // mes-lint: hot-pod
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::coroutine_handle<> resume;
    std::uint32_t slot;
    std::uint32_t gen;
    EventKind kind;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const
    {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Root {
    Proc::handle_type handle;
    std::string name;
  };
  struct FnSlot {
    std::function<void()> fn;
    std::uint32_t next_free = kNil;
  };
  struct BatchSlot {
    std::vector<std::coroutine_handle<>> handles;
    std::uint32_t next_free = kNil;
  };

  void rethrow_root_exception();
  // `what` names the public entry point for the time-in-the-past error.
  void push_event(Event ev, const char* what);
  Event pop_next_event();
  std::uint32_t take_fn_slot(std::function<void()> fn);
  void dispatch_wait_timeout(const Event& ev);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  // Min-heap on (time, seq) managed with push_heap/pop_heap so events
  // can be moved out legally before execution.
  std::vector<Event> queue_;
  std::vector<Root> roots_;

  std::vector<FnSlot> fn_slots_;
  std::uint32_t free_fn_slot_ = kNil;
  std::vector<WaitNode> wait_nodes_;
  std::uint32_t free_wait_node_ = kNil;
  std::size_t wait_nodes_in_use_ = 0;
  std::vector<BatchSlot> batch_slots_;
  std::uint32_t free_batch_slot_ = kNil;

  Rng rng_;
};

}  // namespace mes::sim
