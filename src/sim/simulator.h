// Deterministic discrete-event simulator.
//
// The simulator owns a time-ordered queue of callbacks. Root processes are
// coroutines (Task<void>) spawned onto it; awaiting `delay()` parks the
// coroutine and schedules its resumption. Equal-time events fire in
// insertion order, so every experiment is exactly reproducible for a given
// seed — which is what lets the paper's statistical tables be regression
// tested.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include "sim/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace mes::sim {

struct RunResult {
  std::uint64_t events_processed = 0;
  // Roots still suspended when the queue drained (deadlocked/starved).
  std::size_t blocked_roots = 0;
  bool hit_event_limit = false;
  TimePoint end_time;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules an arbitrary callback. `after` must be non-negative.
  void call_at(TimePoint t, std::function<void()> fn);
  void call_after(Duration after, std::function<void()> fn);
  void schedule_resume(std::coroutine_handle<> h, Duration after);

  // Registers a root process; it starts when run() reaches the current
  // time (spawn order is preserved for simultaneous starts).
  void spawn(Proc proc, std::string name = {});

  // Awaitable: suspend the calling coroutine for `d` of simulated time.
  auto delay(Duration d)
  {
    struct Awaiter {
      Simulator& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const
      {
        sim.schedule_resume(h, d);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // Runs until the queue drains (or a safety limit trips). Rethrows the
  // first exception that escaped any root process.
  RunResult run(std::uint64_t max_events = kDefaultMaxEvents);

  // The simulator whose run loop is active on this thread (null outside
  // run()). Task completion hops schedule through it; see task.h.
  static Simulator* current();

  static constexpr std::uint64_t kDefaultMaxEvents = 500'000'000ULL;

 private:
  // Coroutine resumes are the hot path — virtually every simulated
  // event is one. They carry the bare handle instead of a type-erased
  // std::function, so pushing/popping a resume never constructs,
  // moves or destroys a callable wrapper.
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    std::coroutine_handle<> resume;  // non-null: resume fast path
    std::function<void()> fn;        // general callbacks otherwise
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const
    {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct Root {
    Proc::handle_type handle;
    std::string name;
  };

  void rethrow_root_exception();
  void push_event(Event ev);
  Event pop_next_event();

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  // Min-heap on (time, seq) managed with push_heap/pop_heap so the
  // handler can be moved out legally before execution.
  std::vector<Event> queue_;
  std::vector<Root> roots_;
  Rng rng_;
};

}  // namespace mes::sim
