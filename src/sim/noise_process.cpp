#include "sim/noise_process.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mes::sim {

namespace {

// Decorrelates the regime stream from the simulator/process streams
// that are seeded from the same cell seed (splitmix-style odd mixer).
constexpr std::uint64_t kRegimeStreamSalt = 0x9d5c7f26a3b1e84fULL;

}  // namespace

PiecewiseNoise::PiecewiseNoise(std::uint64_t seed)
    : rng_{seed ^ kRegimeStreamSalt}
{
}

const NoisePhase& PiecewiseNoise::phase_covering(TimePoint now) const
{
  const Duration t = now - TimePoint::origin();
  while (horizon_ <= t) {
    NoisePhase next = const_cast<PiecewiseNoise*>(this)->next_phase(
        rng_, horizon_);
    if (!(next.length > Duration::zero())) {
      throw std::logic_error{"PiecewiseNoise: phase must have length"};
    }
    next.start = horizon_;
    horizon_ += next.length;
    phases_.push_back(std::move(next));
  }
  // Mostly-monotonic queries: the last phase is the common case.
  if (phases_.back().start <= t) return phases_.back();
  const auto it = std::upper_bound(
      phases_.begin(), phases_.end(), t,
      [](Duration v, const NoisePhase& ph) { return v < ph.start; });
  return *(it - 1);
}

const NoiseParams& PiecewiseNoise::params_at(TimePoint now) const
{
  return phase_covering(now).params;
}

std::size_t PiecewiseNoise::phase_at(TimePoint now) const
{
  return phase_covering(now).phase_id;
}

// --- Markov ------------------------------------------------------------

MarkovNoise::MarkovNoise(MarkovSpec spec, std::uint64_t seed)
    : PiecewiseNoise{seed}, spec_{std::move(spec)}
{
  if (spec_.states.size() < 2 ||
      spec_.mean_dwell.size() != spec_.states.size()) {
    throw std::invalid_argument{
        "MarkovNoise: need >= 2 states with matching dwell times"};
  }
}

NoisePhase MarkovNoise::next_phase(Rng& rng, Duration)
{
  NoisePhase phase;
  phase.phase_id = state_;
  phase.params = spec_.states[state_];
  phase.length = std::max(Duration::us(1.0),
                          rng.exponential_dur(spec_.mean_dwell[state_]));
  // Jump to a uniformly chosen *other* state.
  const std::size_t hop =
      1 + rng.next_below(spec_.states.size() - 1);
  state_ = (state_ + hop) % spec_.states.size();
  return phase;
}

std::string MarkovNoise::describe() const
{
  char buf[64];
  std::snprintf(buf, sizeof buf, "markov[%zu states]", spec_.states.size());
  return buf;
}

// --- Phased ------------------------------------------------------------

PhasedNoise::PhasedNoise(PhasedSpec spec, std::uint64_t seed)
    : PiecewiseNoise{seed}, spec_{std::move(spec)}
{
  if (!(spec_.quiet_len > Duration::zero()) ||
      !(spec_.busy_len > Duration::zero())) {
    throw std::invalid_argument{"PhasedNoise: zero-length duty cycle"};
  }
}

NoisePhase PhasedNoise::next_phase(Rng& rng, Duration)
{
  if (!emitted_first_) {
    emitted_first_ = true;
    // Rotate the cycle by a seed-derived offset: the first (possibly
    // truncated) piece lands somewhere inside the quiet+busy period.
    const double period_us =
        spec_.quiet_len.to_us() + spec_.busy_len.to_us();
    const double cut_us =
        spec_.randomize_offset ? rng.uniform(0.0, period_us) : 0.0;
    NoisePhase phase;
    if (cut_us < spec_.quiet_len.to_us()) {
      phase.phase_id = 0;
      phase.params = spec_.quiet;
      phase.length = spec_.quiet_len - Duration::us(cut_us);
      busy_next_ = true;
    } else {
      phase.phase_id = 1;
      phase.params = spec_.busy;
      phase.length =
          Duration::us(period_us - cut_us);
      busy_next_ = false;
    }
    phase.length = std::max(phase.length, Duration::us(1.0));
    return phase;
  }
  NoisePhase phase;
  phase.phase_id = busy_next_ ? 1 : 0;
  phase.params = busy_next_ ? spec_.busy : spec_.quiet;
  phase.length = busy_next_ ? spec_.busy_len : spec_.quiet_len;
  busy_next_ = !busy_next_;
  return phase;
}

std::string PhasedNoise::describe() const
{
  char buf[96];
  std::snprintf(buf, sizeof buf, "phased[%.0fms quiet / %.0fms busy]",
                spec_.quiet_len.to_us() / 1000.0,
                spec_.busy_len.to_us() / 1000.0);
  return buf;
}

// --- Stalls ------------------------------------------------------------

StallNoise::StallNoise(StallSpec spec, std::uint64_t seed)
    : PiecewiseNoise{seed},
      spec_{std::move(spec)},
      stalled_{scale_load(spec_.base, spec_.stall_load)}
{
  if (!(spec_.mean_gap > Duration::zero()) ||
      !(spec_.stall_max >= spec_.stall_min) ||
      !(spec_.stall_min > Duration::zero())) {
    throw std::invalid_argument{"StallNoise: invalid gap/stall lengths"};
  }
}

NoisePhase StallNoise::next_phase(Rng& rng, Duration)
{
  NoisePhase phase;
  if (stall_next_) {
    phase.phase_id = 1;
    phase.params = stalled_;
    phase.length = Duration::us(rng.uniform(spec_.stall_min.to_us(),
                                            spec_.stall_max.to_us()));
  } else {
    phase.phase_id = 0;
    phase.params = spec_.base;
    phase.length = std::max(Duration::us(1.0),
                            rng.exponential_dur(spec_.mean_gap));
  }
  stall_next_ = !stall_next_;
  return phase;
}

std::string StallNoise::describe() const
{
  char buf[96];
  std::snprintf(buf, sizeof buf, "stalls[~every %.0fms, %.0f-%.0fms]",
                spec_.mean_gap.to_us() / 1000.0,
                spec_.stall_min.to_us() / 1000.0,
                spec_.stall_max.to_us() / 1000.0);
  return buf;
}

// --- Shift -------------------------------------------------------------

ShiftNoise::ShiftNoise(ShiftSpec spec, std::uint64_t seed)
    : PiecewiseNoise{seed}, spec_{std::move(spec)}
{
  if (!(spec_.shift_at > Duration::zero())) {
    throw std::invalid_argument{"ShiftNoise: shift must be after origin"};
  }
}

NoisePhase ShiftNoise::next_phase(Rng&, Duration)
{
  NoisePhase phase;
  if (!shifted_) {
    shifted_ = true;
    phase.phase_id = 0;
    phase.params = spec_.before;
    phase.length = spec_.shift_at;
  } else {
    phase.phase_id = 1;
    phase.params = spec_.after;
    // "Forever": one simulated hour per piece keeps the timeline short.
    phase.length = Duration::us(3.6e9);
  }
  return phase;
}

std::string ShiftNoise::describe() const
{
  char buf[64];
  std::snprintf(buf, sizeof buf, "shift[@%.0fms]",
                spec_.shift_at.to_us() / 1000.0);
  return buf;
}

// --- declarative spec --------------------------------------------------

const char* to_string(NoiseSpec::Regime r)
{
  switch (r) {
    case NoiseSpec::Regime::stationary: return "stationary";
    case NoiseSpec::Regime::markov: return "markov";
    case NoiseSpec::Regime::phased: return "phased";
    case NoiseSpec::Regime::stalls: return "stalls";
    case NoiseSpec::Regime::shift: return "shift";
  }
  return "?";
}

std::shared_ptr<const NoiseModel> make_noise_model(const NoiseSpec& spec,
                                                   const NoiseParams& base,
                                                   std::uint64_t seed)
{
  switch (spec.regime) {
    case NoiseSpec::Regime::stationary:
      return std::make_shared<StationaryNoise>(base);
    case NoiseSpec::Regime::markov: {
      MarkovSpec m;
      m.states = {base, scale_load(base, spec.busy_load)};
      m.mean_dwell = {spec.quiet_len, spec.busy_len};
      return std::make_shared<MarkovNoise>(std::move(m), seed);
    }
    case NoiseSpec::Regime::phased: {
      PhasedSpec p;
      p.quiet = base;
      p.busy = scale_load(base, spec.busy_load);
      p.quiet_len = spec.quiet_len;
      p.busy_len = spec.busy_len;
      return std::make_shared<PhasedNoise>(std::move(p), seed);
    }
    case NoiseSpec::Regime::stalls: {
      StallSpec s;
      s.base = base;
      s.mean_gap = spec.quiet_len;
      s.stall_max = spec.busy_len;
      s.stall_min = spec.busy_len / 5.0;
      s.stall_load = spec.busy_load;
      return std::make_shared<StallNoise>(std::move(s), seed);
    }
    case NoiseSpec::Regime::shift: {
      ShiftSpec s;
      s.before = base;
      // A path-offset shift, not a tail explosion: the point of this
      // regime is that a *stale calibration* dies while the channel
      // itself stays workable at a re-anchored operating point.
      s.after = shift_paths(base, spec.busy_load);
      s.shift_at = spec.quiet_len;
      return std::make_shared<ShiftNoise>(std::move(s), seed);
    }
  }
  return std::make_shared<StationaryNoise>(base);
}

}  // namespace mes::sim
