#include "analysis/capacity.h"

#include <algorithm>
#include <cmath>

namespace mes::analysis {

double binary_entropy(double p)
{
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double bsc_capacity(double bit_error_rate)
{
  const double p = std::clamp(bit_error_rate, 0.0, 0.5);
  return 1.0 - binary_entropy(p);
}

double effective_capacity_bps(double throughput_bps, double bit_error_rate)
{
  return throughput_bps * bsc_capacity(bit_error_rate);
}

double hamming74_block_failure(double bit_error_rate)
{
  const double p = std::clamp(bit_error_rate, 0.0, 1.0);
  const double q = 1.0 - p;
  // P(0 or 1 flips in 7 trials) survives decoding.
  const double survive = std::pow(q, 7) + 7.0 * p * std::pow(q, 6);
  return 1.0 - survive;
}

}  // namespace mes::analysis
