#include "analysis/sweep.h"

#include <algorithm>
#include <future>
#include <thread>

#include "codec/frame.h"
#include "core/channel.h"
#include "os/vfs.h"
#include "os/win_objects.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mes::analysis {

namespace {

std::uint64_t point_seed(std::uint64_t base, double x, double s)
{
  // Stable per-point stream: hash the parameters into the seed.
  const auto xi = static_cast<std::uint64_t>(x * 1000.0);
  const auto si = static_cast<std::uint64_t>(s * 1000.0);
  std::uint64_t h = base ^ (xi * 0x9e3779b97f4a7c15ULL);
  h ^= si + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

SweepPoint run_point(double x, double s, std::size_t bits,
                     std::uint64_t seed_base,
                     const std::function<ExperimentConfig(double, double)>&
                         make_config)
{
  SweepPoint point;
  point.x = x;
  point.series = s;
  ExperimentConfig cfg = make_config(x, s);
  cfg.seed = point_seed(seed_base, x, s);
  Rng payload_rng{cfg.seed ^ 0xabcdef12345ULL};
  const std::size_t width = cfg.timing.symbol_bits;
  const std::size_t n = bits - bits % std::max<std::size_t>(width, 1);
  const BitVec payload = BitVec::random(payload_rng, n);
  const ChannelReport rep = run_transmission(cfg, payload);
  point.ok = rep.ok;
  point.failure = rep.failure_reason;
  point.ber = rep.ber;
  point.throughput_bps = rep.throughput_bps;
  return point;
}

}  // namespace

std::vector<SweepPoint> sweep_grid(
    const std::vector<double>& xs, const std::vector<double>& series,
    std::size_t bits_per_point, std::uint64_t seed_base,
    const std::function<ExperimentConfig(double, double)>& make_config)
{
  struct Job {
    double x;
    double s;
  };
  std::vector<Job> jobs;
  for (double s : series) {
    for (double x : xs) jobs.push_back(Job{x, s});
  }

  std::vector<SweepPoint> points(jobs.size());
  const std::size_t workers =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(std::min(workers, jobs.size()));
  for (std::size_t w = 0; w < std::min(workers, jobs.size()); ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) return;
        points[i] = run_point(jobs[i].x, jobs[i].s, bits_per_point, seed_base,
                              make_config);
      }
    });
  }
  for (auto& t : pool) t.join();
  return points;
}

std::vector<SweepPoint> sweep(
    const std::vector<double>& xs, std::size_t bits_per_point,
    std::uint64_t seed_base,
    const std::function<ExperimentConfig(double)>& make_config)
{
  return sweep_grid(xs, {0.0}, bits_per_point, seed_base,
                    [&](double x, double) { return make_config(x); });
}

MultiPairResult run_multi_pair(const ExperimentConfig& base,
                               std::size_t pairs, std::size_t bits_per_pair)
{
  MultiPairResult result;
  result.pairs = pairs;
  if (pairs == 0) return result;

  const ScenarioProfile profile =
      make_profile(base.scenario, flavor_of(base.mechanism), base.hypervisor);
  sim::Simulator simulator{base.seed};
  os::Kernel kernel{simulator, profile.noise, base.fairness};
  kernel.objects().set_namespace_sharing(
      profile.topology.shared_object_namespace);
  kernel.vfs().set_shared_volume(profile.topology.shared_file_volume);

  const ChannelClass klass = class_of(base.mechanism);
  const std::size_t width = base.timing.symbol_bits;
  const codec::SymbolSchedule schedule =
      klass == ChannelClass::cooperation
          ? codec::SymbolSchedule{width, base.timing.t0, base.timing.interval}
          : codec::SymbolSchedule{1, Duration::zero(), base.timing.t1};

  struct Pair {
    std::unique_ptr<core::Channel> channel;
    std::unique_ptr<core::RunContext> ctx;
    BitVec payload;
    std::vector<std::size_t> symbols;
    core::RxResult rx;
  };
  std::deque<Pair> all;
  Rng payload_rng{base.seed ^ 0x5eedULL};

  for (std::size_t i = 0; i < pairs; ++i) {
    Pair p;
    p.channel = core::make_channel(base.mechanism);
    p.payload = BitVec::random(payload_rng, bits_per_pair);
    const codec::Frame frame = codec::make_frame(p.payload, base.sync_bits);
    p.symbols = schedule.encode(frame.bits);

    os::Process& trojan = kernel.create_process(
        "trojan" + std::to_string(i), profile.topology.trojan_ns);
    os::Process& spy = kernel.create_process("spy" + std::to_string(i),
                                             profile.topology.spy_ns);
    const long zeros = static_cast<long>(
        std::count(p.symbols.begin(), p.symbols.end(), std::size_t{0}));
    const double threshold_us = klass == ChannelClass::contention
                                    ? (10.0 + base.timing.t1.to_us()) / 2.0
                                    : base.timing.t0.to_us() + 25.0 +
                                          base.timing.interval.to_us() / 2.0;
    p.ctx = std::make_unique<core::RunContext>(core::RunContext{
        kernel, trojan, spy, base.timing, schedule,
        codec::LatencyClassifier::binary(Duration::us(threshold_us)),
        base.loop_cost, base.tag + "_" + std::to_string(i), zeros});
    if (!p.channel->setup(*p.ctx).empty()) continue;
    all.push_back(std::move(p));
  }

  for (auto& p : all) {
    simulator.spawn(p.channel->trojan_run(*p.ctx, p.symbols));
    simulator.spawn(p.channel->spy_run(*p.ctx, p.symbols.size(), p.rx));
  }
  const sim::RunResult run = simulator.run();
  const Duration elapsed = run.end_time - TimePoint::origin();
  if (!(elapsed > Duration::zero())) return result;

  std::size_t total_bits = 0;
  double ber_sum = 0.0;
  for (auto& p : all) {
    total_bits += p.symbols.size() * width;
    const BitVec rx_bits = schedule.decode(p.rx.symbols);
    const auto stripped = codec::check_and_strip(rx_bits, base.sync_bits);
    const BitVec got = stripped.value_or(
        rx_bits.slice(std::min(base.sync_bits, rx_bits.size()),
                      rx_bits.size()));
    ber_sum += p.payload.empty()
                   ? 0.0
                   : static_cast<double>(p.payload.hamming_distance(got)) /
                         static_cast<double>(p.payload.size());
  }
  result.aggregate_bps = static_cast<double>(total_bits) / elapsed.to_sec();
  result.mean_ber = all.empty() ? 0.0 : ber_sum / static_cast<double>(all.size());
  return result;
}

}  // namespace mes::analysis
