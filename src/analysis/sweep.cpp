#include "analysis/sweep.h"

#include <algorithm>

#include "codec/frame.h"
#include "exec/campaign.h"
#include "exec/env.h"
#include "exec/seed.h"
#include "util/rng.h"

namespace mes::analysis {

std::vector<SweepPoint> sweep_grid(
    const std::vector<double>& xs, const std::vector<double>& series,
    std::size_t bits_per_point, std::uint64_t seed_base,
    const std::function<ExperimentConfig(double, double)>& make_config)
{
  // Sweep points are campaign cells with hand-built coordinates: the
  // swept parameter is the timing axis, the series the repeat axis.
  // Seeds route through the same splitmix64 mixer as every other grid,
  // keyed on the parameter *values* so refining a sweep keeps the
  // points it shares with the previous grid.
  std::vector<exec::CampaignCell> cells;
  cells.reserve(xs.size() * series.size());
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (std::size_t xi = 0; xi < xs.size(); ++xi) {
      exec::CampaignCell cell;
      cell.coord.timing = xi;
      cell.coord.repeat = si;
      cell.coord.flat = cells.size();
      cell.config = make_config(xs[xi], series[si]);
      cell.config.seed = exec::mix_seed(
          seed_base,
          {exec::coord_bits(xs[xi]), exec::coord_bits(series[si])});
      cell.payload_bits = bits_per_point;
      cells.push_back(std::move(cell));
    }
  }

  const std::vector<exec::CellResult> results =
      exec::CampaignRunner{}.run_cells(std::move(cells));

  std::vector<SweepPoint> points(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SweepPoint& point = points[i];
    point.x = xs[results[i].cell.coord.timing];
    point.series = series[results[i].cell.coord.repeat];
    point.ok = results[i].report.ok;
    point.failure = results[i].report.failure_reason;
    point.ber = results[i].report.ber;
    point.throughput_bps = results[i].report.throughput_bps;
  }
  return points;
}

std::vector<SweepPoint> sweep(
    const std::vector<double>& xs, std::size_t bits_per_point,
    std::uint64_t seed_base,
    const std::function<ExperimentConfig(double)>& make_config)
{
  return sweep_grid(xs, {0.0}, bits_per_point, seed_base,
                    [&](double x, double) { return make_config(x); });
}

std::vector<ScenarioMatrixCell> scenario_matrix(
    const std::vector<Mechanism>& mechanisms,
    const std::vector<std::string>& scenario_names, ProtocolMode protocol,
    std::size_t payload_bits, std::uint64_t seed_base, std::size_t repeats)
{
  exec::ExperimentPlan plan;
  plan.mechanisms = mechanisms;
  plan.scenarios.clear();
  for (const std::string& name : scenario_names) {
    plan.scenarios.push_back(exec::named_scenario(name));
  }
  plan.protocols = {{to_string(protocol), protocol}};
  plan.repeats = std::max<std::size_t>(repeats, 1);
  plan.seed_base = seed_base;
  plan.payload_bits = payload_bits;

  const exec::CampaignResult result = exec::CampaignRunner{}.run(plan);

  // Fold seed replicates: a point "delivers" when every replicate did.
  std::vector<ScenarioMatrixCell> cells;
  for (const exec::CellResult& c : result.cells) {
    const std::size_t point = c.cell.coord.flat / plan.repeats;
    if (point >= cells.size()) {
      cells.push_back(ScenarioMatrixCell{});
      cells.back().scenario = c.cell.config.scenario_name;
      cells.back().mechanism = c.cell.config.mechanism;
      cells.back().ran = true;
      cells.back().delivered = true;
    }
    ScenarioMatrixCell& cell = cells[point];
    cell.ran = cell.ran && c.report.ok;
    cell.delivered = cell.delivered && c.report.sync_ok;
    cell.ber += c.report.ber / static_cast<double>(plan.repeats);
    cell.goodput_bps +=
        c.report.throughput_bps / static_cast<double>(plan.repeats);
    if (c.report.proto) {
      cell.drift_events += c.report.proto->drift_events;
      cell.recalibrations += c.report.proto->recalibrations;
    }
    if (cell.failure.empty()) cell.failure = c.report.failure_reason;
  }
  return cells;
}

MultiPairResult run_multi_pair(const ExperimentConfig& base,
                               std::size_t pairs, std::size_t bits_per_pair)
{
  MultiPairResult result;
  result.pairs_requested = pairs;
  if (pairs == 0) return result;

  // All pairs share one simulation (§V.C.1's multi-process scaling
  // argument); the env hands each its own channel and resource tag.
  exec::ExperimentEnv env{base};
  const codec::SymbolSchedule schedule = env.schedule();

  struct PairTx {
    BitVec payload;
    std::vector<std::size_t> symbols;
    exec::ExperimentEnv::Endpoint* endpoint = nullptr;
  };
  std::vector<PairTx> live;
  live.reserve(pairs);
  Rng payload_rng{base.seed ^ 0x5eedULL};

  for (std::size_t i = 0; i < pairs; ++i) {
    PairTx p;
    p.payload = BitVec::random(payload_rng, bits_per_pair);
    const codec::Frame frame = codec::make_frame(p.payload, base.sync_bits);
    p.symbols = schedule.encode(frame.bits);
    exec::ExperimentEnv::Endpoint& ep = env.add_pair();
    if (!ep.error.empty()) {
      ++result.pairs_failed;
      if (result.first_failure.empty()) result.first_failure = ep.error;
      continue;
    }
    p.endpoint = &ep;
    live.push_back(std::move(p));
  }
  result.pairs = live.size();

  for (PairTx& p : live) env.spawn_transmission(*p.endpoint, p.symbols);
  const sim::RunResult run = env.run();
  const Duration elapsed = run.end_time - TimePoint::origin();
  if (!(elapsed > Duration::zero())) return result;

  const std::size_t width = std::max<std::size_t>(base.timing.symbol_bits, 1);
  std::size_t total_bits = 0;
  double ber_sum = 0.0;
  for (const PairTx& p : live) {
    total_bits += p.symbols.size() * width;
    const BitVec rx_bits = schedule.decode(p.endpoint->rx.symbols);
    const auto stripped = codec::check_and_strip(rx_bits, base.sync_bits);
    const BitVec got = stripped.value_or(
        rx_bits.slice(std::min(base.sync_bits, rx_bits.size()),
                      rx_bits.size()));
    ber_sum += p.payload.empty()
                   ? 0.0
                   : static_cast<double>(p.payload.hamming_distance(got)) /
                         static_cast<double>(p.payload.size());
  }
  result.aggregate_bps = static_cast<double>(total_bits) / elapsed.to_sec();
  result.mean_ber =
      live.empty() ? 0.0 : ber_sum / static_cast<double>(live.size());
  return result;
}

}  // namespace mes::analysis
