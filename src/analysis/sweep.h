// Parameter-sweep driver used by the figure benches.
//
// Each sweep point runs a full framed transmission with a derived seed
// and aggregates BER/TR. Points run in parallel (each owns its whole
// simulator stack) to keep the Fig. 9 grid fast.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/runner.h"

namespace mes::analysis {

struct SweepPoint {
  double x = 0.0;             // the swept parameter value (us)
  double series = 0.0;        // secondary parameter (e.g. ti), if any
  double ber = 0.0;           // fraction
  double throughput_bps = 0.0;
  bool ok = false;
  std::string failure;
};

// Runs `make_config(x, series)` over the cross product, transmitting
// `bits_per_point` random payload bits per point. Deterministic: the
// payload and seed derive from (seed_base, x, series).
std::vector<SweepPoint> sweep_grid(
    const std::vector<double>& xs, const std::vector<double>& series,
    std::size_t bits_per_point, std::uint64_t seed_base,
    const std::function<ExperimentConfig(double x, double s)>& make_config);

// Single-series convenience wrapper.
std::vector<SweepPoint> sweep(
    const std::vector<double>& xs, std::size_t bits_per_point,
    std::uint64_t seed_base,
    const std::function<ExperimentConfig(double x)>& make_config);

// Aggregate throughput of `pairs` concurrent Trojan/Spy pairs, all
// inside one simulation (§V.C.1's multi-process scaling argument).
// `pairs` is the LIVE count — pairs whose endpoints actually came up
// and transmitted; per-pair rates must divide by it, not by the
// requested count, or failed pairs silently deflate the average.
struct MultiPairResult {
  std::size_t pairs = 0;           // live pairs that transmitted
  std::size_t pairs_requested = 0;
  std::size_t pairs_failed = 0;    // endpoints that failed setup
  std::string first_failure;       // why, for the first failed pair
  double aggregate_bps = 0.0;
  double mean_ber = 0.0;
};
MultiPairResult run_multi_pair(const ExperimentConfig& base,
                               std::size_t pairs,
                               std::size_t bits_per_pair);

// Mechanism x scenario-library matrix: every mechanism against every
// named scenario (registry keys), one protocol mode throughout. This is
// the survivability map behind bench/ablation_scenarios and the README
// table — Table VI's "which mechanisms cross which boundary" question,
// asked of the whole library. Runs through the campaign engine
// (parallel, deterministic per seed).
struct ScenarioMatrixCell {
  std::string scenario;  // registry key
  Mechanism mechanism = Mechanism::event;
  bool ran = false;       // setup succeeded (topology allowed it)
  bool delivered = false; // sync_ok / session completed
  double ber = 0.0;
  double goodput_bps = 0.0;
  std::size_t drift_events = 0;
  std::size_t recalibrations = 0;
  std::string failure;
};
std::vector<ScenarioMatrixCell> scenario_matrix(
    const std::vector<Mechanism>& mechanisms,
    const std::vector<std::string>& scenario_names, ProtocolMode protocol,
    std::size_t payload_bits, std::uint64_t seed_base,
    std::size_t repeats = 1);

}  // namespace mes::analysis
