// Information-theoretic channel analysis.
//
// A MES channel with bit error rate p is a binary symmetric channel;
// its capacity C = 1 - H2(p) bounds what any coding scheme (e.g. the
// codec's Hamming layer) can extract. The benches report effective
// capacity alongside raw TR so coding overheads can be judged against
// the theoretical ceiling.
#pragma once

#include <cstddef>

namespace mes::analysis {

// Binary entropy in bits; H2(0) = H2(1) = 0, peak 1.0 at p = 0.5.
double binary_entropy(double p);

// BSC capacity in bits per channel use: 1 - H2(p), clamped to [0, 1].
double bsc_capacity(double bit_error_rate);

// Achievable information rate of a channel running at `throughput_bps`
// raw with `bit_error_rate`: throughput x capacity.
double effective_capacity_bps(double throughput_bps, double bit_error_rate);

// Residual block-error probability of Hamming(7,4) on a BSC: the block
// fails when 2+ of its 7 bits flip.
double hamming74_block_failure(double bit_error_rate);

}  // namespace mes::analysis
