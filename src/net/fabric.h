// Deterministic message-passing fabric joining N simulated kernels on
// ONE simulator timeline.
//
// There are no real sockets and no real threads here: a send samples
// the (src, dst) link model — latency jitter, loss, reorder — and
// schedules the delivery as an ordinary simulator event, so an entire
// cluster executes in the one deterministic event order the rest of the
// tree already relies on. Each ordered link owns a dedicated RNG stream
// forked at construction in a fixed order, which makes the loss/jitter
// draws a function of that link's own traffic only: campaigns stay
// byte-identical no matter how many worker threads (--jobs) replay
// other cells, and no matter in which order links are first used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/cluster.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_queue.h"
#include "util/rng.h"
#include "util/time.h"

namespace mes::net {

using NodeId = std::uint32_t;

// One datagram. The payload is three bare words (request ids, Lamport
// clocks) — the DME protocols need nothing richer, and a POD keeps the
// in-flight copies allocation-free.
// mes-lint: hot-pod
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t port = 0;  // demultiplexes agents sharing a node
  std::uint32_t kind = 0;  // protocol-defined opcode
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

class Fabric;

// A (node, port) mailbox: delivered messages queue here until the
// owning agent pumps them. Obtain via Fabric::endpoint(); addresses are
// stable for the fabric's lifetime.
class Endpoint {
 public:
  // Not for direct use — Fabric::endpoint() is the factory; public only
  // because deque::emplace_back constructs through the allocator.
  Endpoint(Fabric& fabric, NodeId node, std::uint32_t port)
      : fabric_{fabric}, node_{node}, port_{port}
  {
  }

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId node() const { return node_; }
  std::uint32_t port() const { return port_; }
  std::size_t pending() const { return inbox_.size(); }

  // Waits for the next delivered message; nullopt on timeout. Single
  // consumer per endpoint (each lock agent pumps its own mailbox).
  [[nodiscard]] sim::Task<std::optional<Message>> recv(
      Duration timeout = Duration::max());

 private:
  friend class Fabric;

  Fabric& fabric_;
  NodeId node_;
  std::uint32_t port_;
  std::deque<Message> inbox_;
  sim::WaitQueue arrivals_;
};

class Fabric {
 public:
  // Forks one RNG stream per ordered (src, dst) link from `seed`, in a
  // fixed (src-major) order — the determinism anchor described above.
  Fabric(sim::Simulator& sim, const ClusterParams& params,
         std::uint64_t seed);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulator& sim() { return sim_; }
  std::size_t size() const { return params_.size; }
  const ClusterParams& params() const { return params_; }

  // Opens (or returns) the mailbox for (node, port).
  Endpoint& endpoint(NodeId node, std::uint32_t port);

  // Samples the (src, dst) link model and schedules the delivery;
  // returns false when the loss model dropped the message (callers
  // either count the drop or retransmit — discarding the result is a
  // lint error, see tools/lint checked-errors).
  [[nodiscard]] bool send(Message msg);

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_dropped() const { return dropped_; }

 private:
  Duration sample_latency(NodeId src, NodeId dst, Rng& rng);
  void deliver(Message msg);

  sim::Simulator& sim_;
  ClusterParams params_;
  std::vector<Rng> link_rng_;       // size*size, row-major by (src, dst)
  std::deque<Endpoint> endpoints_;  // deque: WaitQueue addresses pinned
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mes::net
