#include "net/fabric.h"

#include <stdexcept>

namespace mes::net {

sim::Task<std::optional<Message>> Endpoint::recv(Duration timeout)
{
  while (inbox_.empty()) {
    const sim::WaitOutcome outcome =
        co_await arrivals_.wait(fabric_.sim(), timeout);
    if (outcome == sim::WaitOutcome::timed_out) co_return std::nullopt;
  }
  const Message msg = inbox_.front();
  inbox_.pop_front();
  co_return msg;
}

Fabric::Fabric(sim::Simulator& sim, const ClusterParams& params,
               std::uint64_t seed)
    : sim_{sim}, params_{params}
{
  if (params_.size < 2) {
    throw std::invalid_argument{"net::Fabric needs at least 2 nodes"};
  }
  // One stream per ordered link, forked in fixed src-major order: a
  // link's future draws are pinned at construction, independent of
  // which link happens to be exercised first.
  Rng master{seed};
  link_rng_.reserve(params_.size * params_.size);
  for (std::size_t src = 0; src < params_.size; ++src) {
    for (std::size_t dst = 0; dst < params_.size; ++dst) {
      link_rng_.push_back(master.fork());
    }
  }
}

Endpoint& Fabric::endpoint(NodeId node, std::uint32_t port)
{
  for (Endpoint& ep : endpoints_) {
    if (ep.node_ == node && ep.port_ == port) return ep;
  }
  endpoints_.emplace_back(*this, node, port);
  return endpoints_.back();
}

bool Fabric::send(Message msg)
{
  if (msg.src >= params_.size || msg.dst >= params_.size) {
    throw std::out_of_range{"net::Fabric::send: node id out of range"};
  }
  Rng& rng = link_rng_[msg.src * params_.size + msg.dst];
  ++sent_;
  if (params_.loss > 0.0 && rng.bernoulli(params_.loss)) {
    ++dropped_;
    return false;
  }
  const Duration latency = sample_latency(msg.src, msg.dst, rng);
  sim_.call_after(latency, [this, msg] { deliver(msg); });
  return true;
}

Duration Fabric::sample_latency(NodeId src, NodeId dst, Rng& rng)
{
  Duration latency =
      rng.lognormal_dur(params_.link_base, params_.link_jitter_sigma);
  if (params_.reorder > 0.0 && rng.bernoulli(params_.reorder)) {
    // The straggler picks up enough extra delay for later sends on the
    // same link to overtake it.
    latency += params_.reorder_extra * rng.uniform(0.5, 1.5);
  }
  if (params_.slow_node != kNoNode &&
      (src == params_.slow_node || dst == params_.slow_node) &&
      sim_.now() >= TimePoint::origin() + params_.slow_from) {
    latency = latency * params_.slow_factor;
  }
  return latency;
}

void Fabric::deliver(Message msg)
{
  Endpoint& ep = endpoint(msg.dst, msg.port);
  ep.inbox_.push_back(msg);
  ep.arrivals_.notify_one(sim_);
}

}  // namespace mes::net
