// Cluster topology parameters for the multi-node fabric.
//
// Deliberately dependency-light (util/time.h only): scenario profiles
// embed a ClusterParams the same way they embed os::StorageParams, so
// this header is included from scenario/profile.h without dragging the
// simulator in. `size == 0` (the default) means the scenario is
// single-host and no fabric is built.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/time.h"

namespace mes::net {

// Sentinel for "no node" (e.g. no slow quorum member).
constexpr std::uint32_t kNoNode = 0xffffffffu;

struct ClusterParams {
  std::size_t size = 0;  // node count; < 2 disables cluster mode

  // Where the channel endpoints live. The remaining nodes only host
  // lock-agent daemons (quorum members / permission granters).
  std::uint32_t trojan_node = 0;
  std::uint32_t spy_node = 1;

  // Per-link one-way latency model: lognormal around `link_base`
  // (median) with shape `link_jitter_sigma`, sampled from a dedicated
  // per-link RNG stream (see net::Fabric).
  Duration link_base = Duration::us(120);
  double link_jitter_sigma = 0.25;

  // Loss/reorder, also drawn from the per-link streams. A reordered
  // message picks up an extra delay so later sends can overtake it.
  double loss = 0.0;
  double reorder = 0.0;
  Duration reorder_extra = Duration::us(250);

  // One member running slow (the drift-recalibration stress): every
  // link touching `slow_node` is `slow_factor` x slower once the clock
  // passes `slow_from`.
  std::uint32_t slow_node = kNoNode;
  double slow_factor = 1.0;
  Duration slow_from = Duration::zero();

  bool enabled() const { return size >= 2; }

  friend bool operator==(const ClusterParams&, const ClusterParams&) = default;
};

}  // namespace mes::net
