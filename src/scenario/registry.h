// The scenario registry: a string-keyed library of deployment
// scenarios composed from isolation and workload layers.
//
// The paper evaluates three cells; the ROADMAP wants "as many scenarios
// as you can imagine". This registry makes a scenario a *value* built
// by stacking layers — each isolation layer adds its noise deltas and
// cuts visibility, each workload layer turns the regime non-stationary
// — instead of a case in a closed enum. The three paper cells are
// registry entries like any other (and resolve to byte-identical
// profiles, regression-locked by tests/golden). Campaigns, the CLI and
// the benches all address scenarios by registry name.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/profile.h"

namespace mes::scenario {

// Composes a ScenarioProfile layer by layer. Isolation layers apply
// *additive* noise deltas, so they nest (a sandbox inside a VM pays
// both boundaries); workload layers select the non-stationary regime.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name);

  // --- isolation layers -------------------------------------------------
  // Syscall-interposition sandbox (Firejail / Sandboxie) around the
  // Trojan: every operation pays a shim; it does not virtualize the
  // object manager or the volume (§III restricts *writing* only).
  ScenarioBuilder& sandbox();
  // VM boundary between Trojan and Spy: virtualized interrupt delivery,
  // split object namespaces; a type-1 hypervisor shares a host-backed
  // volume, a type-2 shares nothing (§V.C.3).
  ScenarioBuilder& vm(HypervisorType type);
  // Operator-mapped shared volume (overrides the hypervisor's default
  // file visibility; the only channel across an otherwise sealed pair).
  ScenarioBuilder& shared_volume();

  // --- workload layers (pick at most one regime) -------------------------
  // A calmer host: background interference scaled down.
  ScenarioBuilder& calm(double factor);
  // Periodic co-tenant duty cycle (phased busy/quiet neighbor).
  ScenarioBuilder& noisy_neighbor(double load, Duration quiet, Duration busy);
  // Markov-modulated load bursts (exponential dwells, random hops).
  ScenarioBuilder& bursty_load(double load, Duration quiet_dwell,
                               Duration busy_dwell);
  // Rare long whole-host stalls (live migration / snapshot quiesce).
  ScenarioBuilder& migration_stalls(Duration mean_gap, Duration stall_max,
                                    double load);
  // One-shot regime shift at a fixed instant (the sharpest drift case).
  ScenarioBuilder& regime_shift(double load, Duration at);

  // --- storage layers (the flush-device model; os/page_cache.h) ----------
  // Co-tenant I/O pressure: the flush device serves every page `load`
  // times slower, so queues build behind any batch.
  ScenarioBuilder& disk_pressure(double load);
  // Journal contention: every fsync commits `extra_pages` additional
  // journal records through the shared device (and data=ordered
  // coupling is forced on).
  ScenarioBuilder& journal_contention(std::size_t extra_pages);
  // Writeback storm: the dirty-page daemon flushes at `interval`
  // instead of its lazy default, contending with foreground fsyncs.
  ScenarioBuilder& writeback_storm(Duration interval);

  // --- cluster layers (the multi-node fabric; net/cluster.h) -------------
  // N kernels joined by a message fabric whose links draw a lognormal
  // one-way latency around `link_base`. Enables the DME channel family;
  // single-host mechanisms cannot span nodes and fail setup.
  ScenarioBuilder& cluster(std::size_t nodes, Duration link_base,
                           double jitter_sigma);
  // Seed-derived loss/reorder on every link (per-link RNG streams).
  ScenarioBuilder& lossy_fabric(double loss, double reorder,
                                Duration reorder_extra);
  // One quorum member running slow from `from` on: every link touching
  // `node` is `factor` x slower — the drift-recalibration stress.
  ScenarioBuilder& slow_member(std::uint32_t node, double factor,
                               Duration from);

  // Overrides the anchor class (defaults: local, or the last isolation
  // layer's nearest paper cell).
  ScenarioBuilder& anchor(Scenario s);

  ScenarioProfile build(OsFlavor flavor) const;

 private:
  ScenarioProfile profile_;
  os::NamespaceId next_ns_ = 1;
};

// One registry entry: metadata plus the profile factory.
struct ScenarioDef {
  std::string name;     // canonical key (also the CSV/JSON scenario value)
  std::string summary;
  std::vector<std::string> aliases;
  std::vector<std::string> layers;  // display copy of the layer stack
  Scenario legacy = Scenario::local;  // anchor class / Timeset row
  bool hypervisor_sensitive = false;  // honors ExperimentConfig::hypervisor
  bool non_stationary = false;
  std::function<ScenarioProfile(OsFlavor, HypervisorType)> build;
};

// The built-in library, in registration order (the three legacy cells
// first). >= 8 entries, >= 3 non-stationary.
const std::vector<ScenarioDef>& library();

// Lookup by canonical name or alias; nullptr when unknown.
const ScenarioDef* find_scenario(std::string_view name);

// Lookup that throws std::invalid_argument with the known names listed.
const ScenarioDef& scenario_or_throw(std::string_view name);

// Canonical names, registration order.
std::vector<std::string> scenario_names();

// The registry entry a legacy enum value resolves to.
const ScenarioDef& legacy_def(Scenario s);

}  // namespace mes::scenario
