// Deployment scenarios (§V.A): local, cross-sandbox, cross-VM.
//
// A scenario bundles (a) the timing-noise regime — isolation layers add
// per-operation latency and jitter — and (b) the *visibility topology*:
// which namespaces the Trojan and Spy live in, whether named kernel
// objects resolve across them, and whether they see a shared file
// volume. The topology is what reproduces Table VI's finding that only
// file-backed mechanisms survive a VM boundary, and only under a type-1
// hypervisor.
#pragma once

#include <string>

#include "os/types.h"
#include "sim/noise.h"

namespace mes {

enum class Scenario { local, cross_sandbox, cross_vm };

// Hypervisor taxonomy from §V.C.3: Hyper-V (type-1) runs on the metal and
// its VMs share host-backed objects; VMware Workstation (type-2) runs on
// a host OS and shares nothing between guests.
enum class HypervisorType { none, type1, type2 };

// Which OS personality the mechanism belongs to. Linux contributes
// flock; Windows contributes the kernel-object mechanisms. The flavor
// selects the sleep floor (§V.C.1: Linux needs ~58 us to wake a sleeper,
// "this problem does not exist in Windows").
enum class OsFlavor { windows, linux_like };

struct Topology {
  os::NamespaceId trojan_ns = 0;
  os::NamespaceId spy_ns = 0;
  bool shared_object_namespace = true;  // named kernel objects resolve
  bool shared_file_volume = true;       // paths resolve to the same inode
};

struct ScenarioProfile {
  Scenario scenario = Scenario::local;
  std::string name;
  HypervisorType hypervisor = HypervisorType::none;
  sim::NoiseParams noise;
  Topology topology;
};

const char* to_string(Scenario s);
const char* to_string(HypervisorType h);

// Builds the calibrated profile for a scenario. For cross-VM the
// hypervisor type decides the topology (type-1 shares a host volume but
// not object namespaces; type-2 shares nothing).
ScenarioProfile make_profile(Scenario scenario, OsFlavor flavor,
                             HypervisorType hypervisor = HypervisorType::none);

}  // namespace mes
