// Deployment scenarios: who the Trojan and Spy are to each other.
//
// A scenario bundles (a) the timing-noise regime — isolation layers add
// per-operation latency and jitter, co-tenant workloads make it vary
// over time — and (b) the *visibility topology*: which namespaces the
// Trojan and Spy live in, whether named kernel objects resolve across
// them, and whether they see a shared file volume. The topology is what
// reproduces Table VI's finding that only file-backed mechanisms
// survive a VM boundary, and only under a type-1 hypervisor.
//
// The paper's three cells (local, cross-sandbox, cross-VM; §V.A) are
// the `Scenario` enum. It survives as the *anchor class* — the nearest
// paper cell, which is what selects a Timeset row — but scenarios
// themselves are open-ended: the string-keyed registry in
// scenario/registry.h composes profiles from isolation and workload
// layers, and everything downstream (campaigns, CLI, benches)
// addresses them by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "os/page_cache.h"
#include "os/types.h"
#include "sim/noise.h"
#include "sim/noise_process.h"

namespace mes {

enum class Scenario { local, cross_sandbox, cross_vm };

// Hypervisor taxonomy from §V.C.3: Hyper-V (type-1) runs on the metal and
// its VMs share host-backed objects; VMware Workstation (type-2) runs on
// a host OS and shares nothing between guests.
enum class HypervisorType { none, type1, type2 };

// Which OS personality the mechanism belongs to. Linux contributes
// flock; Windows contributes the kernel-object mechanisms. The flavor
// selects the sleep floor (§V.C.1: Linux needs ~58 us to wake a sleeper,
// "this problem does not exist in Windows").
enum class OsFlavor { windows, linux_like };

struct Topology {
  os::NamespaceId trojan_ns = 0;
  os::NamespaceId spy_ns = 0;
  bool shared_object_namespace = true;  // named kernel objects resolve
  bool shared_file_volume = true;       // paths resolve to the same inode
};

struct ScenarioProfile {
  Scenario scenario = Scenario::local;  // anchor class (Timeset lookup)
  std::string name;                     // registry key
  HypervisorType hypervisor = HypervisorType::none;
  sim::NoiseParams noise;      // base (phase-0 / stationary) parameters
  sim::NoiseSpec noise_spec;   // how the regime varies over time
  Topology topology;
  // Flush-device model for the storage-sync channels; inert for every
  // channel that never writes a file.
  os::StorageParams storage;
  // Multi-node fabric for the distributed (DME) channels; size 0 for
  // single-host scenarios (no fabric is built).
  net::ClusterParams cluster;
  std::vector<std::string> layers;  // the composed layer stack, in order

  // Instantiates the noise regime for one experiment. Stationary
  // profiles ignore the seed; non-stationary ones derive their regime
  // timeline from it (deterministic per cell).
  std::shared_ptr<const sim::NoiseModel> make_noise(std::uint64_t seed) const
  {
    return sim::make_noise_model(noise_spec, noise, seed);
  }
};

const char* to_string(Scenario s);
const char* to_string(HypervisorType h);

// Builds the calibrated profile for a legacy scenario via the registry
// (the enum names resolve to the three paper entries). For cross-VM the
// hypervisor type decides the topology (type-1 shares a host volume but
// not object namespaces; type-2 shares nothing).
ScenarioProfile make_profile(Scenario scenario, OsFlavor flavor,
                             HypervisorType hypervisor = HypervisorType::none);

}  // namespace mes
