#include "scenario/registry.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mes::scenario {

namespace {

// Baseline constants calibrated against the paper's own measurements;
// see DESIGN.md §5 for the Table IV arithmetic they come from. Every
// isolation layer applies *deltas* on top of this base, so that the
// legacy cells reproduce the historical constants exactly while layers
// still compose (a sandbox inside a VM pays both boundaries).
sim::NoiseParams local_noise()
{
  sim::NoiseParams p;
  // Cheap syscalls, expensive sleeps: the Table IV overhead arithmetic
  // (~29 us/bit for 3-op channels) is dominated by the sleep overshoot,
  // with each MESM call costing a few microseconds.
  p.op_cost_base = Duration::us(3.0);
  p.op_cost_jitter = Duration::us(0.5);
  p.wake_latency_median = Duration::us(6.0);
  p.wake_latency_sigma = 0.35;
  p.sleep_floor = Duration::zero();
  p.sleep_overshoot_median = Duration::us(12.0);
  p.sleep_overshoot_sigma = 0.35;
  p.block_rate_hz = 2500.0;
  p.block_duration_median = Duration::us(10.0);
  p.block_duration_sigma = 0.45;
  p.penalty_knee = Duration::us(210.0);
  p.penalty_ramp_per_us = 2.2e-4;
  p.penalty_extra_median = Duration::us(60.0);
  p.penalty_extra_sigma = 0.50;
  p.penalty_scale = 1.0;
  p.notify_path_base = Duration::us(1.5);
  p.notify_path_jitter = Duration::us(0.3);
  return p;
}

// The sandbox (Firejail / Sandboxie) interposes on the syscall path:
// every operation pays a shim, jitter grows, and signals cross an
// extra boundary ("break the isolation mechanism", §V.C.2).
void add_sandbox_shim(sim::NoiseParams& p)
{
  p.op_cost_base += Duration::us(1.0);
  p.op_cost_jitter += Duration::us(0.3);
  p.wake_latency_median += Duration::us(1.5);
  p.wake_latency_sigma = std::max(p.wake_latency_sigma, 0.40);
  p.sleep_overshoot_median += Duration::us(2.0);
  p.block_rate_hz += 700.0;
  p.corruption_rate += 0.0008;
  p.notify_path_base += Duration::us(2.5);
  p.notify_path_jitter += Duration::us(0.5);
}

// Crossing VMs adds virtualized interrupt delivery and a longer
// signal path; TR drops accordingly (§V.C.3, Table VI).
void add_vm_boundary(sim::NoiseParams& p)
{
  p.op_cost_base += Duration::us(2.5);
  p.op_cost_jitter += Duration::us(0.7);
  p.wake_latency_median += Duration::us(4.0);
  p.wake_latency_sigma = std::max(p.wake_latency_sigma, 0.45);
  p.sleep_overshoot_median += Duration::us(4.0);
  p.block_rate_hz += 1700.0;
  p.block_duration_sigma = std::max(p.block_duration_sigma, 0.50);
  p.corruption_rate += 0.0018;
  p.notify_path_base += Duration::us(10.5);
  p.notify_path_jitter += Duration::us(2.2);
}

std::string load_label(const char* kind, double load)
{
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s(x%g)", kind, load);
  return buf;
}

}  // namespace

ScenarioBuilder::ScenarioBuilder(std::string name)
{
  profile_.name = std::move(name);
  profile_.noise = local_noise();
}

ScenarioBuilder& ScenarioBuilder::sandbox()
{
  add_sandbox_shim(profile_.noise);
  // The sandboxed Trojan lives in its own namespace id, but the sandbox
  // does not virtualize the object manager or the volume — it only
  // restricts *writing* (§III) — so both remain shared.
  profile_.topology.trojan_ns = next_ns_++;
  if (profile_.scenario == Scenario::local) {
    profile_.scenario = Scenario::cross_sandbox;
  }
  profile_.layers.push_back("sandbox");
  return *this;
}

ScenarioBuilder& ScenarioBuilder::vm(HypervisorType type)
{
  add_vm_boundary(profile_.noise);
  // Named kernel objects never cross a VM boundary: each guest has its
  // own session namespace (§V.C.3); only a type-1 hypervisor backs a
  // volume both guests can reach.
  profile_.topology.trojan_ns = next_ns_++;
  profile_.topology.spy_ns = next_ns_++;
  profile_.topology.shared_object_namespace = false;
  profile_.topology.shared_file_volume = type == HypervisorType::type1;
  profile_.hypervisor = type;
  profile_.scenario = Scenario::cross_vm;
  profile_.layers.push_back(type == HypervisorType::type1 ? "vm(type-1)"
                                                          : "vm(type-2)");
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shared_volume()
{
  profile_.topology.shared_file_volume = true;
  profile_.layers.push_back("shared-volume");
  return *this;
}

ScenarioBuilder& ScenarioBuilder::calm(double factor)
{
  profile_.noise = sim::scale_load(profile_.noise, factor);
  profile_.layers.push_back(load_label("calm", factor));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::noisy_neighbor(double load, Duration quiet,
                                                 Duration busy)
{
  profile_.noise_spec.regime = sim::NoiseSpec::Regime::phased;
  profile_.noise_spec.busy_load = load;
  profile_.noise_spec.quiet_len = quiet;
  profile_.noise_spec.busy_len = busy;
  profile_.layers.push_back(load_label("noisy-neighbor", load));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::bursty_load(double load,
                                              Duration quiet_dwell,
                                              Duration busy_dwell)
{
  profile_.noise_spec.regime = sim::NoiseSpec::Regime::markov;
  profile_.noise_spec.busy_load = load;
  profile_.noise_spec.quiet_len = quiet_dwell;
  profile_.noise_spec.busy_len = busy_dwell;
  profile_.layers.push_back(load_label("bursty-load", load));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::migration_stalls(Duration mean_gap,
                                                   Duration stall_max,
                                                   double load)
{
  profile_.noise_spec.regime = sim::NoiseSpec::Regime::stalls;
  profile_.noise_spec.busy_load = load;
  profile_.noise_spec.quiet_len = mean_gap;
  profile_.noise_spec.busy_len = stall_max;
  profile_.layers.push_back(load_label("migration-stalls", load));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::regime_shift(double load, Duration at)
{
  profile_.noise_spec.regime = sim::NoiseSpec::Regime::shift;
  profile_.noise_spec.busy_load = load;
  profile_.noise_spec.quiet_len = at;
  profile_.layers.push_back(load_label("regime-shift", load));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::disk_pressure(double load)
{
  profile_.storage.device_load *= load;
  profile_.layers.push_back(load_label("disk-pressure", load));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::journal_contention(std::size_t extra_pages)
{
  profile_.storage.commit_pages += extra_pages;
  profile_.storage.journal_coupling = true;
  char buf[64];
  std::snprintf(buf, sizeof buf, "journal-contention(+%zup)", extra_pages);
  profile_.layers.push_back(buf);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::writeback_storm(Duration interval)
{
  profile_.storage.writeback_interval = interval;
  char buf[64];
  std::snprintf(buf, sizeof buf, "writeback-storm(%gus)", interval.to_us());
  profile_.layers.push_back(buf);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::cluster(std::size_t nodes,
                                          Duration link_base,
                                          double jitter_sigma)
{
  profile_.cluster.size = nodes;
  profile_.cluster.link_base = link_base;
  profile_.cluster.link_jitter_sigma = jitter_sigma;
  char buf[64];
  std::snprintf(buf, sizeof buf, "cluster(n=%zu,%gus)", nodes,
                link_base.to_us());
  profile_.layers.push_back(buf);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::lossy_fabric(double loss, double reorder,
                                               Duration reorder_extra)
{
  profile_.cluster.loss = loss;
  profile_.cluster.reorder = reorder;
  profile_.cluster.reorder_extra = reorder_extra;
  char buf[64];
  std::snprintf(buf, sizeof buf, "lossy(%g%%,%g%%)", loss * 100.0,
                reorder * 100.0);
  profile_.layers.push_back(buf);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::slow_member(std::uint32_t node,
                                              double factor, Duration from)
{
  profile_.cluster.slow_node = node;
  profile_.cluster.slow_factor = factor;
  profile_.cluster.slow_from = from;
  char buf[64];
  std::snprintf(buf, sizeof buf, "slow-member(n%u,x%g)", node, factor);
  profile_.layers.push_back(buf);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::anchor(Scenario s)
{
  profile_.scenario = s;
  return *this;
}

ScenarioProfile ScenarioBuilder::build(OsFlavor flavor) const
{
  ScenarioProfile profile = profile_;
  if (profile.layers.empty()) profile.layers.push_back("same-host");
  if (flavor == OsFlavor::linux_like) {
    // §V.C.1: the Linux scheduler needs ~58 us to wake a sleeper, which
    // is why the paper pins flock's tt0 at 60 us.
    profile.noise.sleep_floor = Duration::us(58.0);
  }
  return profile;
}

const std::vector<ScenarioDef>& library()
{
  static const std::vector<ScenarioDef> defs = [] {
    std::vector<ScenarioDef> lib;
    const auto add =
        [&lib](std::string name, std::string summary,
               std::vector<std::string> aliases, bool hypervisor_sensitive,
               std::function<ScenarioProfile(OsFlavor, HypervisorType)>
                   build) {
          ScenarioDef def;
          def.name = std::move(name);
          def.summary = std::move(summary);
          def.aliases = std::move(aliases);
          def.hypervisor_sensitive = hypervisor_sensitive;
          def.build = std::move(build);
          // The display layer stack comes from an actual build, so the
          // listing can never drift from what the factory produces.
          const ScenarioProfile sample =
              def.build(OsFlavor::windows, HypervisorType::none);
          def.layers = sample.layers;
          def.legacy = sample.scenario;
          def.non_stationary =
              sample.noise_spec.regime != sim::NoiseSpec::Regime::stationary;
          lib.push_back(std::move(def));
        };

    // --- the three paper cells (Tables IV-VI) -------------------------
    add("local",
        "Trojan and Spy as two processes on one host",
        {}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"local"}.build(f);
         });
    add("cross-sandbox",
        "Trojan writes from inside a syscall-filter sandbox",
        {"sandbox", "cross_sandbox"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"cross-sandbox"}.sandbox().build(f);
         });
    add("cross-VM",
        "Trojan and Spy in sibling VMs (type-1 by default)",
        {"vm", "cross-vm", "cross_vm"}, /*hypervisor_sensitive=*/true,
        [](OsFlavor f, HypervisorType hv) {
           if (hv == HypervisorType::none) {
             hv = HypervisorType::type1;  // the paper's working setup
           }
           return ScenarioBuilder{"cross-VM"}.vm(hv).build(f);
         });

    // --- composed isolation ------------------------------------------
    add("container-in-vm",
        "sandboxed Trojan inside a guest VM (nested boundaries)",
        {"container_in_vm", "nested"}, /*hypervisor_sensitive=*/true,
        [](OsFlavor f, HypervisorType hv) {
           if (hv == HypervisorType::none) hv = HypervisorType::type1;
           return ScenarioBuilder{"container-in-vm"}
               .vm(hv)
               .sandbox()
               .anchor(Scenario::cross_vm)
               .build(f);
         });
    add("shared-volume",
        "sealed type-2 guests joined only by a mapped volume",
        {"shared_volume", "volume-only"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"shared-volume"}
               .vm(HypervisorType::type2)
               .shared_volume()
               .build(f);
         });

    // --- workload variants -------------------------------------------
    add("quiet-local",
        "an idle host: background interference scaled down",
        {"quiet_local", "idle"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"quiet-local"}.calm(0.4).build(f);
         });
    add("noisy-local",
        "co-tenant with a periodic duty cycle (phased load)",
        {"noisy_local", "noisy"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"noisy-local"}
               .noisy_neighbor(3.0, Duration::us(120'000),
                               Duration::us(60'000))
               .build(f);
         });
    add("bursty-sandbox",
        "sandbox boundary under Markov-modulated load bursts",
        {"bursty_sandbox", "bursty"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"bursty-sandbox"}
               .sandbox()
               .bursty_load(3.5, Duration::us(80'000), Duration::us(40'000))
               .build(f);
         });
    add("overcommitted-vm",
        "VM boundary on an oversubscribed host (bursty heavy load)",
        {"overcommitted_vm", "overcommitted"}, /*hypervisor_sensitive=*/true,
        [](OsFlavor f, HypervisorType hv) {
           if (hv == HypervisorType::none) hv = HypervisorType::type1;
           return ScenarioBuilder{"overcommitted-vm"}
               .vm(hv)
               .bursty_load(5.0, Duration::us(60'000), Duration::us(90'000))
               .build(f);
         });
    add("migrating-vm",
        "VM boundary with live-migration/snapshot stalls",
        {"migrating_vm", "migrating"}, /*hypervisor_sensitive=*/true,
        [](OsFlavor f, HypervisorType hv) {
           if (hv == HypervisorType::none) hv = HypervisorType::type1;
           return ScenarioBuilder{"migrating-vm"}
               .vm(hv)
               .migration_stalls(Duration::us(250'000), Duration::us(30'000),
                                 10.0)
               .build(f);
         });
    // --- storage workloads (the flush-device model) -------------------
    add("disk-pressure",
        "co-tenant I/O pressure: a slow, contended flush device",
        {"disk_pressure", "io-pressure"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"disk-pressure"}
               .disk_pressure(3.0)
               .build(f);
         });
    add("journal-contention",
        "heavy journal commits entangle every fsync (data=ordered)",
        {"journal_contention", "journal"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"journal-contention"}
               .journal_contention(4)
               .disk_pressure(1.5)
               .build(f);
         });
    add("writeback-storm",
        "aggressive writeback cadence under bursty co-tenant load",
        {"writeback_storm", "writeback"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"writeback-storm"}
               .writeback_storm(Duration::us(60.0))
               .bursty_load(2.5, Duration::us(90'000), Duration::us(50'000))
               .build(f);
         });
    add("regime-shift",
        "quiet host that turns hostile mid-transfer (drift case)",
        {"regime_shift", "shift"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"regime-shift"}
               .calm(0.6)
               .regime_shift(2.0, Duration::us(350'000))
               .build(f);
         });

    // --- cluster scenarios (the DME channel family; src/net, src/dme) -
    // Rack cells anchor on `local` (Timeset t1 = 2 ms dominates the
    // ~0.3 ms uncontended acquire); WAN cells anchor on `cross_vm`
    // (t1 = 40 ms over ~6 ms one-way links).
    add("dme-rack-3",
        "3-node rack cluster (120us links) for distributed locks",
        {"dme_rack_3"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"dme-rack-3"}
               .cluster(3, Duration::us(120), 0.25)
               .build(f);
         });
    add("dme-rack-5",
        "5-node rack cluster (120us links) for distributed locks",
        {"dme_rack_5", "dme-rack"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"dme-rack-5"}
               .cluster(5, Duration::us(120), 0.25)
               .build(f);
         });
    add("dme-rack-7",
        "7-node rack cluster (120us links) for distributed locks",
        {"dme_rack_7"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"dme-rack-7"}
               .cluster(7, Duration::us(120), 0.25)
               .build(f);
         });
    add("dme-wan-5",
        "5 nodes over WAN links (6ms one-way, heavier jitter)",
        {"dme_wan_5", "dme-wan"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"dme-wan-5"}
               .cluster(5, Duration::us(6000), 0.30)
               .anchor(Scenario::cross_vm)
               .build(f);
         });
    add("dme-lossy-wan-5",
        "WAN cluster with 2% loss / 1% reorder on every link",
        {"dme_lossy_wan_5", "dme-lossy"}, /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"dme-lossy-wan-5"}
               .cluster(5, Duration::us(6000), 0.30)
               .lossy_fabric(0.02, 0.01, Duration::ms(12))
               .anchor(Scenario::cross_vm)
               .build(f);
         });
    add("dme-slow-quorum-5",
        "rack cluster where a shared quorum member turns 6x slow "
        "mid-transfer (drift case)",
        {"dme_slow_quorum_5", "dme-slow-quorum"},
        /*hypervisor_sensitive=*/false,
        [](OsFlavor f, HypervisorType) {
           return ScenarioBuilder{"dme-slow-quorum-5"}
               .cluster(5, Duration::us(120), 0.25)
               .slow_member(2, 6.0, Duration::ms(8000))
               .build(f);
         });
    return lib;
  }();
  return defs;
}

const ScenarioDef* find_scenario(std::string_view name)
{
  for (const ScenarioDef& def : library()) {
    if (def.name == name) return &def;
    if (std::find(def.aliases.begin(), def.aliases.end(), name) !=
        def.aliases.end()) {
      return &def;
    }
  }
  return nullptr;
}

const ScenarioDef& scenario_or_throw(std::string_view name)
{
  if (const ScenarioDef* def = find_scenario(name)) return *def;
  std::string known;
  for (const ScenarioDef& def : library()) {
    if (!known.empty()) known += ", ";
    known += def.name;
  }
  throw std::invalid_argument{"unknown scenario '" + std::string{name} +
                              "'; known: " + known};
}

std::vector<std::string> scenario_names()
{
  std::vector<std::string> names;
  names.reserve(library().size());
  for (const ScenarioDef& def : library()) names.push_back(def.name);
  return names;
}

const ScenarioDef& legacy_def(Scenario s)
{
  return *find_scenario(to_string(s));
}

}  // namespace mes::scenario
