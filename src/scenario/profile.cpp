#include "scenario/profile.h"

namespace mes {

const char* to_string(Scenario s)
{
  switch (s) {
    case Scenario::local: return "local";
    case Scenario::cross_sandbox: return "cross-sandbox";
    case Scenario::cross_vm: return "cross-VM";
  }
  return "?";
}

const char* to_string(HypervisorType h)
{
  switch (h) {
    case HypervisorType::none: return "none";
    case HypervisorType::type1: return "type-1";
    case HypervisorType::type2: return "type-2";
  }
  return "?";
}

namespace {

// Baseline constants calibrated against the paper's own measurements;
// see DESIGN.md §5 for the Table IV arithmetic they come from.
sim::NoiseParams local_noise()
{
  sim::NoiseParams p;
  // Cheap syscalls, expensive sleeps: the Table IV overhead arithmetic
  // (~29 us/bit for 3-op channels) is dominated by the sleep overshoot,
  // with each MESM call costing a few microseconds.
  p.op_cost_base = Duration::us(3.0);
  p.op_cost_jitter = Duration::us(0.5);
  p.wake_latency_median = Duration::us(6.0);
  p.wake_latency_sigma = 0.35;
  p.sleep_floor = Duration::zero();
  p.sleep_overshoot_median = Duration::us(12.0);
  p.sleep_overshoot_sigma = 0.35;
  p.block_rate_hz = 2500.0;
  p.block_duration_median = Duration::us(10.0);
  p.block_duration_sigma = 0.45;
  p.penalty_knee = Duration::us(210.0);
  p.penalty_ramp_per_us = 2.2e-4;
  p.penalty_extra_median = Duration::us(60.0);
  p.penalty_extra_sigma = 0.50;
  p.penalty_scale = 1.0;
  p.notify_path_base = Duration::us(1.5);
  p.notify_path_jitter = Duration::us(0.3);
  return p;
}

sim::NoiseParams sandbox_noise()
{
  // The sandbox (Firejail / Sandboxie) interposes on the syscall path:
  // every operation pays a shim, jitter grows, and signals cross an
  // extra boundary ("break the isolation mechanism", §V.C.2).
  sim::NoiseParams p = local_noise();
  p.op_cost_base = Duration::us(4.0);
  p.op_cost_jitter = Duration::us(0.8);
  p.wake_latency_median = Duration::us(7.5);
  p.wake_latency_sigma = 0.40;
  p.sleep_overshoot_median = Duration::us(14.0);
  p.block_rate_hz = 3200.0;
  p.corruption_rate = 0.0068;
  p.notify_path_base = Duration::us(4.0);
  p.notify_path_jitter = Duration::us(0.8);
  return p;
}

sim::NoiseParams vm_noise()
{
  // Crossing VMs adds virtualized interrupt delivery and a longer
  // signal path; TR drops accordingly (§V.C.3, Table VI).
  sim::NoiseParams p = local_noise();
  p.op_cost_base = Duration::us(5.5);
  p.op_cost_jitter = Duration::us(1.2);
  p.wake_latency_median = Duration::us(10.0);
  p.wake_latency_sigma = 0.45;
  p.sleep_overshoot_median = Duration::us(16.0);
  p.block_rate_hz = 4200.0;
  p.block_duration_sigma = 0.50;
  p.corruption_rate = 0.0078;
  p.notify_path_base = Duration::us(12.0);
  p.notify_path_jitter = Duration::us(2.5);
  return p;
}

}  // namespace

ScenarioProfile make_profile(Scenario scenario, OsFlavor flavor,
                             HypervisorType hypervisor)
{
  ScenarioProfile profile;
  profile.scenario = scenario;
  profile.name = to_string(scenario);

  switch (scenario) {
    case Scenario::local:
      profile.noise = local_noise();
      profile.topology = Topology{0, 0, true, true};
      break;
    case Scenario::cross_sandbox:
      // The sandboxed Trojan lives in its own namespace id, but the
      // sandbox does not virtualize the object manager or the volume —
      // it only restricts *writing* (§III) — so both remain shared.
      profile.noise = sandbox_noise();
      profile.topology = Topology{1, 0, true, true};
      break;
    case Scenario::cross_vm: {
      profile.noise = vm_noise();
      if (hypervisor == HypervisorType::none) {
        hypervisor = HypervisorType::type1;  // the paper's working setup
      }
      const bool shared_volume = hypervisor == HypervisorType::type1;
      // Named kernel objects never cross a VM boundary: each guest has
      // its own session namespace (§V.C.3).
      profile.topology = Topology{1, 2, false, shared_volume};
      break;
    }
  }
  profile.hypervisor = hypervisor;

  if (flavor == OsFlavor::linux_like) {
    // §V.C.1: the Linux scheduler needs ~58 us to wake a sleeper, which
    // is why the paper pins flock's tt0 at 60 us.
    profile.noise.sleep_floor = Duration::us(58.0);
  }
  return profile;
}

}  // namespace mes
