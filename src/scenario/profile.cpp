#include "scenario/profile.h"

#include "scenario/registry.h"

namespace mes {

const char* to_string(Scenario s)
{
  switch (s) {
    case Scenario::local: return "local";
    case Scenario::cross_sandbox: return "cross-sandbox";
    case Scenario::cross_vm: return "cross-VM";
  }
  return "?";
}

const char* to_string(HypervisorType h)
{
  switch (h) {
    case HypervisorType::none: return "none";
    case HypervisorType::type1: return "type-1";
    case HypervisorType::type2: return "type-2";
  }
  return "?";
}

ScenarioProfile make_profile(Scenario scenario, OsFlavor flavor,
                             HypervisorType hypervisor)
{
  return scenario::legacy_def(scenario).build(flavor, hypervisor);
}

}  // namespace mes
