// Shared protocol loops for contention (mutual exclusion) channels.
//
// Protocol 1 generalized over the locking primitive:
//   Trojan, per bit:  '1' -> acquire; sleep(t1); release
//                     '0' -> sleep(t0)
//   Spy, per bit:     timestamp; acquire; release; timestamp; classify;
//                     after reading '0' sleep(t0) to stay aligned.
//
// Alignment note (§V.B): every '1' re-anchors the Spy because it stays
// blocked until the Trojan's release; during runs of '0' the Spy's probe
// costs make it drift *late* by a few microseconds per bit, which a
// following '1' absorbs (the hold is long). The Spy sleeping after '1'
// probes as well would instead push its next probe deep into the next
// hold window, so only '0' readings pace themselves — this matches the
// TR arithmetic of Table IV (see DESIGN.md §5).
#pragma once

#include "core/channel.h"

namespace mes::channels {

class ContentionBase : public core::Channel {
 public:
  sim::Proc trojan_run(core::RunContext& ctx,
                       std::vector<std::size_t> symbols) override;
  sim::Proc spy_run(core::RunContext& ctx, std::size_t expected,
                    core::RxResult& out) override;

 protected:
  // Blocking acquire / release of the critical resource for `proc`
  // (which is either ctx.trojan or ctx.spy).
  virtual sim::Proc acquire(core::RunContext& ctx, os::Process& proc) = 0;
  virtual sim::Proc release(core::RunContext& ctx, os::Process& proc) = 0;
};

}  // namespace mes::channels
