// POSIX-signal covert channel — the extension the paper leaves as future
// work ("other low-level communication methods such as signal may also be
// able to be used", §IV.A).
//
// Cooperation class: the Trojan sleeps for the symbol duration and then
// kill()s the Spy, which measures the interval between sigwait() returns.
// Signals do not cross PID-namespace boundaries, so this channel only
// sets up in the local scenario — a nice illustration of why the paper's
// kernel-object channels matter.
#pragma once

#include "channels/cooperation_base.h"

namespace mes::channels {

class SignalChannel final : public CooperationBase {
 public:
  Mechanism mechanism() const override { return Mechanism::posix_signal; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc signal(core::RunContext& ctx) override;
  sim::Task<bool> wait(core::RunContext& ctx, Duration timeout) override;
};

}  // namespace mes::channels
