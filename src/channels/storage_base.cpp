#include "channels/storage_base.h"

#include <algorithm>
#include <stdexcept>

#include "os/vfs.h"

namespace mes::channels {

namespace {

// Same re-dispatch accounting as the lock channels (contention_base):
// both endpoints pay a scheduler dispatch latency when released from
// the per-bit rendezvous, plus any pending displaced-work penalty,
// *before* the Spy takes its timestamp.
sim::Proc rendezvous(core::RunContext& ctx, os::Process& proc, bool receiver)
{
  co_await ctx.bit_sync->arrive(ctx.kernel.sim());
  const sim::NoiseModel& noise = ctx.kernel.noise();
  const TimePoint now = ctx.kernel.sim().now();
  const Duration dispatch = receiver
                                ? noise.rx_dispatch_latency(proc.rng(), now)
                                : noise.dispatch_latency(proc.rng(), now);
  co_await ctx.kernel.sim().delay(dispatch + proc.take_pending_penalty());
}

}  // namespace

std::string StorageSyncBase::setup(core::RunContext& ctx)
{
  os::Vfs& vfs = ctx.kernel.vfs();
  // One flush device exists per host. Guests of a type-2 hypervisor
  // each own a private virtual disk, so there is no shared queue to
  // modulate — the storage analog of Table VI's ✗ entries.
  if (!vfs.shared_volume()) {
    return "storage-sync: no shared backing device across this boundary "
           "(each guest flushes to its own virtual disk)";
  }
  // Private per-endpoint scratch files: the channel never reads or
  // writes shared data, only the shared device timeline.
  const std::string tpath = "/data/mes_storage_t_" + ctx.tag;
  const std::string spath = "/data/mes_storage_s_" + ctx.tag;
  // kErrExists is fine (re-setup with the same tag reuses the scratch
  // files); anything else means the writes below would go nowhere.
  const int t_created = vfs.create_file(ctx.trojan.namespace_id(), tpath);
  if (t_created < 0 && t_created != os::kErrExists) {
    return "storage-sync: cannot create the trojan scratch file";
  }
  const int s_created = vfs.create_file(ctx.spy.namespace_id(), spath);
  if (s_created < 0 && s_created != os::kErrExists) {
    return "storage-sync: cannot create the spy scratch file";
  }
  trojan_fd_ = vfs.open(ctx.trojan, tpath, os::OpenMode::read_write);
  if (trojan_fd_ < 0) {
    return "storage-sync: trojan cannot open its scratch file";
  }
  spy_fd_ = vfs.open(ctx.spy, spath, os::OpenMode::read_write);
  if (spy_fd_ < 0) return "storage-sync: spy cannot open its scratch file";
  return {};
}

std::size_t StorageSyncBase::pages_for(const core::RunContext& ctx) const
{
  const double svc_us =
      ctx.kernel.vfs().page_cache().params().page_service_base.to_us();
  if (svc_us <= 0.0) return 1;
  const double pages = ctx.timing.t1.to_us() / svc_us;
  return std::max<std::size_t>(1, static_cast<std::size_t>(pages + 0.5));
}

sim::Proc StorageSyncBase::trojan_run(core::RunContext& ctx,
                                      std::vector<std::size_t> symbols)
{
  os::Kernel& k = ctx.kernel;
  os::Process& trojan = ctx.trojan;
  for (const std::size_t s : symbols) {
    if (ctx.bit_sync) co_await rendezvous(ctx, trojan, false);
    co_await k.sim().delay(core::jittered_loop_cost(ctx, trojan));
    if (s != 0) {
      co_await mark_one(ctx);
    } else {
      co_await k.sleep(trojan, ctx.timing.t0);
    }
  }
}

sim::Proc StorageSyncBase::spy_run(core::RunContext& ctx, std::size_t expected,
                                   core::RxResult& out)
{
  os::Kernel& k = ctx.kernel;
  os::Process& spy = ctx.spy;
  os::Vfs& vfs = k.vfs();
  out.symbols.reserve(expected);
  out.latencies.reserve(expected);
  for (std::size_t i = 0; i < expected; ++i) {
    if (ctx.bit_sync) {
      co_await rendezvous(ctx, spy, true);
      // Let the Trojan's batch reach the device first.
      co_await k.sim().delay(ctx.spy_guard);
    } else {
      co_await k.sim().delay(core::jittered_loop_cost(ctx, spy));
    }
    const TimePoint start = k.sim().now();
    const long wrote =
        co_await vfs.write(spy, spy_fd_, 0, os::PageCache::kPageSize);
    if (wrote < 0) throw std::runtime_error{"storage-sync: spy write failed"};
    if (co_await vfs.fsync(spy, spy_fd_) != os::kOk) {
      throw std::runtime_error{"storage-sync: spy fsync failed"};
    }
    const Duration latency = k.noise().apply_corruption(
        spy.rng(), k.sim().now(), k.sim().now() - start);
    const std::size_t symbol = ctx.classifier.classify(latency);
    out.latencies.push_back(latency);
    out.symbols.push_back(symbol);
    // Protocol 1 line 11: pace the next probe after a short ('0') read.
    // Under barrier sync the rendezvous paces instead.
    if (!ctx.bit_sync && symbol == 0) co_await k.sleep(spy, ctx.timing.t0);
  }
  out.finished_at = k.sim().now();
}

}  // namespace mes::channels
