// Semaphore-based covert channel (§IV.E) — the "special" contention
// channel.
//
// The counting semaphore is used as a lock: a count of 1 means the
// critical resource is free; WaitForSingleObject is the P that takes it
// and ReleaseSemaphore the V that returns it. One bit costs the pair
// six semaphore instructions (P-P-S-sleep-V-V across both processes),
// which is why Table IV ranks Semaphore slowest among the contention
// channels: each semaphore operation is markedly heavier than a plain
// lock call (kSemOpExtra below, calibrated from the Table IV TR gap).
//
// Initial-resource priming (Tables II & III): the channel only works
// when S is seeded so that exactly one process can hold the resource.
// Seeding 0 stalls both processes — the Spy can never acquire and the
// Trojan can never hand over — reproduced as a transmission deadlock.
// Overseeding (>= 2) silently breaks the mutual exclusion: the Spy's P
// succeeds during the Trojan's holds, and every '1' decodes as '0'
// (bench/ablation_semaphore sweeps this).
#pragma once

#include "channels/contention_base.h"

namespace mes::channels {

class SemaphoreChannel final : public ContentionBase {
 public:
  Mechanism mechanism() const override { return Mechanism::semaphore; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc acquire(core::RunContext& ctx, os::Process& proc) override;
  sim::Proc release(core::RunContext& ctx, os::Process& proc) override;

 private:
  // Per-operation surcharge of the semaphore dispatcher path relative
  // to a plain mutex/lock op (derived from Table IV's 222 us/bit).
  static constexpr double kSemOpExtraUs = 27.0;

  static Duration sem_op_surcharge(os::Process& proc);
  os::Handle handle_for(core::RunContext& ctx, os::Process& proc) const;
  os::Handle trojan_h_ = os::kInvalidHandle;
  os::Handle spy_h_ = os::kInvalidHandle;
};

}  // namespace mes::channels
