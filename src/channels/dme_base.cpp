#include "channels/dme_base.h"

#include "net/fabric.h"

namespace mes::channels {

namespace {

// Same re-dispatch model as the single-host contention rendezvous (see
// contention_base.cpp): both endpoints pay a scheduler release latency
// plus any pending displaced-work penalty before the Spy timestamps.
sim::Proc rendezvous(core::RunContext& ctx, os::Process& proc, bool receiver)
{
  co_await ctx.bit_sync->arrive(ctx.kernel.sim());
  const sim::NoiseModel& noise = ctx.kernel.noise();
  const TimePoint now = ctx.kernel.sim().now();
  const Duration dispatch = receiver
                                ? noise.rx_dispatch_latency(proc.rng(), now)
                                : noise.dispatch_latency(proc.rng(), now);
  co_await ctx.kernel.sim().delay(dispatch + proc.take_pending_penalty());
}

}  // namespace

std::string DmeBase::setup(core::RunContext& ctx)
{
  if (!ctx.cluster || ctx.cluster->fabric == nullptr) {
    return "needs a cluster scenario (no fabric between nodes)";
  }
  const core::ClusterContext& cl = *ctx.cluster;
  const std::size_t n = cl.fabric->size();
  if (cl.kernels.size() != n || cl.agents.size() != n) {
    return "cluster context incomplete (kernels/agents != nodes)";
  }
  if (cl.trojan_node >= n || cl.spy_node >= n ||
      cl.trojan_node == cl.spy_node) {
    return "trojan/spy node placement invalid";
  }
  if (!ctx.bit_sync) {
    return "needs fine-grained sync (no cluster-wide anchor to free-run)";
  }
  return "";
}

sim::Proc DmeBase::trojan_run(core::RunContext& ctx,
                              std::vector<std::size_t> symbols)
{
  core::ClusterContext& cl = *ctx.cluster;
  os::Kernel& k = *cl.kernels[cl.trojan_node];
  os::Process& trojan = ctx.trojan;
  dme::LockAgent& lock = *cl.agents[cl.trojan_node];
  for (const std::size_t s : symbols) {
    // Acquire BEFORE the symbol rendezvous: by the time the barrier
    // opens the lock is already held, so the Spy's probe can never race
    // ahead of the request round trip.  Without this, scheduler jitter
    // at the barrier lets the Spy's request land while we are still
    // `wanting`, and the weaker protocols (broadcast defers only when
    // held; Maekawa obeys whoever stamped first) grant it a fast
    // acquisition mid-'1' — a ~15% symbol error rate on a rack.
    bool held = false;
    if (s != 0) {
      held = co_await lock.acquire(trojan);
    }
    co_await rendezvous(ctx, trojan, false);
    co_await k.sim().delay(core::jittered_loop_cost(ctx, trojan));
    if (s != 0) {
      // Hold (or, if the retry budget died under heavy loss, merely
      // burn) the window so the bit cadence survives; an unheld '1' is
      // noise for the ARQ layer to repair.
      co_await k.sleep(trojan, ctx.timing.t1);
      if (held) {
        const bool released = co_await lock.release(trojan);
        if (!released) ++release_faults_;
      }
    } else {
      co_await k.sleep(trojan, ctx.timing.t0);
    }
  }
}

sim::Proc DmeBase::spy_run(core::RunContext& ctx, std::size_t expected,
                           core::RxResult& out)
{
  core::ClusterContext& cl = *ctx.cluster;
  os::Kernel& k = *cl.kernels[cl.spy_node];
  os::Process& spy = ctx.spy;
  dme::LockAgent& lock = *cl.agents[cl.spy_node];
  out.symbols.reserve(expected);
  out.latencies.reserve(expected);
  for (std::size_t i = 0; i < expected; ++i) {
    co_await rendezvous(ctx, spy, true);
    // The Trojan pre-acquired before the barrier, so a '1' is already
    // held here; the guard is margin against its release handshake from
    // the previous symbol still draining through the fabric.
    co_await k.sim().delay(ctx.spy_guard);
    const TimePoint start = k.sim().now();
    const bool held = co_await lock.acquire(spy);
    // The observable is time-to-acquire; the release handshake (a full
    // acked round trip under Maekawa) happens outside the measurement.
    const Duration raw = k.sim().now() - start;
    if (held) {
      const bool released = co_await lock.release(spy);
      if (!released) ++release_faults_;
    }
    // A failed probe ran the full retry budget — an honest huge
    // latency, classified like any other reading.
    const Duration latency =
        k.noise().apply_corruption(spy.rng(), k.sim().now(), raw);
    out.latencies.push_back(latency);
    out.symbols.push_back(ctx.classifier.classify(latency));
  }
  out.finished_at = k.sim().now();
}

}  // namespace mes::channels
