#include "channels/flock_channel.h"

#include <stdexcept>

#include "os/vfs.h"

namespace mes::channels {

std::string FlockChannel::setup(core::RunContext& ctx)
{
  const std::string path = "/shared/mes_flock_" + ctx.tag + ".txt";
  os::Vfs& vfs = ctx.kernel.vfs();
  // Pre-agreed shared file: read-only with mandatory locking (§IV.C).
  // kErrExists is fine — a previous setup with this tag already agreed
  // on the path; any other failure would poison every later open.
  const int created =
      vfs.create_file(ctx.trojan.namespace_id(), path, /*read_only=*/true,
                      /*mandatory_locking=*/true);
  if (created < 0 && created != os::kErrExists) {
    return "flock: cannot create the pre-agreed shared file";
  }
  trojan_fd_ = vfs.open(ctx.trojan, path, os::OpenMode::read_only);
  if (trojan_fd_ < 0) return "flock: trojan cannot open the shared file";
  spy_fd_ = vfs.open(ctx.spy, path, os::OpenMode::read_only);
  if (spy_fd_ < 0) {
    return "flock: shared path not visible from the spy's namespace "
           "(no shared volume across this boundary)";
  }
  return {};
}

os::Fd FlockChannel::fd_for(core::RunContext& ctx, os::Process& proc) const
{
  return &proc == &ctx.trojan ? trojan_fd_ : spy_fd_;
}

sim::Proc FlockChannel::acquire(core::RunContext& ctx, os::Process& proc)
{
  const int rc = co_await ctx.kernel.vfs().flock(proc, fd_for(ctx, proc),
                                                 os::FlockOp::exclusive);
  if (rc != os::kOk) throw std::runtime_error{"flock(LOCK_EX) failed"};
}

sim::Proc FlockChannel::release(core::RunContext& ctx, os::Process& proc)
{
  const int rc = co_await ctx.kernel.vfs().flock(proc, fd_for(ctx, proc),
                                                 os::FlockOp::unlock);
  if (rc != os::kOk) throw std::runtime_error{"flock(LOCK_UN) failed"};
}

}  // namespace mes::channels
