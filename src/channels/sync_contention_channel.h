// Sync+Sync storage channel (after Jiang & Wang: a covert channel
// built on fsync with storage).
//
// The Trojan encodes '1' by writing a batch of pages to its own file
// and fsync-ing them — occupying the single flush device for ~t1 — and
// '0' by sleeping t0. The Spy times a 1-page fsync of its own file:
// while the Trojan's batch drains, the Spy's flush queues behind it and
// the fsync returns late.
#pragma once

#include "channels/storage_base.h"

namespace mes::channels {

class SyncContentionChannel final : public StorageSyncBase {
 public:
  Mechanism mechanism() const override { return Mechanism::sync_contention; }

 protected:
  sim::Proc mark_one(core::RunContext& ctx) override;
};

}  // namespace mes::channels
