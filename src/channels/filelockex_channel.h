// FileLockEX-based covert channel (Windows LockFileEx byte-range locks).
//
// The only mechanism that survives a type-1 hypervisor boundary
// (Table VI): its kernel object is backed by a real file on a volume
// both VMs mount, unlike purely named objects which stay session-local.
#pragma once

#include "channels/contention_base.h"

namespace mes::channels {

class FileLockExChannel final : public ContentionBase {
 public:
  Mechanism mechanism() const override { return Mechanism::file_lock_ex; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc acquire(core::RunContext& ctx, os::Process& proc) override;
  sim::Proc release(core::RunContext& ctx, os::Process& proc) override;

 private:
  // The locked region: the whole file, as the paper's channel does.
  static constexpr std::uint64_t kRegionOff = 0;
  static constexpr std::uint64_t kRegionLen = std::uint64_t{1} << 30;

  os::Fd fd_for(core::RunContext& ctx, os::Process& proc) const;
  os::Fd trojan_fd_ = os::kInvalidFd;
  os::Fd spy_fd_ = os::kInvalidFd;
};

}  // namespace mes::channels
