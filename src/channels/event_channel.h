// Event-based covert channel (§IV.F, Protocol 2) — the paper's fastest.
//
// The Spy creates an auto-reset Event and blocks in
// WaitForSingleObject(INFINITE); the Trojan opens it by name and encodes
// each symbol in how long it waits before SetEvent. Cooperation class:
// the two processes never contend, they rendezvous.
#pragma once

#include "channels/cooperation_base.h"

namespace mes::channels {

class EventChannel final : public CooperationBase {
 public:
  Mechanism mechanism() const override { return Mechanism::event; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc signal(core::RunContext& ctx) override;
  sim::Task<bool> wait(core::RunContext& ctx, Duration timeout) override;

 private:
  os::Handle trojan_h_ = os::kInvalidHandle;
  os::Handle spy_h_ = os::kInvalidHandle;
};

}  // namespace mes::channels
