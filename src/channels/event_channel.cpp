#include "channels/event_channel.h"

#include <stdexcept>

#include "os/win_objects.h"

namespace mes::channels {

std::string EventChannel::setup(core::RunContext& ctx)
{
  const std::string name = "mes_event_" + ctx.tag;
  os::ObjectManager& om = ctx.kernel.objects();
  // Protocol 2: the receiver creates the event; the sender opens it.
  spy_h_ = om.create_event(ctx.spy, name, os::ResetMode::auto_reset,
                           /*initially_signaled=*/false);
  if (spy_h_ == os::kInvalidHandle) return "Event: create failed";
  trojan_h_ = om.open_event(ctx.trojan, name);
  if (trojan_h_ == os::kInvalidHandle) {
    return "Event: named kernel object not visible across this boundary "
           "(session-private namespace, §V.C.3)";
  }
  return {};
}

sim::Proc EventChannel::signal(core::RunContext& ctx)
{
  co_await ctx.kernel.objects().set_event(ctx.trojan, trojan_h_);
}

sim::Task<bool> EventChannel::wait(core::RunContext& ctx, Duration timeout)
{
  const auto status = co_await ctx.kernel.objects().wait_for_single_object(
      ctx.spy, spy_h_, timeout);
  if (status == os::WaitStatus::timed_out) co_return false;
  if (status != os::WaitStatus::object_0) {
    throw std::runtime_error{"Event wait failed"};
  }
  co_return true;
}

}  // namespace mes::channels
