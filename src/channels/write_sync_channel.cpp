#include "channels/write_sync_channel.h"

#include <stdexcept>

#include "os/vfs.h"

namespace mes::channels {

sim::Proc WriteSyncChannel::mark_one(core::RunContext& ctx)
{
  os::Vfs& vfs = ctx.kernel.vfs();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(pages_for(ctx)) * os::PageCache::kPageSize;
  const long wrote = co_await vfs.write(ctx.trojan, trojan_fd_, 0, bytes);
  if (wrote < 0) throw std::runtime_error{"write+sync: trojan write failed"};
  // No fsync: the dirty pages are the signal. Hold the bit slot for t1
  // while the Spy's entangled fsync (or the writeback daemon) pays for
  // them.
  co_await ctx.kernel.sleep(ctx.trojan, ctx.timing.t1);
}

}  // namespace mes::channels
