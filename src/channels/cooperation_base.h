// Shared protocol loops for cooperation (synchronization) channels.
//
// Protocol 2 generalized over the signalling primitive:
//   Trojan, per symbol k:  sleep(t0 + k*interval); signal
//   Spy, per symbol:       timestamp; wait; timestamp; classify
//
// No pacing sleeps on the Spy side: every signal re-anchors it, which is
// what gives cooperation channels their bit independence (§IV.G) — one
// corrupted bit never skews the next measurement window.
#pragma once

#include "core/channel.h"

namespace mes::channels {

class CooperationBase : public core::Channel {
 public:
  sim::Proc trojan_run(core::RunContext& ctx,
                       std::vector<std::size_t> symbols) override;
  sim::Proc spy_run(core::RunContext& ctx, std::size_t expected,
                    core::RxResult& out) override;

 protected:
  virtual sim::Proc signal(core::RunContext& ctx) = 0;  // trojan side
  // Spy side: blocks until signalled; false on timeout. The timeout
  // guards against lost signals (two SetEvents merging while the Spy is
  // descheduled) turning into an unbounded hang at stream end.
  virtual sim::Task<bool> wait(core::RunContext& ctx, Duration timeout) = 0;
};

}  // namespace mes::channels
