#include "channels/flock_shared_channel.h"

#include <stdexcept>

#include "os/vfs.h"

namespace mes::channels {

std::string FlockSharedChannel::setup(core::RunContext& ctx)
{
  const std::string path = "/shared/mes_flock_sh_" + ctx.tag + ".txt";
  os::Vfs& vfs = ctx.kernel.vfs();
  // kErrExists is fine — the pre-agreed path may already be there from a
  // previous setup with this tag; any other failure poisons the opens.
  const int created =
      vfs.create_file(ctx.trojan.namespace_id(), path, /*read_only=*/true,
                      /*mandatory_locking=*/true);
  if (created < 0 && created != os::kErrExists) {
    return "flock-SH: cannot create the pre-agreed shared file";
  }
  trojan_fd_ = vfs.open(ctx.trojan, path, os::OpenMode::read_only);
  if (trojan_fd_ < 0) return "flock-SH: trojan cannot open the shared file";
  spy_fd_ = vfs.open(ctx.spy, path, os::OpenMode::read_only);
  if (spy_fd_ < 0) {
    return "flock-SH: shared path not visible from the spy's namespace "
           "(no shared volume across this boundary)";
  }
  return {};
}

os::Fd FlockSharedChannel::fd_for(core::RunContext& ctx,
                                  os::Process& proc) const
{
  return &proc == &ctx.trojan ? trojan_fd_ : spy_fd_;
}

sim::Proc FlockSharedChannel::acquire(core::RunContext& ctx,
                                      os::Process& proc)
{
  // Writer-side hold is exclusive; the reader probes shared.
  const os::FlockOp op =
      &proc == &ctx.trojan ? os::FlockOp::exclusive : os::FlockOp::shared;
  const int rc = co_await ctx.kernel.vfs().flock(proc, fd_for(ctx, proc), op);
  if (rc != os::kOk) throw std::runtime_error{"flock-SH acquire failed"};
}

sim::Proc FlockSharedChannel::release(core::RunContext& ctx,
                                      os::Process& proc)
{
  const int rc = co_await ctx.kernel.vfs().flock(proc, fd_for(ctx, proc),
                                                 os::FlockOp::unlock);
  if (rc != os::kOk) throw std::runtime_error{"flock-SH unlock failed"};
}

}  // namespace mes::channels
