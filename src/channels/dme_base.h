// Shared protocol loops for the distributed (DME) contention channels.
//
// Protocol 1 lifted onto a cluster: the Trojan modulates critical-
// section *requests* for a distributed lock on its node, and the Spy
// reads bits out of its own lock-acquisition latency on another node —
// the hand-off signal travels over the net fabric and picks up link
// jitter, loss and quorum effects no single-host scenario produces.
//
// Differences from channels::ContentionBase:
//  * acquire is fallible (a bounded retransmission budget under loss):
//    a failed Trojan acquire still burns the hold window to keep the
//    bit cadence, and a failed Spy probe reads as a huge latency — both
//    are symbol noise for the FEC/ARQ layers above;
//  * the roles live on different kernels (their cluster nodes), found
//    through RunContext::cluster;
//  * only the fine-grained-sync mode exists: without the per-bit
//    rendezvous there is no cluster-wide anchor to free-run against,
//    so setup refuses rather than emitting garbage.
#pragma once

#include "core/channel.h"
#include "dme/agent.h"

namespace mes::channels {

class DmeBase : public core::Channel {
 public:
  std::string setup(core::RunContext& ctx) override;
  sim::Proc trojan_run(core::RunContext& ctx,
                       std::vector<std::size_t> symbols) override;
  sim::Proc spy_run(core::RunContext& ctx, std::size_t expected,
                    core::RxResult& out) override;

  // Unacknowledged release handshakes seen so far (stragglers heal on
  // the next acquire; exposed for diagnostics).
  std::uint64_t release_faults() const { return release_faults_; }

 private:
  std::uint64_t release_faults_ = 0;
};

class DmeBroadcastChannel final : public DmeBase {
 public:
  Mechanism mechanism() const override { return Mechanism::dme_broadcast; }
};

class DmeRicartChannel final : public DmeBase {
 public:
  Mechanism mechanism() const override { return Mechanism::dme_ricart; }
};

class DmeMaekawaChannel final : public DmeBase {
 public:
  Mechanism mechanism() const override { return Mechanism::dme_maekawa; }
};

}  // namespace mes::channels
