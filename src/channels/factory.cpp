#include "core/channel.h"

#include "channels/dme_base.h"
#include "channels/event_channel.h"
#include "channels/filelockex_channel.h"
#include "channels/flock_channel.h"
#include "channels/flock_shared_channel.h"
#include "channels/mutex_channel.h"
#include "channels/semaphore_channel.h"
#include "channels/signal_channel.h"
#include "channels/sync_contention_channel.h"
#include "channels/timer_channel.h"
#include "channels/write_sync_channel.h"

namespace mes::core {

std::unique_ptr<Channel> make_channel(Mechanism m)
{
  switch (m) {
    case Mechanism::flock:
      return std::make_unique<channels::FlockChannel>();
    case Mechanism::file_lock_ex:
      return std::make_unique<channels::FileLockExChannel>();
    case Mechanism::mutex:
      return std::make_unique<channels::MutexChannel>();
    case Mechanism::semaphore:
      return std::make_unique<channels::SemaphoreChannel>();
    case Mechanism::event:
      return std::make_unique<channels::EventChannel>();
    case Mechanism::waitable_timer:
      return std::make_unique<channels::TimerChannel>();
    case Mechanism::posix_signal:
      return std::make_unique<channels::SignalChannel>();
    case Mechanism::flock_shared:
      return std::make_unique<channels::FlockSharedChannel>();
    case Mechanism::sync_contention:
      return std::make_unique<channels::SyncContentionChannel>();
    case Mechanism::write_sync:
      return std::make_unique<channels::WriteSyncChannel>();
    case Mechanism::dme_broadcast:
      return std::make_unique<channels::DmeBroadcastChannel>();
    case Mechanism::dme_ricart:
      return std::make_unique<channels::DmeRicartChannel>();
    case Mechanism::dme_maekawa:
      return std::make_unique<channels::DmeMaekawaChannel>();
  }
  return nullptr;
}

Duration jittered_loop_cost(RunContext& ctx, os::Process& proc)
{
  const double scale = proc.rng().uniform(0.8, 1.2);
  return ctx.loop_cost * scale;
}

}  // namespace mes::core
