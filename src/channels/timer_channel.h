// WaitableTimer-based covert channel (cooperation class).
//
// Same shape as the Event channel, but the wake signal travels through a
// synchronization (auto-reset) waitable timer: the Trojan arms it with a
// zero due time after holding for the symbol's duration, and the timer
// interrupt path wakes the Spy. SetWaitableTimer is a heavier syscall
// than SetEvent, which is why Table IV ranks Timer below Event.
#pragma once

#include "channels/cooperation_base.h"

namespace mes::channels {

class TimerChannel final : public CooperationBase {
 public:
  Mechanism mechanism() const override { return Mechanism::waitable_timer; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc signal(core::RunContext& ctx) override;
  sim::Task<bool> wait(core::RunContext& ctx, Duration timeout) override;

 private:
  os::Handle trojan_h_ = os::kInvalidHandle;
  os::Handle spy_h_ = os::kInvalidHandle;
};

}  // namespace mes::channels
