#include "channels/mutex_channel.h"

#include <stdexcept>

#include "os/win_objects.h"

namespace mes::channels {

std::string MutexChannel::setup(core::RunContext& ctx)
{
  const std::string name = "mes_mutex_" + ctx.tag;
  os::ObjectManager& om = ctx.kernel.objects();
  trojan_h_ = om.create_mutex(ctx.trojan, name, /*initially_owned=*/false);
  if (trojan_h_ == os::kInvalidHandle) return "Mutex: create failed";
  spy_h_ = om.open_mutex(ctx.spy, name);
  if (spy_h_ == os::kInvalidHandle) {
    return "Mutex: named kernel object not visible across this boundary "
           "(session-private namespace, §V.C.3)";
  }
  return {};
}

os::Handle MutexChannel::handle_for(core::RunContext& ctx,
                                    os::Process& proc) const
{
  return &proc == &ctx.trojan ? trojan_h_ : spy_h_;
}

sim::Proc MutexChannel::acquire(core::RunContext& ctx, os::Process& proc)
{
  const auto status = co_await ctx.kernel.objects().wait_for_single_object(
      proc, handle_for(ctx, proc));
  if (status != os::WaitStatus::object_0 &&
      status != os::WaitStatus::abandoned) {
    throw std::runtime_error{"Mutex acquire failed"};
  }
}

sim::Proc MutexChannel::release(core::RunContext& ctx, os::Process& proc)
{
  co_await ctx.kernel.objects().release_mutex(proc, handle_for(ctx, proc));
}

}  // namespace mes::channels
