// Read-lock flock channel — the §IV.D extension ("other lock functions
// ... such as read locks, can also be used").
//
// The Trojan still encodes '1' with an exclusive hold, but the Spy
// probes with LOCK_SH: a shared probe blocks against the Trojan's
// exclusive hold exactly like an exclusive one, yet multiple observers
// could probe concurrently without perturbing each other — a stealthier
// receiver (several Spies can listen to one Trojan).
#pragma once

#include "channels/contention_base.h"

namespace mes::channels {

class FlockSharedChannel final : public ContentionBase {
 public:
  Mechanism mechanism() const override { return Mechanism::flock_shared; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc acquire(core::RunContext& ctx, os::Process& proc) override;
  sim::Proc release(core::RunContext& ctx, os::Process& proc) override;

 private:
  os::Fd fd_for(core::RunContext& ctx, os::Process& proc) const;
  os::Fd trojan_fd_ = os::kInvalidFd;
  os::Fd spy_fd_ = os::kInvalidFd;
};

}  // namespace mes::channels
