#include "channels/contention_base.h"

#include <stdexcept>

namespace mes::channels {

namespace {

// Both endpoints pay a re-dispatch latency when the scheduler releases
// them from the per-bit rendezvous, plus any pending displaced-work
// penalty from the previous bit's long park. Paying the penalty here —
// *before* the Spy takes its timestamp — is what lets a long previous
// hold truncate the next measurement (Fig. 10's right-side BER rise).
// The Spy's re-dispatch is the slower, heavier-tailed rx variant (it
// blocks twice per bit: on the resource and at the rendezvous), which
// bounds its resolution at small tt1 (the left-side rise).
sim::Proc rendezvous(core::RunContext& ctx, os::Process& proc, bool receiver)
{
  co_await ctx.bit_sync->arrive(ctx.kernel.sim());
  const sim::NoiseModel& noise = ctx.kernel.noise();
  const TimePoint now = ctx.kernel.sim().now();
  const Duration dispatch = receiver
                                ? noise.rx_dispatch_latency(proc.rng(), now)
                                : noise.dispatch_latency(proc.rng(), now);
  co_await ctx.kernel.sim().delay(dispatch + proc.take_pending_penalty());
}

}  // namespace

sim::Proc ContentionBase::trojan_run(core::RunContext& ctx,
                                     std::vector<std::size_t> symbols)
{
  os::Kernel& k = ctx.kernel;
  os::Process& trojan = ctx.trojan;
  for (const std::size_t s : symbols) {
    if (ctx.bit_sync) co_await rendezvous(ctx, trojan, false);
    co_await k.sim().delay(core::jittered_loop_cost(ctx, trojan));
    if (s != 0) {
      co_await acquire(ctx, trojan);
      co_await k.sleep(trojan, ctx.timing.t1);
      co_await release(ctx, trojan);
    } else {
      co_await k.sleep(trojan, ctx.timing.t0);
    }
  }
}

sim::Proc ContentionBase::spy_run(core::RunContext& ctx, std::size_t expected,
                                  core::RxResult& out)
{
  os::Kernel& k = ctx.kernel;
  os::Process& spy = ctx.spy;
  out.symbols.reserve(expected);
  out.latencies.reserve(expected);
  if (expected == 0) co_return;

  std::size_t start_index = 0;
  if (!ctx.bit_sync) {
    // Unsynchronized mode (the §V.B ablation): anchor on the Trojan's
    // first hold — the frame opens with a '1' — by probing at a tight
    // busy-wait cadence until the first long acquisition.
    constexpr int kMaxAnchorProbes = 200000;
    bool anchored = false;
    for (int tries = 0; tries < kMaxAnchorProbes && !anchored; ++tries) {
      const TimePoint start = k.sim().now();
      co_await acquire(ctx, spy);
      co_await release(ctx, spy);
      const Duration latency = k.sim().now() - start;
      if (ctx.classifier.classify(latency) != 0) {
        const Duration reading =
            k.noise().apply_corruption(spy.rng(), k.sim().now(), latency);
        out.latencies.push_back(reading);
        out.symbols.push_back(ctx.classifier.classify(reading));
        anchored = true;
      } else {
        co_await k.sim().delay(Duration::us(2.0));
      }
    }
    if (!anchored) {
      throw std::runtime_error{"contention spy: sender never started"};
    }
    start_index = 1;
  }

  for (std::size_t i = start_index; i < expected; ++i) {
    if (ctx.bit_sync) {
      co_await rendezvous(ctx, spy, true);
      // Let the Trojan's acquire reach the kernel first.
      co_await k.sim().delay(ctx.spy_guard);
    } else {
      co_await k.sim().delay(core::jittered_loop_cost(ctx, spy));
    }
    const TimePoint start = k.sim().now();
    co_await acquire(ctx, spy);
    co_await release(ctx, spy);
    const Duration latency =
        k.noise().apply_corruption(spy.rng(), k.sim().now(),
                                   k.sim().now() - start);
    const std::size_t symbol = ctx.classifier.classify(latency);
    out.latencies.push_back(latency);
    out.symbols.push_back(symbol);
    // Protocol 1 line 11: pace the next probe after a short ('0') read.
    // Under barrier sync the rendezvous paces instead.
    if (!ctx.bit_sync && symbol == 0) co_await k.sleep(spy, ctx.timing.t0);
  }
  out.finished_at = k.sim().now();
}

}  // namespace mes::channels
