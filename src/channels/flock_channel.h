// flock-based covert channel (§IV.D, Protocol 1).
//
// Both endpoints open the same *read-only* file (the §III threat model:
// neither may write to shared resources) and contend on the i-node's
// whole-file lock with LOCK_EX / LOCK_UN. The file is created with
// mandatory locking, the paper's answer to Lampson's readable-writable
// interlock caveat.
#pragma once

#include "channels/contention_base.h"

namespace mes::channels {

class FlockChannel final : public ContentionBase {
 public:
  Mechanism mechanism() const override { return Mechanism::flock; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc acquire(core::RunContext& ctx, os::Process& proc) override;
  sim::Proc release(core::RunContext& ctx, os::Process& proc) override;

 private:
  os::Fd fd_for(core::RunContext& ctx, os::Process& proc) const;
  os::Fd trojan_fd_ = os::kInvalidFd;
  os::Fd spy_fd_ = os::kInvalidFd;
};

}  // namespace mes::channels
