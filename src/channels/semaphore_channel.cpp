#include "channels/semaphore_channel.h"

#include <stdexcept>

#include "os/win_objects.h"

namespace mes::channels {

namespace {
constexpr long kSemaphoreMax = 1L << 20;
}

std::string SemaphoreChannel::setup(core::RunContext& ctx)
{
  const std::string name = "mes_semaphore_" + ctx.tag;
  os::ObjectManager& om = ctx.kernel.objects();
  trojan_h_ = om.create_semaphore(ctx.trojan, name, ctx.initial_resources,
                                  kSemaphoreMax);
  if (trojan_h_ == os::kInvalidHandle) return "Semaphore: create failed";
  spy_h_ = om.open_semaphore(ctx.spy, name);
  if (spy_h_ == os::kInvalidHandle) {
    return "Semaphore: named kernel object not visible across this "
           "boundary (session-private namespace, §V.C.3)";
  }
  return {};
}

os::Handle SemaphoreChannel::handle_for(core::RunContext& ctx,
                                        os::Process& proc) const
{
  return &proc == &ctx.trojan ? trojan_h_ : spy_h_;
}

Duration SemaphoreChannel::sem_op_surcharge(os::Process& proc)
{
  // The semaphore dispatcher path is markedly heavier than a plain lock
  // op (the paper's 6-instruction argument); surcharge each P/V.
  const double jitter = proc.rng().uniform(0.85, 1.15);
  return Duration::us(kSemOpExtraUs * jitter);
}

sim::Proc SemaphoreChannel::acquire(core::RunContext& ctx, os::Process& proc)
{
  const auto status = co_await ctx.kernel.objects().wait_for_single_object(
      proc, handle_for(ctx, proc));
  if (status != os::WaitStatus::object_0) {
    throw std::runtime_error{"Semaphore P failed"};
  }
}

sim::Proc SemaphoreChannel::release(core::RunContext& ctx, os::Process& proc)
{
  co_await ctx.kernel.sim().delay(sem_op_surcharge(proc));
  const bool released = co_await ctx.kernel.objects().release_semaphore(
      proc, handle_for(ctx, proc), 1);
  if (!released) {
    throw std::runtime_error{"Semaphore V failed (count at maximum)"};
  }
}

}  // namespace mes::channels
