#include "channels/cooperation_base.h"

namespace mes::channels {

sim::Proc CooperationBase::trojan_run(core::RunContext& ctx,
                                      std::vector<std::size_t> symbols)
{
  os::Kernel& k = ctx.kernel;
  os::Process& trojan = ctx.trojan;
  for (const std::size_t s : symbols) {
    co_await k.sim().delay(core::jittered_loop_cost(ctx, trojan));
    co_await k.sleep(trojan, ctx.schedule.hold_time(s));
    co_await signal(ctx);
  }
}

sim::Proc CooperationBase::spy_run(core::RunContext& ctx, std::size_t expected,
                                   core::RxResult& out)
{
  os::Kernel& k = ctx.kernel;
  os::Process& spy = ctx.spy;
  out.symbols.reserve(expected);
  out.latencies.reserve(expected);
  // Generous per-symbol deadline: far above the slowest symbol, so it
  // only fires when a signal was genuinely lost.
  const Duration max_hold = ctx.schedule.hold_time(ctx.schedule.alphabet_size() - 1);
  const Duration timeout = (max_hold + Duration::us(200)) * 20.0;
  for (std::size_t i = 0; i < expected; ++i) {
    co_await k.sim().delay(core::jittered_loop_cost(ctx, spy));
    const TimePoint start = k.sim().now();
    const bool signaled = co_await wait(ctx, timeout);
    Duration latency = k.sim().now() - start;
    if (signaled) {
      latency = k.noise().apply_corruption(spy.rng(), k.sim().now(), latency);
    }
    out.latencies.push_back(latency);
    out.symbols.push_back(ctx.classifier.classify(latency));
  }
  out.finished_at = k.sim().now();
}

}  // namespace mes::channels
