// Write+Sync storage channel (after Chen et al.: software cache write
// channels exploiting memory-disk synchronization).
//
// The Trojan encodes '1' by merely *dirtying* a batch of pages in its
// own file — it never calls fsync. The cost lands on the Spy instead:
// under journal coupling (ext4 data=ordered) the Spy's own 1-page fsync
// must flush the Trojan's dirty pages too, and even without coupling
// the writeback daemon's flush occupies the device the Spy's fsync
// queues behind. Either path inflates the probe latency to ~t1.
#pragma once

#include "channels/storage_base.h"

namespace mes::channels {

class WriteSyncChannel final : public StorageSyncBase {
 public:
  Mechanism mechanism() const override { return Mechanism::write_sync; }

 protected:
  sim::Proc mark_one(core::RunContext& ctx) override;
};

}  // namespace mes::channels
