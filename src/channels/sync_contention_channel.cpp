#include "channels/sync_contention_channel.h"

#include <stdexcept>

#include "os/vfs.h"

namespace mes::channels {

sim::Proc SyncContentionChannel::mark_one(core::RunContext& ctx)
{
  os::Vfs& vfs = ctx.kernel.vfs();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(pages_for(ctx)) * os::PageCache::kPageSize;
  const long wrote = co_await vfs.write(ctx.trojan, trojan_fd_, 0, bytes);
  if (wrote < 0) throw std::runtime_error{"sync+sync: trojan write failed"};
  // The fsync itself blocks for ~t1 while the batch drains: the hold.
  if (co_await vfs.fsync(ctx.trojan, trojan_fd_) != os::kOk) {
    throw std::runtime_error{"sync+sync: trojan fsync failed"};
  }
}

}  // namespace mes::channels
