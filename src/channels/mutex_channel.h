// Mutex-based covert channel (Windows named mutex, Fig. 4).
#pragma once

#include "channels/contention_base.h"

namespace mes::channels {

class MutexChannel final : public ContentionBase {
 public:
  Mechanism mechanism() const override { return Mechanism::mutex; }
  std::string setup(core::RunContext& ctx) override;

 protected:
  sim::Proc acquire(core::RunContext& ctx, os::Process& proc) override;
  sim::Proc release(core::RunContext& ctx, os::Process& proc) override;

 private:
  os::Handle handle_for(core::RunContext& ctx, os::Process& proc) const;
  os::Handle trojan_h_ = os::kInvalidHandle;
  os::Handle spy_h_ = os::kInvalidHandle;
};

}  // namespace mes::channels
