// Shared protocol loops for the storage-sync channel family.
//
// These channels ride a different physical layer than the lock
// channels: queueing delay in memory-disk synchronization (the page
// cache's single flush device, os/page_cache.h). Neither endpoint
// touches a shared file — each writes and fsyncs its *own* private
// scratch file — so the §III read-only restriction on shared resources
// is never violated; the only thing shared is the device timeline.
//
// Protocol (Protocol 1 re-keyed to the flush queue):
//   Trojan, per bit:  '1' -> occupy the device (mechanism-specific:
//                            fsync a batch of dirty pages, or merely
//                            dirty them and let entanglement do it)
//                     '0' -> sleep(t0)
//   Spy, per bit:     timestamp; write one page to its own file;
//                     fsync; timestamp; classify the fsync latency.
//
// The Trojan's batch size derives from t1 at runtime (t1 / per-page
// service period), so the adaptive layer's rate axis — which rescales
// t1 — also rescales the device occupancy, and calibration, ARQ, drift
// recalibration and bonding run unchanged over the new noise shape.
#pragma once

#include "core/channel.h"

namespace mes::channels {

class StorageSyncBase : public core::Channel {
 public:
  std::string setup(core::RunContext& ctx) override;
  sim::Proc trojan_run(core::RunContext& ctx,
                       std::vector<std::size_t> symbols) override;
  sim::Proc spy_run(core::RunContext& ctx, std::size_t expected,
                    core::RxResult& out) override;

 protected:
  // The Trojan's '1' action: make the flush device busy for ~t1.
  virtual sim::Proc mark_one(core::RunContext& ctx) = 0;

  // Dirty-page batch that buys ~t1 of device occupancy.
  std::size_t pages_for(const core::RunContext& ctx) const;

  os::Fd trojan_fd_ = os::kInvalidFd;
  os::Fd spy_fd_ = os::kInvalidFd;
};

}  // namespace mes::channels
