#include "channels/signal_channel.h"

#include <stdexcept>

namespace mes::channels {

std::string SignalChannel::setup(core::RunContext& ctx)
{
  if (ctx.trojan.namespace_id() != ctx.spy.namespace_id()) {
    return "signal: PID namespaces are isolated across sandbox/VM "
           "boundaries; kill() cannot reach the spy";
  }
  return {};
}

sim::Proc SignalChannel::signal(core::RunContext& ctx)
{
  co_await ctx.kernel.kill(ctx.trojan, ctx.spy);
}

sim::Task<bool> SignalChannel::wait(core::RunContext& ctx, Duration timeout)
{
  const auto outcome = co_await ctx.kernel.sigwait(ctx.spy, timeout);
  co_return outcome == sim::WaitOutcome::signaled;
}

}  // namespace mes::channels
