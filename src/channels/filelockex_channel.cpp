#include "channels/filelockex_channel.h"

#include <stdexcept>

#include "os/vfs.h"

namespace mes::channels {

std::string FileLockExChannel::setup(core::RunContext& ctx)
{
  const std::string path = "/shared/mes_filelockex_" + ctx.tag + ".dat";
  os::Vfs& vfs = ctx.kernel.vfs();
  // kErrExists is fine — the pre-agreed path may already be there from a
  // previous setup with this tag; any other failure poisons the opens.
  const int created =
      vfs.create_file(ctx.trojan.namespace_id(), path, /*read_only=*/true,
                      /*mandatory_locking=*/true);
  if (created < 0 && created != os::kErrExists) {
    return "FileLockEX: cannot create the pre-agreed shared file";
  }
  trojan_fd_ = vfs.open(ctx.trojan, path, os::OpenMode::read_only);
  if (trojan_fd_ < 0) return "FileLockEX: trojan cannot open the shared file";
  spy_fd_ = vfs.open(ctx.spy, path, os::OpenMode::read_only);
  if (spy_fd_ < 0) {
    return "FileLockEX: shared volume not mounted across this boundary "
           "(type-2 hypervisors share no host volume, Table VI)";
  }
  return {};
}

os::Fd FileLockExChannel::fd_for(core::RunContext& ctx,
                                 os::Process& proc) const
{
  return &proc == &ctx.trojan ? trojan_fd_ : spy_fd_;
}

sim::Proc FileLockExChannel::acquire(core::RunContext& ctx, os::Process& proc)
{
  const int rc = co_await ctx.kernel.vfs().lock_file_ex(
      proc, fd_for(ctx, proc), kRegionOff, kRegionLen,
      os::LockMode::exclusive);
  if (rc != os::kOk) throw std::runtime_error{"LockFileEx failed"};
}

sim::Proc FileLockExChannel::release(core::RunContext& ctx, os::Process& proc)
{
  const int rc = co_await ctx.kernel.vfs().unlock_file_ex(
      proc, fd_for(ctx, proc), kRegionOff, kRegionLen);
  if (rc != os::kOk) throw std::runtime_error{"UnlockFileEx failed"};
}

}  // namespace mes::channels
