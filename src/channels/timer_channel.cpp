#include "channels/timer_channel.h"

#include <stdexcept>

#include "os/win_objects.h"

namespace mes::channels {

std::string TimerChannel::setup(core::RunContext& ctx)
{
  const std::string name = "mes_timer_" + ctx.tag;
  os::ObjectManager& om = ctx.kernel.objects();
  spy_h_ = om.create_waitable_timer(ctx.spy, name, os::ResetMode::auto_reset);
  if (spy_h_ == os::kInvalidHandle) return "Timer: create failed";
  trojan_h_ = om.open_waitable_timer(ctx.trojan, name);
  if (trojan_h_ == os::kInvalidHandle) {
    return "Timer: named kernel object not visible across this boundary "
           "(session-private namespace, §V.C.3)";
  }
  return {};
}

sim::Proc TimerChannel::signal(core::RunContext& ctx)
{
  os::Kernel& k = ctx.kernel;
  // SetWaitableTimer converts a due time and programs the timer queue —
  // measurably heavier than SetEvent (about half an extra op), which is
  // what separates the Timer and Event rows of Table IV.
  co_await k.sim().delay(
      k.noise().op_cost(ctx.trojan.rng(), k.sim().now()) * 0.5);
  co_await k.objects().set_waitable_timer(ctx.trojan, trojan_h_,
                                          Duration::zero());
}

sim::Task<bool> TimerChannel::wait(core::RunContext& ctx, Duration timeout)
{
  const auto status = co_await ctx.kernel.objects().wait_for_single_object(
      ctx.spy, spy_h_, timeout);
  if (status == os::WaitStatus::timed_out) co_return false;
  if (status != os::WaitStatus::object_0) {
    throw std::runtime_error{"Timer wait failed"};
  }
  co_return true;
}

}  // namespace mes::channels
