#include "codec/symbols.h"

#include <stdexcept>

namespace mes::codec {

SymbolSchedule::SymbolSchedule(std::size_t width_bits, Duration base,
                               Duration interval)
    : width_{width_bits}, base_{base}, interval_{interval}
{
  if (width_ == 0 || width_ > 8) {
    throw std::invalid_argument{"SymbolSchedule: width must be 1..8 bits"};
  }
  if (interval_ <= Duration::zero() && width_ > 0) {
    // A zero interval makes every symbol identical; reject early.
    throw std::invalid_argument{"SymbolSchedule: interval must be positive"};
  }
}

Duration SymbolSchedule::hold_time(std::size_t symbol) const
{
  if (symbol >= alphabet_size()) {
    throw std::out_of_range{"SymbolSchedule::hold_time"};
  }
  return base_ + interval_ * static_cast<double>(symbol);
}

std::vector<std::size_t> SymbolSchedule::encode(const BitVec& bits) const
{
  if (bits.size() % width_ != 0) {
    throw std::invalid_argument{
        "SymbolSchedule::encode: bit count not a multiple of symbol width"};
  }
  std::vector<std::size_t> symbols;
  symbols.reserve(bits.size() / width_);
  for (std::size_t i = 0; i < bits.size(); i += width_) {
    std::size_t s = 0;
    for (std::size_t b = 0; b < width_; ++b) {
      s = (s << 1) | static_cast<std::size_t>(bits[i + b]);
    }
    symbols.push_back(s);
  }
  return symbols;
}

BitVec SymbolSchedule::decode(const std::vector<std::size_t>& symbols) const
{
  BitVec bits;
  for (std::size_t s : symbols) {
    for (std::size_t b = width_; b-- > 0;) {
      bits.push_back(static_cast<int>((s >> b) & 1));
    }
  }
  return bits;
}

LatencyClassifier::LatencyClassifier(std::vector<Duration> thresholds)
    : thresholds_{std::move(thresholds)}
{
}

LatencyClassifier::LatencyClassifier(std::size_t alphabet_size,
                                     Duration level0, Duration interval)
{
  if (alphabet_size < 2) {
    throw std::invalid_argument{"LatencyClassifier: alphabet < 2"};
  }
  thresholds_.reserve(alphabet_size - 1);
  for (std::size_t k = 0; k + 1 < alphabet_size; ++k) {
    // Midpoint between expected levels k and k+1.
    thresholds_.push_back(level0 + interval * (static_cast<double>(k) + 0.5));
  }
}

LatencyClassifier LatencyClassifier::binary(Duration threshold)
{
  return LatencyClassifier{std::vector<Duration>{threshold}};
}

std::size_t LatencyClassifier::classify(Duration latency) const
{
  std::size_t k = 0;
  while (k < thresholds_.size() && latency > thresholds_[k]) ++k;
  return k;
}

LatencyClassifier calibrate_binary(
    const std::vector<Duration>& preamble_latencies,
    Duration fallback_threshold)
{
  // The preamble alternates 1,0,1,0,... so even indices measured '1' and
  // odd indices measured '0'.
  if (preamble_latencies.size() < 4) {
    return LatencyClassifier::binary(fallback_threshold);
  }
  Duration high_sum = Duration::zero();
  Duration low_sum = Duration::zero();
  std::size_t highs = 0;
  std::size_t lows = 0;
  for (std::size_t i = 0; i < preamble_latencies.size(); ++i) {
    if (i % 2 == 0) {
      high_sum += preamble_latencies[i];
      ++highs;
    } else {
      low_sum += preamble_latencies[i];
      ++lows;
    }
  }
  const Duration high = high_sum / static_cast<double>(highs);
  const Duration low = low_sum / static_cast<double>(lows);
  if (high <= low) return LatencyClassifier::binary(fallback_threshold);
  return LatencyClassifier::binary(low + (high - low) / 2.0);
}

}  // namespace mes::codec
