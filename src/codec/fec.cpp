#include "codec/fec.h"

#include <stdexcept>

namespace mes::codec {

namespace {

// Codeword layout [p1 p2 d1 p3 d2 d3 d4] (positions 1..7); parity bit
// p_i covers the positions whose index has bit i set, so the syndrome
// read back as a 3-bit number is the 1-based error position.
int parity(int a, int b, int c) { return a ^ b ^ c; }

}  // namespace

BitVec Hamming74::encode(const BitVec& data)
{
  if (data.size() % data_bits_per_block != 0) {
    throw std::invalid_argument{"Hamming74::encode: size % 4 != 0"};
  }
  BitVec out;
  for (std::size_t i = 0; i < data.size(); i += data_bits_per_block) {
    const int d1 = data[i];
    const int d2 = data[i + 1];
    const int d3 = data[i + 2];
    const int d4 = data[i + 3];
    out.push_back(parity(d1, d2, d4));  // p1 covers 3,5,7
    out.push_back(parity(d1, d3, d4));  // p2 covers 3,6,7
    out.push_back(d1);
    out.push_back(parity(d2, d3, d4));  // p3 covers 5,6,7
    out.push_back(d2);
    out.push_back(d3);
    out.push_back(d4);
  }
  return out;
}

Hamming74::DecodeResult Hamming74::decode(const BitVec& coded)
{
  if (coded.size() % code_bits_per_block != 0) {
    throw std::invalid_argument{"Hamming74::decode: size % 7 != 0"};
  }
  DecodeResult result;
  for (std::size_t i = 0; i < coded.size(); i += code_bits_per_block) {
    int bits[8] = {};  // 1-based positions
    for (int k = 0; k < 7; ++k) bits[k + 1] = coded[i + static_cast<std::size_t>(k)];
    const int s1 = bits[1] ^ bits[3] ^ bits[5] ^ bits[7];
    const int s2 = bits[2] ^ bits[3] ^ bits[6] ^ bits[7];
    const int s3 = bits[4] ^ bits[5] ^ bits[6] ^ bits[7];
    const int syndrome = s1 | (s2 << 1) | (s3 << 2);
    if (syndrome != 0) {
      bits[syndrome] ^= 1;
      ++result.corrected;
    }
    result.data.push_back(bits[3]);
    result.data.push_back(bits[5]);
    result.data.push_back(bits[6]);
    result.data.push_back(bits[7]);
  }
  return result;
}

BitVec interleave(const BitVec& bits, std::size_t depth)
{
  if (depth <= 1) return bits;
  if (bits.size() % depth != 0) {
    throw std::invalid_argument{"interleave: size % depth != 0"};
  }
  const std::size_t cols = bits.size() / depth;
  BitVec out;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < depth; ++r) {
      out.push_back(bits[r * cols + c]);
    }
  }
  return out;
}

BitVec deinterleave(const BitVec& bits, std::size_t depth)
{
  if (depth <= 1) return bits;
  if (bits.size() % depth != 0) {
    throw std::invalid_argument{"deinterleave: size % depth != 0"};
  }
  const std::size_t cols = bits.size() / depth;
  std::vector<int> buffer(bits.size(), 0);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < depth; ++r) {
      buffer[r * cols + c] = bits[idx++];
    }
  }
  return BitVec{std::move(buffer)};
}

BitVec fec_protect(const BitVec& data, std::size_t depth)
{
  BitVec padded = data;
  while (padded.size() % Hamming74::data_bits_per_block != 0) {
    padded.push_back(0);
  }
  BitVec coded = Hamming74::encode(padded);
  if (depth > 1) {
    while (coded.size() % depth != 0) coded.push_back(0);
    coded = interleave(coded, depth);
  }
  return coded;
}

Hamming74::DecodeResult fec_recover(const BitVec& coded, std::size_t depth)
{
  BitVec stream = depth > 1 ? deinterleave(coded, depth) : coded;
  // Drop the interleaver's zero padding down to a codeword multiple.
  const std::size_t usable =
      stream.size() - stream.size() % Hamming74::code_bits_per_block;
  return Hamming74::decode(stream.slice(0, usable));
}

}  // namespace mes::codec
