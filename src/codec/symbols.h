// Symbol alphabets and latency classification (§IV.C, §VI).
//
// A Trojan encodes a symbol by *how long* it keeps the Spy in a
// constraint state; the Spy decodes by classifying its measured release
// latency. For 1-bit symbols this is Protocol 1/2's single threshold;
// §VI extends to 2^w-ary alphabets by spacing several wait times
// `interval` apart (e.g. {15, 65, 115, 165} us for 2-bit symbols).
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvec.h"
#include "util/time.h"

namespace mes::codec {

// The transmit-side schedule: symbol k is signalled after
// base + k * interval of constraint time.
class SymbolSchedule {
 public:
  SymbolSchedule(std::size_t width_bits, Duration base, Duration interval);

  std::size_t width_bits() const { return width_; }
  std::size_t alphabet_size() const { return std::size_t{1} << width_; }
  Duration base() const { return base_; }
  Duration interval() const { return interval_; }

  Duration hold_time(std::size_t symbol) const;

  // Bits -> symbols, MSB first inside each symbol. The bit count must be
  // a multiple of the width.
  std::vector<std::size_t> encode(const BitVec& bits) const;
  BitVec decode(const std::vector<std::size_t>& symbols) const;

 private:
  std::size_t width_;
  Duration base_;
  Duration interval_;
};

// Receive-side classifier: maps a measured latency to a symbol by
// nearest expected level. Levels are anchored at `level0` (the measured
// latency of symbol 0, which includes all the fixed overheads) and
// spaced `interval` apart — exactly how the attacker calibrates from the
// synchronization preamble.
class LatencyClassifier {
 public:
  LatencyClassifier(std::size_t alphabet_size, Duration level0,
                    Duration interval);

  // Binary convenience: one threshold (Protocol 1 line 7).
  static LatencyClassifier binary(Duration threshold);

  std::size_t classify(Duration latency) const;
  std::size_t alphabet_size() const { return thresholds_.size() + 1; }

  // Threshold between symbol k and k+1.
  Duration threshold(std::size_t k) const { return thresholds_.at(k); }

 private:
  explicit LatencyClassifier(std::vector<Duration> thresholds);
  std::vector<Duration> thresholds_;  // ascending, size = alphabet - 1
};

// Calibrates a binary classifier from the alternating "1010..." preamble
// measurements: threshold = midpoint of the two observed level means.
// Returns the schedule-derived fallback when the preamble is too short.
LatencyClassifier calibrate_binary(const std::vector<Duration>& preamble_latencies,
                                   Duration fallback_threshold);

}  // namespace mes::codec
