#include "codec/frame.h"

namespace mes::codec {

Frame make_frame(const BitVec& payload, std::size_t sync_bits)
{
  Frame f;
  f.sync_bits = sync_bits;
  f.bits = BitVec::alternating(sync_bits);
  f.bits.append(payload);
  return f;
}

std::optional<BitVec> check_and_strip(const BitVec& received,
                                      std::size_t sync_bits)
{
  if (received.size() < sync_bits) return std::nullopt;
  const BitVec expected = BitVec::alternating(sync_bits);
  for (std::size_t i = 0; i < sync_bits; ++i) {
    if (received[i] != expected[i]) return std::nullopt;
  }
  return received.slice(sync_bits, received.size() - sync_bits);
}

std::uint16_t crc16(const BitVec& bits)
{
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const std::uint16_t in = bits[i] ? 1 : 0;
    const std::uint16_t top = (crc >> 15) & 1;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (top ^ in) crc ^= 0x1021;
  }
  return crc;
}

BitVec append_crc(const BitVec& bits)
{
  BitVec out = bits;
  const std::uint16_t crc = crc16(bits);
  for (std::size_t i = 0; i < kCrcBits; ++i) {
    out.push_back((crc >> (kCrcBits - 1 - i)) & 1);
  }
  return out;
}

std::optional<BitVec> check_and_strip_crc(const BitVec& bits)
{
  if (bits.size() < kCrcBits) return std::nullopt;
  const BitVec body = bits.slice(0, bits.size() - kCrcBits);
  std::uint16_t got = 0;
  for (std::size_t i = bits.size() - kCrcBits; i < bits.size(); ++i) {
    got = static_cast<std::uint16_t>((got << 1) | (bits[i] ? 1 : 0));
  }
  if (got != crc16(body)) return std::nullopt;
  return body;
}

}  // namespace mes::codec
