#include "codec/frame.h"

namespace mes::codec {

Frame make_frame(const BitVec& payload, std::size_t sync_bits)
{
  Frame f;
  f.sync_bits = sync_bits;
  f.bits = BitVec::alternating(sync_bits);
  f.bits.append(payload);
  return f;
}

std::optional<BitVec> check_and_strip(const BitVec& received,
                                      std::size_t sync_bits)
{
  if (received.size() < sync_bits) return std::nullopt;
  const BitVec expected = BitVec::alternating(sync_bits);
  for (std::size_t i = 0; i < sync_bits; ++i) {
    if (received[i] != expected[i]) return std::nullopt;
  }
  return received.slice(sync_bits, received.size() - sync_bits);
}

}  // namespace mes::codec
