// Forward error correction for covert payloads (extension).
//
// The paper's channels run raw at ~0.6 % BER; a Hamming(7,4) code with
// single-error correction per block drops the *residual* payload error
// rate by roughly two orders of magnitude for a 7/4 throughput cost —
// cheap insurance when the exfiltrated secret (a key!) must arrive
// exactly. An optional block interleaver spreads the channel's rare
// burst corruptions (measurement corruption events hit one symbol, but
// a drift slip hits a run) across code blocks.
#pragma once

#include <cstddef>

#include "util/bitvec.h"

namespace mes::codec {

// Hamming(7,4): encodes nibbles into 7-bit codewords; decode corrects
// any single bit error per codeword.
class Hamming74 {
 public:
  // Input size must be a multiple of 4.
  static BitVec encode(const BitVec& data);

  struct DecodeResult {
    BitVec data;
    std::size_t corrected = 0;  // codewords with a single error fixed
  };
  // Input size must be a multiple of 7.
  static DecodeResult decode(const BitVec& coded);

  static constexpr std::size_t data_bits_per_block = 4;
  static constexpr std::size_t code_bits_per_block = 7;
};

// Rectangular block interleaver: writes row-major, reads column-major
// over `depth` rows. Interleave/deinterleave are inverses for any input
// whose size is a multiple of depth.
BitVec interleave(const BitVec& bits, std::size_t depth);
BitVec deinterleave(const BitVec& bits, std::size_t depth);

// Convenience pipeline: Hamming-encode then interleave (and the
// inverse). `depth` 1 disables interleaving. Pads data to a multiple of
// 4 with zeros; the caller tracks the original length.
BitVec fec_protect(const BitVec& data, std::size_t depth = 7);
Hamming74::DecodeResult fec_recover(const BitVec& coded,
                                    std::size_t depth = 7);

}  // namespace mes::codec
