// Transmission framing (§V.B "The synchronization of communications").
//
// A round is [ n-bit synchronization sequence | m-bit secret data ]. The
// sync sequence is the pre-negotiated alternating pattern; the Spy
// verifies it before trusting the data section, and its measured
// latencies double as the classifier calibration set.
#pragma once

#include <cstddef>
#include <optional>

#include "util/bitvec.h"

namespace mes::codec {

struct Frame {
  BitVec bits;             // sync + payload, as transmitted
  std::size_t sync_bits;   // length of the preamble prefix
};

// Builds a frame with an alternating preamble of `sync_bits` bits.
Frame make_frame(const BitVec& payload, std::size_t sync_bits);

// Verifies and strips the preamble; std::nullopt when the received
// prefix does not match (the Spy discards the round, §V.B).
std::optional<BitVec> check_and_strip(const BitVec& received,
                                      std::size_t sync_bits);

}  // namespace mes::codec
