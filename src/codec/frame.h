// Transmission framing (§V.B "The synchronization of communications").
//
// A round is [ n-bit synchronization sequence | m-bit secret data ]. The
// sync sequence is the pre-negotiated alternating pattern; the Spy
// verifies it before trusting the data section, and its measured
// latencies double as the classifier calibration set.
//
// The ARQ layer (mes::proto) additionally protects each frame body with
// the CRC-16/CCITT checksum defined here: the preamble only proves the
// Spy latched onto a round, the CRC proves the round's *data* survived.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/bitvec.h"

namespace mes::codec {

struct Frame {
  BitVec bits;             // sync + payload, as transmitted
  std::size_t sync_bits;   // length of the preamble prefix
};

// Builds a frame with an alternating preamble of `sync_bits` bits.
Frame make_frame(const BitVec& payload, std::size_t sync_bits);

// Verifies and strips the preamble; std::nullopt when the received
// prefix does not match (the Spy discards the round, §V.B).
std::optional<BitVec> check_and_strip(const BitVec& received,
                                      std::size_t sync_bits);

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over a bit sequence of
// any length — payloads here are bit-, not byte-, granular.
std::uint16_t crc16(const BitVec& bits);

inline constexpr std::size_t kCrcBits = 16;

// [ bits | crc16(bits) ], MSB-first checksum.
BitVec append_crc(const BitVec& bits);

// Verifies and strips a trailing CRC appended by append_crc;
// std::nullopt when the checksum (or the length) is wrong.
std::optional<BitVec> check_and_strip_crc(const BitVec& bits);

}  // namespace mes::codec
