// mes::api::Session — the duplex byte-stream façade over every
// mechanism, protocol and scenario.
//
// The paper frames MES channels as a usable transport: Trojan and Spy
// exchange arbitrary data through mutex/semaphore/event constraints.
// Session is that transport as an object. `open()` takes a layered
// SessionSpec, resolves it once, and `send()` / `recv()` move bytes
// through whatever machinery the spec selects — a raw fixed-rate round,
// the §V.B retry protocol, ARQ, calibrate-then-ARQ with drift-aware
// recalibration, or a bonded multi-pair stripe — behind one interface.
// The per-mode dispatch that used to be duplicated across
// exec::run_cell, mes_cli and the examples lives in `transfer()`, and
// only there.
//
// Determinism: transfer k runs on the spec seed salted with k through
// the splitmix64 mixer (exec/seed.h), so the first transfer reproduces
// the legacy single-shot drivers bit-exactly and repeated sends land in
// decorrelated noise streams.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/spec.h"
#include "core/metrics.h"
#include "proto/adaptive.h"
#include "proto/bond.h"
#include "proto/cal_cache.h"

namespace mes::api {

// Running totals over every transfer the session carried.
struct SessionStats {
  std::size_t transfers = 0;      // send()/transfer() calls that ran
  std::size_t delivered = 0;      // arrived intact (sync ok, zero BER)
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t rounds = 0;         // §V.B retry rounds (fixed mode)
  std::size_t frames = 0;         // ARQ frames delivered
  std::size_t retransmits = 0;
  std::size_t drift_events = 0;
  std::size_t recalibrations = 0;
  Duration elapsed = Duration::zero();  // simulated wire time, summed
  double last_ber = 0.0;
  // Payload bits pushed over the summed wire time (calibration time
  // excluded, matching the protocol layer's goodput semantics).
  double goodput_bps = 0.0;
};

class Session {
 public:
  // Validates and resolves the spec. A structurally invalid spec leaves
  // the session closed with error() set; open() never throws. Runtime
  // topology verdicts (e.g. Event across a VM boundary) surface in the
  // per-transfer reports instead, exactly like the legacy drivers.
  static Session open(SessionSpec spec);

  bool is_open() const { return open_; }
  const std::string& error() const { return error_; }
  const SessionSpec& spec() const { return spec_; }

  // One framed transfer of `payload` through the machinery the spec
  // selects. The single dispatch point every driver shares (run_cell,
  // the CLI, the benches); send()/recv() ride on it. Returns the full
  // verdict; the same report is retained as last_report().
  ChannelReport transfer(const BitVec& payload);

  // Byte-stream side: send() pushes bytes Trojan -> Spy (padded to a
  // whole number of symbols with zero bits when the alphabet demands
  // it) and returns whether the transfer ran and the preamble verified
  // — i.e. the bytes landed, possibly with bit errors on a raw
  // fixed-mode link (a covert channel is noisy; arq/adaptive/bonded
  // specs make the stream bit-exact, and stats().delivered counts the
  // error-free transfers). recv() drains every whole byte the Spy
  // reassembled since the last recv(), exactly as measured.
  bool send(const std::vector<std::uint8_t>& bytes);
  bool send_text(const std::string& text);
  std::vector<std::uint8_t> recv();
  std::string recv_text();

  const SessionStats& stats() const { return stats_; }
  const ChannelReport& last_report() const { return last_report_; }

  // Mode-specific visibility: the calibration verdict of the last
  // adaptive transfer, the bond verdict of the last bonded transfer.
  const std::optional<proto::Calibration>& calibration() const
  {
    return calibration_;
  }
  const std::optional<proto::BondReport>& bond() const { return bond_; }

  // The defender's view: the kernel op trace of the last fixed-mode
  // transfer, populated when stack.trace is set (the detector's input —
  // see examples/leak_key_local). Protocol-mode transfers build their
  // stacks inside mes::proto and do not surface a trace.
  const std::vector<os::Kernel::OpRecord>& trace() const
  {
    return trace_.ops;
  }

  // Idempotent; further send/transfer calls fail with a closed-session
  // report. Buffered recv() bytes stay readable.
  void close();

  // Attaches a calibration cache shared with other sessions (the
  // campaign runner's cross-cell wiring). Only warm adaptive transfers
  // consult it. `key` pins the cache key (empty = derived from the
  // resolved config); `leader` pins the role — the campaign's
  // deterministic leader-cell scheme — while nullopt lets the first
  // claimant lead (the single-session default, where transfer 0 leads
  // and later transfers warm-start from its pick).
  void share_calibration(std::shared_ptr<proto::CalibrationCache> cache,
                         std::string key = {},
                         std::optional<bool> leader = std::nullopt);

 private:
  Session() = default;

  ChannelReport transfer_adaptive_warm(const ExperimentConfig& cfg,
                                       const BitVec& payload,
                                       const proto::AdaptiveOptions& opt,
                                       proto::Calibration* cal);

  SessionSpec spec_;
  ExperimentConfig config_;  // from_specs(spec_), resolved once
  bool open_ = false;
  std::string error_;

  SessionStats stats_;
  ChannelReport last_report_;
  std::optional<proto::Calibration> calibration_;
  std::optional<proto::BondReport> bond_;
  TraceOut trace_;
  std::vector<std::uint8_t> rx_buffer_;

  // Warm calibration reuse (lazily self-created when no cache was
  // shared, so repeated warm transfers reuse transfer 0's pick).
  std::shared_ptr<proto::CalibrationCache> cal_cache_;
  std::string cal_key_;
  std::optional<bool> cal_leader_;
};

}  // namespace mes::api
