// The layered experiment specification — the public face of the library.
//
// `ExperimentConfig` (core/runner.h) grew flat: stack, link and session
// concerns share one struct, and every driver (exec::run_cell, the CLI,
// the examples) re-assembled its own dispatch around it. The spec layer
// splits it along the architecture's own seams:
//
//   StackSpec   — who talks to whom through what: mechanism, scenario
//                 (registry name), hypervisor, seed, fairness and the
//                 other noise/stack knobs;
//   LinkSpec    — how fast and how reliably the wire runs: timing
//                 (explicit or the paper Timeset), symbol width,
//                 preamble, calibration policy, drift policy, bonded
//                 pair count;
//   SessionSpec — how payloads are delivered over the link: protocol
//                 mode, ARQ payload framing, fixed-mode retry rounds.
//                 Nests the other two; this is what `Session::open`
//                 takes and what `mes_cli plan --print` emits.
//   PlanSpec    — a campaign as data: axis lists over the specs plus
//                 the shared base SessionSpec; `mes_cli campaign --plan
//                 plan.json` parses one and expands it through the
//                 campaign engine.
//
// Every spec has `validate()` ("" = ok) and a lossless JSON round-trip
// (to_json / from_json; Duration fields serialize as integer
// nanoseconds so 42.5 us survives exactly, seeds as exact u64).
// `to_specs` / `from_specs` adapt the legacy ExperimentConfig both
// ways; the golden campaign fixtures lock that adapter byte-exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/json.h"
#include "core/runner.h"
#include "exec/campaign.h"
#include "os/types.h"

namespace mes::api {

// --- name tables shared by the specs and the CLI -----------------------

// Canonical lowercase mechanism keys, registration order: "flock",
// "filelockex", "mutex", "semaphore", "event", "timer", "signal",
// "flock-sh", "sync-sync", "write-sync".
const std::vector<std::pair<std::string, Mechanism>>& mechanism_names();
const char* mechanism_key(Mechanism m);
// Accepts the canonical key or the display form (to_string(m)).
std::optional<Mechanism> parse_mechanism(std::string_view name);

const char* hypervisor_key(HypervisorType h);  // "none" | "type-1" | "type-2"
std::optional<HypervisorType> parse_hypervisor(std::string_view name);

std::optional<ProtocolMode> parse_protocol(std::string_view name);

std::optional<CalibrationPolicy> parse_calibration(std::string_view name);

const char* fairness_key(os::LockFairness f);  // "fair" | "unfair"
std::optional<os::LockFairness> parse_fairness(std::string_view name);

// --- the layered specs -------------------------------------------------

struct StackSpec {
  Mechanism mechanism = Mechanism::event;
  std::string scenario = "local";  // registry key or alias
  HypervisorType hypervisor = HypervisorType::none;
  std::uint64_t seed = 1;
  os::LockFairness fairness = os::LockFairness::fair;
  long semaphore_initial = -1;  // <0 = the working default of 1
  Duration mitigation_fuzz = Duration::zero();
  Duration loop_cost = Duration::us(5.0);
  bool fine_grained_sync = true;
  bool recalibrate_from_preamble = true;
  bool trace = false;  // record the kernel op trace (detector input)
  std::string tag = "0";
  std::uint64_t max_events = sim::Simulator::kDefaultMaxEvents;

  std::string validate() const;  // "" = ok
  Json to_json() const;
  static StackSpec from_json(const Json& j);  // throws std::invalid_argument

  friend bool operator==(const StackSpec&, const StackSpec&) = default;
};

struct LinkSpec {
  // nullopt = the paper Timeset row for (mechanism, scenario anchor),
  // resolved when the session opens. symbol_bits below always wins.
  std::optional<TimingConfig> timing;
  std::size_t symbol_bits = 1;
  std::size_t sync_bits = 8;  // preamble length (§V.B)
  // Calibration policy (adaptive and bonded sessions).
  std::size_t probe_symbols = 256;
  double min_margin = 1.0;
  // full = every transfer sweeps the whole rate grid (the default —
  // byte-identical to the pre-cache behaviour); warm = reuse a pick
  // published for the same link key (proto/cal_cache.h) when one is
  // available. Bonded links (pairs > 1) always calibrate fully.
  CalibrationPolicy calibration = CalibrationPolicy::full;
  // Drift policy (adaptive sessions; proto/drift).
  bool drift = true;
  std::size_t drift_trigger_rounds = 3;
  std::size_t drift_max_recalibrations = 8;
  // Bonded striping (proto/bond): > 1 stripes each payload across this
  // many calibrated Trojan/Spy sub-channels in one simulation.
  std::size_t pairs = 1;

  std::string validate() const;
  Json to_json() const;
  static LinkSpec from_json(const Json& j);

  friend bool operator==(const LinkSpec&, const LinkSpec&) = default;
};

struct SessionSpec {
  StackSpec stack;
  LinkSpec link;
  ProtocolMode protocol = ProtocolMode::fixed;
  // Payload framing (the ARQ geometry; arq/adaptive/bonded sessions).
  std::size_t chunk_bits = 256;
  std::size_t fec_depth = 7;  // Hamming(7,4) interleave depth; 0 = off
  std::size_t max_rounds_per_frame = 12;
  // Fixed-mode delivery: §V.B round-protocol retries per transfer.
  std::size_t max_rounds = 1;

  std::string validate() const;  // validates the nested specs too
  Json to_json() const;
  std::string to_json_text() const;  // pretty, trailing newline
  static SessionSpec from_json(const Json& j);
  static SessionSpec parse(std::string_view text);  // throws

  friend bool operator==(const SessionSpec&, const SessionSpec&) = default;
};

// --- legacy adapter ----------------------------------------------------

// The flat config, lifted into the layered spec. `pairs` carries the
// bonded-cell axis that never lived inside ExperimentConfig.
SessionSpec to_specs(const ExperimentConfig& cfg, std::size_t pairs = 1);

// The spec, lowered onto the flat config (scenario resolved through the
// registry to its canonical name + anchor class; unknown names pass
// through so the run reports the failure exactly like the legacy path).
ExperimentConfig from_specs(const SessionSpec& spec);

// --- campaigns as data -------------------------------------------------

struct PlanScenario {
  std::string name = "local";  // registry key or alias
  HypervisorType hypervisor = HypervisorType::none;

  friend bool operator==(const PlanScenario&, const PlanScenario&) = default;
};

struct PlanTiming {
  std::string label = "paper";
  // nullopt = paper Timeset per cell. An explicit value carries only
  // t1/t0/interval; the symbol width is always session.link.symbol_bits
  // (to_plan applies it, the JSON wire does not carry a width here).
  std::optional<TimingConfig> timing;

  friend bool operator==(const PlanTiming&, const PlanTiming&) = default;
};

struct PlanSpec {
  std::vector<Mechanism> mechanisms = {Mechanism::event};
  std::vector<PlanScenario> scenarios = {{}};
  std::vector<PlanTiming> timings = {{}};
  std::vector<ProtocolMode> protocols = {ProtocolMode::fixed};
  std::vector<std::size_t> pairs = {1};
  std::size_t repeats = 1;
  std::uint64_t seed_base = 1;
  std::size_t payload_bits = 4096;
  // Shard selector baked into the plan file: this process owns every
  // cell with flat % shard_count == shard_index (exec/stream.h). The
  // default (0 of 1) is the whole grid; `mes_cli campaign --shard i/N`
  // overrides both. Seeds derive from cell coordinates, so sharding
  // never changes what a cell computes.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // Non-axis knobs: the base every cell starts from (framing, symbol
  // width, preamble, fairness, noise knobs, calibration/drift policy).
  // Fields the axes own — scenario, hypervisor, protocol, timing,
  // pairs, seed — must stay at their defaults here; validate() rejects
  // a base value the expansion would silently overwrite.
  SessionSpec session;

  std::string validate() const;
  Json to_json() const;
  std::string to_json_text() const;
  static PlanSpec from_json(const Json& j);
  static PlanSpec parse(std::string_view text);  // throws

  // Lowers onto the campaign engine's plan (scenarios resolved like the
  // CLI always did: hypervisor-sensitive entries default to type-1).
  // Throws std::invalid_argument on an unknown scenario or mechanism.
  exec::ExperimentPlan to_plan() const;

  friend bool operator==(const PlanSpec&, const PlanSpec&) = default;
};

}  // namespace mes::api
