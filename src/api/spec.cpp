#include "api/spec.h"

#include <stdexcept>
#include <utility>

#include "scenario/registry.h"

namespace mes::api {

namespace {

[[noreturn]] void bad_field(const std::string& field, const std::string& why)
{
  throw std::invalid_argument{"spec: field \"" + field + "\": " + why};
}

// Field readers: absent keys keep the default (specs are forward- and
// hand-editable), wrong types / unknown enum strings throw with the
// field name attached.
template <typename T, typename Reader>
T read_or(const Json& obj, const std::string& key, T fallback, Reader read)
{
  const Json* v = obj.find(key);
  if (v == nullptr || v->is_null()) return fallback;
  try {
    return read(*v);
  } catch (const std::invalid_argument& e) {
    bad_field(key, e.what());
  }
}

std::uint64_t read_u64(const Json& obj, const std::string& key,
                       std::uint64_t fallback)
{
  return read_or(obj, key, fallback,
                 [](const Json& v) { return v.as_u64(); });
}

std::size_t read_size(const Json& obj, const std::string& key,
                      std::size_t fallback)
{
  return read_or(obj, key, fallback, [](const Json& v) {
    return static_cast<std::size_t>(v.as_u64());
  });
}

double read_double(const Json& obj, const std::string& key, double fallback)
{
  return read_or(obj, key, fallback,
                 [](const Json& v) { return v.as_double(); });
}

bool read_bool(const Json& obj, const std::string& key, bool fallback)
{
  return read_or(obj, key, fallback,
                 [](const Json& v) { return v.as_bool(); });
}

std::string read_string(const Json& obj, const std::string& key,
                        std::string fallback)
{
  return read_or(obj, key, std::move(fallback),
                 [](const Json& v) { return v.as_string(); });
}

// Durations ride as integer nanoseconds: exact both ways (a double of
// microseconds would already wobble at 0.3 us).
Duration read_duration_ns(const Json& obj, const std::string& key,
                          Duration fallback)
{
  return read_or(obj, key, fallback,
                 [](const Json& v) { return Duration::ns(v.as_i64()); });
}

template <typename T>
T read_enum(const Json& obj, const std::string& key, T fallback,
            std::optional<T> (*parse)(std::string_view), const char* what)
{
  return read_or(obj, key, fallback, [&](const Json& v) {
    const std::optional<T> parsed = parse(v.as_string());
    if (!parsed) {
      throw std::invalid_argument{std::string{"unknown "} + what + " '" +
                                  v.as_string() + "'"};
    }
    return *parsed;
  });
}

// The keys a spec object may carry; anything else is a typo the CLI
// satellite exists to catch ("siilently ignored" config is the bug
// class this layer removes).
void reject_unknown_keys(const Json& obj, const char* what,
                         std::initializer_list<std::string_view> known)
{
  for (const auto& [key, value] : obj.members()) {
    bool ok = false;
    for (const std::string_view k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw std::invalid_argument{std::string{"spec: unknown "} + what +
                                  " field \"" + key + "\""};
    }
  }
}

Json timing_to_json(const TimingConfig& t)
{
  Json obj = Json::object();
  obj.set("t1_ns", Json::number(t.t1.count_ns()));
  obj.set("t0_ns", Json::number(t.t0.count_ns()));
  obj.set("interval_ns", Json::number(t.interval.count_ns()));
  return obj;
}

TimingConfig timing_from_json(const Json& obj)
{
  reject_unknown_keys(obj, "timing", {"t1_ns", "t0_ns", "interval_ns"});
  TimingConfig t;
  t.t1 = read_duration_ns(obj, "t1_ns", Duration::zero());
  t.t0 = read_duration_ns(obj, "t0_ns", Duration::zero());
  t.interval = read_duration_ns(obj, "interval_ns", Duration::zero());
  return t;
}

}  // namespace

// --- name tables -------------------------------------------------------

const std::vector<std::pair<std::string, Mechanism>>& mechanism_names()
{
  static const std::vector<std::pair<std::string, Mechanism>> names = {
      {"flock", Mechanism::flock},
      {"filelockex", Mechanism::file_lock_ex},
      {"mutex", Mechanism::mutex},
      {"semaphore", Mechanism::semaphore},
      {"event", Mechanism::event},
      {"timer", Mechanism::waitable_timer},
      {"signal", Mechanism::posix_signal},
      {"flock-sh", Mechanism::flock_shared},
      {"sync-sync", Mechanism::sync_contention},
      {"write-sync", Mechanism::write_sync},
      {"dme-bcast", Mechanism::dme_broadcast},
      {"dme-ra", Mechanism::dme_ricart},
      {"dme-maekawa", Mechanism::dme_maekawa},
  };
  return names;
}

const char* mechanism_key(Mechanism m)
{
  for (const auto& [name, mechanism] : mechanism_names()) {
    if (mechanism == m) return name.c_str();
  }
  return "?";
}

std::optional<Mechanism> parse_mechanism(std::string_view name)
{
  for (const auto& [key, mechanism] : mechanism_names()) {
    if (name == key || name == to_string(mechanism)) return mechanism;
  }
  return std::nullopt;
}

const char* hypervisor_key(HypervisorType h)
{
  return to_string(h);  // "none" | "type-1" | "type-2"
}

std::optional<HypervisorType> parse_hypervisor(std::string_view name)
{
  if (name == "none") return HypervisorType::none;
  if (name == "type-1" || name == "type1") return HypervisorType::type1;
  if (name == "type-2" || name == "type2") return HypervisorType::type2;
  return std::nullopt;
}

std::optional<ProtocolMode> parse_protocol(std::string_view name)
{
  if (name == "fixed") return ProtocolMode::fixed;
  if (name == "arq") return ProtocolMode::arq;
  if (name == "adaptive") return ProtocolMode::adaptive;
  return std::nullopt;
}

std::optional<CalibrationPolicy> parse_calibration(std::string_view name)
{
  if (name == "full") return CalibrationPolicy::full;
  if (name == "warm") return CalibrationPolicy::warm;
  return std::nullopt;
}

const char* fairness_key(os::LockFairness f)
{
  return f == os::LockFairness::fair ? "fair" : "unfair";
}

std::optional<os::LockFairness> parse_fairness(std::string_view name)
{
  if (name == "fair") return os::LockFairness::fair;
  if (name == "unfair") return os::LockFairness::unfair;
  return std::nullopt;
}

// --- StackSpec ---------------------------------------------------------

std::string StackSpec::validate() const
{
  if (scenario.empty()) return "stack.scenario must name a scenario";
  if (scenario::find_scenario(scenario) == nullptr) {
    return "stack.scenario: unknown scenario '" + scenario +
           "' (try `mes_cli list-scenarios`)";
  }
  if (mitigation_fuzz.is_negative()) {
    return "stack.mitigation_fuzz_ns must be >= 0";
  }
  if (loop_cost.is_negative()) return "stack.loop_cost_ns must be >= 0";
  if (max_events == 0) return "stack.max_events must be >= 1";
  return {};
}

Json StackSpec::to_json() const
{
  Json obj = Json::object();
  obj.set("mechanism", Json::str(mechanism_key(mechanism)));
  obj.set("scenario", Json::str(scenario));
  obj.set("hypervisor", Json::str(hypervisor_key(hypervisor)));
  obj.set("seed", Json::number(seed));
  obj.set("fairness", Json::str(fairness_key(fairness)));
  obj.set("semaphore_initial",
          Json::number(static_cast<std::int64_t>(semaphore_initial)));
  obj.set("mitigation_fuzz_ns", Json::number(mitigation_fuzz.count_ns()));
  obj.set("loop_cost_ns", Json::number(loop_cost.count_ns()));
  obj.set("fine_grained_sync", Json::boolean(fine_grained_sync));
  obj.set("recalibrate_from_preamble",
          Json::boolean(recalibrate_from_preamble));
  obj.set("trace", Json::boolean(trace));
  obj.set("tag", Json::str(tag));
  obj.set("max_events", Json::number(max_events));
  return obj;
}

StackSpec StackSpec::from_json(const Json& j)
{
  reject_unknown_keys(j, "stack",
                      {"mechanism", "scenario", "hypervisor", "seed",
                       "fairness", "semaphore_initial", "mitigation_fuzz_ns",
                       "loop_cost_ns", "fine_grained_sync",
                       "recalibrate_from_preamble", "trace", "tag",
                       "max_events"});
  StackSpec s;
  s.mechanism =
      read_enum(j, "mechanism", s.mechanism, parse_mechanism, "mechanism");
  s.scenario = read_string(j, "scenario", s.scenario);
  s.hypervisor = read_enum(j, "hypervisor", s.hypervisor, parse_hypervisor,
                           "hypervisor");
  s.seed = read_u64(j, "seed", s.seed);
  s.fairness = read_enum(j, "fairness", s.fairness, parse_fairness,
                         "fairness");
  s.semaphore_initial = static_cast<long>(read_or(
      j, "semaphore_initial", static_cast<std::int64_t>(s.semaphore_initial),
      [](const Json& v) { return v.as_i64(); }));
  s.mitigation_fuzz = read_duration_ns(j, "mitigation_fuzz_ns",
                                       s.mitigation_fuzz);
  s.loop_cost = read_duration_ns(j, "loop_cost_ns", s.loop_cost);
  s.fine_grained_sync = read_bool(j, "fine_grained_sync",
                                  s.fine_grained_sync);
  s.recalibrate_from_preamble =
      read_bool(j, "recalibrate_from_preamble", s.recalibrate_from_preamble);
  s.trace = read_bool(j, "trace", s.trace);
  s.tag = read_string(j, "tag", s.tag);
  s.max_events = read_u64(j, "max_events", s.max_events);
  return s;
}

// --- LinkSpec ----------------------------------------------------------

std::string LinkSpec::validate() const
{
  // The codec's SymbolSchedule carries 1..8 bits per symbol and throws
  // outside that range; the spec layer promises failures surface as
  // validation errors, never as aborts mid-transfer.
  if (symbol_bits == 0 || symbol_bits > 8) {
    return "link.symbol_bits must be 1..8";
  }
  if (sync_bits == 0) return "link.sync_bits must be >= 1";
  if (sync_bits % symbol_bits != 0) {
    return "link.sync_bits must be a multiple of link.symbol_bits";
  }
  if (probe_symbols == 0) return "link.probe_symbols must be >= 1";
  if (min_margin < 0.0) return "link.min_margin must be >= 0";
  if (drift_trigger_rounds == 0) {
    return "link.drift_trigger_rounds must be >= 1";
  }
  if (pairs == 0 || pairs > 4096) return "link.pairs must be 1..4096";
  if (timing) {
    if (timing->t1.is_negative() || timing->t0.is_negative() ||
        timing->interval.is_negative()) {
      return "link.timing durations must be >= 0";
    }
  }
  return {};
}

Json LinkSpec::to_json() const
{
  Json obj = Json::object();
  obj.set("timing", timing ? timing_to_json(*timing)
                           : Json::str("paper"));
  obj.set("symbol_bits", Json::number(static_cast<std::uint64_t>(symbol_bits)));
  obj.set("sync_bits", Json::number(static_cast<std::uint64_t>(sync_bits)));
  obj.set("probe_symbols",
          Json::number(static_cast<std::uint64_t>(probe_symbols)));
  obj.set("min_margin", Json::number(min_margin));
  obj.set("calibration", Json::str(to_string(calibration)));
  obj.set("drift", Json::boolean(drift));
  obj.set("drift_trigger_rounds",
          Json::number(static_cast<std::uint64_t>(drift_trigger_rounds)));
  obj.set("drift_max_recalibrations",
          Json::number(static_cast<std::uint64_t>(drift_max_recalibrations)));
  obj.set("pairs", Json::number(static_cast<std::uint64_t>(pairs)));
  return obj;
}

LinkSpec LinkSpec::from_json(const Json& j)
{
  reject_unknown_keys(j, "link",
                      {"timing", "symbol_bits", "sync_bits", "probe_symbols",
                       "min_margin", "calibration", "drift",
                       "drift_trigger_rounds", "drift_max_recalibrations",
                       "pairs"});
  LinkSpec s;
  if (const Json* t = j.find("timing"); t != nullptr && !t->is_null()) {
    if (t->is_string()) {
      if (t->as_string() != "paper") {
        bad_field("timing", "expected \"paper\" or a timing object");
      }
      s.timing.reset();
    } else {
      try {
        s.timing = timing_from_json(*t);
      } catch (const std::invalid_argument& e) {
        bad_field("timing", e.what());
      }
    }
  }
  s.symbol_bits = read_size(j, "symbol_bits", s.symbol_bits);
  s.sync_bits = read_size(j, "sync_bits", s.sync_bits);
  s.probe_symbols = read_size(j, "probe_symbols", s.probe_symbols);
  s.min_margin = read_double(j, "min_margin", s.min_margin);
  s.calibration = read_enum(j, "calibration", s.calibration,
                            parse_calibration, "calibration policy");
  s.drift = read_bool(j, "drift", s.drift);
  s.drift_trigger_rounds =
      read_size(j, "drift_trigger_rounds", s.drift_trigger_rounds);
  s.drift_max_recalibrations =
      read_size(j, "drift_max_recalibrations", s.drift_max_recalibrations);
  s.pairs = read_size(j, "pairs", s.pairs);
  return s;
}

// --- SessionSpec -------------------------------------------------------

std::string SessionSpec::validate() const
{
  if (std::string err = stack.validate(); !err.empty()) return err;
  if (std::string err = link.validate(); !err.empty()) return err;
  if (chunk_bits == 0) return "session.chunk_bits must be >= 1";
  if (max_rounds_per_frame == 0) {
    return "session.max_rounds_per_frame must be >= 1";
  }
  if (max_rounds == 0) return "session.max_rounds must be >= 1";
  // A bonded link runs the per-pair adaptive stack by construction
  // (proto/bond calibrates every sub-channel); a spec claiming fixed or
  // arq over pairs > 1 would be silently ignored — reject it instead.
  if (link.pairs > 1 && protocol != ProtocolMode::adaptive) {
    return "session.protocol must be \"adaptive\" when link.pairs > 1 "
           "(bonded links calibrate every sub-channel)";
  }
  return {};
}

Json SessionSpec::to_json() const
{
  Json obj = Json::object();
  obj.set("stack", stack.to_json());
  obj.set("link", link.to_json());
  obj.set("protocol", Json::str(to_string(protocol)));
  obj.set("chunk_bits", Json::number(static_cast<std::uint64_t>(chunk_bits)));
  obj.set("fec_depth", Json::number(static_cast<std::uint64_t>(fec_depth)));
  obj.set("max_rounds_per_frame",
          Json::number(static_cast<std::uint64_t>(max_rounds_per_frame)));
  obj.set("max_rounds", Json::number(static_cast<std::uint64_t>(max_rounds)));
  return obj;
}

std::string SessionSpec::to_json_text() const
{
  return to_json().pretty();
}

SessionSpec SessionSpec::from_json(const Json& j)
{
  reject_unknown_keys(j, "session",
                      {"stack", "link", "protocol", "chunk_bits", "fec_depth",
                       "max_rounds_per_frame", "max_rounds"});
  SessionSpec s;
  if (const Json* stack = j.find("stack"); stack != nullptr) {
    s.stack = StackSpec::from_json(*stack);
  }
  if (const Json* link = j.find("link"); link != nullptr) {
    s.link = LinkSpec::from_json(*link);
  }
  s.protocol = read_enum(j, "protocol", s.protocol, parse_protocol,
                         "protocol");
  s.chunk_bits = read_size(j, "chunk_bits", s.chunk_bits);
  s.fec_depth = read_size(j, "fec_depth", s.fec_depth);
  s.max_rounds_per_frame =
      read_size(j, "max_rounds_per_frame", s.max_rounds_per_frame);
  s.max_rounds = read_size(j, "max_rounds", s.max_rounds);
  return s;
}

SessionSpec SessionSpec::parse(std::string_view text)
{
  return from_json(Json::parse(text));
}

// --- legacy adapter ----------------------------------------------------

SessionSpec to_specs(const ExperimentConfig& cfg, std::size_t pairs)
{
  SessionSpec spec;
  spec.stack.mechanism = cfg.mechanism;
  spec.stack.scenario =
      cfg.scenario_name.empty() ? to_string(cfg.scenario) : cfg.scenario_name;
  spec.stack.hypervisor = cfg.hypervisor;
  spec.stack.seed = cfg.seed;
  spec.stack.fairness = cfg.fairness;
  spec.stack.semaphore_initial = cfg.semaphore_initial;
  spec.stack.mitigation_fuzz = cfg.mitigation_fuzz;
  spec.stack.loop_cost = cfg.loop_cost;
  spec.stack.fine_grained_sync = cfg.fine_grained_sync;
  spec.stack.recalibrate_from_preamble = cfg.recalibrate_from_preamble;
  spec.stack.trace = cfg.enable_trace;
  spec.stack.tag = cfg.tag;
  spec.stack.max_events = cfg.max_events;

  // Explicit timing: the config is concrete. link.symbol_bits is the
  // authoritative width (from_specs re-applies it over the timing), so
  // the embedded copy is normalized to its default — otherwise the JSON
  // wire, which only carries t1/t0/interval, would break spec equality
  // after a round-trip.
  spec.link.timing = cfg.timing;
  spec.link.timing->symbol_bits = 1;
  spec.link.symbol_bits = cfg.timing.symbol_bits;
  spec.link.sync_bits = cfg.sync_bits;
  spec.link.calibration = cfg.calibration;
  spec.link.pairs = pairs == 0 ? 1 : pairs;

  // expand() forces bonded cells to the adaptive stack; the lifted spec
  // states it so the invariant validates instead of being implied.
  spec.protocol =
      spec.link.pairs > 1 ? ProtocolMode::adaptive : cfg.protocol;
  return spec;
}

ExperimentConfig from_specs(const SessionSpec& spec)
{
  ExperimentConfig cfg;
  cfg.mechanism = spec.stack.mechanism;
  // Resolve through the registry like every other driver: the canonical
  // name is what cells report, the anchor class selects the Timeset
  // row. Unknown names pass through so validate_config reports them at
  // run time (the legacy failure path, not an exception).
  if (const scenario::ScenarioDef* def =
          scenario::find_scenario(spec.stack.scenario);
      def != nullptr) {
    cfg.scenario = def->legacy;
    cfg.scenario_name = def->name;
  } else {
    cfg.scenario_name = spec.stack.scenario;
  }
  cfg.hypervisor = spec.stack.hypervisor;
  cfg.seed = spec.stack.seed;
  cfg.fairness = spec.stack.fairness;
  cfg.semaphore_initial = spec.stack.semaphore_initial;
  cfg.mitigation_fuzz = spec.stack.mitigation_fuzz;
  cfg.loop_cost = spec.stack.loop_cost;
  cfg.fine_grained_sync = spec.stack.fine_grained_sync;
  cfg.recalibrate_from_preamble = spec.stack.recalibrate_from_preamble;
  cfg.enable_trace = spec.stack.trace;
  cfg.tag = spec.stack.tag;
  cfg.max_events = spec.stack.max_events;

  cfg.timing = spec.link.timing
                   ? *spec.link.timing
                   : paper_timeset(cfg.mechanism, cfg.scenario);
  cfg.timing.symbol_bits = spec.link.symbol_bits;
  cfg.sync_bits = spec.link.sync_bits;
  cfg.calibration = spec.link.calibration;

  cfg.protocol = spec.protocol;
  return cfg;
}

// --- PlanSpec ----------------------------------------------------------

std::string PlanSpec::validate() const
{
  if (mechanisms.empty()) return "plan.mechanisms must name at least one";
  if (scenarios.empty()) return "plan.scenarios must name at least one";
  if (timings.empty()) return "plan.timings must name at least one";
  if (protocols.empty()) return "plan.protocols must name at least one";
  if (pairs.empty()) return "plan.pairs must name at least one";
  for (const PlanScenario& s : scenarios) {
    if (scenario::find_scenario(s.name) == nullptr) {
      return "plan.scenarios: unknown scenario '" + s.name + "'";
    }
  }
  for (const std::size_t n : pairs) {
    if (n == 0 || n > 4096) return "plan.pairs values must be 1..4096";
  }
  if (repeats == 0) return "plan.repeats must be >= 1";
  if (payload_bits == 0) return "plan.payload_bits must be >= 1";
  if (shard_count == 0) return "plan.shard_count must be >= 1";
  if (shard_index >= shard_count) {
    return "plan.shard_index must be 0.." + std::to_string(shard_count - 1);
  }
  if (std::string err = session.validate(); !err.empty()) return err;
  // The axes own these; a base-session value would be silently
  // overwritten per cell, which is exactly the bug class validate()
  // exists to reject.
  if (session.link.timing) {
    return "plan.session.link.timing is owned by the timings axis — name "
           "the timing there";
  }
  if (session.link.pairs != 1) {
    return "plan.session.link.pairs is owned by the pairs axis";
  }
  if (session.stack.hypervisor != HypervisorType::none) {
    return "plan.session.stack.hypervisor is owned by the scenarios axis "
           "(per-entry \"hypervisor\")";
  }
  if (session.stack.scenario != "local") {
    return "plan.session.stack.scenario is owned by the scenarios axis";
  }
  if (session.protocol != ProtocolMode::fixed) {
    return "plan.session.protocol is owned by the protocols axis";
  }
  if (session.stack.seed != 1) {
    return "plan.session.stack.seed is owned by plan.seed_base";
  }
  return {};
}

Json PlanSpec::to_json() const
{
  Json obj = Json::object();
  Json mechs = Json::array();
  for (const Mechanism m : mechanisms) mechs.push(Json::str(mechanism_key(m)));
  obj.set("mechanisms", std::move(mechs));

  Json scens = Json::array();
  for (const PlanScenario& s : scenarios) {
    Json entry = Json::object();
    entry.set("name", Json::str(s.name));
    if (s.hypervisor != HypervisorType::none) {
      entry.set("hypervisor", Json::str(hypervisor_key(s.hypervisor)));
    }
    scens.push(std::move(entry));
  }
  obj.set("scenarios", std::move(scens));

  Json times = Json::array();
  for (const PlanTiming& t : timings) {
    Json entry = Json::object();
    entry.set("label", Json::str(t.label));
    if (t.timing) entry.set("timing", timing_to_json(*t.timing));
    times.push(std::move(entry));
  }
  obj.set("timings", std::move(times));

  Json protos = Json::array();
  for (const ProtocolMode p : protocols) protos.push(Json::str(to_string(p)));
  obj.set("protocols", std::move(protos));

  Json pair_axis = Json::array();
  for (const std::size_t n : pairs) {
    pair_axis.push(Json::number(static_cast<std::uint64_t>(n)));
  }
  obj.set("pairs", std::move(pair_axis));

  obj.set("repeats", Json::number(static_cast<std::uint64_t>(repeats)));
  obj.set("seed_base", Json::number(seed_base));
  obj.set("payload_bits",
          Json::number(static_cast<std::uint64_t>(payload_bits)));
  // Emitted only when sharded: the default keeps legacy plan round-trips
  // (and their goldens) byte-identical.
  if (shard_count > 1) {
    obj.set("shard_index", Json::number(static_cast<std::uint64_t>(shard_index)));
    obj.set("shard_count", Json::number(static_cast<std::uint64_t>(shard_count)));
  }
  obj.set("session", session.to_json());
  return obj;
}

std::string PlanSpec::to_json_text() const
{
  return to_json().pretty();
}

PlanSpec PlanSpec::from_json(const Json& j)
{
  reject_unknown_keys(j, "plan",
                      {"mechanisms", "scenarios", "timings", "protocols",
                       "pairs", "repeats", "seed_base", "payload_bits",
                       "shard_index", "shard_count", "session"});
  PlanSpec p;
  if (const Json* mechs = j.find("mechanisms"); mechs != nullptr) {
    p.mechanisms.clear();
    for (const Json& m : mechs->items()) {
      const std::optional<Mechanism> parsed = parse_mechanism(m.as_string());
      if (!parsed) bad_field("mechanisms", "unknown mechanism '" + m.as_string() + "'");
      p.mechanisms.push_back(*parsed);
    }
  }
  if (const Json* scens = j.find("scenarios"); scens != nullptr) {
    p.scenarios.clear();
    for (const Json& s : scens->items()) {
      PlanScenario entry;
      if (s.is_string()) {
        entry.name = s.as_string();
      } else {
        reject_unknown_keys(s, "scenario", {"name", "hypervisor"});
        entry.name = read_string(s, "name", entry.name);
        entry.hypervisor = read_enum(s, "hypervisor", entry.hypervisor,
                                     parse_hypervisor, "hypervisor");
      }
      p.scenarios.push_back(std::move(entry));
    }
  }
  if (const Json* times = j.find("timings"); times != nullptr) {
    p.timings.clear();
    for (const Json& t : times->items()) {
      PlanTiming entry;
      reject_unknown_keys(t, "timing", {"label", "timing"});
      entry.label = read_string(t, "label", entry.label);
      if (const Json* explicit_timing = t.find("timing");
          explicit_timing != nullptr && !explicit_timing->is_null()) {
        entry.timing = timing_from_json(*explicit_timing);
      }
      p.timings.push_back(std::move(entry));
    }
  }
  if (const Json* protos = j.find("protocols"); protos != nullptr) {
    p.protocols.clear();
    for (const Json& proto : protos->items()) {
      const std::optional<ProtocolMode> parsed =
          parse_protocol(proto.as_string());
      if (!parsed) {
        bad_field("protocols", "unknown protocol '" + proto.as_string() + "'");
      }
      p.protocols.push_back(*parsed);
    }
  }
  if (const Json* pair_axis = j.find("pairs"); pair_axis != nullptr) {
    p.pairs.clear();
    for (const Json& n : pair_axis->items()) {
      p.pairs.push_back(static_cast<std::size_t>(n.as_u64()));
    }
  }
  p.repeats = read_size(j, "repeats", p.repeats);
  p.seed_base = read_u64(j, "seed_base", p.seed_base);
  p.payload_bits = read_size(j, "payload_bits", p.payload_bits);
  p.shard_index = read_size(j, "shard_index", p.shard_index);
  p.shard_count = read_size(j, "shard_count", p.shard_count);
  if (const Json* session = j.find("session"); session != nullptr) {
    p.session = SessionSpec::from_json(*session);
  }
  return p;
}

PlanSpec PlanSpec::parse(std::string_view text)
{
  return from_json(Json::parse(text));
}

exec::ExperimentPlan PlanSpec::to_plan() const
{
  if (std::string err = validate(); !err.empty()) {
    throw std::invalid_argument{err};
  }
  exec::ExperimentPlan plan;
  plan.mechanisms = mechanisms;

  plan.scenarios.clear();
  for (const PlanScenario& s : scenarios) {
    const scenario::ScenarioDef& def = scenario::scenario_or_throw(s.name);
    // The CLI's historical resolution: the hypervisor knob only matters
    // for hypervisor-sensitive scenarios, and those default to type-1.
    plan.scenarios.push_back(exec::named_scenario(
        def.name, def.hypervisor_sensitive
                      ? (s.hypervisor == HypervisorType::none
                             ? HypervisorType::type1
                             : s.hypervisor)
                      : HypervisorType::none));
  }

  plan.timings.clear();
  std::vector<bool> timing_is_paper;
  for (const PlanTiming& t : timings) {
    exec::TimingSpec spec;
    spec.label = t.label;
    if (t.timing) {
      TimingConfig timing = *t.timing;
      timing.symbol_bits = session.link.symbol_bits;
      spec.timing = timing;
    }
    timing_is_paper.push_back(!t.timing.has_value());
    plan.timings.push_back(std::move(spec));
  }

  plan.protocols.clear();
  for (const ProtocolMode p : protocols) {
    plan.protocols.push_back({to_string(p), p});
  }
  plan.pairs = pairs;
  plan.repeats = repeats;
  plan.seed_base = seed_base;
  plan.payload_bits = payload_bits;
  plan.base = from_specs(session);

  // expand() re-resolves paper Timesets per (mechanism, scenario), which
  // resets the symbol width to the tables' 1; the link spec's width must
  // survive that, exactly like the CLI's per-cell tweak always did.
  const std::size_t width = session.link.symbol_bits;
  plan.tweak = [width, timing_is_paper](ExperimentConfig& cfg,
                                        const exec::CellCoord& coord) {
    if (timing_is_paper[coord.timing]) cfg.timing.symbol_bits = width;
  };
  return plan;
}

}  // namespace mes::api
