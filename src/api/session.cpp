#include "api/session.h"

#include <algorithm>
#include <utility>

#include "exec/seed.h"

namespace mes::api {

namespace {

// Seed-salt domain separating per-transfer streams from the §V.B
// retry-round streams (run_with_retries mixes bare round indices).
constexpr std::uint64_t kTransferSaltDomain = 0x5E55101234ULL;

ChannelReport failed_report(const ExperimentConfig& cfg, std::string why)
{
  ChannelReport rep;
  rep.mechanism = cfg.mechanism;
  rep.scenario = cfg.scenario;
  rep.scenario_name = cfg.scenario_name;
  rep.timing = cfg.timing;
  rep.failure_reason = std::move(why);
  return rep;
}

proto::ArqOptions arq_options_from(const SessionSpec& spec)
{
  proto::ArqOptions arq;
  arq.chunk_bits = spec.chunk_bits;
  arq.fec_depth = spec.fec_depth;
  arq.max_rounds_per_frame = spec.max_rounds_per_frame;
  arq.sync_bits = spec.link.sync_bits;  // per-round preamble (§V.B)
  return arq;
}

proto::CalibrationOptions calibration_options_from(const SessionSpec& spec)
{
  proto::CalibrationOptions cal;
  cal.probe_symbols = spec.link.probe_symbols;
  cal.min_margin = spec.link.min_margin;
  return cal;
}

proto::DriftOptions drift_options_from(const SessionSpec& spec)
{
  proto::DriftOptions drift;
  drift.enabled = spec.link.drift;
  drift.trigger_rounds = spec.link.drift_trigger_rounds;
  drift.max_recalibrations = spec.link.drift_max_recalibrations;
  // The margin floor is one policy across the offline calibration and
  // the online retune — a drifted link must not re-admit rates the
  // user's spec excluded. (probe_symbols deliberately stays at the
  // drift layer's shorter default: the session is bleeding time while
  // stale; see drift.h.)
  drift.min_margin = spec.link.min_margin;
  return drift;
}

}  // namespace

Session Session::open(SessionSpec spec)
{
  Session session;
  session.spec_ = std::move(spec);
  // Resolve the config even when validation fails: the closed session's
  // failure reports must carry the spec's real mechanism/scenario
  // labels, like the legacy runner's failure path stamped its cfg.
  session.config_ = from_specs(session.spec_);
  if (std::string err = session.spec_.validate(); !err.empty()) {
    session.error_ = std::move(err);
    return session;
  }
  session.open_ = true;
  return session;
}

ChannelReport Session::transfer(const BitVec& payload)
{
  if (!open_) {
    last_report_ = failed_report(
        config_, error_.empty() ? "session is closed" : error_);
    return last_report_;
  }

  ExperimentConfig cfg = config_;
  // Transfer 0 runs on the spec seed exactly (the legacy single-shot
  // drivers, bit for bit); later transfers salt it so repeated sends
  // never replay one noise realization. The leading domain constant
  // keeps the transfer salts off run_with_retries' single-coordinate
  // retry salts: without it, transfer 0's retry round k and transfer k
  // would share mix_seed(seed, {k}) — the same RNG stream.
  if (stats_.transfers > 0) {
    cfg.seed = exec::mix_seed(
        config_.seed,
        {kTransferSaltDomain, static_cast<std::uint64_t>(stats_.transfers)});
  }

  ChannelReport rep;
  if (spec_.link.pairs > 1) {
    // Bonded striping implies the per-pair adaptive stack (proto/bond).
    proto::BondOptions opt;
    opt.arq = arq_options_from(spec_);
    opt.calibration = calibration_options_from(spec_);
    proto::BondReport bond;
    rep = proto::run_bonded_transmission(cfg, payload, spec_.link.pairs, opt,
                                         &bond);
    bond_ = std::move(bond);
    calibration_.reset();
  } else {
    switch (spec_.protocol) {
      case ProtocolMode::fixed: {
        TraceOut* trace = spec_.stack.trace ? &trace_ : nullptr;
        if (spec_.max_rounds > 1) {
          const RoundedReport rounded =
              run_with_retries(cfg, payload, spec_.max_rounds, trace);
          stats_.rounds += rounded.rounds_attempted;
          rep = rounded.report;
        } else {
          stats_.rounds += 1;
          rep = run_transmission(cfg, payload, trace);
        }
        break;
      }
      case ProtocolMode::arq:
        rep = proto::run_arq_transmission(cfg, payload,
                                          arq_options_from(spec_));
        break;
      case ProtocolMode::adaptive: {
        proto::AdaptiveOptions opt;
        opt.arq = arq_options_from(spec_);
        opt.calibration = calibration_options_from(spec_);
        opt.drift = drift_options_from(spec_);
        proto::Calibration cal;
        if (spec_.link.calibration == CalibrationPolicy::warm) {
          rep = transfer_adaptive_warm(cfg, payload, opt, &cal);
        } else {
          rep = proto::run_adaptive_transmission(cfg, payload, opt, &cal);
        }
        calibration_ = std::move(cal);
        bond_.reset();
        break;
      }
    }
  }

  ++stats_.transfers;
  if (rep.ok && rep.sync_ok && rep.ber == 0.0) ++stats_.delivered;
  stats_.last_ber = rep.ber;
  stats_.elapsed += rep.elapsed;
  if (rep.proto) {
    stats_.frames += rep.proto->frames;
    stats_.retransmits += rep.proto->retransmits;
    stats_.drift_events += rep.proto->drift_events;
    stats_.recalibrations += rep.proto->recalibrations;
  }
  if (rep.ok && rep.sync_ok) {
    stats_.bytes_received += rep.received_payload.size() / 8;
  }
  if (stats_.elapsed > Duration::zero()) {
    stats_.goodput_bps =
        static_cast<double>(stats_.bytes_received) * 8.0 /
        stats_.elapsed.to_sec();
  }
  last_report_ = rep;
  return last_report_;
}

void Session::share_calibration(
    std::shared_ptr<proto::CalibrationCache> cache, std::string key,
    std::optional<bool> leader)
{
  cal_cache_ = std::move(cache);
  cal_key_ = std::move(key);
  cal_leader_ = leader;
}

ChannelReport Session::transfer_adaptive_warm(const ExperimentConfig& cfg,
                                              const BitVec& payload,
                                              const proto::AdaptiveOptions& opt,
                                              proto::Calibration* cal)
{
  if (!cal_cache_) cal_cache_ = std::make_shared<proto::CalibrationCache>();
  // The key excludes the seed, so every transfer of this session (and
  // every same-link cell sharing the cache) maps to one entry.
  const std::string key =
      cal_key_.empty()
          ? proto::CalibrationCache::key_for(cfg, spec_.link.probe_symbols,
                                             spec_.link.min_margin)
          : cal_key_;
  const bool leader =
      cal_leader_.has_value() ? *cal_leader_ : cal_cache_->claim(key);

  if (leader) {
    // The leader always publishes — a success, a calibration failure,
    // or (via the catch) an escaping exception — so a follower blocked
    // in wait() can never hang on this key.
    ChannelReport rep;
    try {
      rep = proto::run_adaptive_transmission(cfg, payload, opt, cal);
    } catch (...) {
      cal_cache_->publish_failure(key);
      throw;
    }
    if (cal->ok) {
      cal_cache_->publish(
          key, {cal->grid_index, cal->margin, cal->symbol_error});
    } else {
      cal_cache_->publish_failure(key);
    }
    return rep;
  }

  const std::optional<proto::CalibrationPick> pick = cal_cache_->wait(key);
  if (!pick) {
    // Leader's sweep failed: run independently (source stays full).
    return proto::run_adaptive_transmission(cfg, payload, opt, cal);
  }
  return proto::run_adaptive_transmission_warm(cfg, payload, opt, *pick, cal);
}

bool Session::send(const std::vector<std::uint8_t>& bytes)
{
  BitVec payload = BitVec::from_bytes(bytes);
  // Wider alphabets pace whole symbols; pad with zero bits and let
  // recv() drop the trailing partial byte.
  const std::size_t width = std::max<std::size_t>(spec_.link.symbol_bits, 1);
  while (payload.size() % width != 0) payload.push_back(0);

  const ChannelReport rep = transfer(payload);
  // Bytes count as sent once the Trojan actually drove the channel —
  // a closed session or a setup/topology failure never touched the
  // wire, so stats() ratios keep an honest denominator.
  if (rep.ok) stats_.bytes_sent += bytes.size();
  if (!rep.ok || !rep.sync_ok) return false;

  const std::size_t usable_bits =
      std::min(rep.received_payload.size(), payload.size());
  const std::vector<std::uint8_t> received =
      rep.received_payload.slice(0, usable_bits - usable_bits % 8).to_bytes();
  rx_buffer_.insert(rx_buffer_.end(), received.begin(), received.end());
  return true;
}

bool Session::send_text(const std::string& text)
{
  return send(std::vector<std::uint8_t>(text.begin(), text.end()));
}

std::vector<std::uint8_t> Session::recv()
{
  return std::exchange(rx_buffer_, {});
}

std::string Session::recv_text()
{
  const std::vector<std::uint8_t> bytes = recv();
  return std::string{bytes.begin(), bytes.end()};
}

void Session::close()
{
  if (!open_) return;
  open_ = false;
  error_ = "session is closed";
}

}  // namespace mes::api
