// Minimal JSON document model for the public spec layer (mes::api).
//
// The campaign engine already *emits* JSON (exec/campaign.cpp); what the
// spec layer adds is the other direction — plans and session specs are
// data (`mes_cli campaign --plan plan.json`), so they must parse back
// losslessly. This is a strict RFC-8259 subset: objects keep insertion
// order (spec round-trips are byte-stable), numbers remember their raw
// token so 64-bit seeds survive exactly (a double would shave the low
// bits off e.g. 15877410703883005819), and doubles print with the
// shortest representation that round-trips.
//
// Deliberately not a general-purpose library: no comments, no trailing
// commas, no NaN/Inf literals (the emission convention repo-wide is
// `null` for non-finite metrics), errors throw std::invalid_argument
// with a byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mes::api {

class Json {
 public:
  enum class Type { null_v, boolean, number, string, array, object };

  Json() = default;  // null

  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json number(int v) { return number(static_cast<std::int64_t>(v)); }
  static Json str(std::string v);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null_v; }
  bool is_object() const { return type_ == Type::object; }
  bool is_array() const { return type_ == Type::array; }
  bool is_string() const { return type_ == Type::string; }
  bool is_number() const { return type_ == Type::number; }
  bool is_bool() const { return type_ == Type::boolean; }

  // Typed accessors; std::invalid_argument on a type mismatch (the spec
  // parsers wrap these with the offending field name).
  bool as_bool() const;
  double as_double() const;
  // Exact 64-bit reads: reject negatives / fractions / out-of-range
  // instead of silently rounding through a double.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;

  // Array access.
  const std::vector<Json>& items() const;
  Json& push(Json v);  // returns the stored element

  // Object access (insertion-ordered).
  const std::vector<std::pair<std::string, Json>>& members() const;
  const Json* find(std::string_view key) const;  // nullptr when absent
  Json& set(std::string key, Json v);            // append or replace

  // Compact single-line emission (strings escaped like the campaign
  // emitter: \" \\ \n \t and \u00xx for other control bytes).
  std::string dump() const;
  // Indented emission for human-edited templates (`mes_cli plan`).
  std::string pretty(int indent = 2) const;

  // Strict parse of a complete document; std::invalid_argument with a
  // byte offset on any violation (trailing garbage included).
  static Json parse(std::string_view text);

 private:
  Type type_ = Type::null_v;
  bool bool_ = false;
  double num_ = 0.0;
  std::string text_;  // string value, or the raw number token
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;

  void write(std::string& out, int indent, int depth) const;
};

}  // namespace mes::api
