#include "api/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace mes::api {

namespace {

[[noreturn]] void fail(const std::string& what)
{
  throw std::invalid_argument{"json: " + what};
}

[[noreturn]] void fail_at(const std::string& what, std::size_t at)
{
  throw std::invalid_argument{"json: " + what + " at offset " +
                              std::to_string(at)};
}

// Shortest decimal form that parses back to exactly `v`.
std::string format_double(double v)
{
  if (!std::isfinite(v)) return "null";  // repo-wide non-finite convention
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void escape_into(std::string& out, const std::string& s)
{
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Recursive-descent parser over the whole document.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  Json parse_document()
  {
    Json v = parse_value();
    skip_ws();
    if (at_ != text_.size()) fail_at("trailing content", at_);
    return v;
  }

 private:
  void skip_ws()
  {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  char peek()
  {
    if (at_ >= text_.size()) fail_at("unexpected end of input", at_);
    return text_[at_];
  }

  void expect(char c)
  {
    if (peek() != c) {
      fail_at(std::string{"expected '"} + c + "'", at_);
    }
    ++at_;
  }

  bool literal(std::string_view word)
  {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }

  Json parse_value()
  {
    // Recursive descent: bound the depth so a pathological document is
    // a parse error, not a stack overflow.
    if (depth_ >= kMaxDepth) fail_at("nesting too deep", at_);
    ++depth_;
    skip_ws();
    const char c = peek();
    Json v;
    if (c == '{') v = parse_object();
    else if (c == '[') v = parse_array();
    else if (c == '"') v = Json::str(parse_string());
    else if (literal("true")) v = Json::boolean(true);
    else if (literal("false")) v = Json::boolean(false);
    else if (literal("null")) v = Json{};
    else v = parse_number();
    --depth_;
    return v;
  }

  Json parse_object()
  {
    Json obj = Json::object();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++at_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail_at("duplicate key \"" + key + "\"", at_);
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array()
  {
    Json arr = Json::array();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++at_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string()
  {
    expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) fail_at("unterminated string", at_);
      const char c = text_[at_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail_at("raw control byte in string", at_ - 1);
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = at_ < text_.size() ? text_[at_++] : '\0';
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The specs only ever escape control bytes; full \u handling
          // (surrogate pairs included) keeps arbitrary hand-written
          // documents valid UTF-8 on the way through.
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail_at("lone low surrogate", at_ - 6);
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (at_ + 2 > text_.size() || text_[at_] != '\\' ||
                text_[at_ + 1] != 'u') {
              fail_at("high surrogate without a pair", at_);
            }
            at_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail_at("high surrogate without a low surrogate", at_ - 6);
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail_at("bad escape", at_ - 1);
      }
    }
  }

  unsigned parse_hex4()
  {
    if (at_ + 4 > text_.size()) fail_at("truncated \\u escape", at_);
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[at_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail_at("bad \\u escape", at_ - 1);
    }
    return code;
  }

  Json parse_number()
  {
    const std::size_t start = at_;
    if (at_ < text_.size() && text_[at_] == '-') ++at_;
    if (at_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
      fail_at("invalid value", start);  // catches nan/inf and stray tokens
    }
    // RFC 8259: no leading zeros ("0123" would read as 123, an
    // octal-intent seed silently running a different experiment).
    if (text_[at_] == '0' && at_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[at_ + 1]))) {
      fail_at("leading zeros are not allowed", at_);
    }
    auto digits = [&] {
      while (at_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
    };
    digits();
    if (at_ < text_.size() && text_[at_] == '.') {
      ++at_;
      if (at_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        fail_at("digits must follow '.'", at_);
      }
      digits();
    }
    if (at_ < text_.size() && (text_[at_] == 'e' || text_[at_] == 'E')) {
      ++at_;
      if (at_ < text_.size() && (text_[at_] == '+' || text_[at_] == '-')) ++at_;
      if (at_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[at_]))) {
        fail_at("digits must follow exponent", at_);
      }
      digits();
    }
    const std::string token{text_.substr(start, at_ - start)};
    // Integer tokens go through the exact 64-bit factories so as_u64 /
    // as_i64 re-read them losslessly; anything else (or an integer too
    // wide for 64 bits) is a double.
    if (token.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      if (token.front() == '-') {
        const std::int64_t v = std::strtoll(token.c_str(), nullptr, 10);
        if (errno != ERANGE) return Json::number(v);
      } else {
        const std::uint64_t v = std::strtoull(token.c_str(), nullptr, 10);
        if (errno != ERANGE) return Json::number(v);
      }
    }
    const double v = std::strtod(token.c_str(), nullptr);
    // A token that overflows to infinity would serialize back as null
    // (the repo-wide non-finite convention) — a silent round-trip
    // change, so it is a parse error instead. (Underflow to 0.0 is
    // harmless and stays accepted.)
    if (!std::isfinite(v)) fail_at("number out of range", start);
    return Json::number(v);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t at_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::boolean(bool v)
{
  Json j;
  j.type_ = Type::boolean;
  j.bool_ = v;
  return j;
}

Json Json::number(double v)
{
  Json j;
  j.type_ = Type::number;
  j.num_ = v;
  j.text_ = format_double(v);
  return j;
}

Json Json::number(std::uint64_t v)
{
  Json j;
  j.type_ = Type::number;
  j.num_ = static_cast<double>(v);
  j.text_ = std::to_string(v);
  return j;
}

Json Json::number(std::int64_t v)
{
  Json j;
  j.type_ = Type::number;
  j.num_ = static_cast<double>(v);
  j.text_ = std::to_string(v);
  return j;
}

Json Json::str(std::string v)
{
  Json j;
  j.type_ = Type::string;
  j.text_ = std::move(v);
  return j;
}

Json Json::array()
{
  Json j;
  j.type_ = Type::array;
  return j;
}

Json Json::object()
{
  Json j;
  j.type_ = Type::object;
  return j;
}

bool Json::as_bool() const
{
  if (type_ != Type::boolean) fail("expected a boolean");
  return bool_;
}

double Json::as_double() const
{
  if (type_ != Type::number) fail("expected a number");
  return num_;
}

std::uint64_t Json::as_u64() const
{
  if (type_ != Type::number) fail("expected a number");
  // Integer token only: no sign, no fraction, no exponent.
  if (text_.empty() || text_.find_first_not_of("0123456789") != std::string::npos) {
    fail("expected an unsigned integer, got '" + text_ + "'");
  }
  errno = 0;
  const std::uint64_t v = std::strtoull(text_.c_str(), nullptr, 10);
  if (errno == ERANGE) fail("integer out of 64-bit range: '" + text_ + "'");
  return v;
}

std::int64_t Json::as_i64() const
{
  if (type_ != Type::number) fail("expected a number");
  std::string digits = text_;
  const bool negative = !digits.empty() && digits.front() == '-';
  if (negative) digits.erase(digits.begin());
  if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
    fail("expected an integer, got '" + text_ + "'");
  }
  errno = 0;
  const std::int64_t v = std::strtoll(text_.c_str(), nullptr, 10);
  if (errno == ERANGE) fail("integer out of 64-bit range: '" + text_ + "'");
  return v;
}

const std::string& Json::as_string() const
{
  if (type_ != Type::string) fail("expected a string");
  return text_;
}

const std::vector<Json>& Json::items() const
{
  if (type_ != Type::array) fail("expected an array");
  return items_;
}

Json& Json::push(Json v)
{
  if (type_ != Type::array) fail("expected an array");
  items_.push_back(std::move(v));
  return items_.back();
}

const std::vector<std::pair<std::string, Json>>& Json::members() const
{
  if (type_ != Type::object) fail("expected an object");
  return members_;
}

const Json* Json::find(std::string_view key) const
{
  if (type_ != Type::object) fail("expected an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json v)
{
  if (type_ != Type::object) fail("expected an object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

void Json::write(std::string& out, int indent, int depth) const
{
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::null_v: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::number: out += text_.empty() ? format_double(num_) : text_; break;
    case Type::string: escape_into(out, text_); break;
    case Type::array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::object: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        escape_into(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const
{
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Json::pretty(int indent) const
{
  std::string out;
  write(out, indent > 0 ? indent : 2, 0);
  out += '\n';
  return out;
}

Json Json::parse(std::string_view text)
{
  return Parser{text}.parse_document();
}

}  // namespace mes::api
