// Distributed mutual exclusion agents over the cluster fabric.
//
// One LockAgent per (node, lock): a coroutine message pump (`serve`,
// spawned as a *daemon* root — it parks on recv forever by design) plus
// blocking acquire()/release() entry points called by the channel's
// trojan/spy coroutines on that node. Three classic protocols:
//
//  * simple broadcast — ask everyone; a holder defers its OK until
//    release (SNIPPETS.md §1-2 transliterated onto the fabric);
//  * Ricart–Agrawala — Lamport-clock priority breaks request races, a
//    lower-priority wanter defers its OK;
//  * Maekawa — permission from a quorum (grid row∪column for perfect
//    squares, a majority window otherwise) with INQUIRE/RELINQUISH
//    deadlock avoidance.
//
// Loss resilience is uniform: requests retransmit on an RTT-derived
// timeout, receivers re-answer duplicates idempotently (a request id
// per attempt-independent acquire dedups replies), and a newer request
// from the same node supersedes any stale state it left behind — so a
// lost REPLY, GRANT or RELEASE heals on the next retransmission instead
// of wedging the lock. acquire() returns false once the bounded retry
// budget is spent; the ARQ layer above treats the symbol as noise.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fabric.h"
#include "os/kernel.h"
#include "sim/task.h"
#include "sim/wait_queue.h"
#include "util/time.h"

namespace mes::dme {

enum class Protocol { broadcast, ricart_agrawala, maekawa };

const char* to_string(Protocol p);

struct AgentOptions {
  // Per-attempt wait before retransmitting to unheard peers; zero
  // derives ~5x the fabric's one-way link base (a round trip plus
  // jitter-tail headroom).
  Duration retry_timeout = Duration::zero();
  std::size_t max_attempts = 8;
  // Link-layer repetition: copies per post. Zero = auto (2 on a lossy
  // fabric — squaring the drop probability keeps retransmission tails
  // rare enough for FEC+ARQ to absorb — else 1).
  std::size_t send_copies = 0;
};

// Maekawa voting set for node `id` in an `n`-node cluster: grid
// row∪column when n is a perfect square, else the majority window
// {id .. id + n/2} mod n. Always includes `id` itself. Exposed for
// tests (any two quorums must intersect).
std::vector<net::NodeId> maekawa_quorum(std::size_t n, net::NodeId id);

class LockAgent {
 public:
  LockAgent(os::Kernel& kernel, net::Fabric& fabric, net::NodeId node,
            std::uint32_t port, AgentOptions opt);
  virtual ~LockAgent() = default;

  LockAgent(const LockAgent&) = delete;
  LockAgent& operator=(const LockAgent&) = delete;

  net::NodeId node() const { return node_; }
  std::uint64_t messages_handled() const { return handled_; }

  // The message pump. Spawn via Simulator::spawn_daemon — it never
  // finishes, and must not count as a deadlocked root at drain.
  sim::Proc serve();

  // Blocking acquire for `proc` (a process on this agent's kernel).
  // False when the bounded retransmission budget ran out.
  [[nodiscard]] virtual sim::Task<bool> acquire(os::Process& proc) = 0;
  // Hands the lock back (answers deferred peers / releases the quorum).
  // False when a release handshake went unacknowledged within the
  // budget — later acquires self-heal the stragglers.
  [[nodiscard]] virtual sim::Task<bool> release(os::Process& proc) = 0;

 protected:
  virtual void handle(net::Message msg) = 0;

  // Sends with repetition; returns copies actually delivered (possibly
  // zero — the retry loop recovers).
  std::size_t post(std::uint32_t kind, net::NodeId dst, std::uint64_t a,
                   std::uint64_t b = 0);
  std::uint64_t tick() { return ++clock_; }
  Duration retry_timeout() const { return opt_.retry_timeout; }
  std::size_t max_attempts() const { return opt_.max_attempts; }
  std::size_t cluster_size() const { return fabric_.size(); }
  static std::uint64_t bit(net::NodeId id) { return 1ULL << id; }
  // Lexicographic (lamport clock, node id) — a total order on requests.
  static bool priority_less(std::uint64_t clk_a, net::NodeId a,
                            std::uint64_t clk_b, net::NodeId b)
  {
    if (clk_a != clk_b) return clk_a < clk_b;
    return a < b;
  }

  os::Kernel& kernel_;
  os::Process& self_;  // daemon identity for serve-side op charges
  net::Fabric& fabric_;
  net::Endpoint& endpoint_;
  net::NodeId node_;
  std::uint32_t port_;
  AgentOptions opt_;
  std::uint64_t clock_ = 0;
  std::uint64_t handled_ = 0;
};

// Shared machinery of the two reply-counting protocols (broadcast and
// Ricart–Agrawala): broadcast the request, collect one OK per peer,
// defer OKs per the protocol's rule, flush deferrals on release.
class ReplyAgent : public LockAgent {
 public:
  using LockAgent::LockAgent;

  [[nodiscard]] sim::Task<bool> acquire(os::Process& proc) override;
  [[nodiscard]] sim::Task<bool> release(os::Process& proc) override;

 protected:
  enum class State : std::uint8_t { idle, wanting, held };

  void handle(net::Message msg) override;
  // True when the incoming request must wait for our release.
  virtual bool defer_request(net::NodeId src, std::uint64_t their_clock) = 0;

  State state() const { return state_; }
  std::uint64_t req_clock() const { return req_clock_; }

 private:
  void send_requests();
  void flush_deferred();
  void note_deferred(net::NodeId node, std::uint64_t req_id);
  std::uint64_t all_mask() const
  {
    return (cluster_size() >= 64) ? ~0ULL : (1ULL << cluster_size()) - 1;
  }

  State state_ = State::idle;
  std::uint64_t req_id_ = 0;
  std::uint64_t req_clock_ = 0;
  std::uint64_t acks_ = 0;  // peers heard for the current request
  struct Deferred {
    net::NodeId node;
    std::uint64_t req_id;
  };
  std::vector<Deferred> deferred_;
  sim::WaitQueue gate_;
};

class BroadcastAgent final : public ReplyAgent {
 public:
  using ReplyAgent::ReplyAgent;

 protected:
  // Simple broadcast: only an actual holder withholds its OK.
  bool defer_request(net::NodeId src, std::uint64_t their_clock) override;
};

class RicartAgrawalaAgent final : public ReplyAgent {
 public:
  using ReplyAgent::ReplyAgent;

 protected:
  // RA: a holder defers, and so does a wanter whose own request has
  // priority (earlier clock, id tie-break).
  bool defer_request(net::NodeId src, std::uint64_t their_clock) override;
};

class MaekawaAgent final : public LockAgent {
 public:
  MaekawaAgent(os::Kernel& kernel, net::Fabric& fabric, net::NodeId node,
               std::uint32_t port, AgentOptions opt);

  [[nodiscard]] sim::Task<bool> acquire(os::Process& proc) override;
  [[nodiscard]] sim::Task<bool> release(os::Process& proc) override;

  const std::vector<net::NodeId>& quorum() const { return quorum_; }

 protected:
  void handle(net::Message msg) override;

 private:
  enum class State : std::uint8_t { idle, wanting, held };

  void send_requests();
  void grant_next();
  void upsert_waiting(net::NodeId node, std::uint64_t rid,
                      std::uint64_t clk);

  // Requester half.
  State state_ = State::idle;
  std::uint64_t req_id_ = 0;
  std::uint64_t req_clock_ = 0;
  std::uint64_t grants_ = 0;  // quorum members heard (absolute node bits)
  std::vector<net::NodeId> quorum_;
  std::uint64_t quorum_mask_ = 0;
  bool releasing_ = false;
  std::uint64_t release_acks_ = 0;
  sim::WaitQueue gate_;

  // Member (voter) half: at most one outstanding grant.
  bool has_grant_ = false;
  net::NodeId granted_to_ = 0;
  std::uint64_t granted_rid_ = 0;
  std::uint64_t granted_clock_ = 0;
  bool inquired_ = false;
  struct Waiting {
    net::NodeId node;
    std::uint64_t rid;
    std::uint64_t clk;
  };
  std::vector<Waiting> waiting_;
};

std::unique_ptr<LockAgent> make_agent(Protocol p, os::Kernel& kernel,
                                      net::Fabric& fabric, net::NodeId node,
                                      std::uint32_t port,
                                      AgentOptions opt = {});

}  // namespace mes::dme
