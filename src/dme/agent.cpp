#include "dme/agent.h"

#include <stdexcept>
#include <string>

namespace mes::dme {

namespace {

// Wire opcodes (Message::kind).
enum Kind : std::uint32_t {
  kRequest = 1,  // a = req id, b = request's priority clock
  kReply,        // a = echoed req id          (broadcast / RA)
  kGrant,        // a = echoed req id          (Maekawa)
  kInquire,      // a = the granted req id     (Maekawa)
  kRelinquish,   // a = relinquished req id    (Maekawa)
  kRelease,      // a = released req id        (Maekawa)
  kReleaseAck,   // a = echoed released req id (Maekawa)
};

}  // namespace

const char* to_string(Protocol p)
{
  switch (p) {
    case Protocol::broadcast: return "broadcast";
    case Protocol::ricart_agrawala: return "ricart-agrawala";
    case Protocol::maekawa: return "maekawa";
  }
  return "?";
}

std::vector<net::NodeId> maekawa_quorum(std::size_t n, net::NodeId id)
{
  std::vector<net::NodeId> q;
  std::size_t root = 1;
  while ((root + 1) * (root + 1) <= n) ++root;
  if (root >= 2 && root * root == n) {
    // Maekawa's grid: the requester's row plus its column, quorum size
    // 2*sqrt(n)-1; any two row∪column sets intersect.
    const std::size_t row = id / root;
    const std::size_t col = id % root;
    for (std::size_t c = 0; c < root; ++c) {
      q.push_back(static_cast<net::NodeId>(row * root + c));
    }
    for (std::size_t r = 0; r < root; ++r) {
      if (r == row) continue;
      q.push_back(static_cast<net::NodeId>(r * root + col));
    }
  } else {
    // Majority window {id .. id + n/2} mod n: size floor(n/2)+1, so any
    // two windows overlap in at least one node.
    const std::size_t span = n / 2 + 1;
    for (std::size_t k = 0; k < span; ++k) {
      q.push_back(static_cast<net::NodeId>((id + k) % n));
    }
  }
  return q;
}

LockAgent::LockAgent(os::Kernel& kernel, net::Fabric& fabric,
                     net::NodeId node, std::uint32_t port, AgentOptions opt)
    : kernel_{kernel},
      self_{kernel.create_process("dme" + std::to_string(port) + "_n" +
                                  std::to_string(node))},
      fabric_{fabric},
      endpoint_{fabric.endpoint(node, port)},
      node_{node},
      port_{port},
      opt_{opt}
{
  if (fabric.size() > 64) {
    throw std::invalid_argument{"dme::LockAgent: peer bitmasks cap the "
                                "cluster at 64 nodes"};
  }
  if (opt_.retry_timeout <= Duration::zero()) {
    // A request round trip plus headroom for the lognormal jitter tail.
    opt_.retry_timeout = fabric.params().link_base * 5.0;
  }
  if (opt_.send_copies == 0) {
    opt_.send_copies = fabric.params().loss > 0.0 ? 2 : 1;
  }
}

sim::Proc LockAgent::serve()
{
  for (;;) {
    std::optional<net::Message> msg = co_await endpoint_.recv();
    if (!msg.has_value()) continue;  // infinite wait never times out
    co_await kernel_.charge_op(self_, os::OpKind::net_recv);
    ++handled_;
    // Lamport merge: receipt is a local event after the remote send.
    if (msg->c > clock_) clock_ = msg->c;
    ++clock_;
    handle(*msg);
  }
}

std::size_t LockAgent::post(std::uint32_t kind, net::NodeId dst,
                            std::uint64_t a, std::uint64_t b)
{
  net::Message msg;
  msg.src = node_;
  msg.dst = dst;
  msg.port = port_;
  msg.kind = kind;
  msg.a = a;
  msg.b = b;
  msg.c = tick();
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < opt_.send_copies; ++i) {
    const bool sent = fabric_.send(msg);
    if (sent) ++delivered;
  }
  return delivered;
}

// --- reply-counting protocols (broadcast, Ricart–Agrawala) -------------

sim::Task<bool> ReplyAgent::acquire(os::Process& proc)
{
  co_await kernel_.charge_op(proc, os::OpKind::net_send);
  state_ = State::wanting;
  ++req_id_;
  req_clock_ = tick();
  acks_ = bit(node_);  // our own permission is implicit
  send_requests();
  for (std::size_t attempt = 0; attempt < max_attempts(); ++attempt) {
    if (state_ == State::held) break;
    const sim::WaitOutcome outcome =
        co_await gate_.wait(kernel_.sim(), retry_timeout());
    if (state_ == State::held) break;
    if (outcome == sim::WaitOutcome::timed_out) send_requests();
  }
  if (state_ != State::held) {
    // Budget spent: stop contending. Anyone we deferred meanwhile gets
    // their OK now; stragglers answering the stale req id are ignored.
    state_ = State::idle;
    flush_deferred();
    co_return false;
  }
  co_await kernel_.charge_op(proc, os::OpKind::net_recv);
  co_return true;
}

sim::Task<bool> ReplyAgent::release(os::Process& proc)
{
  co_await kernel_.charge_op(proc, os::OpKind::net_send);
  state_ = State::idle;
  flush_deferred();
  co_return true;
}

void ReplyAgent::handle(net::Message msg)
{
  switch (msg.kind) {
    case kRequest: {
      if (defer_request(msg.src, msg.b)) {
        note_deferred(msg.src, msg.a);
      } else {
        post(kReply, msg.src, msg.a);
      }
      break;
    }
    case kReply: {
      // Replies to an abandoned or finished request carry a stale id
      // and fall through harmlessly.
      if (state_ == State::wanting && msg.a == req_id_) {
        acks_ |= bit(msg.src);
        if (acks_ == all_mask()) {
          state_ = State::held;
          gate_.notify_one(kernel_.sim());
        }
      }
      break;
    }
    default:
      break;
  }
}

void ReplyAgent::send_requests()
{
  // (Re)ask every peer we have not heard from; receivers re-answer
  // duplicates idempotently, so over-asking after a lost reply is safe.
  for (net::NodeId j = 0; j < cluster_size(); ++j) {
    if (acks_ & bit(j)) continue;
    post(kRequest, j, req_id_, req_clock_);
  }
}

void ReplyAgent::flush_deferred()
{
  for (const Deferred& d : deferred_) {
    post(kReply, d.node, d.req_id);
  }
  deferred_.clear();
}

void ReplyAgent::note_deferred(net::NodeId node, std::uint64_t req_id)
{
  for (Deferred& d : deferred_) {
    if (d.node != node) continue;
    // A newer request from the same node supersedes the parked one.
    if (req_id > d.req_id) d.req_id = req_id;
    return;
  }
  deferred_.push_back(Deferred{node, req_id});
}

bool BroadcastAgent::defer_request(net::NodeId /*src*/,
                                   std::uint64_t /*their_clock*/)
{
  return state() == State::held;
}

bool RicartAgrawalaAgent::defer_request(net::NodeId src,
                                        std::uint64_t their_clock)
{
  if (state() == State::held) return true;
  return state() == State::wanting &&
         priority_less(req_clock(), node_, their_clock, src);
}

// --- Maekawa ------------------------------------------------------------

MaekawaAgent::MaekawaAgent(os::Kernel& kernel, net::Fabric& fabric,
                           net::NodeId node, std::uint32_t port,
                           AgentOptions opt)
    : LockAgent{kernel, fabric, node, port, opt},
      quorum_{maekawa_quorum(fabric.size(), node)}
{
  for (const net::NodeId j : quorum_) quorum_mask_ |= bit(j);
}

sim::Task<bool> MaekawaAgent::acquire(os::Process& proc)
{
  co_await kernel_.charge_op(proc, os::OpKind::net_send);
  state_ = State::wanting;
  ++req_id_;
  req_clock_ = tick();
  grants_ = 0;
  send_requests();
  for (std::size_t attempt = 0; attempt < max_attempts(); ++attempt) {
    if (state_ == State::held) break;
    const sim::WaitOutcome outcome =
        co_await gate_.wait(kernel_.sim(), retry_timeout());
    if (state_ == State::held) break;
    if (outcome == sim::WaitOutcome::timed_out) send_requests();
  }
  if (state_ != State::held) {
    // Cancel best-effort: members that did grant free their vote; a
    // member that misses this heals when our next, higher request id
    // supersedes the stale grant.
    state_ = State::idle;
    for (const net::NodeId j : quorum_) {
      post(kRelease, j, req_id_);
    }
    co_return false;
  }
  co_await kernel_.charge_op(proc, os::OpKind::net_recv);
  co_return true;
}

sim::Task<bool> MaekawaAgent::release(os::Process& proc)
{
  co_await kernel_.charge_op(proc, os::OpKind::net_send);
  state_ = State::idle;
  releasing_ = true;
  release_acks_ = 0;
  for (std::size_t attempt = 0; attempt < max_attempts(); ++attempt) {
    for (const net::NodeId j : quorum_) {
      if (release_acks_ & bit(j)) continue;
      post(kRelease, j, req_id_);
    }
    const sim::WaitOutcome outcome =
        co_await gate_.wait(kernel_.sim(), retry_timeout());
    (void)outcome;  // acks either arrived or the next round re-sends
    if ((release_acks_ & quorum_mask_) == quorum_mask_) break;
  }
  const bool all_acked = (release_acks_ & quorum_mask_) == quorum_mask_;
  releasing_ = false;
  co_return all_acked;
}

void MaekawaAgent::handle(net::Message msg)
{
  switch (msg.kind) {
    case kRequest: {
      const net::NodeId j = msg.src;
      const std::uint64_t rid = msg.a;
      const std::uint64_t clk = msg.b;
      if (has_grant_ && granted_to_ == j) {
        // Duplicate (lost GRANT) or a newer request superseding the
        // stale one this node still holds a vote for.
        if (rid >= granted_rid_) {
          granted_rid_ = rid;
          granted_clock_ = clk;
          post(kGrant, j, rid);
        }
        break;
      }
      if (!has_grant_) {
        has_grant_ = true;
        granted_to_ = j;
        granted_rid_ = rid;
        granted_clock_ = clk;
        inquired_ = false;
        post(kGrant, j, rid);
        break;
      }
      upsert_waiting(j, rid, clk);
      // Deadlock avoidance: if the newcomer outranks the current
      // grantee, ask for the vote back (once per grant).
      if (!inquired_ &&
          priority_less(clk, j, granted_clock_, granted_to_)) {
        inquired_ = true;
        post(kInquire, granted_to_, granted_rid_);
      }
      break;
    }
    case kGrant: {
      if (state_ == State::wanting && msg.a == req_id_ &&
          (quorum_mask_ & bit(msg.src))) {
        grants_ |= bit(msg.src);
        if ((grants_ & quorum_mask_) == quorum_mask_) {
          state_ = State::held;
          gate_.notify_one(kernel_.sim());
        }
      }
      break;
    }
    case kInquire: {
      // Yield the member's vote only while not yet fully acquired.
      if (state_ == State::wanting && msg.a == req_id_ &&
          (grants_ & bit(msg.src))) {
        grants_ &= ~bit(msg.src);
        post(kRelinquish, msg.src, req_id_);
      }
      break;
    }
    case kRelinquish: {
      if (has_grant_ && granted_to_ == msg.src && granted_rid_ == msg.a) {
        upsert_waiting(granted_to_, granted_rid_, granted_clock_);
        has_grant_ = false;
        inquired_ = false;
        grant_next();
      }
      break;
    }
    case kRelease: {
      if (has_grant_ && granted_to_ == msg.src && msg.a >= granted_rid_) {
        has_grant_ = false;
        inquired_ = false;
        grant_next();
      }
      post(kReleaseAck, msg.src, msg.a);  // ack duplicates too
      break;
    }
    case kReleaseAck: {
      if (releasing_ && msg.a == req_id_) {
        release_acks_ |= bit(msg.src);
        if ((release_acks_ & quorum_mask_) == quorum_mask_) {
          gate_.notify_one(kernel_.sim());
        }
      }
      break;
    }
    default:
      break;
  }
}

void MaekawaAgent::send_requests()
{
  for (const net::NodeId j : quorum_) {
    if (grants_ & bit(j)) continue;
    post(kRequest, j, req_id_, req_clock_);
  }
}

void MaekawaAgent::grant_next()
{
  if (waiting_.empty()) return;
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting_.size(); ++i) {
    if (priority_less(waiting_[i].clk, waiting_[i].node,
                      waiting_[best].clk, waiting_[best].node)) {
      best = i;
    }
  }
  const Waiting w = waiting_[best];
  waiting_.erase(waiting_.begin() +
                 static_cast<std::ptrdiff_t>(best));
  has_grant_ = true;
  granted_to_ = w.node;
  granted_rid_ = w.rid;
  granted_clock_ = w.clk;
  inquired_ = false;
  post(kGrant, w.node, w.rid);
}

void MaekawaAgent::upsert_waiting(net::NodeId node, std::uint64_t rid,
                                  std::uint64_t clk)
{
  for (Waiting& w : waiting_) {
    if (w.node != node) continue;
    if (rid > w.rid) {
      w.rid = rid;
      w.clk = clk;
    }
    return;
  }
  waiting_.push_back(Waiting{node, rid, clk});
}

std::unique_ptr<LockAgent> make_agent(Protocol p, os::Kernel& kernel,
                                      net::Fabric& fabric, net::NodeId node,
                                      std::uint32_t port, AgentOptions opt)
{
  switch (p) {
    case Protocol::broadcast:
      return std::make_unique<BroadcastAgent>(kernel, fabric, node, port,
                                              opt);
    case Protocol::ricart_agrawala:
      return std::make_unique<RicartAgrawalaAgent>(kernel, fabric, node,
                                                   port, opt);
    case Protocol::maekawa:
      return std::make_unique<MaekawaAgent>(kernel, fabric, node, port, opt);
  }
  throw std::invalid_argument{"unknown DME protocol"};
}

}  // namespace mes::dme
