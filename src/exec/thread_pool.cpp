#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace mes::exec {

std::size_t ThreadPool::hardware_jobs()
{
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads)
{
  const std::size_t n = threads == 0 ? hardware_jobs() : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool()
{
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job)
{
  {
    std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle()
{
  std::unique_lock<std::mutex> lock{mu_};
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop()
{
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock{mu_};
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock{mu_};
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn)
{
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::once_flag error_once;
  std::atomic<std::size_t> next{0};
  ThreadPool pool{std::min(jobs, n)};
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::call_once(error_once,
                         [&] { first_error = std::current_exception(); });
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mes::exec
