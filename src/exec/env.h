// ExperimentEnv: one built simulator stack, reusable across callers.
//
// Owns the construction pipeline every experiment shares — simulator →
// noise profile → kernel → visibility topology → processes → channel —
// so that single transmissions (core/runner), multi-pair batches
// (analysis/sweep) and campaign cells (exec/campaign) all run the same
// stack instead of three divergent copies. An env can host any number
// of Trojan/Spy pairs inside one simulation; each pair gets its own
// channel instance and resource tag.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/channel.h"
#include "core/runner.h"
#include "net/fabric.h"
#include "os/kernel.h"
#include "sim/simulator.h"

namespace mes::exec {

// Structural invariants shared by every driver; "" when the config can
// run at all (the per-topology checks happen later, in Channel::setup).
std::string validate_config(const ExperimentConfig& cfg);

// The a-priori classifier a Spy starts from before any preamble
// calibration. Pure function of the config — no stack required.
codec::LatencyClassifier initial_classifier_for(const ExperimentConfig& cfg);

// Per-pair override of the env config's mechanism + timing. Lets one
// simulation host heterogeneous pairs (the bonded link stripes across
// e.g. 4x event + 2x flock); the default-constructed spec reproduces
// the env config exactly.
struct PairSpec {
  std::optional<Mechanism> mechanism;
  std::optional<TimingConfig> timing;
};

class ExperimentEnv {
 public:
  explicit ExperimentEnv(const ExperimentConfig& cfg);

  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;

  // One Trojan/Spy pair with its channel and codec context, ready to
  // transmit. `error` carries Channel::setup's topology verdict (the
  // Table VI ✗ entries) when the pair cannot work.
  struct Endpoint {
    Mechanism mechanism = Mechanism::event;
    std::unique_ptr<core::Channel> channel;
    std::unique_ptr<core::RunContext> ctx;
    core::RxResult rx;
    std::string error;
  };

  // Builds a process pair + channel. The first pair uses the config's
  // own tag and the canonical "trojan"/"spy" process names (so a
  // single-pair env is bit-identical to the historical monolithic
  // runner); later pairs get indexed names and derived tags. The spec
  // overload swaps in a different mechanism and/or timing for this pair
  // only — everything else (scenario, noise, seed) stays the env's.
  Endpoint& add_pair();
  Endpoint& add_pair(const PairSpec& spec);

  // Reverse-signaling hook for the ARQ layer: a channel over the SAME
  // two processes as `forward`, with the roles swapped — the forward
  // Spy drives the constraint/signal side and the forward Trojan
  // measures. Gets its own resource (tag suffixed "r") and, for
  // contention channels, its own rendezvous barrier. `error` carries the
  // topology verdict exactly like add_pair (reverse visibility is
  // symmetric in every modeled scenario, but the channel re-checks).
  Endpoint& add_reverse_pair(const Endpoint& forward);

  // Re-points an endpoint at different symbol durations + classifier
  // (the calibration outcome) without rebuilding the stack. Affects
  // subsequent spawn_transmission calls on that endpoint.
  void set_link_tuning(Endpoint& ep, const TimingConfig& timing,
                       const codec::LatencyClassifier& classifier);

  // Spawns both protocol roles of `ep` for `symbols` on the simulator.
  void spawn_transmission(Endpoint& ep,
                          const std::vector<std::size_t>& symbols);

  // Drains the event queue (bounded by the config's max_events).
  sim::RunResult run();

  const ExperimentConfig& config() const { return cfg_; }
  const ScenarioProfile& profile() const { return profile_; }
  sim::Simulator& simulator() { return *simulator_; }
  os::Kernel& kernel() { return *kernel_; }

  // Cluster mode (profiles with cluster.enabled()): the fabric joining
  // the node kernels, or nullptr on single-host scenarios.
  net::Fabric* fabric() { return fabric_.get(); }
  // Node `n`'s kernel; node 0 is the primary `kernel_` (so single-host
  // callers and cluster node 0 see the same object).
  os::Kernel& kernel_of(net::NodeId n);

  // Symbol pacing for this config's channel class.
  codec::SymbolSchedule schedule() const;
  // The a-priori classifier a Spy starts from before any preamble
  // calibration.
  codec::LatencyClassifier initial_classifier() const;

 private:
  codec::SymbolSchedule schedule_for(Mechanism m,
                                     const TimingConfig& timing) const;
  // Shared tail of add_pair/add_reverse_pair: rendezvous barrier, spy
  // guard, channel construction + setup.
  void finish_endpoint(Endpoint& ep);

  ExperimentConfig cfg_;
  ScenarioProfile profile_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<os::Kernel> kernel_;
  // Cluster mode: nodes 1..N-1 get their own kernels (decorrelated
  // noise streams) joined to node 0 by the fabric. Declared after the
  // simulator so parked fabric waiters outlive their queues.
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<std::unique_ptr<os::Kernel>> node_kernels_;
  std::uint32_t next_dme_port_ = 1;  // one lock (port) per DME endpoint
  std::deque<Endpoint> endpoints_;  // deque: stable refs as pairs grow
};

}  // namespace mes::exec
