// Sharded, streaming, resumable campaign execution.
//
// The campaign engine's in-memory path (run -> aggregate -> write_csv)
// holds every CellResult until the end; at the paper's production scale
// (millions of grid cells) that is the memory bottleneck, not the
// simulator. This layer keeps campaigns O(points):
//
//   * ShardSpec     — deterministic row-major partition of the plan's
//                     flat cell index across N independent processes;
//   * cell records  — a JSONL stream of finished cells at full
//                     precision, doubling as the shard output format
//                     and the checkpoint manifest;
//   * replay        — re-derives cell metadata from the plan (expand()
//                     is deterministic) and re-folds the records in
//                     flat order through the standard emitters, so a
//                     shard merge or a checkpoint resume emits CSV/JSON
//                     byte-identical to the single uninterrupted run.
//
// Byte-identity leans on two facts: per-cell seeds are splitmix64 mixes
// of the base seed and the cell coordinates (exec/seed.h), so WHO runs
// a cell never changes WHAT it computes; and records store doubles in
// shortest-round-trip form and durations as exact integer nanoseconds,
// so a report survives the file hop bit for bit. Floating-point means
// are NOT merged from per-shard partial sums (addition is order
// sensitive) — replay re-folds every cell in flat order instead.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "exec/campaign.h"

namespace mes::exec {

// Deterministic partition of the flat (row-major) cell index: shard i
// of N owns every cell with flat % N == i. Round-robin keeps each
// shard's work mix representative of the whole grid — a block split
// would hand one process all the slow adaptive cells of an axis run.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool active() const { return count > 1; }
  bool owns(std::size_t flat) const
  {
    return count <= 1 || flat % count == index;
  }

  std::string validate() const;  // "" = ok
};

// The shard's slice of the expanded plan, plan order preserved.
std::vector<CampaignCell> shard_cells(std::vector<CampaignCell> cells,
                                      const ShardSpec& shard);

// --- cell records -------------------------------------------------------
//
// One JSON object per finished cell: the flat index plus every report
// field the emitters and aggregates read. Cell metadata (label, config,
// seed) is deliberately NOT stored — expand(plan) re-derives it — so a
// record stays small and a record file is useless without its plan,
// which is exactly the coupling a resumable campaign wants. Non-finite
// metrics serialize as the strings "nan"/"inf"/"-inf" (the JSON layer
// has no non-finite literals).

struct CellRecord {
  std::size_t flat = 0;
  ChannelReport report;
};

// One compact JSON line (no trailing newline).
std::string cell_record_line(const CellResult& cell);

// Strict parse; throws std::invalid_argument on any malformed field.
CellRecord parse_cell_record(std::string_view line);

// Reads a whole record stream (shard output or checkpoint). A trailing
// partial line — a run killed mid-write — is silently dropped; malformed
// records anywhere else throw. Duplicate flat indices keep the first
// occurrence (a resumed run never re-runs a recorded cell, so later
// duplicates can only be identical).
std::map<std::size_t, ChannelReport> read_records(std::istream& in);

// Drops cells whose flat index already has a record (checkpoint
// resume); plan order is preserved.
std::vector<CampaignCell> skip_completed(
    std::vector<CampaignCell> cells,
    const std::map<std::size_t, ChannelReport>& done);

// --- replay (merge / resume) ---------------------------------------------

// Re-plays recorded reports through the standard emission path: every
// plan cell the shard owns is re-derived in flat order, paired with its
// record, handed to `sink`, and folded into the returned summary. A
// merge of N complete shard record streams (shard = the whole grid)
// therefore emits byte-identical CSV/JSON to the single-process run.
// Throws std::invalid_argument when an owned cell has no record.
// Consumes `reports` as it walks, so peak memory is the record map,
// never records + results.
CampaignSummary replay_records(
    const ExperimentPlan& plan, const ShardSpec& shard,
    std::map<std::size_t, ChannelReport> reports,
    const std::function<void(const CellResult&)>& sink);

}  // namespace mes::exec
