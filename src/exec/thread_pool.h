// Fixed-size worker pool shared by every parallel experiment driver.
//
// One pool instance serves a whole campaign: cells queue up and drain
// across the workers, each running a private simulator stack, so runs
// never share mutable state and parallel results are bit-identical to
// serial ones.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mes::exec {

class ThreadPool {
 public:
  // threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a job. Jobs must not throw; wrap anything that can (see
  // parallel_for) so a worker never unwinds through the loop.
  void submit(std::function<void()> job);

  // Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  static std::size_t hardware_jobs();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Runs fn(0) .. fn(n-1) across `jobs` workers and returns when all are
// done. jobs <= 1 runs inline on the calling thread — the serial
// reference the determinism tests compare against. The first exception
// thrown by any index is rethrown here after the batch drains.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mes::exec
