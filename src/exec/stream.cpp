#include "exec/stream.h"

#include <cmath>
#include <istream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "api/json.h"
#include "api/spec.h"

namespace mes::exec {

namespace {

using api::Json;

// Metrics can be NaN/inf (a zero-elapsed cell divides by zero). The
// JSON model has no non-finite literals and the repo's emission
// convention (null) is lossy, so records use tagged strings instead.
Json metric_json(double v)
{
  if (std::isfinite(v)) return Json::number(v);
  if (std::isnan(v)) return Json::str("nan");
  return Json::str(v > 0 ? "inf" : "-inf");
}

double metric_from(const Json& j, const char* what)
{
  if (j.is_number()) return j.as_double();
  if (j.is_string()) {
    const std::string& s = j.as_string();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
  }
  throw std::invalid_argument{std::string{"cell record: bad metric '"} +
                              what + "'"};
}

const Json& field(const Json& obj, const char* key)
{
  const Json* j = obj.find(key);
  if (j == nullptr) {
    throw std::invalid_argument{std::string{"cell record: missing '"} + key +
                                "'"};
  }
  return *j;
}

Json timing_json(const TimingConfig& t)
{
  Json obj = Json::object();
  obj.set("t1_ns", Json::number(t.t1.count_ns()));
  obj.set("t0_ns", Json::number(t.t0.count_ns()));
  obj.set("interval_ns", Json::number(t.interval.count_ns()));
  obj.set("symbol_bits", Json::number(static_cast<std::uint64_t>(
                             t.symbol_bits)));
  return obj;
}

TimingConfig timing_from(const Json& obj)
{
  TimingConfig t;
  t.t1 = Duration::ns(field(obj, "t1_ns").as_i64());
  t.t0 = Duration::ns(field(obj, "t0_ns").as_i64());
  t.interval = Duration::ns(field(obj, "interval_ns").as_i64());
  t.symbol_bits = static_cast<std::size_t>(field(obj, "symbol_bits").as_u64());
  return t;
}

Json proto_json(const ChannelReport::ProtocolStats& p)
{
  Json obj = Json::object();
  obj.set("mode", Json::str(to_string(p.mode)));
  obj.set("frames", Json::number(static_cast<std::uint64_t>(p.frames)));
  obj.set("frame_sends",
          Json::number(static_cast<std::uint64_t>(p.frame_sends)));
  obj.set("retransmits",
          Json::number(static_cast<std::uint64_t>(p.retransmits)));
  obj.set("calibration_margin", metric_json(p.calibration_margin));
  obj.set("calibration_ns", Json::number(p.calibration_time.count_ns()));
  obj.set("calibration_probes",
          Json::number(static_cast<std::uint64_t>(p.calibration_probes)));
  obj.set("calibration_source", Json::str(to_string(p.calibration_source)));
  obj.set("pairs", Json::number(static_cast<std::uint64_t>(p.pairs)));
  obj.set("pairs_requested",
          Json::number(static_cast<std::uint64_t>(p.pairs_requested)));
  obj.set("rebalances",
          Json::number(static_cast<std::uint64_t>(p.rebalances)));
  obj.set("drift_events",
          Json::number(static_cast<std::uint64_t>(p.drift_events)));
  obj.set("recalibrations",
          Json::number(static_cast<std::uint64_t>(p.recalibrations)));
  obj.set("recovered_goodput_bps", metric_json(p.recovered_goodput_bps));
  obj.set("recovery_spent_ns", Json::number(p.recovery_spent.count_ns()));
  Json phases = Json::array();
  for (const auto& ph : p.phases) {
    Json entry = Json::object();
    entry.set("phase", Json::number(static_cast<std::uint64_t>(ph.phase)));
    entry.set("frames", Json::number(static_cast<std::uint64_t>(ph.frames)));
    entry.set("retransmits",
              Json::number(static_cast<std::uint64_t>(ph.retransmits)));
    entry.set("elapsed_ns", Json::number(ph.elapsed.count_ns()));
    entry.set("goodput_bps", metric_json(ph.goodput_bps));
    phases.push(std::move(entry));
  }
  obj.set("phases", std::move(phases));
  return obj;
}

ChannelReport::ProtocolStats proto_from(const Json& obj)
{
  ChannelReport::ProtocolStats p;
  const std::optional<ProtocolMode> mode =
      api::parse_protocol(field(obj, "mode").as_string());
  if (!mode) throw std::invalid_argument{"cell record: bad proto mode"};
  p.mode = *mode;
  p.frames = static_cast<std::size_t>(field(obj, "frames").as_u64());
  p.frame_sends =
      static_cast<std::size_t>(field(obj, "frame_sends").as_u64());
  p.retransmits =
      static_cast<std::size_t>(field(obj, "retransmits").as_u64());
  p.calibration_margin =
      metric_from(field(obj, "calibration_margin"), "calibration_margin");
  p.calibration_time = Duration::ns(field(obj, "calibration_ns").as_i64());
  p.calibration_probes =
      static_cast<std::size_t>(field(obj, "calibration_probes").as_u64());
  // Read leniently: checkpoints written before calibration reuse landed
  // carry no source field, and a resume must still replay them.
  if (const Json* src = obj.find("calibration_source"); src != nullptr) {
    const std::string& name = src->as_string();
    if (name == "warm") {
      p.calibration_source = CalibrationSource::warm;
    } else if (name == "fallback") {
      p.calibration_source = CalibrationSource::fallback;
    } else if (name == "full") {
      p.calibration_source = CalibrationSource::full;
    } else {
      throw std::invalid_argument{"cell record: bad calibration_source"};
    }
  }
  p.pairs = static_cast<std::size_t>(field(obj, "pairs").as_u64());
  p.pairs_requested =
      static_cast<std::size_t>(field(obj, "pairs_requested").as_u64());
  p.rebalances = static_cast<std::size_t>(field(obj, "rebalances").as_u64());
  p.drift_events =
      static_cast<std::size_t>(field(obj, "drift_events").as_u64());
  p.recalibrations =
      static_cast<std::size_t>(field(obj, "recalibrations").as_u64());
  p.recovered_goodput_bps =
      metric_from(field(obj, "recovered_goodput_bps"),
                  "recovered_goodput_bps");
  p.recovery_spent = Duration::ns(field(obj, "recovery_spent_ns").as_i64());
  for (const Json& entry : field(obj, "phases").items()) {
    ChannelReport::ProtocolStats::PhaseStats ph;
    ph.phase = static_cast<std::size_t>(field(entry, "phase").as_u64());
    ph.frames = static_cast<std::size_t>(field(entry, "frames").as_u64());
    ph.retransmits =
        static_cast<std::size_t>(field(entry, "retransmits").as_u64());
    ph.elapsed = Duration::ns(field(entry, "elapsed_ns").as_i64());
    ph.goodput_bps = metric_from(field(entry, "goodput_bps"), "goodput_bps");
    p.phases.push_back(std::move(ph));
  }
  return p;
}

}  // namespace

std::string ShardSpec::validate() const
{
  if (count == 0) return "shard count must be >= 1";
  if (index >= count) {
    return "shard index must be 0.." + std::to_string(count - 1);
  }
  return {};
}

std::vector<CampaignCell> shard_cells(std::vector<CampaignCell> cells,
                                      const ShardSpec& shard)
{
  if (!shard.active()) return cells;
  std::vector<CampaignCell> mine;
  mine.reserve(cells.size() / shard.count + 1);
  for (CampaignCell& cell : cells) {
    if (shard.owns(cell.coord.flat)) mine.push_back(std::move(cell));
  }
  return mine;
}

std::string cell_record_line(const CellResult& cell)
{
  const ChannelReport& rep = cell.report;
  Json obj = Json::object();
  obj.set("flat",
          Json::number(static_cast<std::uint64_t>(cell.cell.coord.flat)));
  obj.set("ok", Json::boolean(rep.ok));
  obj.set("sync_ok", Json::boolean(rep.sync_ok));
  obj.set("ber", metric_json(rep.ber));
  obj.set("throughput_bps", metric_json(rep.throughput_bps));
  obj.set("elapsed_ns", Json::number(rep.elapsed.count_ns()));
  obj.set("timing", timing_json(rep.timing));
  obj.set("failure", Json::str(rep.failure_reason));
  if (rep.proto) obj.set("proto", proto_json(*rep.proto));
  return obj.dump();
}

CellRecord parse_cell_record(std::string_view line)
{
  const Json obj = Json::parse(line);
  if (!obj.is_object()) {
    throw std::invalid_argument{"cell record: not an object"};
  }
  CellRecord rec;
  rec.flat = static_cast<std::size_t>(field(obj, "flat").as_u64());
  ChannelReport& rep = rec.report;
  rep.ok = field(obj, "ok").as_bool();
  rep.sync_ok = field(obj, "sync_ok").as_bool();
  rep.ber = metric_from(field(obj, "ber"), "ber");
  rep.throughput_bps =
      metric_from(field(obj, "throughput_bps"), "throughput_bps");
  rep.elapsed = Duration::ns(field(obj, "elapsed_ns").as_i64());
  rep.timing = timing_from(field(obj, "timing"));
  rep.failure_reason = field(obj, "failure").as_string();
  if (const Json* proto = obj.find("proto"); proto != nullptr) {
    rep.proto = proto_from(*proto);
  }
  return rec;
}

std::map<std::size_t, ChannelReport> read_records(std::istream& in)
{
  std::map<std::size_t, ChannelReport> out;
  std::string line;
  // A parse error is only fatal when the stream continues past it: the
  // last line of a checkpoint is allowed to be a torn write. Any further
  // line — even a blank one — proves the corrupt line was terminated by
  // a newline and therefore not a torn tail.
  bool pending_error = false;
  std::string pending_what;
  while (std::getline(in, line)) {
    if (pending_error) throw std::invalid_argument{pending_what};
    if (line.empty()) continue;
    try {
      CellRecord rec = parse_cell_record(line);
      // A flat id can legitimately repeat (a cell re-run appended after
      // a resume); the newest record is the authoritative one.
      out.insert_or_assign(rec.flat, std::move(rec.report));
    } catch (const std::invalid_argument& e) {
      pending_error = true;
      pending_what = e.what();
    }
  }
  return out;
}

std::vector<CampaignCell> skip_completed(
    std::vector<CampaignCell> cells,
    const std::map<std::size_t, ChannelReport>& done)
{
  if (done.empty()) return cells;
  std::vector<CampaignCell> remaining;
  remaining.reserve(cells.size());
  for (CampaignCell& cell : cells) {
    if (!done.contains(cell.coord.flat)) {
      remaining.push_back(std::move(cell));
    }
  }
  return remaining;
}

CampaignSummary replay_records(
    const ExperimentPlan& plan, const ShardSpec& shard,
    std::map<std::size_t, ChannelReport> reports,
    const std::function<void(const CellResult&)>& sink)
{
  std::vector<CampaignCell> cells = shard_cells(expand(plan), shard);
  CampaignSummary summary;
  for (CampaignCell& cell : cells) {
    const auto it = reports.find(cell.coord.flat);
    if (it == reports.end()) {
      throw std::invalid_argument{
          "replay: no record for cell #" + std::to_string(cell.coord.flat) +
          " (" + cell.label + ") — incomplete shard set or checkpoint"};
    }
    CellResult result;
    result.cell = std::move(cell);
    result.report = std::move(it->second);
    reports.erase(it);
    summary.fold(result);
    if (sink) sink(result);
  }
  summary.finalize();
  return summary;
}

}  // namespace mes::exec
