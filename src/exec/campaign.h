// Campaign engine: expands an experiment plan into a grid of cells and
// runs every cell's full simulator stack in parallel.
//
// The paper's results (Tables IV–VI, Figs. 8–11) are all grids of
// independent transmissions — mechanism × scenario × timing × seed.
// A plan names the axes once; the runner expands the cross product,
// derives a deterministic per-cell seed (splitmix64 mix of base seed
// and cell coordinates, exec/seed.h), runs each cell on a worker, and
// aggregates ChannelReports into per-point and marginal statistics with
// CSV/JSON emission. Parallel runs are bit-identical to serial ones:
// every cell owns a private simulator stack and its result slot is
// fixed by the plan order.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/runner.h"
#include "proto/cal_cache.h"

namespace mes::exec {

// Position of one cell in the plan's axes (indices into the axis
// vectors, not values).
struct CellCoord {
  std::size_t mechanism = 0;
  std::size_t scenario = 0;
  std::size_t timing = 0;
  std::size_t protocol = 0;
  std::size_t pairs = 0;
  std::size_t repeat = 0;
  std::size_t flat = 0;  // row-major index over the whole grid
};

// One value of the scenario axis. The registry name wins when set
// (any key from scenario/registry.h); the legacy enum fields remain so
// historical plans keep their exact seed schedule and labels.
struct ScenarioSpec {
  Scenario scenario = Scenario::local;
  HypervisorType hypervisor = HypervisorType::none;
  std::string name;  // registry key; empty = legacy enum value
};

// Convenience: the registry-name spec ("noisy-local", "cross-VM", ...).
ScenarioSpec named_scenario(std::string name,
                            HypervisorType hv = HypervisorType::none);

// One value of the timing axis. nullopt = the paper's Timeset for the
// cell's (mechanism, scenario) — the default single-element axis.
struct TimingSpec {
  std::string label = "paper";
  std::optional<TimingConfig> timing;
};

// One value of the protocol axis: how the cell's transmission is driven
// (raw fixed-rate round, ARQ at the fixed timing, or calibrate-then-ARQ).
struct ProtocolSpec {
  std::string label = "fixed";
  ProtocolMode mode = ProtocolMode::fixed;
};

struct ExperimentPlan {
  std::vector<Mechanism> mechanisms = {Mechanism::event};
  std::vector<ScenarioSpec> scenarios = {{}};
  std::vector<TimingSpec> timings = {{}};
  std::vector<ProtocolSpec> protocols = {{}};
  // Bonded-link axis (proto/bond): how many Trojan/Spy sub-channels
  // stripe the cell's payload. Values > 1 run the bonded adaptive stack
  // (per-sub-channel calibration + striped ARQ) regardless of the
  // protocol axis; 1 runs the cell's own protocol mode.
  std::vector<std::size_t> pairs = {1};
  std::size_t repeats = 1;  // seed-replicate axis
  std::uint64_t seed_base = 1;
  std::size_t payload_bits = 4096;
  ExperimentConfig base;  // template for the non-axis knobs
  // Last-chance per-cell hook (e.g. width-dependent sync_bits).
  std::function<void(ExperimentConfig&, const CellCoord&)> tweak;

  std::size_t cell_count() const
  {
    return mechanisms.size() * scenarios.size() * timings.size() *
           protocols.size() * pairs.size() * repeats;
  }
};

// One fully resolved grid cell: config (cell seed included) + payload
// size. The payload itself derives from the cell seed at run time.
struct CampaignCell {
  CellCoord coord;
  std::string label;  // "mechanism/scenario[/timing][/xN][#repeat]"
  ExperimentConfig config;
  std::size_t payload_bits = 0;
  std::size_t bond_pairs = 1;  // > 1: stripe over a bonded link
  // Calibration-reuse wiring (assign_calibration_leaders): non-empty on
  // warm adaptive cells; the leader of each key calibrates fully and
  // publishes its pick for the followers.
  std::string calibration_key;
  bool calibration_leader = false;
};

// Row-major expansion: repeat varies fastest, then pairs, protocol,
// timing, scenario, mechanism.
std::vector<CampaignCell> expand(const ExperimentPlan& plan);

// Deterministic leader election for calibration reuse: every warm
// single-pair adaptive cell gets the cache key of its link, and the
// FIRST cell of each key *in list order* becomes the leader. List order
// — not arrival order — is what makes `--jobs 1` and `--jobs N`
// byte-identical: the leader calibrates fully either way, and every
// follower warm-starts from the same published pick. Called by
// run_cells/run_stream on the list they were handed, so a sharded run
// elects one leader per key per shard (the cache is per-shard; merge is
// unaffected). Cells outside the scheme (full policy, fixed/arq,
// bonded) keep an empty key and run exactly as before.
void assign_calibration_leaders(std::vector<CampaignCell>& cells);

struct CellResult {
  CampaignCell cell;
  ChannelReport report;
};

// Statistics over a group of cells (one grid point's seed replicates,
// or a whole axis value for marginals). Means are over cells that ran.
//
// Built online: fold() cells one at a time (the mean_* fields hold
// running sums until finalize() divides them), so a streaming campaign
// keeps O(points) state instead of every cell. The floating-point sums
// accumulate in fold order — folding in plan order reproduces the
// in-memory aggregation bit for bit.
struct GroupStats {
  std::string key;
  std::size_t cells = 0;
  std::size_t ok = 0;       // transmissions that ran structurally
  std::size_t sync_ok = 0;  // preamble verified
  double mean_ber = 0.0;
  double max_ber = 0.0;
  double mean_throughput_bps = 0.0;

  void fold(const ChannelReport& report);
  // Combines two partial aggregates (both un-finalized). Counts and
  // maxima merge exactly; the sums add in argument order, so a merged
  // mean is only bit-identical to a serial fold when the fold order was
  // the concatenation. Byte-exact shard merges therefore re-fold the
  // per-cell records in flat order instead (exec/stream.h).
  void merge(const GroupStats& other);
  void finalize();  // running sums -> means
};

// The three group families a campaign reports, maintained online:
// memory is O(points), never O(cells). fold order defines every mean's
// floating-point sum order, so folding in plan (flat-index) order is
// bit-identical to aggregate_cells().
class CampaignSummary {
 public:
  std::vector<GroupStats> points;        // per (mechanism, scenario, timing)
  std::vector<GroupStats> by_mechanism;  // marginals over everything else
  std::vector<GroupStats> by_scenario;

  void fold(const CellResult& cell);
  // Key-wise merge (groups unseen by *this* append in `other` order).
  // Same bit-exactness caveat as GroupStats::merge.
  void merge(const CampaignSummary& other);
  void finalize();

  std::size_t cells() const { return cells_; }
  std::size_t cells_ok() const { return cells_ok_; }

 private:
  GroupStats& group(std::vector<GroupStats>& family,
                    std::map<std::string, std::size_t>& index,
                    const std::string& key);

  std::map<std::string, std::size_t> point_index_;
  std::map<std::string, std::size_t> mechanism_index_;
  std::map<std::string, std::size_t> scenario_index_;
  std::size_t cells_ = 0;
  std::size_t cells_ok_ = 0;
};

struct CampaignResult {
  std::vector<CellResult> cells;         // plan order (row-major)
  std::vector<GroupStats> points;        // per (mechanism, scenario, timing)
  std::vector<GroupStats> by_mechanism;  // marginals over everything else
  std::vector<GroupStats> by_scenario;
};

// Folds finished cells into the per-point and marginal statistics (plan
// order preserved). CampaignRunner::run is run_cells + this; exposed so
// drivers that run cells themselves (e.g. through mes::api::Session)
// aggregate identically.
CampaignResult aggregate_cells(std::vector<CellResult> cells);

class CampaignRunner {
 public:
  // jobs == 0 picks the hardware concurrency; jobs == 1 runs serially
  // on the calling thread (the determinism-test reference).
  explicit CampaignRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  CampaignResult run(const ExperimentPlan& plan) const;

  // Building block: runs prepared cells in place (analysis/sweep feeds
  // hand-built cells through this).
  std::vector<CellResult> run_cells(std::vector<CampaignCell> cells) const;

  // Streaming run: cells execute across the workers exactly as
  // run_cells, but each finished CellResult is handed to `sink` in plan
  // order as soon as every earlier cell has finished, then destroyed —
  // memory stays O(in-flight window + points) instead of O(cells). The
  // returned summary folds cells in plan order, so its groups are
  // bit-identical to what aggregate_cells computes over the same cells.
  CampaignSummary run_stream(
      std::vector<CampaignCell> cells,
      const std::function<void(const CellResult&)>& sink) const;

 private:
  std::size_t jobs_;
};

// Runs one cell: derives the payload from the cell seed (truncated to a
// symbol-width multiple) and transmits it. Shared by the runner and any
// driver that wants a single cell inline. The cache overload attaches a
// shared calibration cache when the cell carries a calibration_key.
ChannelReport run_cell(const CampaignCell& cell);
ChannelReport run_cell(const CampaignCell& cell,
                       const std::shared_ptr<proto::CalibrationCache>& cache);

// Deterministic per-cell payload (what run_cell transmits).
BitVec cell_payload(const CampaignCell& cell);

// --- emission ---------------------------------------------------------

// One row per cell: coordinates, config, BER/TR/sync.
void write_csv(std::ostream& out, const CampaignResult& result);

// Full structured dump: cells + per-point and marginal statistics.
void write_json(std::ostream& out, const CampaignResult& result);

// Streaming building blocks (write_csv / write_json are exactly these,
// so a streamed emission is byte-identical to the in-memory one).
void write_csv_header(std::ostream& out);
void write_csv_row(std::ostream& out, const CellResult& cell);
// `{"cells":[` … one cell object per call (`index` drives the comma) …
// `],"points":…}` with the groups.
void write_json_open(std::ostream& out);
void write_json_cell(std::ostream& out, const CellResult& cell,
                     std::size_t index);
void write_json_close(std::ostream& out,
                      const std::vector<GroupStats>& points,
                      const std::vector<GroupStats>& by_mechanism,
                      const std::vector<GroupStats>& by_scenario);

// Single-report JSON object (mes_cli run --json).
std::string report_json(const ChannelReport& report,
                        std::size_t payload_bits);

}  // namespace mes::exec
