#include "exec/env.h"

#include <algorithm>

#include "dme/agent.h"
#include "exec/seed.h"
#include "os/vfs.h"
#include "os/win_objects.h"
#include "scenario/registry.h"

namespace mes::exec {

namespace {

bool is_dme(Mechanism m)
{
  return m == Mechanism::dme_broadcast || m == Mechanism::dme_ricart ||
         m == Mechanism::dme_maekawa;
}

dme::Protocol protocol_of(Mechanism m)
{
  switch (m) {
    case Mechanism::dme_ricart:
      return dme::Protocol::ricart_agrawala;
    case Mechanism::dme_maekawa:
      return dme::Protocol::maekawa;
    default:
      return dme::Protocol::broadcast;
  }
}

// Registry resolution: a named scenario wins; the legacy enum resolves
// to the same registry entries via make_profile.
ScenarioProfile resolve_profile(const ExperimentConfig& cfg)
{
  if (!cfg.scenario_name.empty()) {
    return scenario::scenario_or_throw(cfg.scenario_name)
        .build(flavor_of(cfg.mechanism), cfg.hypervisor);
  }
  return make_profile(cfg.scenario, flavor_of(cfg.mechanism), cfg.hypervisor);
}

// A-priori overhead estimates the attacker uses for the *initial*
// decision threshold; the preamble calibration refines them. Derived
// from the op-cost constants (two probe ops for contention; sleep +
// signal + wake for cooperation).
constexpr double kProbeOverheadUs = 10.0;
constexpr double kCoopOverheadUs = 25.0;

}  // namespace

std::string validate_config(const ExperimentConfig& cfg)
{
  if (!cfg.scenario_name.empty() &&
      scenario::find_scenario(cfg.scenario_name) == nullptr) {
    return "unknown scenario '" + cfg.scenario_name + "'";
  }
  const std::size_t width = cfg.timing.symbol_bits;
  if (width == 0) return "symbol width must be at least 1 bit";
  if (width > 1 && class_of(cfg.mechanism) == ChannelClass::contention) {
    return "multi-bit symbols require a cooperation channel (§VI)";
  }
  if (cfg.sync_bits % width != 0) {
    return "frame sections must be multiples of symbol width";
  }
  return {};
}

ExperimentEnv::ExperimentEnv(const ExperimentConfig& cfg)
    : cfg_{cfg},
      profile_{resolve_profile(cfg)},
      simulator_{std::make_unique<sim::Simulator>(cfg.seed)},
      kernel_{std::make_unique<os::Kernel>(*simulator_,
                                           profile_.make_noise(cfg.seed),
                                           cfg.fairness)}
{
  // The resolved anchor class and hypervisor keep downstream reporting
  // coherent when the env was addressed by name.
  cfg_.scenario = profile_.scenario;
  cfg_.hypervisor = profile_.hypervisor;
  kernel_->objects().set_namespace_sharing(
      profile_.topology.shared_object_namespace);
  kernel_->vfs().set_shared_volume(profile_.topology.shared_file_volume);
  kernel_->vfs().page_cache().configure(profile_.storage);
  if (cfg_.mitigation_fuzz > Duration::zero()) {
    kernel_->set_op_fuzz(cfg_.mitigation_fuzz);
  }
  if (cfg_.enable_trace) kernel_->enable_trace(true);

  // Cluster mode: one simulator timeline, N kernels. The fabric's
  // per-link RNG streams and each extra node's noise model derive from
  // the experiment seed through distinct coordinates, so campaigns stay
  // byte-identical regardless of worker count.
  if (profile_.cluster.enabled()) {
    const net::ClusterParams& cl = profile_.cluster;
    fabric_ = std::make_unique<net::Fabric>(
        *simulator_, cl, mix_seed(cfg_.seed, {0xfab51cull}));
    for (net::NodeId n = 1; n < cl.size; ++n) {
      node_kernels_.push_back(std::make_unique<os::Kernel>(
          *simulator_, profile_.make_noise(mix_seed(cfg_.seed, {0xd3e0ull, n})),
          cfg_.fairness));
      os::Kernel& k = *node_kernels_.back();
      k.objects().set_namespace_sharing(
          profile_.topology.shared_object_namespace);
      k.vfs().set_shared_volume(profile_.topology.shared_file_volume);
      k.vfs().page_cache().configure(profile_.storage);
      if (cfg_.mitigation_fuzz > Duration::zero()) {
        k.set_op_fuzz(cfg_.mitigation_fuzz);
      }
    }
  }
}

os::Kernel& ExperimentEnv::kernel_of(net::NodeId n)
{
  return n == 0 ? *kernel_ : *node_kernels_[n - 1];
}

codec::SymbolSchedule ExperimentEnv::schedule_for(
    Mechanism m, const TimingConfig& timing) const
{
  if (class_of(m) == ChannelClass::cooperation) {
    return codec::SymbolSchedule{timing.symbol_bits, timing.t0,
                                 timing.interval};
  }
  return codec::SymbolSchedule{1, Duration::zero(), timing.t1};
}

codec::SymbolSchedule ExperimentEnv::schedule() const
{
  return schedule_for(cfg_.mechanism, cfg_.timing);
}

codec::LatencyClassifier initial_classifier_for(const ExperimentConfig& cfg)
{
  if (class_of(cfg.mechanism) == ChannelClass::contention) {
    const double threshold_us =
        (kProbeOverheadUs + cfg.timing.t1.to_us()) / 2.0;
    return codec::LatencyClassifier::binary(Duration::us(threshold_us));
  }
  const std::size_t alphabet = std::size_t{1} << cfg.timing.symbol_bits;
  return codec::LatencyClassifier{alphabet,
                                  cfg.timing.t0 + Duration::us(kCoopOverheadUs),
                                  cfg.timing.interval};
}

codec::LatencyClassifier ExperimentEnv::initial_classifier() const
{
  return initial_classifier_for(cfg_);
}

ExperimentEnv::Endpoint& ExperimentEnv::add_pair()
{
  return add_pair(PairSpec{});
}

ExperimentEnv::Endpoint& ExperimentEnv::add_pair(const PairSpec& spec)
{
  const std::size_t index = endpoints_.size();
  const std::string suffix = index == 0 ? "" : std::to_string(index);
  const std::string tag =
      index == 0 ? cfg_.tag : cfg_.tag + "_" + std::to_string(index);

  Endpoint& ep = endpoints_.emplace_back();
  ep.mechanism = spec.mechanism.value_or(cfg_.mechanism);
  const TimingConfig timing = spec.timing.value_or(cfg_.timing);

  // The a-priori classifier for this pair's mechanism + timing (same
  // estimate initial_classifier_for derives for a whole config).
  ExperimentConfig pair_cfg = cfg_;
  pair_cfg.mechanism = ep.mechanism;
  pair_cfg.timing = timing;

  // DME pairs live on their cluster nodes; everything else runs on the
  // primary kernel (node 0).
  const bool cross_node = is_dme(ep.mechanism) && fabric_ != nullptr;
  os::Kernel& trojan_kernel =
      cross_node ? kernel_of(profile_.cluster.trojan_node) : *kernel_;
  os::Kernel& spy_kernel =
      cross_node ? kernel_of(profile_.cluster.spy_node) : *kernel_;
  os::Process& trojan = trojan_kernel.create_process(
      "trojan" + suffix, profile_.topology.trojan_ns);
  os::Process& spy =
      spy_kernel.create_process("spy" + suffix, profile_.topology.spy_ns);

  ep.ctx = std::make_unique<core::RunContext>(core::RunContext{
      .kernel = *kernel_,
      .trojan = trojan,
      .spy = spy,
      .timing = timing,
      .schedule = schedule_for(ep.mechanism, timing),
      .classifier = initial_classifier_for(pair_cfg),
      .loop_cost = cfg_.loop_cost,
      .tag = tag,
      // Semaphore-as-lock priming: exactly one unit free (Tables II/III;
      // 0 stalls, >= 2 breaks mutual exclusion).
      .initial_resources =
          cfg_.semaphore_initial >= 0 ? cfg_.semaphore_initial : 1,
      .bit_sync = nullptr,
      .spy_guard = Duration::us(core::kDefaultSpyGuardUs)});
  finish_endpoint(ep);
  return ep;
}

ExperimentEnv::Endpoint& ExperimentEnv::add_reverse_pair(
    const Endpoint& forward)
{
  Endpoint& ep = endpoints_.emplace_back();
  if (forward.ctx == nullptr) {
    ep.error = "reverse pair needs a built forward endpoint";
    return ep;
  }
  ep.mechanism = forward.mechanism;
  ep.ctx = std::make_unique<core::RunContext>(core::RunContext{
      .kernel = *kernel_,
      // Role swap: the forward Spy now modulates the constraint time and
      // the forward Trojan measures. Same processes, same noise streams.
      .trojan = forward.ctx->spy,
      .spy = forward.ctx->trojan,
      .timing = forward.ctx->timing,
      .schedule = forward.ctx->schedule,
      .classifier = forward.ctx->classifier,
      .loop_cost = forward.ctx->loop_cost,
      .tag = forward.ctx->tag + "r",
      .initial_resources = forward.ctx->initial_resources,
      .bit_sync = nullptr,
      .spy_guard = Duration::us(core::kDefaultSpyGuardUs)});
  finish_endpoint(ep);
  // The reverse Trojan is the forward Spy's process: it lives on the
  // spy node, so the cluster roles swap with it.
  if (ep.ctx->cluster) {
    std::swap(ep.ctx->cluster->trojan_node, ep.ctx->cluster->spy_node);
  }
  return ep;
}

void ExperimentEnv::set_link_tuning(Endpoint& ep, const TimingConfig& timing,
                                    const codec::LatencyClassifier& classifier)
{
  ep.ctx->timing = timing;
  ep.ctx->schedule = schedule_for(ep.mechanism, timing);
  ep.ctx->classifier = classifier;
  if (ep.ctx->bit_sync) {
    ep.ctx->spy_guard = std::max(Duration::us(core::kDefaultSpyGuardUs),
                                 timing.t1 * 0.02);
  }
}

void ExperimentEnv::finish_endpoint(Endpoint& ep)
{
  const ChannelClass klass = class_of(ep.mechanism);
  if (cfg_.fine_grained_sync && klass == ChannelClass::contention) {
    ep.ctx->bit_sync = std::make_shared<sim::Barrier>(2);
    // The Spy's post-rendezvous guard scales with the hold time so that
    // second-scale proofs of concept (Fig. 8) tolerate the bounded
    // scheduler penalties that microsecond channels absorb within their
    // margins.
    ep.ctx->spy_guard =
        std::max(ep.ctx->spy_guard, ep.ctx->timing.t1 * 0.02);
  }

  if (is_dme(ep.mechanism) && fabric_ != nullptr) {
    // One lock object (fabric port) per endpoint: an agent on every
    // node, each parked on its daemon message pump. The channel's
    // trojan/spy drive the agents on their own nodes only.
    auto cluster = std::make_shared<core::ClusterContext>();
    cluster->fabric = fabric_.get();
    cluster->trojan_node = profile_.cluster.trojan_node;
    cluster->spy_node = profile_.cluster.spy_node;
    const std::uint32_t port = next_dme_port_++;
    for (net::NodeId n = 0; n < fabric_->size(); ++n) {
      os::Kernel& k = kernel_of(n);
      cluster->kernels.push_back(&k);
      std::shared_ptr<dme::LockAgent> agent =
          dme::make_agent(protocol_of(ep.mechanism), k, *fabric_, n, port);
      simulator_->spawn_daemon(agent->serve(),
                               "dme_serve_n" + std::to_string(n));
      cluster->agents.push_back(std::move(agent));
    }
    ep.ctx->cluster = std::move(cluster);
    // The guard must outlast a one-way link so the Trojan's request
    // (stamped at its node) reaches the lock before the Spy probes.
    ep.ctx->spy_guard =
        std::max(ep.ctx->spy_guard, profile_.cluster.link_base * 3);
  } else if (!is_dme(ep.mechanism) && profile_.cluster.enabled()) {
    // Single-host mechanisms have no cross-node substrate: kernel
    // objects and files do not resolve through the fabric (the cluster
    // analogue of Table VI's visibility cuts).
    ep.channel = core::make_channel(ep.mechanism);
    ep.error = "mechanism cannot cross the fabric (no shared kernel "
               "objects between nodes)";
    return;
  }

  ep.channel = core::make_channel(ep.mechanism);
  if (!ep.channel) {
    ep.error = "unknown mechanism";
    return;
  }
  ep.error = ep.channel->setup(*ep.ctx);
}

void ExperimentEnv::spawn_transmission(Endpoint& ep,
                                       const std::vector<std::size_t>& symbols)
{
  simulator_->spawn(ep.channel->trojan_run(*ep.ctx, symbols), "trojan");
  simulator_->spawn(ep.channel->spy_run(*ep.ctx, symbols.size(), ep.rx),
                    "spy");
}

sim::RunResult ExperimentEnv::run() { return simulator_->run(cfg_.max_events); }

}  // namespace mes::exec
