// Deterministic per-cell seed derivation for experiment campaigns.
//
// Every grid driver (campaign cells, sweep points, seed replicates)
// derives its per-run seed here so that (a) the same coordinates always
// reproduce the same transmission and (b) neighbouring coordinates land
// in decorrelated RNG streams. The ad-hoc arithmetic hashes this
// replaces could collide for nearby grid points (e.g. x and x+1 with
// shifted series), silently running two "independent" points on the
// same noise stream.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace mes::exec {

// splitmix64 finalizer (Steele/Lea/Vigna). Bijective on 64-bit words,
// so distinct inputs can never merge at this stage.
constexpr std::uint64_t splitmix64(std::uint64_t x)
{
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Folds cell coordinates into a base seed, one splitmix64 round per
// coordinate. Order-sensitive: (a, b) and (b, a) are different cells.
constexpr std::uint64_t mix_seed(std::uint64_t base,
                                 std::initializer_list<std::uint64_t> coords)
{
  std::uint64_t h = splitmix64(base);
  for (const std::uint64_t c : coords) {
    h = splitmix64(h + splitmix64(c));
  }
  return h;
}

// Runtime-length coordinate list (axes that exist only conditionally,
// e.g. the campaign's pairs axis). Same fold, same schedule.
inline std::uint64_t mix_seed(std::uint64_t base,
                              const std::vector<std::uint64_t>& coords)
{
  std::uint64_t h = splitmix64(base);
  for (const std::uint64_t c : coords) {
    h = splitmix64(h + splitmix64(c));
  }
  return h;
}

// Coordinate view of a real-valued axis (sweep parameters): the exact
// bit pattern, so any two distinct parameter values are distinct
// coordinates regardless of scale.
inline std::uint64_t coord_bits(double v)
{
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace mes::exec
