#include "exec/campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "api/session.h"
#include "api/spec.h"
#include "exec/seed.h"
#include "exec/thread_pool.h"
#include "scenario/registry.h"
#include "util/rng.h"

namespace mes::exec {

namespace {

// One value of the scenario axis after registry resolution (expand()
// canonicalizes aliases, anchors the Timeset class and settles the
// hypervisor once per axis value).
struct ResolvedScenario {
  Scenario scenario = Scenario::local;
  std::string name;  // canonical registry key; empty = legacy enum value
  HypervisorType hypervisor = HypervisorType::none;
};

// The scenario identifier labels and group keys share. Built from the
// *resolved* hypervisor so a cell's label, CSV column and marginal key
// always agree — including for scenarios that fix or default their
// hypervisor internally (shared-volume is type-2 by construction).
std::string scenario_key(const ResolvedScenario& s)
{
  std::string key = s.name.empty() ? to_string(s.scenario) : s.name;
  if (s.hypervisor != HypervisorType::none) {
    key += std::string{"@"} + to_string(s.hypervisor);
  }
  return key;
}

// The scenario value a cell reports (CSV/JSON column, grouping key):
// the registry name when the cell was addressed by one, else the
// legacy enum string — byte-identical for legacy plans either way,
// since the registry names the three paper cells with those strings.
std::string scenario_value(const ExperimentConfig& cfg)
{
  return cfg.scenario_name.empty() ? to_string(cfg.scenario)
                                   : cfg.scenario_name;
}

std::string scenario_value(const ChannelReport& rep)
{
  return rep.scenario_name.empty() ? to_string(rep.scenario)
                                   : rep.scenario_name;
}

std::string point_key(const CampaignCell& cell)
{
  std::string key = cell.label;
  // Strip the "#rep" suffix so replicates of one point share a key.
  if (const auto pos = key.rfind('#'); pos != std::string::npos) {
    key.resize(pos);
  }
  return key;
}

// The by-scenario marginal key (same shape as the label's scenario
// component: registry name plus "@hypervisor" when one is in play).
std::string scenario_marginal_key(const ExperimentConfig& cfg)
{
  std::string key = scenario_value(cfg);
  if (cfg.hypervisor != HypervisorType::none) {
    key += std::string{"@"} + to_string(cfg.hypervisor);
  }
  return key;
}

// Metrics can be NaN/inf (a zero-elapsed cell divides by zero); the
// JSON literals `nan`/`inf` a raw stream insert would produce are
// invalid JSON and break every downstream parser. Non-finite -> null.
void json_number(std::ostream& out, double v)
{
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << "null";
  }
}

// RFC-4180 quoting for free-text CSV fields: embedded quotes double,
// and any field containing a quote, comma or newline is wrapped.
void csv_field(std::ostream& out, const std::string& s, bool force_quote)
{
  const bool needs_quote =
      force_quote || s.find_first_of("\",\n\r") != std::string::npos;
  if (!needs_quote) {
    out << s;
    return;
  }
  out << '"';
  for (const char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

void json_escape(std::ostream& out, const std::string& s)
{
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Drift-aware session accounting: emitted only when the session saw a
// non-trivial regime (several phases, a drift event, a recalibration),
// so legacy emissions stay byte-identical.
void write_drift_json(std::ostream& out,
                      const ChannelReport::ProtocolStats& proto)
{
  if (proto.drift_events == 0 && proto.recalibrations == 0 &&
      proto.phases.size() < 2) {
    return;
  }
  out << ",\"drift\":{\"events\":" << proto.drift_events
      << ",\"recalibrations\":" << proto.recalibrations
      << ",\"recovered_goodput_bps\":";
  json_number(out, proto.recovered_goodput_bps);
  out << ",\"recovery_spent_us\":";
  json_number(out, proto.recovery_spent.to_us());
  out << ",\"phases\":[";
  for (std::size_t i = 0; i < proto.phases.size(); ++i) {
    const auto& ph = proto.phases[i];
    if (i > 0) out << ",";
    out << "{\"phase\":" << ph.phase << ",\"frames\":" << ph.frames
        << ",\"retransmits\":" << ph.retransmits << ",\"elapsed_us\":";
    json_number(out, ph.elapsed.to_us());
    out << ",\"goodput_bps\":";
    json_number(out, ph.goodput_bps);
    out << "}";
  }
  out << "]}";
}

void write_group_json(std::ostream& out, const std::vector<GroupStats>& groups)
{
  out << "[";
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const GroupStats& g = groups[i];
    if (i > 0) out << ",";
    out << "{\"key\":";
    json_escape(out, g.key);
    out << ",\"cells\":" << g.cells << ",\"ok\":" << g.ok
        << ",\"sync_ok\":" << g.sync_ok << ",\"mean_ber\":";
    json_number(out, g.mean_ber);
    out << ",\"max_ber\":";
    json_number(out, g.max_ber);
    out << ",\"mean_throughput_bps\":";
    json_number(out, g.mean_throughput_bps);
    out << "}";
  }
  out << "]";
}

}  // namespace

void GroupStats::fold(const ChannelReport& report)
{
  ++cells;
  if (!report.ok) return;
  ++ok;
  if (report.sync_ok) ++sync_ok;
  mean_ber += report.ber;  // running sum until finalize()
  max_ber = std::max(max_ber, report.ber);
  mean_throughput_bps += report.throughput_bps;
}

void GroupStats::merge(const GroupStats& other)
{
  cells += other.cells;
  ok += other.ok;
  sync_ok += other.sync_ok;
  mean_ber += other.mean_ber;
  max_ber = std::max(max_ber, other.max_ber);
  mean_throughput_bps += other.mean_throughput_bps;
}

void GroupStats::finalize()
{
  if (ok == 0) return;
  mean_ber /= static_cast<double>(ok);
  mean_throughput_bps /= static_cast<double>(ok);
}

GroupStats& CampaignSummary::group(std::vector<GroupStats>& family,
                                   std::map<std::string, std::size_t>& index,
                                   const std::string& key)
{
  // Stable-order grouping: groups come out in first-appearance order,
  // i.e. plan order, so tables render in the order the plan named the
  // axes.
  auto [it, inserted] = index.try_emplace(key, family.size());
  if (inserted) {
    family.push_back(GroupStats{});
    family.back().key = key;
  }
  return family[it->second];
}

void CampaignSummary::fold(const CellResult& cell)
{
  ++cells_;
  if (cell.report.ok) ++cells_ok_;
  group(points, point_index_, point_key(cell.cell)).fold(cell.report);
  group(by_mechanism, mechanism_index_,
        std::string{to_string(cell.cell.config.mechanism)})
      .fold(cell.report);
  group(by_scenario, scenario_index_,
        scenario_marginal_key(cell.cell.config))
      .fold(cell.report);
}

void CampaignSummary::merge(const CampaignSummary& other)
{
  cells_ += other.cells_;
  cells_ok_ += other.cells_ok_;
  const auto merge_family = [this](std::vector<GroupStats>& family,
                                   std::map<std::string, std::size_t>& index,
                                   const std::vector<GroupStats>& from) {
    for (const GroupStats& g : from) {
      group(family, index, g.key).merge(g);
    }
  };
  merge_family(points, point_index_, other.points);
  merge_family(by_mechanism, mechanism_index_, other.by_mechanism);
  merge_family(by_scenario, scenario_index_, other.by_scenario);
}

void CampaignSummary::finalize()
{
  for (GroupStats& g : points) g.finalize();
  for (GroupStats& g : by_mechanism) g.finalize();
  for (GroupStats& g : by_scenario) g.finalize();
}

ScenarioSpec named_scenario(std::string name, HypervisorType hv)
{
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.hypervisor = hv;
  return spec;
}

std::vector<CampaignCell> expand(const ExperimentPlan& plan)
{
  const std::vector<std::size_t> pair_axis =
      plan.pairs.empty() ? std::vector<std::size_t>{1} : plan.pairs;
  std::vector<CampaignCell> cells;
  cells.reserve(plan.cell_count());
  // Resolve the scenario axis once: the registry key canonicalizes (the
  // alias the plan used is not what cells report), the anchor class
  // selects the Timeset row, and the hypervisor becomes the one the
  // profile actually builds with — cross-VM defaults to type-1 when the
  // spec left it open. (OsFlavor only affects the sleep floor, never
  // the hypervisor, so one build per axis value suffices.)
  std::vector<ResolvedScenario> scenario_axis;
  scenario_axis.reserve(plan.scenarios.size());
  for (const ScenarioSpec& scen : plan.scenarios) {
    if (scen.name.empty()) {
      scenario_axis.push_back({scen.scenario, {}, scen.hypervisor});
    } else {
      const scenario::ScenarioDef& def = scenario::scenario_or_throw(scen.name);
      scenario_axis.push_back(
          {def.legacy, def.name,
           def.build(OsFlavor::windows, scen.hypervisor).hypervisor});
    }
  }

  for (std::size_t mi = 0; mi < plan.mechanisms.size(); ++mi) {
   for (std::size_t si = 0; si < plan.scenarios.size(); ++si) {
    for (std::size_t ti = 0; ti < plan.timings.size(); ++ti) {
      for (std::size_t pi = 0; pi < plan.protocols.size(); ++pi) {
        for (std::size_t bi = 0; bi < pair_axis.size(); ++bi) {
          for (std::size_t ri = 0; ri < plan.repeats; ++ri) {
            CampaignCell cell;
            cell.coord = CellCoord{mi, si, ti, pi, bi, ri, cells.size()};

            const Mechanism m = plan.mechanisms[mi];
            const ResolvedScenario& rscen = scenario_axis[si];
            const TimingSpec& timing = plan.timings[ti];
            const ProtocolSpec& proto = plan.protocols[pi];
            cell.bond_pairs = std::max<std::size_t>(pair_axis[bi], 1);

            cell.config = plan.base;
            cell.config.mechanism = m;
            cell.config.scenario = rscen.scenario;
            cell.config.scenario_name = rscen.name;
            cell.config.hypervisor = rscen.hypervisor;
            cell.config.timing =
                timing.timing ? *timing.timing
                              : paper_timeset(m, cell.config.scenario);
            cell.config.protocol = proto.mode;
            // Axis coordinates enter the seed mix only when the plan
            // actually has that axis: single-protocol / single-pairs
            // plans keep their historical seed schedule (stored
            // baselines stay comparable), and a single-protocol
            // adaptive plan sees the same channel realization as its
            // fixed twin.
            std::vector<std::uint64_t> coords = {mi, si, ti};
            if (plan.protocols.size() > 1) coords.push_back(pi);
            if (pair_axis.size() > 1) coords.push_back(bi);
            coords.push_back(ri);
            cell.config.seed = mix_seed(plan.seed_base, coords);
            if (plan.tweak) plan.tweak(cell.config, cell.coord);
            // A bonded cell always runs the bonded adaptive stack
            // (per-sub-channel calibration + striped ARQ); the config
            // AND the label reflect that, so a protocol axis crossed
            // with a pairs axis never claims a fixed/arq bonded cell
            // that never ran — such cells are visibly seed replicates
            // of the same adaptive point.
            if (cell.bond_pairs > 1) {
              cell.config.protocol = ProtocolMode::adaptive;
            }

            cell.label = to_string(m);
            cell.label += '/';
            cell.label += scenario_key(rscen);
            if (plan.timings.size() > 1 || timing.timing) {
              cell.label += '/';
              cell.label += timing.label;
            }
            if (plan.protocols.size() > 1 ||
                cell.config.protocol != ProtocolMode::fixed) {
              cell.label += '/';
              cell.label += cell.bond_pairs > 1 ? "adaptive" : proto.label;
            }
            if (pair_axis.size() > 1 || cell.bond_pairs > 1) {
              cell.label += "/x";
              cell.label += std::to_string(cell.bond_pairs);
            }
            if (plan.repeats > 1) {
              cell.label += '#';
              cell.label += std::to_string(ri);
            }
            cell.payload_bits = plan.payload_bits;
            cells.push_back(std::move(cell));
          }
        }
      }
    }
   }
  }
  return cells;
}

void assign_calibration_leaders(std::vector<CampaignCell>& cells)
{
  // The key must match what Session::transfer derives for the cell: the
  // legacy adapter (to_specs) leaves the probe options at the LinkSpec
  // defaults, so those are what the key carries.
  const api::LinkSpec link_defaults;
  // Lookup-only key set (never iterated).
  std::unordered_set<std::string> seen;
  for (CampaignCell& cell : cells) {
    cell.calibration_key.clear();
    cell.calibration_leader = false;
    if (cell.config.calibration != CalibrationPolicy::warm) continue;
    if (cell.config.protocol != ProtocolMode::adaptive) continue;
    // Bonded links calibrate every sub-channel internally (proto/bond);
    // they stay outside the reuse scheme.
    if (cell.bond_pairs > 1) continue;
    cell.calibration_key = proto::CalibrationCache::key_for(
        cell.config, link_defaults.probe_symbols, link_defaults.min_margin);
    cell.calibration_leader = seen.insert(cell.calibration_key).second;
  }
}

BitVec cell_payload(const CampaignCell& cell)
{
  Rng payload_rng{cell.config.seed ^ 0xabcdef12345ULL};
  const std::size_t width =
      std::max<std::size_t>(cell.config.timing.symbol_bits, 1);
  const std::size_t n = cell.payload_bits - cell.payload_bits % width;
  return BitVec::random(payload_rng, n);
}

ChannelReport run_cell(const CampaignCell& cell)
{
  // Every cell goes through the public façade: the session's first
  // transfer runs on the cell seed exactly, so fixed-protocol cells are
  // bit-identical to the per-mode dispatch this replaced (locked by
  // tests/golden). One intentional semantic change: ARQ/adaptive cells
  // now frame their per-round preamble with cfg.sync_bits instead of
  // the protocol layer's hardcoded 8 — for width-1 cells (every stored
  // baseline) the values coincide, and for wider alphabets the old
  // default was not even a whole number of symbols.
  api::Session session =
      api::Session::open(api::to_specs(cell.config, cell.bond_pairs));
  return session.transfer(cell_payload(cell));
}

ChannelReport run_cell(const CampaignCell& cell,
                       const std::shared_ptr<proto::CalibrationCache>& cache)
{
  if (!cache || cell.calibration_key.empty()) return run_cell(cell);
  api::Session session =
      api::Session::open(api::to_specs(cell.config, cell.bond_pairs));
  session.share_calibration(cache, cell.calibration_key,
                            cell.calibration_leader);
  return session.transfer(cell_payload(cell));
}

CampaignRunner::CampaignRunner(std::size_t jobs)
    : jobs_{jobs == 0 ? ThreadPool::hardware_jobs() : jobs}
{
}

std::vector<CellResult> CampaignRunner::run_cells(
    std::vector<CampaignCell> cells) const
{
  assign_calibration_leaders(cells);
  // One pick store per invocation: parallel_for claims indices in
  // strictly increasing order, so a key's leader (minimal index) is
  // always claimed before any of its waiting followers — see
  // proto/cal_cache.h for the no-deadlock argument.
  const auto cache = std::make_shared<proto::CalibrationCache>();
  std::vector<CellResult> results(cells.size());
  parallel_for(cells.size(), jobs_, [&](std::size_t i) {
    results[i].report = run_cell(cells[i], cache);
    results[i].cell = std::move(cells[i]);
  });
  return results;
}

CampaignResult aggregate_cells(std::vector<CellResult> cells)
{
  CampaignSummary summary;
  for (const CellResult& cell : cells) summary.fold(cell);
  summary.finalize();
  CampaignResult result;
  result.cells = std::move(cells);
  result.points = std::move(summary.points);
  result.by_mechanism = std::move(summary.by_mechanism);
  result.by_scenario = std::move(summary.by_scenario);
  return result;
}

CampaignSummary CampaignRunner::run_stream(
    std::vector<CampaignCell> cells,
    const std::function<void(const CellResult&)>& sink) const
{
  assign_calibration_leaders(cells);
  const auto cache = std::make_shared<proto::CalibrationCache>();
  CampaignSummary summary;
  std::mutex mu;
  // Reorder window: finished cells park here until every earlier cell
  // has finished, so the sink always sees plan order (the byte-identity
  // and FP-sum-order contract) while workers run cells in any order.
  std::map<std::size_t, CellResult> pending;
  std::size_t next = 0;
  parallel_for(cells.size(), jobs_, [&](std::size_t i) {
    CellResult result;
    result.report = run_cell(cells[i], cache);
    result.cell = std::move(cells[i]);
    const std::lock_guard<std::mutex> lock{mu};
    pending.emplace(i, std::move(result));
    while (!pending.empty() && pending.begin()->first == next) {
      const CellResult current = std::move(pending.begin()->second);
      pending.erase(pending.begin());
      summary.fold(current);
      if (sink) sink(current);
      ++next;
    }
  });
  summary.finalize();
  return summary;
}

CampaignResult CampaignRunner::run(const ExperimentPlan& plan) const
{
  return aggregate_cells(run_cells(expand(plan)));
}

void write_csv_header(std::ostream& out)
{
  out << "label,mechanism,scenario,hypervisor,protocol,t1_us,t0_us,"
         "interval_us,symbol_bits,repeat,seed,payload_bits,ok,sync_ok,ber,"
         "throughput_bps,elapsed_us,frames,retransmits,pairs,"
         "aggregate_goodput_bps,stripe_rebalances,calibration_source,"
         "calibration_probes,failure\n";
}

void write_csv_row(std::ostream& out, const CellResult& c)
{
  const ExperimentConfig& cfg = c.cell.config;
  const ChannelReport& rep = c.report;
  // rep.timing is what the transmission actually ran at — for
  // adaptive cells that is the *calibrated* rate, not the anchor.
  const TimingConfig& t = rep.ok ? rep.timing : cfg.timing;
  csv_field(out, c.cell.label, /*force_quote=*/false);
  out << ',' << to_string(cfg.mechanism) << ','
      << scenario_value(cfg) << ',' << to_string(cfg.hypervisor) << ','
      << to_string(cfg.protocol) << ','
      << t.t1.to_us() << ',' << t.t0.to_us() << ','
      << t.interval.to_us() << ',' << t.symbol_bits << ','
      << c.cell.coord.repeat << ',' << cfg.seed << ','
      << c.cell.payload_bits << ',' << (rep.ok ? 1 : 0) << ','
      << (rep.sync_ok ? 1 : 0) << ',' << rep.ber << ','
      << rep.throughput_bps << ',' << rep.elapsed.to_us() << ','
      << (rep.proto ? rep.proto->frames : 0) << ','
      << (rep.proto ? rep.proto->retransmits : 0) << ','
      << (rep.proto ? rep.proto->pairs : c.cell.bond_pairs) << ','
      << rep.throughput_bps << ','
      << (rep.proto ? rep.proto->rebalances : 0) << ','
      // Cells that never calibrated leave the source blank rather than
      // claiming a "full" sweep that never ran.
      << (rep.proto && rep.proto->calibration_probes > 0
              ? to_string(rep.proto->calibration_source)
              : "")
      << ',' << (rep.proto ? rep.proto->calibration_probes : 0) << ',';
  csv_field(out, rep.failure_reason, /*force_quote=*/true);
  out << "\n";
}

void write_csv(std::ostream& out, const CampaignResult& result)
{
  write_csv_header(out);
  for (const CellResult& c : result.cells) write_csv_row(out, c);
}

void write_json_open(std::ostream& out) { out << "{\"cells\":["; }

void write_json_cell(std::ostream& out, const CellResult& c,
                   std::size_t index)
{
  const ExperimentConfig& cfg = c.cell.config;
  const ChannelReport& rep = c.report;
  // As in write_csv: the timing the cell actually ran at.
  const TimingConfig& t = rep.ok ? rep.timing : cfg.timing;
  if (index > 0) out << ",";
  out << "{\"label\":";
  json_escape(out, c.cell.label);
  out << ",\"mechanism\":\"" << to_string(cfg.mechanism)
      << "\",\"scenario\":\"" << scenario_value(cfg)
      << "\",\"hypervisor\":\"" << to_string(cfg.hypervisor)
      << "\",\"protocol\":\"" << to_string(cfg.protocol)
      << "\",\"timing\":{\"t1_us\":";
  json_number(out, t.t1.to_us());
  out << ",\"t0_us\":";
  json_number(out, t.t0.to_us());
  out << ",\"interval_us\":";
  json_number(out, t.interval.to_us());
  out << ",\"symbol_bits\":" << t.symbol_bits << "}"
      << ",\"seed\":" << cfg.seed
      << ",\"payload_bits\":" << c.cell.payload_bits
      << ",\"pairs\":"
      << (rep.proto ? rep.proto->pairs : c.cell.bond_pairs)
      << ",\"ok\":" << (rep.ok ? "true" : "false")
      << ",\"sync_ok\":" << (rep.sync_ok ? "true" : "false")
      << ",\"ber\":";
  json_number(out, rep.ber);
  out << ",\"throughput_bps\":";
  json_number(out, rep.throughput_bps);
  out << ",\"aggregate_goodput_bps\":";
  json_number(out, rep.throughput_bps);
  out << ",\"elapsed_us\":";
  json_number(out, rep.elapsed.to_us());
  if (rep.proto) {
    out << ",\"proto\":{\"frames\":" << rep.proto->frames
        << ",\"frame_sends\":" << rep.proto->frame_sends
        << ",\"retransmits\":" << rep.proto->retransmits
        << ",\"calibration_margin\":";
    json_number(out, rep.proto->calibration_margin);
    out << ",\"calibration_us\":";
    json_number(out, rep.proto->calibration_time.to_us());
    out << ",\"pairs_requested\":" << rep.proto->pairs_requested
        << ",\"stripe_rebalances\":" << rep.proto->rebalances;
    // Calibration accounting (adaptive cells): the simulated probe time
    // that the cell's elapsed/goodput excludes. Gated on probes so
    // fixed/arq emissions stay byte-identical.
    if (rep.proto->calibration_probes > 0) {
      out << ",\"calibration\":{\"source\":\""
          << to_string(rep.proto->calibration_source)
          << "\",\"probes\":" << rep.proto->calibration_probes
          << ",\"elapsed_us\":";
      json_number(out, rep.proto->calibration_time.to_us());
      out << "}";
    }
    write_drift_json(out, *rep.proto);
    out << "}";
  }
  out << ",\"failure\":";
  json_escape(out, rep.failure_reason);
  out << "}";
}

void write_json_close(std::ostream& out,
                      const std::vector<GroupStats>& points,
                      const std::vector<GroupStats>& by_mechanism,
                      const std::vector<GroupStats>& by_scenario)
{
  out << "],\"points\":";
  write_group_json(out, points);
  out << ",\"by_mechanism\":";
  write_group_json(out, by_mechanism);
  out << ",\"by_scenario\":";
  write_group_json(out, by_scenario);
  out << "}\n";
}

void write_json(std::ostream& out, const CampaignResult& result)
{
  write_json_open(out);
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    write_json_cell(out, result.cells[i], i);
  }
  write_json_close(out, result.points, result.by_mechanism,
                   result.by_scenario);
}

std::string report_json(const ChannelReport& rep, std::size_t payload_bits)
{
  std::ostringstream out;
  out << "{\"mechanism\":\"" << to_string(rep.mechanism)
      << "\",\"scenario\":\"" << scenario_value(rep)
      << "\",\"ok\":" << (rep.ok ? "true" : "false")
      << ",\"sync_ok\":" << (rep.sync_ok ? "true" : "false")
      << ",\"payload_bits\":" << payload_bits << ",\"ber\":";
  json_number(out, rep.ber);
  out << ",\"throughput_bps\":";
  json_number(out, rep.throughput_bps);
  out << ",\"elapsed_us\":";
  json_number(out, rep.elapsed.to_us());
  if (rep.proto) {
    out << ",\"proto\":{\"mode\":\"" << to_string(rep.proto->mode)
        << "\",\"frames\":" << rep.proto->frames
        << ",\"frame_sends\":" << rep.proto->frame_sends
        << ",\"retransmits\":" << rep.proto->retransmits
        << ",\"t1_us\":";
    json_number(out, rep.timing.t1.to_us());
    out << ",\"t0_us\":";
    json_number(out, rep.timing.t0.to_us());
    out << ",\"interval_us\":";
    json_number(out, rep.timing.interval.to_us());
    out << ",\"calibration_margin\":";
    json_number(out, rep.proto->calibration_margin);
    out << ",\"calibration_us\":";
    json_number(out, rep.proto->calibration_time.to_us());
    out << ",\"pairs\":" << rep.proto->pairs
        << ",\"pairs_requested\":" << rep.proto->pairs_requested
        << ",\"stripe_rebalances\":" << rep.proto->rebalances;
    if (rep.proto->calibration_probes > 0) {
      out << ",\"calibration\":{\"source\":\""
          << to_string(rep.proto->calibration_source)
          << "\",\"probes\":" << rep.proto->calibration_probes
          << ",\"elapsed_us\":";
      json_number(out, rep.proto->calibration_time.to_us());
      out << "}";
    }
    write_drift_json(out, *rep.proto);
    out << "}";
  }
  out << ",\"failure\":";
  json_escape(out, rep.failure_reason);
  out << "}";
  return out.str();
}

}  // namespace mes::exec
