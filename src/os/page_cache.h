// Simulated page cache + writeback + fsync (the storage-sync substrate).
//
// The storage-sync channel family (Write+Sync, Sync+Sync) rides a
// different physical layer than the lock channels: queueing delay in
// memory-disk synchronization. This model captures the three pieces
// those attacks need:
//
//  * per-inode dirty-page tracking — Vfs::write dirties ceil(len/4096)
//    pages; overlapping writes to the same page coalesce, as in a real
//    page cache;
//  * a writeback daemon — a lazily-spawned coroutine that wakes every
//    `writeback_interval`, gathers all dirty pages and flushes them.
//    It exits once the cache is clean (and is respawned by the next
//    dirtying write), so the simulator's run-until-drain loop is never
//    kept alive by an idle daemon;
//  * a single flush device — one FIFO service timeline shared by every
//    fsync and writeback pass. A flush reserves the device from
//    max(now, device_free_at) for one service period per page; callers
//    sleep until their reservation completes. The queueing delay this
//    produces is the covert-channel observable: one process's dirty
//    pages and fsyncs inflate another's fsync latency.
//
// Journal coupling models ext4's data=ordered entanglement (the effect
// Sync+Sync and Write+Sync exploit on real hosts): an fsync of *any*
// file also flushes every dirty page in the system plus a journal
// commit record, so the Spy's own 1-page fsync directly pays for the
// Trojan's writes even before the writeback daemon notices them.
//
// Per-page service time follows the time-varying NoiseModel: the phase
// in effect at reservation time scales the service period by the ratio
// of its op cost to the phase-0 op cost, so a noisy-neighbor or bursty
// regime slows the flush device along with everything else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>

#include "os/types.h"
#include "sim/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace mes::os {

class Kernel;
class Process;

// Tuning knobs carried on ScenarioProfile; the disk-pressure /
// journal-contention / writeback-storm workload layers edit these.
struct StorageParams {
  // One page's device service period on an idle phase-0 host.
  Duration page_service_base = Duration::us(8.0);
  Duration page_service_jitter = Duration::us(0.9);  // normal stddev
  // Static device slowdown (co-tenant I/O pressure); the time-varying
  // noise phases multiply on top of this.
  double device_load = 1.0;
  // Journal commit records written by every fsync, even of a clean file.
  std::size_t commit_pages = 1;
  // ext4 data=ordered coupling: fsync flushes all dirty pages system-wide.
  bool journal_coupling = true;
  // Writeback daemon cadence (real kernels use seconds; the simulated
  // channels live at microsecond scale).
  Duration writeback_interval = Duration::us(300.0);

  friend bool operator==(const StorageParams&, const StorageParams&) = default;
};

class PageCache {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  explicit PageCache(Kernel& kernel) : k_{kernel} {}

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  void configure(const StorageParams& p) { params_ = p; }
  const StorageParams& params() const { return params_; }

  // Called by Vfs::write after its permission checks pass: dirties the
  // pages covering [off, off+len) and arms the writeback daemon.
  void mark_dirty(InodeNum ino, std::uint64_t off, std::uint64_t len);

  // The fsync body (Vfs::fsync charges the op cost first): flushes the
  // inode's dirty pages — plus, under journal coupling, everyone
  // else's — and the commit record through the device queue, sleeping
  // until the reservation completes.
  [[nodiscard]] sim::Task<int> fsync(Process& proc, InodeNum ino);

  // --- introspection (tests / benches) ----------------------------------
  std::size_t dirty_pages(InodeNum ino) const;
  std::size_t total_dirty_pages() const;
  bool writeback_running() const { return daemon_running_; }
  TimePoint device_free_at() const { return device_free_at_; }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t pages_flushed() const { return pages_flushed_; }
  std::uint64_t writeback_passes() const { return writeback_passes_; }

 private:
  // Removes and counts the dirty pages of one inode / of every inode.
  std::size_t take_dirty(InodeNum ino);
  std::size_t take_all_dirty();

  // Reserves `pages` service periods on the FIFO device timeline and
  // returns the delay from now until that reservation completes.
  Duration reserve_device(std::size_t pages);

  // The device's private jitter stream, forked from the simulator's
  // root stream on first use. Lazy so that a simulation which never
  // writes a file (every legacy channel) leaves the fork order — and
  // with it the per-process noise streams — untouched.
  Rng& device_rng();

  sim::Proc writeback_daemon();

  Kernel& k_;
  StorageParams params_;
  std::map<InodeNum, std::set<std::uint64_t>> dirty_;  // ino -> page indices
  TimePoint device_free_at_ = TimePoint::origin();
  bool daemon_running_ = false;
  bool rng_ready_ = false;
  Rng rng_{0};
  std::uint64_t flushes_ = 0;
  std::uint64_t pages_flushed_ = 0;
  std::uint64_t writeback_passes_ = 0;
};

}  // namespace mes::os
