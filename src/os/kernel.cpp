#include "os/kernel.h"

#include <cstdio>
#include <cstdlib>

#include "os/vfs.h"
#include "os/win_objects.h"

namespace mes::os {

namespace {

// Debug aid: MES_TRACE_STDERR=1 streams every kernel op as it happens
// (the in-memory trace is only readable after the run completes).
bool stderr_trace_enabled()
{
  static const bool enabled = std::getenv("MES_TRACE_STDERR") != nullptr;
  return enabled;
}

void stderr_trace(TimePoint at, Pid pid, OpKind kind, ObjectId object)
{
  if (stderr_trace_enabled()) {
    std::fprintf(stderr, "[%12.3fus] pid=%d %s obj=%llu\n", at.to_us(), pid,
                 to_string(kind), static_cast<unsigned long long>(object));
  }
}

}  // namespace

Kernel::Kernel(sim::Simulator& sim,
               std::shared_ptr<const sim::NoiseModel> noise,
               LockFairness fairness)
    : sim_{sim}, noise_{std::move(noise)}, fairness_{fairness}
{
  objects_ = std::make_unique<ObjectManager>(*this);
  vfs_ = std::make_unique<Vfs>(*this);
}

Kernel::Kernel(sim::Simulator& sim, sim::NoiseParams noise,
               LockFairness fairness)
    : Kernel{sim, std::make_shared<sim::StationaryNoise>(noise), fairness}
{
}

Kernel::~Kernel() = default;

Process& Kernel::create_process(std::string name, NamespaceId ns)
{
  const Pid pid = next_pid_++;
  processes_.push_back(std::make_unique<Process>(
      pid, std::move(name), ns, sim_.rng().fork()));
  return *processes_.back();
}

Process* Kernel::find_process(Pid pid)
{
  for (auto& p : processes_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

void Kernel::terminate_process(Process& proc)
{
  proc.mark_terminated();
  objects_->abandon_mutexes_of(proc.pid());
}

sim::Proc Kernel::charge_op(Process& proc, OpKind kind, ObjectId object)
{
  if (trace_enabled_) {
    trace_.push_back(OpRecord{sim_.now(), proc.pid(), kind, object});
  }
  stderr_trace(sim_.now(), proc.pid(), kind, object);
  // Pending displaced-work penalties are deliberately NOT paid here:
  // they surface at the next re-dispatch point (the inter-bit
  // rendezvous), before the Spy's timestamp, where they can truncate a
  // measurement. A syscall mid-measurement would only lengthen it.
  Duration cost = noise_->op_cost(proc.rng(), sim_.now());
  if (op_fuzz_ > Duration::zero()) {
    cost += Duration::us(proc.rng().uniform(0.0, op_fuzz_.to_us()));
  }
  co_await sim_.delay(cost);
}

sim::Proc Kernel::sleep(Process& proc, Duration d)
{
  if (trace_enabled_) {
    trace_.push_back(OpRecord{sim_.now(), proc.pid(), OpKind::sleep, 0});
  }
  stderr_trace(sim_.now(), proc.pid(), OpKind::sleep, 0);
  // sleep() is one of the per-bit "instructions" in the paper's op
  // accounting (lock-sleep-unlock), so it pays a syscall cost too.
  Duration cost = noise_->op_cost(proc.rng(), sim_.now());
  if (op_fuzz_ > Duration::zero()) {
    cost += Duration::us(proc.rng().uniform(0.0, op_fuzz_.to_us()));
  }
  const Duration actual = noise_->sleep_time(proc.rng(), sim_.now(), d);
  co_await sim_.delay(cost + actual);
  proc.add_pending_penalty(
      noise_->post_wait_penalty(proc.rng(), sim_.now(), actual));
}

sim::Task<sim::WaitOutcome> Kernel::park(Process& proc, Parker& parker,
                                         Duration timeout)
{
  const TimePoint start = sim_.now();
  const sim::WaitOutcome outcome = co_await parker.slot.wait(sim_, timeout);
  const Duration waited = sim_.now() - start;
  proc.add_pending_penalty(
      noise_->post_wait_penalty(proc.rng(), sim_.now(), waited));
  co_return outcome;
}

bool Kernel::wake(Process& waker, Parker& parker)
{
  const Duration latency = noise_->wake_latency(waker.rng(), sim_.now()) +
                           noise_->notify_path(waker.rng(), sim_.now());
  return parker.slot.notify_one(sim_, latency);
}

sim::Proc Kernel::kill(Process& sender, Process& target)
{
  co_await charge_op(sender, OpKind::signal_send,
                     static_cast<ObjectId>(target.pid()));
  auto& state = signals_[target.pid()];
  if (state.waiter && wake(sender, *state.waiter)) {
    state.waiter.reset();
    co_return;
  }
  state.waiter.reset();
  ++state.pending;
}

sim::Task<sim::WaitOutcome> Kernel::sigwait(Process& proc, Duration timeout)
{
  co_await charge_op(proc, OpKind::wait, static_cast<ObjectId>(proc.pid()));
  auto& state = signals_[proc.pid()];
  if (state.pending > 0) {
    --state.pending;
    co_return sim::WaitOutcome::signaled;
  }
  auto parker = std::make_shared<Parker>();
  state.waiter = parker;
  co_return co_await park(proc, *parker, timeout);
}

}  // namespace mes::os
