// Shared identifiers and enums for the simulated OS layer.
#pragma once

#include <cstdint>
#include <string>

namespace mes::os {

using Pid = int;
using Handle = int;        // per-process handle value (multiples of 4, like NT)
using NamespaceId = int;   // object/file visibility domain (session / VM)
using InodeNum = int;
using Fd = int;
using ObjectId = std::uint64_t;  // global id for tracing

constexpr Handle kInvalidHandle = -1;
constexpr Fd kInvalidFd = -1;

// Outcome of wait_for_single_object, mirroring WAIT_OBJECT_0 & friends.
enum class WaitStatus { object_0, timed_out, abandoned, failed };

// How a freed resource is handed to waiters. The paper (§V.B) notes the
// attacks only work under *fair* competition; `unfair` exists for the
// ablation experiment that demonstrates the failure mode.
enum class LockFairness { fair, unfair };

// Operation kinds recorded in the kernel trace (consumed by mes::detect).
enum class OpKind {
  sleep,
  wait,           // WaitForSingleObject / blocking acquire
  set_event,
  reset_event,
  release_mutex,
  release_semaphore,
  set_timer,
  cancel_timer,
  flock_ex,
  flock_sh,
  flock_un,
  lock_file_ex,
  unlock_file_ex,
  file_read,
  file_write,
  file_sync,      // fsync through the page-cache flush queue
  signal_send,    // extension channel (POSIX-style signal)
  net_send,       // cluster fabric: enqueue a message on a link
  net_recv,       // cluster fabric: dequeue a delivered message
};

const char* to_string(WaitStatus s);
const char* to_string(OpKind k);

}  // namespace mes::os
