// Simulated virtual filesystem (the Fig. 5 substrate).
//
// Reproduces the three-level structure the paper's flock channel rides
// on: per-process file-descriptor tables point at system-level open-file
// descriptions, which point at system-level i-nodes. Locks attach to the
// i-node, which is why two processes that independently open the same
// path contend — the basis of the flock and FileLockEX channels.
//
// Two lock families are implemented with their native semantics:
//  * flock(2)    — whole-file advisory lock owned by the open-file
//                  description (dup'ed fds share the lock; a second
//                  open() of the same path conflicts);
//  * LockFileEx  — byte-range locks, exclusive or shared; unlock must
//                  name the exact locked region.
//
// Path visibility is namespace-aware: with a shared volume (local,
// sandbox, type-1 hypervisor with a shared read-only disk) every
// namespace resolves the same i-nodes; without it (type-2 hypervisor)
// the same path names different files and no cross-VM channel exists
// (§V.C.3 / Table VI).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "os/page_cache.h"
#include "os/types.h"

namespace mes::os {

// Errno-style results (negative values, 0 = success).
constexpr int kOk = 0;
constexpr int kErrBadFd = -9;       // EBADF
constexpr int kErrWouldBlock = -11; // EAGAIN / EWOULDBLOCK
constexpr int kErrAccess = -13;     // EACCES
constexpr int kErrExists = -17;     // EEXIST
constexpr int kErrInvalid = -22;    // EINVAL
constexpr int kErrNoEntry = -2;     // ENOENT

enum class FlockOp { shared, exclusive, unlock };
enum class LockMode { shared, exclusive };
enum class OpenMode { read_only, read_write };

struct RangeLock {
  int ofd_id;
  std::uint64_t off;
  std::uint64_t len;
  LockMode mode;

  bool overlaps(std::uint64_t o, std::uint64_t l) const
  {
    // Two half-open ranges intersect iff each start precedes the other's
    // end. Phrased with subtractions so full-range locks (len near
    // UINT64_MAX) cannot wrap off + len around zero.
    if (off >= o) return off - o < l;
    return o - off < len;
  }
};

class Inode {
 public:
  Inode(InodeNum ino, ObjectId trace_id, bool read_only, bool mandatory)
      : ino_{ino},
        trace_id_{trace_id},
        read_only_{read_only},
        mandatory_locking_{mandatory}
  {
  }

  InodeNum ino() const { return ino_; }
  ObjectId trace_id() const { return trace_id_; }
  bool read_only() const { return read_only_; }
  bool mandatory_locking() const { return mandatory_locking_; }

  // flock state (for tests/inspection).
  bool flock_held_exclusively() const;
  std::size_t flock_holder_count() const { return flock_holders_.size(); }
  std::size_t flock_waiter_count() const;
  std::size_t range_lock_count() const { return ranges_.size(); }

 private:
  friend class Vfs;

  struct FlockWaiter {
    std::shared_ptr<Parker> parker;
    int ofd_id;
    LockMode mode;
  };
  struct RangeWaiter {
    std::shared_ptr<Parker> parker;
    int ofd_id;
    std::uint64_t off;
    std::uint64_t len;
    LockMode mode;
  };

  InodeNum ino_;
  ObjectId trace_id_;
  bool read_only_;
  bool mandatory_locking_;
  std::uint64_t size_ = 0;

  std::map<int, LockMode> flock_holders_;  // ofd id -> mode
  std::deque<FlockWaiter> flock_waiters_;

  std::vector<RangeLock> ranges_;
  std::deque<RangeWaiter> range_waiters_;
};

class Vfs {
 public:
  explicit Vfs(Kernel& kernel) : k_{kernel} {}

  // When false, each namespace has a private view: the same path in two
  // namespaces names two unrelated files.
  void set_shared_volume(bool shared) { shared_volume_ = shared; }
  bool shared_volume() const { return shared_volume_; }

  // Creates a file visible from namespace `ns` (and from all namespaces
  // when the volume is shared). Returns the inode number, or kErrExists.
  [[nodiscard]] int create_file(NamespaceId ns, const std::string& path,
                  bool read_only = false, bool mandatory_locking = false);

  // Opens `path` from the caller's namespace view. Returns fd >= 0 or a
  // negative error (kErrNoEntry, kErrAccess for writing a read-only file).
  [[nodiscard]] Fd open(Process& proc, const std::string& path,
          OpenMode mode = OpenMode::read_only);
  // Duplicates an fd; both share one open-file description (and locks).
  [[nodiscard]] Fd dup(Process& proc, Fd fd);
  [[nodiscard]] int close(Process& proc, Fd fd);

  // flock(2). Blocking unless `nonblocking`; then kErrWouldBlock on
  // contention. Lock conversion releases the old lock first (as Linux
  // flock may), so a blocked conversion is not atomic.
  [[nodiscard]] sim::Task<int> flock(Process& proc, Fd fd, FlockOp op,
                       bool nonblocking = false);

  // LockFileEx / UnlockFileEx. Zero-length ranges are invalid. Unlock
  // must match a previously locked region exactly.
  [[nodiscard]] sim::Task<int> lock_file_ex(Process& proc, Fd fd, std::uint64_t off,
                              std::uint64_t len, LockMode mode,
                              bool fail_immediately = false);
  [[nodiscard]] sim::Task<int> unlock_file_ex(Process& proc, Fd fd, std::uint64_t off,
                                std::uint64_t len);

  // Minimal IO used by the threat-model tests and the storage-sync
  // channels: returns byte count or a negative error. Both reads and
  // writes fail with kErrWouldBlock while another open-file description
  // holds a mandatory exclusive lock. A successful write dirties the
  // covered pages in the page cache.
  [[nodiscard]] sim::Task<long> read(Process& proc, Fd fd, std::uint64_t off,
                       std::uint64_t len);
  [[nodiscard]] sim::Task<long> write(Process& proc, Fd fd, std::uint64_t off,
                        std::uint64_t len);

  // fsync(2): flushes the file's dirty pages (plus, under journal
  // coupling, everyone's) through the shared device queue. The queueing
  // delay it observes is the storage-sync channel signal.
  [[nodiscard]] sim::Task<int> fsync(Process& proc, Fd fd);

  PageCache& page_cache() { return page_cache_; }
  const PageCache& page_cache() const { return page_cache_; }

  // Introspection.
  Inode* inode_by_path(NamespaceId ns, const std::string& path);
  Inode* inode_of(Process& proc, Fd fd);
  std::size_t open_file_count() const { return open_files_.size(); }

 private:
  struct OpenFile {
    int id;
    InodeNum ino;
    bool writable;
    int refcount;
  };

  NamespaceId view_ns(NamespaceId ns) const { return shared_volume_ ? 0 : ns; }
  OpenFile* ofd_of(Process& proc, Fd fd);
  Inode* inode(InodeNum ino);

  bool flock_compatible(const Inode& node, int ofd_id, LockMode mode) const;
  void pump_flock(Process& waker, Inode& node);
  void drop_flock(Process& waker, Inode& node, int ofd_id);

  bool range_compatible(const Inode& node, int ofd_id, std::uint64_t off,
                        std::uint64_t len, LockMode mode) const;
  void pump_ranges(Process& waker, Inode& node);

  Kernel& k_;
  PageCache page_cache_{k_};
  bool shared_volume_ = true;

  std::map<std::pair<NamespaceId, std::string>, InodeNum> paths_;
  std::map<InodeNum, std::unique_ptr<Inode>> inodes_;
  std::map<int, OpenFile> open_files_;
  InodeNum next_ino_ = 1000;
  int next_ofd_ = 1;
};

}  // namespace mes::os
