#include "os/process.h"

#include "os/win_objects.h"

namespace mes::os {

Handle Process::insert_object(std::shared_ptr<KernelObject> obj)
{
  const Handle h = next_handle_;
  next_handle_ += 4;
  handles_.emplace(h, std::move(obj));
  return h;
}

std::shared_ptr<KernelObject> Process::lookup_object(Handle h) const
{
  const auto it = handles_.find(h);
  return it == handles_.end() ? nullptr : it->second;
}

bool Process::close_handle(Handle h) { return handles_.erase(h) > 0; }

Fd Process::insert_fd(int open_file_id)
{
  Fd fd = 0;
  while (fds_.contains(fd)) ++fd;  // POSIX: lowest unused descriptor
  fds_.emplace(fd, open_file_id);
  return fd;
}

int Process::lookup_fd(Fd fd) const
{
  const auto it = fds_.find(fd);
  return it == fds_.end() ? -1 : it->second;
}

bool Process::remove_fd(Fd fd) { return fds_.erase(fd) > 0; }

}  // namespace mes::os
