#include "os/win_objects.h"

#include <stdexcept>

namespace mes::os {

std::size_t SemaphoreObject::waiter_count() const
{
  std::size_t n = 0;
  for (const auto& p : waiters_) n += p->slot.size();
  return n;
}

ObjectManager::ObjectManager(Kernel& kernel)
    : k_{kernel}, timer_rng_{kernel.sim().rng().fork()}
{
}

std::shared_ptr<KernelObject> ObjectManager::lookup_directory(
    NamespaceId ns, const std::string& name)
{
  const auto it = directory_.find({ns, name});
  if (it == directory_.end()) return nullptr;
  auto obj = it->second.lock();
  if (!obj) directory_.erase(it);  // prune objects whose handles all closed
  return obj;
}

void ObjectManager::register_named(NamespaceId ns,
                                   std::shared_ptr<KernelObject> obj)
{
  if (obj->name().empty()) return;  // anonymous objects are not listed
  directory_[{ns, obj->name()}] = obj;
}

template <typename T>
std::shared_ptr<T> ObjectManager::resolve(Process& proc, Handle h,
                                          ObjectType type)
{
  auto obj = proc.lookup_object(h);
  if (!obj || obj->type() != type) return nullptr;
  return std::static_pointer_cast<T>(obj);
}

bool ObjectManager::grant_one(Process& waker,
                              std::deque<std::shared_ptr<Parker>>& waiters)
{
  while (!waiters.empty()) {
    auto parker = waiters.front();
    waiters.pop_front();
    if (k_.wake(waker, *parker)) return true;  // false => waiter timed out
  }
  return false;
}

std::size_t ObjectManager::grant_all(
    Process& waker, std::deque<std::shared_ptr<Parker>>& waiters)
{
  std::size_t n = 0;
  while (grant_one(waker, waiters)) ++n;
  return n;
}

// --- Event -------------------------------------------------------------------

Handle ObjectManager::create_event(Process& proc, const std::string& name,
                                   ResetMode mode, bool initially_signaled)
{
  const NamespaceId ns = directory_ns(proc);
  if (!name.empty()) {
    // CreateEvent on an existing name returns the existing object.
    if (auto existing = lookup_directory(ns, name)) {
      if (existing->type() != ObjectType::event) return kInvalidHandle;
      return proc.insert_object(existing);
    }
  }
  auto obj = std::make_shared<EventObject>(k_.next_object_id(), name, ns, mode,
                                           initially_signaled);
  register_named(ns, obj);
  return proc.insert_object(obj);
}

Handle ObjectManager::open_event(Process& proc, const std::string& name)
{
  auto obj = lookup_directory(directory_ns(proc), name);
  if (!obj || obj->type() != ObjectType::event) return kInvalidHandle;
  return proc.insert_object(obj);
}

sim::Proc ObjectManager::set_event(Process& proc, Handle h)
{
  auto ev = resolve<EventObject>(proc, h, ObjectType::event);
  if (!ev) throw std::logic_error{"set_event: bad handle"};
  co_await k_.charge_op(proc, OpKind::set_event, ev->id());
  ev->signaled_ = true;
  if (ev->mode_ == ResetMode::auto_reset) {
    // Exactly one waiter consumes the signal.
    if (grant_one(proc, ev->waiters_)) ev->signaled_ = false;
  } else {
    grant_all(proc, ev->waiters_);
  }
}

sim::Proc ObjectManager::reset_event(Process& proc, Handle h)
{
  auto ev = resolve<EventObject>(proc, h, ObjectType::event);
  if (!ev) throw std::logic_error{"reset_event: bad handle"};
  co_await k_.charge_op(proc, OpKind::reset_event, ev->id());
  ev->signaled_ = false;
}

sim::Task<WaitStatus> ObjectManager::wait_event(Process& proc, EventObject& ev,
                                                Duration timeout)
{
  if (ev.signaled_) {
    if (ev.mode_ == ResetMode::auto_reset) ev.signaled_ = false;
    co_return WaitStatus::object_0;
  }
  auto parker = std::make_shared<Parker>();
  ev.waiters_.push_back(parker);
  const auto outcome = co_await k_.park(proc, *parker, timeout);
  co_return outcome == sim::WaitOutcome::signaled ? WaitStatus::object_0
                                                  : WaitStatus::timed_out;
}

// --- Mutex -------------------------------------------------------------------

Handle ObjectManager::create_mutex(Process& proc, const std::string& name,
                                   bool initially_owned)
{
  const NamespaceId ns = directory_ns(proc);
  if (!name.empty()) {
    if (auto existing = lookup_directory(ns, name)) {
      if (existing->type() != ObjectType::mutex) return kInvalidHandle;
      return proc.insert_object(existing);
    }
  }
  auto obj = std::make_shared<MutexObject>(k_.next_object_id(), name, ns);
  if (initially_owned) {
    obj->owner_ = proc.pid();
    obj->recursion_ = 1;
  }
  register_named(ns, obj);
  all_mutexes_.push_back(obj);
  return proc.insert_object(obj);
}

Handle ObjectManager::open_mutex(Process& proc, const std::string& name)
{
  auto obj = lookup_directory(directory_ns(proc), name);
  if (!obj || obj->type() != ObjectType::mutex) return kInvalidHandle;
  return proc.insert_object(obj);
}

sim::Proc ObjectManager::release_mutex(Process& proc, Handle h)
{
  auto m = resolve<MutexObject>(proc, h, ObjectType::mutex);
  if (!m) throw std::logic_error{"release_mutex: bad handle"};
  co_await k_.charge_op(proc, OpKind::release_mutex, m->id());
  if (m->owner_ != proc.pid()) {
    throw std::logic_error{"release_mutex: caller is not the owner"};
  }
  if (--m->recursion_ > 0) co_return;
  m->owner_ = -1;
  if (k_.fairness() == LockFairness::fair) {
    // Direct hand-off: the longest waiter is guaranteed the mutex.
    if (grant_one(proc, m->waiters_)) m->handoff_pending_ = true;
  } else {
    // Unfair: wake one waiter but let anyone (including newcomers) win.
    grant_one(proc, m->waiters_);
  }
}

sim::Task<WaitStatus> ObjectManager::wait_mutex(Process& proc, MutexObject& m,
                                                Duration timeout)
{
  const TimePoint start = k_.sim().now();
  for (;;) {
    if (m.owner_ == proc.pid()) {
      ++m.recursion_;
      co_return WaitStatus::object_0;
    }
    const bool free_now =
        m.owner_ == -1 &&
        (k_.fairness() == LockFairness::unfair || !m.handoff_pending_);
    if (free_now) {
      m.owner_ = proc.pid();
      m.recursion_ = 1;
      const bool was_abandoned = m.abandoned_;
      m.abandoned_ = false;
      co_return was_abandoned ? WaitStatus::abandoned : WaitStatus::object_0;
    }
    auto parker = std::make_shared<Parker>();
    m.waiters_.push_back(parker);
    Duration remaining = Duration::max();
    if (timeout != Duration::max()) {
      const Duration elapsed = k_.sim().now() - start;
      remaining = timeout - elapsed;
      if (remaining <= Duration::zero()) co_return WaitStatus::timed_out;
    }
    const auto outcome = co_await k_.park(proc, *parker, remaining);
    if (outcome == sim::WaitOutcome::timed_out) {
      co_return WaitStatus::timed_out;
    }
    if (k_.fairness() == LockFairness::fair) {
      // Hand-off reserved the mutex for us.
      m.handoff_pending_ = false;
      m.owner_ = proc.pid();
      m.recursion_ = 1;
      const bool was_abandoned = m.abandoned_;
      m.abandoned_ = false;
      co_return was_abandoned ? WaitStatus::abandoned : WaitStatus::object_0;
    }
    // Unfair mode: loop and re-compete (a newcomer may have stolen it).
  }
}

void ObjectManager::abandon_mutexes_of(Pid pid)
{
  for (auto& weak : all_mutexes_) {
    auto m = weak.lock();
    if (!m || m->owner_ != pid) continue;
    m->owner_ = -1;
    m->recursion_ = 0;
    m->abandoned_ = true;
    // Hand off to a waiter if any; they will observe WAIT_ABANDONED.
    // No waker process exists (it died), so wake without charge using
    // a zero-latency notification.
    while (!m->waiters_.empty()) {
      auto parker = m->waiters_.front();
      m->waiters_.pop_front();
      if (parker->slot.notify_one(k_.sim(), Duration::zero())) {
        if (k_.fairness() == LockFairness::fair) m->handoff_pending_ = true;
        break;
      }
    }
  }
}

// --- Semaphore -----------------------------------------------------------------

Handle ObjectManager::create_semaphore(Process& proc, const std::string& name,
                                       long initial, long maximum)
{
  if (initial < 0 || maximum <= 0 || initial > maximum) return kInvalidHandle;
  const NamespaceId ns = directory_ns(proc);
  if (!name.empty()) {
    if (auto existing = lookup_directory(ns, name)) {
      if (existing->type() != ObjectType::semaphore) return kInvalidHandle;
      return proc.insert_object(existing);
    }
  }
  auto obj = std::make_shared<SemaphoreObject>(k_.next_object_id(), name, ns,
                                               initial, maximum);
  register_named(ns, obj);
  return proc.insert_object(obj);
}

Handle ObjectManager::open_semaphore(Process& proc, const std::string& name)
{
  auto obj = lookup_directory(directory_ns(proc), name);
  if (!obj || obj->type() != ObjectType::semaphore) return kInvalidHandle;
  return proc.insert_object(obj);
}

sim::Task<bool> ObjectManager::release_semaphore(Process& proc, Handle h,
                                                 long count)
{
  auto s = resolve<SemaphoreObject>(proc, h, ObjectType::semaphore);
  if (!s) throw std::logic_error{"release_semaphore: bad handle"};
  if (count <= 0) co_return false;
  co_await k_.charge_op(proc, OpKind::release_semaphore, s->id());
  // ReleaseSemaphore is atomic: it fails without releasing anything when
  // the count would exceed the maximum. Units granted directly to
  // waiters never enter the count, so only the surplus is checked.
  const long waiting = static_cast<long>(s->waiter_count());
  const long entering = std::max(0L, count - waiting);
  if (s->count_ + entering > s->max_) co_return false;
  for (long i = 0; i < count; ++i) {
    if (k_.fairness() == LockFairness::fair) {
      if (grant_one(proc, s->waiters_)) continue;  // direct grant
      ++s->count_;
    } else {
      ++s->count_;
      grant_one(proc, s->waiters_);  // woken waiter re-competes
    }
  }
  co_return true;
}

sim::Task<WaitStatus> ObjectManager::wait_semaphore(Process& proc,
                                                    SemaphoreObject& s,
                                                    Duration timeout)
{
  const TimePoint start = k_.sim().now();
  for (;;) {
    if (s.count_ > 0) {
      --s.count_;
      co_return WaitStatus::object_0;
    }
    auto parker = std::make_shared<Parker>();
    s.waiters_.push_back(parker);
    Duration remaining = Duration::max();
    if (timeout != Duration::max()) {
      const Duration elapsed = k_.sim().now() - start;
      remaining = timeout - elapsed;
      if (remaining <= Duration::zero()) co_return WaitStatus::timed_out;
    }
    const auto outcome = co_await k_.park(proc, *parker, remaining);
    if (outcome == sim::WaitOutcome::timed_out) {
      co_return WaitStatus::timed_out;
    }
    if (k_.fairness() == LockFairness::fair) {
      // The unit was granted directly; the count was never incremented.
      co_return WaitStatus::object_0;
    }
    // Unfair: loop; the unit is in count_ and others may grab it first.
  }
}

// --- Waitable timer ---------------------------------------------------------------

Handle ObjectManager::create_waitable_timer(Process& proc,
                                            const std::string& name,
                                            ResetMode mode)
{
  const NamespaceId ns = directory_ns(proc);
  if (!name.empty()) {
    if (auto existing = lookup_directory(ns, name)) {
      if (existing->type() != ObjectType::waitable_timer) {
        return kInvalidHandle;
      }
      return proc.insert_object(existing);
    }
  }
  auto obj =
      std::make_shared<TimerObject>(k_.next_object_id(), name, ns, mode);
  register_named(ns, obj);
  return proc.insert_object(obj);
}

Handle ObjectManager::open_waitable_timer(Process& proc,
                                          const std::string& name)
{
  auto obj = lookup_directory(directory_ns(proc), name);
  if (!obj || obj->type() != ObjectType::waitable_timer) return kInvalidHandle;
  return proc.insert_object(obj);
}

void ObjectManager::fire_timer(const std::shared_ptr<TimerObject>& timer,
                               std::uint64_t generation)
{
  if (generation != timer->generation_) return;  // re-armed or cancelled
  timer->signaled_ = true;
  // Timer expiry is a kernel-side interrupt; latency comes from the
  // kernel's own stream rather than any process.
  const Duration latency =
      k_.noise().wake_latency(timer_rng_, k_.sim().now());
  if (timer->mode_ == ResetMode::auto_reset) {
    while (!timer->waiters_.empty()) {
      auto parker = timer->waiters_.front();
      timer->waiters_.pop_front();
      if (parker->slot.notify_one(k_.sim(), latency)) {
        timer->signaled_ = false;  // consumed by the woken waiter
        break;
      }
    }
  } else {
    while (!timer->waiters_.empty()) {
      auto parker = timer->waiters_.front();
      timer->waiters_.pop_front();
      parker->slot.notify_one(k_.sim(), latency);
    }
  }
  if (timer->period_ > Duration::zero()) {
    auto self = this;
    k_.sim().call_after(timer->period_, [self, timer, generation] {
      self->fire_timer(timer, generation);
    });
  } else {
    timer->armed_ = false;
  }
}

sim::Proc ObjectManager::set_waitable_timer(Process& proc, Handle h,
                                            Duration due_in, Duration period)
{
  auto t = resolve<TimerObject>(proc, h, ObjectType::waitable_timer);
  if (!t) throw std::logic_error{"set_waitable_timer: bad handle"};
  if (due_in.is_negative()) {
    throw std::logic_error{"set_waitable_timer: negative due time"};
  }
  co_await k_.charge_op(proc, OpKind::set_timer, t->id());
  t->signaled_ = false;
  t->armed_ = true;
  t->period_ = period;
  const std::uint64_t generation = ++t->generation_;
  auto self = this;
  k_.sim().call_after(due_in, [self, t, generation] {
    self->fire_timer(t, generation);
  });
}

sim::Proc ObjectManager::cancel_waitable_timer(Process& proc, Handle h)
{
  auto t = resolve<TimerObject>(proc, h, ObjectType::waitable_timer);
  if (!t) throw std::logic_error{"cancel_waitable_timer: bad handle"};
  co_await k_.charge_op(proc, OpKind::cancel_timer, t->id());
  ++t->generation_;  // invalidates in-flight expirations
  t->signaled_ = false;
  t->armed_ = false;
  t->period_ = Duration::zero();
}

sim::Task<WaitStatus> ObjectManager::wait_timer(Process& proc, TimerObject& t,
                                                Duration timeout)
{
  if (t.signaled_) {
    if (t.mode_ == ResetMode::auto_reset) t.signaled_ = false;
    co_return WaitStatus::object_0;
  }
  auto parker = std::make_shared<Parker>();
  t.waiters_.push_back(parker);
  const auto outcome = co_await k_.park(proc, *parker, timeout);
  co_return outcome == sim::WaitOutcome::signaled ? WaitStatus::object_0
                                                  : WaitStatus::timed_out;
}

// --- generic ------------------------------------------------------------------

sim::Task<WaitStatus> ObjectManager::wait_for_single_object(Process& proc,
                                                            Handle h,
                                                            Duration timeout)
{
  auto obj = proc.lookup_object(h);
  if (!obj) co_return WaitStatus::failed;
  co_await k_.charge_op(proc, OpKind::wait, obj->id());
  switch (obj->type()) {
    case ObjectType::event:
      co_return co_await wait_event(
          proc, static_cast<EventObject&>(*obj), timeout);
    case ObjectType::mutex:
      co_return co_await wait_mutex(
          proc, static_cast<MutexObject&>(*obj), timeout);
    case ObjectType::semaphore:
      co_return co_await wait_semaphore(
          proc, static_cast<SemaphoreObject&>(*obj), timeout);
    case ObjectType::waitable_timer:
      co_return co_await wait_timer(
          proc, static_cast<TimerObject&>(*obj), timeout);
  }
  co_return WaitStatus::failed;
}

bool ObjectManager::close_handle(Process& proc, Handle h)
{
  return proc.close_handle(h);
}

std::shared_ptr<KernelObject> ObjectManager::find_named(NamespaceId ns,
                                                        const std::string& name)
{
  return lookup_directory(share_namespaces_ ? 0 : ns, name);
}

std::size_t ObjectManager::named_object_count() const
{
  std::size_t n = 0;
  for (const auto& [key, weak] : directory_) {
    if (!weak.expired()) ++n;
  }
  return n;
}

}  // namespace mes::os
