// Simulated process control block.
//
// Mirrors the two per-process structures the paper's Figs. 4 and 5 build
// on: the NT-style handle table (handles are process-local values that
// point at system-level kernel objects) and the POSIX file-descriptor
// table (fds point at system-level open-file descriptions).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "os/types.h"
#include "util/rng.h"
#include "util/time.h"

namespace mes::os {

class KernelObject;

class Process {
 public:
  Process(Pid pid, std::string name, NamespaceId ns, Rng rng)
      : pid_{pid}, name_{std::move(name)}, ns_{ns}, rng_{rng}
  {
  }

  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }
  NamespaceId namespace_id() const { return ns_; }
  Rng& rng() { return rng_; }

  bool alive() const { return alive_; }
  void mark_terminated() { alive_ = false; }

  // Displaced-work penalty: accrued when the process stayed parked far
  // beyond a scheduler quantum, paid the next time it performs a
  // syscall (Kernel::charge_op). This deferral is what lets a long
  // previous hold truncate the *next* measurement (§V.C.1's "system is
  // blocked" effect behind Fig. 10's BER rise past tt1 = 220 us).
  void add_pending_penalty(Duration d) { pending_penalty_ += d; }
  Duration take_pending_penalty()
  {
    const Duration d = pending_penalty_;
    pending_penalty_ = Duration::zero();
    return d;
  }
  Duration pending_penalty() const { return pending_penalty_; }

  // --- handle table (kernel objects) ------------------------------------
  // NT-style: values are process-local, start at 4, step 4; the same
  // kernel object generally has different handle values in different
  // processes (Fig. 4).
  Handle insert_object(std::shared_ptr<KernelObject> obj);
  std::shared_ptr<KernelObject> lookup_object(Handle h) const;
  bool close_handle(Handle h);
  std::size_t handle_count() const { return handles_.size(); }

  // --- file descriptor table ---------------------------------------------
  // Values are process-local, smallest free integer from 0 (POSIX).
  Fd insert_fd(int open_file_id);
  int lookup_fd(Fd fd) const;  // returns open-file id or -1
  bool remove_fd(Fd fd);
  std::size_t fd_count() const { return fds_.size(); }

 private:
  Pid pid_;
  std::string name_;
  NamespaceId ns_;
  Rng rng_;
  bool alive_ = true;
  Duration pending_penalty_ = Duration::zero();

  Handle next_handle_ = 4;
  std::map<Handle, std::shared_ptr<KernelObject>> handles_;
  std::map<Fd, int> fds_;
};

}  // namespace mes::os
