#include "os/page_cache.h"

#include <algorithm>

#include "os/kernel.h"
#include "os/vfs.h"
#include "sim/simulator.h"

namespace mes::os {

void PageCache::mark_dirty(InodeNum ino, std::uint64_t off, std::uint64_t len)
{
  if (len == 0) return;
  const std::uint64_t first = off / kPageSize;
  const std::uint64_t last = (off + len - 1) / kPageSize;
  auto& pages = dirty_[ino];
  for (std::uint64_t p = first; p <= last; ++p) pages.insert(p);
  if (!daemon_running_) {
    daemon_running_ = true;
    k_.sim().spawn(writeback_daemon(), "writeback");
  }
}

std::size_t PageCache::dirty_pages(InodeNum ino) const
{
  const auto it = dirty_.find(ino);
  return it == dirty_.end() ? 0 : it->second.size();
}

std::size_t PageCache::total_dirty_pages() const
{
  std::size_t n = 0;
  for (const auto& [ino, pages] : dirty_) n += pages.size();
  return n;
}

std::size_t PageCache::take_dirty(InodeNum ino)
{
  const auto it = dirty_.find(ino);
  if (it == dirty_.end()) return 0;
  const std::size_t n = it->second.size();
  dirty_.erase(it);
  return n;
}

std::size_t PageCache::take_all_dirty()
{
  std::size_t n = 0;
  for (const auto& [ino, pages] : dirty_) n += pages.size();
  dirty_.clear();
  return n;
}

Rng& PageCache::device_rng()
{
  if (!rng_ready_) {
    rng_ = k_.sim().rng().fork();
    rng_ready_ = true;
  }
  return rng_;
}

Duration PageCache::reserve_device(std::size_t pages)
{
  const TimePoint now = k_.sim().now();
  const TimePoint start = std::max(now, device_free_at_);
  // The phase in effect when service *starts* scales the whole batch:
  // a busy co-tenant phase slows the flush device like it slows every
  // other path. (Per-page phase resolution would let a batch straddle
  // a boundary, but batches are short against regime dwell times.)
  const sim::NoiseParams& at_start = k_.noise().params_at(start);
  const sim::NoiseParams& at_origin = k_.noise().params_at(TimePoint::origin());
  const double base_us = at_origin.op_cost_base.to_us();
  const double phase_factor =
      base_us > 0.0
          ? std::clamp(at_start.op_cost_base.to_us() / base_us, 0.5, 10.0)
          : 1.0;
  Duration service = Duration::zero();
  Rng& rng = device_rng();
  for (std::size_t i = 0; i < pages; ++i) {
    Duration per_page =
        params_.page_service_base * (params_.device_load * phase_factor) +
        rng.normal_dur(Duration::zero(), params_.page_service_jitter);
    if (per_page < Duration::us(1.0)) per_page = Duration::us(1.0);
    service += per_page;
  }
  device_free_at_ = start + service;
  pages_flushed_ += pages;
  return device_free_at_ - now;
}

sim::Task<int> PageCache::fsync(Process& /*proc*/, InodeNum ino)
{
  std::size_t pages = take_dirty(ino);
  if (params_.journal_coupling) pages += take_all_dirty();
  pages += params_.commit_pages;
  const Duration wait = reserve_device(pages);
  if (wait > Duration::zero()) co_await k_.sim().delay(wait);
  ++flushes_;
  co_return kOk;
}

sim::Proc PageCache::writeback_daemon()
{
  // Lazily started by the first dirtying write; exits as soon as the
  // cache is clean so an idle daemon never keeps the event queue alive.
  for (;;) {
    co_await k_.sim().delay(params_.writeback_interval);
    const std::size_t pages = take_all_dirty();
    if (pages == 0) break;
    ++writeback_passes_;
    const Duration wait = reserve_device(pages);
    if (wait > Duration::zero()) co_await k_.sim().delay(wait);
    ++flushes_;
  }
  daemon_running_ = false;
}

}  // namespace mes::os
