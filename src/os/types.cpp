#include "os/types.h"

namespace mes::os {

const char* to_string(WaitStatus s)
{
  switch (s) {
    case WaitStatus::object_0: return "WAIT_OBJECT_0";
    case WaitStatus::timed_out: return "WAIT_TIMEOUT";
    case WaitStatus::abandoned: return "WAIT_ABANDONED";
    case WaitStatus::failed: return "WAIT_FAILED";
  }
  return "?";
}

const char* to_string(OpKind k)
{
  switch (k) {
    case OpKind::sleep: return "sleep";
    case OpKind::wait: return "wait";
    case OpKind::set_event: return "set_event";
    case OpKind::reset_event: return "reset_event";
    case OpKind::release_mutex: return "release_mutex";
    case OpKind::release_semaphore: return "release_semaphore";
    case OpKind::set_timer: return "set_timer";
    case OpKind::cancel_timer: return "cancel_timer";
    case OpKind::flock_ex: return "flock_ex";
    case OpKind::flock_sh: return "flock_sh";
    case OpKind::flock_un: return "flock_un";
    case OpKind::lock_file_ex: return "lock_file_ex";
    case OpKind::unlock_file_ex: return "unlock_file_ex";
    case OpKind::file_read: return "file_read";
    case OpKind::file_write: return "file_write";
    case OpKind::file_sync: return "file_sync";
    case OpKind::signal_send: return "signal_send";
    case OpKind::net_send: return "net_send";
    case OpKind::net_recv: return "net_recv";
  }
  return "?";
}

}  // namespace mes::os
