// NT-style kernel object manager (the Fig. 4 substrate).
//
// Kernel objects are system-level structures reached through per-process
// handle tables. The four waitable types the paper uses are implemented
// with their documented semantics:
//
//  * Event          — signaled/unsignaled flag, auto or manual reset;
//  * Mutex          — owner thread id + recursion counter, abandonment;
//  * Semaphore      — counted, ReleaseSemaphore fails above the maximum;
//  * WaitableTimer  — due time + optional period, auto ("synchronization")
//                     or manual reset.
//
// `wait_for_single_object` reproduces WaitForSingleObject: it blocks the
// caller until the object is signaled or the timeout elapses. Named
// objects live in a directory whose visibility models the paper's
// cross-VM finding: sessions (VMs) have private namespaces, so named
// objects are only reachable across endpoints when the namespace is
// shared (§V.C.3).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "os/kernel.h"
#include "os/types.h"

namespace mes::os {

enum class ResetMode { auto_reset, manual_reset };
enum class ObjectType { event, mutex, semaphore, waitable_timer };

class KernelObject {
 public:
  KernelObject(ObjectId id, std::string name, NamespaceId ns, ObjectType type)
      : id_{id}, name_{std::move(name)}, ns_{ns}, type_{type}
  {
  }
  virtual ~KernelObject() = default;

  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }
  NamespaceId namespace_id() const { return ns_; }
  ObjectType type() const { return type_; }

 private:
  ObjectId id_;
  std::string name_;
  NamespaceId ns_;
  ObjectType type_;
};

class EventObject final : public KernelObject {
 public:
  EventObject(ObjectId id, std::string name, NamespaceId ns, ResetMode mode,
              bool initially_signaled)
      : KernelObject{id, std::move(name), ns, ObjectType::event},
        mode_{mode},
        signaled_{initially_signaled}
  {
  }

  ResetMode mode() const { return mode_; }
  bool signaled() const { return signaled_; }

 private:
  friend class ObjectManager;
  ResetMode mode_;
  bool signaled_;
  std::deque<std::shared_ptr<Parker>> waiters_;
};

class MutexObject final : public KernelObject {
 public:
  MutexObject(ObjectId id, std::string name, NamespaceId ns)
      : KernelObject{id, std::move(name), ns, ObjectType::mutex}
  {
  }

  Pid owner() const { return owner_; }
  int recursion() const { return recursion_; }
  bool abandoned() const { return abandoned_; }

 private:
  friend class ObjectManager;
  Pid owner_ = -1;
  int recursion_ = 0;
  bool abandoned_ = false;
  bool handoff_pending_ = false;
  std::deque<std::shared_ptr<Parker>> waiters_;
};

class SemaphoreObject final : public KernelObject {
 public:
  SemaphoreObject(ObjectId id, std::string name, NamespaceId ns, long initial,
                  long maximum)
      : KernelObject{id, std::move(name), ns, ObjectType::semaphore},
        count_{initial},
        max_{maximum}
  {
  }

  long count() const { return count_; }
  long maximum() const { return max_; }
  std::size_t waiter_count() const;

 private:
  friend class ObjectManager;
  long count_;
  long max_;
  std::deque<std::shared_ptr<Parker>> waiters_;
};

class TimerObject final : public KernelObject {
 public:
  TimerObject(ObjectId id, std::string name, NamespaceId ns, ResetMode mode)
      : KernelObject{id, std::move(name), ns, ObjectType::waitable_timer},
        mode_{mode}
  {
  }

  ResetMode mode() const { return mode_; }
  bool signaled() const { return signaled_; }
  bool armed() const { return armed_; }

 private:
  friend class ObjectManager;
  ResetMode mode_;
  bool signaled_ = false;
  bool armed_ = false;
  std::uint64_t generation_ = 0;
  Duration period_ = Duration::zero();
  std::deque<std::shared_ptr<Parker>> waiters_;
};

class ObjectManager {
 public:
  explicit ObjectManager(Kernel& kernel);

  // When false (cross-VM topology), each namespace has its own object
  // directory: OpenEvent("X") from VM 1 cannot see VM 0's "X". When true
  // (local / sandbox), all processes share one directory.
  void set_namespace_sharing(bool shared) { share_namespaces_ = shared; }
  bool namespaces_shared() const { return share_namespaces_; }

  // --- Event ---------------------------------------------------------------
  Handle create_event(Process& proc, const std::string& name, ResetMode mode,
                      bool initially_signaled);
  Handle open_event(Process& proc, const std::string& name);
  sim::Proc set_event(Process& proc, Handle h);
  sim::Proc reset_event(Process& proc, Handle h);

  // --- Mutex ---------------------------------------------------------------
  Handle create_mutex(Process& proc, const std::string& name,
                      bool initially_owned);
  Handle open_mutex(Process& proc, const std::string& name);
  // Throws std::logic_error when the caller does not own the mutex.
  sim::Proc release_mutex(Process& proc, Handle h);

  // --- Semaphore -------------------------------------------------------------
  Handle create_semaphore(Process& proc, const std::string& name, long initial,
                          long maximum);
  Handle open_semaphore(Process& proc, const std::string& name);
  // Returns false (and releases nothing) if count would exceed maximum.
  sim::Task<bool> release_semaphore(Process& proc, Handle h, long count);

  // --- Waitable timer ---------------------------------------------------------
  Handle create_waitable_timer(Process& proc, const std::string& name,
                               ResetMode mode);
  Handle open_waitable_timer(Process& proc, const std::string& name);
  sim::Proc set_waitable_timer(Process& proc, Handle h, Duration due_in,
                               Duration period = Duration::zero());
  sim::Proc cancel_waitable_timer(Process& proc, Handle h);

  // --- generic ----------------------------------------------------------------
  sim::Task<WaitStatus> wait_for_single_object(
      Process& proc, Handle h, Duration timeout = Duration::max());
  bool close_handle(Process& proc, Handle h);

  // Marks every mutex owned by `pid` abandoned and hands off to waiters.
  void abandon_mutexes_of(Pid pid);

  // Introspection (tests).
  std::shared_ptr<KernelObject> find_named(NamespaceId ns,
                                           const std::string& name);
  std::size_t named_object_count() const;

 private:
  using DirectoryKey = std::pair<NamespaceId, std::string>;

  NamespaceId directory_ns(const Process& proc) const
  {
    return share_namespaces_ ? 0 : proc.namespace_id();
  }
  std::shared_ptr<KernelObject> lookup_directory(NamespaceId ns,
                                                 const std::string& name);
  void register_named(NamespaceId ns, std::shared_ptr<KernelObject> obj);

  template <typename T>
  std::shared_ptr<T> resolve(Process& proc, Handle h, ObjectType type);

  // Wakes live waiters; returns the number woken.
  bool grant_one(Process& waker, std::deque<std::shared_ptr<Parker>>& waiters);
  std::size_t grant_all(Process& waker,
                        std::deque<std::shared_ptr<Parker>>& waiters);

  sim::Task<WaitStatus> wait_event(Process& proc, EventObject& ev,
                                   Duration timeout);
  sim::Task<WaitStatus> wait_mutex(Process& proc, MutexObject& m,
                                   Duration timeout);
  sim::Task<WaitStatus> wait_semaphore(Process& proc, SemaphoreObject& s,
                                       Duration timeout);
  sim::Task<WaitStatus> wait_timer(Process& proc, TimerObject& t,
                                   Duration timeout);

  void fire_timer(const std::shared_ptr<TimerObject>& timer,
                  std::uint64_t generation);

  Kernel& k_;
  bool share_namespaces_ = true;
  std::map<DirectoryKey, std::weak_ptr<KernelObject>> directory_;
  std::vector<std::weak_ptr<MutexObject>> all_mutexes_;
  Rng timer_rng_;  // kernel-side stream for timer interrupt latencies
};

}  // namespace mes::os
