// Simulated OS kernel: processes, timing costs, parking, tracing.
//
// The Kernel is the single place where simulated wall-clock costs are
// charged: every MESM call pays an operation cost, every sleep pays the
// scheduler's wake-up behaviour, every blocking wait pays wake-up latency
// and (possibly) a post-wait penalty. Channels never talk to the
// NoiseModel directly — they call syscalls, and the timing emerges.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "os/process.h"
#include "os/types.h"
#include "sim/barrier.h"
#include "sim/noise.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/wait_queue.h"

namespace mes::os {

class ObjectManager;
class Vfs;

// A single-process parking slot. Wait queues that need to know *who* is
// waiting (mutex hand-off, semaphore grants, file-lock queues) keep a
// deque of Parker pointers; granting wakes the parker's private queue.
// A timed-out parker is detected by notify_one() returning false.
struct Parker {
  sim::WaitQueue slot;
};

class Kernel {
 public:
  struct OpRecord {
    TimePoint at;
    Pid pid;
    OpKind kind;
    ObjectId object;
  };

  // The noise regime may be time-varying (sim/noise_process); the
  // NoiseParams overload wraps a stationary model.
  Kernel(sim::Simulator& sim, std::shared_ptr<const sim::NoiseModel> noise,
         LockFairness fairness = LockFairness::fair);
  Kernel(sim::Simulator& sim, sim::NoiseParams noise,
         LockFairness fairness = LockFairness::fair);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulator& sim() { return sim_; }
  const sim::NoiseModel& noise() const { return *noise_; }
  LockFairness fairness() const { return fairness_; }
  void set_fairness(LockFairness f) { fairness_ = f; }

  ObjectManager& objects() { return *objects_; }
  Vfs& vfs() { return *vfs_; }

  // --- processes ---------------------------------------------------------
  Process& create_process(std::string name, NamespaceId ns = 0);
  Process* find_process(Pid pid);
  std::size_t process_count() const { return processes_.size(); }
  // Marks the process dead and abandons its mutexes (WAIT_ABANDONED).
  void terminate_process(Process& proc);

  // --- timing primitives (all charge simulated time) ----------------------
  // One MESM operation: op cost + any background block landing inside it,
  // plus the mitigation fuzz when enabled. Records a trace entry.
  sim::Proc charge_op(Process& proc, OpKind kind, ObjectId object = 0);

  // sleep(d): floor/overshoot/interference per the noise model, plus a
  // post-sleep penalty for long sleeps (displaced-work model).
  sim::Proc sleep(Process& proc, Duration d);

  // Parks the caller on `parker` until woken or timed out; applies
  // wake-side penalty on resume.
  [[nodiscard]] sim::Task<sim::WaitOutcome> park(Process& proc, Parker& parker,
                                   Duration timeout = Duration::max());

  // Wakes the process parked on `parker`. Returns false if it already
  // timed out (caller should then grant elsewhere). The waker pays the
  // notification; the sleeper pays wake-up latency.
  [[nodiscard]] bool wake(Process& waker, Parker& parker);

  // Fresh id for trace correlation.
  ObjectId next_object_id() { return ++last_object_id_; }

  // --- POSIX-style signals (extension channel, §IV.A future work) ----------
  // Delivers one signal to `target`: wakes a sigwait-er or queues it.
  sim::Proc kill(Process& sender, Process& target);
  // Blocks until a signal arrives (or returns immediately if pending).
  [[nodiscard]] sim::Task<sim::WaitOutcome> sigwait(Process& proc,
                                      Duration timeout = Duration::max());

  // --- tracing (detector input) -------------------------------------------
  void enable_trace(bool on) { trace_enabled_ = on; }
  bool trace_enabled() const { return trace_enabled_; }
  const std::vector<OpRecord>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  // --- mitigation hook -----------------------------------------------------
  // Adds uniform(0, max_extra) to every charged operation; the timing-fuzz
  // countermeasure evaluated in bench/ablation_mitigation.
  void set_op_fuzz(Duration max_extra) { op_fuzz_ = max_extra; }
  Duration op_fuzz() const { return op_fuzz_; }

 private:
  sim::Simulator& sim_;
  std::shared_ptr<const sim::NoiseModel> noise_;
  LockFairness fairness_;
  Duration op_fuzz_ = Duration::zero();

  std::deque<std::unique_ptr<Process>> processes_;
  Pid next_pid_ = 100;
  ObjectId last_object_id_ = 0;

  bool trace_enabled_ = false;
  std::vector<OpRecord> trace_;

  struct SignalState {
    int pending = 0;
    std::shared_ptr<Parker> waiter;
  };
  std::map<Pid, SignalState> signals_;

  std::unique_ptr<ObjectManager> objects_;
  std::unique_ptr<Vfs> vfs_;
};

}  // namespace mes::os
