#include "os/vfs.h"

#include <algorithm>
#include <limits>

namespace mes::os {

bool Inode::flock_held_exclusively() const
{
  return std::any_of(flock_holders_.begin(), flock_holders_.end(),
                     [](const auto& kv) {
                       return kv.second == LockMode::exclusive;
                     });
}

std::size_t Inode::flock_waiter_count() const
{
  std::size_t n = 0;
  for (const auto& w : flock_waiters_) n += w.parker->slot.size();
  return n;
}

int Vfs::create_file(NamespaceId ns, const std::string& path, bool read_only,
                     bool mandatory_locking)
{
  const auto key = std::make_pair(view_ns(ns), path);
  if (paths_.contains(key)) return kErrExists;
  const InodeNum ino = next_ino_++;
  inodes_.emplace(ino, std::make_unique<Inode>(ino, k_.next_object_id(),
                                               read_only, mandatory_locking));
  paths_.emplace(key, ino);
  return ino;
}

Fd Vfs::open(Process& proc, const std::string& path, OpenMode mode)
{
  const auto key = std::make_pair(view_ns(proc.namespace_id()), path);
  const auto it = paths_.find(key);
  if (it == paths_.end()) return kErrNoEntry;
  Inode* node = inode(it->second);
  if (mode == OpenMode::read_write && node->read_only()) return kErrAccess;

  // Every open() creates a fresh open-file description (Fig. 5): the
  // same path opened twice yields two descriptions that contend.
  const int ofd_id = next_ofd_++;
  open_files_.emplace(
      ofd_id,
      OpenFile{ofd_id, node->ino(), mode == OpenMode::read_write, 1});
  return proc.insert_fd(ofd_id);
}

Fd Vfs::dup(Process& proc, Fd fd)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) return kErrBadFd;
  ++ofd->refcount;
  return proc.insert_fd(ofd->id);
}

int Vfs::close(Process& proc, Fd fd)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) return kErrBadFd;
  proc.remove_fd(fd);
  if (--ofd->refcount == 0) {
    // Last reference: the description's locks evaporate (flock(2) and
    // Windows region locks are both released on final close).
    Inode* node = inode(ofd->ino);
    const int id = ofd->id;
    open_files_.erase(id);
    if (node) {
      node->flock_holders_.erase(id);
      std::erase_if(node->ranges_,
                    [id](const RangeLock& r) { return r.ofd_id == id; });
      pump_flock(proc, *node);
      pump_ranges(proc, *node);
    }
  }
  return kOk;
}

Vfs::OpenFile* Vfs::ofd_of(Process& proc, Fd fd)
{
  const int id = proc.lookup_fd(fd);
  if (id < 0) return nullptr;
  const auto it = open_files_.find(id);
  return it == open_files_.end() ? nullptr : &it->second;
}

Inode* Vfs::inode(InodeNum ino)
{
  const auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : it->second.get();
}

Inode* Vfs::inode_by_path(NamespaceId ns, const std::string& path)
{
  const auto it = paths_.find({view_ns(ns), path});
  return it == paths_.end() ? nullptr : inode(it->second);
}

Inode* Vfs::inode_of(Process& proc, Fd fd)
{
  OpenFile* ofd = ofd_of(proc, fd);
  return ofd ? inode(ofd->ino) : nullptr;
}

// --- flock ---------------------------------------------------------------------

bool Vfs::flock_compatible(const Inode& node, int ofd_id, LockMode mode) const
{
  for (const auto& [holder, held_mode] : node.flock_holders_) {
    if (holder == ofd_id) continue;  // conversion never self-conflicts
    if (mode == LockMode::exclusive || held_mode == LockMode::exclusive) {
      return false;
    }
  }
  return true;
}

void Vfs::pump_flock(Process& waker, Inode& node)
{
  if (k_.fairness() == LockFairness::unfair) {
    // Wake everyone; they re-compete and newcomers may barge. Nothing is
    // granted at wake time, so a dead parker costs nothing.
    for (auto& w : node.flock_waiters_) (void)k_.wake(waker, *w.parker);
    node.flock_waiters_.clear();
    return;
  }
  // Fair: grant from the front while compatible (a run of readers, or
  // one writer), assigning the lock at grant time so newcomers queue.
  while (!node.flock_waiters_.empty()) {
    auto& w = node.flock_waiters_.front();
    if (!flock_compatible(node, w.ofd_id, w.mode)) break;
    auto waiter = w;
    node.flock_waiters_.pop_front();
    if (k_.wake(waker, *waiter.parker)) {
      node.flock_holders_[waiter.ofd_id] = waiter.mode;
    }
  }
}

void Vfs::drop_flock(Process& waker, Inode& node, int ofd_id)
{
  if (node.flock_holders_.erase(ofd_id) > 0) pump_flock(waker, node);
}

sim::Task<int> Vfs::flock(Process& proc, Fd fd, FlockOp op, bool nonblocking)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) co_return kErrBadFd;
  Inode* node = inode(ofd->ino);
  const OpKind kind = op == FlockOp::unlock
                          ? OpKind::flock_un
                          : (op == FlockOp::exclusive ? OpKind::flock_ex
                                                      : OpKind::flock_sh);
  co_await k_.charge_op(proc, kind, node->trace_id());

  if (op == FlockOp::unlock) {
    drop_flock(proc, *node, ofd->id);
    co_return kOk;
  }

  const LockMode mode =
      op == FlockOp::exclusive ? LockMode::exclusive : LockMode::shared;
  const int ofd_id = ofd->id;
  bool converted = false;
  for (;;) {
    const bool queue_clear = k_.fairness() == LockFairness::unfair ||
                             node->flock_waiter_count() == 0 ||
                             node->flock_holders_.contains(ofd_id);
    if (queue_clear && flock_compatible(*node, ofd_id, mode)) {
      node->flock_holders_[ofd_id] = mode;
      co_return kOk;
    }
    if (nonblocking) co_return kErrWouldBlock;
    // A blocked conversion releases the old lock first (Linux flock
    // semantics: the conversion is not atomic).
    if (!converted && node->flock_holders_.contains(ofd_id)) {
      drop_flock(proc, *node, ofd_id);
      converted = true;
      continue;  // re-check: dropping ours may have made us compatible
    }
    auto parker = std::make_shared<Parker>();
    node->flock_waiters_.push_back(Inode::FlockWaiter{parker, ofd_id, mode});
    // mes-lint: allow(checked-errors) infinite wait — park without a timeout can only resume signaled
    co_await k_.park(proc, *parker);
    if (k_.fairness() == LockFairness::fair) {
      // pump_flock() installed the lock before waking us.
      co_return kOk;
    }
    // Unfair: loop and re-compete.
  }
}

// --- byte-range locks (LockFileEx) ------------------------------------------------

bool Vfs::range_compatible(const Inode& node, int ofd_id, std::uint64_t off,
                           std::uint64_t len, LockMode mode) const
{
  for (const auto& r : node.ranges_) {
    if (r.ofd_id == ofd_id) continue;  // same description: locks stack
    if (!r.overlaps(off, len)) continue;
    if (mode == LockMode::exclusive || r.mode == LockMode::exclusive) {
      return false;
    }
  }
  return true;
}

void Vfs::pump_ranges(Process& waker, Inode& node)
{
  if (k_.fairness() == LockFairness::unfair) {
    // Broadcast wake grants no lock; waiters re-compete on resume.
    for (auto& w : node.range_waiters_) (void)k_.wake(waker, *w.parker);
    node.range_waiters_.clear();
    return;
  }
  while (!node.range_waiters_.empty()) {
    auto& w = node.range_waiters_.front();
    if (!range_compatible(node, w.ofd_id, w.off, w.len, w.mode)) break;
    auto waiter = w;
    node.range_waiters_.pop_front();
    if (k_.wake(waker, *waiter.parker)) {
      node.ranges_.push_back(
          RangeLock{waiter.ofd_id, waiter.off, waiter.len, waiter.mode});
    }
  }
}

sim::Task<int> Vfs::lock_file_ex(Process& proc, Fd fd, std::uint64_t off,
                                 std::uint64_t len, LockMode mode,
                                 bool fail_immediately)
{
  if (len == 0) co_return kErrInvalid;
  // A range whose end would wrap past 2^64 has no consistent overlap
  // semantics; reject it (the full range [0, UINT64_MAX) stays valid).
  if (off > std::numeric_limits<std::uint64_t>::max() - len) {
    co_return kErrInvalid;
  }
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) co_return kErrBadFd;
  Inode* node = inode(ofd->ino);
  co_await k_.charge_op(proc, OpKind::lock_file_ex, node->trace_id());

  const int ofd_id = ofd->id;
  for (;;) {
    const bool queue_clear = k_.fairness() == LockFairness::unfair ||
                             node->range_waiters_.empty();
    if (queue_clear && range_compatible(*node, ofd_id, off, len, mode)) {
      node->ranges_.push_back(RangeLock{ofd_id, off, len, mode});
      co_return kOk;
    }
    if (fail_immediately) co_return kErrWouldBlock;
    auto parker = std::make_shared<Parker>();
    node->range_waiters_.push_back(
        Inode::RangeWaiter{parker, ofd_id, off, len, mode});
    // mes-lint: allow(checked-errors) infinite wait — park without a timeout can only resume signaled
    co_await k_.park(proc, *parker);
    if (k_.fairness() == LockFairness::fair) co_return kOk;
  }
}

sim::Task<int> Vfs::unlock_file_ex(Process& proc, Fd fd, std::uint64_t off,
                                   std::uint64_t len)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) co_return kErrBadFd;
  Inode* node = inode(ofd->ino);
  co_await k_.charge_op(proc, OpKind::unlock_file_ex, node->trace_id());

  // UnlockFileEx requires the exact region previously locked.
  const int ofd_id = ofd->id;
  const auto it = std::find_if(
      node->ranges_.begin(), node->ranges_.end(), [&](const RangeLock& r) {
        return r.ofd_id == ofd_id && r.off == off && r.len == len;
      });
  if (it == node->ranges_.end()) co_return kErrInvalid;
  node->ranges_.erase(it);
  pump_ranges(proc, *node);
  co_return kOk;
}

// --- IO -------------------------------------------------------------------------

sim::Task<long> Vfs::read(Process& proc, Fd fd, std::uint64_t off,
                          std::uint64_t len)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) co_return kErrBadFd;
  Inode* node = inode(ofd->ino);
  co_await k_.charge_op(proc, OpKind::file_read, node->trace_id());
  if (node->mandatory_locking()) {
    // Mandatory exclusive locks block readers from other descriptions.
    for (const auto& [holder, mode] : node->flock_holders_) {
      if (holder != ofd->id && mode == LockMode::exclusive) {
        co_return kErrWouldBlock;
      }
    }
    for (const auto& r : node->ranges_) {
      if (r.ofd_id != ofd->id && r.mode == LockMode::exclusive &&
          r.overlaps(off, len)) {
        co_return kErrWouldBlock;
      }
    }
  }
  co_return static_cast<long>(len);
}

sim::Task<long> Vfs::write(Process& proc, Fd fd, std::uint64_t off,
                           std::uint64_t len)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) co_return kErrBadFd;
  Inode* node = inode(ofd->ino);
  co_await k_.charge_op(proc, OpKind::file_write, node->trace_id());
  // The covert-channel prerequisite (§III): shared files are read-only,
  // so no direct data transfer is possible.
  if (!ofd->writable || node->read_only()) co_return kErrAccess;
  if (node->mandatory_locking()) {
    // Mandatory exclusive locks block writers from other descriptions,
    // exactly as they block readers above.
    for (const auto& [holder, mode] : node->flock_holders_) {
      if (holder != ofd->id && mode == LockMode::exclusive) {
        co_return kErrWouldBlock;
      }
    }
    for (const auto& r : node->ranges_) {
      if (r.ofd_id != ofd->id && r.mode == LockMode::exclusive &&
          r.overlaps(off, len)) {
        co_return kErrWouldBlock;
      }
    }
  }
  node->size_ = std::max(node->size_, off + len);
  page_cache_.mark_dirty(node->ino(), off, len);
  co_return static_cast<long>(len);
}

sim::Task<int> Vfs::fsync(Process& proc, Fd fd)
{
  OpenFile* ofd = ofd_of(proc, fd);
  if (!ofd) co_return kErrBadFd;
  Inode* node = inode(ofd->ino);
  co_await k_.charge_op(proc, OpKind::file_sync, node->trace_id());
  co_return co_await page_cache_.fsync(proc, node->ino());
}

}  // namespace mes::os
