#include "native/native_common.h"

#include "codec/frame.h"
#include "codec/symbols.h"

#include <cmath>

namespace mes::native {

NativeReport score_reception(const BitVec& payload, std::size_t sync_bits,
                             const std::vector<double>& latencies_us,
                             double fallback_threshold_us,
                             std::chrono::nanoseconds elapsed)
{
  NativeReport rep;
  rep.sent_payload = payload;
  rep.latencies_us = latencies_us;
  rep.elapsed = elapsed;

  std::vector<Duration> preamble;
  preamble.reserve(sync_bits);
  for (std::size_t i = 0; i < sync_bits && i < latencies_us.size(); ++i) {
    preamble.push_back(Duration::us(latencies_us[i]));
  }
  const auto classifier = codec::calibrate_binary(
      preamble, Duration::us(fallback_threshold_us));

  // Estimate the two hold levels from the calibrated threshold: the
  // preamble means sit on the levels themselves.
  double low_level = 0.0;
  double high_level = 0.0;
  {
    double lo_sum = 0.0, hi_sum = 0.0;
    std::size_t lo_n = 0, hi_n = 0;
    const double thr = classifier.threshold(0).to_us();
    for (std::size_t i = 0; i < sync_bits && i < latencies_us.size(); ++i) {
      if (latencies_us[i] > thr) { hi_sum += latencies_us[i]; ++hi_n; }
      else { lo_sum += latencies_us[i]; ++lo_n; }
    }
    low_level = lo_n ? lo_sum / static_cast<double>(lo_n) : thr / 2.0;
    high_level = hi_n ? hi_sum / static_cast<double>(hi_n) : thr * 1.5;
  }

  // Expand each measured latency into one-or-more bits: a receiver that
  // was descheduled across a hold boundary measures the *sum* of the
  // merged holds. Decomposing n1*t1 + n0*t0 keeps the stream aligned;
  // only the order inside one merge is unknowable ('1's emitted first).
  BitVec rx_bits;
  for (const double lat : latencies_us) {
    int best_n1 = classifier.classify(Duration::us(lat)) == 1 ? 1 : 0;
    int best_n0 = 1 - best_n1;
    // Parsimony: merges are rare, and with t1 near a small multiple of
    // t0 the decomposition is ambiguous on residual error alone — each
    // extra bit must buy at least half a low hold of improvement.
    const double per_bit_penalty = 0.3 * low_level;
    double best_cost = std::abs(lat - (best_n1 ? high_level : low_level));
    for (int n1 = 0; n1 <= 4; ++n1) {
      for (int n0 = 0; n0 <= 4; ++n0) {
        if (n1 + n0 < 1) continue;
        const double cost =
            std::abs(lat - n1 * high_level - n0 * low_level) +
            (n1 + n0 - 1) * per_bit_penalty;
        if (cost < best_cost) {
          best_cost = cost;
          best_n1 = n1;
          best_n0 = n0;
        }
      }
    }
    for (int i = 0; i < best_n1; ++i) rx_bits.push_back(1);
    for (int i = 0; i < best_n0; ++i) rx_bits.push_back(0);
  }
  rx_bits = rx_bits.slice(0, sync_bits + payload.size());

  const auto stripped = codec::check_and_strip(rx_bits, sync_bits);
  rep.sync_ok = stripped.has_value();
  rep.received_payload =
      stripped.has_value()
          ? *stripped
          : rx_bits.slice(std::min(sync_bits, rx_bits.size()), rx_bits.size());
  rep.ber = payload.empty()
                ? 0.0
                : static_cast<double>(
                      payload.hamming_distance(rep.received_payload)) /
                      static_cast<double>(payload.size());
  const double secs = std::chrono::duration<double>(elapsed).count();
  if (secs > 0.0) {
    rep.throughput_bps =
        static_cast<double>(payload.size() + sync_bits) / secs;
  }
  rep.ok = true;
  return rep;
}

}  // namespace mes::native
