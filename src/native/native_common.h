// Native (real-OS) backend: shared types.
//
// The same MES protocols as mes::channels, but executed by real threads
// (or forked processes) against real Linux primitives — flock(2),
// eventfd(2), POSIX semaphores — with std::chrono timing. This is the
// end-to-end proof that the simulated channels correspond to something a
// laptop actually does; see examples/native_flock_demo.
//
// Timing defaults are millisecond-scale: a container's scheduler jitter
// is orders of magnitude above the paper's bare-metal microseconds, and
// the goal here is a reliable demonstration, not peak TR.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace mes::native {

struct NativeTiming {
  // Containers often run with coarse timers: sleep_for can overshoot by
  // a millisecond or more even on an idle host, so the default levels
  // are separated by ~10 ms.
  std::chrono::microseconds t1{15000};      // contention hold for '1'
  std::chrono::microseconds t0{6000};       // '0' hold / pacing sleep
  std::chrono::microseconds interval{8000}; // cooperation level spacing
  // Sender release-to-reacquire yield gap for the lock-shaped channels.
  // Kernel lock handoff is not a scheduler handoff: on a loaded (or
  // single-CPU) host the sender's next acquire wins before the woken
  // receiver thread ever runs, merging adjacent holds into one probe —
  // §V.B's fair-pattern requirement made real. The gap parks the sender
  // long enough for the receiver to take and release its probe lock.
  std::chrono::microseconds gap{2000};
};

struct NativeReport {
  bool ok = false;
  std::string error;
  bool sync_ok = false;
  BitVec sent_payload;
  BitVec received_payload;
  double ber = 0.0;
  double throughput_bps = 0.0;
  std::chrono::nanoseconds elapsed{0};
  std::vector<double> latencies_us;  // per received bit, preamble included
};

// Classifies latencies with a threshold calibrated from the alternating
// preamble (falling back to `fallback_threshold_us`), strips the
// preamble and scores against `payload`.
NativeReport score_reception(const BitVec& payload, std::size_t sync_bits,
                             const std::vector<double>& latencies_us,
                             double fallback_threshold_us,
                             std::chrono::nanoseconds elapsed);

// Abstract native channel: frames `payload` behind `sync_bits` of
// alternating preamble and transmits sender/receiver on two threads.
class NativeChannel {
 public:
  virtual ~NativeChannel() = default;
  virtual std::string name() const = 0;
  virtual NativeReport transmit(const BitVec& payload,
                                const NativeTiming& timing,
                                std::size_t sync_bits) = 0;
};

std::unique_ptr<NativeChannel> make_native_flock(
    const std::string& directory = "/tmp");
std::unique_ptr<NativeChannel> make_native_eventfd();
std::unique_ptr<NativeChannel> make_native_semaphore();

}  // namespace mes::native
