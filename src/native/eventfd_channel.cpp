// Real cooperation channel over eventfd(2) — the Linux stand-in for the
// paper's Windows Event object (same signal/wait semantics: the write
// wakes exactly one blocked reader in EFD_SEMAPHORE mode).
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "codec/frame.h"
#include "native/native_common.h"

namespace mes::native {

namespace {

double now_us()
{
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class NativeEventFdChannel final : public NativeChannel {
 public:
  std::string name() const override { return "native-eventfd"; }

  NativeReport transmit(const BitVec& payload, const NativeTiming& timing,
                        std::size_t sync_bits) override
  {
    NativeReport rep;
    const int efd = ::eventfd(0, EFD_SEMAPHORE);
    if (efd < 0) {
      rep.error = std::string{"eventfd failed: "} + std::strerror(errno);
      return rep;
    }

    const codec::Frame frame = codec::make_frame(payload, sync_bits);
    const double t0_us =
        std::chrono::duration<double, std::micro>(timing.t0).count();
    const double ti_us =
        std::chrono::duration<double, std::micro>(timing.interval).count();
    const double threshold_us = t0_us + ti_us / 2.0;

    std::vector<double> latencies;
    latencies.reserve(frame.bits.size());
    std::string rx_error;
    std::string tx_error;

    const auto start = std::chrono::steady_clock::now();
    {
      std::jthread receiver{[&] {
        for (std::size_t i = 0; i < frame.bits.size(); ++i) {
          const double t_begin = now_us();
          std::uint64_t value = 0;
          if (::read(efd, &value, sizeof value) != sizeof value) {
            rx_error = std::string{"read failed: "} + std::strerror(errno);
            return;
          }
          latencies.push_back(now_us() - t_begin);
        }
      }};
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      for (std::size_t i = 0; i < frame.bits.size(); ++i) {
        std::this_thread::sleep_for(frame.bits[i] == 1
                                        ? timing.t0 + timing.interval
                                        : timing.t0);
        const std::uint64_t one = 1;
        if (::write(efd, &one, sizeof one) != sizeof one) {
          tx_error = std::string{"write failed: "} + std::strerror(errno);
          break;
        }
      }
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ::close(efd);

    if (!tx_error.empty() || !rx_error.empty()) {
      rep.error = !tx_error.empty() ? tx_error : rx_error;
      return rep;
    }
    return score_reception(payload, sync_bits, latencies, threshold_us,
                           elapsed);
  }
};

}  // namespace

std::unique_ptr<NativeChannel> make_native_eventfd()
{
  return std::make_unique<NativeEventFdChannel>();
}

}  // namespace mes::native
