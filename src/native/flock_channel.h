// Real flock(2) covert channel over a shared file.
//
// Faithful to Protocol 1: the sender holds LOCK_EX for t1 to send '1'
// and just sleeps t0 for '0'; the receiver times LOCK_EX+LOCK_UN probes
// and paces itself with a t0 sleep after each '0'. The sender and
// receiver halves are exposed separately so two *forked processes* can
// run them against the same path (examples/native_flock_demo); the
// NativeChannel wrapper runs them on two threads, which contend just the
// same because each open() owns a distinct open-file description.
#pragma once

#include "native/native_common.h"

namespace mes::native {

// Sender half: transmits `frame_bits` over the file at `path`.
// Returns empty string on success, otherwise an error description.
std::string flock_send(const std::string& path, const BitVec& frame_bits,
                       const NativeTiming& timing);

// Receiver half: measures `expected` probe latencies (microseconds).
// `inline_threshold_us` drives the pacing decision after each probe.
std::optional<std::vector<double>> flock_receive(
    const std::string& path, std::size_t expected,
    const NativeTiming& timing, double inline_threshold_us,
    std::string* error = nullptr);

}  // namespace mes::native
