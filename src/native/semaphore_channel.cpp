// Real Semaphore covert channel over a POSIX semaphore used as a lock —
// the same semaphore-as-critical-resource protocol as the simulated
// channel (§IV.E): count 1 means free, the sender's P..V bracket is the
// '1' hold, and the receiver times its own P+V probe.
#include <semaphore.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "codec/frame.h"
#include "native/native_common.h"

namespace mes::native {

namespace {

double now_us()
{
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class NativeSemaphoreChannel final : public NativeChannel {
 public:
  std::string name() const override { return "native-semaphore"; }

  NativeReport transmit(const BitVec& payload, const NativeTiming& timing,
                        std::size_t sync_bits) override
  {
    NativeReport rep;
    const codec::Frame frame = codec::make_frame(payload, sync_bits);

    sem_t lock;
    if (sem_init(&lock, 0, /*value=*/1) != 0) {
      rep.error = std::string{"sem_init failed: "} + std::strerror(errno);
      return rep;
    }

    const double t0_us =
        std::chrono::duration<double, std::micro>(timing.t0).count();
    const double threshold_us =
        std::chrono::duration<double, std::micro>(timing.t0 + timing.t1)
            .count() /
        2.0;
    std::vector<double> latencies;
    latencies.reserve(frame.bits.size());
    std::string rx_error;

    const auto start = std::chrono::steady_clock::now();
    {
      std::jthread receiver{[&] {
        auto probe = [&](double* lat) {
          const double t_begin = now_us();
          if (sem_wait(&lock) != 0 || sem_post(&lock) != 0) return false;
          *lat = now_us() - t_begin;
          return true;
        };
        // Anchor: spin lightly until a probe blocks on the first hold.
        constexpr int kMaxAnchorProbes = 20000;
        bool anchored = false;
        for (int tries = 0; tries < kMaxAnchorProbes && !anchored; ++tries) {
          double lat = 0.0;
          if (!probe(&lat)) {
            rx_error = std::string{"sem probe failed: "} +
                       std::strerror(errno);
            return;
          }
          if (lat > t0_us / 2.0) {
            latencies.push_back(lat);
            anchored = true;
          } else {
            std::this_thread::sleep_for(timing.t0 / 4);
          }
        }
        if (!anchored) {
          rx_error = "sender never started";
          return;
        }
        int spurious_budget = 2000;
        while (latencies.size() < frame.bits.size() && spurious_budget > 0) {
          // Give the sender the post->wait window, then queue behind
          // its next hold and measure it whole.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          double lat = 0.0;
          if (!probe(&lat)) {
            rx_error = std::string{"sem probe failed: "} +
                       std::strerror(errno);
            return;
          }
          if (lat <= t0_us / 2.0) {
            --spurious_budget;
            std::this_thread::sleep_for(timing.t0 / 4);
            continue;
          }
          latencies.push_back(lat);
        }
      }};
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      // Duration modulation: every bit is a hold, its length the symbol
      // (see the transport note in flock_channel.cpp). Trailing flush
      // holds let a merge-afflicted receiver finish its count.
      //
      // POSIX semaphores hand off *unfairly*: a woken waiter must
      // re-decrement and loses the race against the poster's immediate
      // next sem_wait — the very fair-pattern requirement of §V.B. The
      // sender therefore yields NativeTiming::gap after each post so
      // the blocked receiver can take its probe.
      for (std::size_t i = 0; i < frame.bits.size() + 4; ++i) {
        sem_wait(&lock);
        const bool one = i < frame.bits.size() && frame.bits[i] == 1;
        std::this_thread::sleep_for(one ? timing.t1 : timing.t0);
        sem_post(&lock);
        std::this_thread::sleep_for(timing.gap);
      }
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    sem_destroy(&lock);

    if (!rx_error.empty()) {
      rep.error = rx_error;
      return rep;
    }
    return score_reception(payload, sync_bits, latencies, threshold_us,
                           elapsed);
  }
};

}  // namespace

std::unique_ptr<NativeChannel> make_native_semaphore()
{
  return std::make_unique<NativeSemaphoreChannel>();
}

}  // namespace mes::native
