#include "native/flock_channel.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "codec/frame.h"

// Native transport note. The simulated channels reproduce Protocol 1
// verbatim (hold for '1', sleep for '0') because the simulator's
// rendezvous keeps the endpoints aligned. On a real, loaded container
// the scheduler jitter is tens-to-hundreds of microseconds, so the
// native channel keys on *hold duration* instead: the sender holds the
// lock for t1 to send '1' and t0 to send '0', back to back. The
// receiver's blocked probe then maps 1:1 onto each hold with no pacing
// at all — the same released-from-constraint-time discrimination, made
// drift-free. (This is also exactly how the paper's Fig. 8 PoC separates
// its levels.)

namespace mes::native {

namespace {

class UniqueFd {
 public:
  explicit UniqueFd(int fd) : fd_{fd} {}
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd()
  {
    if (fd_ >= 0) ::close(fd_);
  }
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

double now_us()
{
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string flock_send(const std::string& path, const BitVec& frame_bits,
                       const NativeTiming& timing)
{
  UniqueFd fd{::open(path.c_str(), O_RDONLY)};
  if (!fd.valid()) {
    return std::string{"flock_send: open failed: "} + std::strerror(errno);
  }
  // Frame holds, then a few flush holds so a receiver that lost probes
  // to merges can still collect its expected count and terminate.
  for (std::size_t i = 0; i < frame_bits.size() + 4; ++i) {
    if (::flock(fd.get(), LOCK_EX) != 0) {
      return std::string{"flock_send: LOCK_EX failed: "} + std::strerror(errno);
    }
    const bool one = i < frame_bits.size() && frame_bits[i] == 1;
    std::this_thread::sleep_for(one ? timing.t1 : timing.t0);
    if (::flock(fd.get(), LOCK_UN) != 0) {
      return std::string{"flock_send: LOCK_UN failed: "} + std::strerror(errno);
    }
    // Yield gap: without it the immediate re-acquire beats the woken
    // receiver on a busy/single-CPU host and two holds merge into one
    // probe (see NativeTiming::gap).
    std::this_thread::sleep_for(timing.gap);
  }
  return {};
}

std::optional<std::vector<double>> flock_receive(
    const std::string& path, std::size_t expected, const NativeTiming& timing,
    double inline_threshold_us, std::string* error)
{
  UniqueFd fd{::open(path.c_str(), O_RDONLY)};
  if (!fd.valid()) {
    if (error) {
      *error = std::string{"flock_receive: open failed: "} +
               std::strerror(errno);
    }
    return std::nullopt;
  }

  const double t0_us =
      std::chrono::duration<double, std::micro>(timing.t0).count();
  auto probe = [&](double* latency) {
    const double start = now_us();
    if (::flock(fd.get(), LOCK_EX) != 0 || ::flock(fd.get(), LOCK_UN) != 0) {
      return false;
    }
    *latency = now_us() - start;
    return true;
  };

  std::vector<double> latencies;
  latencies.reserve(expected);

  // Anchor: spin at a light cadence until a probe blocks for at least
  // half a '0' hold — the sender has started, and that probe measured
  // (most of) the first bit.
  constexpr int kMaxAnchorProbes = 20000;
  bool anchored = false;
  for (int tries = 0; tries < kMaxAnchorProbes && !anchored; ++tries) {
    double latency = 0.0;
    if (!probe(&latency)) {
      if (error) {
        *error = std::string{"flock_receive: flock failed: "} +
                 std::strerror(errno);
      }
      return std::nullopt;
    }
    if (latency > t0_us / 2.0) {
      latencies.push_back(latency);
      anchored = true;
    } else {
      std::this_thread::sleep_for(timing.t0 / 4);
    }
  }
  if (!anchored) {
    if (error) *error = "flock_receive: sender never started";
    return std::nullopt;
  }

  // The sender idles for timing.gap after every hold, so a couple of
  // probes per bit land in the gap by design — size the budget to the
  // frame, with slack for genuine descheduling events.
  int spurious_budget = 2000 + 8 * static_cast<int>(expected);
  while (latencies.size() < expected && spurious_budget > 0) {
    // Give the sender the unlock->relock (gap) window; the next probe
    // then queues behind its hold and measures it whole.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    double latency = 0.0;
    if (!probe(&latency)) {
      if (error) {
        *error = std::string{"flock_receive: flock failed: "} +
                 std::strerror(errno);
      }
      return std::nullopt;
    }
    if (latency <= t0_us / 2.0) {
      // Spurious: the sender is between holds (descheduled) — skip.
      --spurious_budget;
      std::this_thread::sleep_for(timing.t0 / 4);
      continue;
    }
    latencies.push_back(latency);
  }
  (void)inline_threshold_us;
  return latencies;
}

namespace {

class NativeFlockChannel final : public NativeChannel {
 public:
  explicit NativeFlockChannel(std::string directory)
      : directory_{std::move(directory)}
  {
  }

  std::string name() const override { return "native-flock"; }

  NativeReport transmit(const BitVec& payload, const NativeTiming& timing,
                        std::size_t sync_bits) override
  {
    NativeReport rep;
    const std::string path = directory_ + "/mes_native_flock_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(counter_++) + ".lock";
    UniqueFd creator{::open(path.c_str(), O_CREAT | O_RDONLY, 0444)};
    if (!creator.valid()) {
      rep.error = std::string{"create failed: "} + std::strerror(errno);
      return rep;
    }

    const codec::Frame frame = codec::make_frame(payload, sync_bits);
    const double threshold_us =
        std::chrono::duration<double, std::micro>(timing.t0 + timing.t1)
            .count() /
        2.0;

    std::optional<std::vector<double>> latencies;
    std::string rx_error;
    std::string tx_error;
    const auto start = std::chrono::steady_clock::now();
    {
      std::jthread receiver{[&] {
        latencies = flock_receive(path, frame.bits.size(), timing,
                                  threshold_us, &rx_error);
      }};
      // Let the receiver arm its first probe before the sender starts.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      tx_error = flock_send(path, frame.bits, timing);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    ::unlink(path.c_str());

    if (!tx_error.empty() || !rx_error.empty() || !latencies) {
      rep.error = !tx_error.empty() ? tx_error : rx_error;
      return rep;
    }
    return score_reception(payload, sync_bits, *latencies, threshold_us,
                           elapsed);
  }

 private:
  std::string directory_;
  std::uint64_t counter_ = 0;
};

}  // namespace

std::unique_ptr<NativeChannel> make_native_flock(const std::string& directory)
{
  return std::make_unique<NativeFlockChannel>(directory);
}

}  // namespace mes::native
