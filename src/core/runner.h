// Experiment runner: one call = one simulated transmission.
//
// Builds the whole stack (simulator -> noise profile -> kernel ->
// topology -> processes -> channel), frames the payload behind the
// synchronization sequence, runs both protocol roles to completion and
// scores the result. Deterministic for a given config + seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "os/kernel.h"
#include "util/bitvec.h"

namespace mes {

struct ExperimentConfig {
  Mechanism mechanism = Mechanism::event;
  Scenario scenario = Scenario::local;
  HypervisorType hypervisor = HypervisorType::none;  // cross-VM only
  // Registry scenario key (scenario/registry.h). When set, it wins: the
  // profile is resolved by name and `scenario` is only the resolved
  // anchor class (Timeset row, reporting fallback). Empty = the legacy
  // enum path, which resolves to the same registry entries.
  std::string scenario_name;
  TimingConfig timing = paper_timeset(Mechanism::event, Scenario::local);

  std::size_t sync_bits = 8;   // preamble length (§V.B)
  std::uint64_t seed = 1;
  os::LockFairness fairness = os::LockFairness::fair;

  // How the transmission is driven. run_transmission itself always runs
  // one raw fixed-rate round; the arq/adaptive modes are dispatched by
  // the layers above (exec::run_cell, mes_cli) into mes::proto, which
  // loops raw rounds under its framing. Carried here so campaign cells
  // can put the protocol on a plan axis.
  ProtocolMode protocol = ProtocolMode::fixed;

  // Adaptive mode only: whether calibration may warm-start from a
  // published pick for the same link key (proto/cal_cache.h). `full`
  // keeps every cell independent and byte-identical to the pre-cache
  // behaviour.
  CalibrationPolicy calibration = CalibrationPolicy::full;

  // Per-iteration protocol-loop cost ("irrelevant instructions").
  Duration loop_cost = Duration::us(5.0);

  // Re-derive the binary decision threshold from the measured preamble
  // (how a real Spy calibrates); disable to use the a-priori estimate.
  bool recalibrate_from_preamble = true;

  // Fine-grained inter-bit synchronization for contention channels
  // (§V.B): a rendezvous before every bit restores the execution order
  // and stops pacing drift from slipping the Spy's bit alignment.
  // Disabling it falls back to Protocol 1's raw pacing ('1' holds
  // re-anchor the Spy, t0 sleeps pace '0' runs), whose accumulated
  // drift errors are exactly the failure §V.B describes —
  // bench/ablation_sync shows the collapse.
  bool fine_grained_sync = true;

  // Semaphore channel: initial resources in S (the semaphore is used as
  // a lock, so 1 is the working priming). 0 reproduces the Table II
  // stall (transmission deadlock); >= 2 breaks mutual exclusion and the
  // Spy reads every '1' as '0'. Negative = the working default of 1.
  long semaphore_initial = -1;

  // Timing-fuzz mitigation amplitude (0 = off); see mes::detect.
  Duration mitigation_fuzz = Duration::zero();

  bool enable_trace = false;   // record kernel op trace (detector input)
  std::string tag = "0";       // resource-name disambiguator
  std::uint64_t max_events = sim::Simulator::kDefaultMaxEvents;
};

struct TraceOut {
  std::vector<os::Kernel::OpRecord> ops;
};

// Runs one framed transmission of `payload`. This is the innermost
// driver; the public entry point for applications is the layered spec +
// session façade in api/session.h, which dispatches here for fixed-mode
// transfers.
ChannelReport run_transmission(const ExperimentConfig& config,
                               const BitVec& payload,
                               TraceOut* trace = nullptr);

// Round protocol (§V.B): retries (with fresh timing randomness) until
// the Spy verifies the preamble, up to `max_rounds`. Round 0 runs on
// the configured seed; retry rounds salt it through the splitmix64
// mixer (exec/seed.h) so they never collide with a campaign cell's
// stream. `trace`, when non-null, receives the kernel op trace of the
// last round attempted (the one the report describes).
RoundedReport run_with_retries(const ExperimentConfig& config,
                               const BitVec& payload,
                               std::size_t max_rounds = 8,
                               TraceOut* trace = nullptr);

}  // namespace mes
