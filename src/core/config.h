// Channel configuration: mechanisms, taxonomy (Table I), time parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "scenario/profile.h"
#include "util/time.h"

namespace mes {

// The six MESMs evaluated in the paper plus the POSIX-signal channel the
// paper sketches as future work (§IV.A) and the extension channels:
// read-lock probes (§IV.D) and the storage-sync family, which rides
// memory-disk synchronization queueing delay (Sync+Sync / Write+Sync)
// instead of lock hand-off timing.
enum class Mechanism {
  flock,            // Linux whole-file lock        (contention)
  file_lock_ex,     // Windows LockFileEx           (contention)
  mutex,            // Windows Mutex                (contention)
  semaphore,        // Windows Semaphore            (contention, special)
  event,            // Windows Event                (cooperation)
  waitable_timer,   // Windows WaitableTimer        (cooperation)
  posix_signal,     // extension: signal delivery   (cooperation)
  flock_shared,     // extension: read-lock probes  (contention, §IV.D)
  sync_contention,  // extension: fsync-vs-fsync device queue (contention)
  write_sync,       // extension: dirty pages vs fsync probe  (contention)
  // Distributed mutual exclusion (src/dme): the lock lives on no single
  // host — acquisition latency is the message-passing hand-off over the
  // cluster fabric (src/net), so these only run on cluster scenarios.
  dme_broadcast,    // extension: simple broadcast DME        (contention)
  dme_ricart,       // extension: Ricart-Agrawala DME         (contention)
  dme_maekawa,      // extension: Maekawa quorum DME          (contention)
};

// Table I: mutual exclusion yields contention channels; synchronization
// yields cooperation channels.
enum class ChannelClass { contention, cooperation };

ChannelClass class_of(Mechanism m);
OsFlavor flavor_of(Mechanism m);
const char* to_string(Mechanism m);
const char* to_string(ChannelClass c);

// Time parameters, following the paper's naming:
//  * contention (Protocol 1): t1 is RESTRICTION_PERIOD (the hold that
//    encodes '1'); t0 is SLEEP_PERIOD (both the Trojan's '0' sleep and
//    the Spy's inter-probe sleep — the paper sets them equal);
//  * cooperation (Protocol 2): t0 is tw0 (the wait before signalling
//    '0') and `interval` is ti, so symbol k is signalled after
//    t0 + k*interval. Multi-bit alphabets (§VI) just use more k values.
struct TimingConfig {
  Duration t1 = Duration::zero();
  Duration t0 = Duration::zero();
  Duration interval = Duration::zero();
  std::size_t symbol_bits = 1;

  friend bool operator==(const TimingConfig&, const TimingConfig&) = default;
};

// The Timeset rows of Tables IV (local), V (cross-sandbox) and
// VI (cross-VM). Mechanisms absent from a table (e.g. event cross-VM)
// return the closest configured setting so sweeps remain possible.
TimingConfig paper_timeset(Mechanism m, Scenario s);

// Uniformly rescales every symbol-duration knob (t1/t0/interval) —
// the rate axis the adaptive layer searches. symbol_bits is untouched.
TimingConfig scale_timing(const TimingConfig& t, double factor);

// How a transmission is driven (mes::proto, the layer above the codec):
//  * fixed    — one raw framed round at the configured Timeset (the
//               paper's protocol, what run_transmission does);
//  * arq      — sequence-numbered CRC frames with ack/nak over the
//               reverse direction of the same MESM, at the configured
//               fixed timing;
//  * adaptive — calibrate symbol duration + classifier thresholds
//               against the live noise regime first, then run ARQ at
//               the chosen rate.
enum class ProtocolMode { fixed, arq, adaptive };

const char* to_string(ProtocolMode p);

// How the adaptive layer calibrates:
//  * full — the complete rate-grid sweep plus ARQ refinement trials,
//           independent of every other cell (the default; byte-identical
//           to the pre-cache behaviour);
//  * warm — reuse a published pick for the same link key when one is
//           available, probing only the cached grid index (± one
//           neighbor on disagreement) and falling back to the full
//           sweep if the confirm probe disagrees.
enum class CalibrationPolicy : std::uint8_t { full, warm };

// Where a cell's calibration pick actually came from (reporting):
//  * full     — full sweep (policy full, or a warm leader/cache miss);
//  * warm     — warm start confirmed the cached pick;
//  * fallback — warm start disagreed and completed the full sweep.
enum class CalibrationSource : std::uint8_t { full, warm, fallback };

const char* to_string(CalibrationPolicy p);
const char* to_string(CalibrationSource s);

}  // namespace mes
