#include "core/runner.h"

#include <algorithm>

#include "codec/frame.h"
#include "core/channel.h"
#include "exec/env.h"
#include "exec/seed.h"
#include "sim/simulator.h"

namespace mes {

namespace {

// Re-derives the classifier from the preamble measurements: binary
// channels take the midpoint of the two observed levels; wider alphabets
// re-anchor level 0 using the known preamble symbols.
codec::LatencyClassifier calibrated_classifier(
    const ExperimentConfig& cfg, ChannelClass klass,
    const std::vector<std::size_t>& preamble_symbols,
    const std::vector<Duration>& latencies,
    const codec::LatencyClassifier& fallback)
{
  const std::size_t n = std::min(preamble_symbols.size(), latencies.size());
  if (n < 2) return fallback;
  if (cfg.timing.symbol_bits == 1) {
    std::vector<Duration> preamble(latencies.begin(),
                                   latencies.begin() + static_cast<long>(n));
    const Duration fallback_threshold = fallback.threshold(0);
    auto cls = codec::calibrate_binary(preamble, fallback_threshold);
    (void)klass;
    return cls;
  }
  // Multi-bit: mean measured latency minus the known mean preamble level
  // gives the level-0 anchor.
  double sum_lat_us = 0.0;
  double sum_level = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_lat_us += latencies[i].to_us();
    sum_level += static_cast<double>(preamble_symbols[i]);
  }
  const double level0_us = sum_lat_us / static_cast<double>(n) -
                           cfg.timing.interval.to_us() * sum_level /
                               static_cast<double>(n);
  const std::size_t alphabet = std::size_t{1} << cfg.timing.symbol_bits;
  return codec::LatencyClassifier{alphabet, Duration::us(level0_us),
                                  cfg.timing.interval};
}

}  // namespace

ChannelReport run_transmission(const ExperimentConfig& cfg,
                               const BitVec& payload, TraceOut* trace)
{
  ChannelReport rep;
  rep.mechanism = cfg.mechanism;
  rep.scenario = cfg.scenario;
  rep.scenario_name = cfg.scenario_name;
  rep.timing = cfg.timing;
  rep.sent_payload = payload;

  const ChannelClass klass = class_of(cfg.mechanism);
  const std::size_t width = cfg.timing.symbol_bits;
  if (std::string err = exec::validate_config(cfg); !err.empty()) {
    rep.failure_reason = err;
    return rep;
  }
  if (payload.size() % width != 0) {
    rep.failure_reason = "frame sections must be multiples of symbol width";
    return rep;
  }

  const codec::Frame frame = codec::make_frame(payload, cfg.sync_bits);

  exec::ExperimentEnv env{cfg};
  if (trace != nullptr) env.kernel().enable_trace(true);

  const codec::SymbolSchedule schedule = env.schedule();
  const codec::LatencyClassifier classifier = env.initial_classifier();
  const std::vector<std::size_t> symbols = schedule.encode(frame.bits);

  exec::ExperimentEnv::Endpoint& ep = env.add_pair();
  if (!ep.error.empty()) {
    rep.failure_reason = ep.error;
    return rep;
  }

  env.spawn_transmission(ep, symbols);
  const sim::RunResult run = env.run();
  if (trace != nullptr) trace->ops = env.kernel().trace();
  if (run.hit_event_limit) {
    rep.failure_reason = "simulation event limit reached";
    return rep;
  }
  if (run.blocked_roots > 0) {
    rep.failure_reason =
        "transmission deadlocked (e.g. Semaphore starved of initial "
        "resources, Table II)";
    return rep;
  }
  const core::RxResult& rx = ep.rx;

  // Decode. Optionally recalibrate the classifier from the preamble the
  // way a real Spy does, then re-classify every measured latency.
  const std::size_t sync_symbols = cfg.sync_bits / width;
  std::vector<std::size_t> rx_symbols = rx.symbols;
  if (cfg.recalibrate_from_preamble && sync_symbols >= 2) {
    const std::vector<std::size_t> preamble(
        symbols.begin(), symbols.begin() + static_cast<long>(sync_symbols));
    std::vector<Duration> preamble_lat(
        rx.latencies.begin(),
        rx.latencies.begin() +
            static_cast<long>(std::min(sync_symbols, rx.latencies.size())));
    const auto cls = calibrated_classifier(cfg, klass, preamble, preamble_lat,
                                           classifier);
    rx_symbols.clear();
    rx_symbols.reserve(rx.latencies.size());
    for (const Duration lat : rx.latencies) {
      rx_symbols.push_back(cls.classify(lat));
    }
  }

  const BitVec rx_bits = schedule.decode(rx_symbols);
  const auto stripped = codec::check_and_strip(rx_bits, cfg.sync_bits);
  rep.sync_ok = stripped.has_value();
  rep.received_payload =
      stripped.has_value()
          ? *stripped
          : rx_bits.slice(std::min(cfg.sync_bits, rx_bits.size()),
                          rx_bits.size());

  rep.tx_symbols = symbols;
  rep.rx_symbols = rx_symbols;
  rep.rx_latencies = rx.latencies;

  const std::size_t n_payload = payload.size();
  rep.ber = n_payload == 0
                ? 0.0
                : static_cast<double>(
                      payload.hamming_distance(rep.received_payload)) /
                      static_cast<double>(n_payload);
  // The transmission ends when the Spy holds the last bit; stray events
  // (lazily cancelled wait timeouts) may drain later.
  rep.elapsed = (rx.finished_at > TimePoint::origin() ? rx.finished_at
                                                      : run.end_time) -
                TimePoint::origin();
  if (rep.elapsed > Duration::zero()) {
    rep.throughput_bps = static_cast<double>(frame.bits.size()) /
                         rep.elapsed.to_sec();
  }

  // Symbol confusion over the data section.
  ConfusionMatrix confusion{std::size_t{1} << width};
  const std::size_t common = std::min(symbols.size(), rx_symbols.size());
  const std::size_t data_syms = common > sync_symbols ? common - sync_symbols : 0;
  for (std::size_t i = 0; i < data_syms; ++i) {
    confusion.add(symbols[sync_symbols + i], rx_symbols[sync_symbols + i]);
  }
  rep.confusion = confusion;

  rep.ok = true;
  return rep;
}

RoundedReport run_with_retries(const ExperimentConfig& config,
                               const BitVec& payload, std::size_t max_rounds,
                               TraceOut* trace)
{
  RoundedReport out;
  ExperimentConfig cfg = config;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++out.rounds_attempted;
    // Round 0 is the configured transmission, bit for bit; retry rounds
    // salt the seed through the splitmix64 mixer. The additive offset
    // this replaces could collide with a neighbouring campaign cell's
    // seed (base + k lands on another cell's base), silently replaying
    // its RNG stream.
    cfg.seed = round == 0
                   ? config.seed
                   : exec::mix_seed(config.seed,
                                    {static_cast<std::uint64_t>(round)});
    out.report = run_transmission(cfg, payload, trace);
    if (out.report.ok && out.report.sync_ok) return out;
    if (!out.report.ok) return out;  // structural failure, retries futile
  }
  return out;
}

}  // namespace mes
