// Abstract covert channel over one MESM.
//
// A Channel binds mechanism-specific operations (lock/unlock, signal/
// wait) into the two protocol roles. The runner gives it a RunContext —
// kernel, the two processes, timing, codec — and spawns the two
// coroutines on the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codec/symbols.h"
#include "core/config.h"
#include "os/kernel.h"
#include "sim/barrier.h"
#include "sim/task.h"

namespace mes::net {
class Fabric;
}
namespace mes::dme {
class LockAgent;
}

namespace mes::core {

// Shared state for the distributed (cluster) channel family: the fabric
// joining the node kernels, plus one lock-agent instance per node for
// THIS channel's lock (multi-pair experiments get one context — one
// distributed lock — per pair). Null on single-host scenarios, which is
// exactly how dme channels detect an unusable topology at setup.
struct ClusterContext {
  net::Fabric* fabric = nullptr;
  std::vector<os::Kernel*> kernels;  // index = node id
  std::vector<std::shared_ptr<dme::LockAgent>> agents;  // index = node id
  std::uint32_t trojan_node = 0;
  std::uint32_t spy_node = 1;
};

// Default post-rendezvous linger (see RunContext::spy_guard).
inline constexpr double kDefaultSpyGuardUs = 25.0;

struct RunContext {
  os::Kernel& kernel;
  os::Process& trojan;
  os::Process& spy;
  TimingConfig timing;
  codec::SymbolSchedule schedule;
  codec::LatencyClassifier classifier;
  // Per-iteration cost of the protocol loop's "irrelevant instructions"
  // (§V.B): key indexing, branches, timestamp handling.
  Duration loop_cost = Duration::us(5.0);
  // Disambiguates shared resource names when several channel instances
  // run inside one simulation (multi-pair experiments).
  std::string tag = "0";
  // Semaphore channel only: initial resource count (Table III).
  long initial_resources = 0;

  // Fine-grained inter-bit synchronization (§V.B). Contention channels
  // need it: without the rendezvous, probe-cost drift slips the Spy's
  // bit alignment and every slip corrupts the remainder of the stream.
  // Null = disabled (the ablation mode).
  std::shared_ptr<sim::Barrier> bit_sync;
  // How long the Spy lingers after the rendezvous before probing, so
  // the Trojan's acquire always wins the post-rendezvous race even
  // under dispatch-latency skew.
  Duration spy_guard = Duration::us(kDefaultSpyGuardUs);

  // Cluster scenarios only (defaulted last so existing designated
  // initializers keep compiling): see ClusterContext above.
  std::shared_ptr<ClusterContext> cluster;
};

struct RxResult {
  std::vector<std::size_t> symbols;
  std::vector<Duration> latencies;
  // When the Spy finished its last measurement. The simulation queue
  // may drain later (lazily cancelled wait timeouts), so transmission
  // time is measured here, not at queue exhaustion.
  TimePoint finished_at;
};

class Channel {
 public:
  virtual ~Channel() = default;

  virtual Mechanism mechanism() const = 0;
  ChannelClass channel_class() const { return class_of(mechanism()); }

  // Creates / opens the shared resource from each endpoint's namespace.
  // Returns "" on success, otherwise the reason the mechanism cannot
  // work in this topology (Table VI's ✗ entries).
  virtual std::string setup(RunContext& ctx) = 0;

  // The sender: transmits `symbols` by modulating constraint time.
  virtual sim::Proc trojan_run(RunContext& ctx,
                               std::vector<std::size_t> symbols) = 0;

  // The receiver: measures `expected` release latencies and classifies
  // them inline (contention Spies pace themselves with t0-sleeps after
  // reading a '0').
  virtual sim::Proc spy_run(RunContext& ctx, std::size_t expected,
                            RxResult& out) = 0;
};

// Factory over all implemented mechanisms.
std::unique_ptr<Channel> make_channel(Mechanism m);

// Per-iteration loop cost with +/-20% jitter from the process stream.
Duration jittered_loop_cost(RunContext& ctx, os::Process& proc);

}  // namespace mes::core
