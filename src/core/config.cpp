#include "core/config.h"

namespace mes {

ChannelClass class_of(Mechanism m)
{
  switch (m) {
    case Mechanism::flock:
    case Mechanism::file_lock_ex:
    case Mechanism::mutex:
    case Mechanism::semaphore:
    case Mechanism::flock_shared:
    case Mechanism::sync_contention:
    case Mechanism::write_sync:
    case Mechanism::dme_broadcast:
    case Mechanism::dme_ricart:
    case Mechanism::dme_maekawa:
      return ChannelClass::contention;
    case Mechanism::event:
    case Mechanism::waitable_timer:
    case Mechanism::posix_signal:
      return ChannelClass::cooperation;
  }
  return ChannelClass::contention;
}

OsFlavor flavor_of(Mechanism m)
{
  switch (m) {
    case Mechanism::flock:
    case Mechanism::posix_signal:
    case Mechanism::flock_shared:
    case Mechanism::sync_contention:
    case Mechanism::write_sync:
    case Mechanism::dme_broadcast:
    case Mechanism::dme_ricart:
    case Mechanism::dme_maekawa:
      return OsFlavor::linux_like;
    default:
      return OsFlavor::windows;
  }
}

const char* to_string(Mechanism m)
{
  switch (m) {
    case Mechanism::flock: return "flock";
    case Mechanism::file_lock_ex: return "FileLockEX";
    case Mechanism::mutex: return "Mutex";
    case Mechanism::semaphore: return "Semaphore";
    case Mechanism::event: return "Event";
    case Mechanism::waitable_timer: return "Timer";
    case Mechanism::posix_signal: return "signal(ext)";
    case Mechanism::flock_shared: return "flock-SH(ext)";
    case Mechanism::sync_contention: return "Sync+Sync(ext)";
    case Mechanism::write_sync: return "Write+Sync(ext)";
    case Mechanism::dme_broadcast: return "DME-bcast(ext)";
    case Mechanism::dme_ricart: return "DME-RA(ext)";
    case Mechanism::dme_maekawa: return "DME-Maekawa(ext)";
  }
  return "?";
}

const char* to_string(ChannelClass c)
{
  return c == ChannelClass::contention ? "contention" : "cooperation";
}

const char* to_string(ProtocolMode p)
{
  switch (p) {
    case ProtocolMode::fixed: return "fixed";
    case ProtocolMode::arq: return "arq";
    case ProtocolMode::adaptive: return "adaptive";
  }
  return "?";
}

const char* to_string(CalibrationPolicy p)
{
  return p == CalibrationPolicy::warm ? "warm" : "full";
}

const char* to_string(CalibrationSource s)
{
  switch (s) {
    case CalibrationSource::full: return "full";
    case CalibrationSource::warm: return "warm";
    case CalibrationSource::fallback: return "fallback";
  }
  return "?";
}

TimingConfig scale_timing(const TimingConfig& t, double factor)
{
  TimingConfig out = t;
  out.t1 = t.t1 * factor;
  out.t0 = t.t0 * factor;
  out.interval = t.interval * factor;
  return out;
}

TimingConfig paper_timeset(Mechanism m, Scenario s)
{
  using D = Duration;
  TimingConfig t;
  switch (s) {
    case Scenario::local:
      // Table IV.
      switch (m) {
        case Mechanism::flock: t.t1 = D::us(160); t.t0 = D::us(60); break;
        case Mechanism::file_lock_ex: t.t1 = D::us(150); t.t0 = D::us(50); break;
        case Mechanism::mutex: t.t1 = D::us(140); t.t0 = D::us(60); break;
        case Mechanism::semaphore: t.t1 = D::us(230); t.t0 = D::us(100); break;
        case Mechanism::event: t.t0 = D::us(15); t.interval = D::us(65); break;
        case Mechanism::waitable_timer:
          t.t0 = D::us(15); t.interval = D::us(75); break;
        case Mechanism::posix_signal:
          // Linux flavor: the 58 us sleep floor pins t0, like flock's tt0.
          t.t0 = D::us(60); t.interval = D::us(70); break;
        case Mechanism::flock_shared:
          t.t1 = D::us(160); t.t0 = D::us(60); break;
        case Mechanism::sync_contention:
        case Mechanism::write_sync:
          // Storage-sync: t1 is the device occupancy the Trojan's dirty
          // pages buy (~30 pages at ~8 us each); t0 the '0' sleep.
          t.t1 = D::us(240); t.t0 = D::us(80); break;
        case Mechanism::dme_broadcast:
        case Mechanism::dme_ricart:
        case Mechanism::dme_maekawa:
          // Distributed locks: the symbol time must dominate the rack
          // round trip (~0.3 ms uncontended acquire), so the hold that
          // encodes '1' is held well above it.
          t.t1 = D::us(2000); t.t0 = D::us(2000); break;
      }
      break;
    case Scenario::cross_sandbox:
      // Table V.
      switch (m) {
        case Mechanism::flock: t.t1 = D::us(170); t.t0 = D::us(60); break;
        case Mechanism::file_lock_ex: t.t1 = D::us(170); t.t0 = D::us(60); break;
        case Mechanism::mutex: t.t1 = D::us(150); t.t0 = D::us(60); break;
        case Mechanism::semaphore: t.t1 = D::us(240); t.t0 = D::us(100); break;
        case Mechanism::event: t.t0 = D::us(15); t.interval = D::us(70); break;
        case Mechanism::waitable_timer:
          t.t0 = D::us(15); t.interval = D::us(85); break;
        case Mechanism::posix_signal:
          t.t0 = D::us(60); t.interval = D::us(80); break;
        case Mechanism::flock_shared:
          t.t1 = D::us(170); t.t0 = D::us(60); break;
        case Mechanism::sync_contention:
        case Mechanism::write_sync:
          t.t1 = D::us(260); t.t0 = D::us(80); break;
        case Mechanism::dme_broadcast:
        case Mechanism::dme_ricart:
        case Mechanism::dme_maekawa:
          t.t1 = D::us(2200); t.t0 = D::us(2200); break;
      }
      break;
    case Scenario::cross_vm:
      // Table VI configures only the file-backed mechanisms; others get
      // conservative settings (they fail at setup anyway).
      switch (m) {
        case Mechanism::flock: t.t1 = D::us(200); t.t0 = D::us(70); break;
        case Mechanism::file_lock_ex: t.t1 = D::us(190); t.t0 = D::us(70); break;
        case Mechanism::mutex: t.t1 = D::us(200); t.t0 = D::us(70); break;
        case Mechanism::semaphore: t.t1 = D::us(280); t.t0 = D::us(110); break;
        case Mechanism::event: t.t0 = D::us(20); t.interval = D::us(90); break;
        case Mechanism::waitable_timer:
          t.t0 = D::us(20); t.interval = D::us(100); break;
        case Mechanism::posix_signal:
          t.t0 = D::us(65); t.interval = D::us(95); break;
        case Mechanism::flock_shared:
          t.t1 = D::us(200); t.t0 = D::us(70); break;
        case Mechanism::sync_contention:
        case Mechanism::write_sync:
          t.t1 = D::us(300); t.t0 = D::us(90); break;
        case Mechanism::dme_broadcast:
        case Mechanism::dme_ricart:
        case Mechanism::dme_maekawa:
          // WAN anchor: one-way link latency is milliseconds, so the
          // hold must dominate a multi-hop acquire (~12 ms round trip
          // plus a retransmission timeout under loss).
          t.t1 = D::us(40000); t.t0 = D::us(40000); break;
      }
      break;
  }
  return t;
}

}  // namespace mes
