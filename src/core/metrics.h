// Transmission results: BER, TR and everything the figures need.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "util/bitvec.h"
#include "util/stats.h"
#include "util/time.h"

namespace mes {

struct ChannelReport {
  bool ok = false;                // resources set up & transmission ran
  std::string failure_reason;     // why not, when !ok

  Mechanism mechanism = Mechanism::event;
  Scenario scenario = Scenario::local;  // anchor class
  std::string scenario_name;  // registry key; empty = to_string(scenario)
  TimingConfig timing;

  BitVec sent_payload;      // data section only (sync stripped)
  BitVec received_payload;

  bool sync_ok = false;     // preamble verified (§V.B)
  double ber = 0.0;         // payload bit error rate, 0..1
  double throughput_bps = 0.0;
  Duration elapsed = Duration::zero();

  // Per-symbol traces (preamble included) for the figure benches.
  std::vector<std::size_t> tx_symbols;
  std::vector<std::size_t> rx_symbols;
  std::vector<Duration> rx_latencies;

  // Symbol-level confusion over the data section (present when ok).
  std::optional<ConfusionMatrix> confusion;

  // Filled by the protocol layer (mes::proto) when the transmission ran
  // in ARQ or adaptive mode; absent for raw fixed-rate rounds.
  struct ProtocolStats {
    ProtocolMode mode = ProtocolMode::fixed;
    std::size_t frames = 0;           // distinct data frames delivered
    std::size_t frame_sends = 0;      // transmissions incl. retransmits
    std::size_t retransmits = 0;
    // Adaptive mode only: what the calibration phase decided.
    double calibration_margin = 0.0;  // level separation / jitter
    Duration calibration_time = Duration::zero();
    std::size_t calibration_probes = 0;
    // Where the pick came from: full sweep, confirmed warm start, or a
    // warm start that disagreed and fell back to the full sweep.
    CalibrationSource calibration_source = CalibrationSource::full;
    // Bonded mode only (proto/bond): sub-channel accounting. pairs is
    // the live (calibrated) count, pairs_requested what the plan asked
    // for; rebalances counts stripes re-queued off drained sub-channels.
    std::size_t pairs = 1;
    std::size_t pairs_requested = 1;
    std::size_t rebalances = 0;
    // Drift-aware adaptive sessions (proto/drift): how often the link
    // flagged a calibration-stale regime and re-calibrated online, and
    // the steady-state rate it recovered to after the last pass.
    std::size_t drift_events = 0;
    std::size_t recalibrations = 0;
    double recovered_goodput_bps = 0.0;
    Duration recovery_spent = Duration::zero();  // stale rounds + re-probes
    // Per noise-phase accounting, in first-observation order. Only
    // populated by drift-aware sessions; empty under stationary noise
    // with no drift (so legacy emissions are unchanged).
    struct PhaseStats {
      std::size_t phase = 0;        // NoiseModel::phase_at id
      std::size_t frames = 0;       // frames delivered within the phase
      std::size_t retransmits = 0;
      Duration elapsed = Duration::zero();
      double goodput_bps = 0.0;     // delivered payload bits / elapsed
    };
    std::vector<PhaseStats> phases;
  };
  std::optional<ProtocolStats> proto;

  double ber_percent() const { return ber * 100.0; }
  double throughput_kbps() const { return throughput_bps / 1000.0; }
};

// Result of the round-based wrapper: how many rounds the Spy discarded
// before one passed preamble verification.
struct RoundedReport {
  ChannelReport report;
  std::size_t rounds_attempted = 0;
};

}  // namespace mes
