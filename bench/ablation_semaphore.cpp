// Ablation: Semaphore initial-resource priming (Tables II & III).
//
// The semaphore is the channel's lock; its initial count decides
// everything:
//   0  -> neither process can ever acquire: the Spy stalls and the
//         transmission deadlocks (Table II's failure);
//   1  -> proper mutual exclusion: the channel works (Table III's fix);
//   >=2 -> mutual exclusion silently broken: the Spy's P succeeds during
//         the Trojan's holds, so every '1' decodes as '0'.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace mes;

ChannelReport run_primed(long initial, std::uint64_t seed)
{
  ExperimentConfig cfg;
  cfg.mechanism = Mechanism::semaphore;
  cfg.scenario = Scenario::local;
  cfg.timing = paper_timeset(Mechanism::semaphore, Scenario::local);
  cfg.semaphore_initial = initial;
  cfg.seed = seed;
  cfg.max_events = 40'000'000;
  return mes::bench::run_random(cfg, 1024);
}

void print_table()
{
  mes::bench::print_header(
      "Ablation: Semaphore initial resources (1024-bit payload)",
      "Tables II & III of MES-Attacks, DAC'23");
  TextTable table({"initial resources", "BER(%)", "ones decoded as ones",
                   "outcome"});
  for (const long initial : {0L, 1L, 2L, 5L}) {
    const ChannelReport rep = run_primed(initial, 0xAB1A5E);
    std::string ones = "-";
    if (rep.ok && rep.confusion) {
      const std::size_t correct = rep.confusion->at(1, 1);
      const std::size_t total = correct + rep.confusion->at(1, 0);
      ones = TextTable::percent(
          total ? static_cast<double>(correct) / static_cast<double>(total)
                : 0.0,
          1);
    }
    table.add_row({std::to_string(initial),
                   rep.ok ? TextTable::num(rep.ber_percent(), 2) : "-", ones,
                   rep.ok ? (rep.ber < 0.02 ? "works" : "broken (no mutual "
                                                        "exclusion)")
                          : rep.failure_reason});
  }
  table.print();
  std::printf(
      "\nExpected: 0 deadlocks (the Table II stall), 1 works, and any\n"
      "overseeding destroys the '1' bits because the Spy never blocks.\n");
}

void BM_SemaphorePrimed(benchmark::State& state)
{
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_primed(1, ++seed).ber);
  }
}
BENCHMARK(BM_SemaphorePrimed)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv)
{
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
